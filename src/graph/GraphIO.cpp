//===- graph/GraphIO.cpp - Textual computation-graph format --------------------===//

#include "graph/GraphIO.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>

using namespace pypm;
using namespace pypm::graph;

std::string pypm::graph::writeGraphText(const Graph &G) {
  std::string Out;
  const term::Signature &Sig = G.signature();
  for (NodeId N : G.topoOrder()) {
    Out += 'n';
    Out += std::to_string(N);
    Out += " = ";
    Out += Sig.name(G.op(N)).str();
    if (!G.attrs(N).empty()) {
      Out += '[';
      bool First = true;
      for (const term::Attr &A : G.attrs(N)) {
        if (!First)
          Out += ',';
        First = false;
        Out += A.Key.str();
        Out += '=';
        Out += std::to_string(A.Value);
      }
      Out += ']';
    }
    Out += '(';
    bool First = true;
    for (NodeId In : G.inputs(N)) {
      if (!First)
        Out += ", ";
      First = false;
      Out += 'n';
      Out += std::to_string(In);
    }
    Out += ") : ";
    Out += term::dtypeName(G.type(N).Dtype);
    Out += '[';
    for (size_t I = 0; I != G.type(N).Dims.size(); ++I) {
      if (I)
        Out += 'x';
      Out += std::to_string(G.type(N).Dims[I]);
    }
    Out += "]\n";
  }
  for (NodeId Output : G.outputs()) {
    Out += "output n";
    Out += std::to_string(Output);
    Out += '\n';
  }
  return Out;
}

namespace {

/// Single-line cursor with character-level helpers.
class LineParser {
public:
  LineParser(std::string_view Line, uint32_t LineNo, DiagnosticEngine &Diags)
      : Line(Line), LineNo(LineNo), Diags(Diags) {}

  void skipWs() {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipWs();
    return Pos == Line.size();
  }

  bool eat(char C) {
    skipWs();
    if (Pos < Line.size() && Line[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool expect(char C) {
    if (eat(C))
      return true;
    error(std::string("expected '") + C + "'");
    return false;
  }

  std::string_view ident() {
    skipWs();
    size_t Start = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_'))
      ++Pos;
    return Line.substr(Start, Pos - Start);
  }

  bool integer(int64_t &Out) {
    skipWs();
    size_t Start = Pos;
    if (Pos < Line.size() && (Line[Pos] == '-' || Line[Pos] == '+'))
      ++Pos;
    while (Pos < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    errno = 0;
    Out = std::strtoll(std::string(Line.substr(Start, Pos - Start)).c_str(),
                       nullptr, 10);
    if (errno == ERANGE)
      return false; // overflow would silently clamp to INT64_MAX
    return true;
  }

  void error(std::string Msg) {
    Diags.error(SourceLoc{LineNo, static_cast<uint32_t>(Pos + 1)},
                std::move(Msg));
  }

private:
  std::string_view Line;
  uint32_t LineNo;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

std::unique_ptr<Graph> pypm::graph::parseGraphText(std::string_view Text,
                                                   term::Signature &Sig,
                                                   DiagnosticEngine &Diags) {
  auto G = std::make_unique<Graph>(Sig);
  std::unordered_map<std::string, NodeId> Names;
  uint32_t LineNo = 0;
  size_t Pos = 0;

  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, End == std::string_view::npos ? std::string_view::npos
                                           : End - Pos);
    Pos = End == std::string_view::npos ? Text.size() + 1 : End + 1;
    ++LineNo;

    LineParser LP(Line, LineNo, Diags);
    if (LP.atEnd() || LP.eat('#'))
      continue;

    std::string_view First = LP.ident();
    if (First == "output") {
      std::string Ref(LP.ident());
      auto It = Names.find(Ref);
      if (It == Names.end()) {
        LP.error("output references unknown node '" + Ref + "'");
        return nullptr;
      }
      G->addOutput(It->second);
      continue;
    }
    if (First.empty()) {
      LP.error("expected node definition or 'output'");
      return nullptr;
    }

    std::string Name(First);
    if (Names.count(Name)) {
      LP.error("node '" + Name + "' redefined");
      return nullptr;
    }
    if (!LP.expect('='))
      return nullptr;
    std::string_view OpName = LP.ident();
    if (OpName.empty()) {
      LP.error("expected operator name");
      return nullptr;
    }

    std::vector<term::Attr> Attrs;
    if (LP.eat('[')) {
      if (!LP.eat(']')) {
        do {
          std::string_view Key = LP.ident();
          int64_t V = 0;
          if (Key.empty() || !LP.expect('=') || !LP.integer(V)) {
            LP.error("malformed attribute");
            return nullptr;
          }
          Attrs.push_back({Symbol::intern(Key), V});
        } while (LP.eat(','));
        if (!LP.expect(']'))
          return nullptr;
      }
    }

    std::vector<NodeId> Inputs;
    if (!LP.expect('('))
      return nullptr;
    if (!LP.eat(')')) {
      do {
        std::string Ref(LP.ident());
        auto It = Names.find(Ref);
        if (It == Names.end()) {
          LP.error("unknown input node '" + Ref + "'");
          return nullptr;
        }
        Inputs.push_back(It->second);
      } while (LP.eat(','));
      if (!LP.expect(')'))
        return nullptr;
    }

    if (!LP.expect(':'))
      return nullptr;
    std::string_view DtypeName = LP.ident();
    std::optional<term::DType> Dtype = term::dtypeFromName(DtypeName);
    if (!Dtype) {
      LP.error("unknown dtype '" + std::string(DtypeName) + "'");
      return nullptr;
    }
    TensorType Type;
    Type.Dtype = *Dtype;
    if (!LP.expect('['))
      return nullptr;
    if (!LP.eat(']')) {
      int64_t D = 0;
      if (!LP.integer(D)) {
        LP.error("expected dimension");
        return nullptr;
      }
      if (D < 0) {
        LP.error("negative dimension " + std::to_string(D));
        return nullptr;
      }
      Type.Dims.push_back(D);
      while (LP.eat('x')) {
        if (!LP.integer(D)) {
          LP.error("expected dimension");
          return nullptr;
        }
        if (D < 0) {
          LP.error("negative dimension " + std::to_string(D));
          return nullptr;
        }
        Type.Dims.push_back(D);
      }
      if (!LP.expect(']'))
        return nullptr;
    }
    if (!LP.atEnd()) {
      LP.error("trailing characters");
      return nullptr;
    }

    term::OpId Op = Sig.lookup(OpName);
    if (!Op.isValid()) {
      Op = Sig.addOp(OpName, static_cast<unsigned>(Inputs.size()));
    } else if (Sig.arity(Op) != Inputs.size()) {
      LP.error("operator '" + std::string(OpName) + "' expects " +
               std::to_string(Sig.arity(Op)) + " inputs, got " +
               std::to_string(Inputs.size()));
      return nullptr;
    }
    NodeId N = G->addNode(Op, std::span<const NodeId>(Inputs),
                          std::move(Attrs));
    G->setType(N, std::move(Type));
    Names.emplace(std::move(Name), N);
  }

  if (G->outputs().empty() && G->numNodes() != 0)
    Diags.warning(SourceLoc{LineNo, 1}, "graph has no outputs");
  return G;
}
