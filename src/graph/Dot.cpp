//===- graph/Dot.cpp - Graphviz export ----------------------------------------===//

#include "graph/Dot.h"

using namespace pypm;
using namespace pypm::graph;

std::string pypm::graph::toDot(const Graph &G, std::string_view Title) {
  std::string Out = "digraph \"";
  Out += Title;
  Out += "\" {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId N : G.topoOrder()) {
    Out += "  n" + std::to_string(N) + " [label=\"";
    Out += G.signature().name(G.op(N)).str();
    Out += "\\n";
    Out += G.type(N).str();
    for (const term::Attr &A : G.attrs(N)) {
      Out += "\\n";
      Out += A.Key.str();
      Out += "=";
      Out += std::to_string(A.Value);
    }
    Out += "\"];\n";
    for (NodeId In : G.inputs(N))
      Out += "  n" + std::to_string(In) + " -> n" + std::to_string(N) + ";\n";
  }
  for (NodeId Output : G.outputs())
    Out += "  n" + std::to_string(Output) + " [style=bold];\n";
  Out += "}\n";
  return Out;
}
