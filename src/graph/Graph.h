//===- graph/Graph.h - Tensor computation graph IR --------------*- C++ -*-===//
///
/// \file
/// The operator-graph IR that DLCB's rewriting pass runs on: a DAG of
/// single-result operator nodes over the same Signature the patterns were
/// compiled against. Nodes carry operator-specific attributes (stride,
/// value_u6, …) and a tensor type (dtype + dims) filled in by shape
/// inference; the node↔term adapter exposes rooted subgraphs to the matcher
/// as terms (see TermView.h).
///
/// Mutation model: rewriting is destructive (§2.4) — a fired rule builds
/// replacement nodes, redirects all uses of the matched root, and dead
/// interior nodes are swept by removeUnreachable(). Node ids are stable;
/// dead nodes stay allocated but are skipped by traversals.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_GRAPH_GRAPH_H
#define PYPM_GRAPH_GRAPH_H

#include "support/Diagnostics.h"
#include "term/DType.h"
#include "term/Term.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pypm::graph {

using NodeId = uint32_t;
constexpr NodeId InvalidNode = ~0u;

/// Tensor value type: element dtype plus dimensions. Empty dims = scalar.
struct TensorType {
  term::DType Dtype = term::DType::F32;
  std::vector<int64_t> Dims;

  unsigned rank() const { return static_cast<unsigned>(Dims.size()); }
  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    return N;
  }
  int64_t bytes() const { return numElements() * term::dtypeBytes(Dtype); }

  friend bool operator==(const TensorType &A, const TensorType &B) {
    return A.Dtype == B.Dtype && A.Dims == B.Dims;
  }

  std::string str() const;

  static TensorType make(term::DType Dtype, std::initializer_list<int64_t> Dims) {
    TensorType T;
    T.Dtype = Dtype;
    T.Dims.assign(Dims.begin(), Dims.end());
    return T;
  }
};

struct Node {
  term::OpId Op;
  std::vector<NodeId> Inputs;
  std::vector<term::Attr> Attrs;
  TensorType Type;
  bool Dead = false;
};

/// A tensor computation graph over a Signature.
class Graph {
public:
  explicit Graph(term::Signature &Sig) : Sig(Sig) {}

  term::Signature &signature() { return Sig; }
  const term::Signature &signature() const { return Sig; }

  /// Creates a node. Input count must match the operator's declared arity.
  NodeId addNode(term::OpId Op, std::span<const NodeId> Inputs,
                 std::vector<term::Attr> Attrs = {});
  NodeId addNode(term::OpId Op, std::initializer_list<NodeId> Inputs,
                 std::vector<term::Attr> Attrs = {}) {
    return addNode(Op, std::span<const NodeId>(Inputs.begin(), Inputs.size()),
                   std::move(Attrs));
  }

  /// Creates a leaf node by operator name (declares arity-0 ops on demand):
  /// convenience for model builders ("Input", "Weight", …).
  NodeId addLeaf(std::string_view OpName, TensorType Type,
                 std::vector<term::Attr> Attrs = {});

  /// Creates a scalar constant: a `Const` leaf whose value_u6 attribute is
  /// round(Value * 1e6), matching the DSL's literal patterns.
  NodeId addConst(double Value, term::DType Dtype = term::DType::F32);

  const Node &node(NodeId N) const {
    assert(N < Nodes.size());
    return Nodes[N];
  }
  term::OpId op(NodeId N) const { return node(N).Op; }
  std::span<const NodeId> inputs(NodeId N) const { return node(N).Inputs; }
  const TensorType &type(NodeId N) const { return node(N).Type; }
  std::span<const term::Attr> attrs(NodeId N) const { return node(N).Attrs; }
  bool isDead(NodeId N) const { return node(N).Dead; }
  std::optional<int64_t> attr(NodeId N, Symbol Key) const;

  void setType(NodeId N, TensorType Type) {
    Nodes[N].Type = std::move(Type);
  }

  /// Users of \p N (with multiplicity), maintained incrementally.
  std::span<const NodeId> users(NodeId N) const { return Users[N]; }

  /// Redirects every use of \p From (including graph outputs) to \p To.
  /// Users with id >= \p SkipUsersFrom are left untouched: a rewrite passes
  /// the id of its first replacement node here so that uses of the matched
  /// root *inside* the replacement keep referring to the original value
  /// (and no cycle can form).
  void replaceAllUses(NodeId From, NodeId To,
                      NodeId SkipUsersFrom = InvalidNode);

  std::vector<NodeId> &outputs() { return Outputs; }
  const std::vector<NodeId> &outputs() const { return Outputs; }
  void addOutput(NodeId N) { Outputs.push_back(N); }

  /// Total allocated node slots (dead included); node ids are < numNodes().
  size_t numNodes() const { return Nodes.size(); }
  size_t numLiveNodes() const;

  /// Monotone estimate of the bytes this graph has allocated (dead nodes
  /// included — they stay allocated). A deterministic function of the node
  /// sequence built so far; the rewrite engine polls it against
  /// BudgetLimits::MaxMemoryBytes.
  uint64_t approxMemoryBytes() const { return ApproxBytes; }

  /// Marks every node unreachable from the outputs as dead; returns the
  /// count swept. \p SweptIds, when non-null, receives the ids swept by
  /// THIS call (previously dead nodes are not re-reported) in ascending
  /// order — the search loop prices exactly the newly dead nodes when
  /// delta-costing a commit (sim::CostModel::commitDelta).
  size_t removeUnreachable(std::vector<NodeId> *SweptIds = nullptr);

  /// Live nodes, inputs before users. Deterministic.
  std::vector<NodeId> topoOrder() const;

  /// Structural invariants: arities match, inputs exist and precede no one
  /// (acyclic), live nodes reference live nodes, outputs live.
  bool verify(DiagnosticEngine &Diags) const;

  /// Counts live nodes with the given operator (test/bench convenience).
  size_t countOps(term::OpId Op) const;
  size_t countOps(std::string_view OpName) const;

private:
  term::Signature &Sig;
  std::vector<Node> Nodes;
  std::vector<std::vector<NodeId>> Users;
  std::vector<NodeId> Outputs;
  uint64_t ApproxBytes = 0;
};

} // namespace pypm::graph

#endif // PYPM_GRAPH_GRAPH_H
