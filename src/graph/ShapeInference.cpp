//===- graph/ShapeInference.cpp - Tensor shape/dtype inference ---------------===//

#include "graph/ShapeInference.h"

#include <algorithm>

using namespace pypm;
using namespace pypm::graph;

namespace {

std::optional<std::vector<int64_t>>
broadcastDims(std::span<const int64_t> A, std::span<const int64_t> B) {
  // Numpy-style right-aligned broadcast; scalars (empty) broadcast freely.
  size_t Rank = std::max(A.size(), B.size());
  std::vector<int64_t> Out(Rank);
  for (size_t I = 0; I != Rank; ++I) {
    int64_t DA = I < A.size() ? A[A.size() - 1 - I] : 1;
    int64_t DB = I < B.size() ? B[B.size() - 1 - I] : 1;
    if (DA != DB && DA != 1 && DB != 1)
      return std::nullopt;
    Out[Rank - 1 - I] = std::max(DA, DB);
  }
  return Out;
}

std::optional<TensorType> inferElementwise(const Graph &,
                                           NodeId,
                                           std::span<const TensorType> In) {
  TensorType Out;
  Out.Dtype = In[0].Dtype;
  if (In.size() == 1) {
    Out.Dims = In[0].Dims;
    return Out;
  }
  std::optional<std::vector<int64_t>> Dims =
      broadcastDims(In[0].Dims, In[1].Dims);
  if (!Dims)
    return std::nullopt;
  // Prefer a non-scalar dtype source (a Const scalar should not demote the
  // tensor's dtype).
  if (In[0].Dims.empty() && !In[1].Dims.empty())
    Out.Dtype = In[1].Dtype;
  Out.Dims = std::move(*Dims);
  return Out;
}

/// result = A · B over the trailing two dims, leading dims broadcast.
std::optional<TensorType> matmulType(const TensorType &A, const TensorType &B,
                                     bool TransposeB) {
  if (A.rank() < 2 || B.rank() < 2)
    return std::nullopt;
  int64_t M = A.Dims[A.rank() - 2];
  int64_t KA = A.Dims[A.rank() - 1];
  int64_t KB = TransposeB ? B.Dims[B.rank() - 1] : B.Dims[B.rank() - 2];
  int64_t N = TransposeB ? B.Dims[B.rank() - 2] : B.Dims[B.rank() - 1];
  if (KA != KB)
    return std::nullopt;
  std::span<const int64_t> BatchA(A.Dims.data(), A.rank() - 2);
  std::span<const int64_t> BatchB(B.Dims.data(), B.rank() - 2);
  std::optional<std::vector<int64_t>> Batch = broadcastDims(BatchA, BatchB);
  if (!Batch)
    return std::nullopt;
  TensorType Out;
  Out.Dtype = A.Dtype;
  Out.Dims = std::move(*Batch);
  Out.Dims.push_back(M);
  Out.Dims.push_back(N);
  return Out;
}

int64_t attrOr(const Graph &G, NodeId N, std::string_view Key,
               int64_t Default) {
  return G.attr(N, Symbol::intern(Key)).value_or(Default);
}

} // namespace

ShapeInference::ShapeInference() {
  registerRule("MatMul", [](const Graph &, NodeId,
                            std::span<const TensorType> In) {
    return matmulType(In[0], In[1], /*TransposeB=*/false);
  });
  registerRule("GemmEpilog", [](const Graph &, NodeId,
                                std::span<const TensorType> In) {
    return matmulType(In[0], In[1], /*TransposeB=*/false);
  });
  registerRule("GemmBiasEpilog", [](const Graph &, NodeId,
                                    std::span<const TensorType> In) {
    return matmulType(In[0], In[1], /*TransposeB=*/false);
  });
  for (std::string_view Name : {"cublasMM_xyT_f32", "cublasMM_xyT_i8"})
    registerRule(Name, [](const Graph &, NodeId,
                          std::span<const TensorType> In) {
      return matmulType(In[0], In[1], /*TransposeB=*/true);
    });

  registerRule("Trans", [](const Graph &, NodeId,
                           std::span<const TensorType> In)
                    -> std::optional<TensorType> {
    if (In[0].rank() < 2)
      return std::nullopt;
    TensorType Out = In[0];
    std::swap(Out.Dims[Out.rank() - 1], Out.Dims[Out.rank() - 2]);
    return Out;
  });

  for (std::string_view Name : {"Add", "Sub", "Mul", "Div", "Pow"})
    registerRule(Name, inferElementwise);

  registerRule("BiasAdd", [](const Graph &, NodeId,
                             std::span<const TensorType> In) {
    return std::optional<TensorType>(In[0]);
  });

  // FMHA(Q, K, V[, Mask]): Q-shaped with V's head dim (softmax(αQKᵀ)V,
  // §4.1); the masked variant takes the additive mask as a fourth operand.
  for (std::string_view Name : {"FMHA", "FMHAMasked"})
    registerRule(Name, [](const Graph &, NodeId,
                          std::span<const TensorType> In)
                      -> std::optional<TensorType> {
      if (In[0].rank() < 2 || In[2].rank() < 2)
        return std::nullopt;
      TensorType Out = In[0];
      Out.Dims.back() = In[2].Dims.back();
      return Out;
    });

  // ConvEpilog(x, w, bias) computes the same output shape as Conv2D(x, w);
  // the rule only inspects the first two inputs.
  for (std::string_view Name : {"Conv2D", "ConvEpilog"})
    registerRule(Name, [](const Graph &G, NodeId N,
                          std::span<const TensorType> In)
                      -> std::optional<TensorType> {
      // x: [N, C, H, W], w: [F, C, kh, kw]
      if (In[0].rank() != 4 || In[1].rank() != 4)
        return std::nullopt;
      if (In[0].Dims[1] != In[1].Dims[1])
        return std::nullopt;
      int64_t Stride = attrOr(G, N, "stride", 1);
      int64_t Pad = attrOr(G, N, "pad", 0);
      int64_t H = (In[0].Dims[2] + 2 * Pad - In[1].Dims[2]) / Stride + 1;
      int64_t W = (In[0].Dims[3] + 2 * Pad - In[1].Dims[3]) / Stride + 1;
      if (H <= 0 || W <= 0)
        return std::nullopt;
      TensorType Out;
      Out.Dtype = In[0].Dtype;
      Out.Dims = {In[0].Dims[0], In[1].Dims[0], H, W};
      return Out;
    });

  for (std::string_view Name : {"MaxPool", "AvgPool"})
    registerRule(Name, [](const Graph &G, NodeId N,
                          std::span<const TensorType> In)
                      -> std::optional<TensorType> {
      if (In[0].rank() != 4)
        return std::nullopt;
      int64_t K = attrOr(G, N, "k", 2);
      int64_t Stride = attrOr(G, N, "stride", K);
      int64_t H = (In[0].Dims[2] - K) / Stride + 1;
      int64_t W = (In[0].Dims[3] - K) / Stride + 1;
      if (H <= 0 || W <= 0)
        return std::nullopt;
      TensorType Out = In[0];
      Out.Dims[2] = H;
      Out.Dims[3] = W;
      return Out;
    });

  registerRule("GlobalAvgPool", [](const Graph &, NodeId,
                                   std::span<const TensorType> In)
                    -> std::optional<TensorType> {
    if (In[0].rank() != 4)
      return std::nullopt;
    TensorType Out;
    Out.Dtype = In[0].Dtype;
    Out.Dims = {In[0].Dims[0], In[0].Dims[1]};
    return Out;
  });

  registerRule("Reshape", [](const Graph &G, NodeId N,
                             std::span<const TensorType> In)
                    -> std::optional<TensorType> {
    TensorType Out;
    Out.Dtype = In[0].Dtype;
    for (std::string_view Key : {"d0", "d1", "d2", "d3"})
      if (std::optional<int64_t> D = G.attr(N, Symbol::intern(Key)))
        Out.Dims.push_back(*D);
    if (Out.numElements() != In[0].numElements())
      return std::nullopt; // relayout must preserve element count
    return Out;
  });

  registerRule("Flatten", [](const Graph &, NodeId,
                             std::span<const TensorType> In)
                    -> std::optional<TensorType> {
    if (In[0].rank() < 1)
      return std::nullopt;
    int64_t Rest = 1;
    for (size_t I = 1; I < In[0].Dims.size(); ++I)
      Rest *= In[0].Dims[I];
    TensorType Out;
    Out.Dtype = In[0].Dtype;
    Out.Dims = {In[0].Dims[0], Rest};
    return Out;
  });
}

void ShapeInference::registerRule(std::string_view OpName, InferFn Fn) {
  Rules[Symbol::intern(OpName)] = std::move(Fn);
}

bool ShapeInference::applyRule(Graph &G, NodeId N, DiagnosticEngine *Diags,
                               bool &Defaulted) const {
  const Node &Nd = G.node(N);
  std::vector<TensorType> InTypes;
  InTypes.reserve(Nd.Inputs.size());
  for (NodeId In : Nd.Inputs)
    InTypes.push_back(G.type(In));

  auto It = Rules.find(G.signature().name(Nd.Op));
  if (It == Rules.end()) {
    // Opaque operator: same type as first input (shape-preserving), which
    // is correct for the whole unary_pointwise class.
    Defaulted = true;
    if (!InTypes.empty())
      G.setType(N, InTypes[0]);
    return true;
  }
  std::optional<TensorType> Out = It->second(G, N, InTypes);
  if (!Out) {
    if (Diags) {
      std::string Msg = "shape inference failed for node " +
                        std::to_string(N) + " (" +
                        std::string(G.signature().name(Nd.Op).str()) + "): ";
      for (const TensorType &T : InTypes)
        Msg += T.str() + " ";
      Diags->error(SourceLoc(), Msg);
    }
    return false;
  }
  G.setType(N, std::move(*Out));
  return true;
}

ShapeInference::Stats ShapeInference::inferAll(Graph &G,
                                               DiagnosticEngine *Diags) const {
  Stats S;
  for (NodeId N : G.topoOrder()) {
    if (G.inputs(N).empty())
      continue; // leaves keep their preset type
    bool Defaulted = false;
    if (!applyRule(G, N, Diags, Defaulted)) {
      ++S.Errors;
      continue;
    }
    ++S.InferredNodes;
    if (Defaulted)
      ++S.DefaultedNodes;
  }
  return S;
}

bool ShapeInference::inferNode(Graph &G, NodeId N,
                               DiagnosticEngine *Diags) const {
  if (G.inputs(N).empty())
    return true;
  bool Defaulted = false;
  return applyRule(G, N, Diags, Defaulted);
}
