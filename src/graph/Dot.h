//===- graph/Dot.h - Graphviz export ----------------------------*- C++ -*-===//
///
/// \file
/// Renders a computation graph in Graphviz DOT format for debugging and
/// the examples' before/after visualizations.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_GRAPH_DOT_H
#define PYPM_GRAPH_DOT_H

#include "graph/Graph.h"

#include <string>

namespace pypm::graph {

/// DOT text for the live subgraph. Node labels show op name, type, and
/// attributes.
std::string toDot(const Graph &G, std::string_view Title = "pypm");

} // namespace pypm::graph

#endif // PYPM_GRAPH_DOT_H
