//===- graph/TermView.h - Graph ↔ term adapter ------------------*- C++ -*-===//
///
/// \file
/// CorePyPM abstracts computation graphs as syntax trees (§3): the matcher
/// matches the *tree unrolling* of the subgraph rooted at a node. TermView
/// provides that view: termFor(n) converts the DAG rooted at n into a
/// hash-consed term (conversion is memoized per node, so shared subgraphs
/// convert once and sharing survives as hash-consing sharing — the
/// conversion is linear in the number of live nodes, not in tree size).
///
/// Term attributes are assembled from the node: `elt_type`, `rank`,
/// `dim0…dim7` from the inferred tensor type, plus the node's own operator
/// attributes (stride, value_u6, …). Because attributes participate in term
/// identity, structurally equal subgraphs with different shapes are
/// distinct terms — which is what nonlinear patterns should see.
///
/// nodeFor(t) maps a matched term back to a *representative* node (needed
/// to build rule replacements); when hash-consing merged several
/// structurally identical nodes, any representative is semantically
/// interchangeable (pure dataflow).
///
/// After any graph mutation, call invalidate().
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_GRAPH_TERMVIEW_H
#define PYPM_GRAPH_TERMVIEW_H

#include "graph/Graph.h"
#include "term/Term.h"

#include <unordered_map>

namespace pypm::graph {

class TermView {
public:
  TermView(const Graph &G, term::TermArena &Arena) : G(G), Arena(Arena) {}

  /// The term unrolling of the subgraph rooted at \p N.
  term::TermRef termFor(NodeId N);

  /// A live node whose unrolling equals \p T, or InvalidNode. Only terms
  /// previously produced by termFor (or their subterms) are mapped.
  NodeId nodeFor(term::TermRef T) const;

  /// Drops all memoized conversions (call after mutating the graph).
  void invalidate() {
    NodeToTerm.clear();
    TermToNode.clear();
  }

  term::TermArena &arena() { return Arena; }

private:
  const Graph &G;
  term::TermArena &Arena;
  std::unordered_map<NodeId, term::TermRef> NodeToTerm;
  std::unordered_map<term::TermRef, NodeId> TermToNode;
};

} // namespace pypm::graph

#endif // PYPM_GRAPH_TERMVIEW_H
