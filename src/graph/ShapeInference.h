//===- graph/ShapeInference.h - Tensor shape/dtype inference -----*- C++ -*-===//
///
/// \file
/// Propagates tensor types through a computation graph. PyPM guards query
/// `x.shape.rank`, `x.shape.dimN`, and `x.eltType` (§2, Fig. 1); this pass
/// computes them for every node from the leaf types the model builder set.
///
/// Rules are registered per operator name; built-in rules cover the model
/// zoo's vocabulary (matmul family, transpose, elementwise broadcast,
/// softmax/normalization, conv/pool, flatten, the fused kernels the rules
/// introduce). Operators without a rule default to "same type as first
/// input" — mirroring DLCB's treatment of unfamiliar operators as opaque
/// nodes — and are counted in Stats.DefaultedNodes.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_GRAPH_SHAPEINFERENCE_H
#define PYPM_GRAPH_SHAPEINFERENCE_H

#include "graph/Graph.h"

#include <functional>
#include <optional>
#include <unordered_map>

namespace pypm::graph {

/// Computes the output type of one node from its input types; nullopt on a
/// shape error (reported by inferAll).
using InferFn = std::function<std::optional<TensorType>(
    const Graph &, NodeId, std::span<const TensorType>)>;

class ShapeInference {
public:
  /// Constructs with the built-in rule set.
  ShapeInference();

  /// Registers/overrides the rule for an operator name.
  void registerRule(std::string_view OpName, InferFn Fn);

  /// Whether a dedicated rule exists for \p OpName (as opposed to the
  /// "same type as first input" default). The rule-set linter uses this to
  /// flag RHS operators that would be typed by the opaque fallback.
  bool hasRule(Symbol OpName) const { return Rules.count(OpName) != 0; }
  bool hasRule(std::string_view OpName) const {
    return hasRule(Symbol::intern(OpName));
  }

  struct Stats {
    size_t InferredNodes = 0;
    size_t DefaultedNodes = 0;
    size_t Errors = 0;
  };

  /// Infers types for every live non-leaf node in topological order. Leaf
  /// nodes (arity 0) keep their preset types. Returns the stats; errors are
  /// reported to \p Diags if given.
  Stats inferAll(Graph &G, DiagnosticEngine *Diags = nullptr) const;

  /// Infers the type of a single node (inputs must be typed). Returns false
  /// on error.
  bool inferNode(Graph &G, NodeId N, DiagnosticEngine *Diags = nullptr) const;

private:
  std::unordered_map<Symbol, InferFn> Rules;
  bool applyRule(Graph &G, NodeId N, DiagnosticEngine *Diags,
                 bool &Defaulted) const;
};

} // namespace pypm::graph

#endif // PYPM_GRAPH_SHAPEINFERENCE_H
