//===- graph/GraphIO.h - Textual computation-graph format -------*- C++ -*-===//
///
/// \file
/// A line-oriented textual serialization of computation graphs, so that
/// models can be shipped to / produced by the pypmc driver and diffed in
/// review:
///
///   # comment
///   n0 = Input[uid=0] : f32[8x128]
///   n1 = Weight[uid=1] : f32[128x64]
///   n2 = MatMul(n0, n1) : f32[8x64]
///   output n2
///
/// One node per line: `<name> = <Op>[k=v,…](<inputs>) : <dtype>[<dims>]`,
/// inputs referencing earlier names. Scalars print as `f32[]`. The writer
/// emits live nodes in topological order; the reader checks arities,
/// declares unknown operators with the observed arity, and reports errors
/// with line numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_GRAPH_GRAPHIO_H
#define PYPM_GRAPH_GRAPHIO_H

#include "graph/Graph.h"

#include <memory>
#include <string>

namespace pypm::graph {

/// Renders the live subgraph as text (inverse of parseGraphText).
std::string writeGraphText(const Graph &G);

/// Parses the textual format. Returns nullptr and reports line-located
/// diagnostics on malformed input. Unknown operators are declared in
/// \p Sig with the observed arity.
std::unique_ptr<Graph> parseGraphText(std::string_view Text,
                                      term::Signature &Sig,
                                      DiagnosticEngine &Diags);

} // namespace pypm::graph

#endif // PYPM_GRAPH_GRAPHIO_H
