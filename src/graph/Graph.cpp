//===- graph/Graph.cpp - Tensor computation graph IR -------------------------===//

#include "graph/Graph.h"

#include <algorithm>
#include <cmath>

using namespace pypm;
using namespace pypm::graph;

std::string TensorType::str() const {
  std::string Out(term::dtypeName(Dtype));
  Out += '[';
  for (size_t I = 0; I != Dims.size(); ++I) {
    if (I)
      Out += 'x';
    Out += std::to_string(Dims[I]);
  }
  Out += ']';
  return Out;
}

NodeId Graph::addNode(term::OpId Op, std::span<const NodeId> Inputs,
                      std::vector<term::Attr> Attrs) {
  assert(Op.isValid() && "node with invalid op");
  assert(Inputs.size() == Sig.arity(Op) &&
         "input count does not match declared arity");
  Node N;
  N.Op = Op;
  N.Inputs.assign(Inputs.begin(), Inputs.end());
  N.Attrs = std::move(Attrs);
  std::sort(N.Attrs.begin(), N.Attrs.end(),
            [](const term::Attr &A, const term::Attr &B) {
              return A.Key.rawId() < B.Key.rawId();
            });
  NodeId Id = static_cast<NodeId>(Nodes.size());
  for (NodeId In : Inputs) {
    assert(In < Id && "forward reference: inputs must already exist");
    assert(!Nodes[In].Dead && "using a dead node as input");
    Users[In].push_back(Id);
  }
  // Monotone allocation estimate: node ids are stable and dead nodes stay
  // allocated, so nothing is ever subtracted. Counted here — in the single
  // mutation path — so it is a pure function of the committed node
  // sequence, independent of matcher thread count.
  ApproxBytes += sizeof(Node) + sizeof(std::vector<NodeId>) +
                 N.Inputs.size() * 2 * sizeof(NodeId) +
                 N.Attrs.size() * sizeof(term::Attr);
  Nodes.push_back(std::move(N));
  Users.emplace_back();
  return Id;
}

NodeId Graph::addLeaf(std::string_view OpName, TensorType Type,
                      std::vector<term::Attr> Attrs) {
  term::OpId Op = Sig.getOrAddOp(OpName, 0, 1, "leaf");
  // Distinct leaves are distinct *values* even when their shapes coincide
  // (two Weight[768,768] tensors hold different data). A unique id
  // attribute keeps hash-consing from conflating them in the term view;
  // Const leaves, by contrast, are identified by their value and share.
  static const Symbol UidKey = Symbol::intern("uid");
  Attrs.push_back({UidKey, static_cast<int64_t>(Nodes.size())});
  NodeId N = addNode(Op, std::span<const NodeId>(), std::move(Attrs));
  setType(N, std::move(Type));
  return N;
}

NodeId Graph::addConst(double Value, term::DType Dtype) {
  term::OpId Op = Sig.lookup("Const");
  if (!Op.isValid())
    Op = Sig.addOp("Const", 0, 1, "const", {Symbol::intern("value_u6")});
  std::vector<term::Attr> Attrs{
      {Symbol::intern("value_u6"),
       static_cast<int64_t>(std::llround(Value * 1e6))}};
  NodeId N = addNode(Op, std::span<const NodeId>(), std::move(Attrs));
  TensorType T;
  T.Dtype = Dtype;
  setType(N, std::move(T));
  return N;
}

std::optional<int64_t> Graph::attr(NodeId N, Symbol Key) const {
  for (const term::Attr &A : node(N).Attrs)
    if (A.Key == Key)
      return A.Value;
  return std::nullopt;
}

void Graph::replaceAllUses(NodeId From, NodeId To, NodeId SkipUsersFrom) {
  assert(From < Nodes.size() && To < Nodes.size());
  if (From == To)
    return;
  std::vector<NodeId> Kept;
  for (NodeId User : Users[From]) {
    if (User >= SkipUsersFrom) {
      Kept.push_back(User);
      continue;
    }
    for (NodeId &In : Nodes[User].Inputs)
      if (In == From)
        In = To;
    Users[To].push_back(User);
  }
  Users[From] = std::move(Kept);
  for (NodeId &Out : Outputs)
    if (Out == From)
      Out = To;
}

size_t Graph::numLiveNodes() const {
  size_t Count = 0;
  for (const Node &N : Nodes)
    if (!N.Dead)
      ++Count;
  return Count;
}

size_t Graph::removeUnreachable(std::vector<NodeId> *SweptIds) {
  std::vector<char> Reachable(Nodes.size(), 0);
  std::vector<NodeId> Stack(Outputs.begin(), Outputs.end());
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    if (Reachable[N])
      continue;
    Reachable[N] = 1;
    for (NodeId In : Nodes[N].Inputs)
      Stack.push_back(In);
  }
  size_t Swept = 0;
  for (NodeId N = 0; N != Nodes.size(); ++N) {
    if (Reachable[N] || Nodes[N].Dead)
      continue;
    Nodes[N].Dead = true;
    Users[N].clear();
    if (SweptIds)
      SweptIds->push_back(N);
    ++Swept;
  }
  // Prune dead users from remaining use lists.
  for (NodeId N = 0; N != Nodes.size(); ++N) {
    auto &U = Users[N];
    U.erase(std::remove_if(U.begin(), U.end(),
                           [&](NodeId User) { return Nodes[User].Dead; }),
            U.end());
  }
  return Swept;
}

std::vector<NodeId> Graph::topoOrder() const {
  // Rewrites redirect uses across node-id order, so a real DFS postorder
  // is required (ids alone are not topological after replaceAllUses).
  std::vector<NodeId> Order;
  Order.reserve(Nodes.size());
  std::vector<uint8_t> State(Nodes.size(), 0); // 0 new, 1 visiting, 2 done
  std::vector<std::pair<NodeId, size_t>> Stack;
  for (NodeId Root = 0; Root != Nodes.size(); ++Root) {
    if (Nodes[Root].Dead || State[Root] == 2)
      continue;
    Stack.emplace_back(Root, 0);
    State[Root] = 1;
    while (!Stack.empty()) {
      auto &[N, NextInput] = Stack.back();
      if (NextInput < Nodes[N].Inputs.size()) {
        NodeId In = Nodes[N].Inputs[NextInput++];
        if (State[In] == 0) {
          State[In] = 1;
          Stack.emplace_back(In, 0);
        }
        continue;
      }
      State[N] = 2;
      Order.push_back(N);
      Stack.pop_back();
    }
  }
  return Order;
}

bool Graph::verify(DiagnosticEngine &Diags) const {
  bool Ok = true;
  for (NodeId N = 0; N != Nodes.size(); ++N) {
    const Node &Nd = Nodes[N];
    if (Nd.Dead)
      continue;
    if (Nd.Inputs.size() != Sig.arity(Nd.Op)) {
      Diags.error(SourceLoc(),
                  "node " + std::to_string(N) + " arity mismatch for op '" +
                      std::string(Sig.name(Nd.Op).str()) + "'");
      Ok = false;
    }
    for (NodeId In : Nd.Inputs) {
      if (In >= Nodes.size()) {
        Diags.error(SourceLoc(), "node " + std::to_string(N) +
                                     " has out-of-range input " +
                                     std::to_string(In));
        Ok = false;
      } else if (Nodes[In].Dead) {
        Diags.error(SourceLoc(), "node " + std::to_string(N) +
                                     " uses dead node " + std::to_string(In));
        Ok = false;
      }
    }
  }
  // Acyclicity: every live node must appear in a completed topological
  // order after all its inputs.
  {
    std::vector<NodeId> Order = topoOrder();
    std::vector<size_t> Position(Nodes.size(), ~size_t(0));
    for (size_t I = 0; I != Order.size(); ++I)
      Position[Order[I]] = I;
    for (NodeId N : Order)
      for (NodeId In : Nodes[N].Inputs)
        if (Position[In] == ~size_t(0) || Position[In] > Position[N]) {
          Diags.error(SourceLoc(), "cycle through node " + std::to_string(N));
          Ok = false;
        }
  }
  for (NodeId Out : Outputs)
    if (Out >= Nodes.size() || Nodes[Out].Dead) {
      Diags.error(SourceLoc(),
                  "graph output " + std::to_string(Out) + " is dead");
      Ok = false;
    }
  return Ok;
}

size_t Graph::countOps(term::OpId Op) const {
  size_t Count = 0;
  for (const Node &N : Nodes)
    if (!N.Dead && N.Op == Op)
      ++Count;
  return Count;
}

size_t Graph::countOps(std::string_view OpName) const {
  term::OpId Op = Sig.lookup(OpName);
  if (!Op.isValid())
    return 0;
  return countOps(Op);
}
