//===- graph/TermView.cpp - Graph ↔ term adapter -----------------------------===//

#include "graph/TermView.h"

using namespace pypm;
using namespace pypm::graph;

term::TermRef TermView::termFor(NodeId N) {
  assert(!G.isDead(N) && "term view of a dead node");
  if (auto It = NodeToTerm.find(N); It != NodeToTerm.end())
    return It->second;

  std::vector<term::TermRef> Children;
  Children.reserve(G.inputs(N).size());
  for (NodeId In : G.inputs(N))
    Children.push_back(termFor(In));

  // Tensor-type attributes first, then the node's own operator attributes.
  static const Symbol EltType = Symbol::intern("elt_type");
  static const Symbol Rank = Symbol::intern("rank");
  static const Symbol DimKeys[8] = {
      Symbol::intern("dim0"), Symbol::intern("dim1"), Symbol::intern("dim2"),
      Symbol::intern("dim3"), Symbol::intern("dim4"), Symbol::intern("dim5"),
      Symbol::intern("dim6"), Symbol::intern("dim7")};

  const TensorType &Ty = G.type(N);
  std::vector<term::Attr> Attrs;
  Attrs.reserve(Ty.rank() + 2 + G.attrs(N).size());
  Attrs.push_back({EltType, static_cast<int64_t>(Ty.Dtype)});
  Attrs.push_back({Rank, static_cast<int64_t>(Ty.rank())});
  for (unsigned I = 0; I < Ty.rank() && I < 8; ++I)
    Attrs.push_back({DimKeys[I], Ty.Dims[I]});
  for (const term::Attr &A : G.attrs(N))
    Attrs.push_back(A);

  term::TermRef T =
      Arena.make(G.op(N), std::span<const term::TermRef>(Children), Attrs);
  NodeToTerm.emplace(N, T);
  // Keep the first (lowest-id) representative for determinism.
  TermToNode.emplace(T, N);
  return T;
}

NodeId TermView::nodeFor(term::TermRef T) const {
  auto It = TermToNode.find(T);
  return It == TermToNode.end() ? InvalidNode : It->second;
}
