//===- search/Search.cpp - Cost-directed rewrite search -----------------------===//
//
// Structure of one search step (searchRewrite's outer loop):
//
//  1. COMMITTED ENUMERATION (serial, canonical order): walk the live nodes
//     ascending, try every non-quarantined entry — through the plan-family
//     discrimination-tree prefilter (and the batched frontier sweep under
//     --batch) when one is selected — and enumerate up to SearchWitnesses
//     witnesses per match via resume. Every witness with a passing rule
//     guard is one Candidate. This phase carries ALL governed state:
//     budget step/μ charges, quarantine counts, fault sites, per-pattern
//     counters. It is bit-identical at any NumThreads because it never
//     runs on a worker.
//
//  2. SPECULATIVE EXPANSION (parallel, hermetic): clone the graph per
//     candidate, apply, delta-cost with sim::CostModel. BestOfN expands
//     the first BeamWidth candidates and rolls each forward greedily;
//     Beam expands all candidates and keeps the BeamWidth cheapest
//     partial sequences per depth. Workers touch only their own clones
//     (Graph's copy shares the Signature by reference; applyCandidate
//     re-derives the witness in a private arena), results land in
//     index-addressed slots, and ranking is a stable sort on cost — ties
//     resolve to the canonical enumeration order. No budget charges, no
//     fault-injector consultation: speculation is hermetic by contract,
//     so governance outcomes cannot depend on how branches were explored.
//
//  3. COMMIT (serial): re-derive and fire the winning first step on the
//     subject graph, with the fault injector armed (guard evals and RHS
//     builds hit the same hooks greedy fires do). An absorbed fault
//     rolls back to the last committed state and quarantines or halts,
//     exactly like the greedy engine's transactional commit.
//
// Rejected branches were never applied to the subject graph, so "rollback"
// of a losing candidate is the no-op of dropping its clone.
//
//===----------------------------------------------------------------------===//

#include "search/Search.h"

#include "graph/TermView.h"
#include "match/FastMatcher.h"
#include "plan/PlanBuilder.h"
#include "plan/Program.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <memory>

using namespace pypm;
using namespace pypm::search;
using namespace pypm::rewrite;
using graph::Graph;
using graph::NodeId;
using match::MachineStatus;

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::string entryName(const RewriteEntry &E) {
  return std::string(E.Pattern->Name.str());
}

/// First rule of \p E (starting at \p From) whose guard passes under \p W,
/// or -1. \p OnGuardEval, when non-null, runs before each evaluation (the
/// committed path hooks the fault injector here); exceptions propagate.
int firstPassingRule(const RewriteEntry &E, const match::Witness &W,
                     const term::TermArena &Arena, size_t From,
                     FaultInjector *Faults) {
  match::SubstEnv Env(W.Theta, W.Phi, Arena);
  for (size_t RI = From; RI != E.Rules.size(); ++RI) {
    const pattern::RewriteRule *R = E.Rules[RI];
    if (R->Guard) {
      if (Faults)
        Faults->onGuardEval();
      if (!R->Guard->evalBool(Env).truthy())
        continue;
    }
    return static_cast<int>(RI);
  }
  return -1;
}

} // namespace

std::vector<Candidate>
pypm::search::enumerateCandidates(const Graph &G, const RuleSet &Rules,
                                  const EnumOptions &EO) {
  std::vector<Candidate> Out;
  term::TermArena Arena(G.signature());
  graph::TermView View(G, Arena);
  const auto &Entries = Rules.entries();
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (G.isDead(N))
      continue;
    for (size_t I = 0; I != Entries.size(); ++I) {
      if (EO.SkipEntry && I < EO.SkipEntry->size() && (*EO.SkipEntry)[I])
        continue;
      const RewriteEntry &E = Entries[I];
      if (E.Rules.empty())
        continue; // match-only: nothing can fire
      match::FastMatcher M(Arena, EO.MachineOpts);
      MachineStatus S;
      try {
        S = M.match(E.Pattern->Pat, View.termFor(N));
      } catch (...) {
        continue; // hermetic: a throwing attempt yields no candidates
      }
      for (unsigned WI = 0; S == MachineStatus::Success; ++WI) {
        match::Witness W = M.witness();
        int RI;
        try {
          RI = firstPassingRule(E, W, Arena, 0, nullptr);
        } catch (...) {
          break; // hermetic: a throwing guard ends this entry's witnesses
        }
        if (RI >= 0)
          Out.push_back(Candidate{N, static_cast<uint32_t>(I), WI,
                                  static_cast<uint32_t>(RI)});
        if (WI + 1 >= EO.MaxWitnesses)
          break;
        try {
          S = M.resume();
        } catch (...) {
          break;
        }
      }
    }
  }
  return Out;
}

ApplyResult pypm::search::applyCandidate(Graph &G, const Candidate &C,
                                         const RuleSet &Rules,
                                         const graph::ShapeInference &SI,
                                         const sim::CostModel &CM,
                                         const match::Machine::Options &MO,
                                         FaultInjector *Faults) {
  ApplyResult Res;
  const RewriteEntry &E = Rules.entries()[C.Entry];
  term::TermArena Arena(G.signature());
  graph::TermView View(G, Arena);
  match::FastMatcher M(Arena, MO);
  MachineStatus S = M.match(E.Pattern->Pat, View.termFor(C.Node));
  for (uint32_t WI = 0; S == MachineStatus::Success && WI < C.WitnessIdx; ++WI)
    S = M.resume();
  if (S != MachineStatus::Success)
    return Res; // not reachable on a faithful clone; refuse rather than UB
  match::Witness W = M.witness();
  match::SubstEnv Env(W.Theta, W.Phi, Arena);
  // Nodes appended from here on were never part of the base cost. A rule
  // whose RHS fails to build (an unbound fall-through parameter, e.g.
  // fuse_mha_masked on an unmasked graph) may strand orphan nodes; they
  // must stay in place until the witness is no longer needed — sweeping
  // and invalidating the view here would wipe the term-to-node memo the
  // remaining rules' VarRefs resolve through, making every fall-through
  // rule unbuildable. The greedy engine's failure path leaves orphans for
  // the same reason.
  const NodeId Base = static_cast<NodeId>(G.numNodes());
  for (size_t RI = C.Rule; RI != E.Rules.size(); ++RI) {
    const pattern::RewriteRule *R = E.Rules[RI];
    if (R->Guard) {
      if (Faults)
        Faults->onGuardEval();
      if (!R->Guard->evalBool(Env).truthy())
        continue; // cannot happen at RI == C.Rule (guards are pure)
    }
    NodeId Rep;
    try {
      Rep = rewrite::buildRhs(G, View, R->Rhs, W, SI, Faults);
    } catch (...) {
      // Transactional: the partial build only appended unreferenced
      // nodes; sweep them so the caller sees the pre-call graph.
      G.removeUnreachable();
      throw;
    }
    if (Rep == graph::InvalidNode)
      continue; // RHS build failed (unbound var); try next rule
    std::vector<NodeId> SweptIds;
    G.replaceAllUses(C.Node, Rep, Base);
    G.removeUnreachable(&SweptIds);
    Res.Swept = SweptIds.size();
    // Delta-cost the commit: appended-and-live nodes minus previously-live
    // swept nodes (ids >= Base — replacement nodes and failed-rule orphans
    // alike — were never part of the base cost).
    std::vector<NodeId> Added;
    for (NodeId N = Base; N < G.numNodes(); ++N)
      if (!G.isDead(N))
        Added.push_back(N);
    SweptIds.erase(std::remove_if(SweptIds.begin(), SweptIds.end(),
                                  [&](NodeId N) { return N >= Base; }),
                   SweptIds.end());
    Res.CostDelta = CM.commitDelta(G, Added, SweptIds);
    Res.Applied = true;
    Res.Replacement = Rep;
    return Res;
  }
  G.removeUnreachable(); // every rule failed: drop any stranded orphans
  return Res;
}

namespace {

/// One partial commit sequence under exploration: the clone it produced,
/// the level-0 candidate it started from (all that matters for the
/// receding-horizon commit), and its accumulated modeled cost.
struct BeamState {
  std::unique_ptr<Graph> G;
  uint32_t FirstCand = 0; ///< index into the sweep's candidate vector
  double Cost = 0.0;
  bool Terminal = false; ///< no further candidates on this branch
};

class SearchLoop {
public:
  SearchLoop(Graph &G, const RuleSet &Rules, const graph::ShapeInference &SI,
             const RewriteOptions &Opts)
      : G(G), Rules(Rules), SI(SI), Opts(Opts),
        CM(Opts.SearchCost ? *Opts.SearchCost : OwnedCM) {
    const size_t NumEntries = Rules.entries().size();
    Quarantined.assign(NumEntries, 0);
    FuelExhausts.assign(NumEntries, 0);
    if (Opts.PreQuarantined)
      for (const std::string &Name : *Opts.PreQuarantined)
        for (size_t I = 0; I != NumEntries; ++I)
          if (entryName(Rules.entries()[I]) == Name)
            Quarantined[I] = 1;
    // Plan-family matcher kinds contribute their discrimination-tree
    // prefilter (and, under Batch, the frontier sweep); attempts
    // themselves run FastMatcher — per-attempt observable behavior is
    // identical across matcher kinds, so candidates are too.
    if (planFamily(Opts.matcher()) && Opts.UseRootIndex) {
      if (Opts.PrecompiledPlan && planMatchesRules(*Opts.PrecompiledPlan)) {
        Plan = Opts.PrecompiledPlan;
      } else {
        double C0 = nowSeconds();
        OwnedPlan = std::make_unique<plan::Program>(
            plan::PlanBuilder::compile(Rules, G.signature()));
        Stats.PlanCompileSeconds = nowSeconds() - C0;
        Plan = OwnedPlan.get();
      }
    }
    MachineOpts = Opts.MachineOpts;
    Bgt = Opts.EngineBudget;
    if (Bgt) {
      Bgt->start();
      // Matchers — committed and speculative alike — poll the deadline and
      // cancellation cooperatively; step/μ ceilings stay commit-order-only.
      MachineOpts.EngineBudget = Bgt;
    }
    Faults = Opts.Faults ? Opts.Faults : FaultInjector::global();
    if (Opts.NumThreads >= 1)
      Pool = std::make_unique<ThreadPool>(Opts.NumThreads);
  }

  RewriteStats run() {
    double Start = nowSeconds();
    Stats.ModeledCostBefore = CM.graphCost(G).Seconds;
    RunningCost = Stats.ModeledCostBefore;
    while (!halted()) {
      ++Stats.Passes;
      ++Stats.SearchSteps;
      std::vector<Candidate> Cands = enumerateCommitted();
      if (halted() || Cands.empty())
        break;
      double S0 = nowSeconds();
      std::optional<uint32_t> Choice = selectCandidate(Cands);
      Stats.SearchSeconds += nowSeconds() - S0;
      if (!Choice) {
        // Pathological: nothing in the expansion set could build. Fall
        // back to the greedy step over the full candidate list so search
        // never reaches a worse fixpoint than greedy on buildability.
        if (!commitFirstBuildable(Cands))
          break;
        continue;
      }
      if (!commit(Cands[*Choice]))
        continue; // absorbed fault: state rolled back, re-enumerate
      if (Stats.TotalFired >= Opts.MaxRewrites) {
        halt(BudgetReason::Rewrites);
        break;
      }
    }
    Stats.ModeledCostAfter = CM.graphCost(G).Seconds;
    Stats.TotalSeconds = nowSeconds() - Start;
    Stats.DiscoverySeconds = Stats.MatchSeconds;
    return std::move(Stats);
  }

private:
  Graph &G;
  const RuleSet &Rules;
  const graph::ShapeInference &SI;
  const RewriteOptions &Opts;
  sim::CostModel OwnedCM;
  const sim::CostModel &CM;
  RewriteStats Stats;
  match::Machine::Options MachineOpts;
  Budget *Bgt = nullptr;
  FaultInjector *Faults = nullptr;
  const plan::Program *Plan = nullptr;
  std::unique_ptr<plan::Program> OwnedPlan;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<uint8_t> Quarantined;
  std::vector<uint32_t> FuelExhausts;
  BudgetReason Stop = BudgetReason::None;
  double RunningCost = 0.0;

  bool planMatchesRules(const plan::Program &P) const {
    const auto &Entries = Rules.entries();
    if (P.Entries.size() != Entries.size())
      return false;
    for (size_t I = 0; I != Entries.size(); ++I)
      if (P.Entries[I].PatternName != Entries[I].Pattern->Name)
        return false;
    return true;
  }

  bool halted() const { return Stop != BudgetReason::None; }

  void halt(BudgetReason R) {
    if (halted())
      return;
    Stop = R;
    EngineStatusCode C = EngineStatusCode::BudgetExhausted;
    if (R == BudgetReason::Cancelled)
      C = EngineStatusCode::Cancelled;
    else if (R == BudgetReason::Fault)
      C = EngineStatusCode::FaultInjected;
    Stats.Status.raise(C, R);
  }

  bool shouldStop() {
    if (halted())
      return true;
    if (!Bgt)
      return false;
    BudgetReason R = Bgt->poll(G.approxMemoryBytes());
    if (R != BudgetReason::None)
      halt(R);
    return halted();
  }

  void chargeAttempt(uint64_t Steps, uint64_t MuUnfolds) {
    if (Faults && Faults->onBudgetCharge()) {
      ++Stats.Status.FaultsAbsorbed;
      halt(BudgetReason::Steps);
      return;
    }
    if (!Bgt)
      return;
    Bgt->chargeSteps(Steps);
    Bgt->chargeMuUnfolds(MuUnfolds);
    BudgetReason R = Bgt->exceededCeiling();
    if (R != BudgetReason::None)
      halt(R);
  }

  void quarantineEntry(size_t I, const std::string &Why) {
    if (Quarantined[I])
      return;
    Quarantined[I] = 1;
    std::string Name = entryName(Rules.entries()[I]);
    Stats.Status.QuarantinedPatterns.push_back(Name);
    Stats.Status.raise(EngineStatusCode::PatternQuarantined);
    if (Opts.Diags)
      Opts.Diags->warning({}, "pattern '" + Name + "' quarantined (" + Why +
                                  "); disabled for the rest of the run");
  }

  void noteFuelExhaust(size_t I) {
    if (Opts.QuarantineThreshold == 0)
      return;
    if (++FuelExhausts[I] >= Opts.QuarantineThreshold)
      quarantineEntry(I, "fuel exhausted " + std::to_string(FuelExhausts[I]) +
                             " times");
  }

  void onAttemptFault(size_t I, const char *What) {
    ++Stats.Status.FaultsAbsorbed;
    Stats.Status.raise(EngineStatusCode::FaultInjected);
    if (Opts.Diags)
      Opts.Diags->warning({}, "fault absorbed in pattern '" +
                                  entryName(Rules.entries()[I]) +
                                  "': " + What);
    if (Opts.HaltOnFault)
      halt(BudgetReason::Fault);
    else
      quarantineEntry(I, "fault");
  }

  PatternStats &statsFor(size_t I) {
    return Stats.PerPattern[entryName(Rules.entries()[I])];
  }

  /// Phase 1: the governed enumeration sweep (see file header).
  std::vector<Candidate> enumerateCommitted() {
    std::vector<Candidate> Out;
    term::TermArena Arena(G.signature());
    graph::TermView View(G, Arena);
    const auto &Entries = Rules.entries();
    const uint64_t Sweep = Stats.SearchSteps - 1; // fault-site "pass" id

    // Batched frontier sweep: one struct-of-arrays walk computes every
    // live node's candidate mask at once (reusing batched discovery's
    // machinery); otherwise masks come from per-node tree walks below.
    std::vector<NodeId> BatchRoots;
    std::vector<uint32_t> BatchRow;
    std::vector<uint8_t> BatchMasks;
    const bool Batched = Opts.Batch && Plan != nullptr;
    if (Batched) {
      BatchRow.assign(G.numNodes(), UINT32_MAX);
      for (NodeId N = 0; N < G.numNodes(); ++N)
        if (!G.isDead(N)) {
          BatchRow[N] = static_cast<uint32_t>(BatchRoots.size());
          BatchRoots.push_back(N);
        }
      Plan->batchCandidates(G, BatchRoots, BatchMasks);
      Stats.BatchedNodes += BatchRoots.size();
    }

    std::vector<uint8_t> Mask;
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      if (G.isDead(N))
        continue;
      if (shouldStop())
        return Out;
      ++Stats.NodesVisited;
      const uint8_t *Cand = nullptr;
      if (Batched) {
        Cand = &BatchMasks[size_t(BatchRow[N]) * Entries.size()];
      } else if (Plan) {
        Plan->candidates(G, N, Mask);
        Cand = Mask.data();
      }
      for (size_t I = 0; I != Entries.size(); ++I) {
        if (halted())
          return Out;
        if (Quarantined[I])
          continue;
        const RewriteEntry &E = Entries[I];
        PatternStats &PS = statsFor(I);
        if (Cand && !Cand[I]) {
          ++PS.RootSkips;
          continue;
        }
        double T0 = nowSeconds();
        match::FastMatcher M(Arena, MachineOpts);
        MachineStatus S;
        try {
          if (Faults && Faults->atAttemptSite(Sweep, N, I))
            throw InjectedFault("injected fault: attempt site");
          S = M.match(E.Pattern->Pat, View.termFor(N));
        } catch (const std::exception &Ex) {
          View.invalidate();
          onAttemptFault(I, Ex.what());
          continue;
        } catch (...) {
          View.invalidate();
          onAttemptFault(I, "unknown exception");
          continue;
        }
        ++PS.Attempts;
        uint64_t SeenSteps = M.stats().Steps;
        uint64_t SeenMu = M.stats().MuUnfolds;
        PS.MachineSteps += SeenSteps;
        PS.Backtracks += M.stats().Backtracks;
        double Elapsed = nowSeconds() - T0;
        PS.Seconds += Elapsed;
        Stats.MatchSeconds += Elapsed;
        chargeAttempt(SeenSteps, SeenMu);
        if (halted())
          return Out;
        if (S != MachineStatus::Success) {
          if (S == MachineStatus::OutOfFuel) {
            ++PS.FuelExhausted;
            noteFuelExhaust(I);
          }
          continue;
        }
        ++PS.Matches;
        ++Stats.TotalMatches;
        if (E.Rules.empty())
          continue; // match-only entry
        // Witness loop: enumerate up to SearchWitnesses witnesses; every
        // witness with a passing rule guard is one candidate.
        const unsigned MaxW = std::max(1u, Opts.SearchWitnesses);
        for (unsigned WI = 0;; ++WI) {
          match::Witness W = M.witness();
          int RI;
          try {
            RI = firstPassingRule(E, W, Arena, 0, Faults);
          } catch (const std::exception &Ex) {
            onAttemptFault(I, Ex.what());
            break;
          } catch (...) {
            onAttemptFault(I, "unknown exception");
            break;
          }
          if (RI >= 0) {
            Out.push_back(Candidate{N, static_cast<uint32_t>(I), WI,
                                    static_cast<uint32_t>(RI)});
            ++Stats.SearchCandidates;
          } else {
            ++PS.GuardRejects;
          }
          if (WI + 1 >= MaxW || halted())
            break;
          double R0 = nowSeconds();
          try {
            S = M.resume();
          } catch (const std::exception &Ex) {
            View.invalidate();
            onAttemptFault(I, Ex.what());
            break;
          } catch (...) {
            View.invalidate();
            onAttemptFault(I, "unknown exception");
            break;
          }
          // Resume stats are cumulative; charge the increment only.
          uint64_t DSteps = M.stats().Steps - SeenSteps;
          uint64_t DMu = M.stats().MuUnfolds - SeenMu;
          SeenSteps = M.stats().Steps;
          SeenMu = M.stats().MuUnfolds;
          PS.MachineSteps += DSteps;
          double RElapsed = nowSeconds() - R0;
          PS.Seconds += RElapsed;
          Stats.MatchSeconds += RElapsed;
          chargeAttempt(DSteps, DMu);
          if (S != MachineStatus::Success) {
            if (S == MachineStatus::OutOfFuel) {
              ++PS.FuelExhausted;
              noteFuelExhaust(I);
            }
            break;
          }
        }
      }
    }
    return Out;
  }

  /// Phase 2: speculative expansion + ranking. Returns the index of the
  /// level-0 candidate to commit, or nullopt when nothing could build.
  std::optional<uint32_t> selectCandidate(const std::vector<Candidate> &L0) {
    const bool Beam = Opts.Search == SearchStrategy::Beam;
    const size_t ExpandN =
        Beam ? L0.size() : std::min<size_t>(Opts.BeamWidth, L0.size());

    // Level 1: clone the subject graph per expanded candidate.
    struct Exp {
      std::unique_ptr<Graph> GC;
      ApplyResult R;
    };
    std::vector<Exp> E1(ExpandN);
    forEach(ExpandN, [&](size_t K) {
      auto GC = std::make_unique<Graph>(G);
      try {
        E1[K].R = applyCandidate(*GC, L0[K], Rules, SI, CM, MachineOpts,
                                 /*Faults=*/nullptr);
      } catch (...) {
        E1[K].R.Applied = false; // speculative fault: branch dropped
      }
      E1[K].GC = std::move(GC);
    });
    Stats.SearchExpansions += ExpandN;

    std::vector<BeamState> States;
    for (size_t K = 0; K != ExpandN; ++K) {
      if (!E1[K].R.Applied)
        continue;
      BeamState S;
      S.G = std::move(E1[K].GC);
      S.FirstCand = static_cast<uint32_t>(K);
      S.Cost = RunningCost + E1[K].R.CostDelta;
      States.push_back(std::move(S));
    }
    if (States.empty())
      return std::nullopt;
    prune(States);

    // Depths 2..Lookahead: BestOfN rolls each survivor forward greedily
    // (its canonical-first candidate); Beam expands every candidate of
    // every survivor and keeps the BeamWidth cheapest sequences.
    EnumOptions EO;
    EO.MachineOpts = MachineOpts;
    EO.MaxWitnesses = std::max(1u, Opts.SearchWitnesses);
    EO.SkipEntry = &Quarantined;
    for (unsigned Depth = 2; Depth <= Opts.Lookahead; ++Depth) {
      if (std::all_of(States.begin(), States.end(),
                      [](const BeamState &S) { return S.Terminal; }))
        break;
      std::vector<std::vector<Candidate>> Moves(States.size());
      forEach(States.size(), [&](size_t K) {
        if (!States[K].Terminal)
          Moves[K] = enumerateCandidates(*States[K].G, Rules, EO);
      });
      struct Job {
        size_t State;
        size_t Move;
      };
      std::vector<Job> Jobs;
      for (size_t K = 0; K != States.size(); ++K) {
        if (States[K].Terminal || Moves[K].empty()) {
          States[K].Terminal = true;
          continue;
        }
        size_t Take = Beam ? Moves[K].size() : 1;
        for (size_t J = 0; J != Take; ++J)
          Jobs.push_back(Job{K, J});
      }
      if (Jobs.empty())
        break;
      std::vector<Exp> E(Jobs.size());
      forEach(Jobs.size(), [&](size_t K) {
        auto GC = std::make_unique<Graph>(*States[Jobs[K].State].G);
        try {
          E[K].R = applyCandidate(*GC, Moves[Jobs[K].State][Jobs[K].Move],
                                  Rules, SI, CM, MachineOpts,
                                  /*Faults=*/nullptr);
        } catch (...) {
          E[K].R.Applied = false;
        }
        E[K].GC = std::move(GC);
      });
      Stats.SearchExpansions += Jobs.size();

      // Children in (state, move) order — the stable sort below preserves
      // this as the cost tie-break; terminal states carry forward.
      std::vector<BeamState> Next;
      std::vector<uint8_t> Progressed(States.size(), 0);
      for (size_t K = 0; K != Jobs.size(); ++K) {
        if (!E[K].R.Applied)
          continue;
        BeamState &Parent = States[Jobs[K].State];
        BeamState S;
        S.G = std::move(E[K].GC);
        S.FirstCand = Parent.FirstCand;
        S.Cost = Parent.Cost + E[K].R.CostDelta;
        Next.push_back(std::move(S));
        Progressed[Jobs[K].State] = 1;
      }
      for (size_t K = 0; K != States.size(); ++K)
        if (!Progressed[K]) {
          States[K].Terminal = true;
          Next.push_back(std::move(States[K]));
        }
      States = std::move(Next);
      prune(States);
    }
    return States.front().FirstCand;
  }

  /// Stable sort on cost (ties keep canonical generation order), then
  /// keep the BeamWidth cheapest.
  void prune(std::vector<BeamState> &States) {
    std::stable_sort(States.begin(), States.end(),
                     [](const BeamState &A, const BeamState &B) {
                       return A.Cost < B.Cost;
                     });
    if (States.size() > Opts.BeamWidth)
      States.resize(Opts.BeamWidth);
  }

  /// Index-slotted parallel map (deterministic merge by construction);
  /// serial when no pool. Body exceptions are the body's responsibility —
  /// callers catch per index.
  void forEach(size_t N, const std::function<void(size_t)> &Body) {
    if (Pool && N > 1)
      Pool->parallelFor(N, [&](size_t I, unsigned) { Body(I); });
    else
      for (size_t I = 0; I != N; ++I)
        Body(I);
  }

  /// Phase 3: fire \p C on the subject graph, fault injector armed.
  /// Returns false when a fault was absorbed (state already rolled back).
  bool commit(const Candidate &C) {
    ApplyResult R;
    try {
      R = applyCandidate(G, C, Rules, SI, CM, MachineOpts, Faults);
    } catch (const std::exception &Ex) {
      onAttemptFault(C.Entry, Ex.what());
      return false;
    } catch (...) {
      onAttemptFault(C.Entry, "unknown exception");
      return false;
    }
    if (!R.Applied)
      return false;
    noteCommit(C, R);
    return true;
  }

  /// Greedy fallback when no scored candidate could build: fire the first
  /// candidate (canonical order) that applies. Returns false at fixpoint.
  bool commitFirstBuildable(const std::vector<Candidate> &Cands) {
    for (const Candidate &C : Cands) {
      if (halted())
        return false;
      if (commit(C))
        return true;
      if (halted())
        return false;
    }
    return false;
  }

  void noteCommit(const Candidate &C, const ApplyResult &R) {
    PatternStats &PS = statsFor(C.Entry);
    ++PS.RulesFired;
    ++Stats.TotalFired;
    Stats.NodesSwept += R.Swept;
    RunningCost += R.CostDelta;
  }
};

} // namespace

RewriteStats pypm::search::searchRewrite(Graph &G, const RuleSet &Rules,
                                         const graph::ShapeInference &SI,
                                         const RewriteOptions &Opts) {
  return SearchLoop(G, Rules, SI, Opts).run();
}
