//===- search/Search.h - Cost-directed rewrite search -----------*- C++ -*-===//
///
/// \file
/// Cost-directed commit selection: instead of firing the first witness in
/// canonical order (§2.4's greedy strategy), enumerate every fireable
/// candidate per sweep — competing matches over overlapping regions,
/// including alternate witnesses of the same pattern via the resume
/// machinery — price each candidate commit sequence with sim::CostModel,
/// and commit the sequence the model prefers. This generalizes the
/// paper's §4.2 partitioning use case (price alternatives, pick the
/// cheapest) into a rewrite strategy: pass selection over a graph is
/// itself an optimization problem (PassNet), and fused-kernel candidates
/// are competing artifacts to be scored, not applied in discovery order
/// (FACT).
///
/// Two strategies over one machinery (RewriteOptions::Search):
///  - BestOfN: per step, score the first BeamWidth candidates (each
///    rolled forward Lookahead-1 greedy steps on a speculative clone) and
///    commit the cheapest;
///  - Beam: keep the BeamWidth cheapest partial commit sequences, expand
///    to depth Lookahead, commit the winner's first step (receding
///    horizon), re-enumerate, repeat.
///
/// Soundness of rollback is by construction: speculation runs exclusively
/// on Graph clones, so a rejected branch never touched the subject graph
/// — byte-identity of the non-committed state is trivial, not recovered.
/// Determinism at any NumThreads: the committed path (enumeration, budget
/// charges, quarantine counts, fault sites, the commits themselves) is
/// strictly serial in canonical candidate order; worker threads only
/// score clones, and their results merge by candidate index. See
/// DESIGN.md §"Cost-directed search".
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SEARCH_SEARCH_H
#define PYPM_SEARCH_SEARCH_H

#include "graph/Graph.h"
#include "graph/ShapeInference.h"
#include "match/Machine.h"
#include "rewrite/RewriteEngine.h"
#include "rewrite/Rule.h"
#include "sim/CostModel.h"

#include <vector>

namespace pypm::search {

/// One fireable rewrite on a specific graph state, identified positionally
/// so it can be re-derived on any structurally identical graph (a clone):
/// match entry \p Entry at node \p Node, resume to witness \p WitnessIdx,
/// fire rule \p Rule (the first of the entry's rules whose guard passes
/// under that witness). Candidates are enumerated — and therefore ranked
/// on cost ties — in the canonical order (Node asc, Entry asc, WitnessIdx
/// asc), which makes every selection deterministic.
struct Candidate {
  graph::NodeId Node = graph::InvalidNode;
  uint32_t Entry = 0;
  uint32_t WitnessIdx = 0;
  uint32_t Rule = 0;
};

/// Knobs for the hermetic enumerator (the committed-path enumeration
/// inside searchRewrite carries budget/fault/quarantine state instead).
struct EnumOptions {
  match::Machine::Options MachineOpts;
  /// Witnesses tried per (node, entry) via resume; greedy sees only 0.
  unsigned MaxWitnesses = 4;
  /// Per-entry skip mask (quarantine view); null skips nothing.
  const std::vector<uint8_t> *SkipEntry = nullptr;
};

/// Enumerates every fireable candidate on \p G in canonical order.
/// Hermetic: no budget charges, no fault-injector consultation, no stats
/// — safe for speculative rollouts and for the exhaustive test oracle
/// (tests/TestHelpers.h exhaustiveOptimum) to share the engine's exact
/// notion of "available move". Guards that throw discard that rule.
std::vector<Candidate> enumerateCandidates(const graph::Graph &G,
                                           const rewrite::RuleSet &Rules,
                                           const EnumOptions &EO = {});

struct ApplyResult {
  bool Applied = false;
  /// sim::CostModel::commitDelta of this commit (Seconds added minus
  /// Seconds freed); graphCost(after) == graphCost(before) + CostDelta.
  double CostDelta = 0.0;
  uint64_t Swept = 0;
  graph::NodeId Replacement = graph::InvalidNode;
};

/// Re-derives \p C's witness on \p G — which must be structurally
/// identical to the graph it was enumerated on, e.g. a clone — and fires
/// it: build the RHS, redirect uses, sweep, delta-cost. Self-contained
/// (private arena/view/matcher), so concurrent calls on distinct clones
/// are safe. \p Faults is consulted per guard evaluation and per RHS
/// node built (the committed path passes the run's injector; speculation
/// passes nullptr — speculation is hermetic by contract). Exceptions from
/// guards/builders propagate to the caller AFTER the partial build has
/// been rolled back (the graph is back to its pre-call state).
ApplyResult applyCandidate(graph::Graph &G, const Candidate &C,
                           const rewrite::RuleSet &Rules,
                           const graph::ShapeInference &SI,
                           const sim::CostModel &CM,
                           const match::Machine::Options &MO = {},
                           FaultInjector *Faults = nullptr);

/// The cost-directed rewrite loop. rewriteToFixpoint dispatches here when
/// Opts.Search != Greedy and Lookahead >= 1 and BeamWidth >= 1 (the
/// degenerate configurations run the greedy engine — see
/// RewriteOptions::Search). Honors the engine's governance contract:
/// budget step/μ ceilings charged in committed enumeration order,
/// quarantine counted on the committed path, faults absorbed
/// transactionally, MaxRewrites capping commits.
rewrite::RewriteStats searchRewrite(graph::Graph &G,
                                    const rewrite::RuleSet &Rules,
                                    const graph::ShapeInference &SI,
                                    const rewrite::RewriteOptions &Opts);

/// True when \p Opts selects a non-degenerate cost-directed search (the
/// condition under which rewriteToFixpoint dispatches to searchRewrite).
inline bool searchActive(const rewrite::RewriteOptions &Opts) {
  return Opts.Search != rewrite::SearchStrategy::Greedy &&
         Opts.Lookahead >= 1 && Opts.BeamWidth >= 1;
}

} // namespace pypm::search

#endif // PYPM_SEARCH_SEARCH_H
