//===- opt/StdPatterns.h - The paper's optimization library -----*- C++ -*-===//
///
/// \file
/// The hand-crafted PyPM optimization libraries evaluated in §4, written
/// in the textual dialect and compiled on demand:
///
///  - FMHA (§4.1): matches softmax(α·Q·Kᵀ)·V spelled with either Div- or
///    Mul-scaling and rewrites to the fused FMHA kernel.
///  - Epilog (§4.1): recognizes decomposed GELU (Fig. 2, both Half
///    spellings), then fuses pointwise activations into GEMM / GEMM+bias /
///    Conv+bias epilog kernels using function patterns with op-class
///    guards.
///  - cuBLAS (Fig. 1): MMxyT → cublasMM_xyT_{f32,i8} with dtype-dispatched
///    rules.
///  - UnaryChain (Fig. 3): recursive chain matching, with a rule
///    collapsing ReLU towers.
///  - Partition (Fig. 14): PwSubgraph/MatMulEpilog, match-only, consumed
///    by the directed-graph-partitioning pass (§4.2).
///
/// Each accessor returns a freshly compiled Library against the given
/// Signature (declaring the model-zoo operators first so classes and
/// arities agree).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_OPT_STDPATTERNS_H
#define PYPM_OPT_STDPATTERNS_H

#include "pattern/Pattern.h"
#include "rewrite/Rule.h"

#include <memory>
#include <string_view>
#include <vector>

namespace pypm::opt {

// DSL sources (exposed so tests and docs can show them verbatim).
std::string_view fmhaSource();
std::string_view epilogSource();
std::string_view cublasSource();
std::string_view unaryChainSource();
std::string_view partitionSource();

std::unique_ptr<pattern::Library> compileFmha(term::Signature &Sig);
std::unique_ptr<pattern::Library> compileEpilog(term::Signature &Sig);
std::unique_ptr<pattern::Library> compileCublas(term::Signature &Sig);
std::unique_ptr<pattern::Library> compileUnaryChain(term::Signature &Sig);
std::unique_ptr<pattern::Library> compilePartition(term::Signature &Sig);

/// The four benchmark configurations of Figs. 10–11.
enum class OptConfig { None, FmhaOnly, EpilogOnly, Both };
std::string_view optConfigName(OptConfig C);

/// An optimization pipeline: the owned libraries plus the RuleSet that
/// borrows them, assembled in the order the rewrites should be tried.
struct Pipeline {
  std::vector<std::unique_ptr<pattern::Library>> Libs;
  rewrite::RuleSet Rules;
};

/// Builds the pipeline for one benchmark configuration.
Pipeline makePipeline(term::Signature &Sig, OptConfig Config);

} // namespace pypm::opt

#endif // PYPM_OPT_STDPATTERNS_H
