//===- opt/StdPatterns.cpp - The paper's optimization library ------------------===//

#include "opt/StdPatterns.h"

#include "dsl/Sema.h"
#include "models/Transformers.h"

using namespace pypm;
using namespace pypm::opt;

//===----------------------------------------------------------------------===//
// DSL sources
//===----------------------------------------------------------------------===//

std::string_view pypm::opt::fmhaSource() {
  // MHA(Q,K,V) = softmax(α·Q·Kᵀ)·V, with the scale spelled either as a
  // division by √d or a multiplication by 1/√d (the alternates of §2.1).
  // The scale must be a scalar constant, enforced by a guard on the
  // ∃-bound scale subterm.
  return R"pypm(
pattern Scores(q, k, s) { return Div(MatMul(q, Trans(k)), s); }
pattern Scores(q, k, s) { return Mul(MatMul(q, Trans(k)), s); }

// m is a parameter that only the masked alternate mentions: on unmasked
// graphs it simply stays unbound.
pattern MHA(q, k, v, m) {
  s = var();
  assert s.op_id == op("Const");
  assert q.shape.rank >= 2 && v.shape.rank >= 2;
  return MatMul(Softmax(Add(Scores(q, k, s), m)), v);
}
pattern MHA(q, k, v, m) {
  s = var();
  assert s.op_id == op("Const");
  assert q.shape.rank >= 2 && v.shape.rank >= 2;
  return MatMul(Softmax(Scores(q, k, s)), v);
}

// Two rules; which fires depends on which alternate matched. The masked
// replacement references m, so when the unmasked alternate matched (m
// unbound) building its right-hand side fails and the engine falls
// through to the unmasked kernel — PyPM's "first rule whose assertions
// pass is fired" in action.
rule fuse_mha_masked for MHA(q, k, v, m) {
  return FMHAMasked(q, k, v, m);
}
rule fuse_mha for MHA(q, k, v, m) {
  return FMHA(q, k, v);
}
)pypm";
}

std::string_view pypm::opt::epilogSource() {
  // Stage 1: recognize decomposed GELU (Fig. 2) — both Half spellings —
  // and contract it to the single Gelu operator (class unary_pointwise).
  // Stage 2: fold any unary_pointwise activation into the matmul / conv
  // that feeds it, with or without an intervening BiasAdd / BatchNorm,
  // recording which activation was fused as the `act` attribute.
  return R"pypm(
pattern Half(x) { return Div(x, 2); }
pattern Half(x) { return Mul(x, 0.5); }

pattern GeluExpanded(x) {
  return Mul(Half(x), Add(1, Erf(Div(x, 1.414214))));
}

rule contract_gelu for GeluExpanded(x) {
  return Gelu(x);
}

pattern GemmBiasAct(a, b, c, f) {
  assert f.op_class == opclass("unary_pointwise");
  return f(BiasAdd(MatMul(a, b), c));
}

rule fuse_gemm_bias_act for GemmBiasAct(a, b, c, f) {
  return GemmBiasEpilog[act = f.op_id](a, b, c);
}

pattern GemmAct(a, b, f) {
  assert f.op_class == opclass("unary_pointwise");
  return f(MatMul(a, b));
}

rule fuse_gemm_act for GemmAct(a, b, f) {
  return GemmEpilog[act = f.op_id](a, b);
}

pattern ConvBiasAct(x, w, b, f, cv) {
  assert f.op_class == opclass("unary_pointwise");
  cv <= Conv2D(x, w);
  return f(BiasAdd(cv, b));
}
pattern ConvBiasAct(x, w, b, f, cv) {
  assert f.op_class == opclass("unary_pointwise");
  cv <= Conv2D(x, w);
  return f(BiasAdd(BatchNorm(cv), b));
}

rule fuse_conv_bias_act for ConvBiasAct(x, w, b, f, cv) {
  return ConvEpilog[act = f.op_id, stride = cv.stride, pad = cv.pad](x, w, b);
}
)pypm";
}

std::string_view pypm::opt::cublasSource() {
  // Fig. 1 verbatim (modulo surface syntax): rank-2 x·yᵀ with the rule
  // dispatching on element type.
  return R"pypm(
pattern MMxyT(x, y) {
  assert x.shape.rank == 2;
  assert y.shape.rank == 2;
  yt = Trans(y);
  return MatMul(x, yt);
}

rule cublasrule for MMxyT(x, y) {
  assert (x.eltType == f32 && y.eltType == f32)
      || (x.eltType == i8 && y.eltType == i8);
  if x.eltType == f32 && y.eltType == f32 {
    return cublasMM_xyT_f32(x, y);
  } elif x.eltType == i8 && y.eltType == i8 {
    return cublasMM_xyT_i8(x, y);
  }
}
)pypm";
}

std::string_view pypm::opt::unaryChainSource() {
  // Fig. 3's recursive UnaryChain plus a rule that collapses ReLU towers
  // (ReLU is idempotent). IdemChain requires ≥ 2 applications so the
  // rewrite strictly shrinks the graph.
  return R"pypm(
pattern UnaryChain(x, f) { return f(UnaryChain(x, f)); }
pattern UnaryChain(x, f) { return f(x); }

pattern IdemChain(x, f) {
  assert f.op_id == op("Relu");
  return f(UnaryChain(x, f));
}

rule collapse_relu_chain for IdemChain(x, f) {
  return f(x);
}
)pypm";
}

std::string_view pypm::opt::partitionSource() {
  // Fig. 14's PwSubgraph/MatMulEpilog: a tower of unary pointwise
  // operators anchored on a matrix multiply, each level allowed to be a
  // *different* operator (the local UnaryOp function variable is fresh
  // per recursive unfold). We encode the recursion in the style of
  // Fig. 3's UnaryChain — threading the parameter to the bottom of the
  // tower — because Fig. 14's literal listing binds its recursion leaf to
  // a fresh unused variable, under which reading the MatMul(a, b)
  // argument constrains only height-zero towers (see DESIGN.md).
  // Match-only: the directed-graph-partitioning pass consumes the matches
  // (§4.2).
  return R"pypm(
pattern PwSubgraph(x) {
  UnaryOp = opvar(1);
  assert UnaryOp.op_class == opclass("unary_pointwise");
  return UnaryOp(PwSubgraph(x));
}
pattern PwSubgraph(x) { return x; }

pattern MatMulEpilog(x) {
  a = var();
  b = var();
  x <= PwSubgraph(MatMul(a, b));
  return x;
}

// Extended variant: real epilogs also contain a bias addition and scalar
// binary pointwise steps (Div(x, 2), Mul(x, 0.5), …). The bias value b1 is
// a parameter so it lands on the region frontier; it stays unbound for
// towers without a bias (the partitioner treats unbound frontier
// variables as absent inputs).
pattern PwChain(x, b1) {
  UnaryOp = opvar(1);
  assert UnaryOp.op_class == opclass("unary_pointwise");
  return UnaryOp(PwChain(x, b1));
}
pattern PwChain(x, b1) {
  return BiasAdd(PwChain(x, b1), b1);
}
// Statement order matters for search cost, not meaning: later statements
// wrap innermost and therefore evaluate first. Writing the cheap
// `c.op_id == Const` check *after* the recursive constraint makes the
// machine test it before exploring the recursion — without it, every
// residual Add(x, y) in a ResNet doubles the backtracking search.
pattern PwChain(x, b1) {
  BinOp = opvar(2);
  assert BinOp.op_class == opclass("binary_pointwise");
  y = var();
  c = var();
  y <= PwChain(x, b1);
  assert c.op_id == op("Const");
  return BinOp(y, c);
}
pattern PwChain(x, b1) { return x; }

pattern MatMulEpilogExt(x, a, b, b1) {
  x <= PwChain(MatMul(a, b), b1);
  return x;
}
)pypm";
}

//===----------------------------------------------------------------------===//
// Compilation helpers
//===----------------------------------------------------------------------===//

static std::unique_ptr<pattern::Library> compileStd(term::Signature &Sig,
                                                    std::string_view Source) {
  models::declareModelOps(Sig); // ops, arities, classes shared with the zoo
  return dsl::compileOrDie(Source, Sig);
}

std::unique_ptr<pattern::Library> pypm::opt::compileFmha(term::Signature &Sig) {
  return compileStd(Sig, fmhaSource());
}
std::unique_ptr<pattern::Library>
pypm::opt::compileEpilog(term::Signature &Sig) {
  return compileStd(Sig, epilogSource());
}
std::unique_ptr<pattern::Library>
pypm::opt::compileCublas(term::Signature &Sig) {
  return compileStd(Sig, cublasSource());
}
std::unique_ptr<pattern::Library>
pypm::opt::compileUnaryChain(term::Signature &Sig) {
  return compileStd(Sig, unaryChainSource());
}
std::unique_ptr<pattern::Library>
pypm::opt::compilePartition(term::Signature &Sig) {
  return compileStd(Sig, partitionSource());
}

std::string_view pypm::opt::optConfigName(OptConfig C) {
  switch (C) {
  case OptConfig::None:
    return "none";
  case OptConfig::FmhaOnly:
    return "fmha";
  case OptConfig::EpilogOnly:
    return "epilog";
  case OptConfig::Both:
    return "fmha+epilog";
  }
  return "?";
}

Pipeline pypm::opt::makePipeline(term::Signature &Sig, OptConfig Config) {
  Pipeline P;
  // FMHA first: the MHA subgraph contains matmuls that the epilog rewrite
  // must not consume before the attention pattern has had its chance.
  if (Config == OptConfig::FmhaOnly || Config == OptConfig::Both) {
    P.Libs.push_back(compileFmha(Sig));
    P.Rules.addLibrary(*P.Libs.back());
  }
  if (Config == OptConfig::EpilogOnly || Config == OptConfig::Both) {
    P.Libs.push_back(compileEpilog(Sig));
    P.Rules.addLibrary(*P.Libs.back());
  }
  return P;
}
