//===- plan/Program.h - Compiled pattern-set match plan ---------*- C++ -*-===//
///
/// \file
/// The compiled form of an entire rule set: one MatchPlan. Where the
/// per-pattern matchers (Machine, FastMatcher) interpret the pattern AST
/// one node at a time for one pattern at a time, a plan::Program lowers
/// *all* patterns of a rewrite::RuleSet together into
///
///  - a flat, table-driven bytecode (one Instr per pattern node, one
///    contiguous PC range per rule-set entry) executed by plan::Interpreter
///    with exactly the reference machine's small-step semantics, and
///  - a discrimination tree over (path, operator/arity) tests that factors
///    the common prefixes of every pattern — and of every alternate inside
///    each pattern — so a single traversal per graph node yields the
///    candidate entry set for the whole rule set at once.
///
/// The tree is a *sound prefilter*: every test it applies is a necessary
/// condition for the corresponding pattern shape to match (operator tests
/// under App, arity tests under function-variable application, descending
/// through guards/∃/constraints/μ-bodies exactly like the engine's root-op
/// prefilter). Entries it rules out therefore provably fail, so skipping
/// them changes per-pattern skip statistics but never the witness stream
/// or the committed rewrite sequence. See DESIGN.md §"MatchPlan:
/// shared-prefix compilation of the pattern set".
///
/// Guards and μ nodes do not lower to bytecode operands: instructions
/// reference them through side tables (Guards, Mus) resolved against the
/// pattern arena — at build time directly, after deserialization by a
/// deterministic re-walk of the embedded library (see PlanSerializer.h).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_PROGRAM_H
#define PYPM_PLAN_PROGRAM_H

#include "graph/Graph.h"
#include "pattern/Pattern.h"
#include "term/Term.h"

#include <span>
#include <string>
#include <vector>

namespace pypm::plan {

struct TraversalTrace;

/// One opcode per pattern construct (Fig. 15). The continuation-only
/// actions of the machine (guard, checkName, checkFunName, matchConstr)
/// are not instructions: the interpreter materializes them as continuation
/// cells when executing the owning instruction, exactly as the reference
/// machine pushes them as actions.
enum class OpCode : uint8_t {
  MatchVar = 1,    ///< A = symbol index to bind
  MatchApp,        ///< A = OpId index; children in the ChildPCs pool
  MatchFunVarApp,  ///< A = symbol index; children in the ChildPCs pool
  MatchAlt,        ///< A = left PC, B = right PC (left tried first)
  MatchGuarded,    ///< A = sub PC, B = guard index
  MatchExists,     ///< A = sub PC, B = symbol index (θ-checked)
  MatchExistsFun,  ///< A = sub PC, B = symbol index (φ-checked)
  MatchConstraint, ///< A = sub PC, B = constraint PC, C = symbol index
  MatchMu,         ///< A = μ index (unfolds dynamically, like the machines)
  Fail,            ///< always backtracks (stray RecCall outside a μ body)
};
constexpr uint8_t kNumOpCodes = static_cast<uint8_t>(OpCode::Fail);

/// Sentinel "no program counter".
constexpr uint32_t kNoPC = ~0u;

/// One bytecode instruction. Fixed-width operands; App/FunVarApp child PCs
/// live in a shared pool (instructions stay trivially serializable).
struct Instr {
  OpCode Op = OpCode::MatchVar;
  uint32_t A = 0, B = 0, C = 0;
  uint32_t FirstChild = 0, NumChildren = 0;
};

/// Code range and prefilter metadata for one rule-set entry.
struct EntryCode {
  Symbol PatternName;
  uint32_t RootPC = kNoPC; ///< entry point (the pattern's root node)
  uint32_t FirstPC = 0;    ///< contiguous range [FirstPC, FirstPC+NumInstrs)
  uint32_t NumInstrs = 0;
  /// Discrimination-tree shapes this entry contributed; 0 means the entry
  /// is unconstrained (wildcard — a candidate at every node).
  uint32_t NumShapes = 0;
};

/// A discrimination-tree edge: take it when the tested value (operator id
/// or arity) equals Key. Keys are unique within each edge list of a group
/// (TreeInserter finds-or-creates by key), so at most one edge per list
/// can hit for a given subterm — the traversal may stop at the first hit,
/// and reordering a list never changes which edge hits.
struct TreeEdge {
  uint32_t Key = 0;
  uint32_t Child = 0;
  /// Canonical id, assigned in build order and stable under profile-driven
  /// permutation: the index into Profile::EdgeHits.
  uint32_t Id = 0;
};

/// All edges of one tree node that test the *same* subterm position: the
/// position is resolved once, then dispatched over the edge lists.
struct TreeGroup {
  uint32_t PathBegin = 0; ///< into PathPool: child indices root → position
  uint32_t PathLen = 0;
  std::vector<TreeEdge> OpEdges;    ///< subterm operator == Key
  std::vector<TreeEdge> ArityEdges; ///< subterm arity == Key
  /// Canonical id (build order, permutation-stable): the index into
  /// Profile::GroupVisits.
  uint32_t Id = 0;
};

/// A discrimination-tree node: entries whose shape is fully tested here,
/// plus outgoing test groups.
struct TreeNode {
  std::vector<uint32_t> Accept; ///< entry indices accepted at this node
  std::vector<TreeGroup> Groups;
};

/// Aggregate shape of a compiled plan (reported by the disassembly and the
/// benches).
struct ProgramInfo {
  size_t Instrs = 0;
  size_t TreeNodes = 0;
  size_t TreeEdges = 0;
  size_t Shapes = 0;
  size_t WildcardEntries = 0;
};

/// The compiled match plan for one rule set. Borrows the pattern arena the
/// rule set's library owns (Guards and Mus point into it); keep the
/// library alive while the program is in use.
struct Program {
  std::vector<EntryCode> Entries;
  std::vector<Instr> Code;
  std::vector<uint32_t> ChildPCs;
  std::vector<Symbol> Syms;
  std::vector<const pattern::GuardExpr *> Guards;
  std::vector<const pattern::MuPattern *> Mus;

  // Discrimination tree (never serialized: deterministically rebuilt from
  // the patterns, so a hostile artifact cannot smuggle in a wrong one).
  std::vector<TreeNode> Tree; ///< [0] is the root when non-empty
  std::vector<uint8_t> PathPool;
  std::vector<uint32_t> Wildcards; ///< entries that are always candidates

  /// Precomputed base mask with exactly the Wildcards bits set: the
  /// traversal starts from one bulk copy instead of re-running the
  /// per-node wildcard loop (the "hoisted cold tail" of profile-guided
  /// ordering — wildcard entries never participate in the hot tree walk).
  std::vector<uint8_t> WildcardBase;

  /// Canonical group/edge counts (== the id spaces of Profile's counter
  /// arrays). Assigned by PlanBuilder in build order.
  uint32_t NumGroups = 0;
  uint32_t NumEdges = 0;

  /// Operator-id-independent fingerprint of the compiled plan
  /// (PlanBuilder::signature): binds a Profile to this plan.
  uint64_t CanonicalSig = 0;

  /// True once PlanBuilder::applyProfile reordered this plan.
  bool ProfileApplied = false;

  size_t numEntries() const { return Entries.size(); }

  /// One traversal of the discrimination tree at graph node \p N: sets
  /// Mask[I] = 1 for every entry I that can possibly match the tree
  /// unrolling rooted at N (and 0 for every entry that provably cannot).
  /// Mask is resized to numEntries(). When \p Trace is non-null the
  /// traversal additionally records the canonical ids of every group it
  /// scanned and every edge whose key test hit (profiling mode — the
  /// result mask is identical either way).
  void candidates(const graph::Graph &G, graph::NodeId N,
                  std::vector<uint8_t> &Mask,
                  TraversalTrace *Trace = nullptr) const;

  /// Same prefilter over an explicit term (tests and the CLI).
  void candidates(term::TermRef T, std::vector<uint8_t> &Mask,
                  TraversalTrace *Trace = nullptr) const;

  /// Batched prefilter: one cache-friendly frontier sweep of the
  /// discrimination tree computes candidates() for *every* root in
  /// \p Roots at once. Instead of one root-at-a-time depth-first walk per
  /// subject, the sweep keeps a struct-of-arrays work list — for each tree
  /// node, the roots whose traversal reached it — and processes tree nodes
  /// in frontier order, so each node's accept list, groups, and edge keys
  /// are touched once per *batch* rather than once per root. Every edge has
  /// a unique parent, so each tree node is processed at most once per
  /// sweep.
  ///
  /// \p Masks is resized to Roots.size() * numEntries(); row I (stride
  /// numEntries()) is byte-for-byte what candidates(Roots[I]) would
  /// produce — the survival tests are identical, only their schedule
  /// differs. \p Traces, when non-null, is resized alongside and receives
  /// per-root traces covering the same group/edge *sets* as the per-root
  /// walk (frontier order, not depth-first order — Profile::addTrace sums
  /// counters, so recorded profiles are identical either way).
  void batchCandidates(const graph::Graph &G,
                       std::span<const graph::NodeId> Roots,
                       std::vector<uint8_t> &Masks,
                       std::vector<TraversalTrace> *Traces = nullptr) const;

  /// Term-batch overload (tests and term-level batch matching).
  void batchCandidates(std::span<const term::TermRef> Roots,
                       std::vector<uint8_t> &Masks,
                       std::vector<TraversalTrace> *Traces = nullptr) const;

  ProgramInfo info() const;

  /// Human-readable dump of the discrimination tree and the per-entry
  /// bytecode (`pypmc --emit-plan`).
  std::string disassemble(const term::Signature &Sig) const;
};

} // namespace pypm::plan

#endif // PYPM_PLAN_PROGRAM_H
