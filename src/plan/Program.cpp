//===- plan/Program.cpp - Plan prefilter traversal and disassembly --------===//

#include "plan/Program.h"

#include "plan/Profile.h"

#include <sstream>

namespace pypm::plan {

namespace {

/// Uniform view over the two things we prefilter: graph nodes and terms.
struct GraphAdapter {
  const graph::Graph &G;
  using Node = graph::NodeId;
  uint32_t op(Node N) const { return G.op(N).index(); }
  uint32_t arity(Node N) const {
    return static_cast<uint32_t>(G.inputs(N).size());
  }
  Node child(Node N, uint32_t I) const { return G.inputs(N)[I]; }
};

struct TermAdapter {
  using Node = term::TermRef;
  uint32_t op(Node T) const { return T->op().index(); }
  uint32_t arity(Node T) const { return static_cast<uint32_t>(T->arity()); }
  Node child(Node T, uint32_t I) const { return T->child(I); }
};

template <typename Adapter>
void visitTree(const Program &P, const Adapter &A, typename Adapter::Node Root,
               uint32_t NodeIdx, std::vector<uint8_t> &Mask,
               TraversalTrace *Trace) {
  const TreeNode &TN = P.Tree[NodeIdx];
  for (uint32_t E : TN.Accept)
    Mask[E] = 1;
  for (const TreeGroup &Gp : TN.Groups) {
    if (Trace)
      Trace->Groups.push_back(Gp.Id);
    // Resolve the tested position; ancestors were constrained on the way
    // down, so this only fails defensively.
    typename Adapter::Node Cur = Root;
    bool Ok = true;
    for (uint32_t I = 0; I < Gp.PathLen; ++I) {
      uint32_t Step = P.PathPool[Gp.PathBegin + I];
      if (Step >= A.arity(Cur)) {
        Ok = false;
        break;
      }
      Cur = A.child(Cur, Step);
    }
    if (!Ok)
      continue;
    uint32_t Op = A.op(Cur), Ar = A.arity(Cur);
    // Keys are unique per list, so the first hit is the only hit: stop
    // scanning. Profile-guided ordering puts hot keys first, which makes
    // this break the payoff (cold keys are never compared on hot paths).
    for (const TreeEdge &E : Gp.OpEdges)
      if (E.Key == Op) {
        if (Trace)
          Trace->Edges.push_back(E.Id);
        visitTree(P, A, Root, E.Child, Mask, Trace);
        break;
      }
    for (const TreeEdge &E : Gp.ArityEdges)
      if (E.Key == Ar) {
        if (Trace)
          Trace->Edges.push_back(E.Id);
        visitTree(P, A, Root, E.Child, Mask, Trace);
        break;
      }
  }
}

template <typename Adapter>
void candidatesImpl(const Program &P, const Adapter &A,
                    typename Adapter::Node Root, std::vector<uint8_t> &Mask,
                    TraversalTrace *Trace) {
  if (Trace)
    Trace->clear();
  // The wildcard bits are hoisted out of the per-node work entirely: one
  // bulk copy of the precomputed base mask (empty-tree programs and
  // hand-assembled Programs without a base fall back to the loop).
  if (P.WildcardBase.size() == P.Entries.size()) {
    Mask = P.WildcardBase;
  } else {
    Mask.assign(P.Entries.size(), 0);
    for (uint32_t W : P.Wildcards)
      Mask[W] = 1;
  }
  if (!P.Tree.empty())
    visitTree(P, A, Root, 0, Mask, Trace);
}

/// The batched frontier sweep behind Program::batchCandidates. NodeRoots
/// is the struct-of-arrays work list: NodeRoots[T] holds the indices (into
/// Roots) of every subject whose traversal reached tree node T. The sweep
/// dequeues tree nodes in frontier order and, per node, runs the accept /
/// group / edge logic over its whole root list — the per-root work is the
/// same as visitTree's, but the tree node's data is resident while a
/// contiguous list of roots streams through it.
template <typename Adapter>
void batchCandidatesImpl(const Program &P, const Adapter &A,
                         std::span<const typename Adapter::Node> Roots,
                         std::vector<uint8_t> &Masks,
                         std::vector<TraversalTrace> *Traces) {
  const size_t E = P.Entries.size();
  const size_t NR = Roots.size();
  Masks.assign(NR * E, 0);
  if (Traces) {
    Traces->resize(NR);
    for (TraversalTrace &T : *Traces)
      T.clear();
  }
  if (P.WildcardBase.size() == E) {
    for (size_t R = 0; R != NR; ++R)
      std::copy(P.WildcardBase.begin(), P.WildcardBase.end(),
                Masks.begin() + R * E);
  } else {
    for (size_t R = 0; R != NR; ++R)
      for (uint32_t W : P.Wildcards)
        Masks[R * E + W] = 1;
  }
  if (P.Tree.empty() || NR == 0)
    return;

  std::vector<std::vector<uint32_t>> NodeRoots(P.Tree.size());
  NodeRoots[0].resize(NR);
  for (size_t R = 0; R != NR; ++R)
    NodeRoots[0][R] = static_cast<uint32_t>(R);
  std::vector<uint32_t> Frontier{0};
  for (size_t QI = 0; QI != Frontier.size(); ++QI) {
    const uint32_t NodeIdx = Frontier[QI];
    std::vector<uint32_t> Here = std::move(NodeRoots[NodeIdx]);
    const TreeNode &TN = P.Tree[NodeIdx];
    for (uint32_t EIdx : TN.Accept)
      for (uint32_t R : Here)
        Masks[size_t(R) * E + EIdx] = 1;
    for (const TreeGroup &Gp : TN.Groups) {
      for (uint32_t R : Here) {
        if (Traces)
          (*Traces)[R].Groups.push_back(Gp.Id);
        typename Adapter::Node Cur = Roots[R];
        bool Ok = true;
        for (uint32_t I = 0; I < Gp.PathLen; ++I) {
          uint32_t Step = P.PathPool[Gp.PathBegin + I];
          if (Step >= A.arity(Cur)) {
            Ok = false;
            break;
          }
          Cur = A.child(Cur, Step);
        }
        if (!Ok)
          continue;
        uint32_t Op = A.op(Cur), Ar = A.arity(Cur);
        for (const TreeEdge &TE : Gp.OpEdges)
          if (TE.Key == Op) {
            if (Traces)
              (*Traces)[R].Edges.push_back(TE.Id);
            if (NodeRoots[TE.Child].empty())
              Frontier.push_back(TE.Child);
            NodeRoots[TE.Child].push_back(R);
            break;
          }
        for (const TreeEdge &TE : Gp.ArityEdges)
          if (TE.Key == Ar) {
            if (Traces)
              (*Traces)[R].Edges.push_back(TE.Id);
            if (NodeRoots[TE.Child].empty())
              Frontier.push_back(TE.Child);
            NodeRoots[TE.Child].push_back(R);
            break;
          }
      }
    }
  }
}

} // namespace

void Program::batchCandidates(const graph::Graph &G,
                              std::span<const graph::NodeId> Roots,
                              std::vector<uint8_t> &Masks,
                              std::vector<TraversalTrace> *Traces) const {
  batchCandidatesImpl(*this, GraphAdapter{G}, Roots, Masks, Traces);
}

void Program::batchCandidates(std::span<const term::TermRef> Roots,
                              std::vector<uint8_t> &Masks,
                              std::vector<TraversalTrace> *Traces) const {
  batchCandidatesImpl(*this, TermAdapter{}, Roots, Masks, Traces);
}

void Program::candidates(const graph::Graph &G, graph::NodeId N,
                         std::vector<uint8_t> &Mask,
                         TraversalTrace *Trace) const {
  candidatesImpl(*this, GraphAdapter{G}, N, Mask, Trace);
}

void Program::candidates(term::TermRef T, std::vector<uint8_t> &Mask,
                         TraversalTrace *Trace) const {
  candidatesImpl(*this, TermAdapter{}, T, Mask, Trace);
}

ProgramInfo Program::info() const {
  ProgramInfo I;
  I.Instrs = Code.size();
  I.TreeNodes = Tree.size();
  for (const TreeNode &N : Tree)
    for (const TreeGroup &G : N.Groups)
      I.TreeEdges += G.OpEdges.size() + G.ArityEdges.size();
  for (const EntryCode &E : Entries)
    I.Shapes += E.NumShapes;
  I.WildcardEntries = Wildcards.size();
  return I;
}

namespace {

const char *opName(OpCode Op) {
  switch (Op) {
  case OpCode::MatchVar:
    return "match_var";
  case OpCode::MatchApp:
    return "match_app";
  case OpCode::MatchFunVarApp:
    return "match_funvar_app";
  case OpCode::MatchAlt:
    return "match_alt";
  case OpCode::MatchGuarded:
    return "match_guarded";
  case OpCode::MatchExists:
    return "match_exists";
  case OpCode::MatchExistsFun:
    return "match_exists_fun";
  case OpCode::MatchConstraint:
    return "match_constraint";
  case OpCode::MatchMu:
    return "match_mu";
  case OpCode::Fail:
    return "fail";
  }
  return "<bad-opcode>";
}

void dumpTree(const Program &P, const term::Signature &Sig, uint32_t NodeIdx,
              unsigned Indent, std::ostringstream &OS) {
  const TreeNode &TN = P.Tree[NodeIdx];
  std::string Pad(Indent * 2, ' ');
  if (!TN.Accept.empty()) {
    OS << Pad << "accept:";
    for (uint32_t E : TN.Accept)
      OS << " #" << E << "(" << P.Entries[E].PatternName.str() << ")";
    OS << "\n";
  }
  for (const TreeGroup &Gp : TN.Groups) {
    OS << Pad << "at [";
    for (uint32_t I = 0; I < Gp.PathLen; ++I)
      OS << (I ? "." : "") << unsigned(P.PathPool[Gp.PathBegin + I]);
    OS << "]:\n";
    for (const TreeEdge &E : Gp.OpEdges) {
      OS << Pad << "  op == " << Sig.name(term::OpId(E.Key)).str() << ":\n";
      dumpTree(P, Sig, E.Child, Indent + 2, OS);
    }
    for (const TreeEdge &E : Gp.ArityEdges) {
      OS << Pad << "  arity == " << E.Key << ":\n";
      dumpTree(P, Sig, E.Child, Indent + 2, OS);
    }
  }
}

} // namespace

std::string Program::disassemble(const term::Signature &Sig) const {
  std::ostringstream OS;
  ProgramInfo PI = info();
  OS << "matchplan: " << Entries.size() << " entries, " << PI.Instrs
     << " instrs, " << PI.Shapes << " shapes, " << PI.TreeNodes
     << " tree nodes, " << PI.TreeEdges << " tree edges, "
     << PI.WildcardEntries << " wildcard entries"
     << (ProfileApplied ? ", profile-ordered" : "") << "\n";
  OS << "\ndiscrimination tree:\n";
  if (Tree.empty())
    OS << "  <empty>\n";
  else
    dumpTree(*this, Sig, 0, 1, OS);
  if (!Wildcards.empty()) {
    OS << "  wildcard:";
    for (uint32_t W : Wildcards)
      OS << " #" << W << "(" << Entries[W].PatternName.str() << ")";
    OS << "\n";
  }
  OS << "\nbytecode:\n";
  for (size_t EI = 0; EI < Entries.size(); ++EI) {
    const EntryCode &E = Entries[EI];
    OS << "entry #" << EI << " " << E.PatternName.str() << " (root pc "
       << E.RootPC << ", " << E.NumInstrs << " instrs, " << E.NumShapes
       << " shapes)\n";
    for (uint32_t PC = E.FirstPC; PC < E.FirstPC + E.NumInstrs; ++PC) {
      const Instr &I = Code[PC];
      OS << "  " << PC << ": " << opName(I.Op);
      switch (I.Op) {
      case OpCode::MatchVar:
        OS << " " << Syms[I.A].str();
        break;
      case OpCode::MatchApp:
        OS << " " << Sig.name(term::OpId(I.A)).str() << " [";
        for (uint32_t C = 0; C < I.NumChildren; ++C)
          OS << (C ? " " : "") << ChildPCs[I.FirstChild + C];
        OS << "]";
        break;
      case OpCode::MatchFunVarApp:
        OS << " " << Syms[I.A].str() << "/" << I.NumChildren << " [";
        for (uint32_t C = 0; C < I.NumChildren; ++C)
          OS << (C ? " " : "") << ChildPCs[I.FirstChild + C];
        OS << "]";
        break;
      case OpCode::MatchAlt:
        OS << " left=" << I.A << " right=" << I.B;
        break;
      case OpCode::MatchGuarded:
        OS << " sub=" << I.A << " guard=" << I.B;
        break;
      case OpCode::MatchExists:
      case OpCode::MatchExistsFun:
        OS << " sub=" << I.A << " var=" << Syms[I.B].str();
        break;
      case OpCode::MatchConstraint:
        OS << " sub=" << I.A << " constr=" << I.B << " var="
           << Syms[I.C].str();
        break;
      case OpCode::MatchMu:
        OS << " mu=" << I.A;
        break;
      case OpCode::Fail:
        break;
      }
      OS << "\n";
    }
  }
  return OS.str();
}

} // namespace pypm::plan
