//===- plan/Interpreter.h - Bytecode executor for MatchPlans ----*- C++ -*-===//
///
/// \file
/// Executes one entry of a plan::Program with FastMatcher's trail and
/// choice-point machinery — persistent cons-list continuation, O(1) choice
/// points, θ/φ hash maps with undo trails, first-unfold μ memoization.
/// Control flow is table-driven (program counters instead of pattern-AST
/// pointers) except where the machines themselves go dynamic: μ-unfold
/// results are fresh pattern nodes that exist only at run time, so their
/// match continues over the pattern AST with the exact FastMatcher step
/// (an "escape" back to the uncompiled representation).
///
/// All mutable state — and the cell-dispatch loop itself — lives in
/// plan::ExecState, shared with the AOT backends (src/plan/aot/) so the
/// executors cannot drift on scratch-state semantics; this class supplies
/// only the compiled-Match step (stepExec, a switch over the instruction
/// table).
///
/// The step sequence — and with it every counter in MachineStats, the
/// first witness, and the whole resume() stream — is bit-for-bit
/// FastMatcher's, which is bit-for-bit the reference Machine's. The
/// differential suites (tests/test_matchplan.cpp, tests/test_aot.cpp) pin
/// them all together.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_INTERPRETER_H
#define PYPM_PLAN_INTERPRETER_H

#include "plan/ExecState.h"
#include "plan/Profile.h"

namespace pypm::plan {

class Interpreter {
public:
  Interpreter(const Program &Prog, const term::TermArena &Arena,
              match::Machine::Options Opts = match::Machine::Options())
      : Prog(Prog), Arena(Arena), Opts(Opts) {}

  /// Profiling mode: when set, matchEntry() records one committed attempt
  /// (and, on success, one match) per call into the profile's per-entry
  /// counters. Observation only — no step, counter, or witness changes.
  /// The caller owns the profile and its thread-safety: the engine arms
  /// this on committed-order runs only, never on speculative discovery
  /// workers (see DESIGN.md §"Profile-guided ordering").
  void setProfile(Profile *P) { Prof = P; }

  /// Matches entry \p EntryIdx of the program against \p T from the empty
  /// substitution; returns the terminal status.
  match::MachineStatus matchEntry(size_t EntryIdx, term::TermRef T);

  /// Batch mode: one attempt on a *reused* interpreter, as run() but
  /// without constructing a fresh instance. Per-attempt state resets
  /// (ExecState::resetAttempt); what persists — the Scratch pattern arena,
  /// the μ-unfold memo keyed on the arena-interned μ nodes, and container
  /// capacity — is exactly the state that cannot change an outcome: a memo
  /// hit still pays its unfold step and μ-budget decrement, it only skips
  /// re-cloning the body. Every counter, status, and visible binding is
  /// therefore bit-identical to a fresh run()'s; only allocation and
  /// unfold construction are amortized across the batch
  /// (tests/test_incremental.cpp pins the parity per attempt).
  match::MatchResult matchOne(size_t EntryIdx, term::TermRef T);

  /// Continues the search past the previous success.
  match::MachineStatus resume();

  match::MachineStatus status() const { return St.Status; }
  match::Witness witness() const { return St.witness(); }
  const match::MachineStats &stats() const { return St.Stats; }

  /// One-call convenience mirroring FastMatcher::run for one entry.
  /// \p Prof, when non-null, receives the per-entry attempt/match counters
  /// of this one call (profiling mode; see setProfile).
  static match::MatchResult
  run(const Program &Prog, size_t EntryIdx, term::TermRef T,
      const term::TermArena &Arena,
      match::Machine::Options Opts = match::Machine::Options(),
      Profile *Prof = nullptr);

private:
  match::MachineStatus runLoop();
  match::MachineStatus stepExec(uint32_t PC, term::TermRef T);

  const Program &Prog;
  const term::TermArena &Arena;
  match::Machine::Options Opts;
  Profile *Prof = nullptr;
  ExecState St;
};

} // namespace pypm::plan

#endif // PYPM_PLAN_INTERPRETER_H
