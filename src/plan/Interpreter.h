//===- plan/Interpreter.h - Bytecode executor for MatchPlans ----*- C++ -*-===//
///
/// \file
/// Executes one entry of a plan::Program with FastMatcher's trail and
/// choice-point machinery — persistent cons-list continuation, O(1) choice
/// points, θ/φ hash maps with undo trails, first-unfold μ memoization.
/// Control flow is table-driven (program counters instead of pattern-AST
/// pointers) except where the machines themselves go dynamic: μ-unfold
/// results are fresh pattern nodes that exist only at run time, so their
/// match continues over the pattern AST with the exact FastMatcher step
/// (an "escape" back to the uncompiled representation).
///
/// The step sequence — and with it every counter in MachineStats, the
/// first witness, and the whole resume() stream — is bit-for-bit
/// FastMatcher's, which is bit-for-bit the reference Machine's. The
/// differential suite (tests/test_matchplan.cpp) pins all three together.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_INTERPRETER_H
#define PYPM_PLAN_INTERPRETER_H

#include "match/Machine.h"
#include "plan/Profile.h"
#include "plan/Program.h"

#include <deque>
#include <unordered_map>

namespace pypm::plan {

class Interpreter {
public:
  Interpreter(const Program &Prog, const term::TermArena &Arena,
              match::Machine::Options Opts = match::Machine::Options())
      : Prog(Prog), Arena(Arena), Opts(Opts) {}

  /// Profiling mode: when set, matchEntry() records one committed attempt
  /// (and, on success, one match) per call into the profile's per-entry
  /// counters. Observation only — no step, counter, or witness changes.
  /// The caller owns the profile and its thread-safety: the engine arms
  /// this on committed-order runs only, never on speculative discovery
  /// workers (see DESIGN.md §"Profile-guided ordering").
  void setProfile(Profile *P) { Prof = P; }

  /// Matches entry \p EntryIdx of the program against \p T from the empty
  /// substitution; returns the terminal status.
  match::MachineStatus matchEntry(size_t EntryIdx, term::TermRef T);

  /// Batch mode: one attempt on a *reused* interpreter, as run() but
  /// without constructing a fresh instance. Per-attempt state resets;
  /// what persists — the Scratch pattern arena, the μ-unfold memo keyed on
  /// the arena-interned μ nodes, and container capacity — is exactly the
  /// state that cannot change an outcome: a memo hit still pays its
  /// unfold step and μ-budget decrement, it only skips re-cloning the
  /// body. Every counter, status, and visible binding is therefore
  /// bit-identical to a fresh run()'s; only allocation and unfold
  /// construction are amortized across the batch
  /// (tests/test_incremental.cpp pins the parity per attempt).
  match::MatchResult matchOne(size_t EntryIdx, term::TermRef T);

  /// Continues the search past the previous success.
  match::MachineStatus resume();

  match::MachineStatus status() const { return Status; }
  match::Witness witness() const;
  const match::MachineStats &stats() const { return Stats; }

  /// One-call convenience mirroring FastMatcher::run for one entry.
  /// \p Prof, when non-null, receives the per-entry attempt/match counters
  /// of this one call (profiling mode; see setProfile).
  static match::MatchResult
  run(const Program &Prog, size_t EntryIdx, term::TermRef T,
      const term::TermArena &Arena,
      match::Machine::Options Opts = match::Machine::Options(),
      Profile *Prof = nullptr);

private:
  /// Persistent continuation cell: a compiled action. Match targets are a
  /// PC into the program, or (after a μ unfold) a dynamic pattern node.
  struct Cell {
    match::ActionKind Kind = match::ActionKind::Match;
    uint32_t PC = kNoPC;                   ///< compiled Match/MatchConstr
    const pattern::Pattern *Pat = nullptr; ///< dynamic Match/MatchConstr
    term::TermRef T = nullptr;
    const pattern::GuardExpr *Guard = nullptr;
    Symbol Var;
    const Cell *Next = nullptr;
  };

  struct ChoicePoint {
    const Cell *Cont;
    size_t ThetaTrailLen;
    size_t PhiTrailLen;
  };

  const Cell *push(Cell C) {
    Cells.push_back(std::move(C));
    return &Cells.back();
  }
  const Cell *consMatch(uint32_t PC, term::TermRef T, const Cell *Next) {
    Cell C;
    C.PC = PC;
    C.T = T;
    C.Next = Next;
    return push(std::move(C));
  }
  const Cell *consMatchDyn(const pattern::Pattern *P, term::TermRef T,
                           const Cell *Next) {
    Cell C;
    C.Pat = P;
    C.T = T;
    C.Next = Next;
    return push(std::move(C));
  }

  match::MachineStatus runLoop();
  match::MachineStatus backtrack();
  bool bindVar(Symbol X, term::TermRef T);
  bool bindFunVar(Symbol F, term::OpId Op);
  match::MachineStatus stepExec(uint32_t PC, term::TermRef T);
  match::MachineStatus stepMatchDyn(const pattern::Pattern *P,
                                    term::TermRef T);

  const Program &Prog;
  const term::TermArena &Arena;
  match::Machine::Options Opts;
  Profile *Prof = nullptr;

  pattern::PatternArena Scratch;
  std::deque<Cell> Cells;

  std::unordered_map<Symbol, term::TermRef> Theta;
  std::unordered_map<Symbol, term::OpId> Phi;
  std::vector<Symbol> ThetaTrail;
  std::vector<Symbol> PhiTrail;

  std::vector<ChoicePoint> Choices;
  const Cell *Cont = nullptr;
  uint64_t MuBudget = 0;
  match::MachineStatus Status = match::MachineStatus::Failure;
  match::MachineStats Stats;

  std::unordered_map<const pattern::Pattern *, const pattern::Pattern *>
      UnfoldMemo;

  friend struct InterpreterGuardEnv;
};

} // namespace pypm::plan

#endif // PYPM_PLAN_INTERPRETER_H
