//===- plan/PlanSerializer.cpp - Cacheable .pypmplan artifacts ------------===//

#include "plan/PlanSerializer.h"

#include "pattern/Serializer.h"
#include "plan/PlanBuilder.h"
#include "support/Hash.h"

#include <cstring>

using namespace pypm;
using namespace pypm::plan;

namespace {

// v3: appends the optional embedded confluence certificate (v2 added the
// embedded-profile section; older artifacts are rejected with a clean
// version error).
constexpr uint32_t kPlanVersion = 3;

void appendU32(std::string &Out, uint32_t V) {
  char Buf[4];
  std::memcpy(Buf, &V, 4);
  Out.append(Buf, 4);
}

void appendStr(std::string &Out, std::string_view S) {
  appendU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

/// Builds the rule set a plan covers: the library's patterns in definition
/// order, with their rules. Both the writer (on the round-tripped library)
/// and the loader (on the embedded library) go through here, so the two
/// always select the same entries.
rewrite::RuleSet planRules(const pattern::Library &Lib, bool RulesOnly) {
  rewrite::RuleSet RS;
  RS.addLibrary(Lib, RulesOnly);
  return RS;
}

} // namespace

std::string pypm::plan::serializePlan(
    const pattern::Library &Lib, const term::Signature &Sig, bool RulesOnly,
    DiagnosticEngine &Diags, const Profile *Prof,
    const analysis::critical::ConfluenceReport *Confluence) {
  std::string LibBytes = pattern::serializeLibrary(Lib, Sig);

  // Round-trip the library so the compiled streams match what the loader's
  // recompilation of the embedded bytes will see (deserialization
  // tree-expands shared pattern nodes; compiling the original DAG directly
  // could emit fewer instructions than the loader expects).
  term::Signature ScratchSig;
  auto RtLib = pattern::deserializeLibrary(LibBytes, ScratchSig, Diags);
  if (!RtLib) {
    Diags.error(SourceLoc(),
                "match plan: library failed to round-trip; not serializable");
    return std::string();
  }
  rewrite::RuleSet RS = planRules(*RtLib, RulesOnly);
  Program P = PlanBuilder::compile(RS, ScratchSig);

  // An embedded profile must bind to the plan the loader will recompile
  // (which is exactly P, thanks to the round-trip above). The canonical
  // signature is operator-id independent, so a profile recorded in a
  // process with a different signature layout still binds — but one
  // recorded against any other rule set is rejected here, not at load.
  if (Prof && !Prof->boundTo(P)) {
    Diags.error(SourceLoc(), "match plan: profile does not match this plan "
                             "(recorded against a different rule set?)");
    return std::string();
  }

  std::string Out;
  Out += "PYPL";
  appendU32(Out, kPlanVersion);
  appendU32(Out, static_cast<uint32_t>(LibBytes.size()));
  Out += LibBytes;

  appendU32(Out, static_cast<uint32_t>(P.Entries.size()));
  for (const EntryCode &E : P.Entries) {
    appendStr(Out, E.PatternName.str());
    appendU32(Out, E.RootPC);
    appendU32(Out, E.FirstPC);
    appendU32(Out, E.NumInstrs);
  }

  appendU32(Out, static_cast<uint32_t>(P.Syms.size()));
  for (Symbol S : P.Syms)
    appendStr(Out, S.str());

  appendU32(Out, static_cast<uint32_t>(P.Guards.size()));
  appendU32(Out, static_cast<uint32_t>(P.Mus.size()));

  appendU32(Out, static_cast<uint32_t>(P.Code.size()));
  for (const Instr &I : P.Code) {
    Out.push_back(static_cast<char>(I.Op));
    appendU32(Out, I.A);
    appendU32(Out, I.B);
    appendU32(Out, I.C);
    appendU32(Out, I.FirstChild);
    appendU32(Out, I.NumChildren);
  }

  appendU32(Out, static_cast<uint32_t>(P.ChildPCs.size()));
  for (uint32_t C : P.ChildPCs)
    appendU32(Out, C);

  Out.push_back(Prof ? char(1) : char(0));
  if (Prof) {
    std::string ProfBytes = serializeProfile(*Prof);
    appendU32(Out, static_cast<uint32_t>(ProfBytes.size()));
    Out += ProfBytes;
  }

  Out.push_back(Confluence ? char(1) : char(0));
  if (Confluence) {
    std::string ConfBytes =
        analysis::critical::serializeConfluence(*Confluence);
    appendU32(Out, static_cast<uint32_t>(ConfBytes.size()));
    Out += ConfBytes;
  }

  return Out;
}

namespace {

/// Hardened .pypmplan reader: same bounded-read and plausibility-gate
/// idioms as the pattern binary Reader, then a recompile-and-compare pass
/// over the embedded library.
class PlanReader {
public:
  PlanReader(std::string_view Bytes, term::Signature &Sig,
             DiagnosticEngine &Diags)
      : Bytes(Bytes), Sig(Sig), Diags(Diags) {}

  std::unique_ptr<LoadedPlan> run() {
    if (Bytes.size() < 8 || Bytes.substr(0, 4) != "PYPL")
      return fail("not a PyPM match plan (bad magic)");
    Pos = 4;
    uint32_t Version;
    if (!readU32(Version))
      return nullptr;
    if (Version != kPlanVersion)
      return fail("unsupported match plan version " +
                  std::to_string(Version));

    uint32_t LibLen;
    if (!readU32(LibLen))
      return nullptr;
    if (Pos + LibLen > Bytes.size())
      return fail("truncated embedded pattern binary");
    std::string_view LibBytes = Bytes.substr(Pos, LibLen);
    Pos += LibLen;

    auto Plan = std::make_unique<LoadedPlan>();
    Plan->Lib = pattern::deserializeLibrary(LibBytes, Sig, Diags);
    if (!Plan->Lib) {
      Failed = true; // deserializeLibrary already emitted the diagnostic
      return nullptr;
    }

    Program P; // the artifact's streams, validated then cross-checked
    uint32_t NumEntries;
    if (!readU32(NumEntries))
      return nullptr;
    if (NumEntries > Bytes.size())
      return fail("implausible entry count");
    for (uint32_t I = 0; I != NumEntries; ++I) {
      EntryCode E;
      std::string_view Name;
      if (!readStr(Name) || !readU32(E.RootPC) || !readU32(E.FirstPC) ||
          !readU32(E.NumInstrs))
        return nullptr;
      E.PatternName = Symbol::intern(Name);
      if (!Plan->Lib->findPattern(E.PatternName))
        return fail("plan entry '" + std::string(Name) +
                    "' not found in embedded library");
      P.Entries.push_back(E);
    }

    uint32_t NumSyms;
    if (!readU32(NumSyms))
      return nullptr;
    if (NumSyms > Bytes.size())
      return fail("implausible symbol table size");
    for (uint32_t I = 0; I != NumSyms; ++I) {
      std::string_view S;
      if (!readStr(S))
        return nullptr;
      P.Syms.push_back(Symbol::intern(S));
    }

    uint32_t NumGuards, NumMus;
    if (!readU32(NumGuards) || !readU32(NumMus))
      return nullptr;
    if (NumGuards > Bytes.size() || NumMus > Bytes.size())
      return fail("implausible side-table size");

    uint32_t NumCode;
    if (!readU32(NumCode))
      return nullptr;
    if (NumCode > Bytes.size()) // each instruction needs ≥ 21 bytes
      return fail("implausible instruction count");
    P.Code.reserve(NumCode);
    for (uint32_t I = 0; I != NumCode; ++I) {
      Instr In;
      uint8_t Op;
      if (!readU8(Op) || !readU32(In.A) || !readU32(In.B) || !readU32(In.C) ||
          !readU32(In.FirstChild) || !readU32(In.NumChildren))
        return nullptr;
      if (Op < 1 || Op > kNumOpCodes)
        return fail("unknown opcode " + std::to_string(Op));
      In.Op = static_cast<OpCode>(Op);
      P.Code.push_back(In);
    }

    uint32_t NumChildPCs;
    if (!readU32(NumChildPCs))
      return nullptr;
    if (NumChildPCs > Bytes.size())
      return fail("implausible child-PC pool size");
    P.ChildPCs.reserve(NumChildPCs);
    for (uint32_t I = 0; I != NumChildPCs; ++I) {
      uint32_t C;
      if (!readU32(C))
        return nullptr;
      if (C >= NumCode)
        return fail("child PC out of range");
      P.ChildPCs.push_back(C);
    }

    uint8_t HasProfile;
    if (!readU8(HasProfile))
      return nullptr;
    if (HasProfile > 1)
      return fail("bad profile-presence flag");
    std::string_view ProfBytes;
    if (HasProfile) {
      uint32_t ProfLen;
      if (!readU32(ProfLen))
        return nullptr;
      if (ProfLen > Bytes.size() - Pos)
        return fail("truncated embedded match profile");
      ProfBytes = Bytes.substr(Pos, ProfLen);
      Pos += ProfLen;
    }

    uint8_t HasConfluence;
    if (!readU8(HasConfluence))
      return nullptr;
    if (HasConfluence > 1)
      return fail("bad confluence-presence flag");
    std::string_view ConfBytes;
    if (HasConfluence) {
      uint32_t ConfLen;
      if (!readU32(ConfLen))
        return nullptr;
      if (ConfLen > Bytes.size() - Pos)
        return fail("truncated embedded confluence certificate");
      ConfBytes = Bytes.substr(Pos, ConfLen);
      Pos += ConfLen;
    }

    if (Pos != Bytes.size())
      return fail("trailing bytes after match plan payload");

    // Per-operand bounds (memory safety even before the semantic check).
    for (const Instr &In : P.Code)
      if (!checkOperands(In, NumCode, NumSyms, NumGuards, NumMus,
                         NumChildPCs))
        return nullptr;
    for (const EntryCode &E : P.Entries) {
      if (E.RootPC >= NumCode && !(NumCode == 0 && E.RootPC == kNoPC))
        return fail("entry root PC out of range");
      if (uint64_t(E.FirstPC) + E.NumInstrs > NumCode)
        return fail("entry instruction range out of range");
    }

    // Semantic gate: the streams must be exactly what compiling the
    // embedded library produces (operator ids excepted: they are
    // signature-relative, and the embedded declarations may have merged
    // into Sig at different indices than at write time).
    Plan->Rules = planRulesFromEntries(*Plan->Lib, P.Entries);
    Program Fresh = PlanBuilder::compile(Plan->Rules, Sig);
    if (!streamsAgree(P, Fresh, NumGuards, NumMus))
      return fail("plan streams disagree with embedded library "
                  "(corrupt or inconsistent artifact)");

    // The embedded profile (if any) passes its own hardening gates, then
    // must bind to the *recompiled* plan; the ordering is re-derived by
    // applyProfile rather than trusted from the artifact. applyProfile
    // only permutes edge/group/accept/wildcard layout — the candidate set
    // is positional — so a valid profile cannot change match semantics,
    // and an invalid one rejects the artifact.
    if (HasProfile) {
      Plan->Prof = deserializeProfile(ProfBytes, Diags);
      if (!Plan->Prof) {
        Failed = true; // deserializeProfile already emitted the diagnostic
        return nullptr;
      }
      if (!PlanBuilder::applyProfile(Fresh, *Plan->Prof))
        return fail("embedded profile does not match the plan "
                    "(corrupt or inconsistent artifact)");
    }

    // The embedded certificate is self-hardened (own magic/version/bounds
    // gates); a blob that fails them rejects the artifact rather than
    // loading as a silently absent certificate.
    if (HasConfluence) {
      std::string ConfError;
      Plan->Confluence =
          analysis::critical::deserializeConfluence(ConfBytes, &ConfError);
      if (!Plan->Confluence)
        return fail("embedded confluence certificate: " + ConfError);
    }

    Plan->Prog = std::move(Fresh);
    return Plan;
  }

private:
  static rewrite::RuleSet
  planRulesFromEntries(const pattern::Library &Lib,
                       const std::vector<EntryCode> &Entries) {
    rewrite::RuleSet RS;
    for (const EntryCode &E : Entries) {
      const pattern::NamedPattern *NP = Lib.findPattern(E.PatternName);
      RS.addPattern(*NP, Lib.rulesFor(E.PatternName));
    }
    return RS;
  }

  bool checkOperands(const Instr &In, uint32_t NumCode, uint32_t NumSyms,
                     uint32_t NumGuards, uint32_t NumMus,
                     uint32_t NumChildPCs) {
    auto pc = [&](uint32_t V) { return V < NumCode; };
    auto sym = [&](uint32_t V) { return V < NumSyms; };
    auto kids = [&] {
      return uint64_t(In.FirstChild) + In.NumChildren <= NumChildPCs;
    };
    switch (In.Op) {
    case OpCode::MatchVar:
      if (sym(In.A))
        return true;
      break;
    case OpCode::MatchApp:
      // The operator id is write-time-signature-relative (the embedded
      // declarations are a subset of Sig after the merge), so only bound
      // it; the recompile gate below pins the actual operator and arity.
      if (In.A < Sig.size() && kids())
        return true;
      break;
    case OpCode::MatchFunVarApp:
      if (sym(In.A) && kids())
        return true;
      break;
    case OpCode::MatchAlt:
      if (pc(In.A) && pc(In.B))
        return true;
      break;
    case OpCode::MatchGuarded:
      if (pc(In.A) && In.B < NumGuards)
        return true;
      break;
    case OpCode::MatchExists:
    case OpCode::MatchExistsFun:
      if (pc(In.A) && sym(In.B))
        return true;
      break;
    case OpCode::MatchConstraint:
      if (pc(In.A) && pc(In.B) && sym(In.C))
        return true;
      break;
    case OpCode::MatchMu:
      if (In.A < NumMus)
        return true;
      break;
    case OpCode::Fail:
      return true;
    }
    failB("instruction operand out of range");
    return false;
  }

  static bool streamsAgree(const Program &Artifact, const Program &Fresh,
                           uint32_t NumGuards, uint32_t NumMus) {
    if (Artifact.Entries.size() != Fresh.Entries.size() ||
        Artifact.Code.size() != Fresh.Code.size() ||
        Artifact.ChildPCs != Fresh.ChildPCs || Artifact.Syms != Fresh.Syms ||
        NumGuards != Fresh.Guards.size() || NumMus != Fresh.Mus.size())
      return false;
    for (size_t I = 0; I < Artifact.Entries.size(); ++I) {
      const EntryCode &A = Artifact.Entries[I], &F = Fresh.Entries[I];
      if (A.PatternName != F.PatternName || A.RootPC != F.RootPC ||
          A.FirstPC != F.FirstPC || A.NumInstrs != F.NumInstrs)
        return false;
    }
    for (size_t I = 0; I < Artifact.Code.size(); ++I) {
      const Instr &A = Artifact.Code[I], &F = Fresh.Code[I];
      if (A.Op != F.Op || A.B != F.B || A.C != F.C ||
          A.FirstChild != F.FirstChild || A.NumChildren != F.NumChildren)
        return false;
      if (A.A != F.A && A.Op != OpCode::MatchApp)
        return false;
    }
    return true;
  }

  std::unique_ptr<LoadedPlan> fail(std::string Msg) {
    if (!Failed)
      Diags.error(SourceLoc(), "match plan: " + std::move(Msg));
    Failed = true;
    return nullptr;
  }
  bool failB(std::string Msg) {
    fail(std::move(Msg));
    return false;
  }

  bool readU8(uint8_t &Out) {
    if (Pos + 1 > Bytes.size())
      return failB("unexpected end of input");
    Out = static_cast<uint8_t>(Bytes[Pos++]);
    return true;
  }
  bool readU32(uint32_t &Out) {
    if (Pos + 4 > Bytes.size())
      return failB("unexpected end of input");
    std::memcpy(&Out, Bytes.data() + Pos, 4);
    Pos += 4;
    return true;
  }
  bool readStr(std::string_view &Out) {
    uint32_t Len;
    if (!readU32(Len))
      return false;
    if (Pos + Len > Bytes.size())
      return failB("truncated string");
    Out = Bytes.substr(Pos, Len);
    Pos += Len;
    return true;
  }

  std::string_view Bytes;
  term::Signature &Sig;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

std::unique_ptr<LoadedPlan>
pypm::plan::deserializePlan(std::string_view Bytes, term::Signature &Sig,
                            DiagnosticEngine &Diags) {
  return PlanReader(Bytes, Sig, Diags).run();
}

uint64_t pypm::plan::cacheKey(std::string_view LibBytes,
                              const term::Signature &Sig) {
  Fnv1aHash H;
  H.str(LibBytes);
  // The signature layout: op ids are positional, so hashing in id order
  // pins the exact id assignment the plan's operand fields refer to.
  H.u32(static_cast<uint32_t>(Sig.size()));
  for (const term::OpInfo &Info : Sig.ops()) {
    H.str(Info.Name.str());
    H.u32(Info.Arity);
    H.u32(Info.Results);
    H.str(Info.OpClass.isValid() ? Info.OpClass.str() : std::string_view());
    H.u32(static_cast<uint32_t>(Info.AttrNames.size()));
    for (Symbol A : Info.AttrNames)
      H.str(A.str());
  }
  return H.value();
}

uint64_t pypm::plan::cacheKey(const pattern::Library &Lib,
                              const term::Signature &Sig) {
  return cacheKey(pattern::serializeLibrary(Lib, Sig), Sig);
}
