//===- plan/ExecState.h - Shared mutable state for plan executors -*- C++ -*-===//
///
/// \file
/// The one mutable-state block shared by every plan::Program executor —
/// the bytecode Interpreter, the threaded-code backend, and the
/// dlopen'ed emitted backend (src/plan/aot/). All three run FastMatcher's
/// trail/choice-point machinery over the same continuation cells; hoisting
/// that state (and its per-attempt reset) into one struct means the three
/// executors cannot drift on scratch-state semantics: a reused executor's
/// footprint, the μ-unfold memo lifetime, and the trail-unwind order are
/// defined here exactly once.
///
/// What resetAttempt() clears is the per-attempt state (cells, θ/φ,
/// trails, choice points, counters, μ fuel). What it deliberately keeps —
/// the Scratch pattern arena, the μ-unfold memo keyed on arena-interned μ
/// nodes, and container capacity — is exactly the state that cannot change
/// an outcome: a memo hit still pays its unfold step and μ-budget
/// decrement, it only skips re-cloning the body
/// (tests/test_incremental.cpp pins the reuse parity per attempt;
/// tests/test_aot.cpp pins the three executors to each other).
///
/// The cell-dispatch loop lives here too (runExecLoop): step counting, the
/// 1024-step budget poll, and the ActionKind dispatch are one function
/// templated over the compiled-Match step — the only part that differs per
/// backend. The dynamic μ-escape step (stepMatchDyn, verbatim
/// FastMatcher::stepMatch) is shared outright: μ-unfold clones exist only
/// at run time, so every backend matches them over the pattern AST.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_EXECSTATE_H
#define PYPM_PLAN_EXECSTATE_H

#include "match/Machine.h"
#include "plan/Program.h"
#include "support/Budget.h"

#include <deque>
#include <unordered_map>

namespace pypm::plan {

struct ExecState {
  /// Persistent continuation cell: a compiled action. Match targets are a
  /// PC into the program, or (after a μ unfold) a dynamic pattern node.
  struct Cell {
    match::ActionKind Kind = match::ActionKind::Match;
    uint32_t PC = kNoPC;                   ///< compiled Match/MatchConstr
    const pattern::Pattern *Pat = nullptr; ///< dynamic Match/MatchConstr
    term::TermRef T = nullptr;
    const pattern::GuardExpr *Guard = nullptr;
    Symbol Var;
    const Cell *Next = nullptr;
  };

  struct ChoicePoint {
    const Cell *Cont;
    size_t ThetaTrailLen;
    size_t PhiTrailLen;
  };

  pattern::PatternArena Scratch;
  std::deque<Cell> Cells;

  std::unordered_map<Symbol, term::TermRef> Theta;
  std::unordered_map<Symbol, term::OpId> Phi;
  std::vector<Symbol> ThetaTrail;
  std::vector<Symbol> PhiTrail;

  std::vector<ChoicePoint> Choices;
  const Cell *Cont = nullptr;
  uint64_t MuBudget = 0;
  match::MachineStatus Status = match::MachineStatus::Failure;
  match::MachineStats Stats;

  std::unordered_map<const pattern::Pattern *, const pattern::Pattern *>
      UnfoldMemo;

  /// The per-attempt reset every executor shares. Cells from a previous
  /// attempt are unreachable once Cont and Choices reset; dropping them
  /// keeps a reused executor's footprint proportional to one attempt, not
  /// the whole batch. Leaves the executor Running with an empty
  /// continuation — the caller seeds Cont next.
  void resetAttempt(uint64_t MaxMuUnfolds) {
    Cells.clear();
    Theta.clear();
    Phi.clear();
    ThetaTrail.clear();
    PhiTrail.clear();
    Choices.clear();
    Stats = match::MachineStats();
    MuBudget = MaxMuUnfolds;
    Cont = nullptr;
    Status = match::MachineStatus::Running;
  }

  const Cell *push(Cell C) {
    Cells.push_back(std::move(C));
    return &Cells.back();
  }
  const Cell *consMatch(uint32_t PC, term::TermRef T, const Cell *Next) {
    Cell C;
    C.PC = PC;
    C.T = T;
    C.Next = Next;
    return push(std::move(C));
  }
  const Cell *consMatchDyn(const pattern::Pattern *P, term::TermRef T,
                           const Cell *Next) {
    Cell C;
    C.Pat = P;
    C.T = T;
    C.Next = Next;
    return push(std::move(C));
  }

  match::MachineStatus backtrack() {
    ++Stats.Backtracks;
    if (Choices.empty()) {
      Status = match::MachineStatus::Failure;
      return Status;
    }
    ChoicePoint CP = Choices.back();
    Choices.pop_back();
    while (ThetaTrail.size() > CP.ThetaTrailLen) {
      Theta.erase(ThetaTrail.back());
      ThetaTrail.pop_back();
    }
    while (PhiTrail.size() > CP.PhiTrailLen) {
      Phi.erase(PhiTrail.back());
      PhiTrail.pop_back();
    }
    Cont = CP.Cont;
    Status = match::MachineStatus::Running;
    return Status;
  }

  bool bindVar(Symbol X, term::TermRef T) {
    auto [It, Inserted] = Theta.emplace(X, T);
    if (!Inserted)
      return It->second == T;
    ThetaTrail.push_back(X);
    ++Stats.VarBinds;
    return true;
  }

  bool bindFunVar(Symbol F, term::OpId Op) {
    auto [It, Inserted] = Phi.emplace(F, Op);
    if (!Inserted)
      return It->second == Op;
    PhiTrail.push_back(F);
    return true;
  }

  void pushChoice(const Cell *Alt) {
    Choices.push_back(ChoicePoint{Alt, ThetaTrail.size(), PhiTrail.size()});
    Stats.MaxStackDepth = std::max(Stats.MaxStackDepth, Choices.size());
  }

  /// Pays one μ unfold (fuel + counter) and pushes the memoized unfolding
  /// of \p Mu as a dynamic match of \p T. Returns Running, or OutOfFuel
  /// with Status set when the μ budget is spent. The memo is keyed by the
  /// μ pattern node itself, so the dynamic path (nested μ in an unfolded
  /// body) shares it with the compiled path.
  match::MachineStatus unfoldMu(const pattern::MuPattern *Mu, term::TermRef T) {
    if (MuBudget == 0) {
      Status = match::MachineStatus::OutOfFuel;
      return Status;
    }
    --MuBudget;
    ++Stats.MuUnfolds;
    const pattern::Pattern *&Slot =
        UnfoldMemo[static_cast<const pattern::Pattern *>(Mu)];
    if (!Slot)
      Slot = Scratch.unfoldMu(Mu);
    Cont = consMatchDyn(Slot, T, Cont);
    return match::MachineStatus::Running;
  }

  match::Witness witness() const {
    match::Witness W;
    for (const auto &[K, V] : Theta)
      W.Theta.bind(K, V);
    for (const auto &[K, V] : Phi)
      W.Phi.bind(K, V);
    return W;
  }

  /// Verbatim FastMatcher::stepMatch: runs the pattern-AST fragments that
  /// only exist at run time (μ-unfold clones).
  match::MachineStatus stepMatchDyn(const pattern::Pattern *P,
                                    term::TermRef T);
};

/// Guard evaluation environment over an ExecState's live bindings.
struct ExecGuardEnv final : public pattern::GuardEnv {
  const ExecState &St;
  const term::TermArena &A;
  ExecGuardEnv(const ExecState &St, const term::TermArena &A) : St(St), A(A) {}
  std::optional<term::TermRef> lookupVar(Symbol Var) const override {
    auto It = St.Theta.find(Var);
    if (It == St.Theta.end())
      return std::nullopt;
    return It->second;
  }
  std::optional<term::OpId> lookupFunVar(Symbol FunVar) const override {
    auto It = St.Phi.find(FunVar);
    if (It == St.Phi.end())
      return std::nullopt;
    return It->second;
  }
  const term::TermArena &arena() const override { return A; }
};

/// The shared cell-dispatch loop. \p Step executes one *compiled* Match
/// cell: signature match::MachineStatus(uint32_t PC, term::TermRef T),
/// returning Running or the result of a backtrack/fuel terminal exactly
/// like Interpreter::stepExec. Everything else — step counting, the
/// 1024-step engine-budget poll, guard evaluation, θ/φ checks, constraint
/// re-dispatch, and the dynamic μ-escape — is identical across backends by
/// construction, because it is this one function.
template <typename CompiledStep>
match::MachineStatus runExecLoop(ExecState &St,
                                 const match::Machine::Options &Opts,
                                 const pattern::GuardEnv &Env,
                                 CompiledStep &&Step) {
  using match::ActionKind;
  using match::MachineStatus;
  while (St.Status == MachineStatus::Running) {
    if (++St.Stats.Steps > Opts.MaxSteps) {
      St.Status = MachineStatus::OutOfFuel;
      break;
    }
    if (Opts.EngineBudget && (St.Stats.Steps & 1023u) == 0 &&
        Opts.EngineBudget->interrupted()) {
      St.Status = MachineStatus::OutOfFuel;
      break;
    }
    if (!St.Cont) {
      St.Status = MachineStatus::Success;
      break;
    }
    const ExecState::Cell &A = *St.Cont;
    const ExecState::Cell *Rest = St.Cont->Next;
    switch (A.Kind) {
    case ActionKind::Match: {
      St.Cont = Rest;
      MachineStatus S =
          A.PC != kNoPC ? Step(A.PC, A.T) : St.stepMatchDyn(A.Pat, A.T);
      if (S != MachineStatus::Running)
        St.Status = S;
      break;
    }
    case ActionKind::Guard: {
      ++St.Stats.GuardEvals;
      pattern::GuardEval E = A.Guard->evalBool(Env);
      if (!E.ok())
        ++St.Stats.GuardStuck;
      if (E.truthy())
        St.Cont = Rest;
      else
        St.backtrack();
      break;
    }
    case ActionKind::CheckName:
      if (St.Theta.count(A.Var))
        St.Cont = Rest;
      else
        St.backtrack();
      break;
    case ActionKind::CheckFunName:
      if (St.Phi.count(A.Var))
        St.Cont = Rest;
      else
        St.backtrack();
      break;
    case ActionKind::MatchConstr: {
      auto It = St.Theta.find(A.Var);
      if (It == St.Theta.end()) {
        St.backtrack();
        break;
      }
      if (A.PC != kNoPC)
        St.Cont = St.consMatch(A.PC, It->second, Rest);
      else
        St.Cont = St.consMatchDyn(A.Pat, It->second, Rest);
      break;
    }
    }
  }
  return St.Status;
}

} // namespace pypm::plan

#endif // PYPM_PLAN_EXECSTATE_H
