//===- plan/ExecState.cpp - Shared mutable state for plan executors -------===//
//
// stepMatchDyn shadows FastMatcher::stepMatch; when editing, keep
// match/FastMatcher.cpp open next to this file. The differential suites
// (tests/test_matchplan.cpp, tests/test_aot.cpp) pin every executor that
// runs through this state to identical statuses, witnesses, resume()
// streams, and step counters.
//
//===----------------------------------------------------------------------===//

#include "plan/ExecState.h"

using namespace pypm;
using namespace pypm::plan;
using namespace pypm::match;
using namespace pypm::pattern;

MachineStatus ExecState::stepMatchDyn(const Pattern *P, term::TermRef T) {
  switch (P->kind()) {
  case PatternKind::Var:
    if (bindVar(cast<VarPattern>(P)->name(), T))
      return MachineStatus::Running;
    return backtrack();

  case PatternKind::App: {
    const auto *AP = cast<AppPattern>(P);
    if (AP->op() != T->op())
      return backtrack();
    for (unsigned I = AP->arity(); I-- > 0;)
      Cont = consMatchDyn(AP->children()[I], T->child(I), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::FunVarApp: {
    const auto *FP = cast<FunVarAppPattern>(P);
    if (FP->arity() != T->arity())
      return backtrack();
    if (!bindFunVar(FP->funVar(), T->op()))
      return backtrack();
    for (unsigned I = FP->arity(); I-- > 0;)
      Cont = consMatchDyn(FP->children()[I], T->child(I), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    pushChoice(consMatchDyn(AP->right(), T, Cont));
    Cont = consMatchDyn(AP->left(), T, Cont);
    return MachineStatus::Running;
  }

  case PatternKind::Guarded: {
    const auto *GP = cast<GuardedPattern>(P);
    Cell G;
    G.Kind = ActionKind::Guard;
    G.Guard = GP->guard();
    G.Next = Cont;
    Cont = consMatchDyn(GP->sub(), T, push(std::move(G)));
    return MachineStatus::Running;
  }

  case PatternKind::Exists: {
    const auto *EP = cast<ExistsPattern>(P);
    Cell C;
    C.Kind = ActionKind::CheckName;
    C.Var = EP->var();
    C.Next = Cont;
    Cont = consMatchDyn(EP->sub(), T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case PatternKind::ExistsFun: {
    const auto *EP = cast<ExistsFunPattern>(P);
    Cell C;
    C.Kind = ActionKind::CheckFunName;
    C.Var = EP->funVar();
    C.Next = Cont;
    Cont = consMatchDyn(EP->sub(), T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case PatternKind::MatchConstraint: {
    const auto *MP = cast<MatchConstraintPattern>(P);
    Cell C;
    C.Kind = ActionKind::MatchConstr;
    C.Pat = MP->constraint();
    C.Var = MP->var();
    C.Next = Cont;
    Cont = consMatchDyn(MP->sub(), T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case PatternKind::Mu:
    return unfoldMu(cast<MuPattern>(P), T);

  case PatternKind::RecCall:
    assert(false && "RecCall reached the matcher (ill-formed pattern)");
    return backtrack();
  }
  assert(false && "unknown pattern kind");
  return MachineStatus::Failure;
}
