//===- plan/Interpreter.cpp - Bytecode executor for MatchPlans ------------===//
//
// Every step here shadows the corresponding FastMatcher step; when editing,
// keep match/FastMatcher.cpp open next to this file. The differential suite
// pins the two (and the reference Machine) to identical statuses, witnesses,
// resume() streams, and step counters.
//
//===----------------------------------------------------------------------===//

#include "plan/Interpreter.h"

#include "support/Budget.h"

using namespace pypm;
using namespace pypm::plan;
using namespace pypm::match;
using namespace pypm::pattern;

MachineStatus Interpreter::matchEntry(size_t EntryIdx, term::TermRef T) {
  assert(EntryIdx < Prog.Entries.size() && "entry index out of range");
  // Cells from a previous attempt are unreachable once Cont and Choices
  // reset below; dropping them keeps a reused (batch-mode) interpreter's
  // footprint proportional to one attempt, not the whole batch.
  Cells.clear();
  Theta.clear();
  Phi.clear();
  ThetaTrail.clear();
  PhiTrail.clear();
  Choices.clear();
  Stats = MachineStats();
  MuBudget = Opts.MaxMuUnfolds;
  Cont = consMatch(Prog.Entries[EntryIdx].RootPC, T, nullptr);
  Status = MachineStatus::Running;
  // Profiling is observation-only: counters after the run, never a branch
  // inside it. Only the first terminal counts as the attempt's outcome;
  // resume() continuations are part of the same attempt.
  if (Prof)
    Prof->noteAttempt(EntryIdx);
  MachineStatus S = runLoop();
  if (Prof && S == MachineStatus::Success)
    Prof->noteMatch(EntryIdx);
  return S;
}

MachineStatus Interpreter::resume() {
  if (Status != MachineStatus::Success)
    return Status;
  Status = MachineStatus::Running;
  if (backtrack() != MachineStatus::Running)
    return Status;
  return runLoop();
}

Witness Interpreter::witness() const {
  Witness W;
  for (const auto &[K, V] : Theta)
    W.Theta.bind(K, V);
  for (const auto &[K, V] : Phi)
    W.Phi.bind(K, V);
  return W;
}

MachineStatus Interpreter::backtrack() {
  ++Stats.Backtracks;
  if (Choices.empty()) {
    Status = MachineStatus::Failure;
    return Status;
  }
  ChoicePoint CP = Choices.back();
  Choices.pop_back();
  while (ThetaTrail.size() > CP.ThetaTrailLen) {
    Theta.erase(ThetaTrail.back());
    ThetaTrail.pop_back();
  }
  while (PhiTrail.size() > CP.PhiTrailLen) {
    Phi.erase(PhiTrail.back());
    PhiTrail.pop_back();
  }
  Cont = CP.Cont;
  Status = MachineStatus::Running;
  return Status;
}

bool Interpreter::bindVar(Symbol X, term::TermRef T) {
  auto [It, Inserted] = Theta.emplace(X, T);
  if (!Inserted)
    return It->second == T;
  ThetaTrail.push_back(X);
  ++Stats.VarBinds;
  return true;
}

bool Interpreter::bindFunVar(Symbol F, term::OpId Op) {
  auto [It, Inserted] = Phi.emplace(F, Op);
  if (!Inserted)
    return It->second == Op;
  PhiTrail.push_back(F);
  return true;
}

namespace pypm::plan {
struct InterpreterGuardEnv final : public GuardEnv {
  const Interpreter &M;
  explicit InterpreterGuardEnv(const Interpreter &M) : M(M) {}
  std::optional<term::TermRef> lookupVar(Symbol Var) const override {
    auto It = M.Theta.find(Var);
    if (It == M.Theta.end())
      return std::nullopt;
    return It->second;
  }
  std::optional<term::OpId> lookupFunVar(Symbol FunVar) const override {
    auto It = M.Phi.find(FunVar);
    if (It == M.Phi.end())
      return std::nullopt;
    return It->second;
  }
  const term::TermArena &arena() const override { return M.Arena; }
};
} // namespace pypm::plan

MachineStatus Interpreter::runLoop() {
  InterpreterGuardEnv Env(*this);

  while (Status == MachineStatus::Running) {
    if (++Stats.Steps > Opts.MaxSteps) {
      Status = MachineStatus::OutOfFuel;
      break;
    }
    if (Opts.EngineBudget && (Stats.Steps & 1023u) == 0 &&
        Opts.EngineBudget->interrupted()) {
      Status = MachineStatus::OutOfFuel;
      break;
    }
    if (!Cont) {
      Status = MachineStatus::Success;
      break;
    }
    const Cell &A = *Cont;
    const Cell *Rest = Cont->Next;
    switch (A.Kind) {
    case ActionKind::Match: {
      Cont = Rest;
      MachineStatus S =
          A.PC != kNoPC ? stepExec(A.PC, A.T) : stepMatchDyn(A.Pat, A.T);
      if (S != MachineStatus::Running)
        Status = S;
      break;
    }
    case ActionKind::Guard: {
      ++Stats.GuardEvals;
      GuardEval E = A.Guard->evalBool(Env);
      if (!E.ok())
        ++Stats.GuardStuck;
      if (E.truthy())
        Cont = Rest;
      else
        backtrack();
      break;
    }
    case ActionKind::CheckName:
      if (Theta.count(A.Var))
        Cont = Rest;
      else
        backtrack();
      break;
    case ActionKind::CheckFunName:
      if (Phi.count(A.Var))
        Cont = Rest;
      else
        backtrack();
      break;
    case ActionKind::MatchConstr: {
      auto It = Theta.find(A.Var);
      if (It == Theta.end()) {
        backtrack();
        break;
      }
      if (A.PC != kNoPC)
        Cont = consMatch(A.PC, It->second, Rest);
      else
        Cont = consMatchDyn(A.Pat, It->second, Rest);
      break;
    }
    }
  }
  return Status;
}

MachineStatus Interpreter::stepExec(uint32_t PC, term::TermRef T) {
  const Instr &I = Prog.Code[PC];
  switch (I.Op) {
  case OpCode::MatchVar:
    if (bindVar(Prog.Syms[I.A], T))
      return MachineStatus::Running;
    return backtrack();

  case OpCode::MatchApp: {
    if (term::OpId(I.A) != T->op())
      return backtrack();
    for (uint32_t C = I.NumChildren; C-- > 0;)
      Cont = consMatch(Prog.ChildPCs[I.FirstChild + C], T->child(C), Cont);
    return MachineStatus::Running;
  }

  case OpCode::MatchFunVarApp: {
    if (I.NumChildren != T->arity())
      return backtrack();
    if (!bindFunVar(Prog.Syms[I.A], T->op()))
      return backtrack();
    for (uint32_t C = I.NumChildren; C-- > 0;)
      Cont = consMatch(Prog.ChildPCs[I.FirstChild + C], T->child(C), Cont);
    return MachineStatus::Running;
  }

  case OpCode::MatchAlt: {
    Choices.push_back(ChoicePoint{consMatch(I.B, T, Cont), ThetaTrail.size(),
                                  PhiTrail.size()});
    Stats.MaxStackDepth = std::max(Stats.MaxStackDepth, Choices.size());
    Cont = consMatch(I.A, T, Cont);
    return MachineStatus::Running;
  }

  case OpCode::MatchGuarded: {
    Cell G;
    G.Kind = ActionKind::Guard;
    G.Guard = Prog.Guards[I.B];
    G.Next = Cont;
    Cont = consMatch(I.A, T, push(std::move(G)));
    return MachineStatus::Running;
  }

  case OpCode::MatchExists: {
    Cell C;
    C.Kind = ActionKind::CheckName;
    C.Var = Prog.Syms[I.B];
    C.Next = Cont;
    Cont = consMatch(I.A, T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case OpCode::MatchExistsFun: {
    Cell C;
    C.Kind = ActionKind::CheckFunName;
    C.Var = Prog.Syms[I.B];
    C.Next = Cont;
    Cont = consMatch(I.A, T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case OpCode::MatchConstraint: {
    Cell C;
    C.Kind = ActionKind::MatchConstr;
    C.PC = I.B;
    C.Var = Prog.Syms[I.C];
    C.Next = Cont;
    Cont = consMatch(I.A, T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case OpCode::MatchMu: {
    if (MuBudget == 0) {
      Status = MachineStatus::OutOfFuel;
      return Status;
    }
    --MuBudget;
    ++Stats.MuUnfolds;
    // Keyed by the μ pattern node itself, so the dynamic path (nested μ in
    // an unfolded body) shares the memo with the compiled path.
    const MuPattern *Mu = Prog.Mus[I.A];
    const Pattern *&Slot = UnfoldMemo[Mu];
    if (!Slot)
      Slot = Scratch.unfoldMu(Mu);
    Cont = consMatchDyn(Slot, T, Cont);
    return MachineStatus::Running;
  }

  case OpCode::Fail:
    return backtrack();
  }
  assert(false && "unknown opcode");
  return MachineStatus::Failure;
}

// Verbatim FastMatcher::stepMatch: runs the pattern-AST fragments that only
// exist at run time (μ-unfold clones).
MachineStatus Interpreter::stepMatchDyn(const Pattern *P, term::TermRef T) {
  switch (P->kind()) {
  case PatternKind::Var:
    if (bindVar(cast<VarPattern>(P)->name(), T))
      return MachineStatus::Running;
    return backtrack();

  case PatternKind::App: {
    const auto *AP = cast<AppPattern>(P);
    if (AP->op() != T->op())
      return backtrack();
    for (unsigned I = AP->arity(); I-- > 0;)
      Cont = consMatchDyn(AP->children()[I], T->child(I), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::FunVarApp: {
    const auto *FP = cast<FunVarAppPattern>(P);
    if (FP->arity() != T->arity())
      return backtrack();
    if (!bindFunVar(FP->funVar(), T->op()))
      return backtrack();
    for (unsigned I = FP->arity(); I-- > 0;)
      Cont = consMatchDyn(FP->children()[I], T->child(I), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    Choices.push_back(ChoicePoint{consMatchDyn(AP->right(), T, Cont),
                                  ThetaTrail.size(), PhiTrail.size()});
    Stats.MaxStackDepth = std::max(Stats.MaxStackDepth, Choices.size());
    Cont = consMatchDyn(AP->left(), T, Cont);
    return MachineStatus::Running;
  }

  case PatternKind::Guarded: {
    const auto *GP = cast<GuardedPattern>(P);
    Cell G;
    G.Kind = ActionKind::Guard;
    G.Guard = GP->guard();
    G.Next = Cont;
    Cont = consMatchDyn(GP->sub(), T, push(std::move(G)));
    return MachineStatus::Running;
  }

  case PatternKind::Exists: {
    const auto *EP = cast<ExistsPattern>(P);
    Cell C;
    C.Kind = ActionKind::CheckName;
    C.Var = EP->var();
    C.Next = Cont;
    Cont = consMatchDyn(EP->sub(), T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case PatternKind::ExistsFun: {
    const auto *EP = cast<ExistsFunPattern>(P);
    Cell C;
    C.Kind = ActionKind::CheckFunName;
    C.Var = EP->funVar();
    C.Next = Cont;
    Cont = consMatchDyn(EP->sub(), T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case PatternKind::MatchConstraint: {
    const auto *MP = cast<MatchConstraintPattern>(P);
    Cell C;
    C.Kind = ActionKind::MatchConstr;
    C.Pat = MP->constraint();
    C.Var = MP->var();
    C.Next = Cont;
    Cont = consMatchDyn(MP->sub(), T, push(std::move(C)));
    return MachineStatus::Running;
  }

  case PatternKind::Mu: {
    if (MuBudget == 0) {
      Status = MachineStatus::OutOfFuel;
      return Status;
    }
    --MuBudget;
    ++Stats.MuUnfolds;
    const Pattern *&Slot = UnfoldMemo[P];
    if (!Slot)
      Slot = Scratch.unfoldMu(cast<MuPattern>(P));
    Cont = consMatchDyn(Slot, T, Cont);
    return MachineStatus::Running;
  }

  case PatternKind::RecCall:
    assert(false && "RecCall reached the matcher (ill-formed pattern)");
    return backtrack();
  }
  assert(false && "unknown pattern kind");
  return MachineStatus::Failure;
}

MatchResult Interpreter::matchOne(size_t EntryIdx, term::TermRef T) {
  MachineStatus S = matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = witness();
  R.Stats = stats();
  return R;
}

MatchResult Interpreter::run(const Program &Prog, size_t EntryIdx,
                             term::TermRef T, const term::TermArena &Arena,
                             Machine::Options Opts, Profile *Prof) {
  Interpreter M(Prog, Arena, Opts);
  M.setProfile(Prof);
  MachineStatus S = M.matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = M.witness();
  R.Stats = M.stats();
  return R;
}
