//===- plan/Interpreter.cpp - Bytecode executor for MatchPlans ------------===//
//
// stepExec shadows the corresponding FastMatcher step over the compiled
// instruction table; when editing, keep match/FastMatcher.cpp (and
// plan/ExecState.cpp, which owns the dynamic escape) open next to this
// file. The differential suites pin this executor, both AOT backends, the
// FastMatcher, and the reference Machine to identical statuses, witnesses,
// resume() streams, and step counters.
//
//===----------------------------------------------------------------------===//

#include "plan/Interpreter.h"

#include "support/Budget.h"

using namespace pypm;
using namespace pypm::plan;
using namespace pypm::match;
using namespace pypm::pattern;

MachineStatus Interpreter::matchEntry(size_t EntryIdx, term::TermRef T) {
  assert(EntryIdx < Prog.Entries.size() && "entry index out of range");
  St.resetAttempt(Opts.MaxMuUnfolds);
  St.Cont = St.consMatch(Prog.Entries[EntryIdx].RootPC, T, nullptr);
  // Profiling is observation-only: counters after the run, never a branch
  // inside it. Only the first terminal counts as the attempt's outcome;
  // resume() continuations are part of the same attempt.
  if (Prof)
    Prof->noteAttempt(EntryIdx);
  MachineStatus S = runLoop();
  if (Prof && S == MachineStatus::Success)
    Prof->noteMatch(EntryIdx);
  return S;
}

MachineStatus Interpreter::resume() {
  if (St.Status != MachineStatus::Success)
    return St.Status;
  St.Status = MachineStatus::Running;
  if (St.backtrack() != MachineStatus::Running)
    return St.Status;
  return runLoop();
}

MachineStatus Interpreter::runLoop() {
  ExecGuardEnv Env(St, Arena);
  return runExecLoop(St, Opts, Env, [this](uint32_t PC, term::TermRef T) {
    return stepExec(PC, T);
  });
}

MachineStatus Interpreter::stepExec(uint32_t PC, term::TermRef T) {
  const Instr &I = Prog.Code[PC];
  switch (I.Op) {
  case OpCode::MatchVar:
    if (St.bindVar(Prog.Syms[I.A], T))
      return MachineStatus::Running;
    return St.backtrack();

  case OpCode::MatchApp: {
    if (term::OpId(I.A) != T->op())
      return St.backtrack();
    for (uint32_t C = I.NumChildren; C-- > 0;)
      St.Cont =
          St.consMatch(Prog.ChildPCs[I.FirstChild + C], T->child(C), St.Cont);
    return MachineStatus::Running;
  }

  case OpCode::MatchFunVarApp: {
    if (I.NumChildren != T->arity())
      return St.backtrack();
    if (!St.bindFunVar(Prog.Syms[I.A], T->op()))
      return St.backtrack();
    for (uint32_t C = I.NumChildren; C-- > 0;)
      St.Cont =
          St.consMatch(Prog.ChildPCs[I.FirstChild + C], T->child(C), St.Cont);
    return MachineStatus::Running;
  }

  case OpCode::MatchAlt: {
    St.pushChoice(St.consMatch(I.B, T, St.Cont));
    St.Cont = St.consMatch(I.A, T, St.Cont);
    return MachineStatus::Running;
  }

  case OpCode::MatchGuarded: {
    ExecState::Cell G;
    G.Kind = ActionKind::Guard;
    G.Guard = Prog.Guards[I.B];
    G.Next = St.Cont;
    St.Cont = St.consMatch(I.A, T, St.push(std::move(G)));
    return MachineStatus::Running;
  }

  case OpCode::MatchExists: {
    ExecState::Cell C;
    C.Kind = ActionKind::CheckName;
    C.Var = Prog.Syms[I.B];
    C.Next = St.Cont;
    St.Cont = St.consMatch(I.A, T, St.push(std::move(C)));
    return MachineStatus::Running;
  }

  case OpCode::MatchExistsFun: {
    ExecState::Cell C;
    C.Kind = ActionKind::CheckFunName;
    C.Var = Prog.Syms[I.B];
    C.Next = St.Cont;
    St.Cont = St.consMatch(I.A, T, St.push(std::move(C)));
    return MachineStatus::Running;
  }

  case OpCode::MatchConstraint: {
    ExecState::Cell C;
    C.Kind = ActionKind::MatchConstr;
    C.PC = I.B;
    C.Var = Prog.Syms[I.C];
    C.Next = St.Cont;
    St.Cont = St.consMatch(I.A, T, St.push(std::move(C)));
    return MachineStatus::Running;
  }

  case OpCode::MatchMu:
    return St.unfoldMu(Prog.Mus[I.A], T);

  case OpCode::Fail:
    return St.backtrack();
  }
  assert(false && "unknown opcode");
  return MachineStatus::Failure;
}

MatchResult Interpreter::matchOne(size_t EntryIdx, term::TermRef T) {
  MachineStatus S = matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = witness();
  R.Stats = stats();
  return R;
}

MatchResult Interpreter::run(const Program &Prog, size_t EntryIdx,
                             term::TermRef T, const term::TermArena &Arena,
                             Machine::Options Opts, Profile *Prof) {
  Interpreter M(Prog, Arena, Opts);
  M.setProfile(Prof);
  MachineStatus S = M.matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = M.witness();
  R.Stats = M.stats();
  return R;
}
