//===- plan/PlanBuilder.h - RuleSet -> Program compiler ---------*- C++ -*-===//
///
/// \file
/// Lowers a rewrite::RuleSet into a plan::Program: bytecode per entry plus
/// the shared discrimination tree. The compile is deterministic — entries
/// in rule-set order, pattern nodes in memoized pre-order — which is what
/// lets the .pypmplan loader validate an artifact by recompiling its
/// embedded library and comparing streams (see PlanSerializer.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_PLANBUILDER_H
#define PYPM_PLAN_PLANBUILDER_H

#include "plan/Program.h"
#include "rewrite/Rule.h"

namespace pypm::plan {

struct Profile;

class PlanBuilder {
public:
  /// Compile every entry of \p Rules into one shared Program (bytecode +
  /// side tables + discrimination tree).
  static Program compile(const rewrite::RuleSet &Rules,
                         const term::Signature &Sig);

  /// (Re)build the discrimination tree of \p P from the patterns in
  /// \p Rules. Deterministic; called by compile() and after load.
  static void buildTree(Program &P, const rewrite::RuleSet &Rules,
                        const term::Signature &Sig);

  /// Canonical, operator-id-independent fingerprint of a compiled plan:
  /// hashes the entry table, symbol table, bytecode stream (excluding
  /// MatchApp operator operands — they are signature-relative, exactly the
  /// operands the .pypmplan stream comparison exempts), child-PC pool, and
  /// the tree's aggregate shape. Invariant under applyProfile, so a profile
  /// recorded on a reordered plan still binds (profiles compose across
  /// generations) and a profile survives operator renumbering between
  /// processes. Computed by compile()/buildTree() into Program::CanonicalSig.
  static uint64_t signature(const Program &P);

  /// Reorders \p P's discrimination tree by the counters in \p Prof: within
  /// each group, edges sort by descending hit count (hot keys compared
  /// first); groups within a node sort by descending productivity; accept
  /// lists put hot entries first; never-hit wildcard entries sink to the
  /// cold tail of the wildcard list. Every permutation is layout-only —
  /// the candidate mask is positional and edge keys are unique per list,
  /// so the emitted candidate *set*, and with it every match stream, is
  /// bit-identical to the unprofiled plan (tests/test_planprofile.cpp).
  ///
  /// Returns false without touching \p P when the profile is not bound to
  /// this plan (signature or shape mismatch — e.g. recorded against a
  /// mutated rule set): a stale profile degrades to canonical order, never
  /// to a misordered tree.
  static bool applyProfile(Program &P, const Profile &Prof);
};

} // namespace pypm::plan

#endif // PYPM_PLAN_PLANBUILDER_H
