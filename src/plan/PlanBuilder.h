//===- plan/PlanBuilder.h - RuleSet -> Program compiler ---------*- C++ -*-===//
///
/// \file
/// Lowers a rewrite::RuleSet into a plan::Program: bytecode per entry plus
/// the shared discrimination tree. The compile is deterministic — entries
/// in rule-set order, pattern nodes in memoized pre-order — which is what
/// lets the .pypmplan loader validate an artifact by recompiling its
/// embedded library and comparing streams (see PlanSerializer.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_PLANBUILDER_H
#define PYPM_PLAN_PLANBUILDER_H

#include "plan/Program.h"
#include "rewrite/Rule.h"

namespace pypm::plan {

class PlanBuilder {
public:
  /// Compile every entry of \p Rules into one shared Program (bytecode +
  /// side tables + discrimination tree).
  static Program compile(const rewrite::RuleSet &Rules,
                         const term::Signature &Sig);

  /// (Re)build the discrimination tree of \p P from the patterns in
  /// \p Rules. Deterministic; called by compile() and after load.
  static void buildTree(Program &P, const rewrite::RuleSet &Rules,
                        const term::Signature &Sig);
};

} // namespace pypm::plan

#endif // PYPM_PLAN_PLANBUILDER_H
