//===- plan/Profile.cpp - Profile recording and the .pypmprof format ------===//

#include "plan/Profile.h"

#include "plan/Program.h"
#include "support/Hash.h"

#include <cassert>

using namespace pypm;
using namespace pypm::plan;

bool Profile::boundTo(const Program &P) const {
  return PlanSignature == P.CanonicalSig &&
         GroupVisits.size() == P.NumGroups && EdgeHits.size() == P.NumEdges &&
         EntryAttempts.size() == P.Entries.size() &&
         EntryMatches.size() == P.Entries.size();
}

bool Profile::bindTo(const Program &P) {
  if (empty()) {
    PlanSignature = P.CanonicalSig;
    GroupVisits.assign(P.NumGroups, 0);
    EdgeHits.assign(P.NumEdges, 0);
    EntryAttempts.assign(P.Entries.size(), 0);
    EntryMatches.assign(P.Entries.size(), 0);
    return true;
  }
  return boundTo(P);
}

void Profile::addTrace(const TraversalTrace &T) {
  ++Traversals;
  for (uint32_t G : T.Groups)
    if (G < GroupVisits.size())
      ++GroupVisits[G];
  for (uint32_t E : T.Edges)
    if (E < EdgeHits.size())
      ++EdgeHits[E];
}

bool Profile::merge(const Profile &O) {
  if (O.empty() && O.Traversals == 0)
    return true;
  if (empty() && Traversals == 0) {
    *this = O;
    return true;
  }
  if (PlanSignature != O.PlanSignature ||
      GroupVisits.size() != O.GroupVisits.size() ||
      EdgeHits.size() != O.EdgeHits.size() ||
      EntryAttempts.size() != O.EntryAttempts.size() ||
      EntryMatches.size() != O.EntryMatches.size())
    return false;
  Traversals += O.Traversals;
  for (size_t I = 0; I < GroupVisits.size(); ++I)
    GroupVisits[I] += O.GroupVisits[I];
  for (size_t I = 0; I < EdgeHits.size(); ++I)
    EdgeHits[I] += O.EdgeHits[I];
  for (size_t I = 0; I < EntryAttempts.size(); ++I)
    EntryAttempts[I] += O.EntryAttempts[I];
  for (size_t I = 0; I < EntryMatches.size(); ++I)
    EntryMatches[I] += O.EntryMatches[I];
  return true;
}

//===----------------------------------------------------------------------===//
// .pypmprof serialization
//
// Layout (all integers little-endian):
//   "PYPF"  u32 version
//   u64 planSignature   u64 traversals
//   u32 numEntries  then numEntries x (u64 attempts, u64 matches)
//   u32 numGroups   then numGroups  x u64 visits
//   u32 numEdges    then numEdges   x u64 hits
//   u64 checksum    (FNV-1a of every preceding byte)
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t kProfileVersion = 1;

void appendU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

uint64_t payloadChecksum(std::string_view Payload) {
  Fnv1aHash H;
  H.bytes(Payload.data(), Payload.size());
  return H.value();
}

class ProfileReader {
public:
  ProfileReader(std::string_view Bytes, DiagnosticEngine &Diags)
      : Bytes(Bytes), Diags(Diags) {}

  std::unique_ptr<Profile> run() {
    if (Bytes.size() < 8 || Bytes.substr(0, 4) != "PYPF")
      return fail("not a PyPM match profile (bad magic)");
    Pos = 4;
    uint32_t Version = readU32();
    if (Failed)
      return nullptr;
    if (Version != kProfileVersion)
      return fail("unsupported match profile version " +
                  std::to_string(Version));

    auto P = std::make_unique<Profile>();
    P->PlanSignature = readU64();
    P->Traversals = readU64();
    if (!readCounterArray(P->EntryAttempts, P->EntryMatches))
      return nullptr;
    if (!readCounterArray(P->GroupVisits))
      return nullptr;
    if (!readCounterArray(P->EdgeHits))
      return nullptr;
    if (Failed)
      return nullptr;

    // The checksum covers everything before it; with 8 bytes left the
    // artifact is exactly the declared counters and nothing else.
    if (Bytes.size() - Pos != 8)
      return fail("trailing bytes after match profile payload");
    uint64_t Declared = readU64();
    if (Failed)
      return nullptr;
    if (Declared != payloadChecksum(Bytes.substr(0, Bytes.size() - 8)))
      return fail("match profile checksum mismatch (corrupt artifact)");
    return P;
  }

private:
  std::unique_ptr<Profile> fail(const std::string &Msg) {
    if (!Failed)
      Diags.error(SourceLoc(), "match profile: " + Msg);
    Failed = true;
    return nullptr;
  }

  uint32_t readU32() {
    if (Bytes.size() - Pos < 4) {
      fail("unexpected end of input");
      return 0;
    }
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(uint8_t(Bytes[Pos + I])) << (8 * I);
    Pos += 4;
    return V;
  }

  uint64_t readU64() {
    if (Failed || Bytes.size() - Pos < 8) {
      fail("unexpected end of input");
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= uint64_t(uint8_t(Bytes[Pos + I])) << (8 * I);
    Pos += 8;
    return V;
  }

  /// Reads a u32 count followed by one u64 per slot into each destination
  /// array, gating the count against the remaining byte budget *before*
  /// allocating — an implausible count is a clean error, not an OOM.
  template <typename... Vec> bool readCounterArray(Vec &...Dest) {
    if (Failed)
      return false;
    uint32_t N = readU32();
    if (Failed)
      return false;
    constexpr size_t PerSlot = sizeof...(Dest) * 8;
    if (N > (Bytes.size() - Pos) / PerSlot) {
      fail("implausible counter count");
      return false;
    }
    (Dest.assign(N, 0), ...);
    for (uint32_t I = 0; I < N && !Failed; ++I)
      ((Dest[I] = readU64()), ...);
    return !Failed;
  }

  std::string_view Bytes;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

std::string pypm::plan::serializeProfile(const Profile &P) {
  assert(P.EntryAttempts.size() == P.EntryMatches.size() &&
         "entry counter arrays out of sync");
  std::string Out = "PYPF";
  appendU32(Out, kProfileVersion);
  appendU64(Out, P.PlanSignature);
  appendU64(Out, P.Traversals);
  appendU32(Out, static_cast<uint32_t>(P.EntryAttempts.size()));
  for (size_t I = 0; I < P.EntryAttempts.size(); ++I) {
    appendU64(Out, P.EntryAttempts[I]);
    appendU64(Out, P.EntryMatches[I]);
  }
  appendU32(Out, static_cast<uint32_t>(P.GroupVisits.size()));
  for (uint64_t V : P.GroupVisits)
    appendU64(Out, V);
  appendU32(Out, static_cast<uint32_t>(P.EdgeHits.size()));
  for (uint64_t V : P.EdgeHits)
    appendU64(Out, V);
  appendU64(Out, payloadChecksum(Out));
  return Out;
}

std::unique_ptr<Profile>
pypm::plan::deserializeProfile(std::string_view Bytes,
                               DiagnosticEngine &Diags) {
  return ProfileReader(Bytes, Diags).run();
}
