//===- plan/PlanSerializer.h - Cacheable .pypmplan artifacts ----*- C++ -*-===//
///
/// \file
/// Serialized MatchPlans. A .pypmplan embeds the pattern binary it was
/// compiled from (the .pypmbin bytes, reusing that reader's hardening) and
/// the compiled streams: the entry table, the symbol table, and the
/// instruction/child-PC arrays.
///
/// Layout (v3, little-endian):
///   magic "PYPL", u32 version
///   u32 libLen, libLen bytes of embedded .pypmbin
///   entries:  u32 count, per entry: name (u32 len + bytes),
///             u32 rootPC, u32 firstPC, u32 numInstrs
///   symbols:  u32 count, per symbol: u32 len + bytes
///   u32 numGuards, u32 numMus   (side-table sizes; contents live in the
///                                pattern library, not the artifact)
///   code:     u32 count, per instr: u8 opcode, u32 A/B/C/firstChild/
///             numChildren
///   childPCs: u32 count, u32 each
///   profile:  u8 hasProfile; if 1: u32 profLen, profLen bytes of a
///             .pypmprof artifact (v2; optional profile-guided ordering)
///   confluence: u8 hasConfluence; if 1: u32 confLen, confLen bytes of a
///             confluence certificate (v3; analysis/CriticalPairs.h codec,
///             self-contained magic/version/bounds hardening) — cached
///             plans carry their certificate so `--search=auto` dispatches
///             without re-running the analysis
///
/// The loader is hardened like the .pypmbin reader (magic/version gates,
/// count plausibility gates, per-operand bounds checks, trailing-byte
/// rejection) and then goes one step further: it recompiles the embedded
/// library with PlanBuilder and requires the artifact's streams to agree
/// (modulo operator ids, which are signature-relative). The Program handed
/// to the engine is the recompiled one, so a byte-wise plausible but
/// inconsistent artifact is rejected rather than executed.
///
/// The discrimination tree is still never serialized: an embedded profile
/// rides along as opaque (checksummed, signature-bound) counters, and the
/// loader re-derives the ordering by running PlanBuilder::applyProfile on
/// the recompiled program. A profile that fails its own hardening gates or
/// does not bind to the recompiled plan rejects the artifact — it cannot
/// smuggle in a wrong or misordered tree.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_PLANSERIALIZER_H
#define PYPM_PLAN_PLANSERIALIZER_H

#include "analysis/CriticalPairs.h"
#include "plan/Profile.h"
#include "plan/Program.h"
#include "rewrite/Rule.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>

namespace pypm::plan {

/// Serializes a MatchPlan for \p Lib (compiled against \p Sig). The plan's
/// entries are the library's patterns in definition order; \p RulesOnly
/// mirrors RuleSet::addLibrary (skip match-only patterns). Internally
/// round-trips the library through its binary form first, so the emitted
/// streams are exactly what the loader's recompilation will produce.
/// When \p Prof is non-null it is embedded for profile-guided ordering;
/// it must bind to the compiled plan (signature check) or serialization
/// fails. When \p Confluence is non-null its certificate is embedded so
/// loaded plans can answer `--search=auto` without re-analysis. Returns
/// the empty string and emits a diagnostic on failure.
std::string serializePlan(const pattern::Library &Lib,
                          const term::Signature &Sig, bool RulesOnly,
                          DiagnosticEngine &Diags,
                          const Profile *Prof = nullptr,
                          const analysis::critical::ConfluenceReport
                              *Confluence = nullptr);

/// A deserialized plan: the embedded library, the rule set reconstructed
/// from the entry table, and the (recompiled, validated) program — with
/// the embedded profile (if any) already applied to Prog. Rules and Prog
/// borrow Lib; keep the struct alive while they are in use.
struct LoadedPlan {
  std::unique_ptr<pattern::Library> Lib;
  rewrite::RuleSet Rules;
  Program Prog;
  std::unique_ptr<Profile> Prof; ///< embedded profile, when present
  /// Embedded confluence certificate, when present (v3).
  std::unique_ptr<analysis::critical::ConfluenceReport> Confluence;
};

/// Deserializes a .pypmplan. Operator declarations of the embedded library
/// are merged into \p Sig (as deserializeLibrary does). Returns nullptr
/// and emits diagnostics on malformed input; never reads out of bounds.
std::unique_ptr<LoadedPlan> deserializePlan(std::string_view Bytes,
                                            term::Signature &Sig,
                                            DiagnosticEngine &Diags);

/// Content hash identifying a rule set for plan caching (server::PlanCache,
/// pypmc --plan-cache-dir=): FNV-1a over the canonical .pypmbin bytes of
/// the library plus the signature layout it was compiled against (every
/// declared operator's name/arity/results/class/attributes, in id order).
/// Two rule sets share a key iff their serialized libraries are
/// byte-identical AND they were compiled against identically laid-out
/// signatures — the pair that determines the compiled plan::Program, so
/// equal keys mean a cached plan is interchangeable with a fresh compile.
/// (Cache consumers still compare content on hit; the key is an index, not
/// a proof.)
uint64_t cacheKey(std::string_view LibBytes, const term::Signature &Sig);

/// Convenience overload: serializes \p Lib first (the canonical bytes).
uint64_t cacheKey(const pattern::Library &Lib, const term::Signature &Sig);

} // namespace pypm::plan

#endif // PYPM_PLAN_PLANSERIALIZER_H
