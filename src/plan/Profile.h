//===- plan/Profile.h - Match-plan execution profiles -----------*- C++ -*-===//
///
/// \file
/// A plan::Profile is the observation side of profile-guided plan
/// ordering: per-group visit counters and per-edge hit counters for the
/// discrimination tree, plus per-entry committed attempt/match counters
/// from the interpreter. PlanBuilder::applyProfile consumes one to reorder
/// the tree's edge lists, group lists, accept lists, and wildcard list —
/// layout-only permutations that can never change the candidate *set* the
/// tree emits (the mask is positional), hence never the match stream.
///
/// Counters are recorded strictly in **committed** order: the serial
/// engine records at each node visit, the parallel engine captures a
/// worker-side TraversalTrace per discovered node and merges it when (and
/// only when) that node's discovery is committed — so a profile recorded
/// at any thread count is bit-identical to the serial profile of the same
/// run (see DESIGN.md §"Profile-guided ordering" and the determinism suite
/// in tests/test_planprofile.cpp).
///
/// Profiles persist as hardened `.pypmprof` artifacts with the same
/// hostile-input discipline as `.pypmplan`: magic/version gates, count
/// plausibility against the byte budget, trailing-byte rejection, a
/// payload checksum, and a canonical plan signature that binds the profile
/// to the plan it was recorded against (reject-don't-misorder).
///
/// Edge *miss* counts are derived, not stored: the owning group's visit
/// count minus the edge's hit count — a group visit scans its edge lists
/// until one key matches, so every visit that is not a hit is a miss.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_PROFILE_H
#define PYPM_PLAN_PROFILE_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pypm::plan {

struct Program;

/// One discrimination-tree traversal's footprint, identified by the
/// canonical ids PlanBuilder assigned at build time (stable under any
/// profile-driven permutation, so profiles compose across generations).
/// The tree is a tree — each group is resolved at most once and each edge
/// taken at most once per traversal — so sets, not multisets.
struct TraversalTrace {
  std::vector<uint32_t> Groups; ///< group ids whose position was scanned
  std::vector<uint32_t> Edges;  ///< edge ids whose key test hit

  void clear() {
    Groups.clear();
    Edges.clear();
  }
};

struct Profile {
  /// PlanBuilder::signature() of the plan this profile was recorded
  /// against. Operator-id independent, so it survives signature
  /// renumbering — and rejects profiles from any *different* rule set.
  uint64_t PlanSignature = 0;

  uint64_t Traversals = 0; ///< candidate-mask computations recorded

  std::vector<uint64_t> GroupVisits;   ///< by TreeGroup::Id
  std::vector<uint64_t> EdgeHits;      ///< by TreeEdge::Id
  std::vector<uint64_t> EntryAttempts; ///< by entry index, committed order
  std::vector<uint64_t> EntryMatches;  ///< by entry index, committed order

  bool empty() const {
    return GroupVisits.empty() && EdgeHits.empty() && EntryAttempts.empty() &&
           EntryMatches.empty();
  }

  /// True iff this profile's shape and signature agree with \p P.
  bool boundTo(const Program &P) const;

  /// Binds this profile to \p P: a fresh (empty) profile is sized and
  /// stamped with the plan's signature; a populated one is only accepted
  /// if it already agrees (returns false otherwise, leaving it unchanged).
  bool bindTo(const Program &P);

  /// Commits one traversal: bumps Traversals and every group/edge counter
  /// named in \p T. Caller guarantees the trace came from this plan.
  void addTrace(const TraversalTrace &T);

  void noteAttempt(size_t Entry) {
    if (Entry < EntryAttempts.size())
      ++EntryAttempts[Entry];
  }
  void noteMatch(size_t Entry) {
    if (Entry < EntryMatches.size())
      ++EntryMatches[Entry];
  }

  /// Counter-merge rule (like MachineStats::merge, but checked): sums every
  /// counter of \p O into this profile. Both sides must be bound to the
  /// same plan (signature and shapes agree); returns false and leaves this
  /// profile unchanged otherwise. An empty side adopts the other.
  bool merge(const Profile &O);

  bool operator==(const Profile &) const = default;
};

/// Serializes \p P as a `.pypmprof` artifact.
std::string serializeProfile(const Profile &P);

/// Hardened `.pypmprof` reader: validates magic, version, count
/// plausibility against the byte budget, exact length, and the payload
/// checksum before returning. Returns nullptr (with a diagnostic) on any
/// violation — a corrupt or truncated profile is a clean load error, never
/// a crash and never a silently misordered plan.
std::unique_ptr<Profile> deserializeProfile(std::string_view Bytes,
                                            DiagnosticEngine &Diags);

} // namespace pypm::plan

#endif // PYPM_PLAN_PROFILE_H
