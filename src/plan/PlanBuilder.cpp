//===- plan/PlanBuilder.cpp - RuleSet -> Program compiler -----------------===//

#include "plan/PlanBuilder.h"

#include "plan/Profile.h"
#include "support/Hash.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace pypm::plan {

using pattern::AltPattern;
using pattern::AppPattern;
using pattern::cast;
using pattern::ExistsFunPattern;
using pattern::ExistsPattern;
using pattern::FunVarAppPattern;
using pattern::GuardedPattern;
using pattern::GuardExpr;
using pattern::MatchConstraintPattern;
using pattern::MuPattern;
using pattern::Pattern;
using pattern::PatternKind;
using pattern::VarPattern;

namespace {

//===----------------------------------------------------------------------===//
// Bytecode emission
//===----------------------------------------------------------------------===//

// The traversal order (memoized pre-order over shared pattern nodes;
// operands before sub-patterns, sub-patterns in display order) is a
// serialization contract: the .pypmplan loader recompiles the artifact's
// embedded library with this same compiler and requires the streams to
// agree, so any order change invalidates existing artifacts.
struct Compiler {
  explicit Compiler(Program &P) : P(P) {}

  Program &P;
  std::unordered_map<const Pattern *, uint32_t> PCOf;
  std::unordered_map<Symbol, uint32_t> SymIdx;
  std::unordered_map<const GuardExpr *, uint32_t> GuardIdx;
  std::unordered_map<const MuPattern *, uint32_t> MuIdx;

  uint32_t symIdx(Symbol S) {
    auto [It, New] = SymIdx.emplace(S, static_cast<uint32_t>(P.Syms.size()));
    if (New)
      P.Syms.push_back(S);
    return It->second;
  }
  uint32_t guardIdx(const GuardExpr *G) {
    auto [It, New] =
        GuardIdx.emplace(G, static_cast<uint32_t>(P.Guards.size()));
    if (New)
      P.Guards.push_back(G);
    return It->second;
  }
  uint32_t muIdx(const MuPattern *M) {
    auto [It, New] = MuIdx.emplace(M, static_cast<uint32_t>(P.Mus.size()));
    if (New)
      P.Mus.push_back(M);
    return It->second;
  }

  uint32_t compilePat(const Pattern *Pat) {
    if (auto It = PCOf.find(Pat); It != PCOf.end())
      return It->second;
    uint32_t PC = static_cast<uint32_t>(P.Code.size());
    PCOf.emplace(Pat, PC);
    P.Code.emplace_back();
    Instr I;
    switch (Pat->kind()) {
    case PatternKind::Var:
      I.Op = OpCode::MatchVar;
      I.A = symIdx(cast<VarPattern>(Pat)->name());
      break;
    case PatternKind::App: {
      const auto *AP = cast<AppPattern>(Pat);
      I.Op = OpCode::MatchApp;
      I.A = AP->op().index();
      std::vector<uint32_t> Kids;
      Kids.reserve(AP->arity());
      for (const Pattern *C : AP->children())
        Kids.push_back(compilePat(C));
      I.FirstChild = static_cast<uint32_t>(P.ChildPCs.size());
      I.NumChildren = static_cast<uint32_t>(Kids.size());
      P.ChildPCs.insert(P.ChildPCs.end(), Kids.begin(), Kids.end());
      break;
    }
    case PatternKind::FunVarApp: {
      const auto *FP = cast<FunVarAppPattern>(Pat);
      I.Op = OpCode::MatchFunVarApp;
      I.A = symIdx(FP->funVar());
      std::vector<uint32_t> Kids;
      Kids.reserve(FP->arity());
      for (const Pattern *C : FP->children())
        Kids.push_back(compilePat(C));
      I.FirstChild = static_cast<uint32_t>(P.ChildPCs.size());
      I.NumChildren = static_cast<uint32_t>(Kids.size());
      P.ChildPCs.insert(P.ChildPCs.end(), Kids.begin(), Kids.end());
      break;
    }
    case PatternKind::Alt: {
      const auto *AP = cast<AltPattern>(Pat);
      I.Op = OpCode::MatchAlt;
      I.A = compilePat(AP->left());
      I.B = compilePat(AP->right());
      break;
    }
    case PatternKind::Guarded: {
      const auto *GP = cast<GuardedPattern>(Pat);
      I.Op = OpCode::MatchGuarded;
      I.A = compilePat(GP->sub());
      I.B = guardIdx(GP->guard());
      break;
    }
    case PatternKind::Exists: {
      const auto *EP = cast<ExistsPattern>(Pat);
      I.Op = OpCode::MatchExists;
      I.A = compilePat(EP->sub());
      I.B = symIdx(EP->var());
      break;
    }
    case PatternKind::ExistsFun: {
      const auto *EP = cast<ExistsFunPattern>(Pat);
      I.Op = OpCode::MatchExistsFun;
      I.A = compilePat(EP->sub());
      I.B = symIdx(EP->funVar());
      break;
    }
    case PatternKind::MatchConstraint: {
      const auto *MP = cast<MatchConstraintPattern>(Pat);
      I.Op = OpCode::MatchConstraint;
      I.A = compilePat(MP->sub());
      I.B = compilePat(MP->constraint());
      I.C = symIdx(MP->var());
      break;
    }
    case PatternKind::Mu:
      // μ bodies are not compiled: the interpreter unfolds them on demand
      // through the arena, exactly like the per-pattern machines, so the
      // unfold budget and step accounting stay identical.
      I.Op = OpCode::MatchMu;
      I.A = muIdx(cast<MuPattern>(Pat));
      break;
    case PatternKind::RecCall:
      // Only well-formed inside a μ body, which is never compiled. A stray
      // one can never match (the machines assert-and-backtrack).
      I.Op = OpCode::Fail;
      break;
    }
    P.Code[PC] = I;
    return PC;
  }
};

//===----------------------------------------------------------------------===//
// Discrimination tree
//===----------------------------------------------------------------------===//

// Caps keep the tree small and shape extraction linear-ish; overflowing
// patterns degrade to the root-operator prefilter (never to unsoundness —
// every emitted constraint is a necessary condition for a match).
constexpr size_t kMaxShapeDepth = 6;
constexpr size_t kMaxShapesPerEntry = 64;
constexpr size_t kMaxConstraintsPerShape = 24;

struct Constraint {
  std::vector<uint8_t> Path; ///< child indices from the root
  bool IsArity = false;      ///< false: operator test, true: arity test
  uint32_t Value = 0;

  friend bool operator<(const Constraint &A, const Constraint &B) {
    if (A.Path != B.Path)
      return A.Path < B.Path;
    if (A.IsArity != B.IsArity)
      return A.IsArity < B.IsArity;
    return A.Value < B.Value;
  }
  friend bool operator==(const Constraint &A, const Constraint &B) {
    return A.Path == B.Path && A.IsArity == B.IsArity && A.Value == B.Value;
  }
};

using Shape = std::vector<Constraint>;

void crossAppend(std::vector<Shape> &Acc, std::vector<Shape> &&CS,
                 bool &Overflow) {
  if (CS.size() == 1 && CS.front().empty())
    return; // child contributes nothing
  if (Acc.size() * CS.size() > kMaxShapesPerEntry) {
    Overflow = true;
    return;
  }
  std::vector<Shape> Out;
  Out.reserve(Acc.size() * CS.size());
  for (const Shape &A : Acc)
    for (const Shape &C : CS) {
      Shape S = A;
      S.insert(S.end(), C.begin(), C.end());
      Out.push_back(std::move(S));
    }
  Acc = std::move(Out);
}

/// All shapes (conjunctions of necessary operator/arity tests at fixed
/// paths) of \p Pat. The returned set is a disjunction: a term can only
/// match \p Pat if it satisfies at least one shape. An empty shape means
/// "no constraint" (always satisfiable).
std::vector<Shape> shapesFor(const Pattern *Pat, std::vector<uint8_t> &Path,
                             bool &Overflow) {
  if (Overflow)
    return {Shape{}};
  switch (Pat->kind()) {
  case PatternKind::Var:
  case PatternKind::RecCall:
    return {Shape{}};
  case PatternKind::App: {
    const auto *AP = cast<AppPattern>(Pat);
    std::vector<Shape> Acc{Shape{Constraint{Path, false, AP->op().index()}}};
    if (Path.size() < kMaxShapeDepth) {
      for (size_t I = 0; I < AP->arity() && I < 256 && !Overflow; ++I) {
        Path.push_back(static_cast<uint8_t>(I));
        auto CS = shapesFor(AP->children()[I], Path, Overflow);
        Path.pop_back();
        if (!Overflow)
          crossAppend(Acc, std::move(CS), Overflow);
      }
    }
    return Acc;
  }
  case PatternKind::FunVarApp: {
    const auto *FP = cast<FunVarAppPattern>(Pat);
    std::vector<Shape> Acc{
        Shape{Constraint{Path, true, static_cast<uint32_t>(FP->arity())}}};
    if (Path.size() < kMaxShapeDepth) {
      for (size_t I = 0; I < FP->arity() && I < 256 && !Overflow; ++I) {
        Path.push_back(static_cast<uint8_t>(I));
        auto CS = shapesFor(FP->children()[I], Path, Overflow);
        Path.pop_back();
        if (!Overflow)
          crossAppend(Acc, std::move(CS), Overflow);
      }
    }
    return Acc;
  }
  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(Pat);
    auto L = shapesFor(AP->left(), Path, Overflow);
    auto R = shapesFor(AP->right(), Path, Overflow);
    if (L.size() + R.size() > kMaxShapesPerEntry) {
      Overflow = true;
      return {Shape{}};
    }
    L.insert(L.end(), std::make_move_iterator(R.begin()),
             std::make_move_iterator(R.end()));
    return L;
  }
  case PatternKind::Guarded:
    return shapesFor(cast<GuardedPattern>(Pat)->sub(), Path, Overflow);
  case PatternKind::Exists:
    return shapesFor(cast<ExistsPattern>(Pat)->sub(), Path, Overflow);
  case PatternKind::ExistsFun:
    return shapesFor(cast<ExistsFunPattern>(Pat)->sub(), Path, Overflow);
  case PatternKind::MatchConstraint:
    // The constraint pattern matches θ(x), not a fixed position: only the
    // structural sub-pattern constrains the root term.
    return shapesFor(cast<MatchConstraintPattern>(Pat)->sub(), Path, Overflow);
  case PatternKind::Mu:
    // Matching μ unfolds to its body with arguments substituted for the
    // parameters; parameter occurrences are variables (no constraints), so
    // the body's operator skeleton is a sound necessary condition.
    return shapesFor(cast<MuPattern>(Pat)->body(), Path, Overflow);
  }
  return {Shape{}};
}

/// The engine's root-operator prefilter, reproduced as the overflow
/// fallback: the set of operators a match can start with, or nullopt for
/// "any".
std::optional<std::vector<uint32_t>> rootOpsOf(const Pattern *Pat) {
  switch (Pat->kind()) {
  case PatternKind::App:
    return std::vector<uint32_t>{cast<AppPattern>(Pat)->op().index()};
  case PatternKind::Alt: {
    auto L = rootOpsOf(cast<AltPattern>(Pat)->left());
    auto R = rootOpsOf(cast<AltPattern>(Pat)->right());
    if (!L || !R)
      return std::nullopt;
    L->insert(L->end(), R->begin(), R->end());
    std::sort(L->begin(), L->end());
    L->erase(std::unique(L->begin(), L->end()), L->end());
    return L;
  }
  case PatternKind::Guarded:
    return rootOpsOf(cast<GuardedPattern>(Pat)->sub());
  case PatternKind::Exists:
    return rootOpsOf(cast<ExistsPattern>(Pat)->sub());
  case PatternKind::ExistsFun:
    return rootOpsOf(cast<ExistsFunPattern>(Pat)->sub());
  case PatternKind::MatchConstraint:
    return rootOpsOf(cast<MatchConstraintPattern>(Pat)->sub());
  case PatternKind::Mu:
    return rootOpsOf(cast<MuPattern>(Pat)->body());
  case PatternKind::Var:
  case PatternKind::FunVarApp:
  case PatternKind::RecCall:
    return std::nullopt;
  }
  return std::nullopt;
}

struct TreeInserter {
  explicit TreeInserter(Program &P) : P(P) {}

  Program &P;
  std::map<std::vector<uint8_t>, uint32_t> PathAt;

  uint32_t internPath(const std::vector<uint8_t> &Path) {
    auto [It, New] =
        PathAt.emplace(Path, static_cast<uint32_t>(P.PathPool.size()));
    if (New)
      P.PathPool.insert(P.PathPool.end(), Path.begin(), Path.end());
    return It->second;
  }

  bool samePath(const TreeGroup &G, const std::vector<uint8_t> &Path) {
    if (G.PathLen != Path.size())
      return false;
    return std::equal(Path.begin(), Path.end(),
                      P.PathPool.begin() + G.PathBegin);
  }

  void insert(const Shape &S, uint32_t Entry) {
    uint32_t Node = 0;
    for (const Constraint &C : S) {
      // Find or create the test group for C.Path at Node.
      size_t GIdx = P.Tree[Node].Groups.size();
      for (size_t I = 0; I < P.Tree[Node].Groups.size(); ++I)
        if (samePath(P.Tree[Node].Groups[I], C.Path)) {
          GIdx = I;
          break;
        }
      if (GIdx == P.Tree[Node].Groups.size()) {
        TreeGroup G;
        G.PathBegin = internPath(C.Path);
        G.PathLen = static_cast<uint32_t>(C.Path.size());
        G.Id = P.NumGroups++; // canonical id: creation order
        P.Tree[Node].Groups.push_back(std::move(G));
      }
      // Find or create the edge for C.Value.
      uint32_t Next = kNoPC;
      {
        TreeGroup &G = P.Tree[Node].Groups[GIdx];
        auto &Edges = C.IsArity ? G.ArityEdges : G.OpEdges;
        for (const TreeEdge &E : Edges)
          if (E.Key == C.Value) {
            Next = E.Child;
            break;
          }
      }
      if (Next == kNoPC) {
        Next = static_cast<uint32_t>(P.Tree.size());
        P.Tree.emplace_back();
        TreeGroup &G = P.Tree[Node].Groups[GIdx];
        (C.IsArity ? G.ArityEdges : G.OpEdges)
            .push_back(TreeEdge{C.Value, Next, P.NumEdges++});
      }
      Node = Next;
    }
    auto &Acc = P.Tree[Node].Accept;
    if (Acc.empty() || Acc.back() != Entry)
      Acc.push_back(Entry);
  }
};

} // namespace

void PlanBuilder::buildTree(Program &P, const rewrite::RuleSet &Rules,
                            const term::Signature &Sig) {
  (void)Sig;
  P.Tree.clear();
  P.PathPool.clear();
  P.Wildcards.clear();
  P.WildcardBase.clear();
  P.NumGroups = 0;
  P.NumEdges = 0;
  P.ProfileApplied = false;
  P.Tree.emplace_back(); // root
  TreeInserter Ins(P);

  const auto &Entries = Rules.entries();
  assert(Entries.size() == P.Entries.size() &&
         "tree built against a different rule set");
  for (size_t EI = 0; EI < Entries.size(); ++EI) {
    const Pattern *Pat = Entries[EI].Pattern->Pat;
    bool Overflow = false;
    std::vector<uint8_t> Path;
    std::vector<Shape> Shapes = shapesFor(Pat, Path, Overflow);
    if (Overflow) {
      // Degrade to the root-operator prefilter rather than giving up.
      Shapes.clear();
      if (auto Roots = rootOpsOf(Pat))
        for (uint32_t Op : *Roots)
          Shapes.push_back(Shape{Constraint{{}, false, Op}});
      else
        Shapes.push_back(Shape{});
    }
    for (Shape &S : Shapes) {
      std::sort(S.begin(), S.end());
      if (S.size() > kMaxConstraintsPerShape)
        S.resize(kMaxConstraintsPerShape); // ancestors sort first: still sound
    }
    std::sort(Shapes.begin(), Shapes.end());
    Shapes.erase(std::unique(Shapes.begin(), Shapes.end()), Shapes.end());

    bool Wildcard =
        std::any_of(Shapes.begin(), Shapes.end(),
                    [](const Shape &S) { return S.empty(); });
    if (Wildcard) {
      P.Wildcards.push_back(static_cast<uint32_t>(EI));
      P.Entries[EI].NumShapes = 0;
      continue;
    }
    P.Entries[EI].NumShapes = static_cast<uint32_t>(Shapes.size());
    for (const Shape &S : Shapes)
      Ins.insert(S, static_cast<uint32_t>(EI));
  }

  // Hoist the wildcard loop out of the traversal: precompute the base mask
  // once, so candidates() starts from a bulk copy.
  P.WildcardBase.assign(P.Entries.size(), 0);
  for (uint32_t W : P.Wildcards)
    P.WildcardBase[W] = 1;

  P.CanonicalSig = signature(P);
}

/// Strips the `$<n>` suffixes Symbol::fresh appends (possibly stacked:
/// "lit$7" freshened again by pattern instantiation becomes "lit$7$12").
/// The counter behind them is process-global, so the raw spellings differ
/// on every recompile of the very same rule set; the fingerprint must be
/// α-invariant over generated names or no profile would ever rebind.
static std::string_view stripFreshSuffixes(std::string_view S) {
  for (;;) {
    size_t Dollar = S.rfind('$');
    if (Dollar == std::string_view::npos || Dollar + 1 == S.size())
      return S;
    for (size_t I = Dollar + 1; I != S.size(); ++I)
      if (S[I] < '0' || S[I] > '9')
        return S;
    S = S.substr(0, Dollar);
  }
}

uint64_t PlanBuilder::signature(const Program &P) {
  Fnv1aHash H;
  H.u32(static_cast<uint32_t>(P.Entries.size()));
  for (const EntryCode &E : P.Entries) {
    H.str(stripFreshSuffixes(E.PatternName.str()));
    H.u32(E.RootPC);
    H.u32(E.FirstPC);
    H.u32(E.NumInstrs);
    H.u32(E.NumShapes);
  }
  H.u32(static_cast<uint32_t>(P.Syms.size()));
  for (Symbol S : P.Syms)
    H.str(stripFreshSuffixes(S.str()));
  H.u32(static_cast<uint32_t>(P.Guards.size()));
  H.u32(static_cast<uint32_t>(P.Mus.size()));
  H.u32(static_cast<uint32_t>(P.Code.size()));
  for (const Instr &I : P.Code) {
    H.byte(static_cast<uint8_t>(I.Op));
    // MatchApp's A is an operator id — signature-relative, excluded exactly
    // like the .pypmplan stream comparison exempts it, so the fingerprint
    // survives operator renumbering between processes.
    H.u32(I.Op == OpCode::MatchApp ? 0 : I.A);
    H.u32(I.B);
    H.u32(I.C);
    H.u32(I.FirstChild);
    H.u32(I.NumChildren);
  }
  H.u32(static_cast<uint32_t>(P.ChildPCs.size()));
  for (uint32_t C : P.ChildPCs)
    H.u32(C);
  // Tree aggregate shape only: edge keys are operator ids (excluded for
  // the same reason) and list orderings are exactly what applyProfile
  // permutes, so the signature hashes the permutation-invariant skeleton.
  H.u32(P.NumGroups);
  H.u32(P.NumEdges);
  std::vector<uint32_t> SortedWild(P.Wildcards);
  std::sort(SortedWild.begin(), SortedWild.end());
  H.u32(static_cast<uint32_t>(SortedWild.size()));
  for (uint32_t W : SortedWild)
    H.u32(W);
  return H.value();
}

bool PlanBuilder::applyProfile(Program &P, const Profile &Prof) {
  if (!Prof.boundTo(P))
    return false;
  for (TreeNode &N : P.Tree) {
    // Hot entries first in the accept list (pure layout: the mask is
    // positional, so emission order cannot reach the attempt loop).
    std::stable_sort(N.Accept.begin(), N.Accept.end(),
                     [&](uint32_t A, uint32_t B) {
                       if (Prof.EntryMatches[A] != Prof.EntryMatches[B])
                         return Prof.EntryMatches[A] > Prof.EntryMatches[B];
                       return Prof.EntryAttempts[A] > Prof.EntryAttempts[B];
                     });
    auto EdgeHeat = [&](const TreeEdge &E) { return Prof.EdgeHits[E.Id]; };
    for (TreeGroup &G : N.Groups) {
      std::stable_sort(G.OpEdges.begin(), G.OpEdges.end(),
                       [&](const TreeEdge &A, const TreeEdge &B) {
                         return EdgeHeat(A) > EdgeHeat(B);
                       });
      std::stable_sort(G.ArityEdges.begin(), G.ArityEdges.end(),
                       [&](const TreeEdge &A, const TreeEdge &B) {
                         return EdgeHeat(A) > EdgeHeat(B);
                       });
    }
    // Groups that extend the traversal most often first. (Every group of a
    // visited node is scanned either way; this is cache layout, not a
    // skip.)
    auto GroupHeat = [&](const TreeGroup &G) {
      uint64_t Heat = 0;
      for (const TreeEdge &E : G.OpEdges)
        Heat += EdgeHeat(E);
      for (const TreeEdge &E : G.ArityEdges)
        Heat += EdgeHeat(E);
      return Heat;
    };
    std::stable_sort(N.Groups.begin(), N.Groups.end(),
                     [&](const TreeGroup &A, const TreeGroup &B) {
                       return GroupHeat(A) > GroupHeat(B);
                     });
  }
  // Never-hit wildcard entries sink to the cold tail. The *set* is
  // untouched (WildcardBase is identical), so the mask cannot change.
  std::stable_partition(P.Wildcards.begin(), P.Wildcards.end(),
                        [&](uint32_t W) { return Prof.EntryMatches[W] > 0; });
  P.ProfileApplied = true;
  return true;
}

Program PlanBuilder::compile(const rewrite::RuleSet &Rules,
                             const term::Signature &Sig) {
  Program P;
  Compiler C(P);
  for (const rewrite::RewriteEntry &E : Rules.entries()) {
    EntryCode EC;
    EC.PatternName = E.Pattern->Name;
    EC.FirstPC = static_cast<uint32_t>(P.Code.size());
    EC.RootPC = C.compilePat(E.Pattern->Pat);
    EC.NumInstrs = static_cast<uint32_t>(P.Code.size()) - EC.FirstPC;
    P.Entries.push_back(EC);
  }
  buildTree(P, Rules, Sig);
  return P;
}

} // namespace pypm::plan
