//===- plan/aot/Lowering.cpp - Shared lowering pass for AOT backends ------===//

#include "plan/aot/Lowering.h"

using namespace pypm;
using namespace pypm::plan;
using namespace pypm::plan::aot;

LoweredProgram aot::lower(const Program &P) {
  LoweredProgram L;
  L.Prog = &P;
  L.Code.reserve(P.Code.size());
  for (const Instr &I : P.Code) {
    LInstr LI;
    LI.Op = I.Op;
    switch (I.Op) {
    case OpCode::MatchVar:
      LI.Sym = P.Syms[I.A];
      break;
    case OpCode::MatchApp:
      LI.OpId = term::OpId(I.A);
      LI.Children = P.ChildPCs.data() + I.FirstChild;
      LI.NumChildren = I.NumChildren;
      break;
    case OpCode::MatchFunVarApp:
      LI.Sym = P.Syms[I.A];
      LI.Children = P.ChildPCs.data() + I.FirstChild;
      LI.NumChildren = I.NumChildren;
      break;
    case OpCode::MatchAlt:
      LI.A = I.A;
      LI.B = I.B;
      break;
    case OpCode::MatchGuarded:
      LI.A = I.A;
      LI.Guard = P.Guards[I.B];
      break;
    case OpCode::MatchExists:
    case OpCode::MatchExistsFun:
      LI.A = I.A;
      LI.Sym = P.Syms[I.B];
      break;
    case OpCode::MatchConstraint:
      LI.A = I.A;
      LI.B = I.B;
      LI.Sym = P.Syms[I.C];
      break;
    case OpCode::MatchMu:
      LI.Mu = P.Mus[I.A];
      break;
    case OpCode::Fail:
      break;
    }
    L.Code.push_back(LI);
  }
  L.Roots.reserve(P.Entries.size());
  for (const EntryCode &E : P.Entries)
    L.Roots.push_back(E.RootPC);
  return L;
}

namespace {
struct Fnv {
  uint64_t H = 1469598103934665603ull;
  void mix(uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (I * 8)) & 0xffu;
      H *= 1099511628211ull;
    }
  }
};
} // namespace

uint64_t aot::abiFingerprint(const Program &P) {
  Fnv F;
  F.mix(0x5059504d414f5431ull); // "PYPMAOT1": versions the hash layout
  F.mix(P.Entries.size());
  for (const EntryCode &E : P.Entries) {
    F.mix(E.RootPC);
    F.mix(E.FirstPC);
    F.mix(E.NumInstrs);
  }
  F.mix(P.Code.size());
  for (const Instr &I : P.Code) {
    F.mix(static_cast<uint64_t>(I.Op));
    F.mix(I.A);
    F.mix(I.B);
    F.mix(I.C);
    F.mix(I.FirstChild);
    F.mix(I.NumChildren);
  }
  F.mix(P.ChildPCs.size());
  for (uint32_t PC : P.ChildPCs)
    F.mix(PC);
  F.mix(P.Syms.size());
  F.mix(P.Guards.size());
  F.mix(P.Mus.size());
  return F.H;
}
