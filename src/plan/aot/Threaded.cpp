//===- plan/aot/Threaded.cpp - Threaded-code backend for MatchPlans -------===//
//
// runThreadedLoop mirrors plan/ExecState.h's runExecLoop with the compiled
// Match step inlined as computed-goto label bodies; threadedStep is the
// same step as a plain switch for toolchains without the &&label
// extension. When editing, keep plan/Interpreter.cpp open next to this
// file — label bodies, switch cases, and the loop head must stay
// step-for-step identical to it (tests/test_aot.cpp pins them to the
// interpreter, which is pinned to FastMatcher and the reference Machine).
//
//===----------------------------------------------------------------------===//

#include "plan/aot/Threaded.h"

using namespace pypm;
using namespace pypm::plan;
using namespace pypm::plan::aot;
using namespace pypm::match;

// Computed-goto dispatch needs the GNU &&label extension; MSVC and friends
// run the identical stream through threadedStep's switch. Either way the
// executed step sequence is the interpreter's.
#if defined(__GNUC__) || defined(__clang__)
#define PYPM_AOT_COMPUTED_GOTO 1
#else
#define PYPM_AOT_COMPUTED_GOTO 0
#endif

namespace {

/// Executes one compiled Match step at \p I against \p T — the portable
/// switch spelling, used by the non-GNU dispatch loop. The computed-goto
/// loop below carries the same bodies as label blocks; keep both in sync
/// (and in sync with Interpreter::stepExec).
MachineStatus threadedStep(ExecState *St, const LInstr *I, term::TermRef T) {
  switch (I->Op) {
  case OpCode::MatchVar:
    if (St->bindVar(I->Sym, T))
      return MachineStatus::Running;
    return St->backtrack();
  case OpCode::MatchApp:
    if (I->OpId != T->op())
      return St->backtrack();
    for (uint32_t C = I->NumChildren; C-- > 0;)
      St->Cont = St->consMatch(I->Children[C], T->child(C), St->Cont);
    return MachineStatus::Running;
  case OpCode::MatchFunVarApp:
    if (I->NumChildren != T->arity())
      return St->backtrack();
    if (!St->bindFunVar(I->Sym, T->op()))
      return St->backtrack();
    for (uint32_t C = I->NumChildren; C-- > 0;)
      St->Cont = St->consMatch(I->Children[C], T->child(C), St->Cont);
    return MachineStatus::Running;
  case OpCode::MatchAlt:
    St->pushChoice(St->consMatch(I->B, T, St->Cont));
    St->Cont = St->consMatch(I->A, T, St->Cont);
    return MachineStatus::Running;
  case OpCode::MatchGuarded: {
    ExecState::Cell G;
    G.Kind = ActionKind::Guard;
    G.Guard = I->Guard;
    G.Next = St->Cont;
    St->Cont = St->consMatch(I->A, T, St->push(std::move(G)));
    return MachineStatus::Running;
  }
  case OpCode::MatchExists: {
    ExecState::Cell C;
    C.Kind = ActionKind::CheckName;
    C.Var = I->Sym;
    C.Next = St->Cont;
    St->Cont = St->consMatch(I->A, T, St->push(std::move(C)));
    return MachineStatus::Running;
  }
  case OpCode::MatchExistsFun: {
    ExecState::Cell C;
    C.Kind = ActionKind::CheckFunName;
    C.Var = I->Sym;
    C.Next = St->Cont;
    St->Cont = St->consMatch(I->A, T, St->push(std::move(C)));
    return MachineStatus::Running;
  }
  case OpCode::MatchConstraint: {
    ExecState::Cell C;
    C.Kind = ActionKind::MatchConstr;
    C.PC = I->B;
    C.Var = I->Sym;
    C.Next = St->Cont;
    St->Cont = St->consMatch(I->A, T, St->push(std::move(C)));
    return MachineStatus::Running;
  }
  case OpCode::MatchMu:
    return St->unfoldMu(I->Mu, T);
  case OpCode::Fail:
    return St->backtrack();
  }
  assert(false && "unknown opcode");
  return MachineStatus::Failure;
}

#if PYPM_AOT_COMPUTED_GOTO

/// The direct-threaded execution loop: runExecLoop's cell dispatch with
/// the compiled Match step inlined as label bodies, all in one function.
/// One function is the point — a step body ending in Running jumps
/// straight to the next instruction's label (through the identical step
/// accounting the loop head does), with no call boundary anywhere; GCC
/// and Clang cannot inline a function whose labels have their address
/// taken, so a call-per-step shape would pay a full frame per
/// instruction visited.
///
/// With \p LabelsOut non-null, publishes the per-opcode label table and
/// executes nothing — decode-time priming; label addresses are only
/// expressible inside the function that declares the labels.
MachineStatus runThreadedLoop(ExecState *StP, const Machine::Options *OptsP,
                              const pattern::GuardEnv *EnvP,
                              const LInstr *Code,
                              const void *const **LabelsOut) {
  // Indexed by OpCode's numeric value (opcodes start at 1).
  static const void *const Labels[kNumOpCodes + 1] = {
      nullptr,            &&L_MatchVar,       &&L_MatchApp,
      &&L_MatchFunVarApp, &&L_MatchAlt,       &&L_MatchGuarded,
      &&L_MatchExists,    &&L_MatchExistsFun, &&L_MatchConstraint,
      &&L_MatchMu,        &&L_Fail};
  if (LabelsOut) {
    *LabelsOut = Labels;
    return MachineStatus::Running;
  }
  ExecState &St = *StP;
  const Machine::Options &Opts = *OptsP;
  const pattern::GuardEnv &Env = *EnvP;
  MachineStatus S = MachineStatus::Running;
  const LInstr *I = nullptr;
  term::TermRef T = nullptr;

  while (St.Status == MachineStatus::Running) {
    // Loop head — verbatim runExecLoop: step count, fuel, the 1024-step
    // budget poll, then the empty-continuation success check.
    if (++St.Stats.Steps > Opts.MaxSteps) {
      St.Status = MachineStatus::OutOfFuel;
      break;
    }
    if (Opts.EngineBudget && (St.Stats.Steps & 1023u) == 0 &&
        Opts.EngineBudget->interrupted()) {
      St.Status = MachineStatus::OutOfFuel;
      break;
    }
    if (!St.Cont) {
      St.Status = MachineStatus::Success;
      break;
    }
    {
    DispatchCell:
      const ExecState::Cell &A = *St.Cont;
      const ExecState::Cell *Rest = St.Cont->Next;
      switch (A.Kind) {
      case ActionKind::Match:
        St.Cont = Rest;
        if (A.PC == kNoPC) {
          // Dynamic μ-escape: matches over the pattern AST, shared with
          // every backend.
          S = St.stepMatchDyn(A.Pat, A.T);
          if (S != MachineStatus::Running)
            St.Status = S;
          break;
        }
        I = Code + A.PC;
        T = A.T;
        goto *const_cast<void *>(I->Label);
      case ActionKind::Guard: {
        ++St.Stats.GuardEvals;
        pattern::GuardEval E = A.Guard->evalBool(Env);
        if (!E.ok())
          ++St.Stats.GuardStuck;
        if (E.truthy())
          St.Cont = Rest;
        else
          St.backtrack();
        break;
      }
      case ActionKind::CheckName:
        if (St.Theta.count(A.Var))
          St.Cont = Rest;
        else
          St.backtrack();
        break;
      case ActionKind::CheckFunName:
        if (St.Phi.count(A.Var))
          St.Cont = Rest;
        else
          St.backtrack();
        break;
      case ActionKind::MatchConstr: {
        auto It = St.Theta.find(A.Var);
        if (It == St.Theta.end()) {
          St.backtrack();
          break;
        }
        if (A.PC != kNoPC)
          St.Cont = St.consMatch(A.PC, It->second, Rest);
        else
          St.Cont = St.consMatchDyn(A.Pat, It->second, Rest);
        break;
      }
      }
      continue;
    }

    // Step bodies — keep identical to threadedStep's switch cases.
  L_MatchVar:
    S = St.bindVar(I->Sym, T) ? MachineStatus::Running : St.backtrack();
    goto AfterStep;

  L_MatchApp:
    if (I->OpId != T->op()) {
      S = St.backtrack();
      goto AfterStep;
    }
    for (uint32_t C = I->NumChildren; C-- > 0;)
      St.Cont = St.consMatch(I->Children[C], T->child(C), St.Cont);
    S = MachineStatus::Running;
    goto AfterStep;

  L_MatchFunVarApp:
    if (I->NumChildren != T->arity() || !St.bindFunVar(I->Sym, T->op())) {
      S = St.backtrack();
      goto AfterStep;
    }
    for (uint32_t C = I->NumChildren; C-- > 0;)
      St.Cont = St.consMatch(I->Children[C], T->child(C), St.Cont);
    S = MachineStatus::Running;
    goto AfterStep;

  L_MatchAlt:
    St.pushChoice(St.consMatch(I->B, T, St.Cont));
    St.Cont = St.consMatch(I->A, T, St.Cont);
    S = MachineStatus::Running;
    goto AfterStep;

  L_MatchGuarded: {
    ExecState::Cell G;
    G.Kind = ActionKind::Guard;
    G.Guard = I->Guard;
    G.Next = St.Cont;
    St.Cont = St.consMatch(I->A, T, St.push(std::move(G)));
    S = MachineStatus::Running;
    goto AfterStep;
  }

  L_MatchExists: {
    ExecState::Cell C;
    C.Kind = ActionKind::CheckName;
    C.Var = I->Sym;
    C.Next = St.Cont;
    St.Cont = St.consMatch(I->A, T, St.push(std::move(C)));
    S = MachineStatus::Running;
    goto AfterStep;
  }

  L_MatchExistsFun: {
    ExecState::Cell C;
    C.Kind = ActionKind::CheckFunName;
    C.Var = I->Sym;
    C.Next = St.Cont;
    St.Cont = St.consMatch(I->A, T, St.push(std::move(C)));
    S = MachineStatus::Running;
    goto AfterStep;
  }

  L_MatchConstraint: {
    ExecState::Cell C;
    C.Kind = ActionKind::MatchConstr;
    C.PC = I->B;
    C.Var = I->Sym;
    C.Next = St.Cont;
    St.Cont = St.consMatch(I->A, T, St.push(std::move(C)));
    S = MachineStatus::Running;
    goto AfterStep;
  }

  L_MatchMu:
    S = St.unfoldMu(I->Mu, T);
    goto AfterStep;

  L_Fail:
    S = St.backtrack();
    goto AfterStep;

  AfterStep:
    if (S != MachineStatus::Running) {
      St.Status = S;
      continue;
    }
    // Direct threading: the common next cell is another compiled Match;
    // dispatch it here, label to label. The accounting is the loop
    // head's, verbatim — a fast-path step is charged exactly like a
    // loop-head step, so Steps (and therefore fuel and budget behavior)
    // stays bit-identical to the interpreter's.
    if (++St.Stats.Steps > Opts.MaxSteps) {
      St.Status = MachineStatus::OutOfFuel;
      continue;
    }
    if (Opts.EngineBudget && (St.Stats.Steps & 1023u) == 0 &&
        Opts.EngineBudget->interrupted()) {
      St.Status = MachineStatus::OutOfFuel;
      continue;
    }
    if (!St.Cont) {
      St.Status = MachineStatus::Success;
      continue;
    }
    if (St.Cont->Kind == ActionKind::Match && St.Cont->PC != kNoPC) {
      I = Code + St.Cont->PC;
      T = St.Cont->T;
      St.Cont = St.Cont->Next;
      goto *const_cast<void *>(I->Label);
    }
    // Non-Match cell (guard, existence check, constraint): this step is
    // already counted, so enter the dispatch switch directly.
    goto DispatchCell;
  }
  return St.Status;
}

#endif // PYPM_AOT_COMPUTED_GOTO

} // namespace

ThreadedProgram ThreadedProgram::decode(const Program &P) {
  ThreadedProgram TP;
  TP.L = lower(P);
#if PYPM_AOT_COMPUTED_GOTO
  const void *const *Labels = nullptr;
  runThreadedLoop(nullptr, nullptr, nullptr, nullptr, &Labels);
  for (LInstr &I : TP.L.Code)
    I.Label = Labels[static_cast<uint8_t>(I.Op)];
#endif
  return TP;
}

MachineStatus ThreadedExec::matchEntry(size_t EntryIdx, term::TermRef T) {
  assert(EntryIdx < TP.L.Roots.size() && "entry index out of range");
  St.resetAttempt(Opts.MaxMuUnfolds);
  St.Cont = St.consMatch(TP.L.Roots[EntryIdx], T, nullptr);
  if (Prof)
    Prof->noteAttempt(EntryIdx);
  MachineStatus S = runLoop();
  if (Prof && S == MachineStatus::Success)
    Prof->noteMatch(EntryIdx);
  return S;
}

MachineStatus ThreadedExec::resume() {
  if (St.Status != MachineStatus::Success)
    return St.Status;
  St.Status = MachineStatus::Running;
  if (St.backtrack() != MachineStatus::Running)
    return St.Status;
  return runLoop();
}

MachineStatus ThreadedExec::runLoop() {
  ExecGuardEnv Env(St, Arena);
  const LInstr *Code = TP.L.Code.data();
#if PYPM_AOT_COMPUTED_GOTO
  return runThreadedLoop(&St, &Opts, &Env, Code, nullptr);
#else
  return runExecLoop(St, Opts, Env, [this, Code](uint32_t PC, term::TermRef T) {
    return threadedStep(&St, Code + PC, T);
  });
#endif
}

MatchResult ThreadedExec::matchOne(size_t EntryIdx, term::TermRef T) {
  MachineStatus S = matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = witness();
  R.Stats = stats();
  return R;
}

MatchResult ThreadedExec::run(const ThreadedProgram &TP, size_t EntryIdx,
                              term::TermRef T, const term::TermArena &Arena,
                              Machine::Options Opts, Profile *Prof) {
  ThreadedExec M(TP, Arena, Opts);
  M.setProfile(Prof);
  MachineStatus S = M.matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = M.witness();
  R.Stats = M.stats();
  return R;
}
