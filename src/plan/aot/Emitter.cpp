//===- plan/aot/Emitter.cpp - C++ source emitter for MatchPlans -----------===//
//
// Each emitted case mirrors Interpreter::stepExec for its instruction;
// when editing, keep plan/Interpreter.cpp open next to this file. The
// emitted-tier differential suite (tests/test_aot.cpp) pins the built
// artifact to the interpreter step for step.
//
//===----------------------------------------------------------------------===//

#include "plan/aot/Emitter.h"

#include "plan/aot/AotAbi.h"
#include "plan/aot/Lowering.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace pypm;
using namespace pypm::plan;
using namespace pypm::plan::aot;

namespace {

/// Byte-identical copy of AotAbi.h's declarations (tests/test_aot.cpp
/// pins the correspondence): emitted artifacts build standalone.
constexpr const char *kAbiDecls = R"(#include <stdint.h>
#define PYPM_AOT_MAGIC 0x31544f414d505950ull
#define PYPM_AOT_ABI_VERSION 1u
#define PYPM_AOT_RUNNING 0
#define PYPM_AOT_FAILURE 2
#define PYPM_AOT_ACT_GUARD 1u
#define PYPM_AOT_ACT_CHECK_NAME 2u
#define PYPM_AOT_ACT_CHECK_FUNNAME 3u
#define PYPM_AOT_ACT_MATCH_CONSTR 4u
typedef struct PypmAotOpsV1 {
  uint32_t (*term_op)(const void *T);
  uint32_t (*term_arity)(const void *T);
  const void *(*term_child)(const void *T, uint32_t I);
  int (*bind_var)(void *Ctx, uint32_t SymIdx, const void *T);
  int (*bind_funvar)(void *Ctx, uint32_t SymIdx, uint32_t Op);
  int (*backtrack)(void *Ctx);
  void (*push_match)(void *Ctx, uint32_t PC, const void *T);
  void (*push_choice)(void *Ctx, uint32_t AltPC, const void *T);
  void (*push_action)(void *Ctx, uint32_t Kind, uint32_t Aux,
                      uint32_t SymIdx);
  int (*mu_unfold)(void *Ctx, uint32_t MuIdx, const void *T);
} PypmAotOpsV1;
typedef struct PypmAotPlanV1 {
  uint64_t Magic;
  uint32_t AbiVersion;
  uint32_t NumEntries;
  uint32_t NumInstrs;
  uint32_t Reserved;
  uint64_t CanonicalSig;
  uint64_t TableFingerprint;
  int (*Step)(void *Ctx, const struct PypmAotOpsV1 *Ops, uint32_t PC,
              const void *T);
} PypmAotPlanV1;
)";

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

/// One emitted switch case for every opcode except App/FunVarApp (those
/// inline their child-PC pool slices and are printed by emitCpp directly).
void emitCase(std::ostringstream &O, uint32_t PC, const Instr &I) {
  O << "  case " << PC << "u: {\n";
  switch (I.Op) {
  case OpCode::MatchVar:
    O << "    if (!Ops->bind_var(Ctx, " << I.A << "u, T))\n"
      << "      return Ops->backtrack(Ctx);\n"
      << "    return PYPM_AOT_RUNNING;\n";
    break;
  case OpCode::MatchApp:
  case OpCode::MatchFunVarApp:
    assert(false && "App/FunVarApp are emitted inline by emitCpp");
    break;
  case OpCode::MatchAlt:
    O << "    Ops->push_choice(Ctx, " << I.B << "u, T);\n"
      << "    Ops->push_match(Ctx, " << I.A << "u, T);\n"
      << "    return PYPM_AOT_RUNNING;\n";
    break;
  case OpCode::MatchGuarded:
    O << "    Ops->push_action(Ctx, PYPM_AOT_ACT_GUARD, " << I.B
      << "u, 0u);\n"
      << "    Ops->push_match(Ctx, " << I.A << "u, T);\n"
      << "    return PYPM_AOT_RUNNING;\n";
    break;
  case OpCode::MatchExists:
    O << "    Ops->push_action(Ctx, PYPM_AOT_ACT_CHECK_NAME, 0u, " << I.B
      << "u);\n"
      << "    Ops->push_match(Ctx, " << I.A << "u, T);\n"
      << "    return PYPM_AOT_RUNNING;\n";
    break;
  case OpCode::MatchExistsFun:
    O << "    Ops->push_action(Ctx, PYPM_AOT_ACT_CHECK_FUNNAME, 0u, " << I.B
      << "u);\n"
      << "    Ops->push_match(Ctx, " << I.A << "u, T);\n"
      << "    return PYPM_AOT_RUNNING;\n";
    break;
  case OpCode::MatchConstraint:
    O << "    Ops->push_action(Ctx, PYPM_AOT_ACT_MATCH_CONSTR, " << I.B
      << "u, " << I.C << "u);\n"
      << "    Ops->push_match(Ctx, " << I.A << "u, T);\n"
      << "    return PYPM_AOT_RUNNING;\n";
    break;
  case OpCode::MatchMu:
    O << "    return Ops->mu_unfold(Ctx, " << I.A << "u, T);\n";
    break;
  case OpCode::Fail:
    O << "    return Ops->backtrack(Ctx);\n";
    break;
  }
  O << "  }\n";
}

} // namespace

std::string AotEmitter::markerFor(const Program &P) {
  return std::string(kAotMarkerPrefix) + hex16(P.CanonicalSig) + ":" +
         hex16(abiFingerprint(P)) + ";";
}

std::string AotEmitter::emitCpp(const Program &P) {
  std::ostringstream O;
  O << "// Emitted by pypm AotEmitter — generated code, do not edit.\n"
    << "// plan canonical-sig " << hex16(P.CanonicalSig)
    << ", table-fingerprint " << hex16(abiFingerprint(P)) << ".\n"
    << kAbiDecls << "\n"
    << "static int pypm_step(void *Ctx, const PypmAotOpsV1 *Ops, uint32_t "
       "PC,\n"
    << "                     const void *T) {\n"
    << "  switch (PC) {\n";
  for (uint32_t PC = 0; PC != P.Code.size(); ++PC) {
    const Instr &I = P.Code[PC];
    if (I.Op != OpCode::MatchApp && I.Op != OpCode::MatchFunVarApp) {
      emitCase(O, PC, I);
      continue;
    }
    // App/FunVarApp inline their child PCs from the pool.
    O << "  case " << PC << "u: {\n";
    if (I.Op == OpCode::MatchApp)
      O << "    if (Ops->term_op(T) != " << I.A << "u)\n"
        << "      return Ops->backtrack(Ctx);\n";
    else
      O << "    if (Ops->term_arity(T) != " << I.NumChildren << "u)\n"
        << "      return Ops->backtrack(Ctx);\n"
        << "    if (!Ops->bind_funvar(Ctx, " << I.A
        << "u, Ops->term_op(T)))\n"
        << "      return Ops->backtrack(Ctx);\n";
    for (uint32_t C = I.NumChildren; C-- > 0;)
      O << "    Ops->push_match(Ctx, " << P.ChildPCs[I.FirstChild + C]
        << "u, Ops->term_child(T, " << C << "u));\n";
    O << "    return PYPM_AOT_RUNNING;\n  }\n";
  }
  O << "  default:\n    return PYPM_AOT_FAILURE;\n  }\n}\n\n"
    << "extern \"C\" const char pypm_aot_marker[] = \"" << markerFor(P)
    << "\";\n\n"
    << "extern \"C\" const PypmAotPlanV1 *pypm_aot_plan_v1(void) {\n"
    << "  static const PypmAotPlanV1 Plan = {\n"
    << "      PYPM_AOT_MAGIC,\n"
    << "      PYPM_AOT_ABI_VERSION,\n"
    << "      " << P.Entries.size() << "u,\n"
    << "      " << P.Code.size() << "u,\n"
    << "      0u,\n"
    << "      0x" << hex16(P.CanonicalSig) << "ull,\n"
    << "      0x" << hex16(abiFingerprint(P)) << "ull,\n"
    << "      &pypm_step,\n"
    << "  };\n"
    << "  // The marker must survive into the binary: referencing it here\n"
    << "  // keeps even the most aggressive linker from dropping it.\n"
    << "  return pypm_aot_marker[0] ? &Plan : (const PypmAotPlanV1 *)0;\n"
    << "}\n";
  return O.str();
}

std::string AotEmitter::findCompiler() {
  auto Executable = [](const std::string &Path) {
    return ::access(Path.c_str(), X_OK) == 0;
  };
  auto OnPath = [&](const std::string &Name) -> std::string {
    const char *PathEnv = std::getenv("PATH");
    if (!PathEnv)
      return "";
    std::string Dirs(PathEnv);
    size_t Pos = 0;
    while (Pos <= Dirs.size()) {
      size_t Colon = Dirs.find(':', Pos);
      std::string Dir = Dirs.substr(
          Pos, Colon == std::string::npos ? std::string::npos : Colon - Pos);
      if (!Dir.empty()) {
        std::string Cand = Dir + "/" + Name;
        if (Executable(Cand))
          return Cand;
      }
      if (Colon == std::string::npos)
        break;
      Pos = Colon + 1;
    }
    return "";
  };
  if (const char *E = std::getenv("PYPM_CXX"); E && *E) {
    std::string Override(E);
    if (Override.find('/') != std::string::npos)
      return Override; // explicit path: used as-is, fails loudly if broken
    std::string Found = OnPath(Override);
    return Found.empty() ? Override : Found;
  }
  for (const char *Name : {"c++", "g++", "clang++"})
    if (std::string Found = OnPath(Name); !Found.empty())
      return Found;
  return "";
}

bool AotEmitter::buildSharedObject(const Program &P, const std::string &SoPath,
                                   std::string &Err) {
  std::string CXX = findCompiler();
  if (CXX.empty()) {
    Err = "no C++ compiler found (set $PYPM_CXX or install c++/g++/clang++ "
          "on $PATH); emitted-plan tier unavailable";
    return false;
  }
  // The PlanCache write discipline: everything lands under temp names in
  // the destination directory, then one atomic rename installs the .so.
  std::string Src = SoPath + ".tmp.cpp";
  std::string Tmp = SoPath + ".tmp.so";
  std::string Log = SoPath + ".tmp.log";
  {
    std::ofstream OS(Src, std::ios::binary | std::ios::trunc);
    if (!OS) {
      Err = "cannot write emitted source to " + Src;
      return false;
    }
    OS << AotEmitter::emitCpp(P);
  }
  std::string Cmd = "'" + CXX + "' -O2 -fPIC -shared -o '" + Tmp + "' '" +
                    Src + "' 2>'" + Log + "'";
  int RC = std::system(Cmd.c_str());
  if (RC != 0) {
    std::ifstream LS(Log);
    std::ostringstream LO;
    LO << LS.rdbuf();
    Err = "emitted-plan compile failed (" + CXX + "): " + LO.str();
    std::remove(Src.c_str());
    std::remove(Tmp.c_str());
    std::remove(Log.c_str());
    return false;
  }
  std::remove(Src.c_str());
  std::remove(Log.c_str());
  if (std::rename(Tmp.c_str(), SoPath.c_str()) != 0) {
    Err = "cannot install emitted plan at " + SoPath;
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
