//===- plan/aot/Emitter.h - C++ source emitter for MatchPlans ----*- C++ -*-===//
///
/// \file
/// The cacheable-artifact AOT tier. AotEmitter prints a plan::Program as
/// one self-contained C++ translation unit: a step function whose switch
/// is over *program counters* (not opcodes) — each case is the
/// straight-line code of that one instruction with every operand baked as
/// an immediate (operator-id compares, child PCs, side-table indices),
/// so the per-step operand decode of the interpreter disappears entirely.
/// All state effects go through the PypmAotOpsV1 host-callback table into
/// the shared plan::ExecState (see AotAbi.h for why that makes semantic
/// drift impossible by construction).
///
/// When a C++ compiler is present (findCompiler: $PYPM_CXX, then
/// c++/g++/clang++ on $PATH), buildSharedObject compiles the emitted
/// source into a .so, written crash-safe (temp file + atomic rename, the
/// PlanCache discipline) so a killed build never leaves a torn artifact
/// under the final name. No compiler is a clean, reported failure — the
/// caller falls back to the threaded tier or the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_AOT_EMITTER_H
#define PYPM_PLAN_AOT_EMITTER_H

#include "plan/Program.h"

#include <string>

namespace pypm::plan::aot {

class AotEmitter {
public:
  /// The complete emitted translation unit for \p P (ABI declarations
  /// embedded, so it builds with no include path back into this repo).
  static std::string emitCpp(const Program &P);

  /// The pre-dlopen validation marker emitted into (and scanned out of)
  /// every artifact: "PYPM-AOT-MARK-v1:<canonical>:<table>;" with both
  /// fingerprints as 16-digit lower-case hex.
  static std::string markerFor(const Program &P);

  /// Best C++ compiler this process can invoke, or "" (with the search
  /// order documented above). $PYPM_CXX wins even if broken — an explicit
  /// override that does not resolve is returned as-is so the build fails
  /// loudly rather than silently using a different compiler.
  static std::string findCompiler();

  /// Emits \p P and builds it into \p SoPath (temp + rename). False with
  /// a human-readable reason in \p Err (no compiler, compile failure with
  /// the compiler's stderr, filesystem errors).
  static bool buildSharedObject(const Program &P, const std::string &SoPath,
                                std::string &Err);
};

} // namespace pypm::plan::aot

#endif // PYPM_PLAN_AOT_EMITTER_H
