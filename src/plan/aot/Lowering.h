//===- plan/aot/Lowering.h - Shared lowering pass for AOT backends -*- C++ -*-===//
///
/// \file
/// The one lowering pass both AOT tiers share. A plan::Program is a
/// serialization-friendly instruction table: operands are *indices* into
/// side tables (Syms, Guards, Mus, ChildPCs) that every interpreted step
/// re-resolves. Lowering decodes that table once into a direct-threaded
/// instruction stream whose operands are already the values the step
/// needs — the interned Symbol, the operator id, the GuardExpr*/MuPattern*
/// side-table pointers, and a direct pointer into the child-PC pool — plus
/// a per-instruction dispatch label filled in by the threaded backend
/// (Threaded.cpp) on GCC/Clang.
///
/// Lowering is invariant-preserving by construction: it renames no PCs,
/// reorders nothing, and folds nothing — LInstr[PC] executes exactly what
/// Instr[PC] describes, so the executed step sequence (and with it every
/// MachineStats counter, witness, and resume() stream) is untouched. The
/// differential suite in tests/test_aot.cpp pins this.
///
/// abiFingerprint() is the second, *operator-id-dependent* plan
/// fingerprint. plan::PlanBuilder::signature (Program::CanonicalSig) is
/// deliberately op-id-independent so profiles survive signature
/// renumbering; an emitted .so, by contrast, bakes concrete operator ids
/// and side-table indices into compiled compares, so it is only valid for
/// a plan whose instruction stream matches *bit for bit*. The fingerprint
/// is FNV-1a over the entry table, the instruction stream, and the
/// child-PC pool; the loader (Library.cpp) rejects any artifact whose
/// recorded fingerprint disagrees with the plan in hand — a stale or
/// foreign .so degrades to a warning and the interpreter, never UB.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_AOT_LOWERING_H
#define PYPM_PLAN_AOT_LOWERING_H

#include "plan/Program.h"

namespace pypm::plan::aot {

/// One pre-decoded instruction. Only the fields the opcode's step reads
/// are populated (see lower()); everything else stays value-initialized.
struct LInstr {
  OpCode Op = OpCode::Fail;
  /// Threaded-dispatch target (&&label inside the backend's step
  /// function); null until ThreadedProgram::decode primes the stream.
  const void *Label = nullptr;
  Symbol Sym;                                  ///< resolved Syms[] operand
  term::OpId OpId;                             ///< MatchApp operator
  const pattern::GuardExpr *Guard = nullptr;   ///< MatchGuarded
  const pattern::MuPattern *Mu = nullptr;      ///< MatchMu
  const uint32_t *Children = nullptr;          ///< &ChildPCs[FirstChild]
  uint32_t NumChildren = 0;
  uint32_t A = 0; ///< sub/left PC (Alt/Guarded/Exists*/Constraint)
  uint32_t B = 0; ///< right PC (Alt) / constraint PC (Constraint)
};

/// The decoded stream plus the entry points. Borrows the Program (the
/// child-PC pool, guards, and μ nodes stay owned there); keep it — and the
/// library that owns its pattern arena — alive while this is in use.
struct LoweredProgram {
  const Program *Prog = nullptr;
  std::vector<LInstr> Code;
  std::vector<uint32_t> Roots; ///< per-entry RootPC
};

/// Decodes \p P. PCs are preserved: Code[PC] lowers P.Code[PC].
LoweredProgram lower(const Program &P);

/// Operator-id-dependent FNV-1a fingerprint over the concrete instruction
/// stream (entries, code, child-PC pool). See the file comment for why
/// this is distinct from Program::CanonicalSig.
uint64_t abiFingerprint(const Program &P);

} // namespace pypm::plan::aot

#endif // PYPM_PLAN_AOT_LOWERING_H
