//===- plan/aot/Threaded.h - Threaded-code backend for MatchPlans -*- C++ -*-===//
///
/// \file
/// The toolchain-free AOT tier: plan::Program pre-decoded into a
/// direct-threaded instruction stream (aot::lower), every instruction
/// carrying its resolved operands and — on GCC/Clang — the address of its
/// dispatch label, so the per-step opcode switch of the interpreter
/// becomes a single indirect goto straight off the instruction
/// (`goto *I->Label`). Elsewhere the same stream runs through a switch;
/// behavior is identical, only dispatch cost differs.
///
/// Guard escapes stay direct calls into the shared ExecState (guard
/// evaluation, θ/φ checks, and the dynamic μ escape all live in
/// plan::runExecLoop / ExecState::stepMatchDyn — shared with the
/// interpreter, so they cannot drift). Alt arms and sub-pattern edges are
/// inlined as pre-resolved branch-target operands.
///
/// A ThreadedProgram is immutable after decode() and shared read-only by
/// any number of ThreadedExec instances (the engine decodes once per run
/// and hands it to every discovery worker). A ThreadedExec persists its
/// ExecState across attempts exactly like a batch-mode Interpreter —
/// the reuse-parity argument is Interpreter::matchOne's, pinned per
/// attempt by tests/test_aot.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_AOT_THREADED_H
#define PYPM_PLAN_AOT_THREADED_H

#include "plan/ExecState.h"
#include "plan/Profile.h"
#include "plan/aot/Lowering.h"

namespace pypm::plan::aot {

/// A lowered program primed for threaded dispatch (labels resolved on
/// GCC/Clang; the stream alone elsewhere).
struct ThreadedProgram {
  LoweredProgram L;

  /// Lowers \p P and fills every instruction's dispatch label. The label
  /// addresses are function-local to the backend's step function and
  /// stable for the process lifetime, so priming once at decode time keeps
  /// executor construction O(1) — which is what lets the engine spin up a
  /// fresh executor per worker without paying a per-attempt decode.
  static ThreadedProgram decode(const Program &P);

  const Program &prog() const { return *L.Prog; }
};

/// Drop-in executor with plan::Interpreter's exact surface; see
/// Interpreter.h for the semantics of each member (matchOne reuse parity,
/// committed-order profiling, resume streams — all identical here).
class ThreadedExec {
public:
  ThreadedExec(const ThreadedProgram &TP, const term::TermArena &Arena,
               match::Machine::Options Opts = match::Machine::Options())
      : TP(TP), Arena(Arena), Opts(Opts) {}

  void setProfile(Profile *P) { Prof = P; }

  match::MachineStatus matchEntry(size_t EntryIdx, term::TermRef T);
  match::MatchResult matchOne(size_t EntryIdx, term::TermRef T);
  match::MachineStatus resume();

  match::MachineStatus status() const { return St.Status; }
  match::Witness witness() const { return St.witness(); }
  const match::MachineStats &stats() const { return St.Stats; }

  static match::MatchResult
  run(const ThreadedProgram &TP, size_t EntryIdx, term::TermRef T,
      const term::TermArena &Arena,
      match::Machine::Options Opts = match::Machine::Options(),
      Profile *Prof = nullptr);

private:
  match::MachineStatus runLoop();

  const ThreadedProgram &TP;
  const term::TermArena &Arena;
  match::Machine::Options Opts;
  Profile *Prof = nullptr;
  ExecState St;
};

} // namespace pypm::plan::aot

#endif // PYPM_PLAN_AOT_THREADED_H
