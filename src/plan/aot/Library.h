//===- plan/aot/Library.h - dlopen loader + executor for emitted plans -*- C++ -*-===//
///
/// \file
/// PlanLibrary loads one emitted plan .so through the validation ladder
/// documented in AotAbi.h: raw-file marker scan (before any code from the
/// artifact can run), dlopen/dlsym, then the ABI struct's magic, version,
/// fingerprints, and table sizes against the plan in hand. Every rung has
/// a distinct machine-readable status (AotLoadStatus, rendered as aot.*
/// diagnostic codes) so callers — pypmc's exit-code ladder, the engine's
/// fallback warning, the daemon's cache tier — can tell "no artifact"
/// from "stale artifact" from "not an artifact at all". A failed load is
/// always a clean rejection plus interpreter fallback, never UB: no
/// validation, no execution.
///
/// SoExec is the executor over a loaded library — plan::Interpreter's
/// exact surface, running the shared plan::ExecState loop with the .so's
/// step function as the compiled-Match step. The host-callback table it
/// passes down (see Library.cpp) resolves every side-table index and
/// performs every state mutation in host code, so statuses, witnesses,
/// stats, and budget polling are the interpreter's by construction.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_AOT_LIBRARY_H
#define PYPM_PLAN_AOT_LIBRARY_H

#include "plan/ExecState.h"
#include "plan/Profile.h"
#include "plan/aot/AotAbi.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace pypm::plan::aot {

/// One status per validation rung, in ladder order.
enum class AotLoadStatus : uint8_t {
  Ok = 0,
  Unreadable,      ///< the file cannot be read at all
  NoMarker,        ///< readable, but no AOT marker — not an emitted plan
  MarkerMismatch,  ///< marker fingerprints disagree with the plan in hand
  NotLoadable,     ///< marker fine, but dlopen rejected the image
  NoEntrySymbol,   ///< loaded, but pypm_aot_plan_v1 is missing/null
  BadMagic,        ///< entry struct magic is wrong
  AbiVersionMismatch,
  PlanMismatch,    ///< struct fingerprints/sizes disagree with the plan
};

/// Machine-readable diagnostic code ("aot.unreadable", "aot.stale", ...).
const char *aotLoadStatusCode(AotLoadStatus S);
/// Human-readable one-liner for the same status.
const char *aotLoadStatusMessage(AotLoadStatus S);

class PlanLibrary {
public:
  /// Loads and validates \p SoPath against \p P. On any rung failure:
  /// nullptr, \p St set, and (when \p Diags is non-null) one warning
  /// carrying the aot.* code — the caller decides whether fallback is a
  /// warning (engine) or an exit code (pypmc --aot-lib).
  static std::unique_ptr<PlanLibrary> load(const std::string &SoPath,
                                           const Program &P,
                                           DiagnosticEngine *Diags,
                                           AotLoadStatus &St);

  ~PlanLibrary();
  PlanLibrary(const PlanLibrary &) = delete;
  PlanLibrary &operator=(const PlanLibrary &) = delete;

  const PypmAotPlanV1 *plan() const { return Plan; }
  const std::string &path() const { return Path; }

  /// True iff this library's baked fingerprints match \p P — the engine
  /// re-checks before every run, because the plan it compiled may not be
  /// the plan the caller validated against.
  bool matches(const Program &P) const;

private:
  PlanLibrary() = default;
  void *Handle = nullptr;
  const PypmAotPlanV1 *Plan = nullptr;
  std::string Path;
};

/// Executor over a validated PlanLibrary; plan::Interpreter's surface.
class SoExec {
public:
  SoExec(const Program &Prog, const PlanLibrary &Lib,
         const term::TermArena &Arena,
         match::Machine::Options Opts = match::Machine::Options())
      : Prog(Prog), Lib(Lib), Arena(Arena), Opts(Opts) {}

  void setProfile(Profile *P) { Prof = P; }

  match::MachineStatus matchEntry(size_t EntryIdx, term::TermRef T);
  match::MatchResult matchOne(size_t EntryIdx, term::TermRef T);
  match::MachineStatus resume();

  match::MachineStatus status() const { return St.Status; }
  match::Witness witness() const { return St.witness(); }
  const match::MachineStats &stats() const { return St.Stats; }

  static match::MatchResult
  run(const Program &Prog, const PlanLibrary &Lib, size_t EntryIdx,
      term::TermRef T, const term::TermArena &Arena,
      match::Machine::Options Opts = match::Machine::Options(),
      Profile *Prof = nullptr);

private:
  match::MachineStatus runLoop();

  const Program &Prog;
  const PlanLibrary &Lib;
  const term::TermArena &Arena;
  match::Machine::Options Opts;
  Profile *Prof = nullptr;
  ExecState St;
};

} // namespace pypm::plan::aot

#endif // PYPM_PLAN_AOT_LIBRARY_H
