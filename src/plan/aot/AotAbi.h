//===- plan/aot/AotAbi.h - Versioned ABI for emitted plan .so files -*- C++ -*-===//
///
/// \file
/// The contract between the engine and a dlopen'ed emitted plan. The .so
/// exports exactly one symbol, pypm_aot_plan_v1(), returning a static
/// PypmAotPlanV1 — magic, ABI version, both plan fingerprints, table
/// sizes, and the step function. Everything else about the artifact is
/// private.
///
/// Design rule: the emitted code owns *control flow only*. Every state
/// mutation — binding, backtracking, continuation cells, μ unfolds, the
/// step/fuel accounting — happens host-side through the PypmAotOpsV1
/// callback table into the same plan::ExecState the interpreter runs on.
/// That makes witnesses, stats, budget charging, and quarantine/fault
/// interaction host code *by construction*: an emitted plan cannot drift
/// from the interpreter on anything but speed. The cost is a call per
/// operation, which is why the always-available threaded tier (same
/// process, no ABI) is the default fast path and the emitted tier is the
/// cacheable-artifact path (see DESIGN.md §"AOT plan execution").
///
/// Versioning and validation ladder (Library.cpp enforces, in order):
///  1. a marker string ("PYPM-AOT-MARK-v1:<canonical>:<table>;") scanned
///     from the raw file bytes BEFORE dlopen — truncated, corrupted, or
///     foreign artifacts are rejected without executing any of their code;
///  2. dlopen + dlsym of pypm_aot_plan_v1 (the dynamic linker rejects
///     torn ELF images cleanly);
///  3. Magic, AbiVersion, and both fingerprints in the returned struct,
///     re-checked against the plan in hand plus NumEntries/NumInstrs.
/// Any failure is a machine-readable diagnostic (aot.* codes) and an
/// interpreter fallback, never UB.
///
/// The emitter (Emitter.cpp) embeds a byte-identical copy of these
/// declarations into every generated translation unit so artifacts build
/// standalone, with no include path back into this repo;
/// tests/test_aot.cpp pins the two copies against each other.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PLAN_AOT_AOTABI_H
#define PYPM_PLAN_AOT_AOTABI_H

#include <stdint.h>

extern "C" {

/// Little-endian "PYPMAOT1".
#define PYPM_AOT_MAGIC 0x31544f414d505950ull
#define PYPM_AOT_ABI_VERSION 1u

/// Machine statuses as the ABI sees them (== match::MachineStatus).
#define PYPM_AOT_RUNNING 0
#define PYPM_AOT_SUCCESS 1
#define PYPM_AOT_FAILURE 2
#define PYPM_AOT_OUT_OF_FUEL 3

/// Continuation-action kinds for push_action (== match::ActionKind).
#define PYPM_AOT_ACT_GUARD 1u
#define PYPM_AOT_ACT_CHECK_NAME 2u
#define PYPM_AOT_ACT_CHECK_FUNNAME 3u
#define PYPM_AOT_ACT_MATCH_CONSTR 4u

/// Host callbacks. Ctx is the host's execution context (an ExecState plus
/// the plan's side tables); T is an opaque term handle. Sym/guard/μ
/// operands cross the boundary as *indices* into the plan's side tables —
/// the host resolves them, so the artifact stays valid across processes
/// (interned Symbol values and arena pointers never leave the host).
typedef struct PypmAotOpsV1 {
  uint32_t (*term_op)(const void *T);
  uint32_t (*term_arity)(const void *T);
  const void *(*term_child)(const void *T, uint32_t I);
  /// θ-bind Syms[SymIdx] := T; 0 on clash (caller then backtracks).
  int (*bind_var)(void *Ctx, uint32_t SymIdx, const void *T);
  /// φ-bind Syms[SymIdx] := Op; 0 on clash.
  int (*bind_funvar)(void *Ctx, uint32_t SymIdx, uint32_t Op);
  /// Pops a choice point (unwinding trails); returns the machine status.
  int (*backtrack)(void *Ctx);
  /// Cont = consMatch(PC, T, Cont).
  void (*push_match)(void *Ctx, uint32_t PC, const void *T);
  /// Pushes a choice point whose resume continuation is
  /// consMatch(AltPC, T, Cont).
  void (*push_choice)(void *Ctx, uint32_t AltPC, const void *T);
  /// Cont = an action cell (Kind as PYPM_AOT_ACT_*) chained on the old
  /// Cont. Aux is the guard index (GUARD) or constraint PC (MATCH_CONSTR);
  /// SymIdx names the θ/φ symbol for the checks and the constraint.
  void (*push_action)(void *Ctx, uint32_t Kind, uint32_t Aux,
                      uint32_t SymIdx);
  /// The whole MatchMu step host-side (fuel, counters, memoized unfold,
  /// dynamic continuation); returns the machine status.
  int (*mu_unfold)(void *Ctx, uint32_t MuIdx, const void *T);
} PypmAotOpsV1;

typedef struct PypmAotPlanV1 {
  uint64_t Magic;      ///< PYPM_AOT_MAGIC
  uint32_t AbiVersion; ///< PYPM_AOT_ABI_VERSION
  uint32_t NumEntries;
  uint32_t NumInstrs;
  uint32_t Reserved;
  uint64_t CanonicalSig;      ///< plan::PlanBuilder::signature (op-id free)
  uint64_t TableFingerprint;  ///< plan::aot::abiFingerprint (op-id bound)
  /// Executes the compiled Match step at PC against T. Returns
  /// PYPM_AOT_RUNNING or the terminal the host callbacks produced.
  int (*Step)(void *Ctx, const struct PypmAotOpsV1 *Ops, uint32_t PC,
              const void *T);
} PypmAotPlanV1;

/// The one exported entry point of an emitted plan .so.
typedef const PypmAotPlanV1 *(*PypmAotPlanEntryFn)(void);

} // extern "C"

namespace pypm::plan::aot {
/// Entry symbol name and the pre-dlopen marker prefix (see Library.cpp).
inline constexpr const char *kAotEntrySymbol = "pypm_aot_plan_v1";
inline constexpr const char *kAotMarkerPrefix = "PYPM-AOT-MARK-v1:";
} // namespace pypm::plan::aot

#endif // PYPM_PLAN_AOT_AOTABI_H
