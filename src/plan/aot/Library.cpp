//===- plan/aot/Library.cpp - dlopen loader + executor for emitted plans --===//

#include "plan/aot/Library.h"

#include "plan/aot/Emitter.h"
#include "plan/aot/Lowering.h"

#include <cstring>
#include <dlfcn.h>
#include <fstream>
#include <sstream>

using namespace pypm;
using namespace pypm::plan;
using namespace pypm::plan::aot;
using namespace pypm::match;

const char *aot::aotLoadStatusCode(AotLoadStatus S) {
  switch (S) {
  case AotLoadStatus::Ok:
    return "aot.ok";
  case AotLoadStatus::Unreadable:
    return "aot.unreadable";
  case AotLoadStatus::NoMarker:
    return "aot.not-an-artifact";
  case AotLoadStatus::MarkerMismatch:
    return "aot.stale";
  case AotLoadStatus::NotLoadable:
    return "aot.not-loadable";
  case AotLoadStatus::NoEntrySymbol:
    return "aot.no-entry-symbol";
  case AotLoadStatus::BadMagic:
    return "aot.bad-magic";
  case AotLoadStatus::AbiVersionMismatch:
    return "aot.abi-version";
  case AotLoadStatus::PlanMismatch:
    return "aot.plan-mismatch";
  }
  return "aot.unknown";
}

const char *aot::aotLoadStatusMessage(AotLoadStatus S) {
  switch (S) {
  case AotLoadStatus::Ok:
    return "emitted plan loaded";
  case AotLoadStatus::Unreadable:
    return "emitted plan file is unreadable";
  case AotLoadStatus::NoMarker:
    return "file carries no AOT marker (truncated, corrupted, or not an "
           "emitted plan)";
  case AotLoadStatus::MarkerMismatch:
    return "emitted plan was built from a different match plan (stale or "
           "foreign artifact)";
  case AotLoadStatus::NotLoadable:
    return "dynamic linker rejected the emitted plan image";
  case AotLoadStatus::NoEntrySymbol:
    return "emitted plan exports no pypm_aot_plan_v1 entry";
  case AotLoadStatus::BadMagic:
    return "emitted plan entry struct has a wrong magic";
  case AotLoadStatus::AbiVersionMismatch:
    return "emitted plan was built against a different AOT ABI version";
  case AotLoadStatus::PlanMismatch:
    return "emitted plan entry struct disagrees with the match plan "
           "(fingerprint or table-size mismatch)";
  }
  return "emitted plan load failed";
}

PlanLibrary::~PlanLibrary() {
  if (Handle)
    ::dlclose(Handle);
}

bool PlanLibrary::matches(const Program &P) const {
  return Plan && Plan->CanonicalSig == P.CanonicalSig &&
         Plan->TableFingerprint == abiFingerprint(P) &&
         Plan->NumEntries == P.Entries.size() &&
         Plan->NumInstrs == P.Code.size();
}

std::unique_ptr<PlanLibrary> PlanLibrary::load(const std::string &SoPath,
                                               const Program &P,
                                               DiagnosticEngine *Diags,
                                               AotLoadStatus &St) {
  auto Fail = [&](AotLoadStatus S,
                  const std::string &Extra = "") -> std::unique_ptr<PlanLibrary> {
    St = S;
    if (Diags)
      Diags->warning({}, aotLoadStatusCode(S),
                     std::string(aotLoadStatusMessage(S)) + ": " + SoPath +
                         (Extra.empty() ? "" : " (" + Extra + ")"));
    return nullptr;
  };

  // Rung 1: the raw-bytes marker scan. Decides stale/foreign/corrupt
  // BEFORE the dynamic linker maps any code from the artifact.
  std::string Bytes;
  {
    std::ifstream IS(SoPath, std::ios::binary);
    if (!IS)
      return Fail(AotLoadStatus::Unreadable);
    std::ostringstream OS;
    OS << IS.rdbuf();
    Bytes = OS.str();
  }
  size_t Mark = Bytes.find(kAotMarkerPrefix);
  if (Mark == std::string::npos)
    return Fail(AotLoadStatus::NoMarker);
  std::string Expect = AotEmitter::markerFor(P);
  if (Bytes.compare(Mark, Expect.size(), Expect) != 0)
    return Fail(AotLoadStatus::MarkerMismatch);

  // Rung 2: map it. RTLD_LOCAL keeps the artifact's symbols out of the
  // global namespace; RTLD_NOW surfaces a torn image here, not mid-match.
  void *H = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H) {
    const char *E = ::dlerror();
    return Fail(AotLoadStatus::NotLoadable, E ? E : "dlopen failed");
  }
  auto Lib = std::unique_ptr<PlanLibrary>(new PlanLibrary());
  Lib->Handle = H;
  Lib->Path = SoPath;

  auto Entry = reinterpret_cast<PypmAotPlanEntryFn>(
      ::dlsym(H, kAotEntrySymbol));
  const PypmAotPlanV1 *Plan = Entry ? Entry() : nullptr;
  if (!Plan)
    return Fail(AotLoadStatus::NoEntrySymbol);

  // Rung 3: the versioned struct, re-checked against the plan in hand
  // (the marker already matched, but the marker is data — the struct is
  // what the step function was actually compiled against).
  if (Plan->Magic != PYPM_AOT_MAGIC)
    return Fail(AotLoadStatus::BadMagic);
  if (Plan->AbiVersion != PYPM_AOT_ABI_VERSION)
    return Fail(AotLoadStatus::AbiVersionMismatch);
  Lib->Plan = Plan;
  if (!Lib->matches(P))
    return Fail(AotLoadStatus::PlanMismatch);
  if (!Plan->Step)
    return Fail(AotLoadStatus::NoEntrySymbol);

  St = AotLoadStatus::Ok;
  return Lib;
}

//===----------------------------------------------------------------------===//
// SoExec: the host side of the ABI.
//===----------------------------------------------------------------------===//

namespace {

/// What the callbacks see as Ctx: the shared executor state plus the side
/// tables the artifact's baked indices resolve against.
struct HostCtx {
  ExecState *St;
  const Program *Prog;
};

uint32_t cbTermOp(const void *T) {
  return static_cast<term::TermRef>(T)->op().index();
}
uint32_t cbTermArity(const void *T) {
  return static_cast<term::TermRef>(T)->arity();
}
const void *cbTermChild(const void *T, uint32_t I) {
  return static_cast<term::TermRef>(T)->child(I);
}
int cbBindVar(void *Ctx, uint32_t SymIdx, const void *T) {
  auto *C = static_cast<HostCtx *>(Ctx);
  return C->St->bindVar(C->Prog->Syms[SymIdx],
                        static_cast<term::TermRef>(T))
             ? 1
             : 0;
}
int cbBindFunVar(void *Ctx, uint32_t SymIdx, uint32_t Op) {
  auto *C = static_cast<HostCtx *>(Ctx);
  return C->St->bindFunVar(C->Prog->Syms[SymIdx], term::OpId(Op)) ? 1 : 0;
}
int cbBacktrack(void *Ctx) {
  return static_cast<int>(static_cast<HostCtx *>(Ctx)->St->backtrack());
}
void cbPushMatch(void *Ctx, uint32_t PC, const void *T) {
  ExecState *St = static_cast<HostCtx *>(Ctx)->St;
  St->Cont = St->consMatch(PC, static_cast<term::TermRef>(T), St->Cont);
}
void cbPushChoice(void *Ctx, uint32_t AltPC, const void *T) {
  ExecState *St = static_cast<HostCtx *>(Ctx)->St;
  St->pushChoice(St->consMatch(AltPC, static_cast<term::TermRef>(T),
                               St->Cont));
}
void cbPushAction(void *Ctx, uint32_t Kind, uint32_t Aux, uint32_t SymIdx) {
  auto *C = static_cast<HostCtx *>(Ctx);
  ExecState::Cell Cell;
  Cell.Kind = static_cast<ActionKind>(Kind);
  switch (Cell.Kind) {
  case ActionKind::Guard:
    Cell.Guard = C->Prog->Guards[Aux];
    break;
  case ActionKind::CheckName:
  case ActionKind::CheckFunName:
    Cell.Var = C->Prog->Syms[SymIdx];
    break;
  case ActionKind::MatchConstr:
    Cell.PC = Aux;
    Cell.Var = C->Prog->Syms[SymIdx];
    break;
  case ActionKind::Match:
    assert(false && "push_action cannot push a Match cell");
    break;
  }
  // The action chains on the old continuation and becomes the new one; a
  // push_match that follows then threads its cell in front of it —
  // exactly Interpreter::stepExec's push(action) + consMatch composition.
  Cell.Next = C->St->Cont;
  C->St->Cont = C->St->push(std::move(Cell));
}
int cbMuUnfold(void *Ctx, uint32_t MuIdx, const void *T) {
  auto *C = static_cast<HostCtx *>(Ctx);
  return static_cast<int>(C->St->unfoldMu(C->Prog->Mus[MuIdx],
                                          static_cast<term::TermRef>(T)));
}

constexpr PypmAotOpsV1 kHostOps = {
    &cbTermOp,    &cbTermArity, &cbTermChild,  &cbBindVar,  &cbBindFunVar,
    &cbBacktrack, &cbPushMatch, &cbPushChoice, &cbPushAction, &cbMuUnfold,
};

} // namespace

MachineStatus SoExec::matchEntry(size_t EntryIdx, term::TermRef T) {
  assert(EntryIdx < Prog.Entries.size() && "entry index out of range");
  St.resetAttempt(Opts.MaxMuUnfolds);
  St.Cont = St.consMatch(Prog.Entries[EntryIdx].RootPC, T, nullptr);
  if (Prof)
    Prof->noteAttempt(EntryIdx);
  MachineStatus S = runLoop();
  if (Prof && S == MachineStatus::Success)
    Prof->noteMatch(EntryIdx);
  return S;
}

MachineStatus SoExec::resume() {
  if (St.Status != MachineStatus::Success)
    return St.Status;
  St.Status = MachineStatus::Running;
  if (St.backtrack() != MachineStatus::Running)
    return St.Status;
  return runLoop();
}

MachineStatus SoExec::runLoop() {
  ExecGuardEnv Env(St, Arena);
  HostCtx Ctx{&St, &Prog};
  auto *Step = Lib.plan()->Step;
  return runExecLoop(St, Opts, Env,
                     [&Ctx, Step](uint32_t PC, term::TermRef T) {
                       return static_cast<MachineStatus>(
                           Step(&Ctx, &kHostOps, PC, T));
                     });
}

MatchResult SoExec::matchOne(size_t EntryIdx, term::TermRef T) {
  MachineStatus S = matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = witness();
  R.Stats = stats();
  return R;
}

MatchResult SoExec::run(const Program &Prog, const PlanLibrary &Lib,
                        size_t EntryIdx, term::TermRef T,
                        const term::TermArena &Arena, Machine::Options Opts,
                        Profile *Prof) {
  SoExec M(Prog, Lib, Arena, Opts);
  M.setProfile(Prof);
  MachineStatus S = M.matchEntry(EntryIdx, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = M.witness();
  R.Stats = M.stats();
  return R;
}
