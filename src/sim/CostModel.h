//===- sim/CostModel.h - Analytic GPU kernel cost model ---------*- C++ -*-===//
///
/// \file
/// The hardware substitute for the paper's A6000 testbed (§4.1): a
/// deterministic, analytic execution-time estimator for computation
/// graphs. Each live node is one kernel launch; its time is a roofline
/// estimate
///
///   t = max(flops / (peak · efficiency), bytes / bandwidth) + launch
///
/// where flops and bytes are derived from the inferred tensor shapes.
/// Fused kernels (FMHA, GEMM epilogs, cuBLAS calls, partition products)
/// are priced with (a) one launch instead of several, (b) no memory
/// traffic for the fused-away intermediates, and (c) the hand-tuned
/// efficiency of vendor kernels — precisely the effects the paper's
/// rewrites exploit, so relative speedups keep their shape even though
/// absolute times are synthetic.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SIM_COSTMODEL_H
#define PYPM_SIM_COSTMODEL_H

#include "graph/Graph.h"

#include <string>

namespace pypm::sim {

struct DeviceSpec {
  std::string Name = "generic-gpu";
  double PeakFlops = 1e12;      ///< FLOP/s at efficiency 1.0
  double MemBandwidth = 1e11;   ///< bytes/s
  double LaunchOverhead = 5e-6; ///< seconds per kernel launch

  /// Parameters shaped like an RTX A6000 (38.7 TFLOP/s fp32, 768 GB/s).
  static DeviceSpec a6000Like() {
    DeviceSpec D;
    D.Name = "a6000-like";
    D.PeakFlops = 38.7e12;
    D.MemBandwidth = 768e9;
    D.LaunchOverhead = 5e-6;
    return D;
  }
};

struct KernelCost {
  double Flops = 0;
  double Bytes = 0;
  double Seconds = 0;
  unsigned Launches = 0; ///< 0 for leaves (no kernel)
};

struct GraphCost {
  double Seconds = 0;
  double Flops = 0;
  double Bytes = 0;
  unsigned Kernels = 0;
};

class CostModel {
public:
  explicit CostModel(DeviceSpec Device = DeviceSpec::a6000Like())
      : Device(std::move(Device)) {}

  const DeviceSpec &device() const { return Device; }

  /// Cost of the kernel implementing one node. Leaves cost nothing.
  KernelCost nodeCost(const graph::Graph &G, graph::NodeId N) const;

  /// Whether nodeCost prices operator \p OpName (of class \p OpClass) with
  /// a dedicated branch, as opposed to the generic untuned-elementwise
  /// fallback. The rule-set linter flags RHS operators priced generically.
  static bool hasSpecializedCost(std::string_view OpName,
                                 std::string_view OpClass);

  /// Whole-graph inference time: sequential kernel launches over the live
  /// nodes (the per-iteration wall-clock the paper's benchmark scripts
  /// report).
  GraphCost graphCost(const graph::Graph &G) const;

  /// Sum of nodeCost over \p Nodes. Works on dead nodes too (a swept
  /// node's operator, attributes, and inferred types stay allocated), so
  /// a commit's freed cost can be priced after the sweep.
  GraphCost nodesCost(const graph::Graph &G,
                      std::span<const graph::NodeId> Nodes) const;

  /// Incremental delta-costing for one committed rewrite: the Seconds a
  /// commit adds (its appended live replacement nodes \p Added) minus the
  /// Seconds it frees (the previously-live nodes it swept, \p Removed).
  /// Because graphCost is a sum of per-node costs over the live set,
  ///   graphCost(after) == graphCost(before) + commitDelta(...)
  /// exactly, and deltas of disjoint commits are additive — the property
  /// the beam search relies on to price a partial commit sequence without
  /// re-pricing the whole graph per step
  /// (tests/test_costmodel.cpp pins both properties).
  double commitDelta(const graph::Graph &G,
                     std::span<const graph::NodeId> Added,
                     std::span<const graph::NodeId> Removed) const;

  /// Cost of a region as if its nodes ran as ONE fused kernel: summed
  /// flops, boundary-only bytes, one launch. Used to price directed-
  /// graph-partitioning products (§4.2).
  KernelCost fusedRegionCost(const graph::Graph &G,
                             std::span<const graph::NodeId> Interior,
                             std::span<const graph::NodeId> Frontier,
                             graph::NodeId Root) const;

private:
  DeviceSpec Device;
  double roofline(double Flops, double Bytes, double Efficiency) const;
};

} // namespace pypm::sim

#endif // PYPM_SIM_COSTMODEL_H
