//===- sim/CostModel.cpp - Analytic GPU kernel cost model ---------------------===//

#include "sim/CostModel.h"

#include <algorithm>

using namespace pypm;
using namespace pypm::sim;
using graph::Graph;
using graph::NodeId;
using graph::TensorType;

namespace {

double elems(const TensorType &T) {
  return static_cast<double>(T.numElements());
}
double bytes(const TensorType &T) { return static_cast<double>(T.bytes()); }

/// 2·∏(batch)·m·n·k for the matmul producing Out from A (·) B.
double matmulFlops(const TensorType &A, const TensorType &Out) {
  if (A.rank() < 2 || Out.rank() < 2)
    return 0;
  double K = static_cast<double>(A.Dims.back());
  return 2.0 * elems(Out) * K;
}

} // namespace

double CostModel::roofline(double Flops, double Bytes,
                           double Efficiency) const {
  double Compute = Flops / (Device.PeakFlops * Efficiency);
  double Memory = Bytes / Device.MemBandwidth;
  return std::max(Compute, Memory) + Device.LaunchOverhead;
}

bool CostModel::hasSpecializedCost(std::string_view OpName,
                                   std::string_view OpClass) {
  // Mirrors the branch chain in nodeCost below; keep the two in sync.
  static constexpr std::string_view Known[] = {
      "MatMul",  "GemmEpilog", "GemmBiasEpilog", "cublasMM_xyT_f32",
      "cublasMM_xyT_i8", "FMHA", "FMHAMasked",   "Conv2D",
      "ConvEpilog", "Softmax",  "LayerNorm",     "BatchNorm",
      "Trans",   "Gelu",       "Erf",            "MaxPool",
      "AvgPool", "GlobalAvgPool", "Flatten",     "Reshape"};
  for (std::string_view K : Known)
    if (OpName == K)
      return true;
  return OpClass == "fused";
}

KernelCost CostModel::nodeCost(const Graph &G, NodeId N) const {
  KernelCost C;
  if (G.inputs(N).empty())
    return C; // leaves (Input/Weight/Const) are resident, no kernel

  const term::Signature &Sig = G.signature();
  std::string_view Op = Sig.name(G.op(N)).str();
  Symbol Class = Sig.opClass(G.op(N));
  std::string_view Cls = Class.isValid() ? Class.str() : std::string_view();

  const TensorType &Out = G.type(N);
  double InBytes = 0;
  for (NodeId In : G.inputs(N))
    InBytes += bytes(G.type(In));
  double OutBytes = bytes(Out);

  C.Launches = 1;
  double Efficiency = 0.5; // default: an untuned kernel

  if (Op == "MatMul") {
    C.Flops = matmulFlops(G.type(G.inputs(N)[0]), Out);
    C.Bytes = InBytes + OutBytes;
    Efficiency = 0.70; // a good but generic GEMM
  } else if (Op == "GemmEpilog" || Op == "GemmBiasEpilog") {
    C.Flops = matmulFlops(G.type(G.inputs(N)[0]), Out) + 8 * elems(Out);
    C.Bytes = InBytes + OutBytes; // epilog runs in registers
    Efficiency = 0.80;            // hand-tuned library kernel
  } else if (Op == "cublasMM_xyT_f32" || Op == "cublasMM_xyT_i8") {
    C.Flops = matmulFlops(G.type(G.inputs(N)[0]), Out);
    C.Bytes = InBytes + OutBytes; // transpose fused into the GEMM
    Efficiency = 0.88;            // cuBLAS-grade tuning
  } else if (Op == "FMHA" || Op == "FMHAMasked") {
    // softmax(α·QKᵀ)·V in one kernel: both matmuls' flops, softmax work,
    // but only Q, K, V, O touch memory (no S×S intermediates) — the
    // FlashAttention-style effect.
    const TensorType &Q = G.type(G.inputs(N)[0]);
    const TensorType &K = G.type(G.inputs(N)[1]);
    const TensorType &V = G.type(G.inputs(N)[2]);
    double S = Q.rank() >= 2 ? static_cast<double>(Q.Dims[Q.rank() - 2]) : 1;
    double Dk = Q.rank() >= 1 ? static_cast<double>(Q.Dims.back()) : 1;
    double Dv = V.rank() >= 1 ? static_cast<double>(V.Dims.back()) : 1;
    double Batch = elems(Q) / std::max(1.0, S * Dk);
    C.Flops = Batch * (2 * S * S * Dk + 2 * S * S * Dv + 8 * S * S);
    C.Bytes = bytes(Q) + bytes(K) + bytes(V) + OutBytes;
    if (G.inputs(N).size() == 4) // masked variant streams the mask too
      C.Bytes += bytes(G.type(G.inputs(N)[3]));
    Efficiency = 0.75;
  } else if (Op == "Conv2D") {
    // flops = 2 · out elems · C·kh·kw
    const TensorType &W = G.type(G.inputs(N)[1]);
    double Kernel = W.rank() == 4
                        ? static_cast<double>(W.Dims[1] * W.Dims[2] * W.Dims[3])
                        : 9;
    C.Flops = 2.0 * elems(Out) * Kernel;
    C.Bytes = InBytes + OutBytes;
    Efficiency = 0.60;
  } else if (Op == "ConvEpilog") {
    const TensorType &W = G.type(G.inputs(N)[1]);
    double Kernel = W.rank() == 4
                        ? static_cast<double>(W.Dims[1] * W.Dims[2] * W.Dims[3])
                        : 9;
    C.Flops = 2.0 * elems(Out) * Kernel + 8 * elems(Out);
    C.Bytes = InBytes + OutBytes;
    Efficiency = 0.72;
  } else if (Op == "Softmax") {
    C.Flops = 8 * elems(Out);
    C.Bytes = 2 * (InBytes + OutBytes); // two passes (max/sum, normalize)
  } else if (Op == "LayerNorm" || Op == "BatchNorm") {
    C.Flops = 10 * elems(Out);
    C.Bytes = 2 * (InBytes + OutBytes);
  } else if (Op == "Trans") {
    C.Flops = 0;
    C.Bytes = InBytes + OutBytes; // pure data movement
  } else if (Op == "Gelu") {
    C.Flops = 16 * elems(Out); // erf polynomial
    C.Bytes = InBytes + OutBytes;
  } else if (Op == "Erf") {
    C.Flops = 12 * elems(Out);
    C.Bytes = InBytes + OutBytes;
  } else if (Op == "MaxPool" || Op == "AvgPool" || Op == "GlobalAvgPool") {
    C.Flops = 4 * elems(G.type(G.inputs(N)[0]));
    C.Bytes = InBytes + OutBytes;
  } else if (Op == "Flatten" || Op == "Reshape") {
    C.Flops = 0;
    C.Bytes = 0; // metadata-only
    C.Launches = 0;
    C.Seconds = 0;
    return C;
  } else if (Cls == "fused") {
    // A partition product: the region's summed work was recorded on the
    // node when it was fused.
    static const Symbol FlopsKey = Symbol::intern("flops");
    static const Symbol BytesKey = Symbol::intern("bytes");
    C.Flops = static_cast<double>(G.attr(N, FlopsKey).value_or(0));
    C.Bytes = static_cast<double>(
        G.attr(N, BytesKey).value_or(static_cast<int64_t>(InBytes + OutBytes)));
    Efficiency = 0.65; // JIT-compiled, better than launch-per-op
  } else {
    // Generic elementwise / unclassified: one flop-ish per element,
    // bandwidth bound.
    C.Flops = 2 * elems(Out);
    C.Bytes = InBytes + OutBytes;
  }

  C.Seconds = roofline(C.Flops, C.Bytes, Efficiency);
  return C;
}

GraphCost CostModel::graphCost(const Graph &G) const {
  GraphCost Total;
  for (NodeId N : G.topoOrder()) {
    KernelCost C = nodeCost(G, N);
    Total.Seconds += C.Seconds;
    Total.Flops += C.Flops;
    Total.Bytes += C.Bytes;
    Total.Kernels += C.Launches;
  }
  return Total;
}

GraphCost CostModel::nodesCost(const Graph &G,
                               std::span<const NodeId> Nodes) const {
  GraphCost Total;
  for (NodeId N : Nodes) {
    KernelCost C = nodeCost(G, N);
    Total.Seconds += C.Seconds;
    Total.Flops += C.Flops;
    Total.Bytes += C.Bytes;
    Total.Kernels += C.Launches;
  }
  return Total;
}

double CostModel::commitDelta(const Graph &G, std::span<const NodeId> Added,
                              std::span<const NodeId> Removed) const {
  return nodesCost(G, Added).Seconds - nodesCost(G, Removed).Seconds;
}

KernelCost CostModel::fusedRegionCost(const Graph &G,
                                      std::span<const NodeId> Interior,
                                      std::span<const NodeId> Frontier,
                                      NodeId Root) const {
  KernelCost C;
  for (NodeId N : Interior) {
    KernelCost K = nodeCost(G, N);
    C.Flops += K.Flops;
  }
  for (NodeId N : Frontier)
    C.Bytes += bytes(G.type(N));
  C.Bytes += bytes(G.type(Root));
  C.Launches = 1;
  C.Seconds = roofline(C.Flops, C.Bytes, 0.65);
  return C;
}
