//===- server/Protocol.h - pypmd wire framing and schemas ------*- C++ -*-===//
///
/// \file
/// The length-prefixed frame format pypmd speaks over stdin/stdout or a
/// Unix socket, plus the hardened request/reply body codecs. Everything is
/// little-endian and width-explicit, like the .pypmbin/.pypmplan artifact
/// formats this daemon serves.
///
/// Frame layout:
///
///   u8[4]  magic      "PYRQ" (client→server) / "PYRP" (server→client)
///   u32    bodyLen    <= kMaxFrameBody
///   u64    headerCk   FNV-1a over the 8 magic+bodyLen bytes
///   u8[bodyLen] body  body[0] is the FrameType tag
///   u64    bodyCk     FNV-1a over the body bytes
///
/// The two checksums split corruption into two recoverable classes with
/// different blast radii (tests/test_server.cpp flips every byte to pin
/// this):
///
///  - Body corruption (offset >= 16): headerCk passed, so bodyLen is
///    trustworthy, the reader consumed exactly one frame, and the stream
///    is still in sync. The server replies MalformedRequest and the
///    connection survives — the next frame is served normally. FNV-1a's
///    per-byte injectivity (support/Hash.h) guarantees any single-byte
///    change is caught.
///
///  - Header corruption (offset < 16): bodyLen itself is suspect, so the
///    frame boundary is unknowable and no resync is possible. The reader
///    reports a fatal framing error and the server drains and closes the
///    connection cleanly — degraded, but never desynced into misparsing
///    later requests as garbage (or worse, garbage as requests).
///
/// Truncation (any strict prefix of a frame, then EOF) is always detected
/// as Truncated — never a short successful parse — because every section
/// has an explicit expected length.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SERVER_PROTOCOL_H
#define PYPM_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pypm {
class ShutdownFlag;
} // namespace pypm

namespace pypm::server {

/// Refuse frames larger than this before allocating anything: a hostile
/// length prefix must not become an allocation. Large enough for any real
/// rule set + graph; the daemon is a compiler service, not a blob store.
inline constexpr uint32_t kMaxFrameBody = 64u << 20;

/// First body byte. Request and reply tags are disjoint ranges so a frame
/// echoed back at the wrong endpoint is rejected by tag, not just magic.
enum class FrameType : uint8_t {
  RewriteRequest = 1,
  PingRequest = 2,
  ShutdownRequest = 3,
  RewriteReply = 0x81,
  PingReply = 0x82,
  ShutdownReply = 0x83,
};

/// Server-level disposition of one request, orthogonal to the engine's
/// EngineStatus taxonomy: the engine statuses describe a run that
/// happened; these describe why one did or did not happen.
enum class ServerStatus : uint8_t {
  Ok = 0,                ///< engine ran; see EngineCode/BudgetReason
  MalformedRequest = 1,  ///< frame body failed decoding/checksum
  Overloaded = 2,        ///< admission queue full; request shed, not queued
  ShuttingDown = 3,      ///< server draining; request refused
  RuleSetUnreadable = 4, ///< named rule set unknown / file unreadable
  RuleSetMalformed = 5,  ///< rule-set bytes failed to compile/deserialize
  GraphMalformed = 6,    ///< graph text failed to parse
  LintRejected = 7,      ///< rule set has error-severity lint findings
  InternalError = 8,     ///< unexpected server-side failure
};

std::string_view serverStatusName(ServerStatus S);

/// One rewrite request. Field semantics mirror `pypmc rewrite` flags; zero
/// means "engine default" throughout, so an all-zero request is exactly a
/// plain `pypmc rewrite <rules> <graph>`.
struct RewriteRequest {
  uint64_t Seq = 0; ///< client-chosen id, echoed verbatim in the reply
  /// False: RuleSet holds inline bytes (textual .pypm, .pypmbin, or
  /// .pypmplan, sniffed by magic). True: RuleSet names a rule set the
  /// daemon preloaded at startup (pypmd serve --ruleset NAME=PATH).
  bool NamedRuleSet = false;
  std::string RuleSet;
  std::string GraphText;
  uint64_t DeadlineMicros = 0; ///< per-request wall-clock budget
  uint64_t MaxSteps = 0;
  uint64_t MaxMuUnfolds = 0;
  uint64_t MaxRewrites = 0;
  uint32_t Threads = 0;
  /// 0 = server default (plan), 1 = machine, 2 = fast, 3 = plan,
  /// 4 = plan-threaded, 5 = plan-aot (uses the cache's emitted .pypmso
  /// when present; otherwise the engine falls back to the interpreter
  /// with a warning — never a failed request).
  uint8_t Matcher = 0;
  bool Incremental = false;
  bool Batch = false;
  /// Per-request deterministic fault injection: the site-schedule harness
  /// (support/FaultInjection.h) armed for this run only. 0 period = off.
  uint64_t FaultSiteSeed = 0;
  uint64_t FaultSitePeriod = 0;
  /// Cost-directed commit selection (RewriteOptions::Search): 0 = greedy,
  /// 1 = best-of-n, 2 = beam, 3 = auto (certificate-directed: greedy when
  /// the rule set's confluence certificate proves order independence, beam
  /// otherwise). The width/lookahead/witness knobs follow the
  /// zero-means-default convention of every other field here, so an
  /// all-zero request still means a plain greedy `pypmc rewrite`.
  uint8_t Search = 0;
  uint32_t BeamWidth = 0;
  uint32_t Lookahead = 0;
  uint32_t SearchWitnesses = 0;

  bool operator==(const RewriteRequest &) const = default;
};

/// Where the request's compiled plan came from (PlanCache taxonomy).
enum class CacheSource : uint8_t { Compiled = 0, Memory = 1, Disk = 2 };

std::string_view cacheSourceName(CacheSource S);

struct RewriteReply {
  uint64_t Seq = 0;
  ServerStatus Status = ServerStatus::Ok;
  /// EngineStatusCode / BudgetReason of the run, as raw bytes (the wire
  /// format must not depend on in-memory enum layout; the codec range-
  /// checks them). Valid when Status == Ok.
  uint8_t EngineCode = 0;
  uint8_t Reason = 0;
  CacheSource Cache = CacheSource::Compiled;
  uint64_t FaultsAbsorbed = 0;
  std::vector<std::string> Quarantined;
  uint64_t Passes = 0;
  uint64_t Fired = 0;
  uint64_t Matches = 0;
  uint64_t LiveNodes = 0;
  /// Diagnostics / refusal explanation; human-readable, non-normative.
  std::string Message;
  /// The rewritten graph (writeGraphText); empty unless Status == Ok.
  std::string GraphText;

  bool operator==(const RewriteReply &) const = default;
};

struct ShutdownReply {
  uint64_t Seq = 0;
  uint64_t Served = 0; ///< rewrite requests completed over server lifetime
  uint64_t Shed = 0;   ///< rewrite requests rejected Overloaded
};

//===----------------------------------------------------------------------===//
// Frame IO
//===----------------------------------------------------------------------===//

/// Outcome of reading one frame off a descriptor.
enum class FrameStatus : uint8_t {
  Ok,          ///< one well-formed frame consumed; body returned
  Eof,         ///< clean EOF at a frame boundary
  Truncated,   ///< EOF mid-frame (every-prefix corpus lands here)
  BadMagic,    ///< fatal: stream is not speaking this protocol
  BadHeader,   ///< fatal: header checksum failed; bodyLen untrustworthy
  BadChecksum, ///< recoverable: body checksum failed; stream still in sync
  TooLarge,    ///< fatal: bodyLen over kMaxFrameBody
  Interrupted, ///< shutdown flag tripped while waiting for a frame
  IoError,     ///< read(2) failed
};

std::string_view frameStatusName(FrameStatus S);

/// True for the statuses after which the connection cannot continue.
inline bool isFatalFrameStatus(FrameStatus S) {
  return S == FrameStatus::BadMagic || S == FrameStatus::BadHeader ||
         S == FrameStatus::TooLarge || S == FrameStatus::Truncated ||
         S == FrameStatus::IoError;
}

/// Assembles one frame: header, body, checksums. \p Request selects the
/// direction magic.
std::string frameBytes(bool Request, std::string_view Body);

/// Reads exactly one frame from \p Fd (blocking). When \p Shutdown is
/// non-null the wait between frames polls it (~100ms granularity) and
/// returns Interrupted once it trips; mid-frame reads run to completion so
/// a drain never tears a frame. On Ok, \p Body holds the checksum-verified
/// body. On BadChecksum the frame was fully consumed (stream in sync).
FrameStatus readFrame(int Fd, bool Request, std::string &Body,
                      const ShutdownFlag *Shutdown = nullptr);

/// Writes one frame; retries short writes. False on write failure (e.g.
/// peer closed — callers treat it as a dead connection, never a crash).
bool writeFrame(int Fd, bool Request, std::string_view Body);

//===----------------------------------------------------------------------===//
// Body codecs (hardened: bounds-checked cursor, trailing bytes rejected)
//===----------------------------------------------------------------------===//

/// The frame's type tag, or nullopt for an empty/unknown-tag body.
std::optional<FrameType> frameType(std::string_view Body);

std::string encodeRewriteRequest(const RewriteRequest &R);
bool decodeRewriteRequest(std::string_view Body, RewriteRequest &Out,
                          std::string &Err);

std::string encodeRewriteReply(const RewriteReply &R);
bool decodeRewriteReply(std::string_view Body, RewriteReply &Out,
                        std::string &Err);

/// Ping and Shutdown requests carry only a sequence number.
std::string encodePing(uint64_t Seq);
std::string encodePingReply(uint64_t Seq);
std::string encodeShutdown(uint64_t Seq);
std::string encodeShutdownReply(const ShutdownReply &R);
bool decodeSeqOnly(std::string_view Body, FrameType Expect, uint64_t &Seq);
bool decodeShutdownReply(std::string_view Body, ShutdownReply &Out);

} // namespace pypm::server

#endif // PYPM_SERVER_PROTOCOL_H
