//===- server/PlanCache.h - Content-hash rule-set/plan cache ---*- C++ -*-===//
///
/// \file
/// The daemon's compile-once layer. A rule set arrives as raw bytes
/// (textual .pypm, a .pypmbin library, or a .pypmplan artifact — sniffed
/// by magic); the cache canonicalizes it to (library bytes, signature
/// layout), keys it with plan::cacheKey (FNV-1a over both), and hands back
/// a ready-to-serve CachedRuleSet: the compiled plan::Program, the
/// RuleSet, and the lint-preflight report, shared (immutably) by every
/// concurrent request.
///
/// Three tiers, fastest first:
///
///  - raw-bytes memory hit: the exact request bytes were seen before; not
///    even the DSL parser runs. This is the warm-daemon fast path.
///  - content memory hit: different bytes, same canonical content (e.g. a
///    .pypmbin of a previously-compiled .pypm source); deduped to the same
///    entry.
///  - on-disk artifact hit (Options::Dir): <dir>/<16-hex-key>.pypmplan,
///    read through the existing hostile-input-hardened .pypmplan loader.
///    Anything that loader rejects — truncation, corruption, a torn write
///    from a process killed mid-update — is a MISS, never a fault, and is
///    repaired (overwritten atomically) by the recompile that follows.
///    A checksummed sidecar index (<16-hex-rawkey>.pypmreq: the raw
///    request bytes and the content key they canonicalize to) lets a cold
///    process find the artifact WITHOUT first building the rule set —
///    that skipped front end is the entire latency win of a cold start
///    against a warm directory (BENCH_daemon_sweep.json quantifies it).
///    The index carries an FNV-1a checksum over its whole payload and
///    embeds the full raw bytes for identity comparison, so a torn or
///    corrupted index degrades to a miss exactly like a corrupt artifact.
///    Trust model: the index's raw→content mapping is the one claim the
///    cache accepts from disk without recomputing it (recomputing is the
///    build the index exists to skip); it is crash-safe by checksum +
///    atomic rename, and the artifact it points at still passes the full
///    hardened loader and key re-verification. A deliberately forged
///    mapping requires write access to the cache directory — the
///    directory is the trust boundary, as for any compiler cache.
///
/// Crash safety: disk entries are written to a temp file in the same
/// directory and atomically rename(2)d into place, so a reader never
/// observes a half-written artifact under the final name; a killed writer
/// leaves only a stale temp file and the old (or no) entry.
///
/// Hash discipline: the 64-bit content key is an index, not an identity —
/// on every memory hit the stored canonical bytes are compared, and on
/// every disk hit the key is recomputed from the loaded artifact, so a
/// colliding (or corrupted) entry degrades to a miss instead of serving
/// the wrong plan.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SERVER_PLANCACHE_H
#define PYPM_SERVER_PLANCACHE_H

#include "analysis/Analysis.h"
#include "plan/PlanSerializer.h"
#include "rewrite/Rule.h"
#include "server/Protocol.h"
#include "support/Diagnostics.h"
#include "term/Signature.h"

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pypm::plan::aot {
class PlanLibrary;
struct ThreadedProgram;
} // namespace pypm::plan::aot

namespace pypm::server {

/// One compiled rule set, shared immutably across requests (only the
/// sticky-quarantine side table mutates, under its own lock). Requests
/// copy Sig (cheap) so graph parsing can declare new operators without
/// racing other requests.
struct CachedRuleSet {
  CachedRuleSet();
  ~CachedRuleSet(); // out of line: AotLib's type is incomplete here
  uint64_t Key = 0;     ///< plan::cacheKey(LibBytes, Sig)
  std::string LibBytes; ///< canonical .pypmbin (identity check on hits)
  term::Signature Sig;
  /// Exactly one of Lib / LP owns the library (LP when the input or disk
  /// entry was a .pypmplan artifact, whose loader also carries a profile).
  std::unique_ptr<pattern::Library> Lib;
  std::unique_ptr<plan::LoadedPlan> LP;
  rewrite::RuleSet OwnRules;
  plan::Program OwnProg;
  /// Lint preflight, run once at load. Error findings make every request
  /// against this rule set LintRejected without ever reaching the engine.
  analysis::LintReport Lint;
  /// Fourth (AOT) tier: the emitted-plan .so for prog(), validated through
  /// the PlanLibrary ladder at attach time. Null whenever the tier is off,
  /// the toolchain is absent, or the build/validation failed — requests
  /// then run the interpreter tiers; the entry is always servable.
  std::unique_ptr<plan::aot::PlanLibrary> AotLib;
  /// Decode-once threaded stream over prog(): plan-threaded requests
  /// against this entry skip the engine's per-run decode (and the heap
  /// churn it would put right before term building). Built with the
  /// entry, immutable afterwards.
  std::unique_ptr<plan::aot::ThreadedProgram> Thr;

  const rewrite::RuleSet &rules() const { return LP ? LP->Rules : OwnRules; }
  const plan::Program &prog() const { return LP ? LP->Prog : OwnProg; }
  const pattern::Library &lib() const { return LP ? *LP->Lib : *Lib; }
  const plan::aot::PlanLibrary *aotLib() const { return AotLib.get(); }
  const plan::aot::ThreadedProgram *threaded() const { return Thr.get(); }

  /// Sticky per-rule-set quarantine (ServerOptions::StickyQuarantine):
  /// patterns a past request quarantined start later requests disabled.
  /// Insertion-ordered and deduplicated. Const (with mutable storage):
  /// it is the one mutation allowed through the shared const entry, and
  /// it is internally locked.
  void noteQuarantined(const std::vector<std::string> &Names) const;
  std::vector<std::string> quarantineSnapshot() const;

private:
  mutable std::mutex QMu;
  mutable std::vector<std::string> Sticky;
};

class PlanCache {
public:
  struct Options {
    /// On-disk artifact directory; empty disables the disk tier. Created
    /// on first write if missing.
    std::string Dir;
    /// Memory-tier entry ceiling. Reaching it flushes the maps (an epoch
    /// flush: in-flight requests keep their shared_ptr entries alive); the
    /// backlog then refills from disk/compiles. Simple and bounded.
    size_t MaxEntries = 64;
    /// Fourth (AOT) tier: alongside each <key>.pypmplan keep a
    /// <key>.pypmso emitted-plan library, built once per entry when a C++
    /// compiler is available and attached after validation through the
    /// full PlanLibrary ladder. Strictly best-effort: a missing compiler,
    /// failed build, or stale/corrupt artifact only costs the tier, never
    /// the request. Requires Dir (the artifact needs a home).
    bool Aot = false;
  };

  struct Stats {
    uint64_t RawHits = 0;     ///< raw-bytes memory hits
    uint64_t ContentHits = 0; ///< canonical-content memory hits
    uint64_t DiskHits = 0;
    uint64_t Compiles = 0;
    uint64_t CorruptDiskEntries = 0; ///< disk loads rejected => misses
    uint64_t Flushes = 0;
    uint64_t AotHits = 0;   ///< valid .pypmso served from disk
    uint64_t AotBuilds = 0; ///< .pypmso built (and validated) this process
    uint64_t AotFailures = 0; ///< build/validation failed => tier skipped
  };

  PlanCache() = default;
  explicit PlanCache(Options O) : Opts(std::move(O)) {}

  /// Resolves \p RawBytes to a served rule set. On failure returns nullptr
  /// with diagnostics in \p Diags (malformed source/binary/artifact). \p
  /// Src reports which tier served it; both memory tiers report
  /// CacheSource::Memory.
  std::shared_ptr<const CachedRuleSet> acquire(std::string_view RawBytes,
                                               DiagnosticEngine &Diags,
                                               CacheSource &Src);

  Stats stats() const;

  /// Drops the memory tier (tests use this to force the disk path).
  void flushMemory();

  const Options &options() const { return Opts; }

private:
  std::shared_ptr<CachedRuleSet> lookupRaw(uint64_t RawKey,
                                           std::string_view RawBytes);
  std::shared_ptr<CachedRuleSet> lookupContent(uint64_t Key,
                                               std::string_view LibBytes);
  void insert(uint64_t RawKey, std::string_view RawBytes,
              std::shared_ptr<CachedRuleSet> E);

  std::string diskPath(uint64_t Key) const;
  std::string rawIndexPath(uint64_t RawKey) const;
  std::string aotPath(uint64_t Key) const;
  /// Fourth tier: attach (load-or-build) the emitted-plan library for a
  /// freshly created entry, before the entry is shared. Stale or corrupt
  /// artifacts are misses repaired by an atomic rebuild, exactly like the
  /// .pypmplan tier; every failure mode leaves E servable with AotLib
  /// null.
  void tryAttachAot(CachedRuleSet &E);
  /// Loads <dir>/<key>.pypmplan; nullptr (and ++CorruptDiskEntries when
  /// the file existed) on any rejection.
  std::shared_ptr<CachedRuleSet> tryLoadDisk(uint64_t Key);
  /// Resolves raw request bytes through the sidecar index without
  /// building: verifies the index checksum and its embedded raw bytes,
  /// then loads the artifact it names via tryLoadDisk. nullptr on any
  /// mismatch (++CorruptDiskEntries when the index existed but was
  /// corrupt). When the artifact load was actually attempted, \p Tried
  /// is set and \p TriedKey records the content key — acquire uses it to
  /// avoid re-reading (and double-counting) the same rejected artifact
  /// on the post-build content-tier lookup.
  std::shared_ptr<CachedRuleSet> tryLoadDiskByRaw(uint64_t RawKey,
                                                  std::string_view RawBytes,
                                                  uint64_t &TriedKey,
                                                  bool &Tried);
  /// Serializes \p E and atomically installs it at diskPath(E->Key).
  void tryStoreDisk(const CachedRuleSet &E);
  /// Atomically installs the raw→content sidecar index for \p RawBytes.
  void tryStoreDiskIndex(uint64_t RawKey, std::string_view RawBytes,
                         uint64_t ContentKey);

  Options Opts;
  mutable std::mutex Mu;
  /// Canonical content key -> entries (vector: collision chain).
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<CachedRuleSet>>>
      ByContent;
  /// Raw-bytes key -> (raw bytes, entry) (vector: collision chain).
  std::unordered_map<
      uint64_t,
      std::vector<std::pair<std::string, std::shared_ptr<CachedRuleSet>>>>
      ByRaw;
  size_t NumEntries = 0;
  Stats Counters;
};

} // namespace pypm::server

#endif // PYPM_SERVER_PLANCACHE_H
