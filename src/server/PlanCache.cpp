//===- server/PlanCache.cpp - Content-hash rule-set/plan cache -----------===//

#include "server/PlanCache.h"

#include "dsl/Sema.h"
#include "pattern/Serializer.h"
#include "plan/PlanBuilder.h"
#include "plan/aot/Emitter.h"
#include "plan/aot/Library.h"
#include "plan/aot/Threaded.h"
#include "support/Hash.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

namespace pypm::server {

CachedRuleSet::CachedRuleSet() = default;
CachedRuleSet::~CachedRuleSet() = default;

//===----------------------------------------------------------------------===//
// CachedRuleSet sticky quarantine
//===----------------------------------------------------------------------===//

void CachedRuleSet::noteQuarantined(
    const std::vector<std::string> &Names) const {
  std::lock_guard<std::mutex> Lock(QMu);
  for (const std::string &N : Names) {
    bool Seen = false;
    for (const std::string &S : Sticky)
      if (S == N) {
        Seen = true;
        break;
      }
    if (!Seen)
      Sticky.push_back(N);
  }
}

std::vector<std::string> CachedRuleSet::quarantineSnapshot() const {
  std::lock_guard<std::mutex> Lock(QMu);
  return Sticky;
}

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

static bool startsWith(std::string_view Bytes, std::string_view Magic) {
  return Bytes.size() >= Magic.size() &&
         Bytes.substr(0, Magic.size()) == Magic;
}

static uint64_t rawKey(std::string_view Bytes) {
  Fnv1aHash H;
  H.str(Bytes);
  return H.value();
}

/// Builds a CachedRuleSet from request bytes (text / .pypmbin / .pypmplan,
/// sniffed). Returns nullptr with diagnostics on malformed input.
static std::shared_ptr<CachedRuleSet> build(std::string_view Bytes,
                                            DiagnosticEngine &Diags) {
  auto E = std::make_shared<CachedRuleSet>();
  if (startsWith(Bytes, "PYPL")) {
    E->LP = plan::deserializePlan(Bytes, E->Sig, Diags);
    if (!E->LP)
      return nullptr;
  } else {
    E->Lib = startsWith(Bytes, "PYPM")
                 ? pattern::deserializeLibrary(Bytes, E->Sig, Diags)
                 : dsl::compile(Bytes, E->Sig, Diags);
    if (!E->Lib)
      return nullptr;
    E->OwnRules.addLibrary(*E->Lib);
    E->OwnProg = plan::PlanBuilder::compile(E->OwnRules, E->Sig);
  }
  E->LibBytes = pattern::serializeLibrary(E->lib(), E->Sig);
  E->Key = plan::cacheKey(E->LibBytes, E->Sig);
  E->Lint = analysis::lintRuleSet(E->rules(), E->Sig);
  E->Thr = std::make_unique<plan::aot::ThreadedProgram>(
      plan::aot::ThreadedProgram::decode(E->prog()));
  return E;
}

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

std::string PlanCache::diskPath(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.pypmplan",
                (unsigned long long)Key);
  return Opts.Dir + "/" + Name;
}

std::string PlanCache::rawIndexPath(uint64_t RawKey) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.pypmreq",
                (unsigned long long)RawKey);
  return Opts.Dir + "/" + Name;
}

std::string PlanCache::aotPath(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.pypmso",
                (unsigned long long)Key);
  return Opts.Dir + "/" + Name;
}

void PlanCache::tryAttachAot(CachedRuleSet &E) {
  if (!Opts.Aot || Opts.Dir.empty())
    return;
  std::string Path = aotPath(E.Key);
  // First rung: an artifact from a previous process. The PlanLibrary
  // ladder (marker scan before dlopen, then ABI + fingerprint checks
  // against this entry's exact program) is the corruption/staleness
  // detector — anything it rejects is a miss the rebuild below repairs.
  plan::aot::AotLoadStatus St;
  E.AotLib = plan::aot::PlanLibrary::load(Path, E.prog(), nullptr, St);
  if (E.AotLib) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.AotHits;
    return;
  }
  if (plan::aot::AotEmitter::findCompiler().empty()) {
    // No toolchain in this environment: the tier is silently absent (not
    // a failure — nothing was attempted), requests run the interpreter.
    return;
  }
  ::mkdir(Opts.Dir.c_str(), 0777);
  std::string Err;
  if (!plan::aot::AotEmitter::buildSharedObject(E.prog(), Path, Err)) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.AotFailures;
    return; // best-effort tier: serve from the plan interpreter instead
  }
  E.AotLib = plan::aot::PlanLibrary::load(Path, E.prog(), nullptr, St);
  std::lock_guard<std::mutex> Lock(Mu);
  if (E.AotLib)
    ++Counters.AotBuilds;
  else
    ++Counters.AotFailures; // built but failed validation: never serve it
}

/// Crash-safe install shared by the artifact and index writers: write a
/// unique temp file in the same directory, then atomically rename(2) over
/// the final name. A writer killed at any point leaves either the old
/// entry or a stale temp file — never a half-written file under the final
/// name.
static void atomicInstall(const std::string &Final, std::string_view Bytes) {
  static std::atomic<uint64_t> TempSeq{0};
  char Suffix[64];
  std::snprintf(Suffix, sizeof(Suffix), ".tmp.%ld.%llu", (long)::getpid(),
                (unsigned long long)TempSeq.fetch_add(1));
  std::string Temp = Final + Suffix;
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(Bytes.data(), (std::streamsize)Bytes.size());
    Out.flush();
    if (!Out) {
      Out.close();
      ::unlink(Temp.c_str());
      return;
    }
  }
  if (::rename(Temp.c_str(), Final.c_str()) != 0)
    ::unlink(Temp.c_str());
}

/// Sidecar index layout, little-endian and width-explicit like every
/// other artifact: "PYRX", u64 content key, u64 raw length, raw bytes,
/// u64 FNV-1a over everything before it. The checksum turns torn writes
/// and bit flips into misses; the embedded raw bytes keep the raw-key
/// hash an index rather than an identity.
static void appendLE64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}
static uint64_t readLE64(const unsigned char *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

std::shared_ptr<CachedRuleSet> PlanCache::tryLoadDisk(uint64_t Key) {
  if (Opts.Dir.empty())
    return nullptr;
  std::ifstream In(diskPath(Key), std::ios::binary);
  if (!In)
    return nullptr; // no entry: a plain miss, not corruption
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Bytes = Buf.str();

  // The hardened .pypmplan loader is the corruption detector: truncation,
  // bit flips, and torn writes all fail deserialization. A failure is a
  // miss; the caller recompiles and tryStoreDisk repairs the entry.
  DiagnosticEngine Diags;
  auto E = std::make_shared<CachedRuleSet>();
  E->LP = plan::deserializePlan(Bytes, E->Sig, Diags);
  if (!E->LP) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.CorruptDiskEntries;
    return nullptr;
  }
  E->LibBytes = pattern::serializeLibrary(*E->LP->Lib, E->Sig);
  E->Key = plan::cacheKey(E->LibBytes, E->Sig);
  // The file name is an index, not a proof: a valid artifact stored under
  // the wrong name (or a key collision) must not be served as Key.
  if (E->Key != Key) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.CorruptDiskEntries;
    return nullptr;
  }
  E->Lint = analysis::lintRuleSet(E->rules(), E->Sig);
  E->Thr = std::make_unique<plan::aot::ThreadedProgram>(
      plan::aot::ThreadedProgram::decode(E->prog()));
  tryAttachAot(*E); // entry not yet shared: safe to mutate
  return E;
}

std::shared_ptr<CachedRuleSet>
PlanCache::tryLoadDiskByRaw(uint64_t RawKey, std::string_view RawBytes,
                            uint64_t &TriedKey, bool &Tried) {
  Tried = false;
  if (Opts.Dir.empty())
    return nullptr;
  std::ifstream In(rawIndexPath(RawKey), std::ios::binary);
  if (!In)
    return nullptr; // no index: a plain miss, not corruption
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string S = Buf.str();

  auto Corrupt = [&]() -> std::shared_ptr<CachedRuleSet> {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.CorruptDiskEntries;
    return nullptr;
  };
  constexpr size_t kHeader = 4 + 8 + 8, kCk = 8;
  if (S.size() < kHeader + kCk || S.compare(0, 4, "PYRX") != 0)
    return Corrupt();
  Fnv1aHash H;
  H.bytes(S.data(), S.size() - kCk);
  const auto *P = reinterpret_cast<const unsigned char *>(S.data());
  if (H.value() != readLE64(P + S.size() - kCk))
    return Corrupt(); // torn write / bit flip: miss, repaired on rebuild
  uint64_t ContentKey = readLE64(P + 4);
  uint64_t RawLen = readLE64(P + 12);
  if (RawLen != S.size() - kHeader - kCk)
    return Corrupt();
  if (std::string_view(S).substr(kHeader, RawLen) != RawBytes)
    return nullptr; // raw-key collision: the hash is an index, not identity
  TriedKey = ContentKey;
  Tried = true;
  return tryLoadDisk(ContentKey);
}

void PlanCache::tryStoreDisk(const CachedRuleSet &E) {
  if (Opts.Dir.empty())
    return;
  ::mkdir(Opts.Dir.c_str(), 0777); // best-effort; single level is enough

  DiagnosticEngine Diags;
  std::string Bytes =
      plan::serializePlan(E.lib(), E.Sig, /*RulesOnly=*/true, Diags,
                          E.LP ? E.LP->Prof.get() : nullptr);
  if (Bytes.empty())
    return; // best-effort tier: never fail the request over it
  atomicInstall(diskPath(E.Key), Bytes);
}

void PlanCache::tryStoreDiskIndex(uint64_t RawKey, std::string_view RawBytes,
                                  uint64_t ContentKey) {
  if (Opts.Dir.empty())
    return;
  ::mkdir(Opts.Dir.c_str(), 0777);
  std::string S = "PYRX";
  appendLE64(S, ContentKey);
  appendLE64(S, RawBytes.size());
  S.append(RawBytes.data(), RawBytes.size());
  Fnv1aHash H;
  H.bytes(S.data(), S.size());
  appendLE64(S, H.value());
  atomicInstall(rawIndexPath(RawKey), S);
}

//===----------------------------------------------------------------------===//
// Memory tier
//===----------------------------------------------------------------------===//

std::shared_ptr<CachedRuleSet> PlanCache::lookupRaw(uint64_t RawKey,
                                                    std::string_view RawBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = ByRaw.find(RawKey);
  if (It == ByRaw.end())
    return nullptr;
  for (auto &[Bytes, E] : It->second)
    if (Bytes == RawBytes) { // hash is an index; bytes are the identity
      ++Counters.RawHits;
      return E;
    }
  return nullptr;
}

std::shared_ptr<CachedRuleSet>
PlanCache::lookupContent(uint64_t Key, std::string_view LibBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = ByContent.find(Key);
  if (It == ByContent.end())
    return nullptr;
  for (auto &E : It->second)
    if (E->LibBytes == LibBytes) {
      ++Counters.ContentHits;
      return E;
    }
  return nullptr;
}

void PlanCache::insert(uint64_t RawKey, std::string_view RawBytes,
                       std::shared_ptr<CachedRuleSet> E) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (NumEntries >= Opts.MaxEntries) {
    // Epoch flush: bounded and predictable. In-flight requests keep their
    // entries alive through their shared_ptrs.
    ByContent.clear();
    ByRaw.clear();
    NumEntries = 0;
    ++Counters.Flushes;
  }
  // Another thread may have inserted the same content while we compiled;
  // keep the existing entry (sticky quarantine lives there) and alias the
  // raw key to it.
  std::shared_ptr<CachedRuleSet> Canonical = E;
  for (auto &Existing : ByContent[E->Key])
    if (Existing->LibBytes == E->LibBytes) {
      Canonical = Existing;
      break;
    }
  if (Canonical == E) {
    ByContent[E->Key].push_back(E);
    ++NumEntries;
  }
  auto &Chain = ByRaw[RawKey];
  for (auto &[Bytes, Old] : Chain)
    if (Bytes == RawBytes) {
      Old = Canonical;
      return;
    }
  Chain.emplace_back(std::string(RawBytes), Canonical);
}

//===----------------------------------------------------------------------===//
// acquire
//===----------------------------------------------------------------------===//

std::shared_ptr<const CachedRuleSet>
PlanCache::acquire(std::string_view RawBytes, DiagnosticEngine &Diags,
                   CacheSource &Src) {
  uint64_t RK = rawKey(RawBytes);
  if (auto E = lookupRaw(RK, RawBytes)) {
    Src = CacheSource::Memory;
    return E;
  }

  // Cold-start fast path: the sidecar index maps these exact raw bytes to
  // their artifact without building anything — the front-end parse is
  // precisely what this tier exists to skip. The artifact still passes
  // the full hardened loader and key re-verification inside tryLoadDisk.
  uint64_t IndexedKey = 0;
  bool IndexTried = false;
  if (auto E = tryLoadDiskByRaw(RK, RawBytes, IndexedKey, IndexTried)) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Counters.DiskHits;
    }
    insert(RK, RawBytes, E);
    Src = CacheSource::Disk;
    if (auto C = lookupRaw(RK, RawBytes)) { // insert() may have deduped
      std::lock_guard<std::mutex> Lock(Mu);
      --Counters.RawHits; // bookkeeping lookup, not a client hit
      return C;
    }
    return E;
  }

  // Canonicalize. For the content/disk tiers we need the canonical library
  // bytes, which requires loading the input once; malformed input fails
  // here with diagnostics, cached by nobody.
  std::shared_ptr<CachedRuleSet> Fresh = build(RawBytes, Diags);
  if (!Fresh)
    return nullptr;

  if (auto E = lookupContent(Fresh->Key, Fresh->LibBytes)) {
    Src = CacheSource::Memory;
    insert(RK, RawBytes, E); // alias these raw bytes for next time
    return E;
  }

  // Content-tier disk lookup — unless the sidecar path already read and
  // rejected exactly this artifact (re-reading it would double-count the
  // corruption and change nothing).
  if (auto E = (IndexTried && IndexedKey == Fresh->Key)
                   ? nullptr
                   : tryLoadDisk(Fresh->Key)) {
    // Same content key, but honor the identity discipline: serve the disk
    // entry only if it is byte-for-byte the same canonical library.
    if (E->LibBytes == Fresh->LibBytes) {
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Counters.DiskHits;
      }
      tryStoreDiskIndex(RK, RawBytes, E->Key); // next cold start skips build
      insert(RK, RawBytes, E);
      Src = CacheSource::Disk;
      return E;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.Compiles;
  }
  tryStoreDisk(*Fresh); // repair/populate the disk tier
  tryStoreDiskIndex(RK, RawBytes, Fresh->Key);
  tryAttachAot(*Fresh); // fourth tier: build/repair the emitted library
  insert(RK, RawBytes, Fresh);
  Src = CacheSource::Compiled;
  // insert() may have deduped to a pre-existing entry; re-resolve so every
  // caller with identical bytes shares one CachedRuleSet.
  if (auto E = lookupRaw(RK, RawBytes)) {
    std::lock_guard<std::mutex> Lock(Mu);
    --Counters.RawHits; // bookkeeping lookup, not a client hit
    return E;
  }
  return Fresh;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

void PlanCache::flushMemory() {
  std::lock_guard<std::mutex> Lock(Mu);
  ByContent.clear();
  ByRaw.clear();
  NumEntries = 0;
  ++Counters.Flushes;
}

} // namespace pypm::server
