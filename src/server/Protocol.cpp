//===- server/Protocol.cpp - pypmd wire framing and schemas ---------------===//

#include "server/Protocol.h"

#include "support/Hash.h"
#include "support/Shutdown.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

using namespace pypm;
using namespace pypm::server;

namespace {

constexpr char kRequestMagic[4] = {'P', 'Y', 'R', 'Q'};
constexpr char kReplyMagic[4] = {'P', 'Y', 'R', 'P'};

uint64_t fnv(std::string_view Bytes) {
  Fnv1aHash H;
  H.bytes(Bytes.data(), Bytes.size());
  return H.value();
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

void putStr(std::string &Out, std::string_view S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

/// Bounds-checked little-endian cursor; the sibling of the .pypmbin
/// reader's. Failure is sticky, so codecs can chain reads and check once.
class Cursor {
public:
  explicit Cursor(std::string_view Bytes) : Bytes(Bytes) {}

  bool u8(uint8_t &Out) {
    if (!need(1))
      return false;
    Out = static_cast<uint8_t>(Bytes[Pos++]);
    return true;
  }

  bool u32(uint32_t &Out) {
    if (!need(4))
      return false;
    Out = 0;
    for (int I = 0; I < 4; ++I)
      Out |= static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos++]))
             << (8 * I);
    return true;
  }

  bool u64(uint64_t &Out) {
    if (!need(8))
      return false;
    Out = 0;
    for (int I = 0; I < 8; ++I)
      Out |= static_cast<uint64_t>(static_cast<uint8_t>(Bytes[Pos++]))
             << (8 * I);
    return true;
  }

  /// Length-prefixed string; the length is checked against the remaining
  /// bytes before anything is copied (a hostile length is a parse error,
  /// never an allocation).
  bool str(std::string &Out) {
    uint32_t Len = 0;
    if (!u32(Len) || !need(Len))
      return false;
    Out.assign(Bytes.substr(Pos, Len));
    Pos += Len;
    return true;
  }

  bool atEnd() const { return !Failed && Pos == Bytes.size(); }
  bool failed() const { return Failed; }

private:
  bool need(size_t N) {
    if (Failed || Bytes.size() - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }

  std::string_view Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

/// Reads exactly \p Len bytes. Returns Ok, or Eof (nothing read and
/// AtBoundary), or Truncated / IoError / Interrupted. The poll-for-flag
/// wait only happens while no byte of the frame has arrived yet —
/// mid-frame the read blocks to completion so drains never tear frames.
FrameStatus readExact(int Fd, char *Buf, size_t Len, bool AtBoundary,
                      const ShutdownFlag *Shutdown) {
  size_t Got = 0;
  while (Got < Len) {
    if (Shutdown && Got == 0 && AtBoundary) {
      // Frame-boundary wait: poll so the shutdown flag is honored even
      // when no traffic arrives.
      if (Shutdown->requested())
        return FrameStatus::Interrupted;
      struct pollfd P = {Fd, POLLIN, 0};
      int R = ::poll(&P, 1, 100);
      if (R < 0 && errno != EINTR)
        return FrameStatus::IoError;
      if (R <= 0)
        continue;
    }
    ssize_t N = ::read(Fd, Buf + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return FrameStatus::IoError;
    }
    if (N == 0)
      return (Got == 0 && AtBoundary) ? FrameStatus::Eof
                                      : FrameStatus::Truncated;
    Got += static_cast<size_t>(N);
  }
  return FrameStatus::Ok;
}

} // namespace

std::string_view pypm::server::serverStatusName(ServerStatus S) {
  switch (S) {
  case ServerStatus::Ok:
    return "ok";
  case ServerStatus::MalformedRequest:
    return "malformed-request";
  case ServerStatus::Overloaded:
    return "overloaded";
  case ServerStatus::ShuttingDown:
    return "shutting-down";
  case ServerStatus::RuleSetUnreadable:
    return "ruleset-unreadable";
  case ServerStatus::RuleSetMalformed:
    return "ruleset-malformed";
  case ServerStatus::GraphMalformed:
    return "graph-malformed";
  case ServerStatus::LintRejected:
    return "lint-rejected";
  case ServerStatus::InternalError:
    return "internal-error";
  }
  return "unknown";
}

std::string_view pypm::server::cacheSourceName(CacheSource S) {
  switch (S) {
  case CacheSource::Compiled:
    return "compiled";
  case CacheSource::Memory:
    return "memory-hit";
  case CacheSource::Disk:
    return "disk-hit";
  }
  return "unknown";
}

std::string_view pypm::server::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::Truncated:
    return "truncated";
  case FrameStatus::BadMagic:
    return "bad-magic";
  case FrameStatus::BadHeader:
    return "bad-header";
  case FrameStatus::BadChecksum:
    return "bad-checksum";
  case FrameStatus::TooLarge:
    return "too-large";
  case FrameStatus::Interrupted:
    return "interrupted";
  case FrameStatus::IoError:
    return "io-error";
  }
  return "unknown";
}

std::string pypm::server::frameBytes(bool Request, std::string_view Body) {
  std::string Out;
  Out.reserve(24 + Body.size());
  Out.append(Request ? kRequestMagic : kReplyMagic, 4);
  putU32(Out, static_cast<uint32_t>(Body.size()));
  putU64(Out, fnv(std::string_view(Out.data(), 8)));
  Out.append(Body);
  putU64(Out, fnv(Body));
  return Out;
}

FrameStatus pypm::server::readFrame(int Fd, bool Request, std::string &Body,
                                    const ShutdownFlag *Shutdown) {
  char Header[16];
  FrameStatus S = readExact(Fd, Header, sizeof Header, /*AtBoundary=*/true,
                            Shutdown);
  if (S != FrameStatus::Ok)
    return S;
  if (std::memcmp(Header, Request ? kRequestMagic : kReplyMagic, 4) != 0)
    return FrameStatus::BadMagic;
  uint64_t StoredHeaderCk = 0;
  for (int I = 0; I < 8; ++I)
    StoredHeaderCk |=
        static_cast<uint64_t>(static_cast<uint8_t>(Header[8 + I])) << (8 * I);
  if (StoredHeaderCk != fnv(std::string_view(Header, 8)))
    return FrameStatus::BadHeader;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<uint8_t>(Header[4 + I]))
           << (8 * I);
  if (Len > kMaxFrameBody)
    return FrameStatus::TooLarge;

  Body.resize(Len);
  if (Len != 0) {
    S = readExact(Fd, Body.data(), Len, /*AtBoundary=*/false, Shutdown);
    if (S != FrameStatus::Ok)
      return S;
  }
  char CkBuf[8];
  S = readExact(Fd, CkBuf, sizeof CkBuf, /*AtBoundary=*/false, Shutdown);
  if (S != FrameStatus::Ok)
    return S;
  uint64_t Ck = 0;
  for (int I = 0; I < 8; ++I)
    Ck |= static_cast<uint64_t>(static_cast<uint8_t>(CkBuf[I])) << (8 * I);
  if (Ck != fnv(Body))
    return FrameStatus::BadChecksum;
  return FrameStatus::Ok;
}

bool pypm::server::writeFrame(int Fd, bool Request, std::string_view Body) {
  std::string Frame = frameBytes(Request, Body);
  size_t Done = 0;
  while (Done < Frame.size()) {
    ssize_t N = ::write(Fd, Frame.data() + Done, Frame.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

std::optional<FrameType> pypm::server::frameType(std::string_view Body) {
  if (Body.empty())
    return std::nullopt;
  switch (static_cast<uint8_t>(Body[0])) {
  case static_cast<uint8_t>(FrameType::RewriteRequest):
  case static_cast<uint8_t>(FrameType::PingRequest):
  case static_cast<uint8_t>(FrameType::ShutdownRequest):
  case static_cast<uint8_t>(FrameType::RewriteReply):
  case static_cast<uint8_t>(FrameType::PingReply):
  case static_cast<uint8_t>(FrameType::ShutdownReply):
    return static_cast<FrameType>(Body[0]);
  default:
    return std::nullopt;
  }
}

std::string pypm::server::encodeRewriteRequest(const RewriteRequest &R) {
  std::string B;
  B.push_back(static_cast<char>(FrameType::RewriteRequest));
  putU64(B, R.Seq);
  B.push_back(R.NamedRuleSet ? 1 : 0);
  putStr(B, R.RuleSet);
  putStr(B, R.GraphText);
  putU64(B, R.DeadlineMicros);
  putU64(B, R.MaxSteps);
  putU64(B, R.MaxMuUnfolds);
  putU64(B, R.MaxRewrites);
  putU32(B, R.Threads);
  B.push_back(static_cast<char>(R.Matcher));
  uint8_t Flags = (R.Incremental ? 1 : 0) | (R.Batch ? 2 : 0);
  B.push_back(static_cast<char>(Flags));
  putU64(B, R.FaultSiteSeed);
  putU64(B, R.FaultSitePeriod);
  B.push_back(static_cast<char>(R.Search));
  putU32(B, R.BeamWidth);
  putU32(B, R.Lookahead);
  putU32(B, R.SearchWitnesses);
  return B;
}

bool pypm::server::decodeRewriteRequest(std::string_view Body,
                                        RewriteRequest &Out,
                                        std::string &Err) {
  Cursor C(Body);
  uint8_t Tag = 0, Named = 0, Flags = 0;
  if (!C.u8(Tag) || Tag != static_cast<uint8_t>(FrameType::RewriteRequest)) {
    Err = "not a rewrite request";
    return false;
  }
  bool Ok = C.u64(Out.Seq) && C.u8(Named) && C.str(Out.RuleSet) &&
            C.str(Out.GraphText) && C.u64(Out.DeadlineMicros) &&
            C.u64(Out.MaxSteps) && C.u64(Out.MaxMuUnfolds) &&
            C.u64(Out.MaxRewrites) && C.u32(Out.Threads) &&
            C.u8(Out.Matcher) && C.u8(Flags) && C.u64(Out.FaultSiteSeed) &&
            C.u64(Out.FaultSitePeriod) && C.u8(Out.Search) &&
            C.u32(Out.BeamWidth) && C.u32(Out.Lookahead) &&
            C.u32(Out.SearchWitnesses);
  if (!Ok || !C.atEnd()) {
    Err = Ok ? "trailing bytes after rewrite request"
             : "truncated rewrite request body";
    return false;
  }
  if (Named > 1 || Out.Matcher > 5 || (Flags & ~3u) != 0 || Out.Search > 3) {
    Err = "rewrite request field out of range";
    return false;
  }
  Out.NamedRuleSet = Named != 0;
  Out.Incremental = (Flags & 1) != 0;
  Out.Batch = (Flags & 2) != 0;
  return true;
}

std::string pypm::server::encodeRewriteReply(const RewriteReply &R) {
  std::string B;
  B.push_back(static_cast<char>(FrameType::RewriteReply));
  putU64(B, R.Seq);
  B.push_back(static_cast<char>(R.Status));
  B.push_back(static_cast<char>(R.EngineCode));
  B.push_back(static_cast<char>(R.Reason));
  B.push_back(static_cast<char>(R.Cache));
  putU64(B, R.FaultsAbsorbed);
  putU32(B, static_cast<uint32_t>(R.Quarantined.size()));
  for (const std::string &Q : R.Quarantined)
    putStr(B, Q);
  putU64(B, R.Passes);
  putU64(B, R.Fired);
  putU64(B, R.Matches);
  putU64(B, R.LiveNodes);
  putStr(B, R.Message);
  putStr(B, R.GraphText);
  return B;
}

bool pypm::server::decodeRewriteReply(std::string_view Body,
                                      RewriteReply &Out, std::string &Err) {
  Cursor C(Body);
  uint8_t Tag = 0, Status = 0, Cache = 0;
  uint32_t NumQ = 0;
  if (!C.u8(Tag) || Tag != static_cast<uint8_t>(FrameType::RewriteReply)) {
    Err = "not a rewrite reply";
    return false;
  }
  bool Ok = C.u64(Out.Seq) && C.u8(Status) && C.u8(Out.EngineCode) &&
            C.u8(Out.Reason) && C.u8(Cache) && C.u64(Out.FaultsAbsorbed) &&
            C.u32(NumQ);
  Out.Quarantined.clear();
  for (uint32_t I = 0; Ok && I != NumQ; ++I) {
    std::string Q;
    Ok = C.str(Q);
    if (Ok)
      Out.Quarantined.push_back(std::move(Q));
  }
  Ok = Ok && C.u64(Out.Passes) && C.u64(Out.Fired) && C.u64(Out.Matches) &&
       C.u64(Out.LiveNodes) && C.str(Out.Message) && C.str(Out.GraphText);
  if (!Ok || !C.atEnd()) {
    Err = "malformed rewrite reply body";
    return false;
  }
  if (Status > static_cast<uint8_t>(ServerStatus::InternalError) ||
      Cache > static_cast<uint8_t>(CacheSource::Disk)) {
    Err = "rewrite reply field out of range";
    return false;
  }
  Out.Status = static_cast<ServerStatus>(Status);
  Out.Cache = static_cast<CacheSource>(Cache);
  return true;
}

namespace {

std::string seqOnly(FrameType T, uint64_t Seq) {
  std::string B;
  B.push_back(static_cast<char>(T));
  putU64(B, Seq);
  return B;
}

} // namespace

std::string pypm::server::encodePing(uint64_t Seq) {
  return seqOnly(FrameType::PingRequest, Seq);
}
std::string pypm::server::encodePingReply(uint64_t Seq) {
  return seqOnly(FrameType::PingReply, Seq);
}
std::string pypm::server::encodeShutdown(uint64_t Seq) {
  return seqOnly(FrameType::ShutdownRequest, Seq);
}

std::string pypm::server::encodeShutdownReply(const ShutdownReply &R) {
  std::string B = seqOnly(FrameType::ShutdownReply, R.Seq);
  putU64(B, R.Served);
  putU64(B, R.Shed);
  return B;
}

bool pypm::server::decodeSeqOnly(std::string_view Body, FrameType Expect,
                                 uint64_t &Seq) {
  Cursor C(Body);
  uint8_t Tag = 0;
  return C.u8(Tag) && Tag == static_cast<uint8_t>(Expect) && C.u64(Seq) &&
         C.atEnd();
}

bool pypm::server::decodeShutdownReply(std::string_view Body,
                                       ShutdownReply &Out) {
  Cursor C(Body);
  uint8_t Tag = 0;
  return C.u8(Tag) &&
         Tag == static_cast<uint8_t>(FrameType::ShutdownReply) &&
         C.u64(Out.Seq) && C.u64(Out.Served) && C.u64(Out.Shed) && C.atEnd();
}
