//===- server/Server.h - pypmd rewrite-as-a-service core -------*- C++ -*-===//
///
/// \file
/// The daemon core behind tools/pypmd.cpp: a worker pool consuming a
/// bounded admission queue (RequestQueue), a compile-once PlanCache, and a
/// per-connection frame loop (serve) that turns every outcome — including
/// overload, malformed frames, exhausted budgets, injected faults, and
/// shutdown — into a machine-readable reply rather than a dropped
/// connection or a dead process.
///
/// Failure-domain contract, from the inside out:
///
///  - per request: a fresh Budget (deadline/steps/μ/rewrites) and an
///    optional per-request deterministic FaultInjector govern the run; the
///    engine's transactional commit keeps faults inside the attempt; the
///    reply carries the full EngineStatus taxonomy. One request can
///    exhaust only its own budget — the next request on the same worker
///    starts clean (tests/test_server.cpp pins the non-poisoning).
///  - per connection: body-corrupt frames get MalformedRequest and the
///    loop continues; header-corrupt frames kill only this connection,
///    cleanly (see Protocol.h for why the split is exactly there).
///  - per server: the queue bounds memory; overflow is shed with
///    Overloaded, never queued. SIGTERM or a Shutdown frame stops
///    admission, drains every admitted request to a real reply, then
///    exits. Admitted work is never abandoned.
///
/// Determinism: requests are processed by a pool, so replies may be
/// written out of order — Seq correlates them — but each individual reply
/// is bit-identical to what a single-shot `pypmc rewrite` with the same
/// inputs would produce: the engine is deterministic, each request runs
/// against a private Signature copy (so cached plans never leak operator
/// ids across requests), and cache hits serve byte-identical plans.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SERVER_SERVER_H
#define PYPM_SERVER_SERVER_H

#include "server/PlanCache.h"
#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "support/Shutdown.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pypm::server {

struct ServerOptions {
  /// Worker threads consuming the admission queue. At least 1.
  unsigned Workers = 2;
  /// Admission queue capacity; the (Workers+1)th..(Workers+Capacity)th
  /// concurrent request queues, the next one is shed Overloaded.
  size_t QueueCapacity = 16;
  /// Carry quarantine decisions across requests: patterns one request
  /// quarantined start subsequent requests on the same rule set already
  /// disabled (RewriteOptions::PreQuarantined). Off by default — the
  /// default daemon is stateless per request, so daemon replies stay
  /// bit-identical to single-shot pypmc runs.
  bool StickyQuarantine = false;
  PlanCache::Options Cache;
  /// Rule sets to load and lint once at startup; requests reference them
  /// by name (RewriteRequest::NamedRuleSet).
  std::vector<std::pair<std::string, std::string>> NamedRuleSets;
  /// Test seam: when set, every worker calls this after popping a request
  /// and before processing it. Tests park workers here (on a latch) to
  /// fill the queue deterministically and pin the shedding boundary.
  std::function<void(const RewriteRequest &)> BeforeProcess;
};

class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();

  /// Loads and lint-preflights every named rule set. False (with \p Err)
  /// if any path is unreadable or malformed — the daemon refuses to start
  /// rather than serve a half-configured catalog.
  bool preload(std::string &Err);

  /// Starts the worker pool. Idempotent.
  void start();

  /// Closes the queue and joins the workers after they drain every
  /// admitted request. Idempotent.
  void stop();

  /// Serves one framed connection (read requests from \p InFd, write
  /// replies to \p OutFd) until clean EOF, a Shutdown frame, a fatal
  /// framing error, or \p Shutdown trips between frames. All admitted
  /// requests are drained to replies before this returns. Returns true
  /// when the connection ended cleanly (EOF/shutdown), false on a fatal
  /// framing error.
  bool serve(int InFd, int OutFd, const ShutdownFlag *Shutdown = nullptr);

  /// Processes one request synchronously, bypassing framing and the
  /// queue. This is the unit the workers run; tests call it directly.
  RewriteReply handle(const RewriteRequest &R);

  PlanCache &cache() { return Cache; }
  uint64_t served() const { return Served.load(); }
  uint64_t shed() const { return Shed.load(); }
  const ServerOptions &options() const { return Opts; }

private:
  /// One framed client connection: replies from multiple workers
  /// serialize on WriteMu; Pending counts admitted-but-unreplied requests
  /// so serve() can drain before returning.
  struct Connection {
    int OutFd = -1;
    std::mutex WriteMu;
    std::mutex PendingMu;
    std::condition_variable Drained;
    size_t Pending = 0;
    bool WriteFailed = false;

    void sendReply(std::string_view Body);
    void finishOne();
    void waitDrained();
  };

  struct Job {
    RewriteRequest Req;
    std::shared_ptr<Connection> Conn;
  };

  void workerLoop();

  ServerOptions Opts;
  PlanCache Cache;
  /// Name -> preloaded entry. Written by preload() before start(); read-
  /// only afterwards.
  std::vector<std::pair<std::string, std::shared_ptr<const CachedRuleSet>>>
      Named;
  RequestQueue<Job> Queue;
  std::vector<std::thread> Pool;
  std::mutex LifecycleMu;
  bool Running = false;
  std::atomic<bool> ShuttingDown{false};
  std::atomic<uint64_t> Served{0};
  std::atomic<uint64_t> Shed{0};
};

} // namespace pypm::server

#endif // PYPM_SERVER_SERVER_H
