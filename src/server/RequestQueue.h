//===- server/RequestQueue.h - Bounded admission queue ---------*- C++ -*-===//
///
/// \file
/// The daemon's admission-control primitive: a bounded MPMC queue whose
/// push never blocks and never grows the backlog past capacity. When the
/// queue is full, tryPush refuses — the server turns that refusal into a
/// machine-readable Overloaded reply (load shedding) instead of queuing
/// unboundedly and converting overload into latency collapse and OOM.
///
/// close() stops admission but lets consumers drain what was admitted:
/// pop() keeps returning queued items and only starts returning nullopt
/// once the queue is both closed and empty — exactly the graceful-drain
/// contract (every admitted request gets a reply, even during shutdown).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SERVER_REQUESTQUEUE_H
#define PYPM_SERVER_REQUESTQUEUE_H

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace pypm::server {

template <typename T> class RequestQueue {
public:
  explicit RequestQueue(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Admits \p Item unless the queue is full or closed. Never blocks.
  bool tryPush(T Item) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Closed || Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained
  /// (then returns nullopt, the consumer's signal to exit).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    return Item;
  }

  /// Stops admission; wakes every blocked consumer. Idempotent. Items
  /// already admitted stay poppable (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Closed;
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Items.size();
  }

  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace pypm::server

#endif // PYPM_SERVER_REQUESTQUEUE_H
