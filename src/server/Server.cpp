//===- server/Server.cpp - pypmd rewrite-as-a-service core ---------------===//

#include "server/Server.h"

#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "rewrite/RewriteEngine.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"

#include <fstream>
#include <sstream>

namespace pypm::server {

//===----------------------------------------------------------------------===//
// Connection
//===----------------------------------------------------------------------===//

void Server::Connection::sendReply(std::string_view Body) {
  std::lock_guard<std::mutex> Lock(WriteMu);
  if (WriteFailed)
    return; // peer is gone; keep draining without spamming EPIPE
  if (!writeFrame(OutFd, /*Request=*/false, Body))
    WriteFailed = true;
}

void Server::Connection::finishOne() {
  {
    std::lock_guard<std::mutex> Lock(PendingMu);
    --Pending;
  }
  Drained.notify_all();
}

void Server::Connection::waitDrained() {
  std::unique_lock<std::mutex> Lock(PendingMu);
  Drained.wait(Lock, [&] { return Pending == 0; });
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.Cache),
      Queue(Opts.QueueCapacity ? Opts.QueueCapacity : 1) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
}

Server::~Server() { stop(); }

bool Server::preload(std::string &Err) {
  for (const auto &[Name, Path] : Opts.NamedRuleSets) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      Err = "cannot open rule set '" + Name + "' at '" + Path + "'";
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Bytes = Buf.str();
    DiagnosticEngine Diags;
    CacheSource Src;
    std::shared_ptr<const CachedRuleSet> E = Cache.acquire(Bytes, Diags, Src);
    if (!E) {
      Err = "rule set '" + Name + "' (" + Path +
            ") failed to load:\n" + Diags.renderAll();
      return false;
    }
    Named.emplace_back(Name, std::move(E));
  }
  return true;
}

void Server::start() {
  std::lock_guard<std::mutex> Lock(LifecycleMu);
  if (Running)
    return;
  Running = true;
  for (unsigned I = 0; I != Opts.Workers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
}

void Server::stop() {
  std::lock_guard<std::mutex> Lock(LifecycleMu);
  Queue.close();
  for (std::thread &T : Pool)
    T.join();
  Pool.clear();
  Running = false;
}

void Server::workerLoop() {
  while (std::optional<Job> J = Queue.pop()) {
    if (Opts.BeforeProcess)
      Opts.BeforeProcess(J->Req);
    RewriteReply Rep = handle(J->Req);
    J->Conn->sendReply(encodeRewriteReply(Rep));
    Served.fetch_add(1);
    J->Conn->finishOne();
  }
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

RewriteReply Server::handle(const RewriteRequest &R) {
  RewriteReply Rep;
  Rep.Seq = R.Seq;

  // Resolve the rule set: preloaded catalog or inline bytes via the cache.
  std::shared_ptr<const CachedRuleSet> E;
  CacheSource Src = CacheSource::Memory;
  if (R.NamedRuleSet) {
    for (const auto &[Name, Entry] : Named)
      if (Name == R.RuleSet) {
        E = Entry;
        break;
      }
    if (!E) {
      Rep.Status = ServerStatus::RuleSetUnreadable;
      Rep.Message = "unknown rule set '" + R.RuleSet + "'";
      return Rep;
    }
  } else {
    DiagnosticEngine LoadDiags;
    E = Cache.acquire(R.RuleSet, LoadDiags, Src);
    if (!E) {
      Rep.Status = ServerStatus::RuleSetMalformed;
      Rep.Message = LoadDiags.renderAll();
      return Rep;
    }
  }
  Rep.Cache = Src;

  // Lint preflight ran once at load; error findings refuse every request
  // against this rule set before any engine work.
  if (!E->Lint.clean()) {
    Rep.Status = ServerStatus::LintRejected;
    Rep.Message = E->Lint.renderAll();
    return Rep;
  }

  // Private signature copy: graph parsing may declare new operators, and
  // the cached plan's operator ids must stay valid for everyone else.
  term::Signature Sig = E->Sig;
  DiagnosticEngine Diags;
  std::unique_ptr<graph::Graph> G =
      graph::parseGraphText(R.GraphText, Sig, Diags);
  if (!G) {
    Rep.Status = ServerStatus::GraphMalformed;
    Rep.Message = Diags.renderAll();
    return Rep;
  }

  rewrite::RewriteOptions EOpts;
  EOpts.NumThreads = R.Threads;
  switch (R.Matcher) {
  case 1:
    EOpts.Matcher = rewrite::MatcherKind::Machine;
    break;
  case 2:
    EOpts.Matcher = rewrite::MatcherKind::Fast;
    break;
  case 4:
    EOpts.Matcher = rewrite::MatcherKind::PlanThreaded;
    break;
  case 5:
    EOpts.Matcher = rewrite::MatcherKind::PlanAot;
    break;
  default: // 0 (daemon default) and 3: the cached, shared MatchPlan
    EOpts.Matcher = rewrite::MatcherKind::Plan;
    break;
  }
  if (rewrite::planFamily(EOpts.matcher())) {
    EOpts.PrecompiledPlan = &E->prog();
    EOpts.PrecompiledThreaded = E->threaded(); // decode-once per entry
    // Fourth cache tier: the validated emitted library, when the cache
    // built one. Null (tier off, no compiler, build failed) is fine — the
    // engine re-validates and demotes PlanAot to the interpreter with a
    // warning rather than failing the request.
    EOpts.AotLib = E->aotLib();
  }
  EOpts.Incremental = R.Incremental;
  EOpts.Batch = R.Batch;
  if (R.MaxRewrites)
    EOpts.MaxRewrites = R.MaxRewrites;
  // Cost-directed commit selection; zero-valued knobs keep the engine
  // defaults (so Search=beam with all-zero knobs means width 4, depth 1).
  EOpts.Search = static_cast<rewrite::SearchStrategy>(R.Search);
  if (R.BeamWidth)
    EOpts.BeamWidth = R.BeamWidth;
  if (R.Lookahead)
    EOpts.Lookahead = R.Lookahead;
  if (R.SearchWitnesses)
    EOpts.SearchWitnesses = R.SearchWitnesses;
  EOpts.Diags = &Diags;

  // Per-request governance: a fresh budget and cancellation token — this
  // request can only exhaust itself.
  CancellationToken Cancel;
  BudgetLimits Limits;
  Limits.DeadlineSeconds = static_cast<double>(R.DeadlineMicros) / 1e6;
  Limits.MaxTotalSteps = R.MaxSteps;
  Limits.MaxTotalMuUnfolds = R.MaxMuUnfolds;
  Limits.Cancel = &Cancel;
  Budget Bgt(Limits);
  EOpts.EngineBudget = &Bgt;

  // Per-request deterministic fault injection (the PYPM_FAULT site
  // harness, armed for this run only).
  FaultInjector::Config FC;
  FC.SiteSeed = R.FaultSiteSeed;
  FC.SitePeriod = R.FaultSitePeriod;
  FaultInjector FI(FC);
  if (R.FaultSitePeriod != 0)
    EOpts.Faults = &FI;

  std::vector<std::string> Pre;
  if (Opts.StickyQuarantine) {
    Pre = E->quarantineSnapshot();
    if (!Pre.empty())
      EOpts.PreQuarantined = &Pre;
  }

  rewrite::RewriteStats Stats = rewrite::rewriteToFixpoint(
      *G, E->rules(), graph::ShapeInference(), EOpts);

  if (Opts.StickyQuarantine && !Stats.Status.QuarantinedPatterns.empty())
    E->noteQuarantined(Stats.Status.QuarantinedPatterns);

  Rep.Status = ServerStatus::Ok;
  Rep.EngineCode = static_cast<uint8_t>(Stats.Status.Code);
  Rep.Reason = static_cast<uint8_t>(Stats.Status.Reason);
  Rep.FaultsAbsorbed = Stats.Status.FaultsAbsorbed;
  Rep.Quarantined = Stats.Status.QuarantinedPatterns;
  Rep.Passes = Stats.Passes;
  Rep.Fired = Stats.TotalFired;
  Rep.Matches = Stats.TotalMatches;
  Rep.LiveNodes = G->numLiveNodes();
  Rep.Message = Diags.renderAll();
  Rep.GraphText = graph::writeGraphText(*G);
  return Rep;
}

//===----------------------------------------------------------------------===//
// Frame loop
//===----------------------------------------------------------------------===//

bool Server::serve(int InFd, int OutFd, const ShutdownFlag *Shutdown) {
  start();
  auto Conn = std::make_shared<Connection>();
  Conn->OutFd = OutFd;

  bool Clean = true;
  bool SendShutdownReply = false;
  uint64_t ShutdownSeq = 0;

  for (;;) {
    std::string Body;
    FrameStatus FS = readFrame(InFd, /*Request=*/true, Body, Shutdown);
    if (FS == FrameStatus::Eof || FS == FrameStatus::Interrupted)
      break;
    if (FS == FrameStatus::BadChecksum) {
      // Body corruption: the header authenticated bodyLen, so exactly one
      // frame was consumed and the stream is in sync. Tell the client and
      // keep serving (Seq is unknowable — the body is untrusted).
      RewriteReply Bad;
      Bad.Status = ServerStatus::MalformedRequest;
      Bad.Message = "frame body checksum mismatch";
      Conn->sendReply(encodeRewriteReply(Bad));
      continue;
    }
    if (isFatalFrameStatus(FS)) {
      // Header corruption / truncation / not-our-protocol: the frame
      // boundary is gone; no reply can be trusted to land on a frame edge
      // the client agrees on. Drain what was admitted, close cleanly.
      Clean = false;
      break;
    }

    std::optional<FrameType> FT = frameType(Body);
    if (!FT || *FT == FrameType::RewriteReply || *FT == FrameType::PingReply ||
        *FT == FrameType::ShutdownReply) {
      RewriteReply Bad;
      Bad.Status = ServerStatus::MalformedRequest;
      Bad.Message = "unknown or misdirected frame type";
      Conn->sendReply(encodeRewriteReply(Bad));
      continue;
    }

    if (*FT == FrameType::PingRequest) {
      uint64_t Seq = 0;
      if (decodeSeqOnly(Body, FrameType::PingRequest, Seq))
        Conn->sendReply(encodePingReply(Seq));
      continue;
    }

    if (*FT == FrameType::ShutdownRequest) {
      decodeSeqOnly(Body, FrameType::ShutdownRequest, ShutdownSeq);
      ShuttingDown.store(true);
      SendShutdownReply = true;
      break;
    }

    // RewriteRequest.
    RewriteRequest Req;
    std::string Err;
    if (!decodeRewriteRequest(Body, Req, Err)) {
      RewriteReply Bad;
      Bad.Status = ServerStatus::MalformedRequest;
      Bad.Message = "malformed rewrite request: " + Err;
      Conn->sendReply(encodeRewriteReply(Bad));
      continue;
    }
    if (ShuttingDown.load()) {
      RewriteReply Refused;
      Refused.Seq = Req.Seq;
      Refused.Status = ServerStatus::ShuttingDown;
      Conn->sendReply(encodeRewriteReply(Refused));
      continue;
    }

    {
      std::lock_guard<std::mutex> Lock(Conn->PendingMu);
      ++Conn->Pending;
    }
    uint64_t Seq = Req.Seq;
    if (!Queue.tryPush(Job{std::move(Req), Conn})) {
      // Admission refused: shed with a machine-readable status instead of
      // queuing unboundedly. The request was never admitted, so this does
      // not count against the drain guarantee.
      Conn->finishOne();
      Shed.fetch_add(1);
      RewriteReply Refused;
      Refused.Seq = Seq;
      Refused.Status = Queue.closed() ? ServerStatus::ShuttingDown
                                      : ServerStatus::Overloaded;
      Conn->sendReply(encodeRewriteReply(Refused));
    }
  }

  // Drain: every admitted request completes and gets its reply written
  // before the connection (and on shutdown, the server) goes away.
  Conn->waitDrained();
  if (SendShutdownReply) {
    ShutdownReply SR;
    SR.Seq = ShutdownSeq;
    SR.Served = Served.load();
    SR.Shed = Shed.load();
    Conn->sendReply(encodeShutdownReply(SR));
  }
  return Clean;
}

} // namespace pypm::server
