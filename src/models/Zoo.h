//===- models/Zoo.h - Named model suites ------------------------*- C++ -*-===//
///
/// \file
/// The two benchmark suites of §4.1 as named, deterministic model
/// registries: an HF-like suite of transformer encoders (spanning the
/// GELU/scale spelling variants, widths, and depths found across
/// HuggingFace checkpoints) and a TV-like suite of CNNs. Every suite entry
/// builds the same graph on every run.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MODELS_ZOO_H
#define PYPM_MODELS_ZOO_H

#include "models/Transformers.h"
#include "models/Vision.h"

#include <functional>
#include <vector>

namespace pypm::models {

struct ModelEntry {
  std::string Name;
  std::function<std::unique_ptr<graph::Graph>(term::Signature &)> Build;
};

/// ~24 transformer configurations (bert/gpt2/roberta/distil-style sizes ×
/// spelling variants).
std::vector<ModelEntry> hfSuite();

/// ~20 CNN configurations (VGG/ResNet-style depths × widths).
std::vector<ModelEntry> tvSuite();

} // namespace pypm::models

#endif // PYPM_MODELS_ZOO_H
