//===- models/Vision.cpp - TorchVision-like model generator -------------------===//

#include "models/Vision.h"

#include "graph/ShapeInference.h"
#include "models/Transformers.h" // declareModelOps

using namespace pypm;
using namespace pypm::models;
using graph::Graph;
using graph::NodeId;
using graph::TensorType;

namespace {

class VisionBuilder {
public:
  VisionBuilder(Graph &G, const VisionConfig &Cfg)
      : G(G), Sig(G.signature()), Cfg(Cfg) {}

  NodeId op(std::string_view Name, std::initializer_list<NodeId> Inputs,
            std::vector<term::Attr> Attrs = {}) {
    return G.addNode(Sig.lookup(Name), Inputs, std::move(Attrs));
  }

  NodeId convWeight(int64_t OutC, int64_t InC, int64_t K) {
    return G.addLeaf("Weight", TensorType{Cfg.Dtype, {OutC, InC, K, K}});
  }

  /// Conv3x3 (+ optional BN) + BiasAdd + ReLU — the canonical epilog
  /// opportunity in vision models.
  NodeId convBlock(NodeId X, int64_t InC, int64_t OutC, int64_t Stride = 1) {
    std::vector<term::Attr> Attrs{{Symbol::intern("stride"), Stride},
                                  {Symbol::intern("pad"), 1}};
    NodeId C = op("Conv2D", {X, convWeight(OutC, InC, 3)}, std::move(Attrs));
    if (Cfg.BatchNormAfterConv)
      C = op("BatchNorm", {C});
    NodeId Bias = G.addLeaf("Weight", TensorType{Cfg.Dtype, {OutC, 1, 1}});
    NodeId B = op("BiasAdd", {C, Bias});
    return op("Relu", {B});
  }

  NodeId residualBlock(NodeId X, int64_t C) {
    NodeId Y = convBlock(X, C, C);
    std::vector<term::Attr> Attrs{{Symbol::intern("stride"), int64_t(1)},
                                  {Symbol::intern("pad"), int64_t(1)}};
    NodeId Conv2 = op("Conv2D", {Y, convWeight(C, C, 3)}, std::move(Attrs));
    if (Cfg.BatchNormAfterConv)
      Conv2 = op("BatchNorm", {Conv2});
    NodeId Bias = G.addLeaf("Weight", TensorType{Cfg.Dtype, {C, 1, 1}});
    NodeId B = op("BiasAdd", {Conv2, Bias});
    return op("Relu", {op("Add", {B, X})});
  }

  NodeId pool(NodeId X) {
    return op("MaxPool", {X},
              {{Symbol::intern("k"), int64_t(2)},
               {Symbol::intern("stride"), int64_t(2)}});
  }

  NodeId classifier(NodeId X, int64_t InFeatures) {
    NodeId F = op("Flatten", {X});
    if (Cfg.ClassifierHidden > 0) {
      NodeId W1 =
          G.addLeaf("Weight", TensorType{Cfg.Dtype,
                                         {InFeatures, Cfg.ClassifierHidden}});
      NodeId H = op("MatMul", {F, W1});
      NodeId B1 = G.addLeaf(
          "Weight", TensorType{Cfg.Dtype, {Cfg.ClassifierHidden}});
      H = op("Relu", {op("BiasAdd", {H, B1})});
      NodeId W2 = G.addLeaf(
          "Weight",
          TensorType{Cfg.Dtype, {Cfg.ClassifierHidden, Cfg.Classes}});
      return op("MatMul", {H, W2});
    }
    NodeId W = G.addLeaf(
        "Weight", TensorType{Cfg.Dtype, {InFeatures, Cfg.Classes}});
    return op("MatMul", {F, W});
  }

private:
  Graph &G;
  term::Signature &Sig;
  const VisionConfig &Cfg;
};

} // namespace

std::unique_ptr<Graph>
pypm::models::buildVisionModel(term::Signature &Sig,
                               const VisionConfig &Cfg) {
  declareModelOps(Sig);
  auto G = std::make_unique<Graph>(Sig);
  VisionBuilder B(*G, Cfg);

  NodeId X = G->addLeaf(
      "Input",
      TensorType{Cfg.Dtype, {Cfg.Batch, 3, Cfg.ImageSize, Cfg.ImageSize}});

  int64_t Channels = Cfg.BaseChannels;
  X = B.convBlock(X, 3, Channels);
  int64_t Spatial = Cfg.ImageSize;

  for (size_t Stage = 0; Stage != Cfg.StageDepths.size(); ++Stage) {
    int Depth = Cfg.StageDepths[Stage];
    if (Cfg.Kind == VisionConfig::Family::Vgg) {
      for (int I = 0; I != Depth; ++I)
        X = B.convBlock(X, Channels, Channels);
    } else {
      for (int I = 0; I != Depth; ++I)
        X = B.residualBlock(X, Channels);
    }
    X = B.pool(X);
    Spatial /= 2;
    if (Stage + 1 != Cfg.StageDepths.size()) {
      // Channel doubling between stages.
      X = B.convBlock(X, Channels, Channels * 2);
      Channels *= 2;
    }
  }

  int64_t Features = Channels * Spatial * Spatial;
  X = B.classifier(X, Features);
  G->addOutput(X);

  graph::ShapeInference SI;
  DiagnosticEngine Diags;
  SI.inferAll(*G, &Diags);
  return G;
}
