//===- models/Transformers.cpp - HF-like transformer generator ----------------===//

#include "models/Transformers.h"

#include "graph/ShapeInference.h"

#include <cmath>

using namespace pypm;
using namespace pypm::models;
using graph::Graph;
using graph::NodeId;
using graph::TensorType;
using term::DType;

void pypm::models::declareModelOps(term::Signature &Sig) {
  auto Decl = [&](std::string_view Name, unsigned Arity,
                  std::string_view Class) {
    Sig.getOrAddOp(Name, Arity, 1, Class);
  };
  // Leaves.
  Decl("Input", 0, "leaf");
  Decl("Weight", 0, "leaf");
  if (!Sig.lookup("Const").isValid())
    Sig.addOp("Const", 0, 1, "const", {Symbol::intern("value_u6")});
  // Linear algebra & movement.
  Decl("MatMul", 2, "matmul");
  Decl("Trans", 1, "movement");
  // Elementwise.
  Decl("Add", 2, "binary_pointwise");
  Decl("Sub", 2, "binary_pointwise");
  Decl("Mul", 2, "binary_pointwise");
  Decl("Div", 2, "binary_pointwise");
  Decl("BiasAdd", 2, "binary_pointwise");
  Decl("Relu", 1, "unary_pointwise");
  Decl("Gelu", 1, "unary_pointwise");
  Decl("Erf", 1, "unary_pointwise");
  Decl("Tanh", 1, "unary_pointwise");
  Decl("Sigmoid", 1, "unary_pointwise");
  Decl("Exp", 1, "unary_pointwise");
  Decl("Sqrt", 1, "unary_pointwise");
  Decl("Neg", 1, "unary_pointwise");
  // Normalization.
  Decl("Softmax", 1, "normalization");
  Decl("LayerNorm", 1, "normalization");
  Decl("BatchNorm", 1, "unary_pointwise");
  // Vision.
  if (!Sig.lookup("Conv2D").isValid())
    Sig.addOp("Conv2D", 2, 1, "conv",
              {Symbol::intern("stride"), Symbol::intern("pad")});
  if (!Sig.lookup("MaxPool").isValid())
    Sig.addOp("MaxPool", 1, 1, "pool",
              {Symbol::intern("k"), Symbol::intern("stride")});
  if (!Sig.lookup("AvgPool").isValid())
    Sig.addOp("AvgPool", 1, 1, "pool",
              {Symbol::intern("k"), Symbol::intern("stride")});
  Decl("GlobalAvgPool", 1, "pool");
  Decl("Flatten", 1, "movement");
  if (!Sig.lookup("Reshape").isValid())
    Sig.addOp("Reshape", 1, 1, "movement",
              {Symbol::intern("d0"), Symbol::intern("d1"),
               Symbol::intern("d2"), Symbol::intern("d3")});
  // Fused kernels introduced by the optimization rules.
  Decl("FMHA", 3, "fused_kernel");
  Decl("FMHAMasked", 4, "fused_kernel");
  if (!Sig.lookup("GemmEpilog").isValid())
    Sig.addOp("GemmEpilog", 2, 1, "fused_kernel", {Symbol::intern("act")});
  if (!Sig.lookup("GemmBiasEpilog").isValid())
    Sig.addOp("GemmBiasEpilog", 3, 1, "fused_kernel",
              {Symbol::intern("act")});
  if (!Sig.lookup("ConvEpilog").isValid())
    Sig.addOp("ConvEpilog", 3, 1, "fused_kernel",
              {Symbol::intern("act"), Symbol::intern("stride"),
               Symbol::intern("pad")});
  Decl("cublasMM_xyT_f32", 2, "fused_kernel");
  Decl("cublasMM_xyT_i8", 2, "fused_kernel");
}

namespace {

class TransformerBuilder {
public:
  TransformerBuilder(Graph &G, const TransformerConfig &Cfg)
      : G(G), Sig(G.signature()), Cfg(Cfg) {}

  NodeId op(std::string_view Name, std::initializer_list<NodeId> Inputs) {
    return G.addNode(Sig.lookup(Name), Inputs);
  }

  NodeId weight(int64_t Rows, int64_t Cols) {
    return G.addLeaf("Weight",
                     TensorType{Cfg.Dtype, {Rows, Cols}});
  }
  NodeId biasVec(int64_t N) {
    return G.addLeaf("Weight", TensorType{Cfg.Dtype, {N}});
  }

  /// GELU(x) per Fig. 2: Mul(Half(x), Add(1, Erf(Div(x, √2)))).
  NodeId gelu(NodeId X) {
    NodeId Half;
    if (Cfg.Half == TransformerConfig::HalfStyle::DivTwo)
      Half = op("Div", {X, G.addConst(2.0, Cfg.Dtype)});
    else
      Half = op("Mul", {X, G.addConst(0.5, Cfg.Dtype)});
    NodeId Inner = op("Div", {X, G.addConst(std::sqrt(2.0), Cfg.Dtype)});
    NodeId ErfN = op("Erf", {Inner});
    NodeId OnePlus = op("Add", {G.addConst(1.0, Cfg.Dtype), ErfN});
    return op("Mul", {Half, OnePlus});
  }

  /// One encoder layer on [B, S, D].
  NodeId layer(NodeId X) {
    int64_t D = Cfg.Hidden;
    // Attention projections (bias omitted in projections: frontends fold
    // them or they appear as BiasAdd; keeping projections lean keeps the
    // MHA subgraph exactly "three matmuls, a transpose, a softmax").
    NodeId Q = op("MatMul", {X, weight(D, D)});
    NodeId K = op("MatMul", {X, weight(D, D)});
    NodeId V = op("MatMul", {X, weight(D, D)});
    NodeId Scores = op("MatMul", {Q, op("Trans", {K})});
    double SqrtD = std::sqrt(static_cast<double>(D));
    NodeId Scaled;
    if (Cfg.Scale == TransformerConfig::ScaleStyle::DivSqrtD)
      Scaled = op("Div", {Scores, G.addConst(SqrtD, Cfg.Dtype)});
    else
      Scaled = op("Mul", {Scores, G.addConst(1.0 / SqrtD, Cfg.Dtype)});
    if (Cfg.AttentionMask) {
      // Additive attention mask, as decoder/padded-batch frontends emit.
      NodeId Mask = G.addLeaf(
          "Input", TensorType{Cfg.Dtype,
                              {Cfg.Batch, Cfg.SeqLen, Cfg.SeqLen}});
      Scaled = op("Add", {Scaled, Mask});
    }
    NodeId Probs = op("Softmax", {Scaled});
    NodeId Attn = op("MatMul", {Probs, V});
    NodeId Out = op("MatMul", {Attn, weight(D, D)});
    NodeId Res1 = op("LayerNorm", {op("Add", {X, Out})});

    // FFN.
    NodeId H = op("MatMul", {Res1, weight(D, Cfg.FfnHidden)});
    if (Cfg.FfnBias)
      H = op("BiasAdd", {H, biasVec(Cfg.FfnHidden)});
    NodeId Act = Cfg.Activation == TransformerConfig::Act::GeluDecomposed
                     ? gelu(H)
                     : op("Relu", {H});
    NodeId Y = op("MatMul", {Act, weight(Cfg.FfnHidden, D)});
    if (Cfg.FfnBias)
      Y = op("BiasAdd", {Y, biasVec(D)});
    return op("LayerNorm", {op("Add", {Res1, Y})});
  }

private:
  Graph &G;
  term::Signature &Sig;
  const TransformerConfig &Cfg;
};

} // namespace

std::unique_ptr<Graph>
pypm::models::buildVit(term::Signature &Sig, const VitConfig &Cfg) {
  declareModelOps(Sig);
  auto G = std::make_unique<Graph>(Sig);
  TransformerConfig Enc = Cfg.Encoder;
  int64_t Patches = (Cfg.ImageSize / Cfg.PatchSize);
  Enc.SeqLen = static_cast<int>(Patches * Patches);
  Enc.Batch = Cfg.Batch;

  // Patch embedding: a strided conv producing Hidden channels per patch,
  // ReLU'd (an epilog opportunity), flattened into [B, S·D] and projected
  // to the sequence layout via the shape-preserving LayerNorm entry.
  NodeId Img = G->addLeaf(
      "Input", TensorType{Enc.Dtype,
                          {Cfg.Batch, 3, Cfg.ImageSize, Cfg.ImageSize}});
  NodeId PatchW = G->addLeaf(
      "Weight", TensorType{Enc.Dtype,
                           {Enc.Hidden, 3, Cfg.PatchSize, Cfg.PatchSize}});
  NodeId Conv = G->addNode(
      Sig.lookup("Conv2D"), {Img, PatchW},
      {{Symbol::intern("stride"), Cfg.PatchSize},
       {Symbol::intern("pad"), 0}});
  NodeId Bias = G->addLeaf("Weight", TensorType{Enc.Dtype,
                                                {Enc.Hidden, 1, 1}});
  NodeId Embedded = G->addNode(
      Sig.lookup("Relu"),
      {G->addNode(Sig.lookup("BiasAdd"), {Conv, Bias})});
  // [B, D, P, P] → [B, S, D] patch sequence (metadata-only relayout), plus
  // learned position embeddings.
  NodeId Tokens = G->addNode(
      Sig.lookup("Reshape"), {Embedded},
      {{Symbol::intern("d0"), Cfg.Batch},
       {Symbol::intern("d1"), static_cast<int64_t>(Enc.SeqLen)},
       {Symbol::intern("d2"), static_cast<int64_t>(Enc.Hidden)}});
  NodeId Pos = G->addLeaf(
      "Weight",
      TensorType{Enc.Dtype, {Cfg.Batch, Enc.SeqLen, Enc.Hidden}});
  NodeId X = G->addNode(Sig.lookup("Add"), {Pos, Tokens});

  TransformerBuilder B(*G, Enc);
  for (int L = 0; L != Enc.Layers; ++L)
    X = B.layer(X);
  G->addOutput(X);
  graph::ShapeInference SI;
  SI.inferAll(*G);
  return G;
}

std::unique_ptr<Graph>
pypm::models::buildTransformer(term::Signature &Sig,
                               const TransformerConfig &Cfg) {
  declareModelOps(Sig);
  auto G = std::make_unique<Graph>(Sig);
  NodeId X = G->addLeaf(
      "Input", TensorType{Cfg.Dtype, {Cfg.Batch, Cfg.SeqLen, Cfg.Hidden}});
  TransformerBuilder B(*G, Cfg);
  for (int L = 0; L != Cfg.Layers; ++L)
    X = B.layer(X);
  G->addOutput(X);
  graph::ShapeInference SI;
  SI.inferAll(*G);
  return G;
}
