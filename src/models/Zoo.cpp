//===- models/Zoo.cpp - Named model suites -------------------------------------===//

#include "models/Zoo.h"

using namespace pypm;
using namespace pypm::models;

namespace {

ModelEntry transformerEntry(TransformerConfig Cfg) {
  ModelEntry E;
  E.Name = Cfg.Name;
  E.Build = [Cfg](term::Signature &Sig) {
    return buildTransformer(Sig, Cfg);
  };
  return E;
}

ModelEntry visionEntry(VisionConfig Cfg) {
  ModelEntry E;
  E.Name = Cfg.Name;
  E.Build = [Cfg](term::Signature &Sig) {
    return buildVisionModel(Sig, Cfg);
  };
  return E;
}

TransformerConfig hf(std::string Name, int Layers, int Hidden, int Seq,
                     TransformerConfig::HalfStyle Half,
                     TransformerConfig::ScaleStyle Scale,
                     TransformerConfig::Act Act, bool Bias = true,
                     int Batch = 8) {
  TransformerConfig C;
  C.Name = std::move(Name);
  C.Layers = Layers;
  C.Hidden = Hidden;
  C.FfnHidden = Hidden * 4;
  C.SeqLen = Seq;
  C.Batch = Batch;
  C.Half = Half;
  C.Scale = Scale;
  C.Activation = Act;
  C.FfnBias = Bias;
  return C;
}

} // namespace

std::vector<ModelEntry> pypm::models::hfSuite() {
  using HS = TransformerConfig::HalfStyle;
  using SS = TransformerConfig::ScaleStyle;
  using Act = TransformerConfig::Act;
  std::vector<ModelEntry> Suite;
  auto AddT = [&Suite](TransformerConfig C) {
    Suite.push_back(transformerEntry(std::move(C)));
  };

  // BERT family: GELU with Div(x, 2), Div-by-sqrt(d) scaling.
  AddT(hf("bert-tiny", 2, 128, 128, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed));
  AddT(hf("bert-mini", 4, 256, 128, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed));
  AddT(hf("bert-small", 4, 512, 128, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed));
  AddT(hf("bert-medium", 8, 512, 128, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed));
  AddT(hf("bert-base", 12, 768, 128, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed));
  AddT(hf("bert-large", 24, 1024, 128, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed, true, 4));
  // RoBERTa family: same skeleton, Mul(x, 0.5) GELU spelling.
  AddT(hf("roberta-base", 12, 768, 128, HS::MulHalf, SS::DivSqrtD, Act::GeluDecomposed));
  AddT(hf("roberta-large", 24, 1024, 128, HS::MulHalf, SS::DivSqrtD, Act::GeluDecomposed, true, 4));
  // DistilBERT: shallower, biasless FFN.
  AddT(hf("distilbert", 6, 768, 128, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed, false));
  AddT(hf("distilroberta", 6, 768, 128, HS::MulHalf, SS::DivSqrtD, Act::GeluDecomposed, false));
  // GPT-2 family: Mul-by-1/sqrt(d) scaling, Mul-half GELU, longer context.
  AddT(hf("gpt2-small", 12, 768, 256, HS::MulHalf, SS::MulInvSqrtD, Act::GeluDecomposed, true, 4));
  AddT(hf("gpt2-medium", 24, 1024, 256, HS::MulHalf, SS::MulInvSqrtD, Act::GeluDecomposed, true, 2));
  AddT(hf("gpt2-large", 36, 1280, 256, HS::MulHalf, SS::MulInvSqrtD, Act::GeluDecomposed, true, 1));
  // ELECTRA-ish small models.
  AddT(hf("electra-small", 12, 256, 128, HS::DivTwo, SS::MulInvSqrtD, Act::GeluDecomposed));
  AddT(hf("electra-base", 12, 768, 128, HS::DivTwo, SS::MulInvSqrtD, Act::GeluDecomposed));
  // ALBERT-ish: narrow FFN-heavy.
  AddT(hf("albert-base", 12, 768, 128, HS::MulHalf, SS::DivSqrtD, Act::GeluDecomposed, false));
  // ReLU transformers (original "Attention is All You Need" style): the
  // GELU rewrite finds nothing here, the plain epilog rewrite everything.
  AddT(hf("vanilla-relu-small", 6, 512, 128, HS::DivTwo, SS::DivSqrtD, Act::Relu));
  AddT(hf("vanilla-relu-base", 12, 512, 128, HS::DivTwo, SS::DivSqrtD, Act::Relu));
  AddT(hf("t5ish-relu", 12, 768, 128, HS::DivTwo, SS::MulInvSqrtD, Act::Relu, false));
  // Long-context variants: attention-dominant, FMHA shines.
  AddT(hf("bert-base-512", 12, 768, 512, HS::DivTwo, SS::DivSqrtD, Act::GeluDecomposed, true, 2));
  AddT(hf("roberta-base-512", 12, 768, 512, HS::MulHalf, SS::DivSqrtD, Act::GeluDecomposed, true, 2));
  AddT(hf("gpt2-small-1k", 12, 768, 1024, HS::MulHalf, SS::MulInvSqrtD, Act::GeluDecomposed, true, 1));
  // Wide-FFN variants: GEMM-dominant, epilog fusion matters relatively more.
  {
    TransformerConfig C = hf("ffn-heavy-base", 12, 768, 128, HS::DivTwo,
                             SS::DivSqrtD, Act::GeluDecomposed);
    C.FfnHidden = 768 * 8;
    AddT(C);
  }
  {
    TransformerConfig C = hf("ffn-heavy-relu", 12, 768, 128, HS::DivTwo,
                             SS::DivSqrtD, Act::Relu);
    C.FfnHidden = 768 * 8;
    AddT(C);
  }
  // Masked-attention variants (decoder / padded-batch spelling): the
  // masked MHA alternate and FMHAMasked kernel handle these.
  {
    TransformerConfig C = hf("bert-base-masked", 12, 768, 128, HS::DivTwo,
                             SS::DivSqrtD, Act::GeluDecomposed);
    C.AttentionMask = true;
    AddT(C);
  }
  {
    TransformerConfig C = hf("gpt2-small-causal", 12, 768, 256, HS::MulHalf,
                             SS::MulInvSqrtD, Act::GeluDecomposed, true, 4);
    C.AttentionMask = true;
    AddT(C);
  }
  // ViT-style hybrids: conv patch embedding + transformer encoder; both
  // the FMHA and the Conv/GEMM epilog rewrites apply in one model.
  auto AddVit = [&Suite](std::string Name, int Layers, int Hidden,
                         int Image, int Patch) {
    VitConfig C;
    C.Name = Name;
    C.ImageSize = Image;
    C.PatchSize = Patch;
    C.Batch = 4;
    C.Encoder = TransformerConfig();
    C.Encoder.Name = Name;
    C.Encoder.Layers = Layers;
    C.Encoder.Hidden = Hidden;
    C.Encoder.FfnHidden = Hidden * 4;
    ModelEntry E;
    E.Name = C.Name;
    E.Build = [C](term::Signature &Sig) { return buildVit(Sig, C); };
    Suite.push_back(std::move(E));
  };
  AddVit("vit-tiny", 4, 192, 224, 16);
  AddVit("vit-small", 8, 384, 224, 16);
  return Suite;
}

std::vector<ModelEntry> pypm::models::tvSuite() {
  using Fam = VisionConfig::Family;
  std::vector<ModelEntry> Suite;
  auto AddV = [&Suite](std::string Name, Fam Kind, std::vector<int> Depths,
                       int Base, bool BN, int Image = 224, int Batch = 16,
                       int ClsHidden = 4096) {
    VisionConfig C;
    C.Name = std::move(Name);
    C.Kind = Kind;
    C.StageDepths = std::move(Depths);
    C.BaseChannels = Base;
    C.BatchNormAfterConv = BN;
    C.ImageSize = Image;
    C.Batch = Batch;
    C.ClassifierHidden = ClsHidden;
    Suite.push_back(visionEntry(std::move(C)));
  };

  AddV("vgg11ish", Fam::Vgg, {1, 1, 2, 2}, 64, false);
  AddV("vgg13ish", Fam::Vgg, {2, 2, 2, 2}, 64, false);
  AddV("vgg16ish", Fam::Vgg, {2, 2, 3, 3}, 64, false);
  AddV("vgg19ish", Fam::Vgg, {2, 2, 4, 4}, 64, false);
  AddV("vgg16ish-bn", Fam::Vgg, {2, 2, 3, 3}, 64, true);
  AddV("vgg-narrow", Fam::Vgg, {2, 2, 3, 3}, 32, false);
  AddV("vgg-wide", Fam::Vgg, {2, 2, 3, 3}, 96, false, 224, 8);
  AddV("resnet10ish", Fam::ResNet, {1, 1, 1, 1}, 64, true);
  AddV("resnet18ish", Fam::ResNet, {2, 2, 2, 2}, 64, true);
  AddV("resnet34ish", Fam::ResNet, {3, 4, 6, 3}, 64, true);
  AddV("resnet18ish-nobn", Fam::ResNet, {2, 2, 2, 2}, 64, false);
  AddV("resnet-narrow", Fam::ResNet, {2, 2, 2, 2}, 32, true);
  AddV("resnet-wide", Fam::ResNet, {2, 2, 2, 2}, 96, true, 224, 8);
  AddV("tiny-cnn", Fam::Vgg, {1, 1}, 32, false, 64, 32, 512);
  AddV("small-cnn", Fam::Vgg, {1, 1, 1}, 48, false, 96, 32, 1024);
  AddV("mobile-ish", Fam::ResNet, {1, 2, 2, 1}, 32, true, 192, 16, 1024);
  AddV("vgg16ish-96", Fam::Vgg, {2, 2, 3, 3}, 64, false, 96, 32);
  AddV("resnet18ish-96", Fam::ResNet, {2, 2, 2, 2}, 64, true, 96, 32);
  AddV("vgg-linear-head", Fam::Vgg, {2, 2, 3, 3}, 64, false, 224, 16, 0);
  AddV("resnet-linear-head", Fam::ResNet, {2, 2, 2, 2}, 64, true, 224, 16, 0);
  return Suite;
}
