//===- models/Vision.h - TorchVision-like model generator -------*- C++ -*-===//
///
/// \file
/// Synthetic stand-in for the TorchVision benchmark suite (§4.1):
/// parametric builders for CNN inference graphs — VGG-style stacks,
/// ResNet-style residual blocks, and simple classifier heads. These models
/// are rich in Conv/GEMM + pointwise epilog opportunities and (by
/// construction, like real vision models) contain no multi-head attention,
/// which is why Fig. 11 shows FMHA-only speedups concentrated at 1.0×.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MODELS_VISION_H
#define PYPM_MODELS_VISION_H

#include "graph/Graph.h"

#include <memory>
#include <string>
#include <vector>

namespace pypm::models {

struct VisionConfig {
  std::string Name;
  enum class Family { Vgg, ResNet } Kind = Family::Vgg;
  int Batch = 16;
  int ImageSize = 224;
  int BaseChannels = 64;
  /// Convs per stage (VGG) or residual blocks per stage (ResNet).
  std::vector<int> StageDepths = {2, 2, 3, 3};
  /// Hidden width of the classifier MLP (0 = single linear).
  int ClassifierHidden = 4096;
  int Classes = 1000;
  term::DType Dtype = term::DType::F32;
  bool BatchNormAfterConv = false; ///< ResNet-style Conv→BN→ReLU
};

/// Builds the inference graph for one configuration.
std::unique_ptr<graph::Graph> buildVisionModel(term::Signature &Sig,
                                               const VisionConfig &Cfg);

} // namespace pypm::models

#endif // PYPM_MODELS_VISION_H
