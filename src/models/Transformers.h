//===- models/Transformers.h - HF-like transformer generator ----*- C++ -*-===//
///
/// \file
/// Synthetic stand-in for the HuggingFace transformers benchmark suite
/// (§4.1): parametric builders producing the inference graphs of
/// transformer encoders the way frontends actually emit them — multi-head
/// attention spelled out as "three matrix products, a transpose, and a
/// row-wise softmax", and GELU spelled out per Fig. 2, with the x/2 term
/// appearing as either Div(x, 2) or Mul(x, 0.5) depending on the model
/// (the Huggingface observation motivating pattern alternates, §2.1).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MODELS_TRANSFORMERS_H
#define PYPM_MODELS_TRANSFORMERS_H

#include "graph/Graph.h"

#include <memory>
#include <string>

namespace pypm::models {

struct TransformerConfig {
  std::string Name;
  int Layers = 12;
  int Hidden = 768;
  int FfnHidden = 3072;
  int SeqLen = 128;
  int Batch = 8;
  term::DType Dtype = term::DType::F32;

  /// How x/2 is spelled inside GELU (§2.1).
  enum class HalfStyle { DivTwo, MulHalf } Half = HalfStyle::DivTwo;
  /// How the attention scores are scaled by 1/√d.
  enum class ScaleStyle { DivSqrtD, MulInvSqrtD } Scale = ScaleStyle::DivSqrtD;
  /// FFN activation: decomposed GELU (Fig. 2) or plain ReLU.
  enum class Act { GeluDecomposed, Relu } Activation = Act::GeluDecomposed;
  /// Whether FFN matmuls carry explicit BiasAdd nodes.
  bool FfnBias = true;
  /// Whether attention scores carry an explicit additive mask (decoder /
  /// padded-batch spelling); matched by the masked MHA alternate.
  bool AttentionMask = false;
};

/// Declares the operator vocabulary shared by the model zoo, the shape
/// rules, the cost model, and the optimization patterns. Idempotent.
void declareModelOps(term::Signature &Sig);

/// Builds the inference graph for one configuration.
std::unique_ptr<graph::Graph> buildTransformer(term::Signature &Sig,
                                               const TransformerConfig &Cfg);

/// A ViT-style hybrid: convolutional patch embedding (Conv2D + BiasAdd +
/// activation + Flatten) feeding a transformer encoder. Exercises the FMHA
/// and both the GEMM- and Conv-epilog rewrites in a single model.
struct VitConfig {
  std::string Name;
  int ImageSize = 224;
  int PatchSize = 16;
  int Batch = 8;
  TransformerConfig Encoder; ///< Layers/Hidden/etc.; SeqLen is derived
};
std::unique_ptr<graph::Graph> buildVit(term::Signature &Sig,
                                       const VitConfig &Cfg);

} // namespace pypm::models

#endif // PYPM_MODELS_TRANSFORMERS_H
