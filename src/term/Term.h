//===- term/Term.h - Hash-consed ground terms ------------------*- C++ -*-===//
///
/// \file
/// Ground terms t ::= f(t1, …, tn) (paper Fig. 5), hash-consed in an arena.
///
/// Hash-consing gives O(1) structural equality (pointer identity), which is
/// exactly the term equality the algorithmic semantics consults in
/// ST-Match-Var-Conflict for nonlinear patterns.
///
/// Terms additionally carry an *attribute list*: sorted (Symbol, int64)
/// pairs. CorePyPM requires a fixed attribute set A with an interpretation
/// ⟦·⟧ : A → Term → ℤ (§3.2); we realize ⟦α⟧(t) as lookup in t's stored
/// attributes, falling back to a small set of built-ins (arity, size,
/// depth). Tensor-specific attributes (rank, dim0…, elt_type) are stored by
/// the graph→term adapter. Attributes participate in term identity: two
/// Add nodes with different shapes are different terms.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TERM_TERM_H
#define PYPM_TERM_TERM_H

#include "term/Signature.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pypm::term {

class TermArena;

/// One (Symbol, value) attribute pair.
struct Attr {
  Symbol Key;
  int64_t Value;

  friend bool operator==(const Attr &A, const Attr &B) {
    return A.Key == B.Key && A.Value == B.Value;
  }
};

/// An immutable, interned term. Created only by TermArena; compare with
/// pointer equality.
class Term {
public:
  OpId op() const { return Op; }
  std::span<const Term *const> children() const { return Children; }
  unsigned arity() const { return static_cast<unsigned>(Children.size()); }
  const Term *child(unsigned I) const {
    assert(I < Children.size() && "child index out of range");
    return Children[I];
  }

  std::span<const Attr> attrs() const { return Attrs; }

  /// Stored attribute lookup (no built-ins). See TermArena::attribute for
  /// the full ⟦α⟧ including built-ins.
  std::optional<int64_t> storedAttr(Symbol Key) const;

  /// Number of nodes in this term (counting shared subterms once per
  /// occurrence, i.e. tree size).
  uint64_t size() const { return TreeSize; }
  /// Height of the tree; leaves have depth 1.
  uint32_t depth() const { return TreeDepth; }

private:
  friend class TermArena;
  Term() = default;

  OpId Op;
  std::vector<const Term *> Children;
  std::vector<Attr> Attrs; // sorted by Key raw id
  uint64_t TreeSize = 1;
  uint32_t TreeDepth = 1;
  uint64_t HashValue = 0;
};

using TermRef = const Term *;

/// Owns and interns terms. All TermRefs remain valid for the arena's
/// lifetime.
class TermArena {
public:
  explicit TermArena(const Signature &Sig) : Sig(Sig) {}
  TermArena(const TermArena &) = delete;
  TermArena &operator=(const TermArena &) = delete;

  const Signature &signature() const { return Sig; }

  /// Interns f(Children) with the given attributes. Children size must equal
  /// the declared arity of \p Op. Attrs may be in any order; they are
  /// normalized (sorted by key). Duplicate keys are a programmer error.
  TermRef make(OpId Op, std::span<const TermRef> Children,
               std::span<const Attr> Attrs = {});

  /// Convenience overloads.
  TermRef make(OpId Op, std::initializer_list<TermRef> Children,
               std::initializer_list<Attr> Attrs = {});
  TermRef leaf(OpId Op, std::initializer_list<Attr> Attrs = {});

  /// The interpretation ⟦α⟧(t): stored attribute if present, else built-ins:
  ///   "arity" → number of children, "size" → tree size, "depth" → height,
  ///   "op_id" → raw operator index.
  /// Returns nullopt for unknown attributes.
  std::optional<int64_t> attribute(TermRef T, Symbol Key) const;

  /// Number of distinct interned terms.
  size_t numTerms() const { return AllTerms.size(); }

  /// Collects T and all transitive subterms, deduplicated, in a
  /// deterministic (post-)order. Useful for declarative-search candidate
  /// sets.
  static std::vector<TermRef> subterms(TermRef T);

  /// Renders a term as `Op[attr=v,…](children…)`; inverse of TermParser.
  static std::string toString(TermRef T, const Signature &Sig);
  std::string toString(TermRef T) const { return toString(T, Sig); }

private:
  struct Key {
    OpId Op;
    std::span<const TermRef> Children;
    std::span<const Attr> Attrs;
  };
  static uint64_t hashKey(const Key &K);
  static bool keyEquals(const Key &K, const Term *T);

  const Signature &Sig;
  std::vector<std::unique_ptr<Term>> AllTerms;
  // Open-addressed-ish bucket map from hash to candidate terms.
  std::unordered_multimap<uint64_t, Term *> Interned;
};

} // namespace pypm::term

#endif // PYPM_TERM_TERM_H
