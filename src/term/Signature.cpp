//===- term/Signature.cpp - Operator signatures Σ ------------------------===//

#include "term/Signature.h"

using namespace pypm;
using namespace pypm::term;

OpId Signature::addOp(std::string_view Name, unsigned Arity, unsigned Results,
                      std::string_view OpClass,
                      std::vector<Symbol> AttrNames) {
  Symbol Sym = Symbol::intern(Name);
  assert(ByName.find(Sym) == ByName.end() && "operator redeclared");
  OpInfo Info;
  Info.Name = Sym;
  Info.Arity = Arity;
  Info.Results = Results;
  Info.OpClass = OpClass.empty() ? Symbol() : Symbol::intern(OpClass);
  Info.AttrNames = std::move(AttrNames);
  Ops.push_back(std::move(Info));
  uint32_t Index = static_cast<uint32_t>(Ops.size() - 1);
  ByName.emplace(Sym, Index);
  return OpId(Index);
}

OpId Signature::lookup(std::string_view Name) const {
  return lookup(Symbol::intern(Name));
}

OpId Signature::lookup(Symbol Name) const {
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return OpId();
  return OpId(It->second);
}

OpId Signature::getOrAddOp(std::string_view Name, unsigned Arity,
                           unsigned Results, std::string_view OpClass) {
  if (OpId Existing = lookup(Name); Existing.isValid()) {
    assert(arity(Existing) == Arity && "operator arity mismatch");
    return Existing;
  }
  return addOp(Name, Arity, Results, OpClass);
}

std::vector<OpId> Signature::opsOfClass(Symbol Class) const {
  std::vector<OpId> Result;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Ops.size()); I != E; ++I)
    if (Ops[I].OpClass == Class)
      Result.push_back(OpId(I));
  return Result;
}
