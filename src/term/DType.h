//===- term/DType.h - Tensor element types ---------------------*- C++ -*-===//
///
/// \file
/// Element datatypes for tensor values. PyPM guard expressions compare
/// `x.elt_type` against these (Fig. 1's cuBLAS rule dispatches on f32 vs
/// i8); the DSL exposes them as the keywords f16/bf16/f32/f64/i8/i32.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TERM_DTYPE_H
#define PYPM_TERM_DTYPE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace pypm::term {

enum class DType : int64_t {
  F16 = 1,
  BF16 = 2,
  F32 = 3,
  F64 = 4,
  I8 = 5,
  I32 = 6,
};

/// Size of one element in bytes; used by the cost-model simulator.
inline unsigned dtypeBytes(DType T) {
  switch (T) {
  case DType::F16:
  case DType::BF16:
    return 2;
  case DType::F32:
  case DType::I32:
    return 4;
  case DType::F64:
    return 8;
  case DType::I8:
    return 1;
  }
  return 4;
}

inline std::string_view dtypeName(DType T) {
  switch (T) {
  case DType::F16:
    return "f16";
  case DType::BF16:
    return "bf16";
  case DType::F32:
    return "f32";
  case DType::F64:
    return "f64";
  case DType::I8:
    return "i8";
  case DType::I32:
    return "i32";
  }
  return "<dtype?>";
}

inline std::optional<DType> dtypeFromName(std::string_view Name) {
  if (Name == "f16")
    return DType::F16;
  if (Name == "bf16")
    return DType::BF16;
  if (Name == "f32")
    return DType::F32;
  if (Name == "f64")
    return DType::F64;
  if (Name == "i8")
    return DType::I8;
  if (Name == "i32")
    return DType::I32;
  return std::nullopt;
}

} // namespace pypm::term

#endif // PYPM_TERM_DTYPE_H
