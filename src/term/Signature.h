//===- term/Signature.h - Operator signatures Σ ----------------*- C++ -*-===//
///
/// \file
/// CorePyPM is parameterized over a set of operators Σ with arities
/// (paper §3.1). A Signature holds the declared operators of one PyPM
/// program: name, input arity, result arity, an operator class (used by
/// function-pattern guards like `F.op_class == unary_pointwise`, Fig. 14),
/// and the names of any non-dataflow attributes (e.g. a convolution's
/// stride, §2).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TERM_SIGNATURE_H
#define PYPM_TERM_SIGNATURE_H

#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pypm::term {

/// Dense handle for a declared operator within one Signature.
class OpId {
public:
  OpId() : Index(~0u) {}
  explicit OpId(uint32_t Index) : Index(Index) {}

  bool isValid() const { return Index != ~0u; }
  uint32_t index() const {
    assert(isValid() && "querying invalid OpId");
    return Index;
  }

  friend bool operator==(OpId A, OpId B) { return A.Index == B.Index; }
  friend bool operator!=(OpId A, OpId B) { return A.Index != B.Index; }
  friend bool operator<(OpId A, OpId B) { return A.Index < B.Index; }

private:
  uint32_t Index;
};

/// Metadata for one declared operator.
struct OpInfo {
  Symbol Name;
  /// Number of dataflow inputs (the @op method's parameter count, §2).
  unsigned Arity = 0;
  /// Number of results (the @op method's integer return value, §2). The
  /// graph IR models single-result nodes; multi-result declarations are
  /// accepted and checked but each node produces its first result.
  unsigned Results = 1;
  /// Operator class, e.g. "unary_pointwise", "matmul", "idempotent".
  /// Invalid symbol means unclassified.
  Symbol OpClass;
  /// Declared attribute names (non-dataflow parameters).
  std::vector<Symbol> AttrNames;
};

/// The set Σ of operators for one PyPM program, with arity : Σ → ℕ.
class Signature {
public:
  /// Declares a new operator. Redeclaring a name is a programmer error
  /// (asserted); use lookup() to test first.
  OpId addOp(std::string_view Name, unsigned Arity, unsigned Results = 1,
             std::string_view OpClass = {},
             std::vector<Symbol> AttrNames = {});

  /// Returns the operator named \p Name, or an invalid OpId.
  OpId lookup(std::string_view Name) const;
  OpId lookup(Symbol Name) const;

  /// Returns the operator named \p Name, declaring it with the given
  /// metadata if missing. Arity must agree if already declared (asserted).
  OpId getOrAddOp(std::string_view Name, unsigned Arity, unsigned Results = 1,
                  std::string_view OpClass = {});

  const OpInfo &info(OpId Op) const {
    assert(Op.index() < Ops.size());
    return Ops[Op.index()];
  }
  unsigned arity(OpId Op) const { return info(Op).Arity; }
  Symbol name(OpId Op) const { return info(Op).Name; }
  Symbol opClass(OpId Op) const { return info(Op).OpClass; }

  size_t size() const { return Ops.size(); }

  /// All ops in declaration order; iteration is deterministic.
  const std::vector<OpInfo> &ops() const { return Ops; }

  /// All ops whose OpClass equals \p Class, in declaration order.
  std::vector<OpId> opsOfClass(Symbol Class) const;

private:
  std::vector<OpInfo> Ops;
  std::unordered_map<Symbol, uint32_t> ByName;
};

} // namespace pypm::term

template <> struct std::hash<pypm::term::OpId> {
  size_t operator()(pypm::term::OpId Op) const noexcept {
    return std::hash<uint32_t>()(Op.isValid() ? Op.index() : ~0u);
  }
};

#endif // PYPM_TERM_SIGNATURE_H
