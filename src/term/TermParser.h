//===- term/TermParser.h - Textual ground-term reader ----------*- C++ -*-===//
///
/// \file
/// Parses the textual term syntax produced by TermArena::toString:
///
///   term ::= ident attrs? args?
///   attrs ::= '[' (ident '=' int) (',' ident '=' int)* ']'
///   args ::= '(' term (',' term)* ')'
///
/// Primarily a convenience for tests and examples. Operators are resolved
/// against the arena's Signature; unknown operators are auto-declared with
/// the observed arity (so test fixtures don't need a declaration preamble).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_TERM_TERMPARSER_H
#define PYPM_TERM_TERMPARSER_H

#include "term/Term.h"

#include <string>
#include <string_view>
#include <variant>

namespace pypm::term {

/// Result of parsing: a term, or an error message with offset.
struct TermParseError {
  size_t Offset;
  std::string Message;
};

using TermParseResult = std::variant<TermRef, TermParseError>;

/// Parses \p Text into \p Arena. If \p AutoDeclare is true (default),
/// unknown operator names are declared in the arena's signature with the
/// observed arity; otherwise they are an error. Note: auto-declaration
/// mutates \p Sig, hence the non-const Signature parameter.
TermParseResult parseTerm(std::string_view Text, Signature &Sig,
                          TermArena &Arena, bool AutoDeclare = true);

/// Asserting convenience wrapper for test code: parse or abort.
TermRef parseTermOrDie(std::string_view Text, Signature &Sig,
                       TermArena &Arena);

} // namespace pypm::term

#endif // PYPM_TERM_TERMPARSER_H
