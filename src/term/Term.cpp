//===- term/Term.cpp - Hash-consed ground terms ---------------------------===//

#include "term/Term.h"

#include "support/Hash.h"

#include <algorithm>
#include <memory>

using namespace pypm;
using namespace pypm::term;

std::optional<int64_t> Term::storedAttr(Symbol Key) const {
  // Attrs is sorted by raw id; binary search.
  auto It = std::lower_bound(
      Attrs.begin(), Attrs.end(), Key,
      [](const Attr &A, Symbol K) { return A.Key.rawId() < K.rawId(); });
  if (It != Attrs.end() && It->Key == Key)
    return It->Value;
  return std::nullopt;
}

uint64_t TermArena::hashKey(const Key &K) {
  uint64_t H = hashCombine(0x517cc1b727220a95ULL, K.Op.index());
  for (TermRef C : K.Children)
    H = hashCombine(H, C->HashValue);
  for (const Attr &A : K.Attrs) {
    H = hashCombine(H, A.Key.rawId());
    H = hashCombine(H, static_cast<uint64_t>(A.Value));
  }
  return H;
}

bool TermArena::keyEquals(const Key &K, const Term *T) {
  if (T->Op != K.Op || T->Children.size() != K.Children.size() ||
      T->Attrs.size() != K.Attrs.size())
    return false;
  if (!std::equal(K.Children.begin(), K.Children.end(), T->Children.begin()))
    return false;
  return std::equal(K.Attrs.begin(), K.Attrs.end(), T->Attrs.begin());
}

TermRef TermArena::make(OpId Op, std::span<const TermRef> Children,
                        std::span<const Attr> Attrs) {
  assert(Op.isValid() && "making term with invalid op");
  assert(Children.size() == Sig.arity(Op) &&
         "child count does not match declared arity");

  // Normalize attributes: sort by key.
  std::vector<Attr> Sorted(Attrs.begin(), Attrs.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const Attr &A, const Attr &B) {
    return A.Key.rawId() < B.Key.rawId();
  });
#ifndef NDEBUG
  for (size_t I = 1; I < Sorted.size(); ++I)
    assert(Sorted[I - 1].Key != Sorted[I].Key && "duplicate attribute key");
#endif

  Key K{Op, Children, Sorted};
  uint64_t H = hashKey(K);
  auto [Lo, Hi] = Interned.equal_range(H);
  for (auto It = Lo; It != Hi; ++It)
    if (keyEquals(K, It->second))
      return It->second;

  auto T = std::unique_ptr<Term>(new Term());
  T->Op = Op;
  T->Children.assign(Children.begin(), Children.end());
  T->Attrs = std::move(Sorted);
  T->HashValue = H;
  uint64_t Size = 1;
  uint32_t Depth = 0;
  for (TermRef C : T->Children) {
    Size += C->TreeSize;
    Depth = std::max(Depth, C->TreeDepth);
  }
  T->TreeSize = Size;
  T->TreeDepth = Depth + 1;

  Term *Raw = T.get();
  AllTerms.push_back(std::move(T));
  Interned.emplace(H, Raw);
  return Raw;
}

TermRef TermArena::make(OpId Op, std::initializer_list<TermRef> Children,
                        std::initializer_list<Attr> Attrs) {
  return make(Op, std::span<const TermRef>(Children.begin(), Children.size()),
              std::span<const Attr>(Attrs.begin(), Attrs.size()));
}

TermRef TermArena::leaf(OpId Op, std::initializer_list<Attr> Attrs) {
  return make(Op, std::span<const TermRef>(),
              std::span<const Attr>(Attrs.begin(), Attrs.size()));
}

std::optional<int64_t> TermArena::attribute(TermRef T, Symbol Key) const {
  if (std::optional<int64_t> Stored = T->storedAttr(Key))
    return Stored;
  static const Symbol ArityKey = Symbol::intern("arity");
  static const Symbol SizeKey = Symbol::intern("size");
  static const Symbol DepthKey = Symbol::intern("depth");
  static const Symbol OpIdKey = Symbol::intern("op_id");
  if (Key == ArityKey)
    return static_cast<int64_t>(T->arity());
  if (Key == SizeKey)
    return static_cast<int64_t>(T->size());
  if (Key == DepthKey)
    return static_cast<int64_t>(T->depth());
  if (Key == OpIdKey)
    return static_cast<int64_t>(T->op().index());
  return std::nullopt;
}

std::vector<TermRef> TermArena::subterms(TermRef T) {
  std::vector<TermRef> Order;
  std::vector<TermRef> Stack{T};
  std::unordered_map<TermRef, bool> Seen;
  while (!Stack.empty()) {
    TermRef Cur = Stack.back();
    Stack.pop_back();
    if (Seen[Cur])
      continue;
    Seen[Cur] = true;
    Order.push_back(Cur);
    for (TermRef C : Cur->children())
      Stack.push_back(C);
  }
  return Order;
}

std::string TermArena::toString(TermRef T, const Signature &Sig) {
  std::string Out(Sig.name(T->op()).str());
  if (!T->attrs().empty()) {
    Out += '[';
    bool First = true;
    for (const Attr &A : T->attrs()) {
      if (!First)
        Out += ',';
      First = false;
      Out += A.Key.str();
      Out += '=';
      Out += std::to_string(A.Value);
    }
    Out += ']';
  }
  if (T->arity() != 0) {
    Out += '(';
    bool First = true;
    for (TermRef C : T->children()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += toString(C, Sig);
    }
    Out += ')';
  }
  return Out;
}
