//===- term/TermParser.cpp - Textual ground-term reader -------------------===//

#include "term/TermParser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace pypm;
using namespace pypm::term;

namespace {

class Parser {
public:
  Parser(std::string_view Text, Signature &Sig, TermArena &Arena,
         bool AutoDeclare)
      : Text(Text), Sig(Sig), Arena(Arena), AutoDeclare(AutoDeclare) {}

  TermParseResult run() {
    TermParseResult R = parseTerm();
    if (std::holds_alternative<TermParseError>(R))
      return R;
    skipWs();
    if (Pos != Text.size())
      return err("trailing characters after term");
    return R;
  }

private:
  std::string_view Text;
  Signature &Sig;
  TermArena &Arena;
  bool AutoDeclare;
  size_t Pos = 0;

  TermParseError errObj(std::string Msg) { return TermParseError{Pos, std::move(Msg)}; }
  TermParseResult err(std::string Msg) { return errObj(std::move(Msg)); }

  /// Nesting ceiling: "A(A(A(…" recurses once per level, so adversarial
  /// input must fail with a parse error before the stack runs out.
  static constexpr unsigned kMaxNestingDepth = 1024;
  unsigned Depth = 0;

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  std::string_view ident() {
    skipWs();
    size_t Start = Pos;
    auto IsIdent = [](char C) {
      return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
             C == '.';
    };
    while (Pos < Text.size() && IsIdent(Text[Pos]))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  bool integer(int64_t &Out) {
    skipWs();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = std::strtoll(std::string(Text.substr(Start, Pos - Start)).c_str(),
                       nullptr, 10);
    return true;
  }

  TermParseResult parseTerm() {
    if (Depth >= kMaxNestingDepth)
      return err("term nesting deeper than " +
                 std::to_string(kMaxNestingDepth) + " levels");
    ++Depth;
    TermParseResult R = parseTermInner();
    --Depth;
    return R;
  }

  TermParseResult parseTermInner() {
    std::string_view Name = ident();
    if (Name.empty())
      return err("expected operator name");

    std::vector<Attr> Attrs;
    if (eat('[')) {
      do {
        std::string_view Key = ident();
        if (Key.empty())
          return err("expected attribute name");
        if (!eat('='))
          return err("expected '=' in attribute");
        int64_t V;
        if (!integer(V))
          return err("expected integer attribute value");
        Attrs.push_back({Symbol::intern(Key), V});
      } while (eat(','));
      if (!eat(']'))
        return err("expected ']' after attributes");
    }

    std::vector<TermRef> Children;
    if (eat('(')) {
      if (!eat(')')) {
        do {
          TermParseResult Child = parseTerm();
          if (auto *E = std::get_if<TermParseError>(&Child))
            return *E;
          Children.push_back(std::get<TermRef>(Child));
        } while (eat(','));
        if (!eat(')'))
          return err("expected ')' after children");
      }
    }

    OpId Op = Sig.lookup(Name);
    if (!Op.isValid()) {
      if (!AutoDeclare)
        return err("unknown operator '" + std::string(Name) + "'");
      Op = Sig.addOp(Name, static_cast<unsigned>(Children.size()));
    }
    if (Sig.arity(Op) != Children.size())
      return err("operator '" + std::string(Name) + "' expects " +
                 std::to_string(Sig.arity(Op)) + " children, got " +
                 std::to_string(Children.size()));
    return Arena.make(Op, std::span<const TermRef>(Children), Attrs);
  }
};

} // namespace

TermParseResult pypm::term::parseTerm(std::string_view Text, Signature &Sig,
                                      TermArena &Arena, bool AutoDeclare) {
  return Parser(Text, Sig, Arena, AutoDeclare).run();
}

TermRef pypm::term::parseTermOrDie(std::string_view Text, Signature &Sig,
                                   TermArena &Arena) {
  TermParseResult R = parseTerm(Text, Sig, Arena);
  if (auto *E = std::get_if<TermParseError>(&R)) {
    std::fprintf(stderr, "parseTermOrDie(\"%.*s\"): at %zu: %s\n",
                 static_cast<int>(Text.size()), Text.data(), E->Offset,
                 E->Message.c_str());
    std::abort();
  }
  return std::get<TermRef>(R);
}
