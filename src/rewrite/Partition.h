//===- rewrite/Partition.h - Directed graph partitioning --------*- C++ -*-===//
///
/// \file
/// Directed Graph Partitioning (paper §4.2): instead of replacing a matched
/// subgraph with a hand-written right-hand side, use a PyPM pattern (like
/// Fig. 14's MatMulEpilog) to *carve out* regions that a downstream
/// compiler can fuse "just in time". The partitioner:
///
///  1. scans nodes from outputs downward (so the largest enclosing match
///     claims a region before its sub-matches can),
///  2. matches the partition pattern at each node,
///  3. derives the region: all nodes reachable from the matched root
///     without crossing the *frontier* — the nodes bound to the designated
///     frontier variables of the pattern (the region's dataflow inputs),
///  4. rejects regions that overlap an earlier region or whose interior
///     values escape (an interior node with users outside the region
///     cannot be fused away),
///  5. optionally replaces each accepted region with a fused-kernel node
///     whose operands are the frontier nodes (fuseRegions) — the "pass the
///     subgraph to a compiler that can build the fused kernel" step,
///     modeled by attaching the region's op count so the cost model can
///     price the fused kernel.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_REWRITE_PARTITION_H
#define PYPM_REWRITE_PARTITION_H

#include "graph/Graph.h"
#include "graph/ShapeInference.h"
#include "match/Machine.h"
#include "pattern/Pattern.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace pypm::rewrite {

struct Region {
  graph::NodeId Root = graph::InvalidNode;
  /// Nodes fused away (includes Root), topologically ordered.
  std::vector<graph::NodeId> Interior;
  /// Dataflow inputs of the region (deduplicated, deterministic order).
  std::vector<graph::NodeId> Frontier;
  match::Witness W;
};

struct PartitionStats {
  uint64_t Attempts = 0;
  uint64_t Matches = 0;
  uint64_t OverlapRejects = 0;
  uint64_t EscapeRejects = 0;
  double Seconds = 0.0;
};

struct PartitionResult {
  std::vector<Region> Regions;
  PartitionStats Stats;
  /// Completed, or BudgetExhausted / Cancelled when the governing budget
  /// stopped the scan early (the regions found so far remain valid —
  /// partitioning never mutates the graph). Step/μ ceilings are charged
  /// per attempted node in scan order, so exhaustion is deterministic.
  EngineStatus Status;
};

struct PartitionOptions {
  /// Regions must contain at least this many interior nodes (a fused
  /// kernel of one op is not worth a kernel launch).
  size_t MinInteriorSize = 2;
  match::Machine::Options MachineOpts;
  /// Optional budget governing the scan; borrowed, not owned. Matchers
  /// poll it for deadline/cancellation; steps/μ-unfolds are charged after
  /// each attempt.
  Budget *EngineBudget = nullptr;
};

/// Partitions \p G with \p NP. \p FrontierVars name the pattern variables
/// whose bindings delimit the region (e.g. {a, b} for Fig. 14's
/// MatMulEpilog). Does not mutate the graph.
PartitionResult partitionGraph(graph::Graph &G,
                               const pattern::NamedPattern &NP,
                               std::span<const Symbol> FrontierVars,
                               PartitionOptions Opts = {});

/// Replaces each region with a fresh fused operator ("FusedRegion<N>",
/// arity = frontier size, class "fused") carrying attributes
/// `fused_ops` (interior count) plus \p ExtraAttrs, then sweeps dead
/// nodes. Returns the ids of the fused nodes.
std::vector<graph::NodeId> fuseRegions(graph::Graph &G,
                                       const PartitionResult &P,
                                       const graph::ShapeInference &SI,
                                       std::vector<term::Attr> ExtraAttrs = {});

} // namespace pypm::rewrite

#endif // PYPM_REWRITE_PARTITION_H
