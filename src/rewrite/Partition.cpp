//===- rewrite/Partition.cpp - Directed graph partitioning --------------------===//

#include "rewrite/Partition.h"

#include "graph/TermView.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

using namespace pypm;
using namespace pypm::rewrite;
using graph::Graph;
using graph::InvalidNode;
using graph::NodeId;

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

} // namespace

PartitionResult pypm::rewrite::partitionGraph(Graph &G,
                                              const pattern::NamedPattern &NP,
                                              std::span<const Symbol> FrontierVars,
                                              PartitionOptions Opts) {
  PartitionResult Result;
  double Start = nowSeconds();

  Budget *Bgt = Opts.EngineBudget;
  if (Bgt) {
    Bgt->start();
    Opts.MachineOpts.EngineBudget = Bgt; // deadline/cancel polls per match
  }

  term::TermArena Arena(G.signature());
  graph::TermView View(G, Arena);
  std::vector<char> Claimed(G.numNodes(), 0);

  // Outputs-downward scan: higher node ids are later in topological order,
  // so walking ids descending visits enclosing expressions before their
  // operands and the largest match claims first.
  std::vector<NodeId> Order = G.topoOrder();
  std::reverse(Order.begin(), Order.end());

  for (NodeId N : Order) {
    if (Claimed[N])
      continue;
    if (Bgt) {
      BudgetReason R = Bgt->poll(G.approxMemoryBytes());
      if (R != BudgetReason::None) {
        Result.Status.raise(R == BudgetReason::Cancelled
                                ? EngineStatusCode::Cancelled
                                : EngineStatusCode::BudgetExhausted,
                            R);
        break;
      }
    }
    ++Result.Stats.Attempts;
    match::Machine M(Arena, Opts.MachineOpts);
    M.start(NP.Pat, View.termFor(N));
    bool Matched = M.run() == match::MachineStatus::Success;
    if (Bgt) {
      Bgt->chargeSteps(M.stats().Steps);
      Bgt->chargeMuUnfolds(M.stats().MuUnfolds);
    }
    if (!Matched)
      continue;
    ++Result.Stats.Matches;
    match::Witness W{M.theta(), M.phi()};

    // Frontier nodes: the bindings of the designated variables.
    std::unordered_set<NodeId> FrontierSet;
    std::vector<NodeId> Frontier;
    bool FrontierOk = true;
    for (Symbol Var : FrontierVars) {
      std::optional<term::TermRef> T = W.Theta.lookup(Var);
      if (!T)
        continue; // optional frontier input not present in this match
      NodeId FN = View.nodeFor(*T);
      if (FN == InvalidNode) {
        FrontierOk = false;
        break;
      }
      if (FrontierSet.insert(FN).second)
        Frontier.push_back(FN);
    }
    if (!FrontierOk)
      continue;

    // Interior: reachable from the root without crossing the frontier.
    std::vector<NodeId> Interior;
    std::unordered_set<NodeId> InteriorSet;
    std::vector<NodeId> Stack{N};
    bool Overlap = false;
    while (!Stack.empty()) {
      NodeId Cur = Stack.back();
      Stack.pop_back();
      if (FrontierSet.count(Cur) || InteriorSet.count(Cur))
        continue;
      if (Claimed[Cur]) {
        Overlap = true;
        break;
      }
      InteriorSet.insert(Cur);
      Interior.push_back(Cur);
      for (NodeId In : G.inputs(Cur))
        Stack.push_back(In);
    }
    if (Overlap) {
      ++Result.Stats.OverlapRejects;
      continue;
    }
    if (Interior.size() < Opts.MinInteriorSize)
      continue;

    // Escape check: interior nodes other than the root must have all their
    // users inside the region (their values disappear when fused).
    bool Escapes = false;
    for (NodeId I : Interior) {
      if (I == N)
        continue;
      for (NodeId User : G.users(I))
        if (!InteriorSet.count(User)) {
          Escapes = true;
          break;
        }
      if (Escapes)
        break;
    }
    for (NodeId Out : G.outputs())
      if (Out != N && InteriorSet.count(Out))
        Escapes = true;
    if (Escapes) {
      ++Result.Stats.EscapeRejects;
      continue;
    }

    std::sort(Interior.begin(), Interior.end());
    for (NodeId I : Interior)
      Claimed[I] = 1;
    Region R;
    R.Root = N;
    R.Interior = std::move(Interior);
    R.Frontier = std::move(Frontier);
    R.W = std::move(W);
    Result.Regions.push_back(std::move(R));
  }

  Result.Stats.Seconds = nowSeconds() - Start;
  return Result;
}

std::vector<NodeId>
pypm::rewrite::fuseRegions(Graph &G, const PartitionResult &P,
                           const graph::ShapeInference &SI,
                           std::vector<term::Attr> ExtraAttrs) {
  std::vector<NodeId> Fused;
  static const Symbol FusedOpsKey = Symbol::intern("fused_ops");
  for (const Region &R : P.Regions) {
    std::string OpName =
        "FusedRegion" + std::to_string(R.Frontier.size());
    term::OpId Op = G.signature().getOrAddOp(
        OpName, static_cast<unsigned>(R.Frontier.size()), 1, "fused");
    std::vector<term::Attr> Attrs = ExtraAttrs;
    Attrs.push_back({FusedOpsKey, static_cast<int64_t>(R.Interior.size())});
    NodeId N = G.addNode(Op, std::span<const NodeId>(R.Frontier),
                         std::move(Attrs));
    // The fused kernel produces exactly what the region's root produced.
    G.setType(N, G.type(R.Root));
    G.replaceAllUses(R.Root, N);
    Fused.push_back(N);
  }
  G.removeUnreachable();
  (void)SI;
  return Fused;
}
