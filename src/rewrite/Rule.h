//===- rewrite/Rule.h - Rule sets for the rewrite engine --------*- C++ -*-===//
///
/// \file
/// A RuleSet is the loaded form of one or more pattern binaries: an ordered
/// list of (pattern, rules) entries. The engine tries patterns in the order
/// they appear (the order of their definition in the source file, §2.4) and
/// fires the first rule whose guard passes (§2). Entries whose rule list is
/// empty are "match-only" — useful for the compile-time-cost experiments
/// and for directed graph partitioning, where the match itself is the
/// product.
///
/// RuleSet borrows the Library (and its arena); keep libraries alive while
/// the rule set is in use.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_REWRITE_RULE_H
#define PYPM_REWRITE_RULE_H

#include "pattern/Pattern.h"

#include <vector>

namespace pypm::rewrite {

struct RewriteEntry {
  const pattern::NamedPattern *Pattern = nullptr;
  std::vector<const pattern::RewriteRule *> Rules;
};

class RuleSet {
public:
  /// Adds every pattern of \p Lib (in definition order) together with its
  /// rules. If \p RulesOnly is true, patterns with no rules are skipped
  /// (the common case for an optimization pipeline: auxiliary patterns
  /// like Half exist to be referenced, not matched at top level).
  void addLibrary(const pattern::Library &Lib, bool RulesOnly = true) {
    for (const pattern::NamedPattern &NP : Lib.PatternDefs) {
      RewriteEntry E;
      E.Pattern = &NP;
      for (const pattern::RewriteRule *R : Lib.rulesFor(NP.Name))
        E.Rules.push_back(R);
      if (E.Rules.empty() && RulesOnly)
        continue;
      Entries.push_back(std::move(E));
    }
  }

  /// Adds one pattern (optionally match-only).
  void addPattern(const pattern::NamedPattern &NP,
                  std::vector<const pattern::RewriteRule *> Rules = {}) {
    Entries.push_back(RewriteEntry{&NP, std::move(Rules)});
  }

  const std::vector<RewriteEntry> &entries() const { return Entries; }
  bool empty() const { return Entries.empty(); }

private:
  std::vector<RewriteEntry> Entries;
};

} // namespace pypm::rewrite

#endif // PYPM_REWRITE_RULE_H
