//===- rewrite/RewriteEngine.h - Greedy fixpoint rewriting ------*- C++ -*-===//
///
/// \file
/// DLCB's pattern-matching pass (§2.4): "the compiler repeatedly traverses
/// the graph, attempting to match any of the patterns. Each time a node is
/// visited, the compiler attempts to match the subtree rooted at that node
/// against each of the loaded patterns, in order … When a match is found,
/// the corresponding rule (if any) fires, and the replacement is built and
/// substituted into the graph in place of the subgraph the pattern
/// matched", greedily to fixpoint.
///
/// Engine-level optimizations (all ablatable, for bench_ablation and the
/// thread-sweep benches):
///  - a root-operator prefilter: patterns whose possible root operators are
///    known skip nodes with other roots without starting the machine;
///  - memoized node→term conversion, invalidated only on rewrites;
///  - parallel match discovery (RewriteOptions::NumThreads): per-pass,
///    match attempts fan out over a work-stealing pool against a frozen
///    graph snapshot, then candidates commit serially in canonical order —
///    see DESIGN.md §"Parallel discovery, serial commit" for the
///    determinism argument.
///
/// Per-pattern statistics (attempts, matches, fires, machine steps, wall
/// time) drive the compile-time-cost experiments (Figs. 12–13).
///
/// Robustness layer (RewriteOptions::EngineBudget et al.): a whole run can
/// be governed by a Budget (deadline / step / μ-unfold / memory ceilings,
/// cancellation), patterns that repeatedly exhaust their fuel slice are
/// quarantined instead of wedging the pass, and exceptions escaping a
/// guard or RHS builder — injectable deterministically via
/// support/FaultInjection.h — are absorbed transactionally: the graph
/// always remains in the last consistent committed state. Outcomes are
/// reported through RewriteStats::Status (see DESIGN.md §"Failure
/// taxonomy, budgets, and transactional commit").
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_REWRITE_REWRITEENGINE_H
#define PYPM_REWRITE_REWRITEENGINE_H

#include "graph/Graph.h"
#include "graph/ShapeInference.h"
#include "graph/TermView.h"
#include "match/Machine.h"
#include "rewrite/Rule.h"
#include "support/Budget.h"

#include <map>
#include <optional>
#include <string>

namespace pypm::analysis::critical {
struct ConfluenceReport;
} // namespace pypm::analysis::critical

namespace pypm {
class FaultInjector;
} // namespace pypm

namespace pypm::plan {
struct Profile;
struct Program;
} // namespace pypm::plan

namespace pypm::plan::aot {
class PlanLibrary;
struct ThreadedProgram;
} // namespace pypm::plan::aot

namespace pypm::sim {
class CostModel;
} // namespace pypm::sim

namespace pypm::rewrite {

struct PatternStats {
  uint64_t Attempts = 0;      ///< machine runs started
  uint64_t RootSkips = 0;     ///< nodes skipped by the root-op prefilter
  uint64_t Matches = 0;       ///< successful matches (whether or not fired)
  uint64_t RulesFired = 0;
  uint64_t GuardRejects = 0;  ///< matches where no rule guard passed
  uint64_t MachineSteps = 0;
  uint64_t Backtracks = 0;
  uint64_t FuelExhausted = 0; ///< attempts ending OutOfFuel (quarantine feed)
  /// CPU-seconds inside the matcher. Under the parallel engine this sums
  /// across workers, so per-pattern Seconds may exceed the engine's
  /// wall-clock MatchSeconds.
  double Seconds = 0.0;

  /// Aggregates \p O into this. All fields are sums, so merging is
  /// associative and commutative: per-worker counters from the parallel
  /// discovery phase reach the same totals in any merge order.
  void merge(const PatternStats &O) {
    Attempts += O.Attempts;
    RootSkips += O.RootSkips;
    Matches += O.Matches;
    RulesFired += O.RulesFired;
    GuardRejects += O.GuardRejects;
    MachineSteps += O.MachineSteps;
    Backtracks += O.Backtracks;
    FuelExhausted += O.FuelExhausted;
    Seconds += O.Seconds;
  }

  bool operator==(const PatternStats &) const = default;
};

struct RewriteStats {
  unsigned Passes = 0;
  uint64_t NodesVisited = 0;
  uint64_t TotalMatches = 0;
  uint64_t TotalFired = 0;
  uint64_t NodesSwept = 0;
  /// Wall-clock spent matching: per-attempt matcher time in the serial
  /// engine; discovery-phase wall-clock plus serial re-match time in the
  /// parallel engine. Always disjoint subintervals of the run, so
  /// MatchSeconds <= TotalSeconds holds by construction (per-worker CPU
  /// time is deliberately NOT summed into this field — see
  /// PatternStats::Seconds for the summed view).
  double MatchSeconds = 0.0;
  double TotalSeconds = 0.0; ///< whole run, including replacement building
  /// Wall-clock spent compiling the MatchPlan inside the run (0 when the
  /// matcher is not Plan or a PrecompiledPlan was supplied). Included in
  /// TotalSeconds; the bench sweeps report it separately so the
  /// cacheable-artifact story is quantified.
  double PlanCompileSeconds = 0.0;
  /// Wall-clock of the candidate-discovery work alone: the parallel
  /// fan-out phases (parallel engine) or, in the serial engine, the same
  /// value as MatchSeconds. The thread-sweep benches report this.
  double DiscoverySeconds = 0.0;
  /// Incremental re-discovery accounting (RewriteOptions::Incremental;
  /// both zero otherwise). A hit is one committed node whose fruitless
  /// visit was replayed from the persistent per-node memo instead of
  /// re-running the matchers; a miss is one committed node visited live
  /// (first sight, dirty region, or unmemoizable outcome). Counted in
  /// committed node order. Mode-descriptive — like DiscoverySeconds,
  /// excluded from equality comparisons: when quarantine grows mid-pass,
  /// the parallel engine can adopt a node's memo one pass later than the
  /// serial engine (a discovery record truncated at a just-quarantined
  /// entry is refused where the serial visit records past the skip), so
  /// the hit/miss split may differ across thread counts even though every
  /// committed outcome is identical.
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  /// Nodes whose plan candidate mask came from a pass-start batched
  /// frontier sweep instead of a per-node tree traversal
  /// (RewriteOptions::Batch with the Plan matcher; 0 otherwise).
  uint64_t BatchedNodes = 0;
  /// Cost-directed search accounting (RewriteOptions::Search != Greedy
  /// with Lookahead >= 1; all zero otherwise — the degenerate
  /// configurations dispatch to the greedy engine and report greedy's
  /// stats bit for bit). SearchSteps counts enumeration sweeps (committed
  /// commits plus the final fixpoint-proving sweep), SearchCandidates the
  /// fireable candidates enumerated on the committed path, and
  /// SearchExpansions the speculative clone-apply-price evaluations.
  uint64_t SearchSteps = 0;
  uint64_t SearchCandidates = 0;
  uint64_t SearchExpansions = 0;
  /// Wall-clock inside speculative expansion + scoring (a subinterval of
  /// TotalSeconds; excluded from equality comparisons like all Seconds).
  double SearchSeconds = 0.0;
  /// sim::CostModel whole-graph Seconds before the first commit and after
  /// the last (search mode only; both zero under the greedy engine).
  double ModeledCostBefore = 0.0;
  double ModeledCostAfter = 0.0;
  /// Structured outcome of the run: Completed, or the most severe of
  /// PatternQuarantined / FaultInjected / BudgetExhausted / Cancelled.
  /// Deterministic wherever the triggering ceilings are (step/μ/rewrite
  /// counts and the site-scheduled fault injector; deadline and
  /// cancellation are wall-clock-dependent by nature).
  EngineStatus Status;
  std::map<std::string, PatternStats> PerPattern;
  /// Raw speculative matcher work performed by the discovery workers,
  /// merged across workers with PatternStats::merge (order-independent).
  /// Differs from PerPattern in both directions: it includes attempts at
  /// snapshot nodes a fire later invalidated, but not the commit phase's
  /// re-runs at dirty or newly appended nodes. Empty when NumThreads == 0.
  std::map<std::string, PatternStats> Discovery;

  /// MaxRewrites tripped (kept as a helper — the old ad-hoc bool this
  /// taxonomy replaced; the cap reports as BudgetExhausted(rewrites)).
  bool hitRewriteLimit() const {
    return Status.Code == EngineStatusCode::BudgetExhausted &&
           Status.Reason == BudgetReason::Rewrites;
  }

  std::string summary() const;
};

/// Node visitation order within a pass (§2.4 says only "repeatedly walks
/// the nodes"; both orders reach a fixpoint, but for nested matches they
/// can fire different rule instances first — e.g. RootsFirst lets a
/// recursive chain pattern claim a whole tower at its top).
enum class Traversal : uint8_t {
  /// Ascending node ids: operands are visited before their users, and
  /// replacement nodes appended mid-pass are visited within the pass.
  OperandsFirst,
  /// Reverse topological order snapshot per pass: outputs first.
  RootsFirst,
};

/// Which matcher executes the per-(node, pattern) attempts. All five are
/// observably identical per attempt — same status, witness, resume stream,
/// and step counters (the differential suites assert it); they differ in
/// cost and in how the engine prefilters:
///  - Machine: the reference machine of Figs. 17-18;
///  - Fast: the optimized trail-based FastMatcher (root-op prefilter);
///  - Plan: the whole rule set compiled into one shared discrimination-tree
///    bytecode program (plan::Program); one tree traversal per node yields
///    the candidate set for all patterns at once;
///  - PlanThreaded: the same plan::Program pre-decoded once per run into a
///    direct-threaded instruction stream (operands resolved, computed-goto
///    dispatch where the compiler supports it) — toolchain-free, always
///    available;
///  - PlanAot: the same program executed by an emitted-C++ .so supplied via
///    RewriteOptions::AotLib. A missing or fingerprint-mismatched library
///    is a warning plus interpreter fallback, never an error or UB.
enum class MatcherKind : uint8_t { Machine, Fast, Plan, PlanThreaded, PlanAot };

/// True for the matchers that execute a compiled plan::Program (and hence
/// share the discrimination-tree prefilter, PlanProfile recording, and the
/// batched frontier sweep): Plan, PlanThreaded, PlanAot.
inline bool planFamily(MatcherKind MK) {
  return MK == MatcherKind::Plan || MK == MatcherKind::PlanThreaded ||
         MK == MatcherKind::PlanAot;
}

/// How commits are selected once matches are discovered (see DESIGN.md
/// §"Cost-directed search"). Greedy is §2.4's strategy: fire the first
/// rule of the first witness at the first matching pattern, in canonical
/// order. BestOfN and Beam enumerate competing candidates per sweep —
/// including alternate witnesses of the same pattern via the resume
/// machinery — price each with sim::CostModel, and commit the cheapest:
///  - BestOfN: score the first BeamWidth candidates (each rolled forward
///    Lookahead-1 greedy steps on a speculative clone), commit the best;
///  - Beam: keep the BeamWidth cheapest partial commit sequences, expand
///    them to depth Lookahead, commit the first step of the winner
///    (receding horizon), re-enumerate, repeat.
/// Auto's wire value is 3 (server protocol Search field) — keep the
/// enumerator order stable. Auto never reaches searchActive(): the engine
/// resolves it to Greedy (certified-confluent rule set) or Beam (anything
/// else) right after the lint preflight, before any search dispatch.
enum class SearchStrategy : uint8_t { Greedy, BestOfN, Beam, Auto };

struct RewriteOptions {
  unsigned MaxPasses = 64;
  uint64_t MaxRewrites = 1'000'000;
  /// Enables match-attempt prefiltering: the per-pattern root-operator
  /// index (Machine/Fast) or the shared discrimination tree (Plan).
  bool UseRootIndex = true;
  bool MemoizeTermView = true;
  /// Match with the optimized trail-based matcher (FastMatcher). Disable
  /// to run the reference machine of Figs. 17-18 instead; results are
  /// identical (tests assert it), only cost differs (bench_ablation
  /// quantifies it). Subsumed by Matcher when that is set.
  bool UseFastMatcher = true;
  /// Explicit matcher selection; unset defers to UseFastMatcher (the
  /// pre-MatchPlan knob, kept so existing ablation configs keep meaning
  /// what they meant).
  std::optional<MatcherKind> Matcher;
  /// With a plan-family matcher: use this already-compiled program instead of
  /// compiling one per run (e.g. loaded from a .pypmplan). Borrowed, must
  /// outlive the run, and must have been compiled from an identical rule
  /// set — the engine verifies entry names and falls back to a fresh
  /// compile on mismatch.
  const plan::Program *PrecompiledPlan = nullptr;
  /// With Matcher == PlanThreaded: the pre-decoded threaded stream to
  /// execute with, instead of decoding one per run. Borrowed, must outlive
  /// the run, and must have been decoded from the exact Program the run
  /// executes (the engine checks the decode's program pointer against the
  /// plan it resolved and silently re-decodes on mismatch — a stream
  /// decoded from some other plan is never run). Decode is cheap but its
  /// allocations land mid-heap right before term building; batch servers
  /// (PlanCache) and benches decode once per cached plan and pass it here
  /// so per-run cost is attempts only.
  const plan::aot::ThreadedProgram *PrecompiledThreaded = nullptr;
  /// With a plan-family matcher: record a discrimination-tree/interpreter
  /// profile of the run into this profile (see plan/Profile.h). Borrowed,
  /// must outlive the run. An empty profile is bound to the run's plan; a
  /// populated one keeps accumulating if it is bound to the same plan,
  /// otherwise recording is skipped with a warning (stale profile).
  /// Counters are recorded strictly in committed order — per-worker
  /// traversal traces merge at commit — so the recorded profile is
  /// bit-identical at any NumThreads (tests/test_planprofile.cpp).
  plan::Profile *PlanProfile = nullptr;
  /// With Matcher == PlanAot: the loaded emitted-plan library (see
  /// plan/aot/Library.h) to execute attempts with. Borrowed, must outlive
  /// the run. The engine re-validates its fingerprints against the plan it
  /// actually runs (compiled or precompiled); null or mismatched demotes
  /// the run to the interpreter with a Diags warning — the fallback ladder
  /// ends in working code, never in refusing to rewrite.
  const plan::aot::PlanLibrary *AotLib = nullptr;

  MatcherKind matcher() const {
    if (Matcher)
      return *Matcher;
    return UseFastMatcher ? MatcherKind::Fast : MatcherKind::Machine;
  }
  Traversal Order = Traversal::OperandsFirst;
  /// Incremental re-discovery: remember each node's complete, fruitless,
  /// fault-free visit (the per-attempt outcome sequence) across passes and
  /// replay it — copying counters, charging the budget, feeding quarantine
  /// — instead of re-running the matchers, until a committed fire dirties
  /// the node's region (the rewritten subtree's transitive users, computed
  /// before the use edges are redirected) and invalidates the memo. Works
  /// with every MatcherKind and thread count; results are bit-identical to
  /// full re-discovery (final graph, witness order, every counter except
  /// wall-clock and the MemoHits/MemoMisses accounting itself) — the
  /// site-scheduled fault injector is re-consulted per replayed attempt,
  /// and any armed site falls back to the live visit, so even injected
  /// faults land at the identical committed attempt
  /// (tests/test_incremental.cpp proves all of it differentially).
  bool Incremental = false;
  /// Batched discovery: amortize per-attempt setup across the pass. With
  /// the Plan matcher, one struct-of-arrays frontier sweep of the
  /// discrimination tree computes every pass-start node's candidate mask
  /// at once (Program::batchCandidates) and one reused Interpreter — with
  /// its μ-unfold memo keyed on the hash-consed pattern nodes — serves
  /// every committed attempt; with the Fast matcher, one reused
  /// FastMatcher serves every attempt (the parity mode, so differentials
  /// stay three-way). Bit-identical to per-root discovery: a memo hit
  /// still pays its unfold step, and a fire invalidates the dirty region's
  /// precomputed masks exactly like the incremental memo. The reference
  /// Machine is deliberately left un-batched.
  bool Batch = false;
  /// Worker threads for the parallel match-discovery phase. 0 runs the
  /// serial legacy engine (kept for the ablation benches); N >= 1 fans
  /// node→pattern match attempts out over N workers against a frozen
  /// snapshot of the graph, then commits candidates serially in the
  /// canonical node/pattern order. The rewritten graph — and every
  /// per-pattern counter except Seconds — is identical to the serial
  /// engine's at any thread count, including 1 (tests/test_parallel_rewrite
  /// proves it differentially).
  unsigned NumThreads = 0;
  match::Machine::Options MachineOpts;

  // --- Cost-directed search (pypm::search) -------------------------------

  /// Commit-selection strategy. Greedy runs the engine above. BestOfN and
  /// Beam run the cost-directed search loop (src/search/) — EXCEPT in the
  /// degenerate configurations Lookahead == 0 or BeamWidth == 0, which
  /// dispatch to the greedy engine: with no pricing horizon there is
  /// nothing to rank, and the canonical-order tie-break IS greedy. That
  /// dispatch is what makes `--search=beam --beam-width=1 --lookahead=0`
  /// bit-identical to greedy by construction (graphs, witnesses, stats);
  /// the differential suite in tests/test_search.cpp pins it.
  SearchStrategy Search = SearchStrategy::Greedy;
  /// Beam width (Beam) / number of candidates scored per step (BestOfN).
  unsigned BeamWidth = 4;
  /// Commit horizon priced per candidate: 1 scores the immediate cost
  /// delta, L > 1 rolls each survivor forward on speculative clones to
  /// depth L before ranking. 0 disables pricing entirely (greedy).
  unsigned Lookahead = 1;
  /// Witnesses enumerated per (node, pattern) via the resume machinery;
  /// each distinct witness with a passing rule guard is its own candidate
  /// (greedy only ever sees witness 0).
  unsigned SearchWitnesses = 4;
  /// Cost model pricing the candidates. Borrowed; null uses a default
  /// a6000-like model. Ignored by the greedy engine.
  const sim::CostModel *SearchCost = nullptr;
  /// Confluence certificate for THIS rule set, consulted only when Search
  /// == Auto: Certified resolves to Greedy (search on a confluent set is
  /// pure tax — every strategy reaches the same normal form), anything
  /// else resolves to Beam. Borrowed, not owned (plan-loaded certificates
  /// live in the LoadedPlan). Null makes the engine run the analysis
  /// itself on dispatch.
  const analysis::critical::ConfluenceReport *Confluence = nullptr;

  // --- Resource governance and fault tolerance ---------------------------

  /// Optional budget governing the whole run (deadline, total step/μ
  /// ceilings, memory estimate, cancellation). Borrowed, not owned; the
  /// engine calls start() and charges it in committed attempt order, so
  /// exhaustion is bit-identical at any NumThreads. Also handed to every
  /// matcher run (serial and workers) for deadline/cancellation polling.
  Budget *EngineBudget = nullptr;
  /// After this many OutOfFuel attempts, a pattern entry is quarantined:
  /// disabled for the rest of the run with a DiagnosticEngine warning, and
  /// the pass completes on the remaining patterns. Counted in commit order
  /// (deterministic). 0 disables quarantine.
  unsigned QuarantineThreshold = 3;
  /// Sink for quarantine/fault warnings. Optional.
  DiagnosticEngine *Diags = nullptr;
  /// Fault-injection harness for the robustness tests. When null, the
  /// engine falls back to FaultInjector::global() ($PYPM_FAULT), which is
  /// itself null — and costs nothing on the hot path — unless armed.
  FaultInjector *Faults = nullptr;
  /// Preflight the rule set through analysis::lintRuleSet before the first
  /// pass. Every finding is forwarded to Diags (when set); error-severity
  /// findings refuse the run — the graph is left untouched, zero passes
  /// run, and Stats.Status reports LintRejected. Warnings and notes never
  /// change engine behavior (the lint-on ≡ lint-off differential test
  /// asserts bit-identical results on lint-clean rule sets).
  bool Lint = false;
  /// Stop at the first absorbed fault, leaving the graph in the last
  /// committed state (the transactional-commit stress tests verify the
  /// result equals a prefix of the fault-free serial run). When false, the
  /// faulting pattern is quarantined and the run continues.
  bool HaltOnFault = false;
  /// Pattern entry names to start the run already quarantined (disabled
  /// before the first pass). Unlike in-run quarantine, pre-quarantined
  /// entries do not raise PatternQuarantined and are not listed in
  /// Status.QuarantinedPatterns — the status taxonomy keeps describing
  /// what happened in THIS run. The daemon's sticky-quarantine mode
  /// (server::ServerOptions::StickyQuarantine) uses this to carry one
  /// request's quarantine decisions into the next without leaking one
  /// request's failures into another's status. Borrowed; names that match
  /// no entry are ignored.
  const std::vector<std::string> *PreQuarantined = nullptr;
};

/// Runs the rule set over the graph to fixpoint. Replacement nodes are
/// shape-inferred with \p SI as they are built.
RewriteStats rewriteToFixpoint(graph::Graph &G, const RuleSet &Rules,
                               const graph::ShapeInference &SI,
                               RewriteOptions Opts = {});

/// Match-only traversal: one pass over the live nodes counting matches per
/// pattern without mutating the graph. (Used by benches that want pure
/// matcher cost; rewriteToFixpoint reports the with-rewriting numbers.)
/// RewriteOptions::Lint is ignored here: the traversal cannot mutate the
/// graph, so there is nothing for a preflight to protect.
RewriteStats matchAll(graph::Graph &G, const RuleSet &Rules,
                      RewriteOptions Opts = {});

/// Builds the replacement graph for \p Rhs under the witness \p W.
/// Exposed for the partitioner, the search loop, and tests. New nodes are
/// appended to the graph and shape-inferred; returns the replacement root.
/// \p Faults, when non-null, is consulted per replacement node built
/// (FaultInjector::onRhsBuild) — the search loop passes its injector on
/// the committed path so injected RHS faults land in search runs exactly
/// as they do in greedy runs; speculative builds always pass nullptr.
graph::NodeId buildRhs(graph::Graph &G, graph::TermView &View,
                       const pattern::RhsExpr *Rhs, const match::Witness &W,
                       const graph::ShapeInference &SI,
                       FaultInjector *Faults = nullptr);

} // namespace pypm::rewrite

#endif // PYPM_REWRITE_REWRITEENGINE_H
