//===- rewrite/RewriteEngine.cpp - Greedy fixpoint rewriting ------------------===//

#include "rewrite/RewriteEngine.h"

#include "match/Declarative.h"
#include "match/FastMatcher.h"

#include <chrono>
#include <optional>
#include <unordered_set>

using namespace pypm;
using namespace pypm::rewrite;
using namespace pypm::pattern;
using graph::Graph;
using graph::NodeId;
using match::Machine;
using match::MachineStatus;
using match::MatchResult;

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// The set of operators a pattern can match at its root, or nullopt for
/// "any" (root is a variable, function variable, or recursive call).
std::optional<std::unordered_set<term::OpId>> rootOps(const Pattern *P) {
  switch (P->kind()) {
  case PatternKind::App:
    return std::unordered_set<term::OpId>{cast<AppPattern>(P)->op()};
  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    auto L = rootOps(AP->left());
    auto R = rootOps(AP->right());
    if (!L || !R)
      return std::nullopt;
    L->insert(R->begin(), R->end());
    return L;
  }
  case PatternKind::Guarded:
    return rootOps(cast<GuardedPattern>(P)->sub());
  case PatternKind::Exists:
    return rootOps(cast<ExistsPattern>(P)->sub());
  case PatternKind::ExistsFun:
    return rootOps(cast<ExistsFunPattern>(P)->sub());
  case PatternKind::MatchConstraint:
    return rootOps(cast<MatchConstraintPattern>(P)->sub());
  case PatternKind::Mu:
    return rootOps(cast<MuPattern>(P)->body());
  case PatternKind::Var:
  case PatternKind::FunVarApp:
  case PatternKind::RecCall:
    return std::nullopt;
  }
  return std::nullopt;
}

class Engine {
public:
  Engine(Graph &G, const RuleSet &Rules, const graph::ShapeInference *SI,
         RewriteOptions Opts)
      : G(G), Rules(Rules), SI(SI), Opts(Opts), Arena(G.signature()),
        View(G, Arena) {}

  RewriteStats run(bool RewriteMode) {
    double Start = nowSeconds();
    computeRootFilters();

    bool Changed = true;
    while (Changed && Stats.Passes < Opts.MaxPasses &&
           !Stats.HitRewriteLimit) {
      Changed = false;
      ++Stats.Passes;
      if (Opts.Order == Traversal::OperandsFirst) {
        // Ascending ids visit operands before users; replacement nodes
        // appended mid-pass are picked up within the same pass.
        for (NodeId N = 0; N < G.numNodes(); ++N) {
          if (G.isDead(N))
            continue;
          ++Stats.NodesVisited;
          if (visitNode(N, RewriteMode))
            Changed = true;
          if (Stats.HitRewriteLimit)
            break;
        }
      } else {
        // RootsFirst: per-pass snapshot of the reverse topological order;
        // nodes swept mid-pass are skipped, new nodes wait for the next
        // pass.
        std::vector<NodeId> Order = G.topoOrder();
        for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
          NodeId N = *It;
          if (G.isDead(N))
            continue;
          ++Stats.NodesVisited;
          if (visitNode(N, RewriteMode))
            Changed = true;
          if (Stats.HitRewriteLimit)
            break;
        }
      }
      if (!RewriteMode)
        break; // match-only: a single traversal
    }
    Stats.NodesSwept += G.removeUnreachable();
    Stats.TotalSeconds = nowSeconds() - Start;
    return std::move(Stats);
  }

private:
  Graph &G;
  const RuleSet &Rules;
  const graph::ShapeInference *SI;
  RewriteOptions Opts;
  term::TermArena Arena;
  graph::TermView View;
  RewriteStats Stats;
  std::vector<std::optional<std::unordered_set<term::OpId>>> RootFilters;

  void computeRootFilters() {
    RootFilters.reserve(Rules.entries().size());
    for (const RewriteEntry &E : Rules.entries())
      RootFilters.push_back(rootOps(E.Pattern->Pat));
  }

  PatternStats &statsFor(const RewriteEntry &E) {
    return Stats.PerPattern[std::string(E.Pattern->Name.str())];
  }

  /// Tries each pattern in order at node N; on a match fires the first rule
  /// whose guard passes. Returns true if the graph changed.
  bool visitNode(NodeId N, bool RewriteMode) {
    const auto &Entries = Rules.entries();
    for (size_t I = 0; I != Entries.size(); ++I) {
      const RewriteEntry &E = Entries[I];
      PatternStats &PS = statsFor(E);
      if (Opts.UseRootIndex && RootFilters[I] &&
          !RootFilters[I]->count(G.op(N))) {
        ++PS.RootSkips;
        continue;
      }

      double T0 = nowSeconds();
      term::TermRef T = View.termFor(N);
      MatchResult MR =
          Opts.UseFastMatcher
              ? match::FastMatcher::run(E.Pattern->Pat, T, Arena,
                                        Opts.MachineOpts)
              : match::matchPattern(E.Pattern->Pat, T, Arena,
                                    Opts.MachineOpts);
      MachineStatus S = MR.Status;
      ++PS.Attempts;
      PS.MachineSteps += MR.Stats.Steps;
      PS.Backtracks += MR.Stats.Backtracks;
      double Elapsed = nowSeconds() - T0;
      PS.Seconds += Elapsed;
      Stats.MatchSeconds += Elapsed;
      if (S != MachineStatus::Success) {
        // Ablation: without memoization, drop conversions after every
        // attempt (the witness of a *successful* match still needs the
        // term→node map until its replacement has been built).
        if (!Opts.MemoizeTermView)
          View.invalidate();
        continue;
      }

      ++PS.Matches;
      ++Stats.TotalMatches;
      if (!RewriteMode || E.Rules.empty()) {
        if (!Opts.MemoizeTermView)
          View.invalidate();
        continue;
      }

      bool Fired = fireFirstRule(N, E, MR.W, PS);
      if (!Fired && !Opts.MemoizeTermView)
        View.invalidate();
      if (Fired)
        return true;
      ++PS.GuardRejects;
    }
    return false;
  }

  bool fireFirstRule(NodeId N, const RewriteEntry &E, const match::Witness &W,
                     PatternStats &PS) {
    match::SubstEnv Env(W.Theta, W.Phi, Arena);
    for (const RewriteRule *R : E.Rules) {
      if (R->Guard && !R->Guard->evalBool(Env).truthy())
        continue;
      NodeId FirstNewNode = static_cast<NodeId>(G.numNodes());
      NodeId Replacement = buildRhs(G, View, R->Rhs, W, *SI);
      if (Replacement == graph::InvalidNode)
        continue; // RHS build failed (unbound var); try next rule
      // Destructive replacement (§2): redirect all *existing* uses — the
      // replacement's own references to the matched value stay — then
      // sweep the now-unreachable matched subgraph so it is not matched
      // again.
      G.replaceAllUses(N, Replacement, FirstNewNode);
      Stats.NodesSwept += G.removeUnreachable();
      View.invalidate();
      ++PS.RulesFired;
      ++Stats.TotalFired;
      if (Stats.TotalFired >= Opts.MaxRewrites)
        Stats.HitRewriteLimit = true;
      return true;
    }
    return false;
  }
};

} // namespace

NodeId pypm::rewrite::buildRhs(Graph &G, graph::TermView &View,
                               const RhsExpr *Rhs, const match::Witness &W,
                               const graph::ShapeInference &SI) {
  switch (Rhs->kind()) {
  case RhsKind::VarRef: {
    std::optional<term::TermRef> T = W.Theta.lookup(Rhs->var());
    if (!T)
      return graph::InvalidNode;
    return View.nodeFor(*T);
  }
  case RhsKind::App:
  case RhsKind::FunVarApp: {
    term::OpId Op;
    if (Rhs->kind() == RhsKind::App) {
      Op = Rhs->op();
    } else {
      std::optional<term::OpId> Bound = W.Phi.lookup(Rhs->funVar());
      if (!Bound)
        return graph::InvalidNode;
      Op = *Bound;
    }
    std::vector<NodeId> Children;
    Children.reserve(Rhs->children().size());
    for (const RhsExpr *C : Rhs->children()) {
      NodeId Child = buildRhs(G, View, C, W, SI);
      if (Child == graph::InvalidNode)
        return graph::InvalidNode;
      Children.push_back(Child);
    }
    match::SubstEnv Env(W.Theta, W.Phi, View.arena());
    std::vector<term::Attr> Attrs;
    for (const RhsExpr::AttrTemplate &A : Rhs->attrTemplates()) {
      pattern::GuardEval V = A.Value->evalInt(Env);
      if (!V.ok())
        return graph::InvalidNode;
      Attrs.push_back({A.Key, V.Value});
    }
    NodeId N = G.addNode(Op, std::span<const NodeId>(Children),
                         std::move(Attrs));
    SI.inferNode(G, N);
    return N;
  }
  }
  return graph::InvalidNode;
}

RewriteStats pypm::rewrite::rewriteToFixpoint(Graph &G, const RuleSet &Rules,
                                              const graph::ShapeInference &SI,
                                              RewriteOptions Opts) {
  return Engine(G, Rules, &SI, Opts).run(/*RewriteMode=*/true);
}

RewriteStats pypm::rewrite::matchAll(Graph &G, const RuleSet &Rules,
                                     RewriteOptions Opts) {
  return Engine(G, Rules, nullptr, Opts).run(/*RewriteMode=*/false);
}

std::string RewriteStats::summary() const {
  std::string Out;
  Out += "passes=" + std::to_string(Passes);
  Out += " visited=" + std::to_string(NodesVisited);
  Out += " matches=" + std::to_string(TotalMatches);
  Out += " fired=" + std::to_string(TotalFired);
  Out += " swept=" + std::to_string(NodesSwept);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), " matchTime=%.3fms totalTime=%.3fms",
                MatchSeconds * 1e3, TotalSeconds * 1e3);
  Out += Buf;
  for (const auto &[Name, PS] : PerPattern) {
    std::snprintf(Buf, sizeof(Buf), "\n  %-18s", Name.c_str());
    Out += Buf;
    Out += "attempts=" + std::to_string(PS.Attempts) +
           " matches=" + std::to_string(PS.Matches) +
           " fired=" + std::to_string(PS.RulesFired) +
           " steps=" + std::to_string(PS.MachineSteps);
    std::snprintf(Buf, sizeof(Buf), " time=%.3fms", PS.Seconds * 1e3);
    Out += Buf;
  }
  return Out;
}
