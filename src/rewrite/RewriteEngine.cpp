//===- rewrite/RewriteEngine.cpp - Greedy fixpoint rewriting ------------------===//
//
// Two execution strategies share one Engine:
//
//  - NumThreads == 0: the serial legacy loop — visit nodes in canonical
//    order, try patterns in order, fire the first passing rule (§2.4).
//
//  - NumThreads >= 1: per pass, match *discovery* fans out over a
//    work-stealing pool. Workers only read a frozen snapshot of the graph
//    (each with a private TermArena + memoized TermView), recording per
//    (node, pattern) outcomes. The commit phase then replays the serial
//    traversal: at a node untouched by earlier fires it skips the attempts
//    discovery proved fruitless (copying their counters) and re-runs only
//    the matching entry for real; at a node whose unrolling an earlier
//    fire changed ("dirty") it falls back to the full serial visit. The
//    rewritten graph and all counting stats are therefore identical to the
//    serial engine's at any thread count. See DESIGN.md §"Parallel
//    discovery, serial commit".
//
//===----------------------------------------------------------------------===//

#include "rewrite/RewriteEngine.h"

#include "match/Declarative.h"
#include "match/FastMatcher.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_set>

using namespace pypm;
using namespace pypm::rewrite;
using namespace pypm::pattern;
using graph::Graph;
using graph::NodeId;
using match::Machine;
using match::MachineStatus;
using match::MatchResult;

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// The set of operators a pattern can match at its root, or nullopt for
/// "any" (root is a variable, function variable, or recursive call).
std::optional<std::unordered_set<term::OpId>> rootOps(const Pattern *P) {
  switch (P->kind()) {
  case PatternKind::App:
    return std::unordered_set<term::OpId>{cast<AppPattern>(P)->op()};
  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    auto L = rootOps(AP->left());
    auto R = rootOps(AP->right());
    if (!L || !R)
      return std::nullopt;
    L->insert(R->begin(), R->end());
    return L;
  }
  case PatternKind::Guarded:
    return rootOps(cast<GuardedPattern>(P)->sub());
  case PatternKind::Exists:
    return rootOps(cast<ExistsPattern>(P)->sub());
  case PatternKind::ExistsFun:
    return rootOps(cast<ExistsFunPattern>(P)->sub());
  case PatternKind::MatchConstraint:
    return rootOps(cast<MatchConstraintPattern>(P)->sub());
  case PatternKind::Mu:
    return rootOps(cast<MuPattern>(P)->body());
  case PatternKind::Var:
  case PatternKind::FunVarApp:
  case PatternKind::RecCall:
    return std::nullopt;
  }
  return std::nullopt;
}

/// Outcome of one speculative (node, pattern-entry) attempt on the frozen
/// snapshot. Only outcomes the commit phase can replay without re-matching
/// are distinguished; a match on an entry that has rules ends the node's
/// discovery (the serial logic decides fire-or-continue at commit time).
enum class AttemptKind : uint8_t {
  RootSkip,       ///< prefilter skipped the machine entirely
  NoMatch,        ///< Failure or OutOfFuel: serial would just continue
  MatchNoRules,   ///< match counted, nothing can fire (match-only entry)
  MatchWithRules, ///< match with candidate rules: re-run serially at commit
};

struct Attempt {
  uint32_t Entry = 0;
  AttemptKind Kind = AttemptKind::NoMatch;
  uint64_t Steps = 0;
  uint64_t Backtracks = 0;
  double Seconds = 0.0;
};

/// Per-node discovery record: the attempt sequence the serial engine would
/// perform, ending at the first entry that might fire (if any).
using NodeDiscovery = std::vector<Attempt>;

class Engine {
public:
  Engine(Graph &G, const RuleSet &Rules, const graph::ShapeInference *SI,
         RewriteOptions Opts)
      : G(G), Rules(Rules), SI(SI), Opts(Opts), Arena(G.signature()),
        View(G, Arena) {}

  RewriteStats run(bool RewriteMode) {
    return Opts.NumThreads == 0 ? runSerial(RewriteMode)
                                : runParallel(RewriteMode);
  }

private:
  /// Per-worker discovery state: a private arena and memoized term view
  /// (conversion caches must not be shared — hash-consing mutates), plus
  /// speculative per-entry counters merged into RewriteStats::Discovery.
  struct WorkerCtx {
    term::TermArena Arena;
    graph::TermView View;
    std::vector<PatternStats> Entry;

    WorkerCtx(const Graph &G, size_t NumEntries)
        : Arena(G.signature()), View(G, Arena), Entry(NumEntries) {}
  };

  Graph &G;
  const RuleSet &Rules;
  const graph::ShapeInference *SI;
  RewriteOptions Opts;
  term::TermArena Arena;
  graph::TermView View;
  RewriteStats Stats;
  std::vector<std::optional<std::unordered_set<term::OpId>>> RootFilters;
  /// Commit-phase invalidation bits over the pass's snapshot ids. Empty in
  /// the serial engine (tracking disabled).
  std::vector<uint8_t> Dirty;

  RewriteStats runSerial(bool RewriteMode) {
    double Start = nowSeconds();
    computeRootFilters();

    bool Changed = true;
    while (Changed && Stats.Passes < Opts.MaxPasses &&
           !Stats.HitRewriteLimit) {
      Changed = false;
      ++Stats.Passes;
      if (Opts.Order == Traversal::OperandsFirst) {
        // Ascending ids visit operands before users; replacement nodes
        // appended mid-pass are picked up within the same pass.
        for (NodeId N = 0; N < G.numNodes(); ++N) {
          if (G.isDead(N))
            continue;
          ++Stats.NodesVisited;
          if (visitNode(N, RewriteMode))
            Changed = true;
          if (Stats.HitRewriteLimit)
            break;
        }
      } else {
        // RootsFirst: per-pass snapshot of the reverse topological order;
        // nodes swept mid-pass are skipped, new nodes wait for the next
        // pass.
        std::vector<NodeId> Order = G.topoOrder();
        for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
          NodeId N = *It;
          if (G.isDead(N))
            continue;
          ++Stats.NodesVisited;
          if (visitNode(N, RewriteMode))
            Changed = true;
          if (Stats.HitRewriteLimit)
            break;
        }
      }
      if (!RewriteMode)
        break; // match-only: a single traversal
    }
    return finish(Start);
  }

  RewriteStats runParallel(bool RewriteMode) {
    double Start = nowSeconds();
    computeRootFilters();
    ThreadPool Pool(Opts.NumThreads);
    const size_t NumEntries = Rules.entries().size();

    bool Changed = true;
    while (Changed && Stats.Passes < Opts.MaxPasses &&
           !Stats.HitRewriteLimit) {
      Changed = false;
      ++Stats.Passes;

      // Freeze the traversal: ids below SnapshotSize in the order the
      // commit phase will walk them. Workers only ever read the graph as
      // it is right now.
      const size_t SnapshotSize = G.numNodes();
      std::vector<NodeId> Work;
      std::vector<NodeId> RootsOrder; // RootsFirst commit order
      if (Opts.Order == Traversal::OperandsFirst) {
        Work.reserve(SnapshotSize);
        for (NodeId N = 0; N < SnapshotSize; ++N)
          if (!G.isDead(N))
            Work.push_back(N);
      } else {
        std::vector<NodeId> Topo = G.topoOrder();
        RootsOrder.assign(Topo.rbegin(), Topo.rend());
        Work = RootsOrder;
      }

      // Parallel discovery over the frozen snapshot.
      std::vector<std::unique_ptr<WorkerCtx>> Ctxs;
      Ctxs.reserve(Pool.size());
      for (unsigned I = 0; I != Pool.size(); ++I)
        Ctxs.push_back(std::make_unique<WorkerCtx>(G, NumEntries));
      std::vector<NodeDiscovery> Disc(SnapshotSize);
      double D0 = nowSeconds();
      Pool.parallelFor(Work.size(), [&](size_t I, unsigned Worker) {
        NodeId N = Work[I];
        discoverNode(N, *Ctxs[Worker], Disc[N], RewriteMode);
      });
      double DiscoveryWall = nowSeconds() - D0;
      Stats.DiscoverySeconds += DiscoveryWall;
      // Wall-clock, counted once — NOT the per-worker CPU sum — so
      // MatchSeconds <= TotalSeconds stays true by construction.
      Stats.MatchSeconds += DiscoveryWall;
      for (auto &Ctx : Ctxs)
        for (size_t I = 0; I != NumEntries; ++I)
          Stats.Discovery[entryName(Rules.entries()[I])].merge(Ctx->Entry[I]);

      // Serial commit in the canonical order; fires invalidate via Dirty.
      Dirty.assign(SnapshotSize, 0);
      if (Opts.Order == Traversal::OperandsFirst) {
        for (NodeId N = 0; N < G.numNodes(); ++N) {
          if (G.isDead(N))
            continue;
          ++Stats.NodesVisited;
          bool Fired = (N < SnapshotSize && !Dirty[N])
                           ? commitNode(N, Disc[N], RewriteMode)
                           : visitNode(N, RewriteMode);
          if (Fired)
            Changed = true;
          if (Stats.HitRewriteLimit)
            break;
        }
      } else {
        for (NodeId N : RootsOrder) {
          if (G.isDead(N))
            continue;
          ++Stats.NodesVisited;
          bool Fired = !Dirty[N] ? commitNode(N, Disc[N], RewriteMode)
                                 : visitNode(N, RewriteMode);
          if (Fired)
            Changed = true;
          if (Stats.HitRewriteLimit)
            break;
        }
      }
      Dirty.clear();
      if (!RewriteMode)
        break; // match-only: a single traversal
    }
    return finish(Start);
  }

  RewriteStats finish(double Start) {
    Stats.NodesSwept += G.removeUnreachable();
    Stats.TotalSeconds = nowSeconds() - Start;
    if (Opts.NumThreads == 0)
      Stats.DiscoverySeconds = Stats.MatchSeconds;
    return std::move(Stats);
  }

  void computeRootFilters() {
    RootFilters.reserve(Rules.entries().size());
    for (const RewriteEntry &E : Rules.entries())
      RootFilters.push_back(rootOps(E.Pattern->Pat));
  }

  static std::string entryName(const RewriteEntry &E) {
    return std::string(E.Pattern->Name.str());
  }

  PatternStats &statsFor(const RewriteEntry &E) {
    return Stats.PerPattern[entryName(E)];
  }

  /// Speculative match attempts for one node against the frozen snapshot,
  /// mirroring visitNode's entry order exactly. Runs on a worker thread:
  /// reads G, writes only worker-private state and this node's record.
  void discoverNode(NodeId N, WorkerCtx &W, NodeDiscovery &D,
                    bool RewriteMode) const {
    const auto &Entries = Rules.entries();
    D.reserve(Entries.size());
    for (size_t I = 0; I != Entries.size(); ++I) {
      const RewriteEntry &E = Entries[I];
      PatternStats &WS = W.Entry[I];
      Attempt A;
      A.Entry = static_cast<uint32_t>(I);
      if (Opts.UseRootIndex && RootFilters[I] &&
          !RootFilters[I]->count(G.op(N))) {
        ++WS.RootSkips;
        A.Kind = AttemptKind::RootSkip;
        D.push_back(A);
        continue;
      }

      double T0 = nowSeconds();
      term::TermRef T = W.View.termFor(N);
      MatchResult MR =
          Opts.UseFastMatcher
              ? match::FastMatcher::run(E.Pattern->Pat, T, W.Arena,
                                        Opts.MachineOpts)
              : match::matchPattern(E.Pattern->Pat, T, W.Arena,
                                    Opts.MachineOpts);
      double Elapsed = nowSeconds() - T0;
      ++WS.Attempts;
      WS.MachineSteps += MR.Stats.Steps;
      WS.Backtracks += MR.Stats.Backtracks;
      WS.Seconds += Elapsed;
      A.Steps = MR.Stats.Steps;
      A.Backtracks = MR.Stats.Backtracks;
      A.Seconds = Elapsed;
      if (MR.Status != MachineStatus::Success) {
        if (!Opts.MemoizeTermView)
          W.View.invalidate();
        D.push_back(A);
        continue;
      }
      ++WS.Matches;
      if (!RewriteMode || E.Rules.empty()) {
        A.Kind = AttemptKind::MatchNoRules;
        if (!Opts.MemoizeTermView)
          W.View.invalidate();
        D.push_back(A);
        continue;
      }
      // A rule might fire here; whether it does (guards, RHS build) is the
      // commit phase's call, against the live graph.
      A.Kind = AttemptKind::MatchWithRules;
      D.push_back(A);
      return;
    }
  }

  /// Commit-phase replay of one *clean* node: copies the counters of
  /// attempts discovery proved fruitless and re-runs only a potential
  /// firing entry for real. Observably identical to visitNode(N), cheaper
  /// by every failed matcher run. Returns true if the graph changed.
  bool commitNode(NodeId N, const NodeDiscovery &D, bool RewriteMode) {
    const auto &Entries = Rules.entries();
    for (const Attempt &A : D) {
      const RewriteEntry &E = Entries[A.Entry];
      PatternStats &PS = statsFor(E);
      switch (A.Kind) {
      case AttemptKind::RootSkip:
        ++PS.RootSkips;
        break;
      case AttemptKind::NoMatch:
        ++PS.Attempts;
        PS.MachineSteps += A.Steps;
        PS.Backtracks += A.Backtracks;
        PS.Seconds += A.Seconds;
        break;
      case AttemptKind::MatchNoRules:
        ++PS.Attempts;
        PS.MachineSteps += A.Steps;
        PS.Backtracks += A.Backtracks;
        PS.Seconds += A.Seconds;
        ++PS.Matches;
        ++Stats.TotalMatches;
        break;
      case AttemptKind::MatchWithRules:
        // The node is clean, so the match re-occurs identically on the
        // live graph; resume the serial logic at this entry — it re-counts
        // this attempt itself, handles guard dispatch and firing, and
        // continues with the remaining entries when nothing fires.
        return visitNode(N, RewriteMode, A.Entry);
      }
    }
    return false;
  }

  /// Tries each pattern from \p StartEntry in order at node N; on a match
  /// fires the first rule whose guard passes. Returns true if the graph
  /// changed.
  bool visitNode(NodeId N, bool RewriteMode, size_t StartEntry = 0) {
    const auto &Entries = Rules.entries();
    for (size_t I = StartEntry; I != Entries.size(); ++I) {
      const RewriteEntry &E = Entries[I];
      PatternStats &PS = statsFor(E);
      if (Opts.UseRootIndex && RootFilters[I] &&
          !RootFilters[I]->count(G.op(N))) {
        ++PS.RootSkips;
        continue;
      }

      double T0 = nowSeconds();
      term::TermRef T = View.termFor(N);
      MatchResult MR =
          Opts.UseFastMatcher
              ? match::FastMatcher::run(E.Pattern->Pat, T, Arena,
                                        Opts.MachineOpts)
              : match::matchPattern(E.Pattern->Pat, T, Arena,
                                    Opts.MachineOpts);
      MachineStatus S = MR.Status;
      ++PS.Attempts;
      PS.MachineSteps += MR.Stats.Steps;
      PS.Backtracks += MR.Stats.Backtracks;
      double Elapsed = nowSeconds() - T0;
      PS.Seconds += Elapsed;
      Stats.MatchSeconds += Elapsed;
      if (S != MachineStatus::Success) {
        // Ablation: without memoization, drop conversions after every
        // attempt (the witness of a *successful* match still needs the
        // term→node map until its replacement has been built).
        if (!Opts.MemoizeTermView)
          View.invalidate();
        continue;
      }

      ++PS.Matches;
      ++Stats.TotalMatches;
      if (!RewriteMode || E.Rules.empty()) {
        if (!Opts.MemoizeTermView)
          View.invalidate();
        continue;
      }

      bool Fired = fireFirstRule(N, E, MR.W, PS);
      if (!Fired && !Opts.MemoizeTermView)
        View.invalidate();
      if (Fired)
        return true;
      ++PS.GuardRejects;
    }
    return false;
  }

  bool fireFirstRule(NodeId N, const RewriteEntry &E, const match::Witness &W,
                     PatternStats &PS) {
    match::SubstEnv Env(W.Theta, W.Phi, Arena);
    for (const RewriteRule *R : E.Rules) {
      if (R->Guard && !R->Guard->evalBool(Env).truthy())
        continue;
      NodeId FirstNewNode = static_cast<NodeId>(G.numNodes());
      NodeId Replacement = buildRhs(G, View, R->Rhs, W, *SI);
      if (Replacement == graph::InvalidNode)
        continue; // RHS build failed (unbound var); try next rule
      // Invalidate discovery results downstream of this fire *before* the
      // user edges are redirected away.
      if (!Dirty.empty())
        markUsersDirty(N);
      // Destructive replacement (§2): redirect all *existing* uses — the
      // replacement's own references to the matched value stay — then
      // sweep the now-unreachable matched subgraph so it is not matched
      // again.
      G.replaceAllUses(N, Replacement, FirstNewNode);
      Stats.NodesSwept += G.removeUnreachable();
      View.invalidate();
      ++PS.RulesFired;
      ++Stats.TotalFired;
      if (Stats.TotalFired >= Opts.MaxRewrites)
        Stats.HitRewriteLimit = true;
      return true;
    }
    return false;
  }

  /// Marks every transitive user of \p Root dirty: their tree unrollings
  /// reach Root, so redirecting Root's uses changes what they match.
  /// Conservative (already-committed users are marked too, harmlessly);
  /// traverses through post-snapshot nodes but only snapshot ids carry a
  /// bit — new nodes always take the serial path anyway.
  void markUsersDirty(NodeId Root) {
    std::vector<uint8_t> Seen(G.numNodes(), 0);
    std::vector<NodeId> Stack{Root};
    while (!Stack.empty()) {
      NodeId Cur = Stack.back();
      Stack.pop_back();
      for (NodeId U : G.users(Cur)) {
        if (Seen[U])
          continue;
        Seen[U] = 1;
        if (U < Dirty.size())
          Dirty[U] = 1;
        Stack.push_back(U);
      }
    }
  }
};

} // namespace

NodeId pypm::rewrite::buildRhs(Graph &G, graph::TermView &View,
                               const RhsExpr *Rhs, const match::Witness &W,
                               const graph::ShapeInference &SI) {
  switch (Rhs->kind()) {
  case RhsKind::VarRef: {
    std::optional<term::TermRef> T = W.Theta.lookup(Rhs->var());
    if (!T)
      return graph::InvalidNode;
    return View.nodeFor(*T);
  }
  case RhsKind::App:
  case RhsKind::FunVarApp: {
    term::OpId Op;
    if (Rhs->kind() == RhsKind::App) {
      Op = Rhs->op();
    } else {
      std::optional<term::OpId> Bound = W.Phi.lookup(Rhs->funVar());
      if (!Bound)
        return graph::InvalidNode;
      Op = *Bound;
    }
    std::vector<NodeId> Children;
    Children.reserve(Rhs->children().size());
    for (const RhsExpr *C : Rhs->children()) {
      NodeId Child = buildRhs(G, View, C, W, SI);
      if (Child == graph::InvalidNode)
        return graph::InvalidNode;
      Children.push_back(Child);
    }
    match::SubstEnv Env(W.Theta, W.Phi, View.arena());
    std::vector<term::Attr> Attrs;
    for (const RhsExpr::AttrTemplate &A : Rhs->attrTemplates()) {
      pattern::GuardEval V = A.Value->evalInt(Env);
      if (!V.ok())
        return graph::InvalidNode;
      Attrs.push_back({A.Key, V.Value});
    }
    NodeId N = G.addNode(Op, std::span<const NodeId>(Children),
                         std::move(Attrs));
    SI.inferNode(G, N);
    return N;
  }
  }
  return graph::InvalidNode;
}

RewriteStats pypm::rewrite::rewriteToFixpoint(Graph &G, const RuleSet &Rules,
                                              const graph::ShapeInference &SI,
                                              RewriteOptions Opts) {
  return Engine(G, Rules, &SI, Opts).run(/*RewriteMode=*/true);
}

RewriteStats pypm::rewrite::matchAll(Graph &G, const RuleSet &Rules,
                                     RewriteOptions Opts) {
  return Engine(G, Rules, nullptr, Opts).run(/*RewriteMode=*/false);
}

std::string RewriteStats::summary() const {
  std::string Out;
  Out += "passes=" + std::to_string(Passes);
  Out += " visited=" + std::to_string(NodesVisited);
  Out += " matches=" + std::to_string(TotalMatches);
  Out += " fired=" + std::to_string(TotalFired);
  Out += " swept=" + std::to_string(NodesSwept);
  char Buf[80];
  std::snprintf(Buf, sizeof(Buf),
                " matchTime=%.3fms discoveryTime=%.3fms totalTime=%.3fms",
                MatchSeconds * 1e3, DiscoverySeconds * 1e3,
                TotalSeconds * 1e3);
  Out += Buf;
  for (const auto &[Name, PS] : PerPattern) {
    std::snprintf(Buf, sizeof(Buf), "\n  %-18s", Name.c_str());
    Out += Buf;
    Out += "attempts=" + std::to_string(PS.Attempts) +
           " matches=" + std::to_string(PS.Matches) +
           " fired=" + std::to_string(PS.RulesFired) +
           " steps=" + std::to_string(PS.MachineSteps);
    std::snprintf(Buf, sizeof(Buf), " time=%.3fms", PS.Seconds * 1e3);
    Out += Buf;
  }
  return Out;
}
