//===- rewrite/RewriteEngine.cpp - Greedy fixpoint rewriting ------------------===//
//
// Two execution strategies share one Engine:
//
//  - NumThreads == 0: the serial legacy loop — visit nodes in canonical
//    order, try patterns in order, fire the first passing rule (§2.4).
//
//  - NumThreads >= 1: per pass, match *discovery* fans out over a
//    work-stealing pool. Workers only read a frozen snapshot of the graph
//    (each with a private TermArena + memoized TermView), recording per
//    (node, pattern) outcomes. The commit phase then replays the serial
//    traversal: at a node untouched by earlier fires it skips the attempts
//    discovery proved fruitless (copying their counters) and re-runs only
//    the matching entry for real; at a node whose unrolling an earlier
//    fire changed ("dirty") it falls back to the full serial visit. The
//    rewritten graph and all counting stats are therefore identical to the
//    serial engine's at any thread count. See DESIGN.md §"Parallel
//    discovery, serial commit".
//
// Resource governance rides on the same invariant: the Budget's step/μ
// ceilings are charged exclusively in committed order (never by discovery
// workers), quarantine counters advance in committed order, and absorbed
// faults are accounted at the committed attempt that observes them — so
// exhaustion, quarantine sets, and fault counts are bit-identical at any
// thread count. Faults themselves are transactional: every graph mutation
// before replaceAllUses is an appended (not yet referenced) node, so an
// exception mid-build leaves only unreachable orphans, which the rollback
// sweep removes. See DESIGN.md §"Failure taxonomy, budgets, and
// transactional commit".
//
//===----------------------------------------------------------------------===//

#include "rewrite/RewriteEngine.h"

#include "analysis/Analysis.h"
#include "analysis/CriticalPairs.h"
#include "match/Declarative.h"
#include "match/FastMatcher.h"
#include "plan/Interpreter.h"
#include "plan/PlanBuilder.h"
#include "plan/Profile.h"
#include "plan/aot/Library.h"
#include "plan/aot/Threaded.h"
#include "search/Search.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_set>

using namespace pypm;
using namespace pypm::rewrite;
using namespace pypm::pattern;
using graph::Graph;
using graph::NodeId;
using match::Machine;
using match::MachineStatus;
using match::MatchResult;

namespace {

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// The set of operators a pattern can match at its root, or nullopt for
/// "any" (root is a variable, function variable, or recursive call).
std::optional<std::unordered_set<term::OpId>> rootOps(const Pattern *P) {
  switch (P->kind()) {
  case PatternKind::App:
    return std::unordered_set<term::OpId>{cast<AppPattern>(P)->op()};
  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    auto L = rootOps(AP->left());
    auto R = rootOps(AP->right());
    if (!L || !R)
      return std::nullopt;
    L->insert(R->begin(), R->end());
    return L;
  }
  case PatternKind::Guarded:
    return rootOps(cast<GuardedPattern>(P)->sub());
  case PatternKind::Exists:
    return rootOps(cast<ExistsPattern>(P)->sub());
  case PatternKind::ExistsFun:
    return rootOps(cast<ExistsFunPattern>(P)->sub());
  case PatternKind::MatchConstraint:
    return rootOps(cast<MatchConstraintPattern>(P)->sub());
  case PatternKind::Mu:
    return rootOps(cast<MuPattern>(P)->body());
  case PatternKind::Var:
  case PatternKind::FunVarApp:
  case PatternKind::RecCall:
    return std::nullopt;
  }
  return std::nullopt;
}

/// Recursive worker behind rewrite::buildRhs. \p Faults lets the engine
/// arm the deterministic fault injector *inside* the builder (throwing
/// after some replacement nodes were already appended is exactly the case
/// the transactional-commit tests must cover); the public entry point
/// passes nullptr.
NodeId buildRhsImpl(Graph &G, graph::TermView &View, const RhsExpr *Rhs,
                    const match::Witness &W, const graph::ShapeInference &SI,
                    FaultInjector *Faults) {
  switch (Rhs->kind()) {
  case RhsKind::VarRef: {
    std::optional<term::TermRef> T = W.Theta.lookup(Rhs->var());
    if (!T)
      return graph::InvalidNode;
    return View.nodeFor(*T);
  }
  case RhsKind::App:
  case RhsKind::FunVarApp: {
    term::OpId Op;
    if (Rhs->kind() == RhsKind::App) {
      Op = Rhs->op();
    } else {
      std::optional<term::OpId> Bound = W.Phi.lookup(Rhs->funVar());
      if (!Bound)
        return graph::InvalidNode;
      Op = *Bound;
    }
    std::vector<NodeId> Children;
    Children.reserve(Rhs->children().size());
    for (const RhsExpr *C : Rhs->children()) {
      NodeId Child = buildRhsImpl(G, View, C, W, SI, Faults);
      if (Child == graph::InvalidNode)
        return graph::InvalidNode;
      Children.push_back(Child);
    }
    match::SubstEnv Env(W.Theta, W.Phi, View.arena());
    std::vector<term::Attr> Attrs;
    for (const RhsExpr::AttrTemplate &A : Rhs->attrTemplates()) {
      pattern::GuardEval V = A.Value->evalInt(Env);
      if (!V.ok())
        return graph::InvalidNode;
      Attrs.push_back({A.Key, V.Value});
    }
    if (Faults)
      Faults->onRhsBuild();
    NodeId N = G.addNode(Op, std::span<const NodeId>(Children),
                         std::move(Attrs));
    SI.inferNode(G, N);
    return N;
  }
  }
  return graph::InvalidNode;
}

/// Outcome of one speculative (node, pattern-entry) attempt on the frozen
/// snapshot. Only outcomes the commit phase can replay without re-matching
/// are distinguished; a match on an entry that has rules — or an exception
/// — ends the node's discovery (the serial logic decides what happens at
/// commit time).
enum class AttemptKind : uint8_t {
  RootSkip,       ///< prefilter skipped the machine entirely
  NoMatch,        ///< Failure or OutOfFuel: serial would just continue
  MatchNoRules,   ///< match counted, nothing can fire (match-only entry)
  MatchWithRules, ///< match with candidate rules: re-run serially at commit
  Threw,          ///< the attempt threw: re-run serially, absorb at commit
};

struct Attempt {
  uint32_t Entry = 0;
  AttemptKind Kind = AttemptKind::NoMatch;
  bool Fuel = false; ///< the machine ended OutOfFuel (quarantine feed)
  uint64_t Steps = 0;
  uint64_t Backtracks = 0;
  uint64_t MuUnfolds = 0;
  double Seconds = 0.0;
};

/// Per-node discovery record: the attempt sequence the serial engine would
/// perform, ending at the first entry that might fire (if any). Complete
/// distinguishes a finished record from one truncated by a worker-task
/// fault — the commit phase recovers the latter with a full serial visit.
struct NodeDiscovery {
  std::vector<Attempt> Attempts;
  bool Complete = false;
  /// When profiling, the worker's tree-traversal trace for this node. For a
  /// clean node it is byte-for-byte the trace the serial visit would have
  /// produced (same frozen snapshot, same tree), so the commit phase merges
  /// it instead of re-traversing — keeping profiles thread-count-invariant.
  plan::TraversalTrace Trace;
  bool Traced = false;
};

/// Reused matcher instances for batch mode (RewriteOptions::Batch), one
/// set per term arena: the serial/commit path owns one against the
/// engine arena, each discovery worker owns one against its private
/// arena. Reuse amortizes matcher construction — the scratch pattern
/// arena, the μ-unfold memo, container capacity — across every attempt
/// issued against that arena; see Interpreter::matchOne and
/// FastMatcher::matchOne for why reuse is observationally identical to
/// fresh construction (every counter, status, and visible binding
/// matches). The reference Machine is deliberately left un-batched: it
/// is the semantic yardstick, not a production path.
struct BatchMatchers {
  std::unique_ptr<plan::Interpreter> Interp;
  std::unique_ptr<match::FastMatcher> Fast;
  /// The AOT tiers always reuse their executor (construction amortization
  /// is part of their speedup); matchOne reuse is pinned observationally
  /// identical to fresh construction by the test_aot differentials.
  std::unique_ptr<plan::aot::ThreadedExec> Thr;
  std::unique_ptr<plan::aot::SoExec> So;
};

class Engine {
public:
  Engine(Graph &G, const RuleSet &Rules, const graph::ShapeInference *SI,
         RewriteOptions Opts)
      : G(G), Rules(Rules), SI(SI), Opts(Opts), Arena(G.signature()),
        View(G, Arena) {}

  RewriteStats run(bool RewriteMode) {
    const size_t NumEntries = Rules.entries().size();
    Quarantined.assign(NumEntries, 0);
    FuelExhausts.assign(NumEntries, 0);
    // Pre-quarantined entries are disabled silently: no status raise, no
    // QuarantinedPatterns listing — the status describes this run only.
    if (Opts.PreQuarantined)
      for (const std::string &Name : *Opts.PreQuarantined)
        for (size_t I = 0; I != NumEntries; ++I)
          if (entryName(Rules.entries()[I]) == Name)
            Quarantined[I] = 1;
    MK = Opts.matcher();
    if (planFamily(MK)) {
      if (Opts.PrecompiledPlan && planMatchesRules(*Opts.PrecompiledPlan)) {
        Plan = Opts.PrecompiledPlan;
      } else {
        double C0 = nowSeconds();
        OwnedPlan = std::make_unique<plan::Program>(
            plan::PlanBuilder::compile(Rules, G.signature()));
        Stats.PlanCompileSeconds = nowSeconds() - C0;
        Plan = OwnedPlan.get();
      }
    }
    if (MK == MatcherKind::PlanThreaded) {
      // One pre-decode per run (operands resolved, dispatch labels primed)
      // unless the caller handed in a stream decoded from this very plan —
      // then even the per-run decode disappears. Every attempt (fresh or
      // reused executor) runs the same stream either way.
      if (Opts.PrecompiledThreaded &&
          &Opts.PrecompiledThreaded->prog() == Plan) {
        Threaded = Opts.PrecompiledThreaded;
      } else {
        OwnedThreaded = std::make_unique<plan::aot::ThreadedProgram>(
            plan::aot::ThreadedProgram::decode(*Plan));
        Threaded = OwnedThreaded.get();
      }
    } else if (MK == MatcherKind::PlanAot) {
      // The library was validated by whoever loaded it, but against *their*
      // plan; this run's plan may be a fresh compile. Re-check, and demote
      // to the interpreter rather than run a mismatched artifact.
      if (Opts.AotLib && Opts.AotLib->matches(*Plan)) {
        AotLib = Opts.AotLib;
      } else {
        if (Opts.Diags)
          Opts.Diags->warning(
              {}, "aot.fallback",
              Opts.AotLib
                  ? "emitted-plan library does not match this run's plan "
                    "(stale artifact?); falling back to the interpreter"
                  : "matcher plan-aot selected but no emitted-plan library "
                    "was supplied; falling back to the interpreter");
        MK = MatcherKind::Plan;
      }
    }
    if (planFamily(MK) && Opts.PlanProfile) {
      // Arm committed-order profile recording. A populated profile that was
      // recorded against a different plan (stale ruleset) must not be mixed
      // in: skip recording, warn, and run unprofiled — outcomes are
      // unaffected either way.
      if (Opts.PlanProfile->bindTo(*Plan))
        Prof = Opts.PlanProfile;
      else if (Opts.Diags)
        Opts.Diags->warning({}, "plan profile ignored: it was recorded "
                                "against a different match plan (stale "
                                "ruleset?); recording disabled for this run");
    }
    Bgt = Opts.EngineBudget;
    if (Bgt) {
      Bgt->start();
      // Matchers poll the deadline/cancellation cooperatively; the step/μ
      // ceilings stay commit-order-only (determinism).
      Opts.MachineOpts.EngineBudget = Bgt;
    }
    Faults = Opts.Faults ? Opts.Faults : FaultInjector::global();
    // The batched frontier sweep replaces per-node discrimination-tree
    // walks; it only exists where those walks exist. Matcher *reuse* (the
    // other half of batch mode) keys off Opts.Batch alone.
    BatchActive = Opts.Batch && planFamily(MK) && Opts.UseRootIndex;
    // The serial path's reused AOT executors are constructed here, not
    // lazily at the first attempt: construction is run setup, and leaving
    // it lazy would bill the first *timed* attempt for it (visible as a
    // fixed per-run cost in DiscoverySeconds on small graphs). Placed
    // after the budget wiring above — executors copy MachineOpts, so an
    // earlier construction would silently drop the budget poll.
    if (Opts.NumThreads == 0) {
      if (MK == MatcherKind::PlanThreaded)
        SerialBatch.Thr = std::make_unique<plan::aot::ThreadedExec>(
            *Threaded, Arena, Opts.MachineOpts);
      else if (MK == MatcherKind::PlanAot && AotLib)
        SerialBatch.So = std::make_unique<plan::aot::SoExec>(
            *Plan, *AotLib, Arena, Opts.MachineOpts);
    }
    return Opts.NumThreads == 0 ? runSerial(RewriteMode)
                                : runParallel(RewriteMode);
  }

private:
  /// Per-worker discovery state: a private arena and memoized term view
  /// (conversion caches must not be shared — hash-consing mutates), plus
  /// speculative per-entry counters merged into RewriteStats::Discovery.
  struct WorkerCtx {
    term::TermArena Arena;
    graph::TermView View;
    std::vector<PatternStats> Entry;
    std::vector<uint8_t> Cand; ///< per-node plan candidate mask scratch
    BatchMatchers Batch;       ///< reused matchers (batch mode only)

    WorkerCtx(const Graph &G, size_t NumEntries)
        : Arena(G.signature()), View(G, Arena), Entry(NumEntries) {}
  };

  Graph &G;
  const RuleSet &Rules;
  const graph::ShapeInference *SI;
  RewriteOptions Opts;
  term::TermArena Arena;
  graph::TermView View;
  RewriteStats Stats;
  Budget *Bgt = nullptr;
  FaultInjector *Faults = nullptr;
  MatcherKind MK = MatcherKind::Fast;
  /// The compiled MatchPlan when MK == Plan (borrowed or freshly built).
  const plan::Program *Plan = nullptr;
  std::unique_ptr<plan::Program> OwnedPlan;
  /// The pre-decoded threaded stream when MK == PlanThreaded — borrowed
  /// from Opts.PrecompiledThreaded when that decodes this run's plan,
  /// otherwise decoded once per run into OwnedThreaded. Executors borrow
  /// it either way.
  const plan::aot::ThreadedProgram *Threaded = nullptr;
  std::unique_ptr<plan::aot::ThreadedProgram> OwnedThreaded;
  /// The validated emitted-plan library when MK == PlanAot (borrowed from
  /// Opts.AotLib after the fingerprint re-check in run()).
  const plan::aot::PlanLibrary *AotLib = nullptr;
  /// Armed (non-null) when Opts.PlanProfile bound to the run's plan. All
  /// counter updates happen in committed order — serial visits, commit-time
  /// trace merges, and commit-time replays — never on worker threads, so
  /// the recorded profile is bit-identical at any thread count.
  plan::Profile *Prof = nullptr;
  plan::TraversalTrace ScratchTrace; ///< serial-path traversal scratch
  std::vector<uint8_t> CandMask; ///< serial-path plan candidate scratch
  std::vector<std::optional<std::unordered_set<term::OpId>>> RootFilters;
  /// Commit-phase invalidation bits over the pass's snapshot ids. Empty in
  /// the serial engine (tracking disabled).
  std::vector<uint8_t> Dirty;
  /// Sticky per-entry quarantine bits, mutated in commit order only.
  std::vector<uint8_t> Quarantined;
  /// Pass-start snapshot of Quarantined, read by discovery workers while
  /// the commit phase may be quarantining more entries.
  std::vector<uint8_t> QSnapshot;
  /// Commit-order OutOfFuel counts per entry (feeds QuarantineThreshold).
  std::vector<uint32_t> FuelExhausts;
  /// Set once when the run must halt; sticky. None while running.
  BudgetReason Stop = BudgetReason::None;

  // --- Incremental re-discovery (RewriteOptions::Incremental) ---------
  /// Cross-pass match memo, indexed by node id: the attempt sequence of
  /// the node's last *fruitless* clean visit. Valid entries are replayed
  /// (counters copied, budget charged, quarantine advanced — exactly the
  /// parallel commit's clean-node replay) instead of re-running matchers.
  /// Invalidation is the dirty region of each fire: markUsersDirty clears
  /// the bit for every transitive user of the fired node, whose tree
  /// unrollings are the only ones the fire can change.
  std::vector<NodeDiscovery> Memo;
  std::vector<uint8_t> MemoValid;
  /// Recording target while a visitAndRecord live visit is running (null
  /// otherwise); RecDead poisons the record the moment the visit does
  /// anything a replay could not reproduce (guard evaluation, rule fire,
  /// fault absorption).
  NodeDiscovery *Rec = nullptr;
  bool RecDead = false;

  // --- Batched discovery (RewriteOptions::Batch) ----------------------
  /// True when the per-pass frontier sweep is on (Batch + Plan matcher +
  /// root index). Masks are per pass: BatchRoots lists the swept nodes,
  /// BatchRows maps node id -> row (UINT32_MAX when unswept), BatchMasks
  /// holds one candidates() row per root (stride = numEntries()), and
  /// BatchRowValid drops rows whose node's unrolling a mid-pass fire
  /// changed (they fall back to a live per-node walk).
  bool BatchActive = false;
  std::vector<NodeId> BatchRoots;
  std::vector<uint32_t> BatchRows;
  std::vector<uint8_t> BatchMasks;
  std::vector<uint8_t> BatchRowValid;
  std::vector<plan::TraversalTrace> BatchTraces;
  /// Reused matchers for the serial visit / commit path (batch mode).
  BatchMatchers SerialBatch;

  bool halted() const { return Stop != BudgetReason::None; }

  /// Records the halt cause once and escalates the run status.
  void halt(BudgetReason R) {
    if (halted())
      return;
    Stop = R;
    EngineStatusCode C = EngineStatusCode::BudgetExhausted;
    if (R == BudgetReason::Cancelled)
      C = EngineStatusCode::Cancelled;
    else if (R == BudgetReason::Fault)
      C = EngineStatusCode::FaultInjected;
    Stats.Status.raise(C, R);
  }

  /// Node-granularity poll: cancellation, deadline, memory estimate, and
  /// any ceiling already tripped by committed charges.
  bool shouldStop() {
    if (halted())
      return true;
    if (!Bgt)
      return false;
    BudgetReason R = Bgt->poll(G.approxMemoryBytes());
    if (R != BudgetReason::None)
      halt(R);
    return halted();
  }

  /// Commit-order accounting for one finished attempt. Identical calls are
  /// made by the serial visit and the parallel replay, so ceilings trip at
  /// the identical attempt regardless of thread count.
  void chargeAttempt(uint64_t Steps, uint64_t MuUnfolds) {
    if (Faults && Faults->onBudgetCharge()) {
      // Simulated exhaustion: counted as a fault, reported as the budget
      // trip it fakes.
      ++Stats.Status.FaultsAbsorbed;
      halt(BudgetReason::Steps);
      return;
    }
    if (!Bgt)
      return;
    Bgt->chargeSteps(Steps);
    Bgt->chargeMuUnfolds(MuUnfolds);
    BudgetReason R = Bgt->exceededCeiling();
    if (R != BudgetReason::None)
      halt(R);
  }

  /// Memo accounting, committed order only: a hit is a node replayed from
  /// the memo, a miss is any other committed node while incremental mode
  /// is on. Mirrored into the budget so governed runs report the matcher
  /// work the memo replaced next to the work that remained.
  void noteMemoHit() {
    ++Stats.MemoHits;
    if (Bgt)
      Bgt->chargeMemoHit();
  }
  void noteMemoMiss() {
    ++Stats.MemoMisses;
    if (Bgt)
      Bgt->chargeMemoMiss();
  }

  void ensureMemoSize() {
    if (Memo.size() < G.numNodes()) {
      Memo.resize(G.numNodes());
      MemoValid.resize(G.numNodes(), 0);
    }
  }

  void quarantineEntry(size_t I, const char *Why) {
    if (Quarantined[I])
      return;
    Quarantined[I] = 1;
    std::string Name = entryName(Rules.entries()[I]);
    Stats.Status.QuarantinedPatterns.push_back(Name);
    Stats.Status.raise(EngineStatusCode::PatternQuarantined);
    if (Opts.Diags)
      Opts.Diags->warning({}, "pattern '" + Name + "' quarantined (" + Why +
                                  "); disabled for the rest of the run");
  }

  /// An attempt on entry \p I ended OutOfFuel (committed order).
  void noteFuelExhaust(size_t I) {
    if (Opts.QuarantineThreshold == 0)
      return;
    if (++FuelExhausts[I] >= Opts.QuarantineThreshold)
      quarantineEntry(I, "fuel exhausted " +
                             std::to_string(FuelExhausts[I]) + " times");
  }

  void quarantineEntry(size_t I, const std::string &Why) {
    quarantineEntry(I, Why.c_str());
  }

  /// An exception escaped the matcher, a guard, or the RHS builder at the
  /// committed attempt (entry \p I): absorb it — quarantine the pattern or
  /// halt, per HaltOnFault — and keep the run alive either way.
  void onAttemptFault(size_t I, const char *What) {
    ++Stats.Status.FaultsAbsorbed;
    Stats.Status.raise(EngineStatusCode::FaultInjected);
    if (Opts.Diags)
      Opts.Diags->warning({}, "fault absorbed in pattern '" +
                                  entryName(Rules.entries()[I]) +
                                  "': " + What);
    if (Opts.HaltOnFault)
      halt(BudgetReason::Fault);
    else
      quarantineEntry(I, "fault");
  }

  /// A discovery task died before recording its node (ThreadPool drained
  /// the rest and rethrew the first exception). The truncated records are
  /// !Complete, so commit recovers them serially; nothing else is lost.
  void onDiscoveryFault(const char *What) {
    ++Stats.Status.FaultsAbsorbed;
    Stats.Status.raise(EngineStatusCode::FaultInjected);
    if (Opts.Diags)
      Opts.Diags->warning(
          {}, std::string("fault absorbed in a discovery task: ") + What);
    if (Opts.HaltOnFault)
      halt(BudgetReason::Fault);
  }

  RewriteStats runSerial(bool RewriteMode) {
    double Start = nowSeconds();
    computeRootFilters();

    bool Changed = true;
    while (Changed && Stats.Passes < Opts.MaxPasses && !halted()) {
      Changed = false;
      ++Stats.Passes;
      prepareBatchMasks();
      if (Opts.Order == Traversal::OperandsFirst) {
        // Ascending ids visit operands before users; replacement nodes
        // appended mid-pass are picked up within the same pass.
        for (NodeId N = 0; N < G.numNodes(); ++N) {
          if (G.isDead(N))
            continue;
          if (shouldStop())
            break;
          ++Stats.NodesVisited;
          if (processSerialNode(N, RewriteMode))
            Changed = true;
        }
      } else {
        // RootsFirst: per-pass snapshot of the reverse topological order;
        // nodes swept mid-pass are skipped, new nodes wait for the next
        // pass.
        std::vector<NodeId> Order = G.topoOrder();
        for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
          NodeId N = *It;
          if (G.isDead(N))
            continue;
          if (shouldStop())
            break;
          ++Stats.NodesVisited;
          if (processSerialNode(N, RewriteMode))
            Changed = true;
        }
      }
      if (!RewriteMode)
        break; // match-only: a single traversal
    }
    return finish(Start);
  }

  /// Serial per-node dispatch: replay the cross-pass memo when it is
  /// valid, otherwise visit live (recording a fresh memo in incremental
  /// mode). With incremental off this is exactly visitNode.
  bool processSerialNode(NodeId N, bool RewriteMode) {
    if (!Opts.Incremental)
      return visitNode(N, RewriteMode);
    if (N < MemoValid.size() && MemoValid[N]) {
      noteMemoHit();
      return replayMemo(N, RewriteMode);
    }
    noteMemoMiss();
    return visitAndRecord(N, RewriteMode);
  }

  RewriteStats runParallel(bool RewriteMode) {
    double Start = nowSeconds();
    computeRootFilters();
    ThreadPool Pool(Opts.NumThreads);
    const size_t NumEntries = Rules.entries().size();

    bool Changed = true;
    while (Changed && Stats.Passes < Opts.MaxPasses && !halted()) {
      Changed = false;
      ++Stats.Passes;

      // Freeze the traversal: ids below SnapshotSize in the order the
      // commit phase will walk them. Workers only ever read the graph as
      // it is right now — including the pass-start quarantine set (commit
      // may grow the live set mid-pass).
      const size_t SnapshotSize = G.numNodes();
      QSnapshot = Quarantined;
      prepareBatchMasks();
      // Memo-valid nodes need no speculative discovery: the commit phase
      // replays their recorded attempts directly, so incremental mode
      // drops them from the work list (the discovery fan-out shrinks to
      // the dirty region plus new nodes).
      auto NeedsDiscovery = [&](NodeId N) {
        return !(Opts.Incremental && N < MemoValid.size() && MemoValid[N]);
      };
      std::vector<NodeId> Work;
      std::vector<NodeId> RootsOrder; // RootsFirst commit order
      if (Opts.Order == Traversal::OperandsFirst) {
        Work.reserve(SnapshotSize);
        for (NodeId N = 0; N < SnapshotSize; ++N)
          if (!G.isDead(N) && NeedsDiscovery(N))
            Work.push_back(N);
      } else {
        std::vector<NodeId> Topo = G.topoOrder();
        RootsOrder.assign(Topo.rbegin(), Topo.rend());
        Work.reserve(RootsOrder.size());
        for (NodeId N : RootsOrder)
          if (NeedsDiscovery(N))
            Work.push_back(N);
      }

      // Parallel discovery over the frozen snapshot. A task that throws
      // (injected or real) costs only its own node's record — the pool
      // drains every other task first — and never escapes this block.
      std::vector<std::unique_ptr<WorkerCtx>> Ctxs;
      Ctxs.reserve(Pool.size());
      for (unsigned I = 0; I != Pool.size(); ++I)
        Ctxs.push_back(std::make_unique<WorkerCtx>(G, NumEntries));
      std::vector<NodeDiscovery> Disc(SnapshotSize);
      double D0 = nowSeconds();
      try {
        Pool.parallelFor(Work.size(), [&](size_t I, unsigned Worker) {
          if (Faults)
            Faults->onWorkerTask();
          NodeId N = Work[I];
          discoverNode(N, *Ctxs[Worker], Disc[N], RewriteMode);
        });
      } catch (const std::exception &Ex) {
        onDiscoveryFault(Ex.what());
      } catch (...) {
        onDiscoveryFault("unknown exception");
      }
      double DiscoveryWall = nowSeconds() - D0;
      Stats.DiscoverySeconds += DiscoveryWall;
      // Wall-clock, counted once — NOT the per-worker CPU sum — so
      // MatchSeconds <= TotalSeconds stays true by construction.
      Stats.MatchSeconds += DiscoveryWall;
      for (auto &Ctx : Ctxs)
        for (size_t I = 0; I != NumEntries; ++I)
          Stats.Discovery[entryName(Rules.entries()[I])].merge(Ctx->Entry[I]);

      // Serial commit in the canonical order; fires invalidate via Dirty.
      // Per node: a still-valid memo is replayed (incremental hit), a
      // clean discovered record is replayed via commitNode (and adopted
      // as the node's memo when it proved the node fruitless), and a
      // dirty or post-snapshot node is visited live — recording a fresh
      // memo, exactly as the serial engine would at this point.
      Dirty.assign(SnapshotSize, 0);
      auto CommitOne = [&](NodeId N, bool Clean) {
        if (Clean && Opts.Incremental && N < MemoValid.size() &&
            MemoValid[N]) {
          noteMemoHit();
          return replayMemo(N, RewriteMode);
        }
        if (Opts.Incremental)
          noteMemoMiss();
        if (Clean) {
          bool Fired = commitNode(N, Disc[N], RewriteMode);
          maybeStoreMemo(N, Disc[N], Fired);
          return Fired;
        }
        return Opts.Incremental ? visitAndRecord(N, RewriteMode)
                                : visitNode(N, RewriteMode);
      };
      if (Opts.Order == Traversal::OperandsFirst) {
        for (NodeId N = 0; N < G.numNodes(); ++N) {
          if (G.isDead(N))
            continue;
          if (shouldStop())
            break;
          ++Stats.NodesVisited;
          if (CommitOne(N, N < SnapshotSize && !Dirty[N]))
            Changed = true;
        }
      } else {
        for (NodeId N : RootsOrder) {
          if (G.isDead(N))
            continue;
          if (shouldStop())
            break;
          ++Stats.NodesVisited;
          if (CommitOne(N, !Dirty[N]))
            Changed = true;
        }
      }
      Dirty.clear();
      if (!RewriteMode)
        break; // match-only: a single traversal
    }
    return finish(Start);
  }

  RewriteStats finish(double Start) {
    Stats.NodesSwept += G.removeUnreachable();
    Stats.TotalSeconds = nowSeconds() - Start;
    if (Opts.NumThreads == 0)
      Stats.DiscoverySeconds = Stats.MatchSeconds;
    return std::move(Stats);
  }

  void computeRootFilters() {
    if (planFamily(MK))
      return; // the plan's discrimination tree subsumes the root index
    RootFilters.reserve(Rules.entries().size());
    for (const RewriteEntry &E : Rules.entries())
      RootFilters.push_back(rootOps(E.Pattern->Pat));
  }

  /// A borrowed precompiled plan is only usable if it was compiled from
  /// this rule set (same entries, same order).
  bool planMatchesRules(const plan::Program &P) const {
    const auto &Entries = Rules.entries();
    if (P.Entries.size() != Entries.size())
      return false;
    for (size_t I = 0; I != Entries.size(); ++I)
      if (P.Entries[I].PatternName != Entries[I].Pattern->Name)
        return false;
    return true;
  }

  /// Entry-skip decision shared by the serial visit and discovery: true if
  /// the active prefilter proves entry \p I cannot match at \p N. \p Cand
  /// is the node's plan candidate mask (empty when the plan prefilter is
  /// off). Identical inputs on both paths, so skip decisions — and with
  /// them RootSkips counters — are thread-count-independent.
  bool prefilteredOut(size_t I, NodeId N,
                      const std::vector<uint8_t> &Cand) const {
    if (!Opts.UseRootIndex)
      return false;
    if (planFamily(MK))
      return !Cand.empty() && !Cand[I];
    return RootFilters[I] && !RootFilters[I]->count(G.op(N));
  }

  /// Computes the plan candidate mask for one node (no-op unless the plan
  /// prefilter is active). \p Trace, when non-null, receives the tree
  /// traversal trace (profiling).
  void planCandidates(NodeId N, std::vector<uint8_t> &Cand,
                      plan::TraversalTrace *Trace = nullptr) const {
    if (planFamily(MK) && Opts.UseRootIndex)
      Plan->candidates(G, N, Cand, Trace);
    else
      Cand.clear();
  }

  /// One matcher run, dispatched over the active MatcherKind. Per-attempt
  /// observable behavior (status, witness, stats) is identical across the
  /// three; only cost differs. \p RecProf is the profile to record entry
  /// attempt/match counters into: the serial visit passes the armed
  /// profile, discovery workers always pass nullptr (committed order only
  /// — commitNode replays the counters from the attempt records instead).
  /// \p BM, when non-null (batch mode), supplies reused matcher instances
  /// for \p A — constructed on first use, then amortized across every
  /// attempt against that arena; the reference Machine always runs fresh.
  MatchResult runMatcher(size_t EntryIdx, const RewriteEntry &E,
                         term::TermRef T, const term::TermArena &A,
                         plan::Profile *RecProf = nullptr,
                         BatchMatchers *BM = nullptr) const {
    switch (MK) {
    case MatcherKind::Plan:
      if (BM) {
        if (!BM->Interp)
          BM->Interp = std::make_unique<plan::Interpreter>(*Plan, A,
                                                           Opts.MachineOpts);
        BM->Interp->setProfile(RecProf);
        return BM->Interp->matchOne(EntryIdx, T);
      }
      return plan::Interpreter::run(*Plan, EntryIdx, T, A, Opts.MachineOpts,
                                    RecProf);
    case MatcherKind::PlanThreaded:
      if (BM) {
        if (!BM->Thr)
          BM->Thr = std::make_unique<plan::aot::ThreadedExec>(
              *Threaded, A, Opts.MachineOpts);
        BM->Thr->setProfile(RecProf);
        return BM->Thr->matchOne(EntryIdx, T);
      }
      return plan::aot::ThreadedExec::run(*Threaded, EntryIdx, T, A,
                                          Opts.MachineOpts, RecProf);
    case MatcherKind::PlanAot:
      if (BM) {
        if (!BM->So)
          BM->So = std::make_unique<plan::aot::SoExec>(*Plan, *AotLib, A,
                                                       Opts.MachineOpts);
        BM->So->setProfile(RecProf);
        return BM->So->matchOne(EntryIdx, T);
      }
      return plan::aot::SoExec::run(*Plan, *AotLib, EntryIdx, T, A,
                                    Opts.MachineOpts, RecProf);
    case MatcherKind::Fast:
      if (BM) {
        if (!BM->Fast)
          BM->Fast =
              std::make_unique<match::FastMatcher>(A, Opts.MachineOpts);
        return BM->Fast->matchOne(E.Pattern->Pat, T);
      }
      return match::FastMatcher::run(E.Pattern->Pat, T, A, Opts.MachineOpts);
    case MatcherKind::Machine:
      break;
    }
    return match::matchPattern(E.Pattern->Pat, T, A, Opts.MachineOpts);
  }

  /// Whether a call site's reusable BatchMatchers should actually be used:
  /// always for the AOT tiers (executor reuse is part of their speedup and
  /// matchOne reuse is differentially pinned), otherwise only in batch
  /// mode — keeping Plan/Fast per-attempt behavior exactly as before.
  BatchMatchers *maybeBatch(BatchMatchers *BM) const {
    if (Opts.Batch || MK == MatcherKind::PlanThreaded ||
        MK == MatcherKind::PlanAot)
      return BM;
    return nullptr;
  }

  static std::string entryName(const RewriteEntry &E) {
    return std::string(E.Pattern->Name.str());
  }

  PatternStats &statsFor(const RewriteEntry &E) {
    return Stats.PerPattern[entryName(E)];
  }

  /// Speculative match attempts for one node against the frozen snapshot,
  /// mirroring visitNode's entry order exactly. Runs on a worker thread:
  /// reads G, writes only worker-private state and this node's record. An
  /// attempt that throws ends the record with a Threw terminal — the
  /// commit phase replays it serially and absorbs the (deterministically
  /// re-raised) fault there, in committed order.
  void discoverNode(NodeId N, WorkerCtx &W, NodeDiscovery &D,
                    bool RewriteMode) const {
    const auto &Entries = Rules.entries();
    D.Attempts.reserve(Entries.size());
    // One tree traversal covers every entry. When profiling, capture its
    // trace in the node record: the commit phase merges it (clean nodes)
    // or discards it (dirty nodes re-traverse live) — never this thread.
    // Batch mode reads the pass-start sweep's row instead (same mask, same
    // trace sets; rows are immutable during discovery, so concurrent reads
    // are safe).
    const bool TraceIt = Prof && Opts.UseRootIndex;
    if (BatchActive && batchMaskFor(N, W.Cand)) {
      if (TraceIt)
        D.Trace = BatchTraces[BatchRows[N]];
      D.Traced = TraceIt;
    } else {
      planCandidates(N, W.Cand, TraceIt ? &D.Trace : nullptr);
      D.Traced = TraceIt;
    }
    for (size_t I = 0; I != Entries.size(); ++I) {
      if (QSnapshot[I])
        continue;
      const RewriteEntry &E = Entries[I];
      PatternStats &WS = W.Entry[I];
      Attempt A;
      A.Entry = static_cast<uint32_t>(I);
      if (prefilteredOut(I, N, W.Cand)) {
        ++WS.RootSkips;
        A.Kind = AttemptKind::RootSkip;
        D.Attempts.push_back(A);
        continue;
      }

      double T0 = nowSeconds();
      MatchResult MR{};
      try {
        if (Faults && Faults->atAttemptSite(Stats.Passes, N, I))
          throw InjectedFault("injected fault: attempt site");
        term::TermRef T = W.View.termFor(N);
        MR = runMatcher(I, E, T, W.Arena, nullptr, maybeBatch(&W.Batch));
      } catch (...) {
        W.View.invalidate();
        A.Kind = AttemptKind::Threw;
        D.Attempts.push_back(A);
        D.Complete = true;
        return;
      }
      double Elapsed = nowSeconds() - T0;
      ++WS.Attempts;
      WS.MachineSteps += MR.Stats.Steps;
      WS.Backtracks += MR.Stats.Backtracks;
      WS.Seconds += Elapsed;
      A.Steps = MR.Stats.Steps;
      A.Backtracks = MR.Stats.Backtracks;
      A.MuUnfolds = MR.Stats.MuUnfolds;
      A.Seconds = Elapsed;
      if (MR.Status != MachineStatus::Success) {
        if (MR.Status == MachineStatus::OutOfFuel) {
          A.Fuel = true;
          ++WS.FuelExhausted;
        }
        if (!Opts.MemoizeTermView)
          W.View.invalidate();
        D.Attempts.push_back(A);
        continue;
      }
      ++WS.Matches;
      if (!RewriteMode || E.Rules.empty()) {
        A.Kind = AttemptKind::MatchNoRules;
        if (!Opts.MemoizeTermView)
          W.View.invalidate();
        D.Attempts.push_back(A);
        continue;
      }
      // A rule might fire here; whether it does (guards, RHS build) is the
      // commit phase's call, against the live graph.
      A.Kind = AttemptKind::MatchWithRules;
      D.Attempts.push_back(A);
      D.Complete = true;
      return;
    }
    D.Complete = true;
  }

  /// Commit-phase replay of one *clean* node: copies the counters of
  /// attempts discovery proved fruitless — charging the budget and the
  /// quarantine counters exactly as the serial visit would — and re-runs
  /// only a potential firing (or faulting) entry for real. Observably
  /// identical to visitNode(N), cheaper by every failed matcher run.
  /// Returns true if the graph changed.
  bool commitNode(NodeId N, const NodeDiscovery &D, bool RewriteMode) {
    // Committed-order profiling: the worker's traversal of this clean node
    // is identical to the one the serial visit would perform, so merge its
    // trace exactly once, here, and tell any fallback live visit below not
    // to record a second traversal.
    if (Prof && D.Traced)
      Prof->addTrace(D.Trace);
    const bool RecordTraversal = !D.Traced;
    if (!D.Complete)
      // task fault: recover serially
      return visitNode(N, RewriteMode, 0, RecordTraversal);
    const auto &Entries = Rules.entries();
    for (const Attempt &A : D.Attempts) {
      if (halted())
        return false;
      if (Quarantined[A.Entry]) {
        // Quarantined since the pass-start snapshot: the serial engine
        // would skip this entry without counting. A terminal record ends
        // here, but later entries were never explored — resume the live
        // visit right after it.
        if (A.Kind == AttemptKind::MatchWithRules ||
            A.Kind == AttemptKind::Threw)
          return visitNode(N, RewriteMode, A.Entry + 1, RecordTraversal);
        continue;
      }
      const RewriteEntry &E = Entries[A.Entry];
      PatternStats &PS = statsFor(E);
      switch (A.Kind) {
      case AttemptKind::RootSkip:
        ++PS.RootSkips;
        break;
      case AttemptKind::NoMatch:
        ++PS.Attempts;
        PS.MachineSteps += A.Steps;
        PS.Backtracks += A.Backtracks;
        PS.Seconds += A.Seconds;
        chargeAttempt(A.Steps, A.MuUnfolds);
        if (Prof)
          Prof->noteAttempt(A.Entry); // replay of the interpreter's counter
        if (A.Fuel) {
          ++PS.FuelExhausted;
          noteFuelExhaust(A.Entry);
        }
        break;
      case AttemptKind::MatchNoRules:
        ++PS.Attempts;
        PS.MachineSteps += A.Steps;
        PS.Backtracks += A.Backtracks;
        PS.Seconds += A.Seconds;
        chargeAttempt(A.Steps, A.MuUnfolds);
        if (Prof) {
          Prof->noteAttempt(A.Entry);
          Prof->noteMatch(A.Entry);
        }
        ++PS.Matches;
        ++Stats.TotalMatches;
        break;
      case AttemptKind::MatchWithRules:
      case AttemptKind::Threw:
        // The node is clean, so the outcome re-occurs identically on the
        // live graph; resume the serial logic at this entry — it re-counts
        // the attempt itself (profile counters included), handles guards/
        // firing/fault absorption, and continues with the remaining
        // entries when nothing fires.
        return visitNode(N, RewriteMode, A.Entry, RecordTraversal);
      }
    }
    return false;
  }

  /// Batch mode, once per pass: one frontier sweep of the discrimination
  /// tree computes the candidate masks of every live node at once
  /// (Program::batchCandidates), instead of one depth-first walk per
  /// node. Row I is byte-for-byte candidates(BatchRoots[I]), so every
  /// skip decision — and every RootSkips counter — is unchanged; only the
  /// traversal schedule is. Incremental mode skips memo-valid nodes: a
  /// replay never consults a candidate mask (and a replay that falls back
  /// to a live visit walks the tree per-node, as the row-invalid path
  /// does).
  void prepareBatchMasks() {
    if (!BatchActive)
      return;
    BatchRoots.clear();
    const size_t NumNodes = G.numNodes();
    BatchRows.assign(NumNodes, UINT32_MAX);
    for (NodeId N = 0; N < NumNodes; ++N) {
      if (G.isDead(N))
        continue;
      if (Opts.Incremental && N < MemoValid.size() && MemoValid[N])
        continue;
      BatchRows[N] = static_cast<uint32_t>(BatchRoots.size());
      BatchRoots.push_back(N);
    }
    Plan->batchCandidates(G, BatchRoots, BatchMasks,
                          Prof ? &BatchTraces : nullptr);
    BatchRowValid.assign(BatchRoots.size(), 1);
    Stats.BatchedNodes += BatchRoots.size();
  }

  /// Copies node \p N's batch-swept candidate row into \p Mask. False when
  /// the node has no still-valid row (unswept, post-sweep, or dirtied by a
  /// mid-pass fire) — the caller walks the tree live instead.
  bool batchMaskFor(NodeId N, std::vector<uint8_t> &Mask) const {
    if (N >= BatchRows.size())
      return false;
    uint32_t Row = BatchRows[N];
    if (Row == UINT32_MAX || !BatchRowValid[Row])
      return false;
    const size_t NE = Plan->numEntries();
    const uint8_t *Src = BatchMasks.data() + size_t(Row) * NE;
    Mask.assign(Src, Src + NE);
    return true;
  }

  void invalidateBatchRow(NodeId N) {
    if (N < BatchRows.size()) {
      uint32_t Row = BatchRows[N];
      if (Row != UINT32_MAX)
        BatchRowValid[Row] = 0;
    }
  }

  /// Live visit of \p N that records the attempt sequence into the
  /// cross-pass memo. Only a *fruitless* clean visit is adopted: every
  /// attempt ended RootSkip / NoMatch / MatchNoRules, no fault was
  /// absorbed, no guard ran (guard evaluation advances the global
  /// fault-injection counter, so a replay skipping it would desynchronize
  /// fault schedules), and the run was not halted mid-visit. Anything
  /// else leaves the memo invalid and the node is revisited live next
  /// pass — exactly the full-rescan behavior.
  bool visitAndRecord(NodeId N, bool RewriteMode) {
    ensureMemoSize();
    NodeDiscovery &D = Memo[N];
    D = NodeDiscovery();
    MemoValid[N] = 0;
    Rec = &D;
    RecDead = false;
    bool Fired = visitNode(N, RewriteMode);
    Rec = nullptr;
    if (!Fired && !RecDead && !halted()) {
      D.Complete = true;
      MemoValid[N] = 1;
    }
    return Fired;
  }

  /// Adopts a clean parallel-discovery record as node \p N's cross-pass
  /// memo when it proves the node fruitless — the same bar
  /// visitAndRecord applies on the serial path. Terminal records
  /// (MatchWithRules, Threw) are refused even when nothing fired at
  /// commit time (a guard rejection or absorbed fault is not replayable).
  void maybeStoreMemo(NodeId N, NodeDiscovery &D, bool Fired) {
    if (!Opts.Incremental || Fired || halted() || !D.Complete)
      return;
    for (const Attempt &A : D.Attempts)
      if (A.Kind == AttemptKind::MatchWithRules ||
          A.Kind == AttemptKind::Threw)
        return;
    ensureMemoSize();
    Memo[N] = std::move(D);
    MemoValid[N] = 1;
  }

  /// Replays node \p N's memoized fruitless visit in committed order:
  /// counters copied, budget charged, quarantine advanced, recorded
  /// traversal trace re-added — exactly commitNode's clean-node replay,
  /// plus the one check a *cross-pass* record needs. The site-fault
  /// schedule depends on the pass number, so every attempt the full
  /// rescan would run re-consults it; an armed site invalidates the memo
  /// and falls back to the live visit, which absorbs the fault at the
  /// identical committed attempt. Entries quarantined since the record
  /// was taken are skipped without counting (quarantine is sticky, so the
  /// rescan would skip them at the same point). Replays never fire, so
  /// the pass fixpoint is reached exactly when full rescanning reaches
  /// it.
  bool replayMemo(NodeId N, bool RewriteMode) {
    const NodeDiscovery &D = Memo[N];
    if (Prof && D.Traced)
      Prof->addTrace(D.Trace);
    const auto &Entries = Rules.entries();
    for (const Attempt &A : D.Attempts) {
      if (halted())
        return false;
      if (Quarantined[A.Entry])
        continue;
      if (A.Kind != AttemptKind::RootSkip && Faults &&
          Faults->atAttemptSite(Stats.Passes, N, A.Entry)) {
        MemoValid[N] = 0;
        return visitNode(N, RewriteMode, A.Entry,
                         /*RecordTraversal=*/!D.Traced);
      }
      const RewriteEntry &E = Entries[A.Entry];
      PatternStats &PS = statsFor(E);
      switch (A.Kind) {
      case AttemptKind::RootSkip:
        ++PS.RootSkips;
        break;
      case AttemptKind::NoMatch:
        ++PS.Attempts;
        PS.MachineSteps += A.Steps;
        PS.Backtracks += A.Backtracks;
        PS.Seconds += A.Seconds;
        chargeAttempt(A.Steps, A.MuUnfolds);
        if (Prof)
          Prof->noteAttempt(A.Entry);
        if (A.Fuel) {
          ++PS.FuelExhausted;
          noteFuelExhaust(A.Entry);
        }
        break;
      case AttemptKind::MatchNoRules:
        ++PS.Attempts;
        PS.MachineSteps += A.Steps;
        PS.Backtracks += A.Backtracks;
        PS.Seconds += A.Seconds;
        chargeAttempt(A.Steps, A.MuUnfolds);
        if (Prof) {
          Prof->noteAttempt(A.Entry);
          Prof->noteMatch(A.Entry);
        }
        ++PS.Matches;
        ++Stats.TotalMatches;
        break;
      case AttemptKind::MatchWithRules:
      case AttemptKind::Threw:
        // Unreachable: terminal records are never adopted as memos
        // (visitAndRecord poisons them, maybeStoreMemo refuses them).
        // Recover with a live visit all the same.
        MemoValid[N] = 0;
        return visitNode(N, RewriteMode, A.Entry,
                         /*RecordTraversal=*/!D.Traced);
      }
    }
    return false;
  }

  /// Tries each pattern from \p StartEntry in order at node N; on a match
  /// fires the first rule whose guard passes. Absorbs any exception thrown
  /// by the matcher, a guard, or the RHS builder (see onAttemptFault).
  /// \p RecordTraversal is false only when commitNode already merged this
  /// node's worker-recorded traversal trace (never record it twice).
  /// Returns true if the graph changed.
  bool visitNode(NodeId N, bool RewriteMode, size_t StartEntry = 0,
                 bool RecordTraversal = true) {
    const auto &Entries = Rules.entries();
    // One tree traversal covers every entry; when profiling, it is also
    // one committed-order sample of group visits and edge hits. Batch mode
    // substitutes the pass-start sweep's row when still valid (identical
    // mask and trace sets; a dirtied row falls back to the live walk).
    const bool TraceIt = Prof && Opts.UseRootIndex && RecordTraversal;
    if (BatchActive && batchMaskFor(N, CandMask)) {
      if (TraceIt) {
        const plan::TraversalTrace &BT = BatchTraces[BatchRows[N]];
        Prof->addTrace(BT);
        if (Rec) {
          Rec->Trace = BT;
          Rec->Traced = true;
        }
      }
    } else if (TraceIt) {
      planCandidates(N, CandMask, &ScratchTrace);
      Prof->addTrace(ScratchTrace);
      if (Rec) {
        Rec->Trace = ScratchTrace;
        Rec->Traced = true;
      }
    } else {
      planCandidates(N, CandMask);
    }
    for (size_t I = StartEntry; I != Entries.size(); ++I) {
      if (halted())
        return false;
      if (Quarantined[I])
        continue;
      const RewriteEntry &E = Entries[I];
      PatternStats &PS = statsFor(E);
      if (prefilteredOut(I, N, CandMask)) {
        ++PS.RootSkips;
        if (Rec) {
          Attempt A;
          A.Entry = static_cast<uint32_t>(I);
          A.Kind = AttemptKind::RootSkip;
          Rec->Attempts.push_back(A);
        }
        continue;
      }

      double T0 = nowSeconds();
      MatchResult MR{};
      try {
        if (Faults && Faults->atAttemptSite(Stats.Passes, N, I))
          throw InjectedFault("injected fault: attempt site");
        term::TermRef T = View.termFor(N);
        MR = runMatcher(I, E, T, Arena, Prof, maybeBatch(&SerialBatch));
      } catch (const std::exception &Ex) {
        View.invalidate();
        RecDead = true; // absorbed fault: not replayable
        onAttemptFault(I, Ex.what());
        continue;
      } catch (...) {
        View.invalidate();
        RecDead = true;
        onAttemptFault(I, "unknown exception");
        continue;
      }
      MachineStatus S = MR.Status;
      ++PS.Attempts;
      PS.MachineSteps += MR.Stats.Steps;
      PS.Backtracks += MR.Stats.Backtracks;
      double Elapsed = nowSeconds() - T0;
      PS.Seconds += Elapsed;
      Stats.MatchSeconds += Elapsed;
      chargeAttempt(MR.Stats.Steps, MR.Stats.MuUnfolds);
      if (S != MachineStatus::Success) {
        if (Rec) {
          Attempt A;
          A.Entry = static_cast<uint32_t>(I);
          A.Kind = AttemptKind::NoMatch;
          A.Fuel = (S == MachineStatus::OutOfFuel);
          A.Steps = MR.Stats.Steps;
          A.Backtracks = MR.Stats.Backtracks;
          A.MuUnfolds = MR.Stats.MuUnfolds;
          A.Seconds = Elapsed;
          Rec->Attempts.push_back(A);
        }
        if (S == MachineStatus::OutOfFuel) {
          ++PS.FuelExhausted;
          noteFuelExhaust(I);
        }
        // Ablation: without memoization, drop conversions after every
        // attempt (the witness of a *successful* match still needs the
        // term→node map until its replacement has been built).
        if (!Opts.MemoizeTermView)
          View.invalidate();
        continue;
      }

      ++PS.Matches;
      ++Stats.TotalMatches;
      if (!RewriteMode || E.Rules.empty()) {
        if (Rec) {
          Attempt A;
          A.Entry = static_cast<uint32_t>(I);
          A.Kind = AttemptKind::MatchNoRules;
          A.Steps = MR.Stats.Steps;
          A.Backtracks = MR.Stats.Backtracks;
          A.MuUnfolds = MR.Stats.MuUnfolds;
          A.Seconds = Elapsed;
          Rec->Attempts.push_back(A);
        }
        if (!Opts.MemoizeTermView)
          View.invalidate();
        continue;
      }
      if (halted())
        return false; // budget died charging this attempt: don't fire

      // Rules are in play: guards and fires from here on are not
      // replayable (guard evaluation advances the global fault counter),
      // so the node's record is poisoned whether or not anything fires.
      RecDead = true;

      bool Fired;
      try {
        Fired = fireFirstRule(N, E, MR.W, PS);
      } catch (const std::exception &Ex) {
        rollbackPartialBuild();
        onAttemptFault(I, Ex.what());
        continue;
      } catch (...) {
        rollbackPartialBuild();
        onAttemptFault(I, "unknown exception");
        continue;
      }
      if (!Fired && !Opts.MemoizeTermView)
        View.invalidate();
      if (Fired)
        return true;
      ++PS.GuardRejects;
    }
    return false;
  }

  /// Transactional rollback after an exception escaped a guard or the RHS
  /// builder: every mutation so far appended nodes nothing references, so
  /// sweeping unreachable nodes restores exactly the last committed state
  /// (node ids are stable and writeGraphText prints live nodes only).
  void rollbackPartialBuild() {
    Stats.NodesSwept += G.removeUnreachable();
    View.invalidate();
  }

  bool fireFirstRule(NodeId N, const RewriteEntry &E, const match::Witness &W,
                     PatternStats &PS) {
    match::SubstEnv Env(W.Theta, W.Phi, Arena);
    for (const RewriteRule *R : E.Rules) {
      if (R->Guard) {
        if (Faults)
          Faults->onGuardEval();
        if (!R->Guard->evalBool(Env).truthy())
          continue;
      }
      NodeId FirstNewNode = static_cast<NodeId>(G.numNodes());
      NodeId Replacement = buildRhsImpl(G, View, R->Rhs, W, *SI, Faults);
      if (Replacement == graph::InvalidNode)
        continue; // RHS build failed (unbound var); try next rule
      // Invalidate discovery results, cross-pass memos, and batch-swept
      // candidate rows downstream of this fire *before* the user edges
      // are redirected away (afterwards the old users are unreachable
      // from N).
      if (!Dirty.empty() || Opts.Incremental || BatchActive)
        markUsersDirty(N);
      // Destructive replacement (§2): redirect all *existing* uses — the
      // replacement's own references to the matched value stay — then
      // sweep the now-unreachable matched subgraph so it is not matched
      // again.
      G.replaceAllUses(N, Replacement, FirstNewNode);
      Stats.NodesSwept += G.removeUnreachable();
      View.invalidate();
      ++PS.RulesFired;
      ++Stats.TotalFired;
      if (Stats.TotalFired >= Opts.MaxRewrites)
        halt(BudgetReason::Rewrites);
      return true;
    }
    return false;
  }

  /// Marks every transitive user of \p Root dirty: their tree unrollings
  /// reach Root, so redirecting Root's uses changes what they match —
  /// and nothing else's unrolling changes, which makes this walk the
  /// *exact* invalidation set for every cached match artifact. Three
  /// caches honor it: the parallel commit's Dirty bits, the cross-pass
  /// incremental memo (MemoValid), and the pass's batch-swept candidate
  /// rows. Conservative (already-committed users are marked too,
  /// harmlessly); traverses through post-snapshot nodes but only
  /// snapshot ids carry a Dirty bit — new nodes always take the live
  /// path anyway.
  void markUsersDirty(NodeId Root) {
    std::vector<uint8_t> Seen(G.numNodes(), 0);
    std::vector<NodeId> Stack{Root};
    while (!Stack.empty()) {
      NodeId Cur = Stack.back();
      Stack.pop_back();
      for (NodeId U : G.users(Cur)) {
        if (Seen[U])
          continue;
        Seen[U] = 1;
        if (U < Dirty.size())
          Dirty[U] = 1;
        if (U < MemoValid.size())
          MemoValid[U] = 0;
        invalidateBatchRow(U);
        Stack.push_back(U);
      }
    }
  }
};

} // namespace

NodeId pypm::rewrite::buildRhs(Graph &G, graph::TermView &View,
                               const RhsExpr *Rhs, const match::Witness &W,
                               const graph::ShapeInference &SI,
                               FaultInjector *Faults) {
  return buildRhsImpl(G, View, Rhs, W, SI, Faults);
}

RewriteStats pypm::rewrite::rewriteToFixpoint(Graph &G, const RuleSet &Rules,
                                              const graph::ShapeInference &SI,
                                              RewriteOptions Opts) {
  if (Opts.Lint) {
    // Preflight: a read-only analysis of the rule set. Findings go to the
    // diagnostic sink; only *error*-severity findings (provable facts —
    // unsatisfiable guards, unproductive μ) refuse the run. The graph is
    // untouched on refusal, and on acceptance the run below is byte-for-byte
    // the run a lint-free invocation would have performed.
    analysis::LintReport Report =
        analysis::lintRuleSet(Rules, G.signature(), {.Shapes = &SI});
    if (Opts.Diags)
      Report.toDiagnostics(*Opts.Diags);
    if (!Report.clean()) {
      RewriteStats Stats;
      Stats.Status.raise(EngineStatusCode::LintRejected);
      return Stats;
    }
  }
  if (Opts.Search == SearchStrategy::Auto) {
    // Resolve the certificate-directed strategy AFTER the lint preflight
    // (a refused run must spend zero search work) and BEFORE the search
    // dispatch. Certified-confluent means every strategy reaches the same
    // normal form, so greedy's single pass is the optimum; any conflict
    // or undischarged obligation keeps beam's speculative pricing. The
    // resolved run is literally the greedy/beam engine with the same
    // knobs — bit-identical graphs and stats, which the differential in
    // tests/test_search.cpp pins.
    bool Certified;
    if (Opts.Confluence) {
      Certified = Opts.Confluence->certified();
    } else {
      Certified =
          analysis::critical::analyzeConfluence(Rules, G.signature())
              .certified();
    }
    Opts.Search = Certified ? SearchStrategy::Greedy : SearchStrategy::Beam;
  }
  // Cost-directed commit selection runs its own loop (src/search/); the
  // degenerate configurations (Lookahead == 0 or BeamWidth == 0) fall
  // through to the greedy engine below, which is what makes them
  // bit-identical to greedy by construction (see RewriteOptions::Search).
  if (search::searchActive(Opts))
    return search::searchRewrite(G, Rules, SI, Opts);
  return Engine(G, Rules, &SI, Opts).run(/*RewriteMode=*/true);
}

RewriteStats pypm::rewrite::matchAll(Graph &G, const RuleSet &Rules,
                                     RewriteOptions Opts) {
  return Engine(G, Rules, nullptr, Opts).run(/*RewriteMode=*/false);
}

std::string RewriteStats::summary() const {
  std::string Out;
  Out += "status=" + Status.str();
  Out += " passes=" + std::to_string(Passes);
  Out += " visited=" + std::to_string(NodesVisited);
  Out += " matches=" + std::to_string(TotalMatches);
  Out += " fired=" + std::to_string(TotalFired);
  Out += " swept=" + std::to_string(NodesSwept);
  if (MemoHits || MemoMisses)
    Out += " memoHits=" + std::to_string(MemoHits) +
           " memoMisses=" + std::to_string(MemoMisses);
  if (BatchedNodes)
    Out += " batched=" + std::to_string(BatchedNodes);
  char Buf[80];
  std::snprintf(Buf, sizeof(Buf),
                " matchTime=%.3fms discoveryTime=%.3fms totalTime=%.3fms",
                MatchSeconds * 1e3, DiscoverySeconds * 1e3,
                TotalSeconds * 1e3);
  Out += Buf;
  for (const std::string &Q : Status.QuarantinedPatterns)
    Out += "\n  quarantined: " + Q;
  for (const auto &[Name, PS] : PerPattern) {
    std::snprintf(Buf, sizeof(Buf), "\n  %-18s", Name.c_str());
    Out += Buf;
    Out += "attempts=" + std::to_string(PS.Attempts) +
           " matches=" + std::to_string(PS.Matches) +
           " fired=" + std::to_string(PS.RulesFired) +
           " steps=" + std::to_string(PS.MachineSteps);
    std::snprintf(Buf, sizeof(Buf), " time=%.3fms", PS.Seconds * 1e3);
    Out += Buf;
  }
  return Out;
}
