//===- support/Diagnostics.cpp - Source locations and diagnostics --------===//

#include "support/Diagnostics.h"

using namespace pypm;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<no-loc>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostic::render() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  switch (Sev) {
  case Severity::Note:
    Out += "note";
    break;
  case Severity::Warning:
    Out += "warning";
    break;
  case Severity::Error:
    Out += "error";
    break;
  }
  if (!Code.empty()) {
    Out += '[';
    Out += Code;
    Out += ']';
  }
  Out += ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += '\n';
  }
  return Out;
}
