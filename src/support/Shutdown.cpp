//===- support/Shutdown.cpp - Signal-safe shutdown flag -------------------===//

#include "support/Shutdown.h"

#include <csignal>

using namespace pypm;

ShutdownFlag &ShutdownFlag::global() {
  static ShutdownFlag F;
  return F;
}

namespace {

extern "C" void onShutdownSignal(int) { ShutdownFlag::global().request(); }

} // namespace

bool pypm::installShutdownSignalHandlers() {
  struct sigaction SA = {};
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  // Deliberately no SA_RESTART: a blocking read in the frame loop should
  // return EINTR so the loop re-polls the flag promptly.
  SA.sa_flags = 0;
  bool Ok = sigaction(SIGTERM, &SA, nullptr) == 0;
  Ok &= sigaction(SIGINT, &SA, nullptr) == 0;
  return Ok;
}
