//===- support/Random.h - Deterministic RNG --------------------*- C++ -*-===//
///
/// \file
/// A small, deterministic, seedable PRNG (SplitMix64). Used by the property
/// test generators and the model zoo so runs are reproducible across
/// platforms and standard-library versions (std::mt19937 distributions are
/// not portable).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_RANDOM_H
#define PYPM_SUPPORT_RANDOM_H

#include <cstdint>

namespace pypm {

/// SplitMix64: tiny, fast, high-quality-enough for test-case generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Uniform double in [0, 1).
  double unit();

private:
  uint64_t State;
};

} // namespace pypm

#endif // PYPM_SUPPORT_RANDOM_H
