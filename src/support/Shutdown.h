//===- support/Shutdown.h - Signal-safe shutdown flag ----------*- C++ -*-===//
///
/// \file
/// A process-wide "please drain and exit" flag safe to set from a signal
/// handler. The daemon (tools/pypmd) installs SIGTERM/SIGINT handlers that
/// do nothing but request(); the server's frame-read loop polls requested()
/// between frames and begins a graceful drain — in-flight requests finish,
/// queued requests finish, new requests are refused — instead of dying
/// mid-commit.
///
/// request() only writes a lock-free std::atomic<bool> (async-signal-safe
/// per POSIX: atomic stores are not on the forbidden list and take no
/// locks); everything else — condition variables, queue close, reply
/// writes — happens on ordinary threads that observe the flag.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_SHUTDOWN_H
#define PYPM_SUPPORT_SHUTDOWN_H

#include <atomic>

namespace pypm {

/// One writer (a signal handler or a shutdown frame), many polling
/// readers. Sticky: once requested, stays requested for process life.
class ShutdownFlag {
public:
  void request() { Flag.store(true, std::memory_order_relaxed); }
  bool requested() const { return Flag.load(std::memory_order_relaxed); }

  /// The process-global instance the signal handlers write.
  static ShutdownFlag &global();

private:
  std::atomic<bool> Flag{false};
};

/// Installs handlers for SIGTERM and SIGINT that request() the global
/// flag. Idempotent. Returns false if sigaction failed (the caller may
/// still poll the flag; it just will not be signal-driven).
bool installShutdownSignalHandlers();

} // namespace pypm

#endif // PYPM_SUPPORT_SHUTDOWN_H
