//===- support/ThreadPool.h - Small work-stealing thread pool ---*- C++ -*-===//
///
/// \file
/// A small fixed-size work-stealing thread pool for the rewrite engine's
/// parallel match-discovery phase (and anything else that wants coarse
/// fork/join parallelism over an index space).
///
/// Design constraints, in order:
///  - tasks are coarse (a chunk of node→pattern match attempts each), so
///    per-deque mutexes are plenty — no lock-free deque heroics;
///  - each worker owns a deque: the owner pops from the front, idle workers
///    steal from the back of the busiest-looking victim, so cache-warm work
///    stays with its producer and stealing moves the largest chunks;
///  - drain-then-rethrow: exceptions thrown by tasks are captured, every
///    remaining task still runs to completion, and only then is the *first*
///    captured exception rethrown from wait()/parallelFor() on the calling
///    thread. A failure therefore never discards the other workers'
///    results, and the pool stays reusable afterwards
///    (tests/test_threadpool.cpp pins this contract down);
///  - the pool is reusable across many submit/wait rounds (the engine runs
///    one discovery round per rewrite pass against the same pool).
///
/// Workers are identified by a dense index in [0, size()); parallelFor
/// hands that index to the body so callers can keep per-worker scratch
/// state (the engine keeps one TermArena + TermView per worker).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_THREADPOOL_H
#define PYPM_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pypm {

class ThreadPool {
public:
  /// A task; receives the index of the worker executing it.
  using Task = std::function<void(unsigned Worker)>;

  /// Spawns \p Threads workers (clamped to at least 1).
  explicit ThreadPool(unsigned Threads);
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;
  ~ThreadPool();

  /// Number of workers. Reads Queues (fully built before any worker thread
  /// starts), never Workers — early-started workers call size() while the
  /// constructor is still appending threads to Workers.
  unsigned size() const { return static_cast<unsigned>(Queues.size()); }

  /// Enqueues a task (round-robin across worker deques). Thread-safe.
  void submit(Task T);

  /// Blocks until every submitted task has completed — tasks are drained,
  /// never abandoned, even when one of them threw. If any task threw,
  /// rethrows the first captured exception (subsequent wait() calls do not
  /// rethrow it again, and the pool remains fully usable).
  void wait();

  /// Runs Body(I, Worker) for every I in [0, N), chunked across the pool,
  /// and blocks until done. Chunks preserve index locality (worker w's
  /// initial share is a contiguous range). Fault isolation is per *index*,
  /// not per chunk: a Body(I) that throws loses only index I — every other
  /// index still runs — and the first exception is rethrown after the join,
  /// like wait().
  void parallelFor(size_t N, const std::function<void(size_t I, unsigned Worker)> &Body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareThreads();

private:
  struct WorkerState {
    std::mutex Mutex;
    std::deque<Task> Deque;
  };

  void workerLoop(unsigned Index);
  bool popOwn(unsigned Index, Task &Out);
  bool steal(unsigned Thief, Task &Out);

  std::vector<std::unique_ptr<WorkerState>> Queues;
  std::vector<std::thread> Workers;

  // Sleep/wake and join bookkeeping.
  std::mutex SleepMutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Pending = 0; ///< submitted but not yet completed tasks
  bool Stopping = false;
  unsigned NextQueue = 0; ///< round-robin submit cursor

  std::mutex ExceptionMutex;
  std::exception_ptr FirstException;
};

} // namespace pypm

#endif // PYPM_SUPPORT_THREADPOOL_H
