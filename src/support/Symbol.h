//===- support/Symbol.h - Interned identifier symbols ----------*- C++ -*-===//
///
/// \file
/// Interned strings. A Symbol is a 32-bit handle into a process-wide intern
/// table; two Symbols compare equal iff their spellings are equal, which
/// makes symbol comparison O(1) throughout the matcher and rewrite engine.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_SYMBOL_H
#define PYPM_SUPPORT_SYMBOL_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace pypm {

/// An interned identifier. Value-semantic, 4 bytes, O(1) equality.
///
/// The default-constructed Symbol is the distinguished "invalid" symbol; it
/// is never returned by intern() for any spelling and is usable as a
/// sentinel.
class Symbol {
public:
  Symbol() : Id(0) {}

  /// Interns \p Str and returns its Symbol. Interning the same spelling
  /// twice returns the same Symbol.
  static Symbol intern(std::string_view Str);

  /// Returns a fresh symbol that is guaranteed not to collide with any
  /// previously interned user spelling. The result's spelling is
  /// "<Base>$<n>" for a process-unique n. Used for alpha-renaming binders
  /// when unfolding recursive patterns.
  static Symbol fresh(std::string_view Base);

  /// The spelling this symbol was interned from. Valid for the lifetime of
  /// the process. The invalid symbol stringifies as "<invalid>".
  std::string_view str() const;

  bool isValid() const { return Id != 0; }
  explicit operator bool() const { return isValid(); }

  /// Raw intern-table index. 0 is the invalid symbol. Stable within a
  /// process; used for hashing and dense maps, never persisted (the
  /// serializer writes spellings instead).
  uint32_t rawId() const { return Id; }

  /// Rebuilds a Symbol from a raw id previously obtained via rawId().
  static Symbol fromRaw(uint32_t Id) {
    Symbol S;
    S.Id = Id;
    return S;
  }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id;
};

} // namespace pypm

template <> struct std::hash<pypm::Symbol> {
  size_t operator()(pypm::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.rawId());
  }
};

#endif // PYPM_SUPPORT_SYMBOL_H
