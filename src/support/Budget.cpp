//===- support/Budget.cpp - Resource governance and failure taxonomy ----------===//

#include "support/Budget.h"

#include <chrono>
#include <cstdio>

using namespace pypm;

static double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::string_view pypm::budgetReasonName(BudgetReason R) {
  switch (R) {
  case BudgetReason::None:
    return "none";
  case BudgetReason::Deadline:
    return "deadline";
  case BudgetReason::Steps:
    return "steps";
  case BudgetReason::MuUnfolds:
    return "mu-unfolds";
  case BudgetReason::Memory:
    return "memory";
  case BudgetReason::Rewrites:
    return "rewrites";
  case BudgetReason::Cancelled:
    return "cancelled";
  case BudgetReason::Fault:
    return "fault";
  }
  return "none";
}

void Budget::start() {
  if (Started)
    return;
  Started = true;
  if (Limits.DeadlineSeconds > 0)
    DeadlineAt = nowSeconds() + Limits.DeadlineSeconds;
}

BudgetReason Budget::exceededCeiling() const {
  if (Limits.MaxTotalSteps && StepsUsed > Limits.MaxTotalSteps)
    return BudgetReason::Steps;
  if (Limits.MaxTotalMuUnfolds && MuUnfoldsUsed > Limits.MaxTotalMuUnfolds)
    return BudgetReason::MuUnfolds;
  return BudgetReason::None;
}

BudgetReason Budget::poll(uint64_t MemoryBytes) const {
  if (Limits.Cancel && Limits.Cancel->isCancelled())
    return BudgetReason::Cancelled;
  if (Limits.DeadlineSeconds > 0 && Started && nowSeconds() > DeadlineAt)
    return BudgetReason::Deadline;
  if (Limits.MaxMemoryBytes && MemoryBytes > Limits.MaxMemoryBytes)
    return BudgetReason::Memory;
  return exceededCeiling();
}

bool Budget::interrupted() const {
  if (Limits.Cancel && Limits.Cancel->isCancelled())
    return true;
  return Limits.DeadlineSeconds > 0 && Started && nowSeconds() > DeadlineAt;
}

std::string_view pypm::engineStatusName(EngineStatusCode C) {
  switch (C) {
  case EngineStatusCode::Completed:
    return "completed";
  case EngineStatusCode::PatternQuarantined:
    return "pattern-quarantined";
  case EngineStatusCode::FaultInjected:
    return "fault-injected";
  case EngineStatusCode::BudgetExhausted:
    return "budget-exhausted";
  case EngineStatusCode::Cancelled:
    return "cancelled";
  case EngineStatusCode::LintRejected:
    return "lint-rejected";
  }
  return "completed";
}

void EngineStatus::raise(EngineStatusCode C, BudgetReason R) {
  if (static_cast<uint8_t>(C) > static_cast<uint8_t>(Code)) {
    Code = C;
    Reason = R;
  } else if (C == Code && Reason == BudgetReason::None) {
    Reason = R;
  }
}

std::string EngineStatus::str() const {
  std::string Out(engineStatusName(Code));
  if (Reason != BudgetReason::None) {
    Out += '(';
    Out += budgetReasonName(Reason);
    Out += ')';
  }
  return Out;
}

/// Pattern names come from DSL identifiers, but escape defensively anyway.
static void appendJsonString(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string EngineStatus::json() const {
  std::string Out = "{\"status\":";
  appendJsonString(Out, engineStatusName(Code));
  Out += ",\"reason\":";
  appendJsonString(Out, budgetReasonName(Reason));
  Out += ",\"quarantined\":[";
  for (size_t I = 0; I != QuarantinedPatterns.size(); ++I) {
    if (I)
      Out += ',';
    appendJsonString(Out, QuarantinedPatterns[I]);
  }
  Out += "],\"faults\":" + std::to_string(FaultsAbsorbed) + "}";
  return Out;
}
