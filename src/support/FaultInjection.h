//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
///
/// \file
/// A seed-driven fault-injection harness for proving the engine's
/// transactional-commit and quarantine behaviour (the "proven, not
/// assumed" half of the robustness layer). Two kinds of schedule:
///
///  - Counter modes fire at the Nth occurrence of an event anywhere in the
///    process: the Nth rule-guard evaluation, the Nth discovery task, the
///    Nth RHS replacement node built, or force the budget to trip at the
///    Nth charge. Counters are global and thread-safe but — under the
///    parallel engine — *which* site observes the Nth event depends on
///    scheduling; they drive env-configured chaos runs (PYPM_FAULT), not
///    the bit-identical differential tests.
///
///  - The site schedule is a pure function of (seed, pass, node, entry):
///    an attempt site faults iff hash(seed, site) % period == 0. Stateless
///    and scheduling-independent, so serial and parallel runs fault at
///    exactly the same committed attempts — this is what the determinism
///    stress tests use.
///
/// Injected faults are ordinary exceptions (InjectedFault); the engine must
/// absorb them exactly as it would a throwing user guard or builder.
///
/// PYPM_FAULT grammar (comma-separated key=value):
///   guard=N | task=N | rhs=N | budget=N | site-seed=S | site-period=P
/// e.g. PYPM_FAULT=guard=3  or  PYPM_FAULT=site-seed=42,site-period=97
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_FAULTINJECTION_H
#define PYPM_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pypm {

/// The exception deliberately thrown at an armed fault site.
class InjectedFault : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
public:
  struct Config {
    uint64_t NthGuardEval = 0;    ///< throw at the Nth guard evaluation
    uint64_t NthWorkerTask = 0;   ///< throw at the Nth discovery task
    uint64_t NthRhsBuild = 0;     ///< throw at the Nth RHS node built
    uint64_t NthBudgetCharge = 0; ///< trip the budget at the Nth charge
    uint64_t SiteSeed = 0;
    uint64_t SitePeriod = 0; ///< 0 disables the site schedule
  };

  FaultInjector() = default;
  explicit FaultInjector(const Config &C) : Cfg(C) {}

  const Config &config() const { return Cfg; }

  /// Parses a PYPM_FAULT spec. On failure returns nullopt and sets \p Err.
  static std::optional<Config> parse(std::string_view Spec, std::string &Err);

  /// Process-global injector configured from $PYPM_FAULT; nullptr when the
  /// variable is unset, empty, or invalid (invalid specs warn on stderr
  /// once rather than silently arming nothing).
  static FaultInjector *global();

  // Counter hooks: thread-safe, monotone across the process run.
  void onGuardEval();  ///< throws InjectedFault at the configured count
  void onWorkerTask(); ///< throws InjectedFault at the configured count
  void onRhsBuild();   ///< throws InjectedFault at the configured count
  bool onBudgetCharge(); ///< true => treat this charge as exhaustion

  /// Pure site schedule: deterministic in (seed, pass, node, entry) alone.
  bool atAttemptSite(uint64_t Pass, uint64_t Node, uint64_t Entry) const;

  /// Rewinds the counters (tests reuse one injector across runs).
  void reset();

private:
  Config Cfg;
  std::atomic<uint64_t> GuardEvals{0};
  std::atomic<uint64_t> WorkerTasks{0};
  std::atomic<uint64_t> RhsBuilds{0};
  std::atomic<uint64_t> BudgetCharges{0};
};

} // namespace pypm

#endif // PYPM_SUPPORT_FAULTINJECTION_H
