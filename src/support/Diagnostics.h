//===- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
///
/// \file
/// Minimal diagnostics infrastructure shared by the DSL frontend and the
/// pattern-binary deserializer: source locations, severities, and a sink
/// that collects diagnostics for later rendering.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_DIAGNOSTICS_H
#define PYPM_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pypm {

/// 1-based line/column position in a source buffer. Line 0 means "no
/// location" (e.g. diagnostics from programmatic builders).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity Sev = Severity::Error;
  SourceLoc Loc;
  /// Stable machine-readable code, e.g. "sema.unknown-identifier" or
  /// "analysis.shadowed-rule". Empty for legacy emitters; rendering is
  /// byte-identical to the pre-code format when empty.
  std::string Code;
  std::string Message;

  std::string render() const;
};

/// Collects diagnostics emitted during a frontend run. Cheap to create; one
/// per compilation.
class DiagnosticEngine {
public:
  void report(Severity Sev, SourceLoc Loc, std::string Code,
              std::string Message) {
    Diags.push_back({Sev, Loc, std::move(Code), std::move(Message)});
    if (Sev == Severity::Error)
      ++NumErrors;
  }
  void error(SourceLoc Loc, std::string Message) {
    report(Severity::Error, Loc, {}, std::move(Message));
  }
  void error(SourceLoc Loc, std::string Code, std::string Message) {
    report(Severity::Error, Loc, std::move(Code), std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(Severity::Warning, Loc, {}, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Code, std::string Message) {
    report(Severity::Warning, Loc, std::move(Code), std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(Severity::Note, Loc, {}, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Code, std::string Message) {
    report(Severity::Note, Loc, std::move(Code), std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics rendered one per line; convenient for tests and tools.
  std::string renderAll() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace pypm

#endif // PYPM_SUPPORT_DIAGNOSTICS_H
