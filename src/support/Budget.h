//===- support/Budget.h - Resource governance and failure taxonomy -*- C++ -*-===//
///
/// \file
/// Cooperative resource governance for whole-engine invocations. The
/// machine's per-attempt fuel (Machine::Options) bounds a *single* match;
/// this layer bounds an entire RewriteEngine / Partitioner run with a
/// deadline, total machine-step / μ-unfold ceilings, a graph-memory
/// estimate ceiling, and external cancellation — and gives every governed
/// run a structured outcome (EngineStatus) instead of an ad-hoc bool.
///
/// Determinism contract (see DESIGN.md §"Failure taxonomy, budgets, and
/// transactional commit"): the step and μ-unfold ceilings are *charged only
/// in committed attempt order* — never from discovery workers — so the same
/// graph, rules, and budget exhaust at the identical attempt at any thread
/// count. The deadline and cancellation token are cooperative polls and
/// inherently scheduling-dependent; tests that assert bit-identical
/// behaviour use the step/μ ceilings only.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_BUDGET_H
#define PYPM_SUPPORT_BUDGET_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pypm {

/// Thread-safe cancellation flag; one writer (a signal handler, a server
/// timeout, a user pressing ^C) and any number of polling readers.
class CancellationToken {
public:
  void requestCancel() { Flag.store(true, std::memory_order_relaxed); }
  bool isCancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Which ceiling stopped a governed run. None means "still within budget".
enum class BudgetReason : uint8_t {
  None,
  Deadline,  ///< wall-clock deadline passed
  Steps,     ///< total committed machine steps
  MuUnfolds, ///< total committed μ-unfolds
  Memory,    ///< graph memory estimate over the ceiling
  Rewrites,  ///< engine-level rewrite cap (RewriteOptions::MaxRewrites)
  Cancelled, ///< CancellationToken tripped
  Fault,     ///< an injected/absorbed fault halted the run (HaltOnFault)
};

std::string_view budgetReasonName(BudgetReason R);

/// Ceilings for one governed run. Zero / null members mean "unlimited".
struct BudgetLimits {
  double DeadlineSeconds = 0;
  uint64_t MaxTotalSteps = 0;
  uint64_t MaxTotalMuUnfolds = 0;
  uint64_t MaxMemoryBytes = 0;
  const CancellationToken *Cancel = nullptr;
};

/// A budget meter. Charging (chargeSteps / chargeMuUnfolds) is
/// single-threaded by contract — the engine charges in committed order
/// only. interrupted() is the cheap poll the matchers call from any thread:
/// it reads the deadline stamped by start() and the cancellation token,
/// never the charge counters.
class Budget {
public:
  Budget() = default;
  explicit Budget(const BudgetLimits &L) : Limits(L) {}

  const BudgetLimits &limits() const { return Limits; }

  /// Stamps the deadline relative to now. Idempotent — the first caller
  /// wins — so one budget can govern a pipeline of passes against a single
  /// wall-clock window.
  void start();

  // Committed-order accounting (single consumer).
  void chargeSteps(uint64_t N) { StepsUsed += N; }
  void chargeMuUnfolds(uint64_t N) { MuUnfoldsUsed += N; }
  uint64_t stepsUsed() const { return StepsUsed; }
  uint64_t muUnfoldsUsed() const { return MuUnfoldsUsed; }

  /// Incremental-discovery memo accounting, charged in committed node
  /// order by the engine (RewriteOptions::Incremental). Informational —
  /// there is no memo ceiling, and the hit/miss split is mode-descriptive
  /// (see RewriteStats::MemoHits), not part of the determinism contract —
  /// but recorded here so one governed run reports matcher work and the
  /// memo work that replaced it side by side.
  void chargeMemoHit() { ++MemoHitsUsed; }
  void chargeMemoMiss() { ++MemoMissesUsed; }
  uint64_t memoHits() const { return MemoHitsUsed; }
  uint64_t memoMisses() const { return MemoMissesUsed; }

  /// Deterministic ceilings over the charged counters.
  BudgetReason exceededCeiling() const;

  /// Full poll: cancellation, deadline, and the memory estimate \p
  /// MemoryBytes against the ceiling, then the charged counters.
  BudgetReason poll(uint64_t MemoryBytes = 0) const;

  /// Cheap cross-thread poll: cancellation or deadline only. Safe to call
  /// concurrently with the owner charging.
  bool interrupted() const;

private:
  BudgetLimits Limits;
  bool Started = false;
  double DeadlineAt = 0; ///< steady-clock seconds; valid when Started
  uint64_t StepsUsed = 0;
  uint64_t MuUnfoldsUsed = 0;
  uint64_t MemoHitsUsed = 0;
  uint64_t MemoMissesUsed = 0;
};

/// Structured outcome of a governed engine run, most severe first:
/// LintRejected > Cancelled > BudgetExhausted > FaultInjected >
/// PatternQuarantined > Completed. raise() only ever escalates, so any
/// interleaving of events reports the most severe one.
enum class EngineStatusCode : uint8_t {
  Completed,
  PatternQuarantined, ///< completed, but some patterns were disabled
  FaultInjected,      ///< a fault was absorbed (and possibly halted the run)
  BudgetExhausted,
  Cancelled,
  /// The RewriteOptions::Lint preflight found error-severity findings and
  /// refused the run; the graph was not touched.
  LintRejected,
};

std::string_view engineStatusName(EngineStatusCode C);

struct EngineStatus {
  EngineStatusCode Code = EngineStatusCode::Completed;
  /// The ceiling that tripped, when Code is BudgetExhausted (or the halt
  /// cause for Cancelled / FaultInjected halts).
  BudgetReason Reason = BudgetReason::None;
  /// Names of quarantined patterns, in quarantine (commit) order.
  std::vector<std::string> QuarantinedPatterns;
  /// Faults absorbed by the engine (injected or real exceptions).
  uint64_t FaultsAbsorbed = 0;

  bool ok() const { return Code == EngineStatusCode::Completed; }
  bool quarantined() const { return !QuarantinedPatterns.empty(); }

  /// Escalates to \p C if it is more severe than the current code; records
  /// \p R as the cause when escalating (or when none was recorded yet).
  void raise(EngineStatusCode C, BudgetReason R = BudgetReason::None);

  /// "completed" / "budget-exhausted(steps)" — for logs and summaries.
  std::string str() const;
  /// Compact JSON object, e.g.
  /// {"status":"budget-exhausted","reason":"steps","quarantined":["Epilog"],
  ///  "faults":0} — for pypmc --stats-json.
  std::string json() const;

  bool operator==(const EngineStatus &) const = default;
};

} // namespace pypm

#endif // PYPM_SUPPORT_BUDGET_H
