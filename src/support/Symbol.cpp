//===- support/Symbol.cpp - Interned identifier symbols ------------------===//

#include "support/Symbol.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace pypm;

namespace {

/// Process-wide intern table. Constructed lazily on first use (function-local
/// static) so there is no static-initialization-order hazard.
struct InternTable {
  // Spellings are stored in a deque so that string_views handed out stay
  // valid as the table grows.
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, uint32_t> Index;
  uint64_t FreshCounter = 0;

  InternTable() {
    // Reserve id 0 for the invalid symbol.
    Spellings.emplace_back("<invalid>");
  }

  uint32_t intern(std::string_view Str) {
    auto It = Index.find(Str);
    if (It != Index.end())
      return It->second;
    Spellings.emplace_back(Str);
    uint32_t Id = static_cast<uint32_t>(Spellings.size() - 1);
    Index.emplace(Spellings.back(), Id);
    return Id;
  }
};

InternTable &table() {
  static InternTable Table;
  return Table;
}

} // namespace

Symbol Symbol::intern(std::string_view Str) {
  return Symbol::fromRaw(table().intern(Str));
}

Symbol Symbol::fresh(std::string_view Base) {
  InternTable &T = table();
  // Loop in case a user literally interned "<base>$<n>" already.
  for (;;) {
    std::string Candidate(Base);
    Candidate += '$';
    Candidate += std::to_string(T.FreshCounter++);
    if (T.Index.find(Candidate) == T.Index.end())
      return Symbol::fromRaw(T.intern(Candidate));
  }
}

std::string_view Symbol::str() const {
  InternTable &T = table();
  assert(Id < T.Spellings.size() && "symbol from a different process?");
  return T.Spellings[Id];
}
