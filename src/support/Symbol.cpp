//===- support/Symbol.cpp - Interned identifier symbols ------------------===//

#include "support/Symbol.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

using namespace pypm;

namespace {

/// Process-wide intern table. Constructed lazily on first use (function-local
/// static) so there is no static-initialization-order hazard.
///
/// Thread safety: the rewrite engine's parallel discovery phase interns from
/// worker threads (μ-unfold binder freshening, term-attribute keys), so the
/// table is guarded by a shared_mutex — lookups of already-interned
/// spellings take the shared lock, first-time interning upgrades to the
/// exclusive lock. Handed-out string_views stay valid forever: spellings
/// live in a deque that never relocates its elements.
struct InternTable {
  std::shared_mutex Mutex;
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, uint32_t> Index;
  uint64_t FreshCounter = 0;

  InternTable() {
    // Reserve id 0 for the invalid symbol.
    Spellings.emplace_back("<invalid>");
  }

  uint32_t intern(std::string_view Str) {
    {
      std::shared_lock<std::shared_mutex> Lock(Mutex);
      if (auto It = Index.find(Str); It != Index.end())
        return It->second;
    }
    std::unique_lock<std::shared_mutex> Lock(Mutex);
    // Re-check: another thread may have interned Str between the locks.
    if (auto It = Index.find(Str); It != Index.end())
      return It->second;
    Spellings.emplace_back(Str);
    uint32_t Id = static_cast<uint32_t>(Spellings.size() - 1);
    Index.emplace(Spellings.back(), Id);
    return Id;
  }
};

InternTable &table() {
  static InternTable Table;
  return Table;
}

} // namespace

Symbol Symbol::intern(std::string_view Str) {
  return Symbol::fromRaw(table().intern(Str));
}

Symbol Symbol::fresh(std::string_view Base) {
  InternTable &T = table();
  // Loop in case a user literally interned "<base>$<n>" already.
  std::unique_lock<std::shared_mutex> Lock(T.Mutex);
  for (;;) {
    std::string Candidate(Base);
    Candidate += '$';
    Candidate += std::to_string(T.FreshCounter++);
    if (T.Index.find(Candidate) != T.Index.end())
      continue;
    T.Spellings.emplace_back(std::move(Candidate));
    uint32_t Id = static_cast<uint32_t>(T.Spellings.size() - 1);
    T.Index.emplace(T.Spellings.back(), Id);
    return Symbol::fromRaw(Id);
  }
}

std::string_view Symbol::str() const {
  InternTable &T = table();
  std::shared_lock<std::shared_mutex> Lock(T.Mutex);
  assert(Id < T.Spellings.size() && "symbol from a different process?");
  return T.Spellings[Id];
}
