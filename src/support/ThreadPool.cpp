//===- support/ThreadPool.cpp - Small work-stealing thread pool ---------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <utility>

using namespace pypm;

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned N = std::max(1u, Threads);
  Queues.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Queues.push_back(std::make_unique<WorkerState>());
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

unsigned ThreadPool::hardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::submit(Task T) {
  unsigned Target;
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    Target = NextQueue;
    NextQueue = (NextQueue + 1) % size();
    ++Pending;
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->Mutex);
    Queues[Target]->Deque.push_back(std::move(T));
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::popOwn(unsigned Index, Task &Out) {
  WorkerState &Q = *Queues[Index];
  std::lock_guard<std::mutex> Lock(Q.Mutex);
  if (Q.Deque.empty())
    return false;
  Out = std::move(Q.Deque.front());
  Q.Deque.pop_front();
  return true;
}

bool ThreadPool::steal(unsigned Thief, Task &Out) {
  // Scan victims starting just after the thief so contention spreads.
  for (unsigned Off = 1; Off != size(); ++Off) {
    WorkerState &Q = *Queues[(Thief + Off) % size()];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (Q.Deque.empty())
      continue;
    Out = std::move(Q.Deque.back());
    Q.Deque.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Index) {
  for (;;) {
    Task T;
    if (popOwn(Index, T) || steal(Index, T)) {
      try {
        T(Index);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ExceptionMutex);
        if (!FirstException)
          FirstException = std::current_exception();
      }
      bool Drained;
      {
        std::lock_guard<std::mutex> Lock(SleepMutex);
        Drained = (--Pending == 0);
      }
      if (Drained)
        AllDone.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMutex);
    if (Stopping)
      return;
    if (Pending == 0) {
      WorkAvailable.wait(Lock, [this] { return Stopping || Pending != 0; });
      continue;
    }
    // Pending != 0 but both pop and steal missed: another worker holds the
    // task(s); spin via a short wait so we re-scan once they enqueue more
    // or finish.
    WorkAvailable.wait_for(Lock, std::chrono::microseconds(50));
  }
}

void ThreadPool::wait() {
  {
    std::unique_lock<std::mutex> Lock(SleepMutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
  }
  std::exception_ptr E;
  {
    std::lock_guard<std::mutex> Lock(ExceptionMutex);
    E = std::exchange(FirstException, nullptr);
  }
  if (E)
    std::rethrow_exception(E);
}

void ThreadPool::parallelFor(
    size_t N, const std::function<void(size_t I, unsigned Worker)> &Body) {
  if (N == 0)
    return;
  // Several chunks per worker so stolen work rebalances tail imbalance;
  // contiguous ranges keep index locality within a chunk.
  size_t Chunks = std::min<size_t>(N, static_cast<size_t>(size()) * 4);
  size_t ChunkSize = (N + Chunks - 1) / Chunks;
  for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    size_t End = std::min(N, Begin + ChunkSize);
    submit([this, &Body, Begin, End](unsigned Worker) {
      // Per-index fault isolation: a throwing Body(I) must not take the
      // rest of its chunk down with it — the caller sees every index
      // attempted, then the first exception from wait().
      for (size_t I = Begin; I != End; ++I) {
        try {
          Body(I, Worker);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(ExceptionMutex);
          if (!FirstException)
            FirstException = std::current_exception();
        }
      }
    });
  }
  wait();
}
