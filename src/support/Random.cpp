//===- support/Random.cpp - Deterministic RNG ----------------------------===//

#include "support/Random.h"

using namespace pypm;

double Rng::unit() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}
