//===- support/FaultInjection.cpp - Deterministic fault injection -------------===//

#include "support/FaultInjection.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace pypm;

std::optional<FaultInjector::Config>
FaultInjector::parse(std::string_view Spec, std::string &Err) {
  Config C;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Field = Spec.substr(
        Pos, Comma == std::string_view::npos ? std::string_view::npos
                                             : Comma - Pos);
    Pos = Comma == std::string_view::npos ? Spec.size() : Comma + 1;
    if (Field.empty())
      continue;
    size_t Eq = Field.find('=');
    if (Eq == std::string_view::npos) {
      Err = "expected key=value, got '" + std::string(Field) + "'";
      return std::nullopt;
    }
    std::string_view Key = Field.substr(0, Eq);
    std::string_view Val = Field.substr(Eq + 1);
    uint64_t N = 0;
    if (Val.empty()) {
      Err = "empty value for '" + std::string(Key) + "'";
      return std::nullopt;
    }
    for (char Ch : Val) {
      if (Ch < '0' || Ch > '9') {
        Err = "non-numeric value '" + std::string(Val) + "' for '" +
              std::string(Key) + "'";
        return std::nullopt;
      }
      N = N * 10 + static_cast<uint64_t>(Ch - '0');
    }
    if (Key == "guard")
      C.NthGuardEval = N;
    else if (Key == "task")
      C.NthWorkerTask = N;
    else if (Key == "rhs")
      C.NthRhsBuild = N;
    else if (Key == "budget")
      C.NthBudgetCharge = N;
    else if (Key == "site-seed")
      C.SiteSeed = N;
    else if (Key == "site-period")
      C.SitePeriod = N;
    else {
      Err = "unknown key '" + std::string(Key) + "'";
      return std::nullopt;
    }
  }
  return C;
}

FaultInjector *FaultInjector::global() {
  static std::unique_ptr<FaultInjector> G = []() -> std::unique_ptr<FaultInjector> {
    const char *Spec = std::getenv("PYPM_FAULT");
    if (!Spec || !*Spec)
      return nullptr;
    std::string Err;
    std::optional<Config> C = parse(Spec, Err);
    if (!C) {
      std::fprintf(stderr, "pypm: ignoring invalid PYPM_FAULT '%s': %s\n",
                   Spec, Err.c_str());
      return nullptr;
    }
    return std::make_unique<FaultInjector>(*C);
  }();
  return G.get();
}

void FaultInjector::onGuardEval() {
  if (Cfg.NthGuardEval &&
      GuardEvals.fetch_add(1, std::memory_order_relaxed) + 1 ==
          Cfg.NthGuardEval)
    throw InjectedFault("injected fault: guard evaluation #" +
                        std::to_string(Cfg.NthGuardEval));
}

void FaultInjector::onWorkerTask() {
  if (Cfg.NthWorkerTask &&
      WorkerTasks.fetch_add(1, std::memory_order_relaxed) + 1 ==
          Cfg.NthWorkerTask)
    throw InjectedFault("injected fault: worker task #" +
                        std::to_string(Cfg.NthWorkerTask));
}

void FaultInjector::onRhsBuild() {
  if (Cfg.NthRhsBuild &&
      RhsBuilds.fetch_add(1, std::memory_order_relaxed) + 1 ==
          Cfg.NthRhsBuild)
    throw InjectedFault("injected fault: RHS build #" +
                        std::to_string(Cfg.NthRhsBuild));
}

bool FaultInjector::onBudgetCharge() {
  return Cfg.NthBudgetCharge &&
         BudgetCharges.fetch_add(1, std::memory_order_relaxed) + 1 ==
             Cfg.NthBudgetCharge;
}

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
static uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

bool FaultInjector::atAttemptSite(uint64_t Pass, uint64_t Node,
                                  uint64_t Entry) const {
  if (!Cfg.SitePeriod)
    return false;
  uint64_t H = mix64(Cfg.SiteSeed ^ mix64(Pass));
  H = mix64(H ^ mix64(Node));
  H = mix64(H ^ mix64(Entry));
  return H % Cfg.SitePeriod == 0;
}

void FaultInjector::reset() {
  GuardEvals.store(0, std::memory_order_relaxed);
  WorkerTasks.store(0, std::memory_order_relaxed);
  RhsBuilds.store(0, std::memory_order_relaxed);
  BudgetCharges.store(0, std::memory_order_relaxed);
}
