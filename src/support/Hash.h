//===- support/Hash.h - Incremental FNV-1a hashing --------------*- C++ -*-===//
///
/// \file
/// A tiny incremental FNV-1a (64-bit) hasher shared by the artifact layers
/// that need a stable, portable content fingerprint: the match-plan
/// canonical signature (binds a `.pypmprof` profile to the plan it was
/// recorded against) and the profile artifact's payload checksum.
///
/// FNV-1a's per-byte step `h = (h ^ b) * prime` is injective in `b` for a
/// fixed incoming `h` (the prime is odd, so the multiply is invertible mod
/// 2^64), and every later step is an injective function of `h`. A
/// single-byte change therefore always changes the final value — which is
/// what makes it usable as a corruption check for the every-byte-corruption
/// hostile-input corpus, not just as a hash.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_SUPPORT_HASH_H
#define PYPM_SUPPORT_HASH_H

#include <cstdint>
#include <cstring>
#include <string_view>

namespace pypm {

class Fnv1aHash {
public:
  static constexpr uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  void byte(uint8_t B) { H = (H ^ B) * kPrime; }

  void bytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I < Len; ++I)
      byte(P[I]);
  }

  /// Little-endian, width-explicit integer mixing: the value hashes the
  /// same on every host, independent of native endianness or word size.
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// Length-prefixed, so consecutive strings cannot alias ("ab","c" vs
  /// "a","bc").
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    bytes(S.data(), S.size());
  }

  uint64_t value() const { return H; }

private:
  uint64_t H = kOffsetBasis;
};

/// boost::hash_combine-style 64-bit mixing. For in-process hash tables
/// (term hash-consing) where speed matters and the value never crosses a
/// process boundary; persistent fingerprints use Fnv1aHash above instead.
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  Seed ^= V + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4);
  return Seed;
}

} // namespace pypm

#endif // PYPM_SUPPORT_HASH_H
