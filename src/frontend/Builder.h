//===- frontend/Builder.h - Fluent C++ pattern/rule builder -----*- C++ -*-===//
///
/// \file
/// A programmatic counterpart of the PyPM decorators (§2): where a Python
/// user writes
///
///   @pattern
///   def MMxyT(x, y):
///     assert x.shape.rank == 2
///     yt = Trans(y)
///     return MatMul(x, yt)
///
/// a C++ user writes
///
///   ModuleBuilder B(Sig);
///   auto MatMul = B.op("MatMul", 2);
///   auto Trans = B.op("Trans", 1);
///   auto P = B.pattern("MMxyT", {"x", "y"});
///   P.require(P.arg("x")["rank"] == 2);
///   P.ret(MatMul(P.arg("x"), Trans(P.arg("y"))));
///   P.done();
///
/// Alternates are added by calling pattern() again with the same name;
/// recursion uses PatternBuilder::self(). Rules attach guards and an RHS
/// template. The builder produces exactly the same core-calculus Library
/// the DSL frontend produces (tests check the two agree on the paper's
/// figures).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_FRONTEND_BUILDER_H
#define PYPM_FRONTEND_BUILDER_H

#include "pattern/Pattern.h"

#include <memory>
#include <string_view>
#include <vector>

namespace pypm::frontend {

class ModuleBuilder;
class PatternBuilder;
class RuleBuilder;

/// A pattern-position expression under construction.
struct PExpr {
  const pattern::Pattern *P = nullptr;
};

/// A guard (or arithmetic) expression under construction. Overloaded
/// operators build the Fig. 8 grammar.
struct GExpr {
  const pattern::GuardExpr *G = nullptr;
  pattern::PatternArena *Arena = nullptr;

  friend GExpr operator+(GExpr A, GExpr B);
  friend GExpr operator-(GExpr A, GExpr B);
  friend GExpr operator*(GExpr A, GExpr B);
  friend GExpr operator/(GExpr A, GExpr B);
  friend GExpr operator%(GExpr A, GExpr B);
  friend GExpr operator==(GExpr A, GExpr B);
  friend GExpr operator!=(GExpr A, GExpr B);
  friend GExpr operator<(GExpr A, GExpr B);
  friend GExpr operator<=(GExpr A, GExpr B);
  friend GExpr operator>(GExpr A, GExpr B);
  friend GExpr operator>=(GExpr A, GExpr B);
  friend GExpr operator&&(GExpr A, GExpr B);
  friend GExpr operator||(GExpr A, GExpr B);
  friend GExpr operator!(GExpr A);

  // Mixed int forms.
  friend GExpr operator==(GExpr A, int64_t B);
  friend GExpr operator!=(GExpr A, int64_t B);
  friend GExpr operator<(GExpr A, int64_t B);
  friend GExpr operator<=(GExpr A, int64_t B);
  friend GExpr operator>(GExpr A, int64_t B);
  friend GExpr operator>=(GExpr A, int64_t B);
};

/// An RHS-position expression under construction.
struct RExpr {
  const pattern::RhsExpr *R = nullptr;
};

/// A term variable handle. `X["rank"]` is the guard expression x.rank;
/// implicit conversion yields the variable pattern.
class VarHandle {
public:
  VarHandle(Symbol Name, pattern::PatternArena &Arena, bool IsFun)
      : Name(Name), Arena(&Arena), IsFun(IsFun) {}

  Symbol name() const { return Name; }
  bool isFunVar() const { return IsFun; }

  /// Attribute access: x["rank"], F["op_class"].
  GExpr operator[](std::string_view Attr) const;

  /// The variable as a pattern (term variables only).
  operator PExpr() const;

  /// The variable as a rule RHS (term variables only).
  RExpr rhs() const;

private:
  Symbol Name;
  pattern::PatternArena *Arena;
  bool IsFun;
};

/// An operator handle; calling it builds App patterns / RHS applications.
class OpHandle {
public:
  OpHandle() = default;
  OpHandle(term::OpId Op, pattern::PatternArena &Arena)
      : Op(Op), Arena(&Arena) {}

  term::OpId id() const { return Op; }

  PExpr operator()(std::initializer_list<PExpr> Args) const;
  PExpr operator()() const { return (*this)({}); }
  PExpr operator()(PExpr A) const { return (*this)({A}); }
  PExpr operator()(PExpr A, PExpr B) const { return (*this)({A, B}); }
  PExpr operator()(PExpr A, PExpr B, PExpr C) const {
    return (*this)({A, B, C});
  }

  /// RHS application, with optional attribute templates.
  RExpr rhs(std::initializer_list<RExpr> Args,
            std::vector<pattern::RhsExpr::AttrTemplate> Attrs = {}) const;

private:
  term::OpId Op;
  pattern::PatternArena *Arena = nullptr;
};

/// Builds one alternate of a named pattern. Statements mirror the Python
/// body: fresh local variables (var()), function variables, match
/// constraints (<=), assertions, and the final return. done() commits the
/// alternate into the module.
class PatternBuilder {
public:
  /// The named parameter (term variable by default; funParam() promotes).
  VarHandle arg(std::string_view Name);
  /// Marks a parameter as a function variable (used in function position).
  VarHandle funParam(std::string_view Name);

  /// y = var()
  VarHandle var(std::string_view Name);
  /// F = opvar(arity)
  VarHandle opvar(std::string_view Name);

  /// assert g
  PatternBuilder &require(GExpr G);
  /// x <= p
  PatternBuilder &constrain(VarHandle X, PExpr P);
  /// f(args…) for a function variable f.
  PExpr fcall(VarHandle F, std::initializer_list<PExpr> Args);
  /// Recursive reference to this pattern: Self(args…).
  PExpr self(std::initializer_list<VarHandle> Args);
  /// A scalar-constant pattern (matches Const nodes with this value).
  PExpr lit(double Value);
  /// An integer guard literal.
  GExpr intLit(int64_t Value);
  /// opclass("…") guard literal.
  GExpr opclass(std::string_view Name);

  /// return p — records the alternate's body.
  PatternBuilder &ret(PExpr P);

  /// Commits this alternate. Must be the last call.
  void done();

private:
  friend class ModuleBuilder;
  PatternBuilder(ModuleBuilder &M, Symbol Name,
                 std::vector<Symbol> Params);

  struct Wrapper {
    enum class Kind { Guard, Constraint, Exists, ExistsFun } K;
    const pattern::GuardExpr *G = nullptr;
    Symbol Var;
    const pattern::Pattern *ConstraintPat = nullptr;
  };

  ModuleBuilder &M;
  Symbol Name;
  std::vector<Symbol> Params;
  std::vector<Wrapper> Wrappers;
  const pattern::Pattern *Body = nullptr;
  bool UsedSelf = false;
  bool Committed = false;
};

/// Builds one rule for a pattern.
class RuleBuilder {
public:
  VarHandle arg(std::string_view Name);
  RuleBuilder &require(GExpr G);
  /// Finishes the rule with the given replacement.
  void ret(RExpr R);

  /// F(args…) on the RHS for a matched function variable.
  RExpr fcallRhs(VarHandle F, std::initializer_list<RExpr> Args,
                 std::vector<pattern::RhsExpr::AttrTemplate> Attrs = {});
  GExpr intLit(int64_t Value);

private:
  friend class ModuleBuilder;
  RuleBuilder(ModuleBuilder &M, Symbol Name, Symbol PatternName);

  ModuleBuilder &M;
  Symbol Name;
  Symbol PatternName;
  std::vector<const pattern::GuardExpr *> Guards;
  bool Committed = false;
};

/// Owns the Library being built and the op declarations.
class ModuleBuilder {
public:
  explicit ModuleBuilder(term::Signature &Sig);

  term::Signature &signature() { return Sig; }
  pattern::PatternArena &arena() { return Lib->Arena; }

  /// Declares (or looks up) an operator.
  OpHandle op(std::string_view Name, unsigned Arity,
              std::string_view OpClass = {});

  /// Starts an alternate of pattern \p Name. All alternates of one name
  /// must pass the same parameter list.
  PatternBuilder pattern(std::string_view Name,
                         std::initializer_list<std::string_view> Params);

  /// Starts a rule for \p PatternName.
  RuleBuilder rule(std::string_view Name, std::string_view PatternName);

  /// Finalizes: folds alternates (wrapping self-recursive groups in μ),
  /// runs the well-formedness checker, and returns the Library. Aborts on
  /// builder misuse (assert) and returns nullptr on WF errors (rendered to
  /// stderr).
  std::unique_ptr<pattern::Library> finish();

private:
  friend class PatternBuilder;
  friend class RuleBuilder;

  struct Group {
    Symbol Name;
    std::vector<Symbol> Params;
    std::vector<Symbol> FunParams;
    std::vector<const pattern::Pattern *> Alts;
    bool SelfRecursive = false;
  };
  Group &groupFor(Symbol Name, const std::vector<Symbol> &Params);

  term::Signature &Sig;
  std::unique_ptr<pattern::Library> Lib;
  std::vector<Group> Groups;
};

} // namespace pypm::frontend

#endif // PYPM_FRONTEND_BUILDER_H
