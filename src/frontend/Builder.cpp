//===- frontend/Builder.cpp - Fluent C++ pattern/rule builder ----------------===//

#include "frontend/Builder.h"

#include "pattern/WellFormed.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace pypm;
using namespace pypm::frontend;
using namespace pypm::pattern;

//===----------------------------------------------------------------------===//
// GExpr operators
//===----------------------------------------------------------------------===//

static GExpr binG(GuardKind K, GExpr A, GExpr B) {
  assert(A.Arena && A.Arena == B.Arena && "mixing builders");
  return GExpr{A.Arena->binary(K, A.G, B.G), A.Arena};
}
static GExpr binI(GuardKind K, GExpr A, int64_t B) {
  assert(A.Arena);
  return GExpr{A.Arena->binary(K, A.G, A.Arena->intLit(B)), A.Arena};
}

namespace pypm::frontend {
GExpr operator+(GExpr A, GExpr B) { return binG(GuardKind::Add, A, B); }
GExpr operator-(GExpr A, GExpr B) { return binG(GuardKind::Sub, A, B); }
GExpr operator*(GExpr A, GExpr B) { return binG(GuardKind::Mul, A, B); }
GExpr operator/(GExpr A, GExpr B) { return binG(GuardKind::Div, A, B); }
GExpr operator%(GExpr A, GExpr B) { return binG(GuardKind::Mod, A, B); }
GExpr operator==(GExpr A, GExpr B) { return binG(GuardKind::Eq, A, B); }
GExpr operator!=(GExpr A, GExpr B) { return binG(GuardKind::Ne, A, B); }
GExpr operator<(GExpr A, GExpr B) { return binG(GuardKind::Lt, A, B); }
GExpr operator<=(GExpr A, GExpr B) { return binG(GuardKind::Le, A, B); }
GExpr operator>(GExpr A, GExpr B) { return binG(GuardKind::Gt, A, B); }
GExpr operator>=(GExpr A, GExpr B) { return binG(GuardKind::Ge, A, B); }
GExpr operator&&(GExpr A, GExpr B) { return binG(GuardKind::And, A, B); }
GExpr operator||(GExpr A, GExpr B) { return binG(GuardKind::Or, A, B); }
GExpr operator!(GExpr A) {
  assert(A.Arena);
  return GExpr{A.Arena->notExpr(A.G), A.Arena};
}
GExpr operator==(GExpr A, int64_t B) { return binI(GuardKind::Eq, A, B); }
GExpr operator!=(GExpr A, int64_t B) { return binI(GuardKind::Ne, A, B); }
GExpr operator<(GExpr A, int64_t B) { return binI(GuardKind::Lt, A, B); }
GExpr operator<=(GExpr A, int64_t B) { return binI(GuardKind::Le, A, B); }
GExpr operator>(GExpr A, int64_t B) { return binI(GuardKind::Gt, A, B); }
GExpr operator>=(GExpr A, int64_t B) { return binI(GuardKind::Ge, A, B); }
} // namespace pypm::frontend

//===----------------------------------------------------------------------===//
// VarHandle / OpHandle
//===----------------------------------------------------------------------===//

GExpr VarHandle::operator[](std::string_view Attr) const {
  Symbol Key = Symbol::intern(Attr);
  if (IsFun)
    return GExpr{Arena->funAttr(Name, Key), Arena};
  return GExpr{Arena->attr(Name, Key), Arena};
}

VarHandle::operator PExpr() const {
  assert(!IsFun && "function variable used in term position");
  return PExpr{Arena->var(Name)};
}

RExpr VarHandle::rhs() const {
  assert(!IsFun && "function variable cannot be a bare RHS");
  return RExpr{Arena->rhsVar(Name)};
}

PExpr OpHandle::operator()(std::initializer_list<PExpr> Args) const {
  assert(Arena && "default-constructed OpHandle");
  std::vector<const Pattern *> Children;
  Children.reserve(Args.size());
  for (const PExpr &A : Args)
    Children.push_back(A.P);
  return PExpr{Arena->app(Op, std::move(Children))};
}

RExpr OpHandle::rhs(std::initializer_list<RExpr> Args,
                    std::vector<RhsExpr::AttrTemplate> Attrs) const {
  assert(Arena && "default-constructed OpHandle");
  std::vector<const RhsExpr *> Children;
  Children.reserve(Args.size());
  for (const RExpr &A : Args)
    Children.push_back(A.R);
  return RExpr{Arena->rhsApp(Op, std::move(Children), std::move(Attrs))};
}

//===----------------------------------------------------------------------===//
// ModuleBuilder
//===----------------------------------------------------------------------===//

ModuleBuilder::ModuleBuilder(term::Signature &Sig)
    : Sig(Sig), Lib(std::make_unique<Library>()) {}

OpHandle ModuleBuilder::op(std::string_view Name, unsigned Arity,
                           std::string_view OpClass) {
  term::OpId Op = Sig.getOrAddOp(Name, Arity, 1, OpClass);
  return OpHandle(Op, Lib->Arena);
}

ModuleBuilder::Group &ModuleBuilder::groupFor(Symbol Name,
                                              const std::vector<Symbol> &Params) {
  for (Group &G : Groups)
    if (G.Name == Name) {
      assert(G.Params == Params &&
             "alternates of a pattern must share the parameter list");
      return G;
    }
  Groups.push_back(Group());
  Groups.back().Name = Name;
  Groups.back().Params = Params;
  return Groups.back();
}

PatternBuilder ModuleBuilder::pattern(
    std::string_view Name, std::initializer_list<std::string_view> Params) {
  std::vector<Symbol> Syms;
  for (std::string_view P : Params)
    Syms.push_back(Symbol::intern(P));
  return PatternBuilder(*this, Symbol::intern(Name), std::move(Syms));
}

RuleBuilder ModuleBuilder::rule(std::string_view Name,
                                std::string_view PatternName) {
  return RuleBuilder(*this, Symbol::intern(Name),
                     Symbol::intern(PatternName));
}

std::unique_ptr<Library> ModuleBuilder::finish() {
  for (Group &G : Groups) {
    assert(!G.Alts.empty() && "pattern with no committed alternates");
    const Pattern *Combined = Lib->Arena.altList(G.Alts);
    if (G.SelfRecursive)
      Combined = Lib->Arena.mu(G.Name, G.Params, G.Params, Combined);
    NamedPattern NP;
    NP.Name = G.Name;
    NP.Params = G.Params;
    NP.FunParams = G.FunParams;
    NP.Pat = Combined;
    Lib->PatternDefs.push_back(std::move(NP));
  }
  DiagnosticEngine Diags;
  if (!checkWellFormed(*Lib, Sig, Diags)) {
    std::fprintf(stderr, "ModuleBuilder::finish: %s",
                 Diags.renderAll().c_str());
    return nullptr;
  }
  return std::move(Lib);
}

//===----------------------------------------------------------------------===//
// PatternBuilder
//===----------------------------------------------------------------------===//

PatternBuilder::PatternBuilder(ModuleBuilder &M, Symbol Name,
                               std::vector<Symbol> Params)
    : M(M), Name(Name), Params(std::move(Params)) {
  // Validates/creates the group up front so parameter mismatches fail fast.
  M.groupFor(Name, this->Params);
}

VarHandle PatternBuilder::arg(std::string_view Name) {
  Symbol S = Symbol::intern(Name);
  assert(std::find(Params.begin(), Params.end(), S) != Params.end() &&
         "arg() of a name that is not a parameter");
  ModuleBuilder::Group &G = M.groupFor(this->Name, Params);
  bool IsFun = std::find(G.FunParams.begin(), G.FunParams.end(), S) !=
               G.FunParams.end();
  return VarHandle(S, M.arena(), IsFun);
}

VarHandle PatternBuilder::funParam(std::string_view Name) {
  Symbol S = Symbol::intern(Name);
  assert(std::find(Params.begin(), Params.end(), S) != Params.end() &&
         "funParam() of a name that is not a parameter");
  ModuleBuilder::Group &G = M.groupFor(this->Name, Params);
  if (std::find(G.FunParams.begin(), G.FunParams.end(), S) ==
      G.FunParams.end())
    G.FunParams.push_back(S);
  return VarHandle(S, M.arena(), /*IsFun=*/true);
}

VarHandle PatternBuilder::var(std::string_view Name) {
  Symbol S = Symbol::intern(Name);
  Wrappers.push_back({Wrapper::Kind::Exists, nullptr, S, nullptr});
  return VarHandle(S, M.arena(), /*IsFun=*/false);
}

VarHandle PatternBuilder::opvar(std::string_view Name) {
  Symbol S = Symbol::intern(Name);
  Wrappers.push_back({Wrapper::Kind::ExistsFun, nullptr, S, nullptr});
  return VarHandle(S, M.arena(), /*IsFun=*/true);
}

PatternBuilder &PatternBuilder::require(GExpr G) {
  Wrappers.push_back({Wrapper::Kind::Guard, G.G, Symbol(), nullptr});
  return *this;
}

PatternBuilder &PatternBuilder::constrain(VarHandle X, PExpr P) {
  assert(!X.isFunVar() && "match constraint on a function variable");
  Wrappers.push_back({Wrapper::Kind::Constraint, nullptr, X.name(), P.P});
  return *this;
}

PExpr PatternBuilder::fcall(VarHandle F,
                            std::initializer_list<PExpr> Args) {
  assert(F.isFunVar() && "fcall head must be a function variable");
  std::vector<const Pattern *> Children;
  for (const PExpr &A : Args)
    Children.push_back(A.P);
  return PExpr{M.arena().funVarApp(F.name(), std::move(Children))};
}

PExpr PatternBuilder::self(std::initializer_list<VarHandle> Args) {
  UsedSelf = true;
  std::vector<Symbol> Syms;
  for (const VarHandle &A : Args)
    Syms.push_back(A.name());
  assert(Syms.size() == Params.size() &&
         "recursive call arity must match the parameter list");
  return PExpr{M.arena().recCall(Name, std::move(Syms))};
}

PExpr PatternBuilder::lit(double Value) {
  PatternArena &A = M.arena();
  // Matches the DSL's literal lowering: a fresh ∃-bound Const node with the
  // micro-scaled value.
  M.signature().getOrAddOp("Const", 0, 1, "const");
  Symbol C = Symbol::fresh("lit");
  int64_t Micro = static_cast<int64_t>(std::llround(Value * 1e6));
  const GuardExpr *Both = A.binary(
      GuardKind::And,
      A.binary(GuardKind::Eq, A.attr(C, Symbol::intern("op_id")),
               A.opRef(Symbol::intern("Const"))),
      A.binary(GuardKind::Eq, A.attr(C, Symbol::intern("value_u6")),
               A.intLit(Micro)));
  return PExpr{A.exists(C, A.guarded(A.var(C), Both))};
}

GExpr PatternBuilder::intLit(int64_t Value) {
  return GExpr{M.arena().intLit(Value), &M.arena()};
}

GExpr PatternBuilder::opclass(std::string_view Name) {
  return GExpr{M.arena().opClassRef(Symbol::intern(Name)), &M.arena()};
}

PatternBuilder &PatternBuilder::ret(PExpr P) {
  assert(!Body && "ret() called twice in one alternate");
  Body = P.P;
  return *this;
}

void PatternBuilder::done() {
  assert(!Committed && "done() called twice");
  assert(Body && "alternate committed without ret()");
  Committed = true;
  const Pattern *P = Body;
  PatternArena &A = M.arena();
  for (size_t I = Wrappers.size(); I-- > 0;) {
    const Wrapper &W = Wrappers[I];
    switch (W.K) {
    case Wrapper::Kind::Guard:
      P = A.guarded(P, W.G);
      break;
    case Wrapper::Kind::Constraint:
      P = A.matchConstraint(P, W.ConstraintPat, W.Var);
      break;
    case Wrapper::Kind::Exists:
      P = A.exists(W.Var, P);
      break;
    case Wrapper::Kind::ExistsFun:
      P = A.existsFun(W.Var, P);
      break;
    }
  }
  ModuleBuilder::Group &G = M.groupFor(Name, Params);
  G.Alts.push_back(P);
  G.SelfRecursive |= UsedSelf;
}

//===----------------------------------------------------------------------===//
// RuleBuilder
//===----------------------------------------------------------------------===//

RuleBuilder::RuleBuilder(ModuleBuilder &M, Symbol Name, Symbol PatternName)
    : M(M), Name(Name), PatternName(PatternName) {}

VarHandle RuleBuilder::arg(std::string_view Name) {
  Symbol S = Symbol::intern(Name);
  for (const ModuleBuilder::Group &G : M.Groups)
    if (G.Name == PatternName) {
      bool IsFun = std::find(G.FunParams.begin(), G.FunParams.end(), S) !=
                   G.FunParams.end();
      return VarHandle(S, M.arena(), IsFun);
    }
  assert(false && "rule() for an unknown pattern");
  return VarHandle(S, M.arena(), false);
}

RuleBuilder &RuleBuilder::require(GExpr G) {
  Guards.push_back(G.G);
  return *this;
}

RExpr RuleBuilder::fcallRhs(VarHandle F, std::initializer_list<RExpr> Args,
                            std::vector<RhsExpr::AttrTemplate> Attrs) {
  assert(F.isFunVar());
  std::vector<const RhsExpr *> Children;
  for (const RExpr &A : Args)
    Children.push_back(A.R);
  return RExpr{M.arena().rhsFunVarApp(F.name(), std::move(Children),
                                      std::move(Attrs))};
}

GExpr RuleBuilder::intLit(int64_t Value) {
  return GExpr{M.arena().intLit(Value), &M.arena()};
}

void RuleBuilder::ret(RExpr R) {
  assert(!Committed && "ret() called twice on a rule");
  Committed = true;
  RewriteRule Rule;
  Rule.Name = Name;
  Rule.PatternName = PatternName;
  const GuardExpr *Conj = nullptr;
  for (const GuardExpr *G : Guards)
    Conj = Conj ? M.arena().binary(GuardKind::And, Conj, G) : G;
  Rule.Guard = Conj;
  Rule.Rhs = R.R;
  M.Lib->Rules.push_back(Rule);
}
