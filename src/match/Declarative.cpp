//===- match/Declarative.cpp - Declarative semantics ------------------------===//

#include "match/Declarative.h"

#include <algorithm>
#include <unordered_set>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;

namespace {

/// One engine implements both entry points:
///
///  - Strict mode (the derivation checker): at P-Var, only variables
///    introduced by an enclosing ∃ within this derivation ("open"
///    variables) may acquire new bindings; every other variable must
///    already be bound by the candidate witness, exactly as P-Var demands.
///    Function variables must always be bound by the candidate φ.
///
///  - Free mode (the witness enumerator): every variable may bind, so the
///    search computes all witnesses.
///
/// Following §2.3 ("every fresh variable introduced must eventually be
/// bound to some subterm") both modes require an ∃-variable to be bound
/// when its scope closes — the declarative counterpart of the machine's
/// checkName action. (The bare P-Exists rule would also admit an arbitrary
/// t′ for an unused variable; PyPM the language rules that out, and the
/// two executable semantics agree on the stricter reading.)
class Engine {
public:
  Engine(const term::TermArena &Arena, DeclOptions Opts, bool Strict)
      : Arena(Arena), Opts(Opts), Strict(Strict) {}

  using States = std::vector<Witness>;

  States solve(const Pattern *P, term::TermRef T, States In, unsigned Fuel) {
    if (In.empty())
      return In;
    if (In.size() > Opts.MaxWitnesses) {
      Incomplete = true;
      In.resize(Opts.MaxWitnesses);
    }

    switch (P->kind()) {
    case PatternKind::Var: {
      Symbol X = cast<VarPattern>(P)->name();
      States Out;
      for (Witness &W : In) {
        std::optional<term::TermRef> Bound = W.Theta.lookup(X);
        if (Bound) {
          if (*Bound == T)
            Out.push_back(std::move(W)); // P-Var
          continue;
        }
        if (Strict && !Open.count(X))
          continue; // P-Var premise θ(x) ↦ t fails for this witness
        W.Theta.bind(X, T);
        Out.push_back(std::move(W));
      }
      return Out;
    }

    case PatternKind::App: {
      const auto *AP = cast<AppPattern>(P);
      if (AP->op() != T->op())
        return {};
      States Cur = std::move(In);
      for (unsigned I = 0; I != AP->arity() && !Cur.empty(); ++I)
        Cur = solve(AP->children()[I], T->child(I), std::move(Cur), Fuel);
      return Cur; // P-Fun
    }

    case PatternKind::FunVarApp: {
      const auto *FP = cast<FunVarAppPattern>(P);
      if (FP->arity() != T->arity())
        return {};
      States Survivors;
      for (Witness &W : In) {
        std::optional<term::OpId> Bound = W.Phi.lookup(FP->funVar());
        if (Bound) {
          if (*Bound == T->op())
            Survivors.push_back(std::move(W));
          continue;
        }
        if (Strict && !OpenFun.count(FP->funVar()))
          continue; // P-Fun-Var premise φ(F) ↦ f fails
        W.Phi.bind(FP->funVar(), T->op());
        Survivors.push_back(std::move(W));
      }
      States Cur = std::move(Survivors);
      for (unsigned I = 0; I != FP->arity() && !Cur.empty(); ++I)
        Cur = solve(FP->children()[I], T->child(I), std::move(Cur), Fuel);
      return Cur;
    }

    case PatternKind::Alt: {
      // P-Alt-1 ∪ P-Alt-2: the relation is the union of both derivations.
      const auto *AP = cast<AltPattern>(P);
      States L = solve(AP->left(), T, In, Fuel);
      States R = solve(AP->right(), T, std::move(In), Fuel);
      L.insert(L.end(), std::make_move_iterator(R.begin()),
               std::make_move_iterator(R.end()));
      return L;
    }

    case PatternKind::Guarded: {
      const auto *GP = cast<GuardedPattern>(P);
      States Sub = solve(GP->sub(), T, std::move(In), Fuel);
      States Out;
      for (Witness &W : Sub) {
        SubstEnv Env(W.Theta, W.Phi, Arena);
        if (GP->guard()->evalBool(Env).truthy()) // ⟦g[θ]⟧ = True
          Out.push_back(std::move(W));
      }
      return Out;
    }

    case PatternKind::Exists: {
      const auto *EP = cast<ExistsPattern>(P);
      bool Inserted = Open.insert(EP->var()).second;
      States Sub = solve(EP->sub(), T, std::move(In), Fuel);
      if (Inserted)
        Open.erase(EP->var());
      States Out;
      for (Witness &W : Sub)
        if (W.Theta.contains(EP->var())) // the checkName requirement
          Out.push_back(std::move(W));
      return Out;
    }

    case PatternKind::ExistsFun: {
      // ∃F over function variables (local operator variables, Fig. 14).
      const auto *EP = cast<ExistsFunPattern>(P);
      bool Inserted = OpenFun.insert(EP->funVar()).second;
      States Sub = solve(EP->sub(), T, std::move(In), Fuel);
      if (Inserted)
        OpenFun.erase(EP->funVar());
      States Out;
      for (Witness &W : Sub)
        if (W.Phi.contains(EP->funVar()))
          Out.push_back(std::move(W));
      return Out;
    }

    case PatternKind::MatchConstraint: {
      const auto *MP = cast<MatchConstraintPattern>(P);
      States Sub = solve(MP->sub(), T, std::move(In), Fuel);
      States Out;
      for (Witness &W : Sub) {
        std::optional<term::TermRef> Bound = W.Theta.lookup(MP->var());
        if (!Bound)
          continue; // P-MatchConstr premise θ(x) ↦ t′ fails
        States One;
        One.push_back(std::move(W));
        States Res = solve(MP->constraint(), *Bound, std::move(One), Fuel);
        Out.insert(Out.end(), std::make_move_iterator(Res.begin()),
                   std::make_move_iterator(Res.end()));
      }
      return Out;
    }

    case PatternKind::Mu: {
      if (Fuel == 0) {
        Incomplete = true;
        return {};
      }
      const Pattern *Unfolded = Scratch.unfoldMu(cast<MuPattern>(P));
      return solve(Unfolded, T, std::move(In), Fuel - 1); // P-Mu
    }

    case PatternKind::RecCall:
      assert(false && "RecCall outside a mu body (ill-formed pattern)");
      return {};
    }
    assert(false && "unknown pattern kind");
    return {};
  }

  bool incomplete() const { return Incomplete; }

private:
  const term::TermArena &Arena;
  DeclOptions Opts;
  bool Strict;
  PatternArena Scratch;
  std::unordered_set<Symbol> Open;
  std::unordered_set<Symbol> OpenFun;
  bool Incomplete = false;
};

void dedup(std::vector<Witness> &Ws) {
  auto Less = [](const Witness &A, const Witness &B) {
    auto Tup = [](const Witness &W) {
      // Lexicographic over the sorted entry vectors; TermRef/OpId values
      // are stable within a run, which is all dedup needs.
      std::vector<std::pair<uint64_t, uint64_t>> Keys;
      for (const auto &[S, T] : W.Theta)
        Keys.emplace_back(S.rawId(), reinterpret_cast<uint64_t>(T));
      Keys.emplace_back(~0ull, ~0ull); // separator
      for (const auto &[S, Op] : W.Phi)
        Keys.emplace_back(S.rawId(), Op.index());
      return Keys;
    };
    return Tup(A) < Tup(B);
  };
  std::sort(Ws.begin(), Ws.end(), Less);
  Ws.erase(std::unique(Ws.begin(), Ws.end()), Ws.end());
}

} // namespace

bool pypm::match::checkDerivable(const pattern::Pattern *P, term::TermRef T,
                                 const Subst &Theta, const FunSubst &Phi,
                                 const term::TermArena &Arena,
                                 DeclOptions Opts) {
  Engine E(Arena, Opts, /*Strict=*/true);
  Engine::States Seed;
  Seed.push_back(Witness{Theta, Phi});
  return !E.solve(P, T, std::move(Seed), Opts.MuFuel).empty();
}

EnumResult pypm::match::enumerateWitnesses(const pattern::Pattern *P,
                                           term::TermRef T,
                                           const term::TermArena &Arena,
                                           DeclOptions Opts, Subst SeedTheta,
                                           FunSubst SeedPhi) {
  Engine E(Arena, Opts, /*Strict=*/false);
  Engine::States Seed;
  Seed.push_back(Witness{std::move(SeedTheta), std::move(SeedPhi)});
  EnumResult R;
  R.Witnesses = E.solve(P, T, std::move(Seed), Opts.MuFuel);
  R.Incomplete = E.incomplete();
  dedup(R.Witnesses);
  return R;
}
