//===- match/Subst.cpp - Substitutions θ and φ -----------------------------===//

#include "match/Subst.h"

using namespace pypm;
using namespace pypm::match;

std::string pypm::match::toString(const Subst &Theta,
                                  const term::Signature &Sig) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Var, T] : Theta) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Var.str();
    Out += " -> ";
    Out += term::TermArena::toString(T, Sig);
  }
  Out += "}";
  return Out;
}

std::string pypm::match::toString(const Witness &W,
                                  const term::Signature &Sig) {
  std::string Out = toString(W.Theta, Sig);
  if (!W.Phi.empty()) {
    Out += " / {";
    bool First = true;
    for (const auto &[Var, Op] : W.Phi) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Var.str();
      Out += " -> ";
      Out += Sig.name(Op).str();
    }
    Out += "}";
  }
  return Out;
}
