//===- match/Derivation.cpp - Match derivation (proof) trees -------------------===//

#include "match/Derivation.h"

#include <unordered_map>
#include <unordered_set>

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;

namespace {

/// Deterministic backtracking derivation builder. The witness ⟨θ, φ⟩ is
/// authoritative for every variable except ∃-opened ones, which live in a
/// trailed overlay so alternate branches can retract their guesses.
class Builder {
public:
  Builder(const Subst &Theta, const FunSubst &Phi,
          const term::TermArena &Arena, DeriveOptions Opts)
      : Theta(Theta), Phi(Phi), Arena(Arena), Opts(Opts) {}

  std::unique_ptr<Derivation> build(const Pattern *P, term::TermRef T) {
    return derive(P, T, Opts.MuFuel);
  }

private:
  const Subst &Theta;
  const FunSubst &Phi;
  const term::TermArena &Arena;
  DeriveOptions Opts;
  PatternArena Scratch;

  // Overlay for ∃-opened variables.
  std::unordered_map<Symbol, term::TermRef> OpenTheta;
  std::unordered_map<Symbol, term::OpId> OpenPhi;
  std::unordered_set<Symbol> OpenVars, OpenFunVars;
  std::vector<Symbol> ThetaTrail, PhiTrail;

  /// GuardEnv over witness + overlay.
  struct Env final : public GuardEnv {
    const Builder &B;
    explicit Env(const Builder &B) : B(B) {}
    std::optional<term::TermRef> lookupVar(Symbol Var) const override {
      if (auto It = B.OpenTheta.find(Var); It != B.OpenTheta.end())
        return It->second;
      return B.Theta.lookup(Var);
    }
    std::optional<term::OpId> lookupFunVar(Symbol FunVar) const override {
      if (auto It = B.OpenPhi.find(FunVar); It != B.OpenPhi.end())
        return It->second;
      return B.Phi.lookup(FunVar);
    }
    const term::TermArena &arena() const override { return B.Arena; }
  };

  std::optional<term::TermRef> lookupVar(Symbol V) const {
    if (auto It = OpenTheta.find(V); It != OpenTheta.end())
      return It->second;
    return Theta.lookup(V);
  }
  std::optional<term::OpId> lookupFunVar(Symbol V) const {
    if (auto It = OpenPhi.find(V); It != OpenPhi.end())
      return It->second;
    return Phi.lookup(V);
  }

  static std::unique_ptr<Derivation> node(std::string Rule, const Pattern *P,
                                          term::TermRef T,
                                          std::string Note = {}) {
    auto D = std::make_unique<Derivation>();
    D->Rule = std::move(Rule);
    D->Pat = P;
    D->T = T;
    D->Note = std::move(Note);
    return D;
  }

  std::unique_ptr<Derivation> derive(const Pattern *P, term::TermRef T,
                                     unsigned Fuel) {
    switch (P->kind()) {
    case PatternKind::Var: {
      Symbol X = cast<VarPattern>(P)->name();
      std::optional<term::TermRef> Bound = lookupVar(X);
      if (Bound) {
        if (*Bound != T)
          return nullptr;
        return node("P-Var", P, T,
                    "θ(" + std::string(X.str()) + ") ↦ " +
                        Arena.toString(T));
      }
      if (!OpenVars.count(X))
        return nullptr; // P-Var premise fails; x is not ∃-opened
      OpenTheta.emplace(X, T);
      ThetaTrail.push_back(X);
      return node("P-Var", P, T,
                  "bind " + std::string(X.str()) + " ↦ " +
                      Arena.toString(T));
    }

    case PatternKind::App: {
      const auto *AP = cast<AppPattern>(P);
      if (AP->op() != T->op())
        return nullptr;
      size_t ThetaMark = ThetaTrail.size(), PhiMark = PhiTrail.size();
      auto D = node("P-Fun", P, T);
      for (unsigned I = 0; I != AP->arity(); ++I) {
        auto Premise = derive(AP->children()[I], T->child(I), Fuel);
        if (!Premise) {
          unwind(ThetaMark, PhiMark);
          return nullptr;
        }
        D->Premises.push_back(std::move(Premise));
      }
      return D;
    }

    case PatternKind::FunVarApp: {
      const auto *FP = cast<FunVarAppPattern>(P);
      if (FP->arity() != T->arity())
        return nullptr;
      std::optional<term::OpId> Bound = lookupFunVar(FP->funVar());
      size_t ThetaMark = ThetaTrail.size(), PhiMark = PhiTrail.size();
      std::string Note;
      if (Bound) {
        if (*Bound != T->op())
          return nullptr;
        Note = "φ(" + std::string(FP->funVar().str()) + ") ↦ " +
               std::string(Arena.signature().name(T->op()).str());
      } else {
        if (!OpenFunVars.count(FP->funVar()))
          return nullptr;
        OpenPhi.emplace(FP->funVar(), T->op());
        PhiTrail.push_back(FP->funVar());
        Note = "bind " + std::string(FP->funVar().str()) + " ↦ " +
               std::string(Arena.signature().name(T->op()).str());
      }
      auto D = node("P-Fun-Var", P, T, std::move(Note));
      for (unsigned I = 0; I != FP->arity(); ++I) {
        auto Premise = derive(FP->children()[I], T->child(I), Fuel);
        if (!Premise) {
          unwind(ThetaMark, PhiMark);
          return nullptr;
        }
        D->Premises.push_back(std::move(Premise));
      }
      return D;
    }

    case PatternKind::Alt: {
      const auto *AP = cast<AltPattern>(P);
      size_t ThetaMark = ThetaTrail.size(), PhiMark = PhiTrail.size();
      if (auto L = derive(AP->left(), T, Fuel)) {
        auto D = node("P-Alt-1", P, T);
        D->Premises.push_back(std::move(L));
        return D;
      }
      unwind(ThetaMark, PhiMark);
      if (auto R = derive(AP->right(), T, Fuel)) {
        auto D = node("P-Alt-2", P, T);
        D->Premises.push_back(std::move(R));
        return D;
      }
      unwind(ThetaMark, PhiMark);
      return nullptr;
    }

    case PatternKind::Guarded: {
      const auto *GP = cast<GuardedPattern>(P);
      size_t ThetaMark = ThetaTrail.size(), PhiMark = PhiTrail.size();
      auto Sub = derive(GP->sub(), T, Fuel);
      if (!Sub) {
        unwind(ThetaMark, PhiMark);
        return nullptr;
      }
      Env E(*this);
      if (!GP->guard()->evalBool(E).truthy()) {
        unwind(ThetaMark, PhiMark);
        return nullptr;
      }
      auto D = node("P-Guard", P, T,
                    "⟦" + GP->guard()->toString() + "⟧ = True");
      D->Premises.push_back(std::move(Sub));
      return D;
    }

    case PatternKind::Exists: {
      const auto *EP = cast<ExistsPattern>(P);
      Symbol X = EP->var();
      // If the witness already binds x, it is the invented t′; otherwise
      // open x and let the structure bind it.
      bool Opened = !lookupVar(X).has_value() && OpenVars.insert(X).second;
      size_t ThetaMark = ThetaTrail.size(), PhiMark = PhiTrail.size();
      auto Sub = derive(EP->sub(), T, Fuel);
      std::optional<term::TermRef> Witness = lookupVar(X);
      if (Opened)
        OpenVars.erase(X);
      if (!Sub || !Witness) {
        unwind(ThetaMark, PhiMark);
        return nullptr;
      }
      auto D = node("P-Exists", P, T,
                    "t′ = " + Arena.toString(*Witness));
      D->Premises.push_back(std::move(Sub));
      return D;
    }

    case PatternKind::ExistsFun: {
      const auto *EP = cast<ExistsFunPattern>(P);
      Symbol F = EP->funVar();
      bool Opened =
          !lookupFunVar(F).has_value() && OpenFunVars.insert(F).second;
      size_t ThetaMark = ThetaTrail.size(), PhiMark = PhiTrail.size();
      auto Sub = derive(EP->sub(), T, Fuel);
      std::optional<term::OpId> Witness = lookupFunVar(F);
      if (Opened)
        OpenFunVars.erase(F);
      if (!Sub || !Witness) {
        unwind(ThetaMark, PhiMark);
        return nullptr;
      }
      auto D = node("P-Exists-Fun", P, T,
                    "f′ = " + std::string(
                                  Arena.signature().name(*Witness).str()));
      D->Premises.push_back(std::move(Sub));
      return D;
    }

    case PatternKind::MatchConstraint: {
      const auto *MP = cast<MatchConstraintPattern>(P);
      size_t ThetaMark = ThetaTrail.size(), PhiMark = PhiTrail.size();
      auto Sub = derive(MP->sub(), T, Fuel);
      if (!Sub) {
        unwind(ThetaMark, PhiMark);
        return nullptr;
      }
      std::optional<term::TermRef> Bound = lookupVar(MP->var());
      if (!Bound) {
        unwind(ThetaMark, PhiMark);
        return nullptr;
      }
      auto Constr = derive(MP->constraint(), *Bound, Fuel);
      if (!Constr) {
        unwind(ThetaMark, PhiMark);
        return nullptr;
      }
      auto D = node("P-MatchConstr", P, T,
                    "θ(" + std::string(MP->var().str()) + ") ↦ " +
                        Arena.toString(*Bound));
      D->Premises.push_back(std::move(Sub));
      D->Premises.push_back(std::move(Constr));
      return D;
    }

    case PatternKind::Mu: {
      if (Fuel == 0)
        return nullptr;
      const auto *MP = cast<MuPattern>(P);
      const Pattern *Unfolded = Scratch.unfoldMu(MP);
      auto Sub = derive(Unfolded, T, Fuel - 1);
      if (!Sub)
        return nullptr;
      auto D = node("P-Mu", P, T, "unfold one step");
      D->Premises.push_back(std::move(Sub));
      return D;
    }

    case PatternKind::RecCall:
      assert(false && "RecCall outside a mu body");
      return nullptr;
    }
    return nullptr;
  }

  void unwind(size_t ThetaMark, size_t PhiMark) {
    while (ThetaTrail.size() > ThetaMark) {
      OpenTheta.erase(ThetaTrail.back());
      ThetaTrail.pop_back();
    }
    while (PhiTrail.size() > PhiMark) {
      OpenPhi.erase(PhiTrail.back());
      PhiTrail.pop_back();
    }
  }

  std::string toString(term::TermRef T) const { return Arena.toString(T); }
};

void renderInto(const Derivation &D, const term::Signature &Sig,
                const std::string &Prefix, bool Last, std::string &Out,
                bool Root) {
  if (!Root) {
    Out += Prefix;
    Out += Last ? "└─ " : "├─ ";
  }
  Out += D.Rule;
  Out += ": ";
  Out += D.Pat->toString(Sig);
  Out += " ≈ ";
  Out += term::TermArena::toString(D.T, Sig);
  if (!D.Note.empty()) {
    Out += "   [";
    Out += D.Note;
    Out += "]";
  }
  Out += '\n';
  std::string ChildPrefix =
      Root ? Prefix : Prefix + (Last ? "   " : "│  ");
  for (size_t I = 0; I != D.Premises.size(); ++I)
    renderInto(*D.Premises[I], Sig, ChildPrefix,
               I + 1 == D.Premises.size(), Out, false);
}

} // namespace

size_t Derivation::size() const {
  size_t N = 1;
  for (const auto &P : Premises)
    N += P->size();
  return N;
}

std::string Derivation::render(const term::Signature &Sig) const {
  std::string Out;
  renderInto(*this, Sig, "", true, Out, true);
  return Out;
}

std::unique_ptr<Derivation>
pypm::match::deriveMatch(const Pattern *P, term::TermRef T,
                         const Subst &Theta, const FunSubst &Phi,
                         const term::TermArena &Arena, DeriveOptions Opts) {
  Builder B(Theta, Phi, Arena, Opts);
  return B.build(P, T);
}
