//===- match/FastMatcher.cpp - Production backtracking matcher -----------------===//

#include "match/FastMatcher.h"

#include "support/Budget.h"

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;

MachineStatus FastMatcher::match(const Pattern *P, term::TermRef T) {
  // Cells from a previous attempt are unreachable once Cont and Choices
  // reset below; dropping them keeps a reused (batch-mode) matcher's
  // footprint proportional to one attempt, not the whole batch.
  Cells.clear();
  Theta.clear();
  Phi.clear();
  ThetaTrail.clear();
  PhiTrail.clear();
  Choices.clear();
  Stats = MachineStats();
  MuBudget = Opts.MaxMuUnfolds;
  Cont = cons(Action::match(P, T), nullptr);
  Status = MachineStatus::Running;
  return runLoop();
}

MachineStatus FastMatcher::resume() {
  if (Status != MachineStatus::Success)
    return Status;
  Status = MachineStatus::Running;
  if (backtrack() != MachineStatus::Running)
    return Status;
  return runLoop();
}

Witness FastMatcher::witness() const {
  Witness W;
  for (const auto &[K, V] : Theta)
    W.Theta.bind(K, V);
  for (const auto &[K, V] : Phi)
    W.Phi.bind(K, V);
  return W;
}

MachineStatus FastMatcher::backtrack() {
  ++Stats.Backtracks;
  if (Choices.empty()) {
    Status = MachineStatus::Failure;
    return Status;
  }
  ChoicePoint CP = Choices.back();
  Choices.pop_back();
  while (ThetaTrail.size() > CP.ThetaTrailLen) {
    Theta.erase(ThetaTrail.back());
    ThetaTrail.pop_back();
  }
  while (PhiTrail.size() > CP.PhiTrailLen) {
    Phi.erase(PhiTrail.back());
    PhiTrail.pop_back();
  }
  Cont = CP.Cont;
  Status = MachineStatus::Running;
  return Status;
}

bool FastMatcher::bindVar(Symbol X, term::TermRef T) {
  auto [It, Inserted] = Theta.emplace(X, T);
  if (!Inserted)
    return It->second == T; // already bound: equal or conflict
  ThetaTrail.push_back(X);
  ++Stats.VarBinds;
  return true;
}

bool FastMatcher::bindFunVar(Symbol F, term::OpId Op) {
  auto [It, Inserted] = Phi.emplace(F, Op);
  if (!Inserted)
    return It->second == Op;
  PhiTrail.push_back(F);
  return true;
}

MachineStatus FastMatcher::runLoop() {
  // A GuardEnv view over the in-place hash maps.
  struct MapEnv final : public GuardEnv {
    const FastMatcher &M;
    explicit MapEnv(const FastMatcher &M) : M(M) {}
    std::optional<term::TermRef> lookupVar(Symbol Var) const override {
      auto It = M.Theta.find(Var);
      if (It == M.Theta.end())
        return std::nullopt;
      return It->second;
    }
    std::optional<term::OpId> lookupFunVar(Symbol FunVar) const override {
      auto It = M.Phi.find(FunVar);
      if (It == M.Phi.end())
        return std::nullopt;
      return It->second;
    }
    const term::TermArena &arena() const override { return M.Arena; }
  };
  MapEnv Env(*this);

  while (Status == MachineStatus::Running) {
    if (++Stats.Steps > Opts.MaxSteps) {
      Status = MachineStatus::OutOfFuel;
      break;
    }
    if (Opts.EngineBudget && (Stats.Steps & 1023u) == 0 &&
        Opts.EngineBudget->interrupted()) {
      Status = MachineStatus::OutOfFuel;
      break;
    }
    if (!Cont) {
      Status = MachineStatus::Success;
      break;
    }
    const Action &A = Cont->A;
    const Cell *Rest = Cont->Next;
    switch (A.Kind) {
    case ActionKind::Match: {
      Cont = Rest;
      MachineStatus S = stepMatch(A.Pat, A.T);
      if (S != MachineStatus::Running)
        Status = S;
      break;
    }
    case ActionKind::Guard: {
      ++Stats.GuardEvals;
      GuardEval E = A.Guard->evalBool(Env);
      if (!E.ok())
        ++Stats.GuardStuck;
      if (E.truthy())
        Cont = Rest;
      else
        backtrack();
      break;
    }
    case ActionKind::CheckName:
      if (Theta.count(A.Var))
        Cont = Rest;
      else
        backtrack();
      break;
    case ActionKind::CheckFunName:
      if (Phi.count(A.Var))
        Cont = Rest;
      else
        backtrack();
      break;
    case ActionKind::MatchConstr: {
      auto It = Theta.find(A.Var);
      if (It == Theta.end()) {
        backtrack();
        break;
      }
      Cont = cons(Action::match(A.Pat, It->second), Rest);
      break;
    }
    }
  }
  return Status;
}

MachineStatus FastMatcher::stepMatch(const Pattern *P, term::TermRef T) {
  switch (P->kind()) {
  case PatternKind::Var:
    if (bindVar(cast<VarPattern>(P)->name(), T))
      return MachineStatus::Running;
    return backtrack();

  case PatternKind::App: {
    const auto *AP = cast<AppPattern>(P);
    if (AP->op() != T->op())
      return backtrack();
    for (unsigned I = AP->arity(); I-- > 0;)
      Cont = cons(Action::match(AP->children()[I], T->child(I)), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::FunVarApp: {
    const auto *FP = cast<FunVarAppPattern>(P);
    if (FP->arity() != T->arity())
      return backtrack();
    if (!bindFunVar(FP->funVar(), T->op()))
      return backtrack();
    for (unsigned I = FP->arity(); I-- > 0;)
      Cont = cons(Action::match(FP->children()[I], T->child(I)), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    // O(1) choice point: the alternative continuation shares the current
    // list; θ/φ restoration is the trail marks.
    Choices.push_back(ChoicePoint{
        cons(Action::match(AP->right(), T), Cont), ThetaTrail.size(),
        PhiTrail.size()});
    Stats.MaxStackDepth = std::max(Stats.MaxStackDepth, Choices.size());
    Cont = cons(Action::match(AP->left(), T), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::Guarded: {
    const auto *GP = cast<GuardedPattern>(P);
    Cont = cons(Action::match(GP->sub(), T),
                cons(Action::guard(GP->guard()), Cont));
    return MachineStatus::Running;
  }

  case PatternKind::Exists: {
    const auto *EP = cast<ExistsPattern>(P);
    Cont = cons(Action::match(EP->sub(), T),
                cons(Action::checkName(EP->var()), Cont));
    return MachineStatus::Running;
  }

  case PatternKind::ExistsFun: {
    const auto *EP = cast<ExistsFunPattern>(P);
    Cont = cons(Action::match(EP->sub(), T),
                cons(Action::checkFunName(EP->funVar()), Cont));
    return MachineStatus::Running;
  }

  case PatternKind::MatchConstraint: {
    const auto *MP = cast<MatchConstraintPattern>(P);
    Cont = cons(Action::match(MP->sub(), T),
                cons(Action::matchConstr(MP->constraint(), MP->var()),
                     Cont));
    return MachineStatus::Running;
  }

  case PatternKind::Mu: {
    if (MuBudget == 0) {
      Status = MachineStatus::OutOfFuel;
      return Status;
    }
    --MuBudget;
    ++Stats.MuUnfolds;
    const Pattern *&Slot = UnfoldMemo[P];
    if (!Slot)
      Slot = Scratch.unfoldMu(cast<MuPattern>(P));
    Cont = cons(Action::match(Slot, T), Cont);
    return MachineStatus::Running;
  }

  case PatternKind::RecCall:
    assert(false && "RecCall reached the matcher (ill-formed pattern)");
    return backtrack();
  }
  assert(false && "unknown pattern kind");
  return MachineStatus::Failure;
}

MatchResult FastMatcher::matchOne(const Pattern *P, term::TermRef T) {
  MachineStatus S = match(P, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = witness();
  R.Stats = stats();
  return R;
}

MatchResult FastMatcher::run(const Pattern *P, term::TermRef T,
                             const term::TermArena &Arena,
                             Machine::Options Opts) {
  FastMatcher M(Arena, Opts);
  MachineStatus S = M.match(P, T);
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = M.witness();
  R.Stats = M.stats();
  return R;
}
