//===- match/FastMatcher.h - Production backtracking matcher ----*- C++ -*-===//
///
/// \file
/// The paper's story runs from a "large and unwieldy" production C++
/// matcher *down* to the idealized machine of Figs. 17–18; this library
/// runs it back up: FastMatcher is an optimized engine proven equivalent
/// to the reference Machine by differential testing
/// (tests/test_fastmatcher.cpp) and used by the rewrite engine by default.
///
/// Where the reference machine snapshots the whole substitution and
/// continuation at every choice point (a faithful rendering of
/// ST-Match-Alt's (θ, φ, k) :: stk), FastMatcher makes choice points O(1):
///
///  - the continuation is a *persistent* cons-list; saving it is copying
///    one pointer, and popped prefixes stay reachable from saved choice
///    points;
///  - θ and φ are hash maps plus an undo *trail*; a choice point records
///    the trail depths, and backtracking unbinds in LIFO order;
///  - μ-unfold results are memoized per (μ-node) *only* for the
///    first unfolding of each distinct node — repeated retries of the same
///    choice reuse the clone instead of re-freshening.
///
/// The search order is bit-for-bit the reference machine's: same
/// left-eager alternate order, same action sequence, so the first witness
/// (and the whole resume() stream) agrees with the idealized semantics —
/// and therefore, by Theorem 2, with the declarative relation.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MATCH_FASTMATCHER_H
#define PYPM_MATCH_FASTMATCHER_H

#include "match/Machine.h"

#include <deque>
#include <unordered_map>

namespace pypm::match {

/// Optimized matcher with the same observable behavior as Machine.
class FastMatcher {
public:
  explicit FastMatcher(const term::TermArena &Arena)
      : FastMatcher(Arena, Machine::Options()) {}
  FastMatcher(const term::TermArena &Arena, Machine::Options Opts)
      : Arena(Arena), Opts(Opts) {}

  /// Matches \p P against \p T from the empty substitution; returns the
  /// terminal status.
  MachineStatus match(const pattern::Pattern *P, term::TermRef T);

  /// Continues the search past the previous success (the resume() of the
  /// reference machine).
  MachineStatus resume();

  /// Batch-parity mode: one attempt on a *reused* matcher instance, as
  /// run() but without constructing a fresh one. Mirrors
  /// plan::Interpreter::matchOne so batched engine runs stay three-way
  /// differential-testable across matcher kinds. Per-attempt state resets;
  /// the persistent Scratch arena and first-unfold μ memo change no
  /// counter, status, or visible binding — a memo hit still pays its
  /// unfold step — so results are bit-identical to a fresh run()'s.
  MatchResult matchOne(const pattern::Pattern *P, term::TermRef T);

  MachineStatus status() const { return Status; }
  /// The current witness, materialized as value-semantic substitutions.
  Witness witness() const;
  const MachineStats &stats() const { return Stats; }

  /// One-call convenience mirroring matchPattern().
  static MatchResult run(const pattern::Pattern *P, term::TermRef T,
                         const term::TermArena &Arena,
                         Machine::Options Opts = Machine::Options());

private:
  /// Persistent continuation cell. Cells are arena-allocated and never
  /// mutated, so saving a continuation is saving one pointer.
  struct Cell {
    Action A;
    const Cell *Next;
  };

  struct ChoicePoint {
    const Cell *Cont;      ///< continuation to resume with
    size_t ThetaTrailLen;  ///< unbind θ down to this depth
    size_t PhiTrailLen;    ///< unbind φ down to this depth
  };

  const Cell *cons(Action A, const Cell *Next) {
    Cells.push_back(Cell{std::move(A), Next});
    return &Cells.back();
  }

  MachineStatus runLoop();
  MachineStatus backtrack();
  bool bindVar(Symbol X, term::TermRef T);
  bool bindFunVar(Symbol F, term::OpId Op);
  MachineStatus stepMatch(const pattern::Pattern *P, term::TermRef T);

  const term::TermArena &Arena;
  Machine::Options Opts;

  pattern::PatternArena Scratch;
  std::deque<Cell> Cells;

  // In-place substitutions with undo trails.
  std::unordered_map<Symbol, term::TermRef> Theta;
  std::unordered_map<Symbol, term::OpId> Phi;
  std::vector<Symbol> ThetaTrail;
  std::vector<Symbol> PhiTrail;

  std::vector<ChoicePoint> Choices;
  const Cell *Cont = nullptr;
  uint64_t MuBudget = 0;
  MachineStatus Status = MachineStatus::Failure;
  MachineStats Stats;

  // First-unfold memo: retrying the same μ node along a different branch
  // reuses the clone (freshened names are reused too, which is safe: the
  // trail unbinds them on backtrack, exactly as the reference machine's
  // snapshot restore forgets them).
  std::unordered_map<const pattern::Pattern *, const pattern::Pattern *>
      UnfoldMemo;
};

} // namespace pypm::match

#endif // PYPM_MATCH_FASTMATCHER_H
