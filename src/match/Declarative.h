//===- match/Declarative.h - Declarative semantics ---------------*- C++ -*-===//
///
/// \file
/// The declarative semantics of CorePyPM (paper Fig. 16): the inductive
/// relation  p @ ⟨θ, φ⟩ ≈ t , realized two ways:
///
///  1. checkDerivable — a *derivation checker*: given a candidate witness
///     ⟨θ, φ⟩ (e.g. one produced by the algorithmic machine), decide whether
///     the judgment is derivable. The ∃ rule uses θ(x) as its invented term
///     t′ — sound because the machine's final substitution contains every
///     existential binding (checkName), and complete for μ-free patterns by
///     Theorem 1 (weakening). For patterns containing μ the checker's
///     freshened unfold names cannot align with a foreign witness's names;
///     use the enumerator and compare restricted to the pattern parameters.
///
///  2. enumerateWitnesses — a *bounded-complete witness search*: computes
///     every ⟨θ, φ⟩ with p @ ⟨θ, φ⟩ ≈ t derivable within a μ-unfold budget.
///     All bindings in any derivation map variables to subterms of t (the
///     only binding rule is P-Var against a concrete subterm), so the
///     search space is finite for μ-free patterns and finite-per-budget in
///     general. The result records whether the budget was hit, letting
///     property tests discard undecided instances instead of mislabeling
///     them.
///
/// Together these are the executable counterpart of the paper's Coq
/// specification; tests/test_differential.cpp checks the machine against
/// them (Theorem 2) and checks weakening (Theorem 1).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MATCH_DECLARATIVE_H
#define PYPM_MATCH_DECLARATIVE_H

#include "match/Subst.h"
#include "pattern/Pattern.h"

#include <vector>

namespace pypm::match {

struct DeclOptions {
  /// μ-unfold budget per derivation branch.
  unsigned MuFuel = 64;
  /// Cap on the number of witnesses the enumerator returns.
  size_t MaxWitnesses = 100'000;
};

/// Is  p @ ⟨θ, φ⟩ ≈ t  derivable? See the file comment for the μ caveat.
bool checkDerivable(const pattern::Pattern *P, term::TermRef T,
                    const Subst &Theta, const FunSubst &Phi,
                    const term::TermArena &Arena, DeclOptions Opts = {});

struct EnumResult {
  std::vector<Witness> Witnesses;
  /// True if a μ-unfold budget or the witness cap was hit somewhere: the
  /// witness list is then a (still-sound) under-approximation.
  bool Incomplete = false;
};

/// All witnesses deriving  p @ ⟨θ, φ⟩ ≈ t  that extend the given seeds.
EnumResult enumerateWitnesses(const pattern::Pattern *P, term::TermRef T,
                              const term::TermArena &Arena,
                              DeclOptions Opts = {}, Subst SeedTheta = {},
                              FunSubst SeedPhi = {});

} // namespace pypm::match

#endif // PYPM_MATCH_DECLARATIVE_H
