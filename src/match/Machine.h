//===- match/Machine.h - Algorithmic semantics (backtracking VM) -*- C++ -*-===//
///
/// \file
/// The algorithmic semantics of CorePyPM (paper §3.1.2 and Figs. 17–18),
/// implemented literally as a small-step state transition system:
///
///   a   ::= match(p, t) | guard(g) | checkName(x) | matchConstr(p, x)
///   k   ::= [] | a :: k
///   stk ::= [] | (θ, φ, k) :: stk
///   st  ::= success(θ, φ) | failure | running(θ, φ, stk, k)
///
/// The machine is the idealized version of DLCB's C++ pattern interpreter:
/// it maintains a continuation of pending actions and a stack of saved
/// choice points, pushing a backtrack node at every pattern alternate
/// (ST-Match-Alt) and restoring the most recent one whenever a conflict is
/// hit. A single-step API is exposed so tests and the vm_trace example can
/// observe individual transitions; run() drives to a terminal state.
///
/// Two deliberate completions of the paper's rule set (which leaves these
/// states stuck):
///  - checkName(x) with x unbound, and matchConstr(p, x) with x unbound,
///    backtrack (the path cannot be completed to a success);
///  - μ-unfolding consumes *fuel*; exhausting it terminates in the distinct
///    OutOfFuel state rather than looping forever on patterns like
///    μP(x).P(x) (§3.5 notes the possibility of nontermination).
///
/// After success(θ, φ), resume() pops the backtrack stack and continues the
/// search, enumerating further solutions in the machine's deterministic,
/// left-eager order — the mechanism behind the paper's observation that the
/// algorithm is sound but not complete w.r.t. the declarative semantics.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MATCH_MACHINE_H
#define PYPM_MATCH_MACHINE_H

#include "match/Subst.h"
#include "pattern/Pattern.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace pypm {
class Budget;
} // namespace pypm

namespace pypm::match {

enum class ActionKind : uint8_t { Match, Guard, CheckName, CheckFunName, MatchConstr };

/// One continuation entry. A small tagged struct rather than a variant so
/// the continuation is a flat, cheaply-copied vector.
struct Action {
  ActionKind Kind = ActionKind::Match;
  const pattern::Pattern *Pat = nullptr; ///< Match: p; MatchConstr: p'
  term::TermRef T = nullptr;             ///< Match: t
  const pattern::GuardExpr *Guard = nullptr; ///< Guard: g
  Symbol Var;                                ///< CheckName / MatchConstr: x

  static Action match(const pattern::Pattern *P, term::TermRef T) {
    Action A;
    A.Kind = ActionKind::Match;
    A.Pat = P;
    A.T = T;
    return A;
  }
  static Action guard(const pattern::GuardExpr *G) {
    Action A;
    A.Kind = ActionKind::Guard;
    A.Guard = G;
    return A;
  }
  static Action checkName(Symbol X) {
    Action A;
    A.Kind = ActionKind::CheckName;
    A.Var = X;
    return A;
  }
  static Action checkFunName(Symbol F) {
    Action A;
    A.Kind = ActionKind::CheckFunName;
    A.Var = F;
    return A;
  }
  static Action matchConstr(const pattern::Pattern *P, Symbol X) {
    Action A;
    A.Kind = ActionKind::MatchConstr;
    A.Pat = P;
    A.Var = X;
    return A;
  }

  std::string toString(const term::Signature &Sig) const;
};

enum class MachineStatus : uint8_t {
  Running,
  Success,
  Failure,
  /// The μ-unfold or step budget was exhausted; the match is undecided.
  OutOfFuel,
};

/// Counters exposed for the compile-time-cost experiments (Figs. 12–13)
/// and the matcher micro-benchmarks.
struct MachineStats {
  uint64_t Steps = 0;
  uint64_t Backtracks = 0;
  uint64_t MuUnfolds = 0;
  uint64_t VarBinds = 0;
  uint64_t GuardEvals = 0;
  uint64_t GuardStuck = 0;
  size_t MaxStackDepth = 0;
  size_t MaxContDepth = 0;

  /// Aggregates \p O into this. Counters add, depth high-water marks take
  /// the max; both are associative and commutative, so per-worker stats
  /// from the parallel rewrite engine merge to the same totals in any
  /// order.
  void merge(const MachineStats &O) {
    Steps += O.Steps;
    Backtracks += O.Backtracks;
    MuUnfolds += O.MuUnfolds;
    VarBinds += O.VarBinds;
    GuardEvals += O.GuardEvals;
    GuardStuck += O.GuardStuck;
    MaxStackDepth = std::max(MaxStackDepth, O.MaxStackDepth);
    MaxContDepth = std::max(MaxContDepth, O.MaxContDepth);
  }

  bool operator==(const MachineStats &) const = default;
};

/// The backtracking pattern-matching machine.
class Machine {
public:
  struct Options {
    /// Total small-step budget (safety net; generous by default).
    uint64_t MaxSteps = 10'000'000;
    /// μ-unfold budget; recursion deeper than this is OutOfFuel.
    uint64_t MaxMuUnfolds = 4'096;
    /// Optional engine-level budget. Polled for deadline/cancellation every
    /// 1024 steps (Budget::interrupted — safe from any thread); an
    /// interrupted run terminates in OutOfFuel like any exhausted fuel.
    /// The budget's step/μ ceilings are deliberately NOT enforced here:
    /// the engine charges them in committed order for determinism.
    const pypm::Budget *EngineBudget = nullptr;
  };

  explicit Machine(const term::TermArena &Arena) : Machine(Arena, Options()) {}
  Machine(const term::TermArena &Arena, Options Opts)
      : Arena(Arena), Opts(Opts) {}

  /// Resets the machine to running(∅, ∅, [], [match(p, t)]).
  void start(const pattern::Pattern *P, term::TermRef T);

  /// Performs one transition; returns the resulting status.
  MachineStatus step();

  /// Steps until a terminal state (or the step budget runs out).
  MachineStatus run();

  /// From Success: backtracks into the most recent choice point and keeps
  /// searching; returns the status of the continued search. From Failure /
  /// OutOfFuel: returns that status unchanged.
  MachineStatus resume();

  MachineStatus status() const { return Status; }
  const Subst &theta() const { return Theta; }
  const FunSubst &phi() const { return Phi; }
  const MachineStats &stats() const { return Stats; }

  /// Human-readable snapshot of the current state, in the paper's notation;
  /// drives the vm_trace example.
  std::string describeState(const term::Signature &Sig) const;

private:
  struct Frame {
    Subst Theta;
    FunSubst Phi;
    std::vector<Action> Cont;
  };

  MachineStatus backtrack();
  MachineStatus stepMatch(const Action &A);
  void pushAction(Action A) {
    Cont.push_back(std::move(A));
    Stats.MaxContDepth = std::max(Stats.MaxContDepth, Cont.size());
  }

  const term::TermArena &Arena;
  Options Opts;
  // Scratch arena for μ-unfold clones; owned by the machine so unfolded
  // pattern nodes live as long as the actions that reference them.
  pattern::PatternArena Scratch;

  MachineStatus Status = MachineStatus::Failure;
  Subst Theta;
  FunSubst Phi;
  std::vector<Frame> Stack;
  // Continuation with its head at the *back* (push/pop at the end).
  std::vector<Action> Cont;
  uint64_t MuBudget = 0;
  MachineStats Stats;
};

/// One-call convenience: matches \p P against \p T and returns the first
/// witness if any.
struct MatchResult {
  MachineStatus Status;
  Witness W;
  MachineStats Stats;

  bool matched() const { return Status == MachineStatus::Success; }
};
MatchResult matchPattern(const pattern::Pattern *P, term::TermRef T,
                         const term::TermArena &Arena,
                         Machine::Options Opts = {});

/// Enumerates every solution the machine finds (in its deterministic
/// order), up to \p Limit.
std::vector<Witness> allSolutions(const pattern::Pattern *P, term::TermRef T,
                                  const term::TermArena &Arena,
                                  size_t Limit = 1024,
                                  Machine::Options Opts = {});

} // namespace pypm::match

#endif // PYPM_MATCH_MACHINE_H
