//===- match/Derivation.h - Match derivation (proof) trees ------*- C++ -*-===//
///
/// \file
/// The paper reads the declarative semantics as "a proof system for
/// pattern matching: given a witness, verify that the formula is
/// satisfied" (§3). This module makes the proof itself a value: given a
/// pattern, a term, and a witness ⟨θ, φ⟩ (e.g. from the machine), build
/// the derivation tree of  p @ ⟨θ, φ⟩ ≈ t  under the rules of Fig. 16 —
/// each node labeled with the rule that concluded it (P-Var, P-Fun,
/// P-Alt-1/2, P-Guard, P-Exists, P-MatchConstr, P-Fun-Var, P-Mu).
///
/// Existential variables the witness does not bind are searched for (the
/// ∃ rule's invented t′), so derivations also exist for μ-patterns whose
/// unfold freshening produced binder names the caller's witness cannot
/// name. Used by `pypmc match --explain` and as an oracle in tests: a
/// derivation exists iff checkDerivable holds.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MATCH_DERIVATION_H
#define PYPM_MATCH_DERIVATION_H

#include "match/Subst.h"
#include "pattern/Pattern.h"

#include <memory>
#include <string>
#include <vector>

namespace pypm::match {

struct Derivation {
  /// The Fig. 16 rule concluding this judgment ("P-Fun", "P-Alt-1", …).
  std::string Rule;
  const pattern::Pattern *Pat = nullptr;
  term::TermRef T = nullptr;
  /// Extra info for leaves: the binding a P-Var used, the guard a P-Guard
  /// checked, the witness t′ a P-Exists invented.
  std::string Note;
  std::vector<std::unique_ptr<Derivation>> Premises;

  /// Number of judgments in the tree.
  size_t size() const;

  /// Pretty tree rendering in the paper's `p @ θ ≈ t` notation.
  std::string render(const term::Signature &Sig) const;
};

struct DeriveOptions {
  unsigned MuFuel = 64;
};

/// Builds the derivation of  p @ ⟨θ, φ⟩ ≈ t , or nullptr if none exists.
/// ∃-bound variables may extend the witness (searched over subterms the
/// structure dictates); all other variables must be bound by ⟨θ, φ⟩
/// exactly as P-Var/P-Fun-Var demand.
std::unique_ptr<Derivation>
deriveMatch(const pattern::Pattern *P, term::TermRef T, const Subst &Theta,
            const FunSubst &Phi, const term::TermArena &Arena,
            DeriveOptions Opts = {});

} // namespace pypm::match

#endif // PYPM_MATCH_DERIVATION_H
