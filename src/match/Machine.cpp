//===- match/Machine.cpp - Algorithmic semantics (backtracking VM) ---------===//

#include "match/Machine.h"

#include "support/Budget.h"

using namespace pypm;
using namespace pypm::match;
using namespace pypm::pattern;

std::string Action::toString(const term::Signature &Sig) const {
  switch (Kind) {
  case ActionKind::Match:
    return "match(" + Pat->toString(Sig) + ", " +
           term::TermArena::toString(T, Sig) + ")";
  case ActionKind::Guard:
    return "guard(" + Guard->toString() + ")";
  case ActionKind::CheckName:
    return "checkName(" + std::string(Var.str()) + ")";
  case ActionKind::CheckFunName:
    return "checkFunName(" + std::string(Var.str()) + ")";
  case ActionKind::MatchConstr:
    return "matchConstr(" + Pat->toString(Sig) + ", " +
           std::string(Var.str()) + ")";
  }
  return "<action?>";
}

void Machine::start(const pattern::Pattern *P, term::TermRef T) {
  Theta = Subst();
  Phi = FunSubst();
  Stack.clear();
  Cont.clear();
  Stats = MachineStats();
  MuBudget = Opts.MaxMuUnfolds;
  Status = MachineStatus::Running;
  pushAction(Action::match(P, T));
}

/// backtrack([]) = failure; backtrack((θ,φ,k)::stk) = running(θ,φ,stk,k).
MachineStatus Machine::backtrack() {
  ++Stats.Backtracks;
  if (Stack.empty()) {
    Status = MachineStatus::Failure;
    return Status;
  }
  Frame F = std::move(Stack.back());
  Stack.pop_back();
  Theta = std::move(F.Theta);
  Phi = std::move(F.Phi);
  Cont = std::move(F.Cont);
  Status = MachineStatus::Running;
  return Status;
}

MachineStatus Machine::step() {
  if (Status != MachineStatus::Running)
    return Status;
  if (++Stats.Steps > Opts.MaxSteps) {
    Status = MachineStatus::OutOfFuel;
    return Status;
  }
  if (Opts.EngineBudget && (Stats.Steps & 1023u) == 0 &&
      Opts.EngineBudget->interrupted()) {
    Status = MachineStatus::OutOfFuel;
    return Status;
  }

  // ST-Success: running(θ, φ, stk, []) ↦ success(θ, φ).
  if (Cont.empty()) {
    Status = MachineStatus::Success;
    return Status;
  }

  Action A = std::move(Cont.back());
  Cont.pop_back();

  switch (A.Kind) {
  case ActionKind::Match:
    return stepMatch(A);

  case ActionKind::Guard: {
    // ST-CheckGuard-Continue / ST-CheckGuard-Backtrack. A guard that is
    // stuck (unbound variable, unknown attribute) cannot evaluate to True,
    // so it backtracks like a False guard; the GuardStuck counter surfaces
    // it for diagnostics.
    ++Stats.GuardEvals;
    SubstEnv Env(Theta, Phi, Arena);
    GuardEval E = A.Guard->evalBool(Env);
    if (!E.ok())
      ++Stats.GuardStuck;
    if (E.truthy())
      return Status;
    return backtrack();
  }

  case ActionKind::CheckName:
    // ST-CheckName: θ(x) must be bound. An unbound x means some ∃-variable
    // was never matched against a subterm; no completion of this path can
    // bind it, so backtrack.
    if (Theta.contains(A.Var))
      return Status;
    return backtrack();

  case ActionKind::CheckFunName:
    // The φ analogue of ST-CheckName, for ∃F (local operator variables).
    if (Phi.contains(A.Var))
      return Status;
    return backtrack();

  case ActionKind::MatchConstr: {
    // ST-MatchConstr: θ(x) ↦ t, then match(p, t).
    std::optional<term::TermRef> T = Theta.lookup(A.Var);
    if (!T)
      return backtrack();
    pushAction(Action::match(A.Pat, *T));
    return Status;
  }
  }
  assert(false && "unknown action kind");
  return Status;
}

MachineStatus Machine::stepMatch(const Action &A) {
  const Pattern *P = A.Pat;
  term::TermRef T = A.T;

  switch (P->kind()) {
  case PatternKind::Var: {
    const auto *VP = cast<VarPattern>(P);
    std::optional<term::TermRef> Bound = Theta.lookup(VP->name());
    if (!Bound) {
      // ST-Match-Var-Bind.
      Theta.bind(VP->name(), T);
      ++Stats.VarBinds;
      return Status;
    }
    if (*Bound == T) // hash-consing: structural equality is pointer equality
      return Status; // ST-Match-Var-Bound
    return backtrack(); // ST-Match-Var-Conflict
  }

  case PatternKind::App: {
    const auto *AP = cast<AppPattern>(P);
    // ST-Match-Fun-Conflict: f ≠ g ∨ m ≠ n. (Equal ops imply equal arity.)
    if (AP->op() != T->op())
      return backtrack();
    assert(AP->arity() == T->arity() && "signature arity invariant violated");
    // ST-Match-Fun: prepend match(p_i, t_i); the continuation's head is at
    // the vector's back, so push in reverse to execute left-to-right.
    for (unsigned I = AP->arity(); I-- > 0;)
      pushAction(Action::match(AP->children()[I], T->child(I)));
    return Status;
  }

  case PatternKind::FunVarApp: {
    const auto *FP = cast<FunVarAppPattern>(P);
    if (FP->arity() != T->arity())
      return backtrack(); // ST-Match-Fun-Var-Conflict (m ≠ n)
    std::optional<term::OpId> Bound = Phi.lookup(FP->funVar());
    if (Bound && *Bound != T->op())
      return backtrack(); // ST-Match-Fun-Var-Conflict (φ(F) ↦ g, f ≠ g)
    if (!Bound)
      Phi.bind(FP->funVar(), T->op()); // ST-Match-Fun-Var-Bind
    for (unsigned I = FP->arity(); I-- > 0;)
      pushAction(Action::match(FP->children()[I], T->child(I)));
    return Status;
  }

  case PatternKind::Alt: {
    // ST-Match-Alt: push (θ, φ, match(p', t) :: k); continue with p.
    const auto *AP = cast<AltPattern>(P);
    Frame F;
    F.Theta = Theta;
    F.Phi = Phi;
    F.Cont = Cont;
    F.Cont.push_back(Action::match(AP->right(), T));
    Stack.push_back(std::move(F));
    Stats.MaxStackDepth = std::max(Stats.MaxStackDepth, Stack.size());
    pushAction(Action::match(AP->left(), T));
    return Status;
  }

  case PatternKind::Guarded: {
    // ST-Match-Guard: match(p, t) :: guard(g) :: k.
    const auto *GP = cast<GuardedPattern>(P);
    pushAction(Action::guard(GP->guard()));
    pushAction(Action::match(GP->sub(), T));
    return Status;
  }

  case PatternKind::Exists: {
    // ST-Match-Name: match(p, t) :: checkName(x) :: k.
    const auto *EP = cast<ExistsPattern>(P);
    pushAction(Action::checkName(EP->var()));
    pushAction(Action::match(EP->sub(), T));
    return Status;
  }

  case PatternKind::ExistsFun: {
    // ∃F analogue of ST-Match-Name.
    const auto *EP = cast<ExistsFunPattern>(P);
    pushAction(Action::checkFunName(EP->funVar()));
    pushAction(Action::match(EP->sub(), T));
    return Status;
  }

  case PatternKind::MatchConstraint: {
    // ST-Match-Match-Constr: match(p, t) :: matchConstr(p', x) :: k.
    const auto *MP = cast<MatchConstraintPattern>(P);
    pushAction(Action::matchConstr(MP->constraint(), MP->var()));
    pushAction(Action::match(MP->sub(), T));
    return Status;
  }

  case PatternKind::Mu: {
    // ST-Match-Mu: unfold one step (with freshened binders) and retry.
    const auto *MP = cast<MuPattern>(P);
    if (MuBudget == 0) {
      Status = MachineStatus::OutOfFuel;
      return Status;
    }
    --MuBudget;
    ++Stats.MuUnfolds;
    const Pattern *Unfolded = Scratch.unfoldMu(MP);
    pushAction(Action::match(Unfolded, T));
    return Status;
  }

  case PatternKind::RecCall:
    // A bare recursive call only appears inside a μ body; unfolding always
    // rewraps it before it can reach the continuation.
    assert(false && "RecCall reached the machine (ill-formed pattern)");
    return backtrack();
  }
  assert(false && "unknown pattern kind");
  return Status;
}

MachineStatus Machine::run() {
  while (Status == MachineStatus::Running)
    step();
  return Status;
}

MachineStatus Machine::resume() {
  if (Status != MachineStatus::Success)
    return Status;
  backtrack();
  return run();
}

std::string Machine::describeState(const term::Signature &Sig) const {
  std::string Out;
  switch (Status) {
  case MachineStatus::Success:
    Out += "success";
    break;
  case MachineStatus::Failure:
    return "failure";
  case MachineStatus::OutOfFuel:
    return "out-of-fuel";
  case MachineStatus::Running:
    Out += "running";
    break;
  }
  Witness W{Theta, Phi};
  Out += toString(W, Sig);
  if (Status == MachineStatus::Running) {
    Out += " cont=[";
    for (size_t I = Cont.size(); I-- > 0;) {
      Out += Cont[I].toString(Sig);
      if (I != 0)
        Out += ", ";
    }
    Out += "] |stk|=" + std::to_string(Stack.size());
  }
  return Out;
}

MatchResult pypm::match::matchPattern(const pattern::Pattern *P,
                                      term::TermRef T,
                                      const term::TermArena &Arena,
                                      Machine::Options Opts) {
  Machine M(Arena, Opts);
  M.start(P, T);
  MachineStatus S = M.run();
  MatchResult R;
  R.Status = S;
  if (S == MachineStatus::Success)
    R.W = Witness{M.theta(), M.phi()};
  R.Stats = M.stats();
  return R;
}

std::vector<Witness> pypm::match::allSolutions(const pattern::Pattern *P,
                                               term::TermRef T,
                                               const term::TermArena &Arena,
                                               size_t Limit,
                                               Machine::Options Opts) {
  std::vector<Witness> Out;
  Machine M(Arena, Opts);
  M.start(P, T);
  MachineStatus S = M.run();
  while (S == MachineStatus::Success && Out.size() < Limit) {
    Out.push_back(Witness{M.theta(), M.phi()});
    S = M.resume();
  }
  return Out;
}
