//===- match/Subst.h - Substitutions θ and φ --------------------*- C++ -*-===//
///
/// \file
/// The two substitution components of a CorePyPM match witness (§3.4):
/// θ maps pattern variables to terms; φ maps function variables to operator
/// symbols. Both are small sorted-vector maps: matches bind few variables,
/// and the algorithmic machine snapshots substitutions onto its backtrack
/// stack, so cheap copies matter more than asymptotics.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_MATCH_SUBST_H
#define PYPM_MATCH_SUBST_H

#include "pattern/Guard.h"
#include "term/Term.h"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

namespace pypm::match {

/// Sorted-vector map Symbol → V with value semantics.
template <typename V> class SymbolMap {
public:
  std::optional<V> lookup(Symbol Key) const {
    auto It = find(Key);
    if (It == Entries.end() || It->first != Key)
      return std::nullopt;
    return It->second;
  }

  bool contains(Symbol Key) const { return lookup(Key).has_value(); }

  /// Inserts a new binding. Asserts the key is unbound (the machine's
  /// ST-Match-Var-Bind rule only fires when ¬∃t'. θ(x)↦t').
  void bind(Symbol Key, V Value) {
    auto It = find(Key);
    assert((It == Entries.end() || It->first != Key) &&
           "bind() on an already-bound variable");
    Entries.insert(It, {Key, Value});
  }

  /// Removes a binding if present (used for ∃-scoping in the declarative
  /// enumerator).
  void erase(Symbol Key) {
    auto It = find(Key);
    if (It != Entries.end() && It->first == Key)
      Entries.erase(It);
  }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  /// θ ⊆ Other: every binding of *this appears in Other (Theorem 1's
  /// premise).
  bool subsetOf(const SymbolMap &Other) const {
    for (const auto &[K, Val] : Entries) {
      std::optional<V> O = Other.lookup(K);
      if (!O || !(*O == Val))
        return false;
    }
    return true;
  }

  /// The sub-map containing only the given keys.
  SymbolMap restrictedTo(std::span<const Symbol> Keys) const {
    SymbolMap Out;
    for (Symbol K : Keys)
      if (std::optional<V> Val = lookup(K))
        Out.bind(K, *Val);
    return Out;
  }

  friend bool operator==(const SymbolMap &A, const SymbolMap &B) {
    return A.Entries == B.Entries;
  }

private:
  using Entry = std::pair<Symbol, V>;
  std::vector<Entry> Entries;

  typename std::vector<Entry>::const_iterator find(Symbol Key) const {
    return std::lower_bound(Entries.begin(), Entries.end(), Key,
                            [](const Entry &E, Symbol K) {
                              return E.first.rawId() < K.rawId();
                            });
  }
  typename std::vector<Entry>::iterator find(Symbol Key) {
    return std::lower_bound(Entries.begin(), Entries.end(), Key,
                            [](const Entry &E, Symbol K) {
                              return E.first.rawId() < K.rawId();
                            });
  }
};

using Subst = SymbolMap<term::TermRef>;
using FunSubst = SymbolMap<term::OpId>;

/// A complete match witness ⟨θ, φ⟩.
struct Witness {
  Subst Theta;
  FunSubst Phi;

  friend bool operator==(const Witness &A, const Witness &B) {
    return A.Theta == B.Theta && A.Phi == B.Phi;
  }
};

/// GuardEnv view over a ⟨θ, φ⟩ pair. Borrow-only; keep the substitutions
/// alive while evaluating.
class SubstEnv final : public pattern::GuardEnv {
public:
  SubstEnv(const Subst &Theta, const FunSubst &Phi,
           const term::TermArena &Arena)
      : Theta(Theta), Phi(Phi), Arena(Arena) {}

  std::optional<term::TermRef> lookupVar(Symbol Var) const override {
    return Theta.lookup(Var);
  }
  std::optional<term::OpId> lookupFunVar(Symbol FunVar) const override {
    return Phi.lookup(FunVar);
  }
  const term::TermArena &arena() const override { return Arena; }

private:
  const Subst &Theta;
  const FunSubst &Phi;
  const term::TermArena &Arena;
};

/// Debug rendering "{x ↦ f(c), …} / {F ↦ Relu}".
std::string toString(const Witness &W, const term::Signature &Sig);
std::string toString(const Subst &Theta, const term::Signature &Sig);

} // namespace pypm::match

#endif // PYPM_MATCH_SUBST_H
