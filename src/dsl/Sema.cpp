//===- dsl/Sema.cpp - DSL semantic analysis and lowering --------------------===//

#include "dsl/Sema.h"

#include "pattern/WellFormed.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <unordered_map>
#include <unordered_set>

using namespace pypm;
using namespace pypm::dsl;
using namespace pypm::pattern;

namespace {

/// Depth-first include resolution with include-once semantics. Included
/// modules are parsed, their own includes resolved, and their declarations
/// merged *before* the includer's (so an includer can reference included
/// patterns). The included ModuleAsts are adopted by \p Root so merged AST
/// pointers stay valid.
bool resolveIncludes(ModuleAst &Root, const CompileOptions &Opts,
                     DiagnosticEngine &Diags,
                     std::unordered_set<std::string> &Seen) {
  if (Root.Includes.empty())
    return true;
  std::vector<OpDeclAst> MergedOps;
  std::vector<PatternDefAst> MergedPatterns;
  std::vector<RuleDefAst> MergedRules;
  for (const IncludeAst &Inc : Root.Includes) {
    if (!Seen.insert(Inc.Path).second)
      continue; // include-once
    if (!Opts.Resolver) {
      Diags.error(Inc.Loc, "sema.include", "includes are not available in this context "
                           "(no resolver configured)");
      return false;
    }
    std::optional<std::string> Source = Opts.Resolver(Inc.Path);
    if (!Source) {
      Diags.error(Inc.Loc, "sema", "cannot resolve include \"" + Inc.Path + "\"");
      return false;
    }
    std::unique_ptr<ModuleAst> Sub = parseModule(*Source, Diags);
    if (!Sub) {
      Diags.note(Inc.Loc, "while processing include \"" + Inc.Path + "\"");
      return false;
    }
    if (!resolveIncludes(*Sub, Opts, Diags, Seen))
      return false;
    MergedOps.insert(MergedOps.end(), Sub->Ops.begin(), Sub->Ops.end());
    MergedPatterns.insert(MergedPatterns.end(), Sub->Patterns.begin(),
                          Sub->Patterns.end());
    MergedRules.insert(MergedRules.end(), Sub->Rules.begin(),
                       Sub->Rules.end());
    Root.Included.push_back(std::move(Sub));
  }
  MergedOps.insert(MergedOps.end(), Root.Ops.begin(), Root.Ops.end());
  MergedPatterns.insert(MergedPatterns.end(), Root.Patterns.begin(),
                        Root.Patterns.end());
  MergedRules.insert(MergedRules.end(), Root.Rules.begin(),
                     Root.Rules.end());
  Root.Ops = std::move(MergedOps);
  Root.Patterns = std::move(MergedPatterns);
  Root.Rules = std::move(MergedRules);
  Root.Includes.clear();
  return true;
}

class SemaImpl {
public:
  SemaImpl(const ModuleAst &M, term::Signature &Sig, DiagnosticEngine &Diags)
      : M(M), Sig(Sig), Diags(Diags) {}

  std::unique_ptr<Library> run() {
    Lib = std::make_unique<Library>();
    declareOps();
    groupPatterns();
    for (size_t I = 0; I != Groups.size(); ++I)
      compileGroup(Groups[I]);
    for (const RuleDefAst &R : M.Rules)
      lowerRule(R);
    if (Diags.hasErrors())
      return nullptr;
    if (!checkWellFormed(*Lib, Sig, Diags))
      return nullptr;
    return std::move(Lib);
  }

private:
  const ModuleAst &M;
  term::Signature &Sig;
  DiagnosticEngine &Diags;
  std::unique_ptr<Library> Lib;

  struct Group {
    Symbol Name;
    std::vector<const PatternDefAst *> Defs;
    std::vector<Symbol> Params;
    std::unordered_set<Symbol> FunParams;
    bool SelfRecursive = false;
    bool Compiling = false;
    bool Compiled = false;
    /// Owned compiled result; Result points here (stable across the
    /// Library's own PatternDefs vector growing).
    NamedPattern OwnNP;
    const NamedPattern *Result = nullptr;
  };
  std::vector<Group> Groups;
  std::unordered_map<Symbol, size_t> GroupIndex;

  void error(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
  }
  void error(SourceLoc Loc, std::string Code, std::string Msg) {
    Diags.error(Loc, std::move(Code), std::move(Msg));
  }

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  void declareOps() {
    for (const OpDeclAst &D : M.Ops) {
      term::OpId Existing = Sig.lookup(D.Name);
      if (Existing.isValid()) {
        if (Sig.arity(Existing) != D.Arity)
          error(D.Loc, "sema.operator", "operator '" + std::string(D.Name.str()) +
                           "' already declared with arity " +
                           std::to_string(Sig.arity(Existing)));
        continue;
      }
      Sig.addOp(D.Name.str(), D.Arity, D.Results,
                D.OpClass.isValid() ? D.OpClass.str() : std::string_view(),
                D.AttrNames);
    }
  }

  term::OpId constOp() {
    term::OpId Op = Sig.lookup("Const");
    if (!Op.isValid())
      Op = Sig.addOp("Const", 0, 1, "const",
                     {Symbol::intern("value_u6")});
    return Op;
  }

  void groupPatterns() {
    for (const PatternDefAst &D : M.Patterns) {
      auto It = GroupIndex.find(D.Name);
      if (It == GroupIndex.end()) {
        GroupIndex.emplace(D.Name, Groups.size());
        Groups.push_back(Group());
        Groups.back().Name = D.Name;
        Groups.back().Params = D.Params;
        Groups.back().Defs.push_back(&D);
        if (Sig.lookup(D.Name).isValid())
          error(D.Loc, "sema.pattern", "pattern '" + std::string(D.Name.str()) +
                           "' shadows an operator of the same name");
        continue;
      }
      Group &G = Groups[It->second];
      if (D.Params != G.Params)
        error(D.Loc, "sema.pattern", "alternate of pattern '" + std::string(D.Name.str()) +
                         "' has a different parameter list than the first "
                         "definition");
      G.Defs.push_back(&D);
    }
  }

  //===------------------------------------------------------------------===//
  // Per-definition lowering environment
  //===------------------------------------------------------------------===//

  struct LocalInfo {
    enum class Kind : uint8_t { Param, LocalVar, LocalOpVar, Alias };
    Kind K = Kind::Param;
    unsigned OpVarArity = 0;
    const Expr *AliasExpr = nullptr;
  };

  struct DefEnv {
    Group *G = nullptr;
    std::unordered_map<Symbol, LocalInfo> Locals;

    const LocalInfo *lookup(Symbol S) const {
      auto It = Locals.find(S);
      return It == Locals.end() ? nullptr : &It->second;
    }
    bool isFunVar(Symbol S) const {
      if (G->FunParams.count(S))
        return true;
      const LocalInfo *L = lookup(S);
      return L && L->K == LocalInfo::Kind::LocalOpVar;
    }
    bool isTermVar(Symbol S) const {
      if (G->FunParams.count(S))
        return false;
      const LocalInfo *L = lookup(S);
      if (!L)
        return false;
      return L->K == LocalInfo::Kind::Param ||
             L->K == LocalInfo::Kind::LocalVar;
    }
  };

  const GuardExpr *importGuard(const GuardExpr *G, const DefEnv &Env) {
    return Lib->Arena.importGuard(
        G, [&Env](Symbol S) { return Env.isFunVar(S); });
  }

  //===------------------------------------------------------------------===//
  // Function-variable classification
  //===------------------------------------------------------------------===//

  /// A parameter is a function variable if any alternate applies it like an
  /// operator, or passes it into a function-variable parameter position of
  /// a referenced (or the self) pattern. Iterated to a fixpoint within the
  /// group; referenced groups are compiled first, so their classification
  /// is final.
  void classifyFunParams(Group &G) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const PatternDefAst *D : G.Defs) {
        std::unordered_set<Symbol> LocalOpVars;
        for (const Stmt *S : D->Body)
          if (S->K == Stmt::Kind::OpVarDecl)
            LocalOpVars.insert(S->Name);
        for (const Stmt *S : D->Body)
          Changed |= scanStmtForFunUses(G, *D, S, LocalOpVars);
      }
    }
  }

  bool scanStmtForFunUses(Group &G, const PatternDefAst &D, const Stmt *S,
                          const std::unordered_set<Symbol> &LocalOpVars) {
    bool Changed = false;
    if (S->E)
      Changed |= scanExprForFunUses(G, S->E, LocalOpVars);
    for (const Stmt *Sub : S->Then)
      Changed |= scanStmtForFunUses(G, D, Sub, LocalOpVars);
    for (const Stmt *Sub : S->Else)
      Changed |= scanStmtForFunUses(G, D, Sub, LocalOpVars);
    return Changed;
  }

  bool isParam(const Group &G, Symbol S) {
    for (Symbol P : G.Params)
      if (P == S)
        return true;
    return false;
  }

  bool markFunParam(Group &G, Symbol S) {
    if (!isParam(G, S))
      return false;
    return G.FunParams.insert(S).second;
  }

  bool scanExprForFunUses(Group &G, const Expr *E,
                          const std::unordered_set<Symbol> &LocalOpVars) {
    if (E->K != Expr::Kind::Call)
      return false;
    bool Changed = false;
    Symbol Head = E->Name;
    bool HeadIsOp = Sig.lookup(Head).isValid();
    bool HeadIsPattern = GroupIndex.count(Head) != 0;
    if (!HeadIsOp && !HeadIsPattern && !LocalOpVars.count(Head))
      Changed |= markFunParam(G, Head);
    // Propagate through pattern calls: an argument in a fun-param position
    // must itself be a function variable.
    if (HeadIsPattern) {
      const Group &Target = Groups[GroupIndex.at(Head)];
      const std::unordered_set<Symbol> &TargetFun =
          Target.Name == G.Name ? G.FunParams : Target.FunParams;
      for (size_t I = 0;
           I < E->Args.size() && I < Target.Params.size(); ++I) {
        const Expr *Arg = E->Args[I];
        if (TargetFun.count(Target.Params[I]) && Arg->K == Expr::Kind::Ref)
          Changed |= markFunParam(G, Arg->Name);
      }
    }
    for (const Expr *Arg : E->Args)
      Changed |= scanExprForFunUses(G, Arg, LocalOpVars);
    return Changed;
  }

  //===------------------------------------------------------------------===//
  // Pattern group compilation
  //===------------------------------------------------------------------===//

  const NamedPattern *compileGroup(Group &G) {
    if (G.Compiled)
      return G.Result;
    if (G.Compiling) {
      error(G.Defs.front()->Loc, "sema.recursion",
            "mutual recursion between named patterns is not supported "
            "(pattern '" +
                std::string(G.Name.str()) +
                "' participates in a reference cycle); only direct "
                "self-recursion lowers to a mu pattern");
      G.Compiled = true;
      return nullptr;
    }
    G.Compiling = true;

    // Compile every referenced group first (so classification and inlining
    // see final results); detect self-recursion on the way.
    for (const PatternDefAst *D : G.Defs)
      for (const Stmt *S : D->Body)
        visitRefs(G, S);

    classifyFunParams(G);

    std::vector<const Pattern *> Alts;
    std::vector<SourceLoc> AltLocs;
    for (const PatternDefAst *D : G.Defs)
      if (const Pattern *P = lowerDef(G, *D)) {
        Alts.push_back(P);
        AltLocs.push_back(D->Loc);
      }
    G.Compiling = false;
    G.Compiled = true;
    if (Alts.empty() || Diags.hasErrors())
      return nullptr;

    const Pattern *Combined = Lib->Arena.altList(Alts);
    if (G.SelfRecursive) {
      std::vector<Symbol> Params(G.Params.begin(), G.Params.end());
      Combined = Lib->Arena.mu(G.Name, Params, Params, Combined);
    }

    G.OwnNP.Name = G.Name;
    G.OwnNP.Params = G.Params;
    for (Symbol P : G.Params)
      if (G.FunParams.count(P))
        G.OwnNP.FunParams.push_back(P);
    G.OwnNP.Pat = Combined;
    G.OwnNP.Loc = G.Defs.front()->Loc;
    G.OwnNP.AltLocs = std::move(AltLocs);
    Lib->PatternDefs.push_back(G.OwnNP);
    G.Result = &G.OwnNP;
    return G.Result;
  }

  void visitRefs(Group &G, const Stmt *S) {
    if (S->E)
      visitRefs(G, S->E);
    for (const Stmt *Sub : S->Then)
      visitRefs(G, Sub);
    for (const Stmt *Sub : S->Else)
      visitRefs(G, Sub);
  }

  void visitRefs(Group &G, const Expr *E) {
    if (E->K == Expr::Kind::Call || E->K == Expr::Kind::Ref) {
      auto It = GroupIndex.find(E->Name);
      if (It != GroupIndex.end()) {
        Group &Target = Groups[It->second];
        if (Target.Name == G.Name)
          G.SelfRecursive = true;
        else
          compileGroup(Target);
      }
    }
    for (const Expr *Arg : E->Args)
      visitRefs(G, Arg);
  }

  //===------------------------------------------------------------------===//
  // Body lowering
  //===------------------------------------------------------------------===//

  const Pattern *lowerDef(Group &G, const PatternDefAst &D) {
    DefEnv Env;
    Env.G = &G;
    for (Symbol P : D.Params)
      Env.Locals[P] = LocalInfo{LocalInfo::Kind::Param, 0, nullptr};

    struct Wrapper {
      enum class Kind { Guard, Constraint, Exists, ExistsFun } K;
      const GuardExpr *G = nullptr;
      Symbol Var;
      const Pattern *ConstraintPat = nullptr;
    };
    std::vector<Wrapper> Wrappers;
    const Expr *ReturnExpr = nullptr;

    for (const Stmt *S : D.Body) {
      if (ReturnExpr) {
        error(S->Loc, "sema.body", "statement after 'return' in pattern body");
        break;
      }
      switch (S->K) {
      case Stmt::Kind::Assert:
        Wrappers.push_back(
            {Wrapper::Kind::Guard, importGuard(S->Guard, Env), Symbol(),
             nullptr});
        break;
      case Stmt::Kind::VarDecl:
        if (Env.lookup(S->Name))
          error(S->Loc, "sema.redeclaration", "redeclaration of '" + std::string(S->Name.str()) +
                            "'");
        Env.Locals[S->Name] = LocalInfo{LocalInfo::Kind::LocalVar, 0, nullptr};
        Wrappers.push_back(
            {Wrapper::Kind::Exists, nullptr, S->Name, nullptr});
        break;
      case Stmt::Kind::OpVarDecl:
        if (Env.lookup(S->Name))
          error(S->Loc, "sema.redeclaration", "redeclaration of '" + std::string(S->Name.str()) +
                            "'");
        Env.Locals[S->Name] =
            LocalInfo{LocalInfo::Kind::LocalOpVar, S->Arity, nullptr};
        Wrappers.push_back(
            {Wrapper::Kind::ExistsFun, nullptr, S->Name, nullptr});
        break;
      case Stmt::Kind::Alias:
        if (Env.lookup(S->Name))
          error(S->Loc, "sema.redeclaration", "redeclaration of '" + std::string(S->Name.str()) +
                            "'");
        Env.Locals[S->Name] =
            LocalInfo{LocalInfo::Kind::Alias, 0, S->E};
        break;
      case Stmt::Kind::Constraint: {
        if (!Env.isTermVar(S->Name)) {
          error(S->Loc, "sema.constraint", "match constraint target '" +
                            std::string(S->Name.str()) +
                            "' is not a pattern variable");
          break;
        }
        const Pattern *CP = lowerExpr(G, Env, S->E);
        if (CP)
          Wrappers.push_back(
              {Wrapper::Kind::Constraint, nullptr, S->Name, CP});
        break;
      }
      case Stmt::Kind::Return:
        ReturnExpr = S->E;
        break;
      case Stmt::Kind::If:
        error(S->Loc, "sema.body", "'if' is not allowed in pattern bodies");
        break;
      }
    }

    if (!ReturnExpr) {
      error(D.Loc, "sema", "pattern body must end with 'return'");
      return nullptr;
    }
    const Pattern *P = lowerExpr(G, Env, ReturnExpr);
    if (!P)
      return nullptr;

    // Wrap in reverse statement order so earlier statements end up
    // *outermost*: an ∃ from `v = var()` then encloses every later
    // constraint and guard that uses v (Fig. 4 depends on this — the
    // machine's checkName(v) must run after the match constraint that
    // binds v). Guards are conjunctive, so their relative evaluation
    // order does not change the relation.
    for (size_t I = Wrappers.size(); I-- > 0;) {
      const Wrapper &W = Wrappers[I];
      switch (W.K) {
      case Wrapper::Kind::Guard:
        P = Lib->Arena.guarded(P, W.G);
        break;
      case Wrapper::Kind::Constraint:
        P = Lib->Arena.matchConstraint(P, W.ConstraintPat, W.Var);
        break;
      case Wrapper::Kind::Exists:
        P = Lib->Arena.exists(W.Var, P);
        break;
      case Wrapper::Kind::ExistsFun:
        P = Lib->Arena.existsFun(W.Var, P);
        break;
      }
    }
    return P;
  }

  /// Lowers a numeric literal to a Const-matching pattern:
  ///   ∃c. (c ; guard(c.op_id == op("Const") && c.value_u6 == V))
  const Pattern *lowerLiteral(int64_t MicroValue) {
    term::OpId Const = constOp();
    (void)Const;
    Symbol C = Symbol::fresh("lit");
    const GuardExpr *IsConst = Lib->Arena.binary(
        GuardKind::Eq, Lib->Arena.attr(C, Symbol::intern("op_id")),
        Lib->Arena.opRef(Symbol::intern("Const")));
    const GuardExpr *HasValue = Lib->Arena.binary(
        GuardKind::Eq, Lib->Arena.attr(C, Symbol::intern("value_u6")),
        Lib->Arena.intLit(MicroValue));
    const GuardExpr *Both =
        Lib->Arena.binary(GuardKind::And, IsConst, HasValue);
    return Lib->Arena.exists(C,
                             Lib->Arena.guarded(Lib->Arena.var(C), Both));
  }

  const Pattern *lowerExpr(Group &G, DefEnv &Env, const Expr *E) {
    switch (E->K) {
    case Expr::Kind::Literal:
      return lowerLiteral(E->Value);

    case Expr::Kind::Ref: {
      if (const LocalInfo *L = Env.lookup(E->Name)) {
        switch (L->K) {
        case LocalInfo::Kind::Param:
        case LocalInfo::Kind::LocalVar:
          if (Env.isFunVar(E->Name)) {
            error(E->Loc, "sema.funvar", "function variable '" + std::string(E->Name.str()) +
                              "' used in term position");
            return nullptr;
          }
          return Lib->Arena.var(E->Name);
        case LocalInfo::Kind::LocalOpVar:
          error(E->Loc, "sema.funvar", "function variable '" + std::string(E->Name.str()) +
                            "' used in term position");
          return nullptr;
        case LocalInfo::Kind::Alias:
          return lowerExpr(G, Env, L->AliasExpr);
        }
      }
      if (term::OpId Op = Sig.lookup(E->Name); Op.isValid()) {
        if (Sig.arity(Op) != 0) {
          error(E->Loc, "sema.operator", "operator '" + std::string(E->Name.str()) +
                            "' requires arguments");
          return nullptr;
        }
        return Lib->Arena.app(Op, {});
      }
      if (GroupIndex.count(E->Name))
        return lowerPatternCall(G, Env, E);
      error(E->Loc, "sema.unknown-identifier", "unknown identifier '" + std::string(E->Name.str()) +
                        "' (parameters and var() locals are the only free "
                        "variables)");
      return nullptr;
    }

    case Expr::Kind::Call: {
      Symbol Head = E->Name;
      if (term::OpId Op = Sig.lookup(Head); Op.isValid()) {
        if (Sig.arity(Op) != E->Args.size()) {
          error(E->Loc, "sema.operator", "operator '" + std::string(Head.str()) +
                            "' expects " + std::to_string(Sig.arity(Op)) +
                            " arguments, got " +
                            std::to_string(E->Args.size()));
          return nullptr;
        }
        std::vector<const Pattern *> Children;
        for (const Expr *Arg : E->Args) {
          const Pattern *C = lowerExpr(G, Env, Arg);
          if (!C)
            return nullptr;
          Children.push_back(C);
        }
        return Lib->Arena.app(Op, std::move(Children));
      }
      if (GroupIndex.count(Head))
        return lowerPatternCall(G, Env, E);
      if (Env.isFunVar(Head)) {
        if (const LocalInfo *L = Env.lookup(Head);
            L && L->K == LocalInfo::Kind::LocalOpVar &&
            L->OpVarArity != E->Args.size()) {
          error(E->Loc, "sema.funvar", "function variable '" + std::string(Head.str()) +
                            "' declared with arity " +
                            std::to_string(L->OpVarArity) + ", applied to " +
                            std::to_string(E->Args.size()) + " arguments");
          return nullptr;
        }
        std::vector<const Pattern *> Children;
        for (const Expr *Arg : E->Args) {
          const Pattern *C = lowerExpr(G, Env, Arg);
          if (!C)
            return nullptr;
          Children.push_back(C);
        }
        return Lib->Arena.funVarApp(Head, std::move(Children));
      }
      error(E->Loc, "sema.unknown-identifier", "unknown operator or pattern '" +
                        std::string(Head.str()) + "'");
      return nullptr;
    }
    }
    return nullptr;
  }

  /// Lowers a reference to a named pattern: self-references become
  /// recursive calls; others are inlined via instantiation.
  const Pattern *lowerPatternCall(Group &G, DefEnv &Env, const Expr *E) {
    Group &Target = Groups[GroupIndex.at(E->Name)];
    bool IsSelf = Target.Name == G.Name;

    const std::vector<Symbol> &TargetParams = Target.Params;
    if (E->Args.size() != TargetParams.size()) {
      error(E->Loc, "sema.pattern", "pattern '" + std::string(E->Name.str()) + "' expects " +
                        std::to_string(TargetParams.size()) +
                        " arguments, got " + std::to_string(E->Args.size()));
      return nullptr;
    }

    if (IsSelf) {
      // Recursive call: arguments must be plain variables (as in every
      // example in the paper); complex arguments would require a pattern-
      // for-variable substitution the core calculus does not have.
      std::vector<Symbol> Args;
      for (const Expr *Arg : E->Args) {
        if (Arg->K != Expr::Kind::Ref || !Env.lookup(Arg->Name)) {
          error(Arg->Loc, "sema",
                "recursive pattern call arguments must be variables");
          return nullptr;
        }
        Args.push_back(Arg->Name);
      }
      return Lib->Arena.recCall(G.Name, std::move(Args));
    }

    const NamedPattern *NP = compileGroup(Target);
    if (!NP)
      return nullptr;

    std::unordered_map<Symbol, Symbol> Renames;
    struct ComplexArg {
      Symbol Fresh;
      const Pattern *Pat;
    };
    std::vector<ComplexArg> ComplexArgs;
    std::vector<const GuardExpr *> FunGuards;

    for (size_t I = 0; I != TargetParams.size(); ++I) {
      Symbol Param = TargetParams[I];
      const Expr *Arg = E->Args[I];
      bool ParamIsFun = Target.FunParams.count(Param) != 0;
      if (ParamIsFun) {
        if (Arg->K == Expr::Kind::Ref && Env.isFunVar(Arg->Name)) {
          Renames[Param] = Arg->Name;
          continue;
        }
        if (Arg->K == Expr::Kind::Ref && Sig.lookup(Arg->Name).isValid()) {
          // Concrete operator passed for a function parameter: synthesize a
          // fresh function variable pinned to that operator by a guard.
          Symbol F = Symbol::fresh(Arg->Name.str());
          Renames[Param] = F;
          FunGuards.push_back(Lib->Arena.binary(
              GuardKind::Eq,
              Lib->Arena.funAttr(F, Symbol::intern("op_id")),
              Lib->Arena.opRef(Arg->Name)));
          continue;
        }
        error(Arg->Loc, "sema.funvar", "argument for function parameter '" +
                            std::string(Param.str()) +
                            "' must be a function variable or operator name");
        return nullptr;
      }
      if (Arg->K == Expr::Kind::Ref && Env.isTermVar(Arg->Name)) {
        Renames[Param] = Arg->Name;
        continue;
      }
      // Complex argument: ∃w. (inlinee[param↦w] ; (w <= arg)).
      const Pattern *ArgPat = lowerExpr(G, Env, Arg);
      if (!ArgPat)
        return nullptr;
      Symbol Fresh = Symbol::fresh(Param.str());
      Renames[Param] = Fresh;
      ComplexArgs.push_back({Fresh, ArgPat});
    }

    const Pattern *Inst = Lib->Arena.instantiate(NP->Pat, Renames);
    for (const GuardExpr *FG : FunGuards)
      Inst = Lib->Arena.guarded(Inst, FG);
    for (const ComplexArg &CA : ComplexArgs)
      Inst = Lib->Arena.exists(
          CA.Fresh, Lib->Arena.matchConstraint(Inst, CA.Pat, CA.Fresh));
    return Inst;
  }

  //===------------------------------------------------------------------===//
  // Rule lowering
  //===------------------------------------------------------------------===//

  void lowerRule(const RuleDefAst &R) {
    auto It = GroupIndex.find(R.PatternName);
    if (It == GroupIndex.end()) {
      error(R.Loc, "sema.rule", "rule '" + std::string(R.Name.str()) +
                       "' references unknown pattern '" +
                       std::string(R.PatternName.str()) + "'");
      return;
    }
    Group &G = Groups[It->second];
    if (!compileGroup(G))
      return;
    if (R.Params != G.Params) {
      error(R.Loc, "sema.rule", "rule '" + std::string(R.Name.str()) +
                       "' must bind exactly the pattern's parameters (in "
                       "order)");
      return;
    }

    DefEnv Env;
    Env.G = &G;
    for (Symbol P : R.Params)
      Env.Locals[P] = LocalInfo{LocalInfo::Kind::Param, 0, nullptr};

    unsigned EmittedRules = 0;
    std::vector<const GuardExpr *> Conj;
    std::unordered_map<Symbol, const Expr *> Aliases;
    lowerRulePath(R, G, Env, std::span<Stmt *const>(R.Body), Conj, Aliases,
                  EmittedRules);
    if (EmittedRules == 0)
      error(R.Loc, "sema.rule", "rule '" + std::string(R.Name.str()) +
                       "' has no reachable 'return'");
  }

  void lowerRulePath(const RuleDefAst &R, Group &G, DefEnv &Env,
                     std::span<Stmt *const> Stmts,
                     std::vector<const GuardExpr *> Conj,
                     std::unordered_map<Symbol, const Expr *> Aliases,
                     unsigned &EmittedRules) {
    for (size_t I = 0; I != Stmts.size(); ++I) {
      const Stmt *S = Stmts[I];
      switch (S->K) {
      case Stmt::Kind::Assert:
        Conj.push_back(importGuard(S->Guard, Env));
        continue;
      case Stmt::Kind::Alias:
        Aliases[S->Name] = S->E;
        continue;
      case Stmt::Kind::Return: {
        const RhsExpr *Rhs = lowerRhs(G, Env, Aliases, S->E);
        if (!Rhs)
          return;
        RewriteRule Rule;
        Rule.Name = EmittedRules == 0
                        ? R.Name
                        : Symbol::intern(std::string(R.Name.str()) + "#" +
                                         std::to_string(EmittedRules));
        Rule.PatternName = R.PatternName;
        Rule.Guard = foldConj(Conj);
        Rule.Rhs = Rhs;
        Rule.Loc = S->Loc.isValid() ? S->Loc : R.Loc;
        Lib->Rules.push_back(Rule);
        ++EmittedRules;
        return; // statements after return are unreachable on this path
      }
      case Stmt::Kind::If: {
        std::span<Stmt *const> Rest = Stmts.subspan(I + 1);
        // then-path: condition holds.
        {
          std::vector<const GuardExpr *> ThenConj = Conj;
          ThenConj.push_back(importGuard(S->Guard, Env));
          std::vector<Stmt *> ThenStmts(S->Then.begin(), S->Then.end());
          ThenStmts.insert(ThenStmts.end(), Rest.begin(), Rest.end());
          lowerRulePath(R, G, Env, ThenStmts, std::move(ThenConj), Aliases,
                        EmittedRules);
        }
        // else-path: condition fails.
        {
          std::vector<const GuardExpr *> ElseConj = std::move(Conj);
          ElseConj.push_back(
              Lib->Arena.notExpr(importGuard(S->Guard, Env)));
          std::vector<Stmt *> ElseStmts(S->Else.begin(), S->Else.end());
          ElseStmts.insert(ElseStmts.end(), Rest.begin(), Rest.end());
          lowerRulePath(R, G, Env, ElseStmts, std::move(ElseConj),
                        std::move(Aliases), EmittedRules);
        }
        return;
      }
      case Stmt::Kind::VarDecl:
      case Stmt::Kind::OpVarDecl:
      case Stmt::Kind::Constraint:
        error(S->Loc, "sema.body", "this statement is not allowed in a rule body");
        return;
      }
    }
    // Path without a return: no rule fires on it (legal: "if no rule can
    // apply, then none fires").
  }

  const GuardExpr *foldConj(const std::vector<const GuardExpr *> &Conj) {
    if (Conj.empty())
      return nullptr;
    const GuardExpr *Acc = Conj.front();
    for (size_t I = 1; I != Conj.size(); ++I)
      Acc = Lib->Arena.binary(GuardKind::And, Acc, Conj[I]);
    return Acc;
  }

  const RhsExpr *lowerRhs(Group &G, DefEnv &Env,
                          std::unordered_map<Symbol, const Expr *> &Aliases,
                          const Expr *E) {
    switch (E->K) {
    case Expr::Kind::Literal: {
      term::OpId Const = constOp();
      std::vector<RhsExpr::AttrTemplate> Attrs{
          {Symbol::intern("value_u6"), Lib->Arena.intLit(E->Value)}};
      return Lib->Arena.rhsApp(Const, {}, std::move(Attrs));
    }
    case Expr::Kind::Ref: {
      if (auto It = Aliases.find(E->Name); It != Aliases.end())
        return lowerRhs(G, Env, Aliases, It->second);
      if (Env.lookup(E->Name)) {
        if (Env.isFunVar(E->Name)) {
          error(E->Loc, "sema.funvar", "function variable '" + std::string(E->Name.str()) +
                            "' cannot be returned bare from a rule");
          return nullptr;
        }
        return Lib->Arena.rhsVar(E->Name);
      }
      if (term::OpId Op = Sig.lookup(E->Name);
          Op.isValid() && Sig.arity(Op) == 0)
        return Lib->Arena.rhsApp(Op, {});
      error(E->Loc, "sema.unknown-identifier", "unknown identifier '" + std::string(E->Name.str()) +
                        "' in rule right-hand side");
      return nullptr;
    }
    case Expr::Kind::Call: {
      std::vector<RhsExpr::AttrTemplate> Attrs;
      for (const auto &[Key, Val] : E->Attrs)
        Attrs.push_back({Key, importGuard(Val, Env)});
      std::vector<const RhsExpr *> Children;
      for (const Expr *Arg : E->Args) {
        const RhsExpr *C = lowerRhs(G, Env, Aliases, Arg);
        if (!C)
          return nullptr;
        Children.push_back(C);
      }
      if (term::OpId Op = Sig.lookup(E->Name); Op.isValid()) {
        if (Sig.arity(Op) != Children.size()) {
          error(E->Loc, "sema.operator", "operator '" + std::string(E->Name.str()) +
                            "' expects " + std::to_string(Sig.arity(Op)) +
                            " arguments, got " +
                            std::to_string(Children.size()));
          return nullptr;
        }
        return Lib->Arena.rhsApp(Op, std::move(Children), std::move(Attrs));
      }
      if (Env.isFunVar(E->Name))
        return Lib->Arena.rhsFunVarApp(E->Name, std::move(Children),
                                       std::move(Attrs));
      error(E->Loc, "sema.rule", "rule right-hand sides must apply operators or matched "
                    "function variables; '" +
                        std::string(E->Name.str()) + "' is neither");
      return nullptr;
    }
    }
    return nullptr;
  }
};

} // namespace

std::unique_ptr<pattern::Library>
pypm::dsl::compile(std::string_view Source, term::Signature &Sig,
                   DiagnosticEngine &Diags, const CompileOptions &Opts) {
  std::unique_ptr<ModuleAst> M = parseModule(Source, Diags);
  if (!M)
    return nullptr;
  std::unordered_set<std::string> Seen;
  if (!Opts.RootName.empty())
    Seen.insert(Opts.RootName);
  if (!resolveIncludes(*M, Opts, Diags, Seen))
    return nullptr;
  return SemaImpl(*M, Sig, Diags).run();
}

std::unique_ptr<pattern::Library>
pypm::dsl::compileFile(const std::string &Path, term::Signature &Sig,
                       DiagnosticEngine &Diags) {
  auto ReadFile = [](const std::string &P) -> std::optional<std::string> {
    std::ifstream In(P, std::ios::binary);
    if (!In)
      return std::nullopt;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  };
  std::optional<std::string> Source = ReadFile(Path);
  if (!Source) {
    Diags.error(SourceLoc(), "sema.io", "cannot open '" + Path + "'");
    return nullptr;
  }
  std::string Dir;
  if (size_t Slash = Path.find_last_of('/'); Slash != std::string::npos)
    Dir = Path.substr(0, Slash + 1);
  CompileOptions Opts;
  Opts.Resolver = [Dir, ReadFile](const std::string &Inc) {
    return ReadFile(Dir + Inc);
  };
  Opts.RootName = Path.substr(Dir.size());
  return compile(*Source, Sig, Diags, Opts);
}

std::unique_ptr<pattern::Library>
pypm::dsl::compileOrDie(std::string_view Source, term::Signature &Sig) {
  DiagnosticEngine Diags;
  std::unique_ptr<pattern::Library> Lib = compile(Source, Sig, Diags);
  if (!Lib) {
    std::fprintf(stderr, "pypm::dsl::compileOrDie failed:\n%s",
                 Diags.renderAll().c_str());
    std::abort();
  }
  return Lib;
}
