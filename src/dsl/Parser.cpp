//===- dsl/Parser.cpp - PyPM DSL parser --------------------------------------===//

#include "dsl/Parser.h"

#include "term/DType.h"

using namespace pypm;
using namespace pypm::dsl;
using pattern::GuardExpr;
using pattern::GuardKind;

namespace {

/// Normalizes PyPM attribute spellings to the canonical keys stored on
/// terms by the graph adapter: `x.shape.rank` → rank, `x.shape.dim0` →
/// dim0, `x.eltType` → elt_type. Unknown paths pass through verbatim
/// (operator-specific attributes like stride).
std::string normalizeAttrPath(std::string_view Path) {
  std::string S(Path);
  if (S == "eltType" || S == "elt_type")
    return "elt_type";
  if (S == "shape.rank")
    return "rank";
  constexpr std::string_view ShapeDim = "shape.dim";
  if (S.size() > ShapeDim.size() && std::string_view(S).substr(0, ShapeDim.size()) == ShapeDim)
    return S.substr(6); // strip "shape."
  return S;
}

/// Recursion ceiling for nested expressions, guards, and statements. Real
/// rules nest a handful of levels; adversarial input ("((((…", "!!!!…",
/// deeply nested calls or if-blocks) must fail with a diagnostic instead
/// of exhausting the parser's stack.
constexpr unsigned kMaxNestingDepth = 256;

class ParserImpl {
public:
  ParserImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Diags(Diags) {
    Toks = tokenize(Source, Diags);
  }

  std::unique_ptr<ModuleAst> run() {
    auto M = std::make_unique<ModuleAst>();
    Mod = M.get();
    while (!at(TokKind::Eof)) {
      if (at(TokKind::KwInclude)) {
        IncludeAst Inc;
        Inc.Loc = cur().Loc;
        advance();
        if (at(TokKind::StringLit)) {
          Inc.Path = std::string(cur().Text);
          advance();
        } else {
          error("expected a quoted path after 'include'");
        }
        expect(TokKind::Semi);
        if (!Inc.Path.empty())
          Mod->Includes.push_back(std::move(Inc));
      } else if (at(TokKind::KwOp)) {
        parseOpDecl();
      } else if (at(TokKind::KwPattern)) {
        parsePatternDecl();
      } else if (at(TokKind::KwRule)) {
        parseRuleDecl();
      } else {
        error("expected 'include', 'op', 'pattern', or 'rule' at top "
              "level");
        synchronizeTopLevel();
      }
    }
    if (Diags.hasErrors())
      return nullptr;
    return M;
  }

private:
  DiagnosticEngine &Diags;
  std::vector<Token> Toks;
  size_t Pos = 0;
  ModuleAst *Mod = nullptr;
  unsigned Depth = 0;

  /// RAII depth tracker for the recursive-descent entry points. Crossing
  /// the ceiling emits one diagnostic; callers test \c ok() and return
  /// nullptr, which propagates like any other parse error.
  class DepthScope {
  public:
    explicit DepthScope(ParserImpl &P) : P(P) {
      if (++P.Depth == kMaxNestingDepth + 1) {
        P.error("nesting deeper than " + std::to_string(kMaxNestingDepth) +
                " levels");
      }
    }
    ~DepthScope() { --P.Depth; }
    bool ok() const { return P.Depth <= kMaxNestingDepth; }

  private:
    ParserImpl &P;
  };

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }

  Token advance() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  void error(std::string Msg) { Diags.error(cur().Loc, std::move(Msg)); }

  bool expect(TokKind K) {
    if (at(K)) {
      advance();
      return true;
    }
    error("expected " + std::string(tokKindName(K)) + ", found " +
          std::string(tokKindName(cur().Kind)));
    return false;
  }

  Symbol expectIdent(std::string_view What) {
    if (at(TokKind::Ident)) {
      Symbol S = Symbol::intern(cur().Text);
      advance();
      return S;
    }
    error("expected " + std::string(What));
    return Symbol();
  }

  void synchronizeTopLevel() {
    while (!at(TokKind::Eof) && !at(TokKind::KwOp) &&
           !at(TokKind::KwPattern) && !at(TokKind::KwRule) &&
           !at(TokKind::KwInclude))
      advance();
  }

  Expr *newExpr(Expr E) {
    Mod->ExprStorage.push_back(std::make_unique<Expr>(std::move(E)));
    return Mod->ExprStorage.back().get();
  }
  Stmt *newStmt(Stmt S) {
    Mod->StmtStorage.push_back(std::make_unique<Stmt>(std::move(S)));
    return Mod->StmtStorage.back().get();
  }

  //===------------------------------------------------------------------===//
  // Top-level declarations
  //===------------------------------------------------------------------===//

  void parseOpDecl() {
    OpDeclAst D;
    D.Loc = cur().Loc;
    advance(); // 'op'
    D.Name = expectIdent("operator name");
    expect(TokKind::LParen);
    if (at(TokKind::IntLit)) {
      D.Arity = static_cast<unsigned>(cur().IntValue);
      advance();
    } else {
      error("expected operator arity (an integer)");
    }
    expect(TokKind::RParen);
    if (at(TokKind::Arrow)) {
      advance();
      if (at(TokKind::IntLit)) {
        D.Results = static_cast<unsigned>(cur().IntValue);
        advance();
      } else {
        error("expected result count after '->'");
      }
    }
    while (at(TokKind::KwClass) || at(TokKind::KwAttrs)) {
      bool IsClass = at(TokKind::KwClass);
      advance();
      expect(TokKind::LParen);
      if (IsClass) {
        if (at(TokKind::StringLit)) {
          D.OpClass = Symbol::intern(cur().Text);
          advance();
        } else {
          error("expected class name string");
        }
      } else {
        do {
          Symbol A = expectIdent("attribute name");
          if (A.isValid())
            D.AttrNames.push_back(A);
        } while (at(TokKind::Comma) && (advance(), true));
      }
      expect(TokKind::RParen);
    }
    expect(TokKind::Semi);
    Mod->Ops.push_back(std::move(D));
  }

  std::vector<Symbol> parseParamList() {
    std::vector<Symbol> Params;
    expect(TokKind::LParen);
    if (!at(TokKind::RParen)) {
      do {
        Symbol P = expectIdent("parameter name");
        if (P.isValid())
          Params.push_back(P);
      } while (at(TokKind::Comma) && (advance(), true));
    }
    expect(TokKind::RParen);
    return Params;
  }

  void parsePatternDecl() {
    PatternDefAst D;
    D.Loc = cur().Loc;
    advance(); // 'pattern'
    D.Name = expectIdent("pattern name");
    D.Params = parseParamList();
    D.Body = parseBlock(/*InRule=*/false);
    Mod->Patterns.push_back(std::move(D));
  }

  void parseRuleDecl() {
    RuleDefAst D;
    D.Loc = cur().Loc;
    advance(); // 'rule'
    D.Name = expectIdent("rule name");
    expect(TokKind::KwFor);
    D.PatternName = expectIdent("pattern name");
    D.Params = parseParamList();
    D.Body = parseBlock(/*InRule=*/true);
    Mod->Rules.push_back(std::move(D));
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  std::vector<Stmt *> parseBlock(bool InRule) {
    std::vector<Stmt *> Body;
    if (!expect(TokKind::LBrace))
      return Body;
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      if (Stmt *S = parseStmt(InRule))
        Body.push_back(S);
      else
        synchronizeStmt();
    }
    expect(TokKind::RBrace);
    return Body;
  }

  void synchronizeStmt() {
    while (!at(TokKind::Eof) && !at(TokKind::Semi) && !at(TokKind::RBrace))
      advance();
    if (at(TokKind::Semi))
      advance();
  }

  Stmt *parseStmt(bool InRule) {
    DepthScope Scope(*this);
    if (!Scope.ok())
      return nullptr;
    SourceLoc Loc = cur().Loc;

    if (at(TokKind::KwAssert)) {
      advance();
      const GuardExpr *G = parseGuard();
      expect(TokKind::Semi);
      if (!G)
        return nullptr;
      Stmt S;
      S.K = Stmt::Kind::Assert;
      S.Loc = Loc;
      S.Guard = G;
      return newStmt(std::move(S));
    }

    if (at(TokKind::KwReturn)) {
      advance();
      Expr *E = parsePExpr(InRule);
      expect(TokKind::Semi);
      if (!E)
        return nullptr;
      Stmt S;
      S.K = Stmt::Kind::Return;
      S.Loc = Loc;
      S.E = E;
      return newStmt(std::move(S));
    }

    if (at(TokKind::KwIf)) {
      if (!InRule)
        error("'if' is only allowed in rule bodies (patterns use "
              "alternates instead)");
      return parseIf(InRule);
    }

    if (at(TokKind::Ident)) {
      Symbol Name = Symbol::intern(cur().Text);
      advance();
      if (at(TokKind::LessEq)) {
        advance();
        Expr *E = parsePExpr(InRule);
        expect(TokKind::Semi);
        if (!E)
          return nullptr;
        Stmt S;
        S.K = Stmt::Kind::Constraint;
        S.Loc = Loc;
        S.Name = Name;
        S.E = E;
        return newStmt(std::move(S));
      }
      if (!expect(TokKind::Assign))
        return nullptr;
      if (at(TokKind::KwVar)) {
        advance();
        expect(TokKind::LParen);
        expect(TokKind::RParen);
        expect(TokKind::Semi);
        Stmt S;
        S.K = Stmt::Kind::VarDecl;
        S.Loc = Loc;
        S.Name = Name;
        return newStmt(std::move(S));
      }
      if (at(TokKind::KwOpVar)) {
        advance();
        expect(TokKind::LParen);
        unsigned Arity = 0;
        if (at(TokKind::IntLit)) {
          Arity = static_cast<unsigned>(cur().IntValue);
          advance();
        } else {
          error("expected function-variable arity");
        }
        // Tolerate the paper's Op(inputs, outputs) spelling: an optional
        // second integer (output arity) is accepted and checked to be 1.
        if (at(TokKind::Comma)) {
          advance();
          if (at(TokKind::IntLit)) {
            if (cur().IntValue != 1)
              error("function variables with multiple results are not "
                    "supported");
            advance();
          }
        }
        expect(TokKind::RParen);
        expect(TokKind::Semi);
        Stmt S;
        S.K = Stmt::Kind::OpVarDecl;
        S.Loc = Loc;
        S.Name = Name;
        S.Arity = Arity;
        return newStmt(std::move(S));
      }
      Expr *E = parsePExpr(InRule);
      expect(TokKind::Semi);
      if (!E)
        return nullptr;
      Stmt S;
      S.K = Stmt::Kind::Alias;
      S.Loc = Loc;
      S.Name = Name;
      S.E = E;
      return newStmt(std::move(S));
    }

    error("expected a statement");
    return nullptr;
  }

  Stmt *parseIf(bool InRule) {
    DepthScope Scope(*this); // elif chains recurse here, not via parseStmt
    if (!Scope.ok())
      return nullptr;
    SourceLoc Loc = cur().Loc;
    advance(); // 'if' or 'elif'
    const GuardExpr *G = parseGuard();
    Stmt S;
    S.K = Stmt::Kind::If;
    S.Loc = Loc;
    S.Guard = G;
    S.Then = parseBlock(InRule);
    if (at(TokKind::KwElif)) {
      // Desugar: elif … ≡ else { if … }.
      if (Stmt *Elif = parseIf(InRule))
        S.Else.push_back(Elif);
    } else if (at(TokKind::KwElse)) {
      advance();
      S.Else = parseBlock(InRule);
    }
    if (!G)
      return nullptr;
    return newStmt(std::move(S));
  }

  //===------------------------------------------------------------------===//
  // Pattern / RHS expressions
  //===------------------------------------------------------------------===//

  Expr *parsePExpr(bool InRule) {
    DepthScope Scope(*this);
    if (!Scope.ok())
      return nullptr;
    SourceLoc Loc = cur().Loc;
    if (at(TokKind::IntLit) || at(TokKind::FloatLit)) {
      Expr E;
      E.K = Expr::Kind::Literal;
      E.Loc = Loc;
      E.Value = at(TokKind::IntLit) ? cur().IntValue * 1'000'000
                                    : cur().IntValue;
      advance();
      return newExpr(std::move(E));
    }
    if (!at(TokKind::Ident)) {
      error("expected a pattern expression");
      return nullptr;
    }
    Symbol Name = Symbol::intern(cur().Text);
    advance();

    Expr E;
    E.Loc = Loc;
    E.Name = Name;
    if (!at(TokKind::LParen) && !at(TokKind::LBracket)) {
      E.K = Expr::Kind::Ref;
      return newExpr(std::move(E));
    }

    E.K = Expr::Kind::Call;
    if (at(TokKind::LBracket)) {
      if (!InRule)
        error("attribute templates '[k = e]' are only allowed on rule "
              "right-hand sides");
      advance();
      do {
        Symbol Key = expectIdent("attribute name");
        expect(TokKind::Assign);
        const GuardExpr *V = parseGuard();
        if (Key.isValid() && V)
          E.Attrs.emplace_back(Key, V);
      } while (at(TokKind::Comma) && (advance(), true));
      expect(TokKind::RBracket);
    }
    expect(TokKind::LParen);
    if (!at(TokKind::RParen)) {
      do {
        Expr *Arg = parsePExpr(InRule);
        if (!Arg)
          return nullptr;
        E.Args.push_back(Arg);
      } while (at(TokKind::Comma) && (advance(), true));
    }
    expect(TokKind::RParen);
    return newExpr(std::move(E));
  }

  //===------------------------------------------------------------------===//
  // Guard expressions
  //===------------------------------------------------------------------===//
  // Precedence (loosest first): || , && , comparisons, + -, * / %, unary.
  // Sortedness (bool vs arith) is validated by the well-formedness checker.

  pattern::PatternArena &arena() { return Mod->GuardArena; }

  const GuardExpr *parseGuard() { return parseOr(); }

  const GuardExpr *parseOr() {
    const GuardExpr *L = parseAnd();
    while (L && at(TokKind::OrOr)) {
      advance();
      const GuardExpr *R = parseAnd();
      if (!R)
        return nullptr;
      L = arena().binary(GuardKind::Or, L, R);
    }
    return L;
  }

  const GuardExpr *parseAnd() {
    const GuardExpr *L = parseCmp();
    while (L && at(TokKind::AndAnd)) {
      advance();
      const GuardExpr *R = parseCmp();
      if (!R)
        return nullptr;
      L = arena().binary(GuardKind::And, L, R);
    }
    return L;
  }

  const GuardExpr *parseCmp() {
    const GuardExpr *L = parseAddSub();
    if (!L)
      return nullptr;
    GuardKind K;
    switch (cur().Kind) {
    case TokKind::EqEq:
      K = GuardKind::Eq;
      break;
    case TokKind::NotEq:
      K = GuardKind::Ne;
      break;
    case TokKind::Lt:
      K = GuardKind::Lt;
      break;
    case TokKind::LessEq:
      K = GuardKind::Le;
      break;
    case TokKind::Gt:
      K = GuardKind::Gt;
      break;
    case TokKind::GtEq:
      K = GuardKind::Ge;
      break;
    default:
      return L;
    }
    advance();
    const GuardExpr *R = parseAddSub();
    if (!R)
      return nullptr;
    return arena().binary(K, L, R);
  }

  const GuardExpr *parseAddSub() {
    const GuardExpr *L = parseMul();
    while (L && (at(TokKind::Plus) || at(TokKind::Minus))) {
      GuardKind K = at(TokKind::Plus) ? GuardKind::Add : GuardKind::Sub;
      advance();
      const GuardExpr *R = parseMul();
      if (!R)
        return nullptr;
      L = arena().binary(K, L, R);
    }
    return L;
  }

  const GuardExpr *parseMul() {
    const GuardExpr *L = parseUnary();
    while (L && (at(TokKind::Star) || at(TokKind::Slash) ||
                 at(TokKind::Percent))) {
      GuardKind K = at(TokKind::Star)    ? GuardKind::Mul
                    : at(TokKind::Slash) ? GuardKind::Div
                                         : GuardKind::Mod;
      advance();
      const GuardExpr *R = parseUnary();
      if (!R)
        return nullptr;
      L = arena().binary(K, L, R);
    }
    return L;
  }

  const GuardExpr *parseUnary() {
    DepthScope Scope(*this);
    if (!Scope.ok())
      return nullptr;
    if (at(TokKind::Bang)) {
      advance();
      const GuardExpr *Sub = parseUnary();
      if (!Sub)
        return nullptr;
      if (!pattern::isBoolKind(Sub->kind())) {
        error("'!' applied to an arithmetic expression");
        return nullptr;
      }
      return arena().notExpr(Sub);
    }
    if (at(TokKind::Minus)) {
      advance();
      const GuardExpr *Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return arena().binary(GuardKind::Sub, arena().intLit(0), Sub);
    }
    return parsePrimary();
  }

  const GuardExpr *parsePrimary() {
    if (at(TokKind::IntLit)) {
      int64_t V = cur().IntValue;
      advance();
      return arena().intLit(V);
    }
    if (at(TokKind::FloatLit)) {
      // Float literals in guards are micro-scaled so they compare against
      // the *_u6 attributes the graph adapter stores for scalar constants.
      int64_t V = cur().IntValue;
      advance();
      return arena().intLit(V);
    }
    if (at(TokKind::LParen)) {
      advance();
      const GuardExpr *G = parseOr();
      expect(TokKind::RParen);
      return G;
    }
    if (at(TokKind::KwOpClass)) {
      advance();
      expect(TokKind::LParen);
      Symbol Name;
      if (at(TokKind::StringLit)) {
        Name = Symbol::intern(cur().Text);
        advance();
      } else {
        error("expected class name string in opclass(…)");
      }
      expect(TokKind::RParen);
      return Name.isValid() ? arena().opClassRef(Name) : nullptr;
    }
    if (at(TokKind::KwOp)) {
      advance();
      expect(TokKind::LParen);
      Symbol Name;
      if (at(TokKind::StringLit)) {
        Name = Symbol::intern(cur().Text);
        advance();
      } else {
        error("expected operator name string in op(…)");
      }
      expect(TokKind::RParen);
      return Name.isValid() ? arena().opRef(Name) : nullptr;
    }
    if (at(TokKind::Ident)) {
      std::string_view Text = cur().Text;
      // A bare dtype keyword is an integer constant.
      if (peek().Kind != TokKind::Dot) {
        if (std::optional<term::DType> DT = term::dtypeFromName(Text)) {
          advance();
          return arena().intLit(static_cast<int64_t>(*DT));
        }
        error("expected attribute access, literal, or dtype keyword; bare "
              "variable '" +
              std::string(Text) + "' has no value in a guard");
        return nullptr;
      }
      Symbol Var = Symbol::intern(Text);
      advance();
      std::string Path;
      while (at(TokKind::Dot)) {
        advance();
        if (!at(TokKind::Ident)) {
          error("expected attribute name after '.'");
          return nullptr;
        }
        if (!Path.empty())
          Path += '.';
        Path += cur().Text;
        advance();
      }
      return arena().attr(Var, Symbol::intern(normalizeAttrPath(Path)));
    }
    error("expected a guard expression");
    return nullptr;
  }
};

} // namespace

std::unique_ptr<ModuleAst> pypm::dsl::parseModule(std::string_view Source,
                                                  DiagnosticEngine &Diags) {
  return ParserImpl(Source, Diags).run();
}
