//===- dsl/Parser.h - PyPM DSL syntax trees and parser ----------*- C++ -*-===//
///
/// \file
/// Grammar of the textual PyPM dialect (one construct per paper feature):
///
///   program     ::= (opDecl | patternDecl | ruleDecl)*
///   opDecl      ::= 'op' Ident '(' Int ')' ('->' Int)?
///                   ('class' '(' String ')')? ('attrs' '(' idents ')')? ';'
///   patternDecl ::= 'pattern' Ident '(' idents? ')' '{' stmt* '}'
///   ruleDecl    ::= 'rule' Ident 'for' Ident '(' idents? ')' '{' stmt* '}'
///   stmt        ::= 'assert' guard ';'
///                 | Ident '=' 'var' '(' ')' ';'          (local variable)
///                 | Ident '=' 'opvar' '(' Int ')' ';'    (local function var)
///                 | Ident '=' pexpr ';'                  (sub-pattern alias)
///                 | Ident '<=' pexpr ';'                 (match constraint)
///                 | 'return' pexpr ';'
///                 | 'if' guard '{' stmt* '}'
///                   ('elif' guard '{' stmt* '}')* ('else' '{' stmt* '}')?
///   pexpr       ::= Ident | Int | Float
///                 | Ident ('[' Ident '=' guard (',' …)* ']')? '(' pexprs ')'
///   guard       ::= the expression grammar of Fig. 8, plus Ident '.' path
///                   attribute access, dtype keywords (f32, i8, …),
///                   opclass("…"), op("…"), and float literals (scaled to
///                   micro-units to compare against *_u6 attributes).
///
/// Pattern alternates are written, as in PyPM, by repeating a pattern name
/// (§2.1). Whether an identifier denotes an operator, a pattern reference,
/// a term variable, or a function variable is resolved by Sema — mirroring
/// how the Python frontend infers roles during symbolic execution.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_DSL_PARSER_H
#define PYPM_DSL_PARSER_H

#include "dsl/Lexer.h"
#include "pattern/Pattern.h"

#include <deque>
#include <memory>
#include <vector>

namespace pypm::dsl {

/// Pattern-position / RHS-position expression.
struct Expr {
  enum class Kind : uint8_t {
    Ref,      ///< bare identifier: variable, alias, or 0-ary reference
    Call,     ///< Head(args…) with optional [key = guard, …] attributes
    Literal,  ///< numeric literal (lowered to a Const-matching pattern)
  };
  Kind K = Kind::Ref;
  SourceLoc Loc;
  Symbol Name;          ///< Ref / Call head
  int64_t Value = 0;    ///< Literal, in micro-units
  std::vector<Expr *> Args;
  std::vector<std::pair<Symbol, const pattern::GuardExpr *>> Attrs;
};

struct Stmt {
  enum class Kind : uint8_t {
    Assert,
    VarDecl,
    OpVarDecl,
    Alias,
    Constraint,
    Return,
    If,
  };
  Kind K = Kind::Assert;
  SourceLoc Loc;
  const pattern::GuardExpr *Guard = nullptr; ///< Assert / If
  Symbol Name;                               ///< decl/alias/constraint target
  unsigned Arity = 0;                        ///< OpVarDecl
  Expr *E = nullptr;                         ///< Alias/Constraint/Return
  std::vector<Stmt *> Then, Else;            ///< If
};

struct OpDeclAst {
  SourceLoc Loc;
  Symbol Name;
  unsigned Arity = 0;
  unsigned Results = 1;
  Symbol OpClass;
  std::vector<Symbol> AttrNames;
};

struct PatternDefAst {
  SourceLoc Loc;
  Symbol Name;
  std::vector<Symbol> Params;
  std::vector<Stmt *> Body;
};

struct RuleDefAst {
  SourceLoc Loc;
  Symbol Name;
  Symbol PatternName;
  std::vector<Symbol> Params;
  std::vector<Stmt *> Body;
};

/// Parsed module. Owns its AST nodes; guard expressions are allocated into
/// GuardArena (later adopted by the compiled Library's arena — Sema moves
/// them wholesale, so pointers stay valid).
struct IncludeAst {
  SourceLoc Loc;
  std::string Path;
};

struct ModuleAst {
  std::vector<IncludeAst> Includes;
  std::vector<OpDeclAst> Ops;
  std::vector<PatternDefAst> Patterns;
  std::vector<RuleDefAst> Rules;

  std::deque<std::unique_ptr<Expr>> ExprStorage;
  std::deque<std::unique_ptr<Stmt>> StmtStorage;
  /// Guards parsed directly as pattern::GuardExpr; this arena must be kept
  /// alive by whoever consumes the module (Sema folds it into the Library).
  pattern::PatternArena GuardArena;
  /// Modules pulled in by `include "…";` (kept alive because merged decls
  /// reference their AST storage).
  std::vector<std::unique_ptr<ModuleAst>> Included;
};

/// Parses \p Source; returns nullptr and emits diagnostics on syntax errors.
std::unique_ptr<ModuleAst> parseModule(std::string_view Source,
                                       DiagnosticEngine &Diags);

} // namespace pypm::dsl

#endif // PYPM_DSL_PARSER_H
