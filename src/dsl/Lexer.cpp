//===- dsl/Lexer.cpp - PyPM DSL tokenizer -----------------------------------===//

#include "dsl/Lexer.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

using namespace pypm;
using namespace pypm::dsl;

namespace {

struct Keyword {
  std::string_view Spelling;
  TokKind Kind;
};

constexpr Keyword Keywords[] = {
    {"op", TokKind::KwOp},         {"pattern", TokKind::KwPattern},
    {"rule", TokKind::KwRule},     {"for", TokKind::KwFor},
    {"assert", TokKind::KwAssert}, {"return", TokKind::KwReturn},
    {"if", TokKind::KwIf},         {"elif", TokKind::KwElif},
    {"else", TokKind::KwElse},     {"var", TokKind::KwVar},
    {"opvar", TokKind::KwOpVar},   {"class", TokKind::KwClass},
    {"attrs", TokKind::KwAttrs},   {"opclass", TokKind::KwOpClass},
    {"include", TokKind::KwInclude},
};

class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    for (;;) {
      Token T = next();
      Out.push_back(T);
      if (T.Kind == TokKind::Eof)
        return Out;
    }
  }

private:
  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;

  SourceLoc here() const { return SourceLoc{Line, Col}; }

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '#' || (C == '/' && peek(1) == '/')) {
        while (Pos < Source.size() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  Token make(TokKind Kind, SourceLoc Loc, std::string_view Text = {}) {
    Token T;
    T.Kind = Kind;
    T.Loc = Loc;
    T.Text = Text;
    return T;
  }

  Token next() {
    skipTrivia();
    SourceLoc Loc = here();
    if (Pos >= Source.size())
      return make(TokKind::Eof, Loc);

    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return identOrKeyword(Loc);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return number(Loc);

    switch (C) {
    case '"':
      return stringLit(Loc);
    case '(':
      advance();
      return make(TokKind::LParen, Loc);
    case ')':
      advance();
      return make(TokKind::RParen, Loc);
    case '{':
      advance();
      return make(TokKind::LBrace, Loc);
    case '}':
      advance();
      return make(TokKind::RBrace, Loc);
    case '[':
      advance();
      return make(TokKind::LBracket, Loc);
    case ']':
      advance();
      return make(TokKind::RBracket, Loc);
    case ',':
      advance();
      return make(TokKind::Comma, Loc);
    case ';':
      advance();
      return make(TokKind::Semi, Loc);
    case '.':
      advance();
      return make(TokKind::Dot, Loc);
    case '+':
      advance();
      return make(TokKind::Plus, Loc);
    case '*':
      advance();
      return make(TokKind::Star, Loc);
    case '/':
      advance();
      return make(TokKind::Slash, Loc);
    case '%':
      advance();
      return make(TokKind::Percent, Loc);
    case '-':
      advance();
      if (peek() == '>') {
        advance();
        return make(TokKind::Arrow, Loc);
      }
      return make(TokKind::Minus, Loc);
    case '=':
      advance();
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq, Loc);
      }
      return make(TokKind::Assign, Loc);
    case '!':
      advance();
      if (peek() == '=') {
        advance();
        return make(TokKind::NotEq, Loc);
      }
      return make(TokKind::Bang, Loc);
    case '<':
      advance();
      if (peek() == '=') {
        advance();
        return make(TokKind::LessEq, Loc);
      }
      return make(TokKind::Lt, Loc);
    case '>':
      advance();
      if (peek() == '=') {
        advance();
        return make(TokKind::GtEq, Loc);
      }
      return make(TokKind::Gt, Loc);
    case '&':
      advance();
      if (peek() == '&') {
        advance();
        return make(TokKind::AndAnd, Loc);
      }
      Diags.error(Loc, "expected '&&'");
      return next();
    case '|':
      advance();
      if (peek() == '|') {
        advance();
        return make(TokKind::OrOr, Loc);
      }
      Diags.error(Loc, "expected '||'");
      return next();
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      advance();
      return next();
    }
  }

  Token identOrKeyword(SourceLoc Loc) {
    size_t Start = Pos;
    while (Pos < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
      advance();
    std::string_view Text = Source.substr(Start, Pos - Start);
    for (const Keyword &K : Keywords)
      if (K.Spelling == Text)
        return make(K.Kind, Loc, Text);
    return make(TokKind::Ident, Loc, Text);
  }

  Token number(SourceLoc Loc) {
    size_t Start = Pos;
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    bool IsFloat = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      advance(); // '.'
      while (Pos < Source.size() &&
             std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    std::string Text(Source.substr(Start, Pos - Start));
    Token T = make(IsFloat ? TokKind::FloatLit : TokKind::IntLit, Loc,
                   Source.substr(Start, Pos - Start));
    if (IsFloat)
      T.IntValue = static_cast<int64_t>(
          std::llround(std::strtod(Text.c_str(), nullptr) * 1e6));
    else
      T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
    return T;
  }

  Token stringLit(SourceLoc Loc) {
    advance(); // opening quote
    size_t Start = Pos;
    while (Pos < Source.size() && peek() != '"' && peek() != '\n')
      advance();
    if (peek() != '"') {
      Diags.error(Loc, "unterminated string literal");
      return make(TokKind::StringLit, Loc, Source.substr(Start, Pos - Start));
    }
    std::string_view Text = Source.substr(Start, Pos - Start);
    advance(); // closing quote
    return make(TokKind::StringLit, Loc, Text);
  }
};

} // namespace

std::vector<Token> pypm::dsl::tokenize(std::string_view Source,
                                       DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}

std::string_view pypm::dsl::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::FloatLit:
    return "float literal";
  case TokKind::StringLit:
    return "string literal";
  case TokKind::KwOp:
    return "'op'";
  case TokKind::KwPattern:
    return "'pattern'";
  case TokKind::KwRule:
    return "'rule'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwAssert:
    return "'assert'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElif:
    return "'elif'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwOpVar:
    return "'opvar'";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwAttrs:
    return "'attrs'";
  case TokKind::KwOpClass:
    return "'opclass'";
  case TokKind::KwInclude:
    return "'include'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::GtEq:
    return "'>='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  }
  return "<token?>";
}
