//===- dsl/Lexer.h - PyPM DSL tokenizer -------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the textual PyPM dialect. The paper's PyPM is embedded in
/// Python and lowered by symbolic execution (§2.4); this standalone dialect
/// lowers to the same core calculus through a conventional
/// lexer/parser/sema pipeline. Comments run `//` or `#` to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_DSL_LEXER_H
#define PYPM_DSL_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace pypm::dsl {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  FloatLit, ///< value scaled to micro-units (×1e6, rounded)
  StringLit,
  // Keywords.
  KwOp,
  KwPattern,
  KwRule,
  KwFor,
  KwAssert,
  KwReturn,
  KwIf,
  KwElif,
  KwElse,
  KwVar,
  KwOpVar,
  KwClass,
  KwAttrs,
  KwOpClass,
  KwInclude,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Dot,
  Assign,  // =
  Arrow,   // ->
  LessEq,  // <=  (match constraint at statement level, comparison in guards)
  EqEq,
  NotEq,
  Lt,
  Gt,
  GtEq,
  AndAnd,
  OrOr,
  Bang,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string_view Text; ///< spelling (idents, strings without quotes)
  int64_t IntValue = 0;  ///< IntLit value, or FloatLit micro-units
};

/// Tokenizes \p Source. Errors (bad characters, unterminated strings) are
/// reported to \p Diags; the returned stream always ends with Eof.
std::vector<Token> tokenize(std::string_view Source, DiagnosticEngine &Diags);

/// Spelling of a token kind for diagnostics ("';'", "identifier", …).
std::string_view tokKindName(TokKind Kind);

} // namespace pypm::dsl

#endif // PYPM_DSL_LEXER_H
