//===- dsl/Sema.h - DSL semantic analysis and lowering ----------*- C++ -*-===//
///
/// \file
/// Lowers a parsed PyPM module to the core calculus, performing the same
/// job as the Python frontend's symbolic execution (§2.4):
///
///  - operator declarations extend the Signature;
///  - same-named pattern definitions become alternates, folded
///    right-associatively in definition order (§2.1);
///  - local `x = var()` becomes ∃x (wrapped outside later statements);
///  - `x <= p` becomes a match constraint;
///  - `assert g` becomes a guarded pattern;
///  - local aliases are expanded at each use (they are "merely aliases");
///  - references to other patterns are inlined with freshened binders
///    (complex arguments introduce ∃w plus a match constraint w <= arg);
///  - self-recursive references become μ/recursive calls; mutual recursion
///    between named patterns is rejected with a diagnostic;
///  - identifiers are classified by use: a parameter applied like an
///    operator is a function variable (§3.4), as are `f = opvar(n)` locals;
///  - numeric literals in pattern position match scalar `Const` operators
///    via an ∃-bound variable guarded on `value_u6` (micro-units);
///  - rule bodies with if/elif/else lower to one RewriteRule per
///    root-to-return path, with the branch conditions conjoined onto the
///    rule guard — matching PyPM's "first rule whose assertions pass fires".
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_DSL_SEMA_H
#define PYPM_DSL_SEMA_H

#include "dsl/Parser.h"
#include "pattern/Pattern.h"

#include <functional>
#include <memory>
#include <optional>

namespace pypm::dsl {

struct CompileOptions {
  /// Resolves an `include "path";` to source text; nullopt = not found.
  /// When unset, any include is an error. Each distinct path is included
  /// once (include-once semantics); include cycles are rejected.
  std::function<std::optional<std::string>(const std::string &)> Resolver;
  /// The include-spelling of the root source itself, if it has one; seeds
  /// the include-once set so a cycle back to the root is a no-op rather
  /// than a duplicate definition (compileFile sets this to the file's
  /// basename).
  std::string RootName;
};

/// Compiles DSL source to a pattern Library. Operator declarations are
/// merged into \p Sig. Returns nullptr (with diagnostics) on any error;
/// the result has passed the well-formedness checker.
std::unique_ptr<pattern::Library> compile(std::string_view Source,
                                          term::Signature &Sig,
                                          DiagnosticEngine &Diags,
                                          const CompileOptions &Opts = {});

/// Compiles a file, resolving its includes relative to the file's
/// directory.
std::unique_ptr<pattern::Library> compileFile(const std::string &Path,
                                              term::Signature &Sig,
                                              DiagnosticEngine &Diags);

/// Convenience for tests/examples: compile or abort printing diagnostics.
std::unique_ptr<pattern::Library> compileOrDie(std::string_view Source,
                                               term::Signature &Sig);

} // namespace pypm::dsl

#endif // PYPM_DSL_SEMA_H
