//===- pattern/Pattern.cpp - CorePyPM pattern AST --------------------------===//

#include "pattern/Pattern.h"

#include <unordered_map>

using namespace pypm;
using namespace pypm::pattern;

template <typename T, typename... Args>
T *PatternArena::create(Args &&...CtorArgs) {
  auto Node = std::shared_ptr<T>(new T(std::forward<Args>(CtorArgs)...));
  T *Raw = Node.get();
  PatternStorage.emplace_back(std::move(Node));
  Patterns.push_back(Raw);
  return Raw;
}

const Pattern *PatternArena::var(Symbol Name) {
  return create<VarPattern>(Name);
}

const Pattern *PatternArena::app(term::OpId Op,
                                 std::vector<const Pattern *> Children) {
  assert(Op.isValid() && "app pattern with invalid op");
  return create<AppPattern>(Op, std::move(Children));
}

const Pattern *
PatternArena::funVarApp(Symbol FunVar, std::vector<const Pattern *> Children) {
  return create<FunVarAppPattern>(FunVar, std::move(Children));
}

const Pattern *PatternArena::alt(const Pattern *Left, const Pattern *Right) {
  return create<AltPattern>(Left, Right);
}

const Pattern *PatternArena::altList(std::span<const Pattern *const> Alts) {
  assert(!Alts.empty() && "altList of zero alternates");
  const Pattern *Acc = Alts.back();
  for (size_t I = Alts.size() - 1; I-- > 0;)
    Acc = alt(Alts[I], Acc);
  return Acc;
}

const Pattern *PatternArena::guarded(const Pattern *Sub,
                                     const GuardExpr *Guard) {
  assert(isBoolKind(Guard->kind()) && "guard must be boolean");
  return create<GuardedPattern>(Sub, Guard);
}

const Pattern *PatternArena::exists(Symbol Var, const Pattern *Sub) {
  return create<ExistsPattern>(Var, Sub);
}

const Pattern *PatternArena::existsFun(Symbol FunVar, const Pattern *Sub) {
  return create<ExistsFunPattern>(FunVar, Sub);
}

const Pattern *PatternArena::matchConstraint(const Pattern *Sub,
                                             const Pattern *Constraint,
                                             Symbol Var) {
  return create<MatchConstraintPattern>(Sub, Constraint, Var);
}

const Pattern *PatternArena::mu(Symbol Self, std::vector<Symbol> Params,
                                std::vector<Symbol> Args,
                                const Pattern *Body) {
  return create<MuPattern>(Self, std::move(Params), std::move(Args), Body);
}

const Pattern *PatternArena::recCall(Symbol Self, std::vector<Symbol> Args) {
  return create<RecCallPattern>(Self, std::move(Args));
}

//===----------------------------------------------------------------------===//
// Guard constructors
//===----------------------------------------------------------------------===//

const GuardExpr *PatternArena::intLit(int64_t Value) {
  auto Node = std::unique_ptr<GuardExpr>(new GuardExpr());
  Node->Kind = GuardKind::IntLit;
  Node->Value = Value;
  GuardStorage.emplace_back(std::move(Node));
  return GuardStorage.back().get();
}

const GuardExpr *PatternArena::attr(Symbol Var, Symbol Attr) {
  auto Node = std::unique_ptr<GuardExpr>(new GuardExpr());
  Node->Kind = GuardKind::Attr;
  Node->Name = Var;
  Node->AttrSym = Attr;
  GuardStorage.emplace_back(std::move(Node));
  return GuardStorage.back().get();
}

const GuardExpr *PatternArena::funAttr(Symbol FunVar, Symbol Attr) {
  auto Node = std::unique_ptr<GuardExpr>(new GuardExpr());
  Node->Kind = GuardKind::FunAttr;
  Node->Name = FunVar;
  Node->AttrSym = Attr;
  GuardStorage.emplace_back(std::move(Node));
  return GuardStorage.back().get();
}

const GuardExpr *PatternArena::opClassRef(Symbol ClassName) {
  auto Node = std::unique_ptr<GuardExpr>(new GuardExpr());
  Node->Kind = GuardKind::OpClassRef;
  Node->Name = ClassName;
  GuardStorage.emplace_back(std::move(Node));
  return GuardStorage.back().get();
}

const GuardExpr *PatternArena::opRef(Symbol OpName) {
  auto Node = std::unique_ptr<GuardExpr>(new GuardExpr());
  Node->Kind = GuardKind::OpRef;
  Node->Name = OpName;
  GuardStorage.emplace_back(std::move(Node));
  return GuardStorage.back().get();
}

const GuardExpr *PatternArena::binary(GuardKind Kind, const GuardExpr *Lhs,
                                      const GuardExpr *Rhs) {
  assert(Kind != GuardKind::Not && "use notExpr for negation");
  auto Node = std::unique_ptr<GuardExpr>(new GuardExpr());
  Node->Kind = Kind;
  Node->Lhs = Lhs;
  Node->Rhs = Rhs;
  GuardStorage.emplace_back(std::move(Node));
  return GuardStorage.back().get();
}

const GuardExpr *PatternArena::notExpr(const GuardExpr *Sub) {
  assert(isBoolKind(Sub->kind()) && "negation of arithmetic expression");
  auto Node = std::unique_ptr<GuardExpr>(new GuardExpr());
  Node->Kind = GuardKind::Not;
  Node->Lhs = Sub;
  GuardStorage.emplace_back(std::move(Node));
  return GuardStorage.back().get();
}

//===----------------------------------------------------------------------===//
// RHS constructors
//===----------------------------------------------------------------------===//

const RhsExpr *PatternArena::rhsVar(Symbol Name) {
  auto Node = std::unique_ptr<RhsExpr>(new RhsExpr());
  Node->Kind = RhsKind::VarRef;
  Node->Name = Name;
  RhsStorage.emplace_back(std::move(Node));
  return RhsStorage.back().get();
}

const RhsExpr *PatternArena::rhsApp(term::OpId Op,
                                    std::vector<const RhsExpr *> Children,
                                    std::vector<RhsExpr::AttrTemplate> Attrs) {
  assert(Op.isValid() && "rhs app with invalid op");
  auto Node = std::unique_ptr<RhsExpr>(new RhsExpr());
  Node->Kind = RhsKind::App;
  Node->Op = Op;
  Node->Children = std::move(Children);
  Node->Attrs = std::move(Attrs);
  RhsStorage.emplace_back(std::move(Node));
  return RhsStorage.back().get();
}

const RhsExpr *
PatternArena::rhsFunVarApp(Symbol FunVar,
                           std::vector<const RhsExpr *> Children,
                           std::vector<RhsExpr::AttrTemplate> Attrs) {
  auto Node = std::unique_ptr<RhsExpr>(new RhsExpr());
  Node->Kind = RhsKind::FunVarApp;
  Node->Name = FunVar;
  Node->Children = std::move(Children);
  Node->Attrs = std::move(Attrs);
  RhsStorage.emplace_back(std::move(Node));
  return RhsStorage.back().get();
}

//===----------------------------------------------------------------------===//
// μ unfolding (capture-avoiding one-step substitution)
//===----------------------------------------------------------------------===//

struct PatternArena::CloneEnv {
  /// Active variable renames: μ params → args, freshened ∃ binders.
  std::unordered_map<Symbol, Symbol> Rename;
  /// The μ being unfolded; recursive calls to this name get rewrapped.
  Symbol Self;
  const MuPattern *Mu = nullptr;

  Symbol renamed(Symbol S) const {
    auto It = Rename.find(S);
    return It == Rename.end() ? S : It->second;
  }
};

const GuardExpr *PatternArena::cloneGuard(const GuardExpr *G,
                                          const CloneEnv &Env) {
  switch (G->kind()) {
  case GuardKind::IntLit:
  case GuardKind::OpClassRef:
  case GuardKind::OpRef:
    return G; // closed leaves can be shared
  case GuardKind::Attr: {
    Symbol V = Env.renamed(G->varName());
    if (V == G->varName())
      return G;
    return attr(V, G->attrName());
  }
  case GuardKind::FunAttr: {
    Symbol V = Env.renamed(G->varName());
    if (V == G->varName())
      return G;
    return funAttr(V, G->attrName());
  }
  case GuardKind::Not: {
    const GuardExpr *Sub = cloneGuard(G->lhs(), Env);
    return Sub == G->lhs() ? G : notExpr(Sub);
  }
  default: {
    const GuardExpr *L = cloneGuard(G->lhs(), Env);
    const GuardExpr *R = cloneGuard(G->rhs(), Env);
    return (L == G->lhs() && R == G->rhs()) ? G : binary(G->kind(), L, R);
  }
  }
}

const Pattern *PatternArena::clone(const Pattern *P, CloneEnv &Env) {
  switch (P->kind()) {
  case PatternKind::Var: {
    const auto *VP = cast<VarPattern>(P);
    Symbol V = Env.renamed(VP->name());
    return V == VP->name() ? P : var(V);
  }
  case PatternKind::App: {
    const auto *AP = cast<AppPattern>(P);
    std::vector<const Pattern *> Children;
    Children.reserve(AP->arity());
    for (const Pattern *C : AP->children())
      Children.push_back(clone(C, Env));
    return app(AP->op(), std::move(Children));
  }
  case PatternKind::FunVarApp: {
    const auto *FP = cast<FunVarAppPattern>(P);
    std::vector<const Pattern *> Children;
    Children.reserve(FP->arity());
    for (const Pattern *C : FP->children())
      Children.push_back(clone(C, Env));
    return funVarApp(Env.renamed(FP->funVar()), std::move(Children));
  }
  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    return alt(clone(AP->left(), Env), clone(AP->right(), Env));
  }
  case PatternKind::Guarded: {
    const auto *GP = cast<GuardedPattern>(P);
    return guarded(clone(GP->sub(), Env), cloneGuard(GP->guard(), Env));
  }
  case PatternKind::Exists: {
    // Freshen the binder so that repeated unfoldings of the surrounding μ
    // do not collide on the same local-variable name, and so that an
    // incoming rename target cannot be captured.
    const auto *EP = cast<ExistsPattern>(P);
    Symbol Fresh = Symbol::fresh(EP->var().str());
    CloneEnv Inner = Env;
    Inner.Rename[EP->var()] = Fresh;
    return exists(Fresh, clone(EP->sub(), Inner));
  }
  case PatternKind::ExistsFun: {
    const auto *EP = cast<ExistsFunPattern>(P);
    Symbol Fresh = Symbol::fresh(EP->funVar().str());
    CloneEnv Inner = Env;
    Inner.Rename[EP->funVar()] = Fresh;
    return existsFun(Fresh, clone(EP->sub(), Inner));
  }
  case PatternKind::MatchConstraint: {
    const auto *MP = cast<MatchConstraintPattern>(P);
    return matchConstraint(clone(MP->sub(), Env),
                           clone(MP->constraint(), Env),
                           Env.renamed(MP->var()));
  }
  case PatternKind::Mu: {
    // A *different* μ nested inside the one being unfolded. Its params stay
    // (they are bound, globally unique, and never reach θ — they are always
    // renamed away at that μ's own unfold); its args are uses in the
    // current scope and get renamed; its body is cloned so free outer
    // variables inside it are renamed.
    const auto *MP = cast<MuPattern>(P);
    std::vector<Symbol> Args;
    Args.reserve(MP->args().size());
    for (Symbol A : MP->args())
      Args.push_back(Env.renamed(A));
    return mu(MP->self(),
              std::vector<Symbol>(MP->params().begin(), MP->params().end()),
              std::move(Args), clone(MP->body(), Env));
  }
  case PatternKind::RecCall: {
    const auto *RP = cast<RecCallPattern>(P);
    std::vector<Symbol> Args;
    Args.reserve(RP->args().size());
    for (Symbol A : RP->args())
      Args.push_back(Env.renamed(A));
    if (RP->self() == Env.Self) {
      // Rewrap: P(z̄) ↦ μP(x̄)[z̄].p — sharing the original body; its
      // binders are freshened lazily at its own unfold.
      return mu(Env.Self,
                std::vector<Symbol>(Env.Mu->params().begin(),
                                    Env.Mu->params().end()),
                std::move(Args), Env.Mu->body());
    }
    return recCall(RP->self(), std::move(Args));
  }
  }
  assert(false && "unknown pattern kind");
  return nullptr;
}

const GuardExpr *
PatternArena::importGuard(const GuardExpr *G,
                          const std::function<bool(Symbol)> &IsFunVar) {
  switch (G->kind()) {
  case GuardKind::IntLit:
    return intLit(G->intValue());
  case GuardKind::OpClassRef:
    return opClassRef(G->refName());
  case GuardKind::OpRef:
    return opRef(G->refName());
  case GuardKind::Attr:
  case GuardKind::FunAttr:
    if (IsFunVar(G->varName()))
      return funAttr(G->varName(), G->attrName());
    return attr(G->varName(), G->attrName());
  case GuardKind::Not:
    return notExpr(importGuard(G->lhs(), IsFunVar));
  default:
    return binary(G->kind(), importGuard(G->lhs(), IsFunVar),
                  importGuard(G->rhs(), IsFunVar));
  }
}

const Pattern *
PatternArena::instantiate(const Pattern *P,
                          const std::unordered_map<Symbol, Symbol> &Renames) {
  CloneEnv Env;
  Env.Rename = Renames;
  // Env.Self stays invalid: recursive calls inside P (to *other* μs) pass
  // through untouched; ∃ binders are freshened by clone().
  return clone(P, Env);
}

const Pattern *PatternArena::unfoldMu(const MuPattern *Mu) {
  CloneEnv Env;
  Env.Self = Mu->self();
  Env.Mu = Mu;
  auto Params = Mu->params();
  auto Args = Mu->args();
  for (size_t I = 0; I != Params.size(); ++I)
    if (Params[I] != Args[I])
      Env.Rename[Params[I]] = Args[I];
  return clone(Mu->body(), Env);
}
