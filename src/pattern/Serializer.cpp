//===- pattern/Serializer.cpp - Pattern binary format ----------------------===//

#include "pattern/Serializer.h"

#include "pattern/WellFormed.h"

#include <cstring>
#include <unordered_map>

using namespace pypm;
using namespace pypm::pattern;

namespace {

constexpr uint32_t kVersion = 1;
constexpr uint32_t kNoString = ~0u;

/// Ceiling on pattern/guard/RHS tree nesting while deserializing. Real
/// libraries are a few dozen levels deep at most; a crafted binary of
/// nested one-byte tags (Alt, Not) could otherwise recurse once per input
/// byte and overflow the stack.
constexpr unsigned kMaxNestingDepth = 1024;

// Tag bytes for pattern trees.
enum class PTag : uint8_t {
  Var = 1,
  App,
  FunVarApp,
  Alt,
  Guarded,
  Exists,
  ExistsFun,
  MatchConstraint,
  Mu,
  RecCall,
};

// Tag bytes for guard trees (mirrors GuardKind but kept separate so the
// on-disk format is independent of in-memory enum ordering).
enum class GTag : uint8_t {
  IntLit = 1,
  Attr,
  FunAttr,
  OpClassRef,
  OpRef,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Not,
};

// Tag bytes for RHS trees.
enum class RTag : uint8_t { VarRef = 1, App, FunVarApp };

GTag guardKindToTag(GuardKind K) {
  switch (K) {
  case GuardKind::IntLit:
    return GTag::IntLit;
  case GuardKind::Attr:
    return GTag::Attr;
  case GuardKind::FunAttr:
    return GTag::FunAttr;
  case GuardKind::OpClassRef:
    return GTag::OpClassRef;
  case GuardKind::OpRef:
    return GTag::OpRef;
  case GuardKind::Add:
    return GTag::Add;
  case GuardKind::Sub:
    return GTag::Sub;
  case GuardKind::Mul:
    return GTag::Mul;
  case GuardKind::Div:
    return GTag::Div;
  case GuardKind::Mod:
    return GTag::Mod;
  case GuardKind::Eq:
    return GTag::Eq;
  case GuardKind::Ne:
    return GTag::Ne;
  case GuardKind::Lt:
    return GTag::Lt;
  case GuardKind::Le:
    return GTag::Le;
  case GuardKind::Gt:
    return GTag::Gt;
  case GuardKind::Ge:
    return GTag::Ge;
  case GuardKind::And:
    return GTag::And;
  case GuardKind::Or:
    return GTag::Or;
  case GuardKind::Not:
    return GTag::Not;
  }
  assert(false && "unknown guard kind");
  return GTag::IntLit;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

class Writer {
public:
  explicit Writer(const term::Signature &Sig) : Sig(Sig) {}

  std::string run(const Library &Lib) {
    // Pre-pass: intern every string so the table is up front. Easiest is to
    // serialize bodies into a scratch buffer first, then emit header +
    // table + bodies.
    writeSignature();
    writeU32(static_cast<uint32_t>(Lib.PatternDefs.size()));
    for (const NamedPattern &NP : Lib.PatternDefs) {
      writeStr(NP.Name.str());
      writeSymList(NP.Params);
      writeSymList(NP.FunParams);
      writePattern(NP.Pat);
    }
    writeU32(static_cast<uint32_t>(Lib.Rules.size()));
    for (const RewriteRule &R : Lib.Rules) {
      writeStr(R.Name.str());
      writeStr(R.PatternName.str());
      writeU8(R.Guard ? 1 : 0);
      if (R.Guard)
        writeGuard(R.Guard);
      writeRhs(R.Rhs);
    }

    std::string Out;
    Out += "PYPM";
    appendU32(Out, kVersion);
    appendU32(Out, static_cast<uint32_t>(Strings.size()));
    for (const std::string &S : Strings) {
      appendU32(Out, static_cast<uint32_t>(S.size()));
      Out += S;
    }
    Out += Body;
    return Out;
  }

private:
  const term::Signature &Sig;
  std::string Body;
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> StringIds;

  static void appendU32(std::string &Out, uint32_t V) {
    char Buf[4];
    std::memcpy(Buf, &V, 4);
    Out.append(Buf, 4);
  }

  void writeU8(uint8_t V) { Body.push_back(static_cast<char>(V)); }
  void writeU32(uint32_t V) { appendU32(Body, V); }
  void writeI64(int64_t V) {
    char Buf[8];
    std::memcpy(Buf, &V, 8);
    Body.append(Buf, 8);
  }

  uint32_t internStr(std::string_view S) {
    std::string Key(S);
    auto It = StringIds.find(Key);
    if (It != StringIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.push_back(Key);
    StringIds.emplace(std::move(Key), Id);
    return Id;
  }

  void writeStr(std::string_view S) { writeU32(internStr(S)); }
  void writeSym(Symbol S) { writeStr(S.str()); }
  void writeSymList(std::span<const Symbol> Syms) {
    writeU32(static_cast<uint32_t>(Syms.size()));
    for (Symbol S : Syms)
      writeSym(S);
  }
  void writeSymList(const std::vector<Symbol> &Syms) {
    writeSymList(std::span<const Symbol>(Syms));
  }

  void writeOp(term::OpId Op) { writeSym(Sig.name(Op)); }

  void writeSignature() {
    writeU32(static_cast<uint32_t>(Sig.size()));
    for (const term::OpInfo &Info : Sig.ops()) {
      writeSym(Info.Name);
      writeU32(Info.Arity);
      writeU32(Info.Results);
      if (Info.OpClass.isValid())
        writeStr(Info.OpClass.str());
      else
        writeU32(kNoString);
      writeSymList(Info.AttrNames);
    }
  }

  void writePattern(const Pattern *P) {
    switch (P->kind()) {
    case PatternKind::Var:
      writeU8(static_cast<uint8_t>(PTag::Var));
      writeSym(cast<VarPattern>(P)->name());
      return;
    case PatternKind::App: {
      const auto *AP = cast<AppPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::App));
      writeOp(AP->op());
      writeU32(AP->arity());
      for (const Pattern *C : AP->children())
        writePattern(C);
      return;
    }
    case PatternKind::FunVarApp: {
      const auto *FP = cast<FunVarAppPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::FunVarApp));
      writeSym(FP->funVar());
      writeU32(FP->arity());
      for (const Pattern *C : FP->children())
        writePattern(C);
      return;
    }
    case PatternKind::Alt: {
      const auto *AP = cast<AltPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::Alt));
      writePattern(AP->left());
      writePattern(AP->right());
      return;
    }
    case PatternKind::Guarded: {
      const auto *GP = cast<GuardedPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::Guarded));
      writePattern(GP->sub());
      writeGuard(GP->guard());
      return;
    }
    case PatternKind::Exists: {
      const auto *EP = cast<ExistsPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::Exists));
      writeSym(EP->var());
      writePattern(EP->sub());
      return;
    }
    case PatternKind::ExistsFun: {
      const auto *EP = cast<ExistsFunPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::ExistsFun));
      writeSym(EP->funVar());
      writePattern(EP->sub());
      return;
    }
    case PatternKind::MatchConstraint: {
      const auto *MP = cast<MatchConstraintPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::MatchConstraint));
      writeSym(MP->var());
      writePattern(MP->sub());
      writePattern(MP->constraint());
      return;
    }
    case PatternKind::Mu: {
      const auto *MP = cast<MuPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::Mu));
      writeSym(MP->self());
      writeSymList(MP->params());
      writeSymList(MP->args());
      writePattern(MP->body());
      return;
    }
    case PatternKind::RecCall: {
      const auto *RP = cast<RecCallPattern>(P);
      writeU8(static_cast<uint8_t>(PTag::RecCall));
      writeSym(RP->self());
      writeSymList(RP->args());
      return;
    }
    }
  }

  void writeGuard(const GuardExpr *G) {
    writeU8(static_cast<uint8_t>(guardKindToTag(G->kind())));
    switch (G->kind()) {
    case GuardKind::IntLit:
      writeI64(G->intValue());
      return;
    case GuardKind::Attr:
    case GuardKind::FunAttr:
      writeSym(G->varName());
      writeSym(G->attrName());
      return;
    case GuardKind::OpClassRef:
    case GuardKind::OpRef:
      writeSym(G->refName());
      return;
    case GuardKind::Not:
      writeGuard(G->lhs());
      return;
    default:
      writeGuard(G->lhs());
      writeGuard(G->rhs());
      return;
    }
  }

  void writeRhs(const RhsExpr *R) {
    switch (R->kind()) {
    case RhsKind::VarRef:
      writeU8(static_cast<uint8_t>(RTag::VarRef));
      writeSym(R->var());
      return;
    case RhsKind::App:
    case RhsKind::FunVarApp:
      writeU8(static_cast<uint8_t>(R->kind() == RhsKind::App
                                       ? RTag::App
                                       : RTag::FunVarApp));
      if (R->kind() == RhsKind::App)
        writeOp(R->op());
      else
        writeSym(R->funVar());
      writeU32(static_cast<uint32_t>(R->attrTemplates().size()));
      for (const RhsExpr::AttrTemplate &A : R->attrTemplates()) {
        writeSym(A.Key);
        writeGuard(A.Value);
      }
      writeU32(static_cast<uint32_t>(R->children().size()));
      for (const RhsExpr *C : R->children())
        writeRhs(C);
      return;
    }
  }
};

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(std::string_view Bytes, term::Signature &Sig,
         DiagnosticEngine &Diags)
      : Bytes(Bytes), Sig(Sig), Diags(Diags) {}

  std::unique_ptr<Library> run() {
    if (Bytes.size() < 8 || Bytes.substr(0, 4) != "PYPM")
      return fail("not a PyPM pattern binary (bad magic)");
    Pos = 4;
    uint32_t Version;
    if (!readU32(Version))
      return nullptr;
    if (Version != kVersion)
      return fail("unsupported pattern binary version " +
                  std::to_string(Version));

    uint32_t NumStrings;
    if (!readU32(NumStrings))
      return nullptr;
    if (NumStrings > Bytes.size()) // each entry needs ≥4 length bytes
      return fail("implausible string table size");
    Strings.reserve(NumStrings);
    for (uint32_t I = 0; I != NumStrings; ++I) {
      uint32_t Len;
      if (!readU32(Len))
        return nullptr;
      if (Pos + Len > Bytes.size())
        return fail("truncated string table");
      Strings.emplace_back(Bytes.substr(Pos, Len));
      Pos += Len;
    }

    if (!readSignature())
      return nullptr;

    auto Lib = std::make_unique<Library>();
    uint32_t NumPatterns;
    if (!readU32(NumPatterns))
      return nullptr;
    for (uint32_t I = 0; I != NumPatterns; ++I) {
      NamedPattern NP;
      if (!readSym(NP.Name) || !readSymList(NP.Params) ||
          !readSymList(NP.FunParams))
        return nullptr;
      NP.Pat = readPattern(Lib->Arena);
      if (!NP.Pat)
        return nullptr;
      Lib->PatternDefs.push_back(std::move(NP));
    }

    uint32_t NumRules;
    if (!readU32(NumRules))
      return nullptr;
    for (uint32_t I = 0; I != NumRules; ++I) {
      RewriteRule R;
      uint8_t HasGuard;
      if (!readSym(R.Name) || !readSym(R.PatternName) || !readU8(HasGuard))
        return nullptr;
      if (HasGuard) {
        R.Guard = readGuard(Lib->Arena);
        if (!R.Guard)
          return nullptr;
      }
      R.Rhs = readRhs(Lib->Arena);
      if (!R.Rhs)
        return nullptr;
      Lib->Rules.push_back(R);
    }

    if (Pos != Bytes.size())
      return fail("trailing bytes after pattern binary payload");

    // Structural validity is an input property here, not an internal
    // invariant: a byte-wise plausible binary can still encode trees the
    // match machine asserts on (bare recursive calls, duplicate binders,
    // unknown rule targets). Run the same checks the DSL pipeline runs.
    if (!checkWellFormed(*Lib, Sig, Diags)) {
      Failed = true;
      return nullptr;
    }
    return Lib;
  }

private:
  std::string_view Bytes;
  term::Signature &Sig;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  std::vector<std::string> Strings;
  bool Failed = false;
  unsigned Depth = 0;

  /// RAII depth tracker for the three mutually recursive tree readers.
  /// Construction past the ceiling marks the reader failed; callers test
  /// \c ok() and bail before recursing further.
  class DepthScope {
  public:
    explicit DepthScope(Reader &R) : R(R) {
      if (++R.Depth > kMaxNestingDepth) {
        R.failB("nesting deeper than " + std::to_string(kMaxNestingDepth) +
                " levels");
        Ok = false;
      }
    }
    ~DepthScope() { --R.Depth; }
    bool ok() const { return Ok; }

  private:
    Reader &R;
    bool Ok = true;
  };

  std::unique_ptr<Library> fail(std::string Msg) {
    if (!Failed)
      Diags.error(SourceLoc(), "pattern binary: " + std::move(Msg));
    Failed = true;
    return nullptr;
  }
  bool failB(std::string Msg) {
    fail(std::move(Msg));
    return false;
  }

  bool readU8(uint8_t &Out) {
    if (Pos + 1 > Bytes.size())
      return failB("unexpected end of input");
    Out = static_cast<uint8_t>(Bytes[Pos++]);
    return true;
  }
  bool readU32(uint32_t &Out) {
    if (Pos + 4 > Bytes.size())
      return failB("unexpected end of input");
    std::memcpy(&Out, Bytes.data() + Pos, 4);
    Pos += 4;
    return true;
  }
  bool readI64(int64_t &Out) {
    if (Pos + 8 > Bytes.size())
      return failB("unexpected end of input");
    std::memcpy(&Out, Bytes.data() + Pos, 8);
    Pos += 8;
    return true;
  }
  bool readStr(std::string_view &Out) {
    uint32_t Id;
    if (!readU32(Id))
      return false;
    if (Id >= Strings.size())
      return failB("string id out of range");
    Out = Strings[Id];
    return true;
  }
  bool readSym(Symbol &Out) {
    std::string_view S;
    if (!readStr(S))
      return false;
    Out = Symbol::intern(S);
    return true;
  }
  bool readSymList(std::vector<Symbol> &Out) {
    uint32_t N;
    if (!readU32(N))
      return false;
    if (N > Bytes.size()) // cheap sanity bound against corrupt counts
      return failB("implausible list length");
    Out.clear();
    Out.reserve(N);
    for (uint32_t I = 0; I != N; ++I) {
      Symbol S;
      if (!readSym(S))
        return false;
      Out.push_back(S);
    }
    return true;
  }

  bool readOp(term::OpId &Out) {
    Symbol Name;
    if (!readSym(Name))
      return false;
    Out = Sig.lookup(Name);
    if (!Out.isValid())
      return failB("pattern references undeclared operator '" +
                   std::string(Name.str()) + "'");
    return true;
  }

  bool readSignature() {
    uint32_t NumOps;
    if (!readU32(NumOps))
      return false;
    for (uint32_t I = 0; I != NumOps; ++I) {
      Symbol Name;
      uint32_t Arity, Results, ClassId;
      if (!readSym(Name) || !readU32(Arity) || !readU32(Results))
        return false;
      // App nodes later reserve arity-many children; a corrupt count must
      // not turn into a multi-gigabyte allocation before EOF is noticed.
      if (Arity > Bytes.size() || Results > Bytes.size())
        return failB("implausible operator arity");
      if (!readU32(ClassId))
        return false;
      std::string_view Class;
      if (ClassId != kNoString) {
        if (ClassId >= Strings.size())
          return failB("string id out of range");
        Class = Strings[ClassId];
      }
      std::vector<Symbol> AttrNames;
      if (!readSymList(AttrNames))
        return false;
      term::OpId Existing = Sig.lookup(Name);
      if (Existing.isValid()) {
        if (Sig.arity(Existing) != Arity)
          return failB("operator '" + std::string(Name.str()) +
                       "' redeclared with arity " + std::to_string(Arity) +
                       " (have " + std::to_string(Sig.arity(Existing)) + ")");
        continue;
      }
      Sig.addOp(Name.str(), Arity, Results, Class, std::move(AttrNames));
    }
    return true;
  }

  const Pattern *readPattern(PatternArena &A) {
    DepthScope Scope(*this);
    uint8_t TagByte;
    if (!Scope.ok() || !readU8(TagByte))
      return nullptr;
    switch (static_cast<PTag>(TagByte)) {
    case PTag::Var: {
      Symbol Name;
      if (!readSym(Name))
        return nullptr;
      return A.var(Name);
    }
    case PTag::App: {
      term::OpId Op;
      uint32_t N;
      if (!readOp(Op) || !readU32(N))
        return nullptr;
      if (N != Sig.arity(Op)) {
        failB("App arity mismatch");
        return nullptr;
      }
      std::vector<const Pattern *> Children;
      Children.reserve(N);
      for (uint32_t I = 0; I != N; ++I) {
        const Pattern *C = readPattern(A);
        if (!C)
          return nullptr;
        Children.push_back(C);
      }
      return A.app(Op, std::move(Children));
    }
    case PTag::FunVarApp: {
      Symbol FunVar;
      uint32_t N;
      if (!readSym(FunVar) || !readU32(N))
        return nullptr;
      if (N > Bytes.size()) {
        failB("implausible arity");
        return nullptr;
      }
      std::vector<const Pattern *> Children;
      Children.reserve(N);
      for (uint32_t I = 0; I != N; ++I) {
        const Pattern *C = readPattern(A);
        if (!C)
          return nullptr;
        Children.push_back(C);
      }
      return A.funVarApp(FunVar, std::move(Children));
    }
    case PTag::Alt: {
      const Pattern *L = readPattern(A);
      if (!L)
        return nullptr;
      const Pattern *R = readPattern(A);
      if (!R)
        return nullptr;
      return A.alt(L, R);
    }
    case PTag::Guarded: {
      const Pattern *Sub = readPattern(A);
      if (!Sub)
        return nullptr;
      const GuardExpr *G = readGuard(A);
      if (!G)
        return nullptr;
      if (!isBoolKind(G->kind())) {
        failB("guard is not boolean");
        return nullptr;
      }
      return A.guarded(Sub, G);
    }
    case PTag::Exists: {
      Symbol Var;
      if (!readSym(Var))
        return nullptr;
      const Pattern *Sub = readPattern(A);
      if (!Sub)
        return nullptr;
      return A.exists(Var, Sub);
    }
    case PTag::ExistsFun: {
      Symbol Var;
      if (!readSym(Var))
        return nullptr;
      const Pattern *Sub = readPattern(A);
      if (!Sub)
        return nullptr;
      return A.existsFun(Var, Sub);
    }
    case PTag::MatchConstraint: {
      Symbol Var;
      if (!readSym(Var))
        return nullptr;
      const Pattern *Sub = readPattern(A);
      if (!Sub)
        return nullptr;
      const Pattern *Constraint = readPattern(A);
      if (!Constraint)
        return nullptr;
      return A.matchConstraint(Sub, Constraint, Var);
    }
    case PTag::Mu: {
      Symbol Self;
      std::vector<Symbol> Params, Args;
      if (!readSym(Self) || !readSymList(Params) || !readSymList(Args))
        return nullptr;
      if (Params.size() != Args.size()) {
        failB("mu params/args length mismatch");
        return nullptr;
      }
      const Pattern *Body = readPattern(A);
      if (!Body)
        return nullptr;
      return A.mu(Self, std::move(Params), std::move(Args), Body);
    }
    case PTag::RecCall: {
      Symbol Self;
      std::vector<Symbol> Args;
      if (!readSym(Self) || !readSymList(Args))
        return nullptr;
      return A.recCall(Self, std::move(Args));
    }
    }
    failB("unknown pattern tag " + std::to_string(TagByte));
    return nullptr;
  }

  const GuardExpr *readGuard(PatternArena &A) {
    DepthScope Scope(*this);
    uint8_t TagByte;
    if (!Scope.ok() || !readU8(TagByte))
      return nullptr;
    switch (static_cast<GTag>(TagByte)) {
    case GTag::IntLit: {
      int64_t V;
      if (!readI64(V))
        return nullptr;
      return A.intLit(V);
    }
    case GTag::Attr:
    case GTag::FunAttr: {
      Symbol Var, Attr;
      if (!readSym(Var) || !readSym(Attr))
        return nullptr;
      return static_cast<GTag>(TagByte) == GTag::Attr ? A.attr(Var, Attr)
                                                      : A.funAttr(Var, Attr);
    }
    case GTag::OpClassRef: {
      Symbol Name;
      if (!readSym(Name))
        return nullptr;
      return A.opClassRef(Name);
    }
    case GTag::OpRef: {
      Symbol Name;
      if (!readSym(Name))
        return nullptr;
      return A.opRef(Name);
    }
    case GTag::Not: {
      const GuardExpr *Sub = readGuard(A);
      if (!Sub)
        return nullptr;
      if (!isBoolKind(Sub->kind())) {
        failB("negation of arithmetic expression");
        return nullptr;
      }
      return A.notExpr(Sub);
    }
    default: {
      GuardKind K;
      switch (static_cast<GTag>(TagByte)) {
      case GTag::Add:
        K = GuardKind::Add;
        break;
      case GTag::Sub:
        K = GuardKind::Sub;
        break;
      case GTag::Mul:
        K = GuardKind::Mul;
        break;
      case GTag::Div:
        K = GuardKind::Div;
        break;
      case GTag::Mod:
        K = GuardKind::Mod;
        break;
      case GTag::Eq:
        K = GuardKind::Eq;
        break;
      case GTag::Ne:
        K = GuardKind::Ne;
        break;
      case GTag::Lt:
        K = GuardKind::Lt;
        break;
      case GTag::Le:
        K = GuardKind::Le;
        break;
      case GTag::Gt:
        K = GuardKind::Gt;
        break;
      case GTag::Ge:
        K = GuardKind::Ge;
        break;
      case GTag::And:
        K = GuardKind::And;
        break;
      case GTag::Or:
        K = GuardKind::Or;
        break;
      default:
        failB("unknown guard tag " + std::to_string(TagByte));
        return nullptr;
      }
      const GuardExpr *L = readGuard(A);
      if (!L)
        return nullptr;
      const GuardExpr *R = readGuard(A);
      if (!R)
        return nullptr;
      return A.binary(K, L, R);
    }
    }
  }

  const RhsExpr *readRhs(PatternArena &A) {
    DepthScope Scope(*this);
    uint8_t TagByte;
    if (!Scope.ok() || !readU8(TagByte))
      return nullptr;
    switch (static_cast<RTag>(TagByte)) {
    case RTag::VarRef: {
      Symbol Name;
      if (!readSym(Name))
        return nullptr;
      return A.rhsVar(Name);
    }
    case RTag::App:
    case RTag::FunVarApp: {
      term::OpId Op;
      Symbol FunVar;
      bool IsApp = static_cast<RTag>(TagByte) == RTag::App;
      if (IsApp) {
        if (!readOp(Op))
          return nullptr;
      } else if (!readSym(FunVar)) {
        return nullptr;
      }
      uint32_t NumAttrs;
      if (!readU32(NumAttrs))
        return nullptr;
      std::vector<RhsExpr::AttrTemplate> Attrs;
      for (uint32_t I = 0; I != NumAttrs; ++I) {
        Symbol Key;
        if (!readSym(Key))
          return nullptr;
        const GuardExpr *V = readGuard(A);
        if (!V)
          return nullptr;
        Attrs.push_back({Key, V});
      }
      uint32_t NumChildren;
      if (!readU32(NumChildren))
        return nullptr;
      std::vector<const RhsExpr *> Children;
      for (uint32_t I = 0; I != NumChildren; ++I) {
        const RhsExpr *C = readRhs(A);
        if (!C)
          return nullptr;
        Children.push_back(C);
      }
      if (IsApp) {
        if (NumChildren != Sig.arity(Op)) {
          failB("RHS App arity mismatch");
          return nullptr;
        }
        return A.rhsApp(Op, std::move(Children), std::move(Attrs));
      }
      return A.rhsFunVarApp(FunVar, std::move(Children), std::move(Attrs));
    }
    }
    failB("unknown rhs tag " + std::to_string(TagByte));
    return nullptr;
  }
};

} // namespace

std::string pypm::pattern::serializeLibrary(const Library &Lib,
                                            const term::Signature &Sig) {
  return Writer(Sig).run(Lib);
}

std::unique_ptr<Library>
pypm::pattern::deserializeLibrary(std::string_view Bytes, term::Signature &Sig,
                                  DiagnosticEngine &Diags) {
  return Reader(Bytes, Sig, Diags).run();
}
