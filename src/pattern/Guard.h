//===- pattern/Guard.h - Guard expression AST -------------------*- C++ -*-===//
///
/// \file
/// Guards g and arithmetic expressions e of CorePyPM (paper Fig. 8):
///
///   e ::= n | x.α | e+e | e-e | e*e | e/e | e%e
///   g ::= e=e | e≠e | e<e | e≤e | e>e | e≥e | g∧g | g∨g | ¬g
///
/// plus the function-variable extension required by Fig. 14: `F.op_class`,
/// `F.arity`, `F.op_id` where F is a function variable, interpreted through
/// the function substitution φ. Literals referring to operator classes and
/// operator names are distinct node kinds so the serializer can persist
/// spellings instead of process-local symbol ids.
///
/// Evaluation is over a GuardEnv — an abstract view of ⟨θ, φ⟩ — so this
/// library does not depend on the matcher.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PATTERN_GUARD_H
#define PYPM_PATTERN_GUARD_H

#include "term/Term.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

namespace pypm::pattern {

/// Abstract evaluation environment: the ⟨θ, φ⟩ pair plus the attribute
/// interpretation ⟦·⟧ (provided by the term arena).
class GuardEnv {
public:
  virtual ~GuardEnv();
  /// θ(x), or nullopt if unbound.
  virtual std::optional<term::TermRef> lookupVar(Symbol Var) const = 0;
  /// φ(F), or nullopt if unbound.
  virtual std::optional<term::OpId> lookupFunVar(Symbol FunVar) const = 0;
  /// Arena providing ⟦α⟧(t) and the signature.
  virtual const term::TermArena &arena() const = 0;
};

enum class GuardKind : uint8_t {
  // Arithmetic expressions.
  IntLit,      ///< n
  Attr,        ///< x.α — attribute of the term bound to x
  FunAttr,     ///< F.α — attribute of the operator bound to F
  OpClassRef,  ///< opclass("name") literal; evaluates to the class symbol id
  OpRef,       ///< op("Name") literal; evaluates to the operator's index
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  // Boolean guards.
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Not,
};

/// Whether nodes of this kind denote integers (arith level) or booleans.
inline bool isArithKind(GuardKind K) { return K <= GuardKind::Mod; }
inline bool isBoolKind(GuardKind K) { return !isArithKind(K); }

/// Outcome of evaluating a guard. Distinguishes "false" from "stuck"
/// (unbound variable / unknown attribute): the algorithmic semantics treats
/// a stuck guard as a failed match (backtrack), but diagnostics report it.
enum class GuardStatus : uint8_t { Ok, UnboundVar, UnknownAttr, DivByZero };

struct GuardEval {
  GuardStatus Status = GuardStatus::Ok;
  int64_t Value = 0; ///< integer value, or 0/1 for booleans

  bool ok() const { return Status == GuardStatus::Ok; }
  bool truthy() const { return ok() && Value != 0; }
};

/// Immutable guard-expression node. Allocated in a PatternArena.
class GuardExpr {
public:
  GuardKind kind() const { return Kind; }

  // --- Leaf payloads (valid per kind; asserted) ---
  int64_t intValue() const {
    assert(Kind == GuardKind::IntLit);
    return Value;
  }
  Symbol varName() const {
    assert(Kind == GuardKind::Attr || Kind == GuardKind::FunAttr);
    return Name;
  }
  Symbol attrName() const {
    assert(Kind == GuardKind::Attr || Kind == GuardKind::FunAttr);
    return AttrSym;
  }
  Symbol refName() const {
    assert(Kind == GuardKind::OpClassRef || Kind == GuardKind::OpRef);
    return Name;
  }

  const GuardExpr *lhs() const { return Lhs; }
  const GuardExpr *rhs() const { return Rhs; }

  /// Evaluates an arithmetic expression. Precondition: isArithKind(kind()).
  GuardEval evalInt(const GuardEnv &Env) const;
  /// Evaluates a boolean guard. Precondition: isBoolKind(kind()).
  GuardEval evalBool(const GuardEnv &Env) const;

  std::string toString() const;

private:
  friend class PatternArena;
  GuardExpr() = default;

  GuardKind Kind = GuardKind::IntLit;
  int64_t Value = 0;
  Symbol Name;    // variable / funvar / class / op name
  Symbol AttrSym; // attribute name
  const GuardExpr *Lhs = nullptr;
  const GuardExpr *Rhs = nullptr;
};

} // namespace pypm::pattern

#endif // PYPM_PATTERN_GUARD_H
