//===- pattern/Pattern.h - CorePyPM pattern AST -----------------*- C++ -*-===//
///
/// \file
/// The full CorePyPM pattern grammar (paper Fig. 15):
///
///   p ::= x                               Var
///       | f(p1, …, pn)                    App           (arity f = n)
///       | p ‖ p'                          Alt
///       | p ; guard(g)                    Guarded
///       | ∃x. p                           Exists
///       | p ; (p' ≈ x)                    MatchConstraint
///       | F(p1, …, pn)                    FunVarApp
///       | μP(x1,…,xn)[y1,…,yn]. p         Mu
///       | P(y1, …, yn)                    RecCall
///
/// plus the replacement templates (RhsExpr) used by rewrite rules and the
/// arena that owns all three node families (patterns, guards, RHS).
///
/// All nodes are immutable and allocated in a PatternArena; they are shared
/// freely (a pattern is a DAG in memory even though it denotes a tree).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PATTERN_PATTERN_H
#define PYPM_PATTERN_PATTERN_H

#include "pattern/Guard.h"
#include "support/Diagnostics.h"
#include "term/Signature.h"

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pypm::pattern {

class PatternArena;

enum class PatternKind : uint8_t {
  Var,
  App,
  FunVarApp,
  Alt,
  Guarded,
  Exists,
  ExistsFun,
  MatchConstraint,
  Mu,
  RecCall,
};

/// Base class for pattern nodes. Kind-discriminated (LLVM-style); no RTTI.
class Pattern {
public:
  PatternKind kind() const { return Kind; }
  std::string toString(const term::Signature &Sig) const;

protected:
  explicit Pattern(PatternKind Kind) : Kind(Kind) {}
  ~Pattern() = default;

private:
  PatternKind Kind;
};

/// LLVM-ish cast helpers (no vtables; kinds checked with classof).
template <typename T> bool isa(const Pattern *P) { return T::classof(P); }
template <typename T> const T *cast(const Pattern *P) {
  assert(T::classof(P) && "bad pattern cast");
  return static_cast<const T *>(P);
}
template <typename T> const T *dyn_cast(const Pattern *P) {
  return T::classof(P) ? static_cast<const T *>(P) : nullptr;
}

/// x — a pattern variable.
class VarPattern final : public Pattern {
public:
  Symbol name() const { return Name; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::Var;
  }

private:
  friend class PatternArena;
  explicit VarPattern(Symbol Name) : Pattern(PatternKind::Var), Name(Name) {}
  Symbol Name;
};

/// f(p1, …, pn) — application of a concrete operator.
class AppPattern final : public Pattern {
public:
  term::OpId op() const { return Op; }
  std::span<const Pattern *const> children() const { return Children; }
  unsigned arity() const { return static_cast<unsigned>(Children.size()); }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::App;
  }

private:
  friend class PatternArena;
  AppPattern(term::OpId Op, std::vector<const Pattern *> Children)
      : Pattern(PatternKind::App), Op(Op), Children(std::move(Children)) {}
  term::OpId Op;
  std::vector<const Pattern *> Children;
};

/// F(p1, …, pn) — application of a function variable (§3.4).
class FunVarAppPattern final : public Pattern {
public:
  Symbol funVar() const { return FunVar; }
  std::span<const Pattern *const> children() const { return Children; }
  unsigned arity() const { return static_cast<unsigned>(Children.size()); }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::FunVarApp;
  }

private:
  friend class PatternArena;
  FunVarAppPattern(Symbol FunVar, std::vector<const Pattern *> Children)
      : Pattern(PatternKind::FunVarApp), FunVar(FunVar),
        Children(std::move(Children)) {}
  Symbol FunVar;
  std::vector<const Pattern *> Children;
};

/// p ‖ p' — pattern alternate; left tried first (§2.1, §3.1).
class AltPattern final : public Pattern {
public:
  const Pattern *left() const { return Left; }
  const Pattern *right() const { return Right; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::Alt;
  }

private:
  friend class PatternArena;
  AltPattern(const Pattern *Left, const Pattern *Right)
      : Pattern(PatternKind::Alt), Left(Left), Right(Right) {}
  const Pattern *Left, *Right;
};

/// p ; guard(g) — guarded pattern (§3.2).
class GuardedPattern final : public Pattern {
public:
  const Pattern *sub() const { return Sub; }
  const GuardExpr *guard() const { return Guard; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::Guarded;
  }

private:
  friend class PatternArena;
  GuardedPattern(const Pattern *Sub, const GuardExpr *Guard)
      : Pattern(PatternKind::Guarded), Sub(Sub), Guard(Guard) {}
  const Pattern *Sub;
  const GuardExpr *Guard;
};

/// ∃x. p — existential (PyPM's var(), §3.3). For the overall match to
/// succeed, x must end up bound (the VM's checkName action).
class ExistsPattern final : public Pattern {
public:
  Symbol var() const { return Var; }
  const Pattern *sub() const { return Sub; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::Exists;
  }

private:
  friend class PatternArena;
  ExistsPattern(Symbol Var, const Pattern *Sub)
      : Pattern(PatternKind::Exists), Var(Var), Sub(Sub) {}
  Symbol Var;
  const Pattern *Sub;
};

/// ∃F. p over a *function* variable — PyPM's local `F = Op(n, m)`
/// declaration (Fig. 14). The Python frontend creates a fresh function
/// variable on every (re-)execution of a pattern body, so a recursive
/// pattern's local operator variables must be freshened per unfolding;
/// making the binder explicit in the core calculus gives μ-unfolding the
/// hook to do that. Semantics mirror ∃x.p with φ in place of θ.
class ExistsFunPattern final : public Pattern {
public:
  Symbol funVar() const { return FunVar; }
  const Pattern *sub() const { return Sub; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::ExistsFun;
  }

private:
  friend class PatternArena;
  ExistsFunPattern(Symbol FunVar, const Pattern *Sub)
      : Pattern(PatternKind::ExistsFun), FunVar(FunVar), Sub(Sub) {}
  Symbol FunVar;
  const Pattern *Sub;
};

/// p ; (p' ≈ x) — match constraint (PyPM's `x <= p'`, §3.3): after p
/// matches, the term bound to x must itself match p'.
class MatchConstraintPattern final : public Pattern {
public:
  const Pattern *sub() const { return Sub; }
  const Pattern *constraint() const { return Constraint; }
  Symbol var() const { return Var; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::MatchConstraint;
  }

private:
  friend class PatternArena;
  MatchConstraintPattern(const Pattern *Sub, const Pattern *Constraint,
                         Symbol Var)
      : Pattern(PatternKind::MatchConstraint), Sub(Sub),
        Constraint(Constraint), Var(Var) {}
  const Pattern *Sub;
  const Pattern *Constraint;
  Symbol Var;
};

/// μP(x1,…,xn)[y1,…,yn]. p — recursive pattern (§3.5). Params are the
/// formal names used inside the body; Args are the names they are
/// instantiated with at this use. Matching unfolds one step:
/// p[μP(x̄)/P][yᵢ/xᵢ], freshening ∃-binders in the copy (capture-avoiding
/// substitution; see PatternArena::unfoldMu).
class MuPattern final : public Pattern {
public:
  Symbol self() const { return Self; }
  std::span<const Symbol> params() const { return Params; }
  std::span<const Symbol> args() const { return Args; }
  const Pattern *body() const { return Body; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::Mu;
  }

private:
  friend class PatternArena;
  MuPattern(Symbol Self, std::vector<Symbol> Params, std::vector<Symbol> Args,
            const Pattern *Body)
      : Pattern(PatternKind::Mu), Self(Self), Params(std::move(Params)),
        Args(std::move(Args)), Body(Body) {
    assert(this->Params.size() == this->Args.size());
  }
  Symbol Self;
  std::vector<Symbol> Params;
  std::vector<Symbol> Args;
  const Pattern *Body;
};

/// P(y1, …, yn) — recursive pattern call, valid only inside the body of the
/// μ that binds P.
class RecCallPattern final : public Pattern {
public:
  Symbol self() const { return Self; }
  std::span<const Symbol> args() const { return Args; }
  static bool classof(const Pattern *P) {
    return P->kind() == PatternKind::RecCall;
  }

private:
  friend class PatternArena;
  RecCallPattern(Symbol Self, std::vector<Symbol> Args)
      : Pattern(PatternKind::RecCall), Self(Self), Args(std::move(Args)) {}
  Symbol Self;
  std::vector<Symbol> Args;
};

//===----------------------------------------------------------------------===//
// Replacement templates (rule right-hand sides)
//===----------------------------------------------------------------------===//

enum class RhsKind : uint8_t { VarRef, App, FunVarApp };

/// A replacement template: the "return expression" of an @rule body. Built
/// into a concrete term/graph under a match substitution ⟨θ, φ⟩. Node
/// attributes are arithmetic guard expressions evaluated under the same
/// substitution (so a rule can, e.g., copy `x.stride` onto the fused node or
/// record `F.op_id` as the epilog selector).
class RhsExpr {
public:
  RhsKind kind() const { return Kind; }

  Symbol var() const {
    assert(Kind == RhsKind::VarRef);
    return Name;
  }
  Symbol funVar() const {
    assert(Kind == RhsKind::FunVarApp);
    return Name;
  }
  term::OpId op() const {
    assert(Kind == RhsKind::App);
    return Op;
  }
  std::span<const RhsExpr *const> children() const { return Children; }

  struct AttrTemplate {
    Symbol Key;
    const GuardExpr *Value;
  };
  std::span<const AttrTemplate> attrTemplates() const { return Attrs; }

  std::string toString(const term::Signature &Sig) const;

private:
  friend class PatternArena;
  RhsExpr() = default;

  RhsKind Kind = RhsKind::VarRef;
  Symbol Name;
  term::OpId Op;
  std::vector<const RhsExpr *> Children;
  std::vector<AttrTemplate> Attrs;
};

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

/// Owns pattern, guard, and RHS nodes. Nodes live as long as the arena.
class PatternArena {
public:
  PatternArena() = default;
  PatternArena(const PatternArena &) = delete;
  PatternArena &operator=(const PatternArena &) = delete;
  PatternArena(PatternArena &&) = default;
  PatternArena &operator=(PatternArena &&) = default;

  // --- Pattern constructors ---
  const Pattern *var(Symbol Name);
  const Pattern *var(std::string_view Name) {
    return var(Symbol::intern(Name));
  }
  const Pattern *app(term::OpId Op, std::vector<const Pattern *> Children);
  const Pattern *funVarApp(Symbol FunVar,
                           std::vector<const Pattern *> Children);
  const Pattern *alt(const Pattern *Left, const Pattern *Right);
  /// Folds a list of alternates right-associatively; requires nonempty.
  const Pattern *altList(std::span<const Pattern *const> Alts);
  const Pattern *guarded(const Pattern *Sub, const GuardExpr *Guard);
  const Pattern *exists(Symbol Var, const Pattern *Sub);
  const Pattern *existsFun(Symbol FunVar, const Pattern *Sub);
  const Pattern *matchConstraint(const Pattern *Sub, const Pattern *Constraint,
                                 Symbol Var);
  const Pattern *mu(Symbol Self, std::vector<Symbol> Params,
                    std::vector<Symbol> Args, const Pattern *Body);
  const Pattern *recCall(Symbol Self, std::vector<Symbol> Args);

  // --- Guard constructors ---
  const GuardExpr *intLit(int64_t Value);
  const GuardExpr *attr(Symbol Var, Symbol Attr);
  const GuardExpr *funAttr(Symbol FunVar, Symbol Attr);
  const GuardExpr *opClassRef(Symbol ClassName);
  const GuardExpr *opRef(Symbol OpName);
  const GuardExpr *binary(GuardKind Kind, const GuardExpr *Lhs,
                          const GuardExpr *Rhs);
  const GuardExpr *notExpr(const GuardExpr *Sub);

  // --- RHS constructors ---
  const RhsExpr *rhsVar(Symbol Name);
  const RhsExpr *rhsApp(term::OpId Op, std::vector<const RhsExpr *> Children,
                        std::vector<RhsExpr::AttrTemplate> Attrs = {});
  const RhsExpr *rhsFunVarApp(Symbol FunVar,
                              std::vector<const RhsExpr *> Children,
                              std::vector<RhsExpr::AttrTemplate> Attrs = {});

  /// Clones \p G into this arena, rewriting term-attribute accesses `v.α`
  /// into function-attribute accesses when \p IsFunVar(v) holds. Used by
  /// the DSL frontend, which cannot classify identifiers while parsing.
  const GuardExpr *importGuard(const GuardExpr *G,
                               const std::function<bool(Symbol)> &IsFunVar);

  /// Clones \p P into this arena applying the variable/function-variable
  /// renames in \p Renames and freshening every ∃ binder in the copy.
  /// This is the instantiation step used when a pattern definition is
  /// inlined at a reference site (DSL lowering).
  const Pattern *
  instantiate(const Pattern *P,
              const std::unordered_map<Symbol, Symbol> &Renames);

  /// One-step unfolding of a μ pattern (ST-Match-Mu / P-Mu):
  ///   p' = p[μP(x̄)/P][yᵢ/xᵢ]
  /// implemented as a capture-avoiding clone: parameter occurrences are
  /// renamed to the μ's args, recursive calls P(z̄) are rewrapped as
  /// μP(x̄)[z̄].p sharing the original body, and every ∃-binder in the copy
  /// is freshened (Symbol::fresh) so repeated unfoldings of patterns like
  /// Fig. 4's do not collide on their local variables.
  const Pattern *unfoldMu(const MuPattern *Mu);

  size_t numPatternNodes() const { return Patterns.size(); }

private:
  template <typename T, typename... Args> T *create(Args &&...CtorArgs);

  struct CloneEnv;
  const Pattern *clone(const Pattern *P, CloneEnv &Env);
  const GuardExpr *cloneGuard(const GuardExpr *G, const CloneEnv &Env);

  // shared_ptr<void> captures each node's concrete deleter, so the
  // protected non-virtual base destructor is never used for deletion.
  std::deque<std::shared_ptr<void>> PatternStorage;
  std::deque<std::unique_ptr<GuardExpr>> GuardStorage;
  std::deque<std::unique_ptr<RhsExpr>> RhsStorage;
  std::vector<const Pattern *> Patterns; // for numPatternNodes
};

//===----------------------------------------------------------------------===//
// Library: a compiled PyPM program fragment
//===----------------------------------------------------------------------===//

/// A named, compiled pattern (the result of lowering all same-named
/// @pattern alternates into one core pattern).
struct NamedPattern {
  Symbol Name;
  /// The user-visible parameters (the match's reported bindings).
  std::vector<Symbol> Params;
  /// Function-variable parameters (subset of semantics: params declared as
  /// `opvar` in the DSL). Kept for rule binding and reporting.
  std::vector<Symbol> FunParams;
  const Pattern *Pat = nullptr;
  /// DSL location of the first @pattern alternate, when compiled from
  /// source. Invalid (Line 0) for builder-API patterns — diagnostics then
  /// fall back to the pattern name.
  SourceLoc Loc;
  /// Per-alternate DSL locations, parallel to the top-level ‖-list of Pat
  /// (empty for builder-API patterns or single-alternate groups compiled
  /// before locations existed).
  std::vector<SourceLoc> AltLocs;
};

/// A compiled rewrite rule: when `PatternName` matches with ⟨θ, φ⟩ and
/// Guard (if any) evaluates true, replace the matched root by Rhs[θ, φ].
struct RewriteRule {
  Symbol Name;
  Symbol PatternName;
  const GuardExpr *Guard = nullptr; ///< nullable
  const RhsExpr *Rhs = nullptr;
  /// DSL location of the rule path's `return` (or the @rule header for
  /// single-path rules). Invalid for builder-API rules.
  SourceLoc Loc;
};

/// A compiled PyPM "pattern binary" in memory: owns the nodes of its
/// patterns and rules. Operators live in an external Signature that the
/// library was compiled against.
struct Library {
  PatternArena Arena;
  std::vector<NamedPattern> PatternDefs;
  std::vector<RewriteRule> Rules;

  const NamedPattern *findPattern(Symbol Name) const {
    for (const NamedPattern &NP : PatternDefs)
      if (NP.Name == Name)
        return &NP;
    return nullptr;
  }
  const NamedPattern *findPattern(std::string_view Name) const {
    return findPattern(Symbol::intern(Name));
  }
  /// Rules for a given pattern, in definition order (the engine fires the
  /// first whose guard passes, §2).
  std::vector<const RewriteRule *> rulesFor(Symbol PatternName) const {
    std::vector<const RewriteRule *> Out;
    for (const RewriteRule &R : Rules)
      if (R.PatternName == PatternName)
        Out.push_back(&R);
    return Out;
  }
};

} // namespace pypm::pattern

#endif // PYPM_PATTERN_PATTERN_H
