//===- pattern/Serializer.h - Pattern binary format -------------*- C++ -*-===//
///
/// \file
/// The portable serialized "pattern binary" format of §2.4: the PyPM
/// frontend serializes compiled patterns and rules, and the DLCB backend
/// dynamically loads them at startup. The format is versioned,
/// little-endian, and self-contained: it embeds a string table (symbols are
/// persisted as spellings, never as process-local ids) and the operator
/// declarations the patterns were compiled against.
///
/// Layout (v1):
///   magic "PYPM", u32 version
///   string table: u32 count, then per string u32 length + bytes
///   signature:   u32 count, per op: name, arity, results, class(~0=none),
///                attr-name list
///   patterns:    u32 count, per def: name, params, funparams, pattern tree
///   rules:       u32 count, per rule: name, pattern name, guard?, rhs tree
///
/// Trees are serialized pre-order with one tag byte per node.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PATTERN_SERIALIZER_H
#define PYPM_PATTERN_SERIALIZER_H

#include "pattern/Pattern.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>

namespace pypm::pattern {

/// Serializes \p Lib (compiled against \p Sig) to a byte string.
std::string serializeLibrary(const Library &Lib, const term::Signature &Sig);

/// Deserializes a pattern binary. Operator declarations are merged into
/// \p Sig: existing ops must agree on arity (else a diagnostic is emitted),
/// new ops are added. Returns nullptr and emits diagnostics on malformed
/// input; never reads out of bounds.
std::unique_ptr<Library> deserializeLibrary(std::string_view Bytes,
                                            term::Signature &Sig,
                                            DiagnosticEngine &Diags);

} // namespace pypm::pattern

#endif // PYPM_PATTERN_SERIALIZER_H
