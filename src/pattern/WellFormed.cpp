//===- pattern/WellFormed.cpp - Pattern well-formedness checks -------------===//

#include "pattern/WellFormed.h"

#include <unordered_map>
#include <unordered_set>

using namespace pypm;
using namespace pypm::pattern;

namespace {

class Checker {
public:
  Checker(const term::Signature &Sig, DiagnosticEngine &Diags,
          std::string_view PatName)
      : Sig(Sig), Diags(Diags), PatName(PatName) {}

  bool run(const NamedPattern &NP) {
    for (Symbol P : NP.Params)
      KnownVars.insert(P);
    for (Symbol P : NP.FunParams)
      KnownVars.insert(P);
    collectBinders(NP.Pat);
    std::unordered_map<Symbol, const MuPattern *> MuScope;
    visit(NP.Pat, MuScope);
    checkGuardRefsCollected();
    return Errors == 0;
  }

private:
  const term::Signature &Sig;
  DiagnosticEngine &Diags;
  std::string PatName;
  unsigned Errors = 0;
  std::unordered_set<Symbol> KnownVars;
  std::vector<std::pair<Symbol, std::string>> PendingGuardRefs;

  void error(std::string Msg) {
    Diags.error(SourceLoc(), "pattern '" + PatName + "': " + std::move(Msg));
    ++Errors;
  }

  /// First pass: record all binder and variable names so guard references
  /// can be validated, and detect *nested* duplicate binders. Sibling
  /// alternates may reuse binder names (Fig. 4's alternates each declare
  /// their own y) — the machine snapshots θ at choice points, so branches
  /// never observe each other's bindings; only a binder shadowing an
  /// enclosing same-named binder is an error.
  void collectBinders(const Pattern *P) {
    switch (P->kind()) {
    case PatternKind::Var:
      KnownVars.insert(cast<VarPattern>(P)->name());
      return;
    case PatternKind::App:
      for (const Pattern *C : cast<AppPattern>(P)->children())
        collectBinders(C);
      return;
    case PatternKind::FunVarApp: {
      const auto *FP = cast<FunVarAppPattern>(P);
      KnownVars.insert(FP->funVar());
      for (const Pattern *C : FP->children())
        collectBinders(C);
      return;
    }
    case PatternKind::Alt: {
      const auto *AP = cast<AltPattern>(P);
      collectBinders(AP->left());
      collectBinders(AP->right());
      return;
    }
    case PatternKind::Guarded:
      collectBinders(cast<GuardedPattern>(P)->sub());
      return;
    case PatternKind::Exists: {
      const auto *EP = cast<ExistsPattern>(P);
      bool Inserted = Binders.insert(EP->var()).second;
      if (!Inserted)
        error("duplicate binder '" + std::string(EP->var().str()) +
              "' shadows an enclosing binder of the same name");
      KnownVars.insert(EP->var());
      collectBinders(EP->sub());
      if (Inserted)
        Binders.erase(EP->var());
      return;
    }
    case PatternKind::ExistsFun: {
      const auto *EP = cast<ExistsFunPattern>(P);
      bool Inserted = Binders.insert(EP->funVar()).second;
      if (!Inserted)
        error("duplicate binder '" + std::string(EP->funVar().str()) +
              "' shadows an enclosing binder of the same name");
      KnownVars.insert(EP->funVar());
      collectBinders(EP->sub());
      if (Inserted)
        Binders.erase(EP->funVar());
      return;
    }
    case PatternKind::MatchConstraint: {
      const auto *MP = cast<MatchConstraintPattern>(P);
      collectBinders(MP->sub());
      collectBinders(MP->constraint());
      return;
    }
    case PatternKind::Mu: {
      const auto *MP = cast<MuPattern>(P);
      bool Inserted = Binders.insert(MP->self()).second;
      if (!Inserted)
        error("duplicate recursive-pattern name '" +
              std::string(MP->self().str()) + "'");
      for (Symbol Param : MP->params())
        KnownVars.insert(Param);
      for (Symbol Arg : MP->args())
        KnownVars.insert(Arg);
      collectBinders(MP->body());
      if (Inserted)
        Binders.erase(MP->self());
      return;
    }
    case PatternKind::RecCall:
      return;
    }
  }

  void visit(const Pattern *P,
             std::unordered_map<Symbol, const MuPattern *> &MuScope) {
    switch (P->kind()) {
    case PatternKind::Var:
      return;
    case PatternKind::App: {
      const auto *AP = cast<AppPattern>(P);
      unsigned Declared = Sig.arity(AP->op());
      if (AP->arity() != Declared)
        error("operator '" + std::string(Sig.name(AP->op()).str()) +
              "' applied to " + std::to_string(AP->arity()) +
              " children, declared arity " + std::to_string(Declared));
      for (const Pattern *C : AP->children())
        visit(C, MuScope);
      return;
    }
    case PatternKind::FunVarApp:
      for (const Pattern *C : cast<FunVarAppPattern>(P)->children())
        visit(C, MuScope);
      return;
    case PatternKind::Alt: {
      const auto *AP = cast<AltPattern>(P);
      visit(AP->left(), MuScope);
      visit(AP->right(), MuScope);
      return;
    }
    case PatternKind::Guarded: {
      const auto *GP = cast<GuardedPattern>(P);
      if (!isBoolKind(GP->guard()->kind()))
        error("guard is not a boolean expression: " +
              GP->guard()->toString());
      checkGuard(GP->guard());
      visit(GP->sub(), MuScope);
      return;
    }
    case PatternKind::Exists:
      visit(cast<ExistsPattern>(P)->sub(), MuScope);
      return;
    case PatternKind::ExistsFun:
      visit(cast<ExistsFunPattern>(P)->sub(), MuScope);
      return;
    case PatternKind::MatchConstraint: {
      const auto *MP = cast<MatchConstraintPattern>(P);
      if (!KnownVars.count(MP->var()))
        error("match constraint on unknown variable '" +
              std::string(MP->var().str()) + "'");
      visit(MP->sub(), MuScope);
      visit(MP->constraint(), MuScope);
      return;
    }
    case PatternKind::Mu: {
      const auto *MP = cast<MuPattern>(P);
      const MuPattern *&Slot = MuScope[MP->self()];
      const MuPattern *Saved = Slot;
      Slot = MP;
      visit(MP->body(), MuScope);
      Slot = Saved;
      return;
    }
    case PatternKind::RecCall: {
      const auto *RP = cast<RecCallPattern>(P);
      auto It = MuScope.find(RP->self());
      if (It == MuScope.end() || !It->second) {
        error("recursive call to '" + std::string(RP->self().str()) +
              "' outside the scope of its mu binder");
        return;
      }
      if (RP->args().size() != It->second->params().size())
        error("recursive call to '" + std::string(RP->self().str()) +
              "' passes " + std::to_string(RP->args().size()) +
              " arguments, expected " +
              std::to_string(It->second->params().size()));
      return;
    }
    }
  }

  void checkGuard(const GuardExpr *G) {
    switch (G->kind()) {
    case GuardKind::IntLit:
    case GuardKind::OpClassRef:
      return;
    case GuardKind::OpRef:
      if (!Sig.lookup(G->refName()).isValid())
        error("guard references unknown operator '" +
              std::string(G->refName().str()) + "'");
      return;
    case GuardKind::Attr:
    case GuardKind::FunAttr:
      PendingGuardRefs.emplace_back(G->varName(), G->toString());
      return;
    case GuardKind::Not:
      checkGuard(G->lhs());
      return;
    default: {
      // Check sortedness: comparisons take arithmetic operands; logical
      // connectives take boolean operands; arithmetic takes arithmetic.
      bool WantArith =
          isArithKind(G->kind()) ||
          (G->kind() >= GuardKind::Eq && G->kind() <= GuardKind::Ge);
      for (const GuardExpr *Sub : {G->lhs(), G->rhs()}) {
        bool SubArith = isArithKind(Sub->kind());
        if (SubArith != WantArith)
          error("ill-sorted guard expression: " + G->toString());
        checkGuard(Sub);
      }
      return;
    }
    }
  }

  void checkGuardRefsCollected() {
    for (auto &[Var, Ctx] : PendingGuardRefs)
      if (!KnownVars.count(Var))
        error("guard references unknown variable '" +
              std::string(Var.str()) + "' in " + Ctx);
  }

  std::unordered_set<Symbol> Binders;
};

void collectRhsVars(const RhsExpr *R, std::vector<Symbol> &Vars) {
  switch (R->kind()) {
  case RhsKind::VarRef:
    Vars.push_back(R->var());
    return;
  case RhsKind::FunVarApp:
    Vars.push_back(R->funVar());
    [[fallthrough]];
  case RhsKind::App:
    for (const RhsExpr *C : R->children())
      collectRhsVars(C, Vars);
    return;
  }
}

} // namespace

bool pypm::pattern::checkWellFormed(const NamedPattern &NP,
                                    const term::Signature &Sig,
                                    DiagnosticEngine &Diags) {
  Checker C(Sig, Diags, NP.Name.str());
  return C.run(NP);
}

bool pypm::pattern::checkWellFormed(const Library &Lib,
                                    const term::Signature &Sig,
                                    DiagnosticEngine &Diags) {
  bool Ok = true;
  std::unordered_set<Symbol> Names;
  for (const NamedPattern &NP : Lib.PatternDefs) {
    if (!Names.insert(NP.Name).second) {
      Diags.error(SourceLoc(), "duplicate compiled pattern '" +
                                   std::string(NP.Name.str()) +
                                   "' (alternates must be merged before "
                                   "library construction)");
      Ok = false;
    }
    Ok &= checkWellFormed(NP, Sig, Diags);
  }
  for (const RewriteRule &R : Lib.Rules) {
    const NamedPattern *NP = Lib.findPattern(R.PatternName);
    if (!NP) {
      Diags.error(SourceLoc(), "rule '" + std::string(R.Name.str()) +
                                   "' references unknown pattern '" +
                                   std::string(R.PatternName.str()) + "'");
      Ok = false;
      continue;
    }
    if (!R.Rhs) {
      Diags.error(SourceLoc(),
                  "rule '" + std::string(R.Name.str()) + "' has no RHS");
      Ok = false;
      continue;
    }
    std::vector<Symbol> Vars;
    collectRhsVars(R.Rhs, Vars);
    for (Symbol V : Vars) {
      bool IsParam = false;
      for (Symbol P : NP->Params)
        IsParam |= P == V;
      for (Symbol P : NP->FunParams)
        IsParam |= P == V;
      if (!IsParam) {
        Diags.error(SourceLoc(),
                    "rule '" + std::string(R.Name.str()) +
                        "' references variable '" + std::string(V.str()) +
                        "' which is not a parameter of pattern '" +
                        std::string(R.PatternName.str()) + "'");
        Ok = false;
      }
    }
  }
  return Ok;
}
