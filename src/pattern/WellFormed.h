//===- pattern/WellFormed.h - Pattern well-formedness checks ----*- C++ -*-===//
///
/// \file
/// Structural validity checks run on compiled patterns before matching:
///
///  - every binder name (∃ variables, μ self names) is unique within a
///    pattern (the Barendregt convention the unfolder relies on);
///  - recursive calls P(ȳ) occur inside a μ that binds P and pass the right
///    number of arguments;
///  - App children agree with the operator's declared arity;
///  - Guarded nodes carry boolean guards, and guard arithmetic is
///    structurally well-sorted;
///  - MatchConstraint / guard variable references name a variable that is
///    bound somewhere in the pattern or is a declared parameter.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_PATTERN_WELLFORMED_H
#define PYPM_PATTERN_WELLFORMED_H

#include "pattern/Pattern.h"
#include "support/Diagnostics.h"

namespace pypm::pattern {

/// Checks one named pattern; emits diagnostics. Returns true if no errors.
bool checkWellFormed(const NamedPattern &NP, const term::Signature &Sig,
                     DiagnosticEngine &Diags);

/// Checks every pattern and rule of a library. Rules are checked for: the
/// referenced pattern exists; RHS variable references are parameters of the
/// pattern; RHS App arities match. Returns true if no errors.
bool checkWellFormed(const Library &Lib, const term::Signature &Sig,
                     DiagnosticEngine &Diags);

} // namespace pypm::pattern

#endif // PYPM_PATTERN_WELLFORMED_H
