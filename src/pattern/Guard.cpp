//===- pattern/Guard.cpp - Guard expression evaluation ---------------------===//

#include "pattern/Guard.h"

using namespace pypm;
using namespace pypm::pattern;

GuardEnv::~GuardEnv() = default;

static GuardEval ok(int64_t V) { return GuardEval{GuardStatus::Ok, V}; }
static GuardEval stuck(GuardStatus S) { return GuardEval{S, 0}; }

GuardEval GuardExpr::evalInt(const GuardEnv &Env) const {
  switch (Kind) {
  case GuardKind::IntLit:
    return ok(Value);
  case GuardKind::Attr: {
    std::optional<term::TermRef> T = Env.lookupVar(Name);
    if (!T)
      return stuck(GuardStatus::UnboundVar);
    std::optional<int64_t> V = Env.arena().attribute(*T, AttrSym);
    if (!V)
      return stuck(GuardStatus::UnknownAttr);
    return ok(*V);
  }
  case GuardKind::FunAttr: {
    std::optional<term::OpId> Op = Env.lookupFunVar(Name);
    if (!Op)
      return stuck(GuardStatus::UnboundVar);
    const term::Signature &Sig = Env.arena().signature();
    std::string_view A = AttrSym.str();
    if (A == "op_class")
      return ok(static_cast<int64_t>(Sig.opClass(*Op).rawId()));
    if (A == "arity")
      return ok(static_cast<int64_t>(Sig.arity(*Op)));
    if (A == "op_id")
      return ok(static_cast<int64_t>(Op->index()));
    if (A == "results")
      return ok(static_cast<int64_t>(Sig.info(*Op).Results));
    return stuck(GuardStatus::UnknownAttr);
  }
  case GuardKind::OpClassRef:
    return ok(static_cast<int64_t>(Name.rawId()));
  case GuardKind::OpRef: {
    term::OpId Op = Env.arena().signature().lookup(Name);
    if (!Op.isValid())
      return stuck(GuardStatus::UnknownAttr);
    return ok(static_cast<int64_t>(Op.index()));
  }
  case GuardKind::Add:
  case GuardKind::Sub:
  case GuardKind::Mul:
  case GuardKind::Div:
  case GuardKind::Mod: {
    GuardEval L = Lhs->evalInt(Env);
    if (!L.ok())
      return L;
    GuardEval R = Rhs->evalInt(Env);
    if (!R.ok())
      return R;
    switch (Kind) {
    case GuardKind::Add:
      return ok(L.Value + R.Value);
    case GuardKind::Sub:
      return ok(L.Value - R.Value);
    case GuardKind::Mul:
      return ok(L.Value * R.Value);
    case GuardKind::Div:
      if (R.Value == 0)
        return stuck(GuardStatus::DivByZero);
      return ok(L.Value / R.Value);
    case GuardKind::Mod:
      if (R.Value == 0)
        return stuck(GuardStatus::DivByZero);
      return ok(L.Value % R.Value);
    default:
      break;
    }
    break;
  }
  default:
    break;
  }
  assert(false && "evalInt on boolean guard");
  return stuck(GuardStatus::UnknownAttr);
}

GuardEval GuardExpr::evalBool(const GuardEnv &Env) const {
  switch (Kind) {
  case GuardKind::Eq:
  case GuardKind::Ne:
  case GuardKind::Lt:
  case GuardKind::Le:
  case GuardKind::Gt:
  case GuardKind::Ge: {
    GuardEval L = Lhs->evalInt(Env);
    if (!L.ok())
      return L;
    GuardEval R = Rhs->evalInt(Env);
    if (!R.ok())
      return R;
    bool B = false;
    switch (Kind) {
    case GuardKind::Eq:
      B = L.Value == R.Value;
      break;
    case GuardKind::Ne:
      B = L.Value != R.Value;
      break;
    case GuardKind::Lt:
      B = L.Value < R.Value;
      break;
    case GuardKind::Le:
      B = L.Value <= R.Value;
      break;
    case GuardKind::Gt:
      B = L.Value > R.Value;
      break;
    case GuardKind::Ge:
      B = L.Value >= R.Value;
      break;
    default:
      break;
    }
    return ok(B ? 1 : 0);
  }
  case GuardKind::And: {
    // Short-circuit: a false left operand decides the guard even if the
    // right operand would be stuck. This matches Fig. 1's rule style,
    // where "x.eltType == f32 && y.eltType == f32" guards branch bodies.
    GuardEval L = Lhs->evalBool(Env);
    if (!L.ok() || L.Value == 0)
      return L;
    return Rhs->evalBool(Env);
  }
  case GuardKind::Or: {
    GuardEval L = Lhs->evalBool(Env);
    if (!L.ok() || L.Value != 0)
      return L;
    return Rhs->evalBool(Env);
  }
  case GuardKind::Not: {
    GuardEval L = Lhs->evalBool(Env);
    if (!L.ok())
      return L;
    return ok(L.Value == 0 ? 1 : 0);
  }
  default:
    break;
  }
  assert(false && "evalBool on arithmetic expression");
  return stuck(GuardStatus::UnknownAttr);
}

static const char *opSpelling(GuardKind K) {
  switch (K) {
  case GuardKind::Add:
    return " + ";
  case GuardKind::Sub:
    return " - ";
  case GuardKind::Mul:
    return " * ";
  case GuardKind::Div:
    return " / ";
  case GuardKind::Mod:
    return " % ";
  case GuardKind::Eq:
    return " == ";
  case GuardKind::Ne:
    return " != ";
  case GuardKind::Lt:
    return " < ";
  case GuardKind::Le:
    return " <= ";
  case GuardKind::Gt:
    return " > ";
  case GuardKind::Ge:
    return " >= ";
  case GuardKind::And:
    return " && ";
  case GuardKind::Or:
    return " || ";
  default:
    return " ? ";
  }
}

std::string GuardExpr::toString() const {
  switch (Kind) {
  case GuardKind::IntLit:
    return std::to_string(Value);
  case GuardKind::Attr:
  case GuardKind::FunAttr:
    return std::string(Name.str()) + "." + std::string(AttrSym.str());
  case GuardKind::OpClassRef:
    return "opclass(\"" + std::string(Name.str()) + "\")";
  case GuardKind::OpRef:
    return "op(\"" + std::string(Name.str()) + "\")";
  case GuardKind::Not:
    return "!(" + Lhs->toString() + ")";
  default:
    return "(" + Lhs->toString() + opSpelling(Kind) + Rhs->toString() + ")";
  }
}
