//===- pattern/PatternPrinter.cpp - Textual rendering of patterns ----------===//
///
/// \file
/// Renders patterns and RHS templates in a notation close to the paper's
/// (ASCII): `p || p'`, `p ; guard(g)`, `exists x. p`, `p ; (x <= p')`,
/// `mu P(params)[args]. p`. Used by tests, diagnostics, and examples.
///
//===----------------------------------------------------------------------===//

#include "pattern/Pattern.h"

using namespace pypm;
using namespace pypm::pattern;

static void printPattern(const Pattern *P, const term::Signature &Sig,
                         std::string &Out) {
  switch (P->kind()) {
  case PatternKind::Var:
    Out += cast<VarPattern>(P)->name().str();
    return;
  case PatternKind::App: {
    const auto *AP = cast<AppPattern>(P);
    Out += Sig.name(AP->op()).str();
    Out += '(';
    bool First = true;
    for (const Pattern *C : AP->children()) {
      if (!First)
        Out += ", ";
      First = false;
      printPattern(C, Sig, Out);
    }
    Out += ')';
    return;
  }
  case PatternKind::FunVarApp: {
    const auto *FP = cast<FunVarAppPattern>(P);
    Out += FP->funVar().str();
    Out += '(';
    bool First = true;
    for (const Pattern *C : FP->children()) {
      if (!First)
        Out += ", ";
      First = false;
      printPattern(C, Sig, Out);
    }
    Out += ')';
    return;
  }
  case PatternKind::Alt: {
    const auto *AP = cast<AltPattern>(P);
    Out += '(';
    printPattern(AP->left(), Sig, Out);
    Out += " || ";
    printPattern(AP->right(), Sig, Out);
    Out += ')';
    return;
  }
  case PatternKind::Guarded: {
    const auto *GP = cast<GuardedPattern>(P);
    Out += '(';
    printPattern(GP->sub(), Sig, Out);
    Out += " ; guard(";
    Out += GP->guard()->toString();
    Out += "))";
    return;
  }
  case PatternKind::Exists: {
    const auto *EP = cast<ExistsPattern>(P);
    Out += "(exists ";
    Out += EP->var().str();
    Out += ". ";
    printPattern(EP->sub(), Sig, Out);
    Out += ')';
    return;
  }
  case PatternKind::ExistsFun: {
    const auto *EP = cast<ExistsFunPattern>(P);
    Out += "(existsfun ";
    Out += EP->funVar().str();
    Out += ". ";
    printPattern(EP->sub(), Sig, Out);
    Out += ')';
    return;
  }
  case PatternKind::MatchConstraint: {
    const auto *MP = cast<MatchConstraintPattern>(P);
    Out += '(';
    printPattern(MP->sub(), Sig, Out);
    Out += " ; (";
    Out += MP->var().str();
    Out += " <= ";
    printPattern(MP->constraint(), Sig, Out);
    Out += "))";
    return;
  }
  case PatternKind::Mu: {
    const auto *MP = cast<MuPattern>(P);
    Out += "(mu ";
    Out += MP->self().str();
    Out += '(';
    bool First = true;
    for (Symbol S : MP->params()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += S.str();
    }
    Out += ")[";
    First = true;
    for (Symbol S : MP->args()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += S.str();
    }
    Out += "]. ";
    printPattern(MP->body(), Sig, Out);
    Out += ')';
    return;
  }
  case PatternKind::RecCall: {
    const auto *RP = cast<RecCallPattern>(P);
    Out += RP->self().str();
    Out += '(';
    bool First = true;
    for (Symbol S : RP->args()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += S.str();
    }
    Out += ')';
    return;
  }
  }
}

std::string Pattern::toString(const term::Signature &Sig) const {
  std::string Out;
  printPattern(this, Sig, Out);
  return Out;
}

std::string RhsExpr::toString(const term::Signature &Sig) const {
  switch (Kind) {
  case RhsKind::VarRef:
    return std::string(Name.str());
  case RhsKind::App:
  case RhsKind::FunVarApp: {
    std::string Out = Kind == RhsKind::App
                          ? std::string(Sig.name(Op).str())
                          : std::string(Name.str());
    if (!Attrs.empty()) {
      Out += '[';
      bool First = true;
      for (const AttrTemplate &A : Attrs) {
        if (!First)
          Out += ',';
        First = false;
        Out += A.Key.str();
        Out += '=';
        Out += A.Value->toString();
      }
      Out += ']';
    }
    Out += '(';
    bool First = true;
    for (const RhsExpr *C : Children) {
      if (!First)
        Out += ", ";
      First = false;
      Out += C->toString(Sig);
    }
    Out += ')';
    return Out;
  }
  }
  return "<rhs?>";
}
