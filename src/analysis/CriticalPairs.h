//===- analysis/CriticalPairs.h - Confluence certificates -------*- C++ -*-===//
///
/// \file
/// pypm::analysis::critical — critical-pair analysis over a compiled rule
/// set, in the errors-are-proofs style of pypm::analysis:
///
///   1. Every rule LHS is flattened into first-order readings (Unify.h);
///      μ-recursion and other unrepresentable constructs bail out and mark
///      the rule "unknown" rather than pretending it has no overlaps.
///   2. Every pair of readings is superposed at the root and at every
///      non-variable proper subterm position. A unifiable superposition
///      whose combined guard conjunction is not provably unsatisfiable is
///      a candidate critical pair; its most-general peak term is
///      instantiated as a concrete witness graph (fresh Input leaves per
///      variable, f32[16x16]; function variables concretized from their
///      pins).
///   3. Joinability is decided semantically: both diverging candidates are
///      applied on hermetic clones with the real engine machinery
///      (search::enumerateCandidates / applyCandidate) and each reduct is
///      normalized greedily under a step bound. Equal normal forms ⇒
///      joinable; two distinct normal forms ⇒ an `analysis.critical-pair`
///      finding carrying the witness term and both normal forms; a bound
///      hit or an unrealizable witness ⇒ `analysis.joinability-unknown`.
///   4. Certification additionally requires a termination probe per rule:
///      the rule's own generalized LHS witness must normalize within the
///      bound under the whole rule set. Local confluence alone does not
///      imply confluence without termination (Newman), and the probe is
///      what keeps a zero-overlap-but-looping set — `Add(x,y) → Add(y,x)`
///      has no critical pairs at all — out of the certified verdict.
///
/// The verdict is three-valued. `Certified` is a proof obligation met:
/// every overlap examined and joinable, every rule flattened and probed.
/// `Conflicting` exhibits at least one concrete counterexample witness.
/// `Unknown` means some obligation could not be discharged (μ bail-out,
/// unrealizable witness, bound hit) — consumers must treat it exactly
/// like Conflicting for soundness (e.g. `--search=auto` falls back to
/// beam).
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_ANALYSIS_CRITICALPAIRS_H
#define PYPM_ANALYSIS_CRITICALPAIRS_H

#include "analysis/Analysis.h"

#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace pypm::analysis::critical {

enum class Verdict : uint8_t {
  Certified = 0,   ///< locally confluent + every rule probe terminated
  Conflicting = 1, ///< at least one critical pair with distinct normal forms
  Unknown = 2,     ///< some obligation could not be discharged
};

std::string_view verdictName(Verdict V);

struct ConfluenceOptions {
  /// Cap on flat readings per pattern (nested-alternate blow-up guard).
  unsigned MaxAltsPerPattern = 16;
  /// Cap on instantiated critical pairs; exceeding it degrades to Unknown.
  unsigned MaxPairs = 512;
  /// Step bound for joinability normalization and termination probes.
  unsigned MaxNormalizeSteps = 64;
};

/// The confluence certificate (or refutation) for one rule set.
struct ConfluenceReport {
  Verdict Overall = Verdict::Unknown;
  uint32_t PairsExamined = 0;
  uint32_t PairsJoinable = 0;
  uint32_t PairsConflicting = 0;
  uint32_t PairsUnknown = 0;
  double AnalysisSeconds = 0.0;

  /// analysis.critical-pair (W) for each conflicting pair — the Message
  /// carries the witness term and both normal forms; analysis.
  /// joinability-unknown (W) for each undischarged obligation; one
  /// analysis.certified-confluent note when Overall == Certified. Ranked:
  /// conflicts first, then unknowns, each in discovery order.
  std::vector<Finding> Findings;

  /// Rules (RewriteRule::Name spellings) whose pattern flattened cleanly
  /// and whose termination probe passed.
  std::unordered_set<std::string> CertifiedRules;
  /// Rule-name pairs with at least one conflicting or unknown overlap
  /// (self-pairs appear as {R, R}).
  std::vector<std::pair<std::string, std::string>> UnresolvedPairs;

  bool certified() const { return Overall == Verdict::Certified; }

  /// The S1 downgrade condition: every rule in \p Rules is individually
  /// certified and no unresolved pair touches two of them — i.e. every
  /// overlap among this subset was proven joinable.
  bool joinableAmong(std::span<const std::string> Rules) const;

  /// Human-readable multi-line summary (verdict, counts, findings).
  std::string render() const;
};

/// Runs the analysis over a rule set. \p Sig is the signature the rule set
/// was compiled against; the analyzer works on a private copy, so the
/// caller's signature is never mutated.
ConfluenceReport analyzeConfluence(const rewrite::RuleSet &RS,
                                   const term::Signature &Sig,
                                   const ConfluenceOptions &Opts = {});

/// Convenience overload: analyzes the rule-bearing entries of \p Lib.
ConfluenceReport analyzeConfluence(const pattern::Library &Lib,
                                   const term::Signature &Sig,
                                   const ConfluenceOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Hardened certificate codec (embedded in .pypmplan v3)
//===----------------------------------------------------------------------===//

/// Serializes \p R into a self-contained binary blob (own magic/version,
/// spellings not symbol ids).
std::string serializeConfluence(const ConfluenceReport &R);

/// Parses a blob produced by serializeConfluence. Every read is
/// bounds-checked and every count plausibility-gated; any violation
/// returns nullptr with \p Error set. Never crashes on hostile input.
std::unique_ptr<ConfluenceReport> deserializeConfluence(std::string_view Bytes,
                                                        std::string *Error);

} // namespace pypm::analysis::critical

#endif // PYPM_ANALYSIS_CRITICALPAIRS_H
