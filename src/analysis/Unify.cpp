//===- analysis/Unify.cpp - First-order unification over patterns ---------===//

#include "analysis/Unify.h"

#include "term/Signature.h"

#include <algorithm>
#include <span>
#include <unordered_set>

namespace pypm::analysis::critical {

using pattern::GuardExpr;
using pattern::GuardKind;
using pattern::Pattern;
using pattern::PatternKind;

//===----------------------------------------------------------------------===//
// PTerm / PTermArena
//===----------------------------------------------------------------------===//

std::string PTerm::toString(const term::Signature &Sig) const {
  switch (Kind) {
  case K::Var:
    return std::string(Var.str());
  case K::Op:
  case K::Fun: {
    std::string S = Kind == K::Op ? std::string(Sig.name(Op).str())
                                  : std::string(Fun.str());
    S += '(';
    for (size_t I = 0; I < Kids.size(); ++I) {
      if (I)
        S += ", ";
      S += Kids[I]->toString(Sig);
    }
    S += ')';
    return S;
  }
  }
  return "?";
}

const PTerm *PTermArena::var(Symbol Name) {
  // Interned per symbol: every occurrence of a variable is the same node,
  // so substitution memoization (and hence witness-graph sharing for
  // nonlinear patterns) falls out of pointer identity.
  auto It = VarCache.find(Name);
  if (It != VarCache.end())
    return It->second;
  PTerm &T = Store.emplace_back();
  T.Kind = PTerm::K::Var;
  T.Var = Name;
  VarCache.emplace(Name, &T);
  return &T;
}

const PTerm *PTermArena::op(term::OpId Op, std::vector<const PTerm *> Kids) {
  PTerm &T = Store.emplace_back();
  T.Kind = PTerm::K::Op;
  T.Op = Op;
  T.Kids = std::move(Kids);
  return &T;
}

const PTerm *PTermArena::fun(Symbol FunVar, std::vector<const PTerm *> Kids) {
  PTerm &T = Store.emplace_back();
  T.Kind = PTerm::K::Fun;
  T.Fun = FunVar;
  T.Kids = std::move(Kids);
  return &T;
}

//===----------------------------------------------------------------------===//
// Flattening
//===----------------------------------------------------------------------===//

namespace {

/// A reading under construction: term + collected guard conjuncts.
struct Partial {
  const PTerm *T = nullptr;
  std::vector<const GuardExpr *> Guards;
};

/// Rebuilds \p T with variable \p V replaced by \p R.
const PTerm *substVar(const PTerm *T, Symbol V, const PTerm *R,
                      PTermArena &Arena) {
  if (T->Kind == PTerm::K::Var)
    return T->Var == V ? R : T;
  bool Changed = false;
  std::vector<const PTerm *> Kids;
  Kids.reserve(T->Kids.size());
  for (const PTerm *K : T->Kids) {
    const PTerm *NK = substVar(K, V, R, Arena);
    Changed |= NK != K;
    Kids.push_back(NK);
  }
  if (!Changed)
    return T;
  return T->Kind == PTerm::K::Op ? Arena.op(T->Op, std::move(Kids))
                                 : Arena.fun(T->Fun, std::move(Kids));
}

class Flattener {
public:
  Flattener(std::string_view Prefix, PTermArena &Arena,
            pattern::PatternArena &GuardArena, unsigned MaxAlts)
      : Prefix(Prefix), Arena(Arena), GuardArena(GuardArena),
        MaxAlts(MaxAlts) {}

  bool Bailed = false;
  std::string Reason;

  Symbol rename(Symbol S) {
    return Symbol::intern(std::string(Prefix) + std::string(S.str()));
  }

  /// Clones \p G into the guard arena with every variable / function
  /// variable renamed through rename(). Keeping guards renamed apart is
  /// what lets two rules' conjunctions be fed to the solver jointly.
  const GuardExpr *cloneGuard(const GuardExpr *G) {
    switch (G->kind()) {
    case GuardKind::IntLit:
      return GuardArena.intLit(G->intValue());
    case GuardKind::Attr:
      return GuardArena.attr(rename(G->varName()), G->attrName());
    case GuardKind::FunAttr:
      return GuardArena.funAttr(rename(G->varName()), G->attrName());
    case GuardKind::OpClassRef:
      return GuardArena.opClassRef(G->refName());
    case GuardKind::OpRef:
      return GuardArena.opRef(G->refName());
    case GuardKind::Not:
      return GuardArena.notExpr(cloneGuard(G->lhs()));
    default:
      return GuardArena.binary(G->kind(), cloneGuard(G->lhs()),
                               cloneGuard(G->rhs()));
    }
  }

  void bail(std::string Why) {
    if (!Bailed) {
      Bailed = true;
      Reason = std::move(Why);
    }
  }

  std::vector<Partial> flat(const Pattern *P) {
    if (Bailed)
      return {};
    switch (P->kind()) {
    case PatternKind::Var:
      return {{Arena.var(rename(pattern::cast<pattern::VarPattern>(P)->name())),
               {}}};
    case PatternKind::App: {
      const auto *A = pattern::cast<pattern::AppPattern>(P);
      return flatApp(A->children(), [&](std::vector<const PTerm *> Kids) {
        return Arena.op(A->op(), std::move(Kids));
      });
    }
    case PatternKind::FunVarApp: {
      const auto *A = pattern::cast<pattern::FunVarAppPattern>(P);
      Symbol F = rename(A->funVar());
      return flatApp(A->children(), [&](std::vector<const PTerm *> Kids) {
        return Arena.fun(F, std::move(Kids));
      });
    }
    case PatternKind::Alt: {
      const auto *A = pattern::cast<pattern::AltPattern>(P);
      std::vector<Partial> L = flat(A->left());
      std::vector<Partial> R = flat(A->right());
      if (Bailed)
        return {};
      if (L.size() + R.size() > MaxAlts) {
        bail("alternate expansion exceeds cap");
        return {};
      }
      L.insert(L.end(), R.begin(), R.end());
      return L;
    }
    case PatternKind::Guarded: {
      const auto *G = pattern::cast<pattern::GuardedPattern>(P);
      std::vector<Partial> Sub = flat(G->sub());
      const GuardExpr *Cloned = Bailed ? nullptr : cloneGuard(G->guard());
      for (Partial &S : Sub)
        S.Guards.push_back(Cloned);
      return Sub;
    }
    case PatternKind::Exists:
      return flat(pattern::cast<pattern::ExistsPattern>(P)->sub());
    case PatternKind::ExistsFun:
      return flat(pattern::cast<pattern::ExistsFunPattern>(P)->sub());
    case PatternKind::MatchConstraint: {
      const auto *M = pattern::cast<pattern::MatchConstraintPattern>(P);
      Symbol V = rename(M->var());
      std::vector<Partial> Subs = flat(M->sub());
      std::vector<Partial> Cons = flat(M->constraint());
      if (Bailed)
        return {};
      if (Subs.size() * Cons.size() > MaxAlts) {
        bail("match-constraint expansion exceeds cap");
        return {};
      }
      std::vector<Partial> Out;
      for (const Partial &S : Subs) {
        unsigned N = countVar(S.T, V);
        if (N != 1) {
          // Inlining at the occurrence is only meaning-preserving when the
          // constrained variable appears exactly once in this reading.
          bail("match-constraint variable '" + std::string(V.str()) +
               "' occurs " + std::to_string(N) + " times");
          return {};
        }
        for (const Partial &C : Cons) {
          Partial Merged;
          Merged.T = substVar(S.T, V, C.T, Arena);
          Merged.Guards = S.Guards;
          Merged.Guards.insert(Merged.Guards.end(), C.Guards.begin(),
                               C.Guards.end());
          Out.push_back(std::move(Merged));
        }
      }
      return Out;
    }
    case PatternKind::Mu:
    case PatternKind::RecCall:
      bail("recursive pattern (mu) has no finite flat reading");
      return {};
    }
    bail("unknown pattern kind");
    return {};
  }

private:
  template <typename MakeFn>
  std::vector<Partial> flatApp(std::span<const Pattern *const> Children,
                               MakeFn Make) {
    // Cross-product of the children's readings, capped.
    std::vector<std::vector<Partial>> PerChild;
    size_t Total = 1;
    for (const Pattern *C : Children) {
      PerChild.push_back(flat(C));
      if (Bailed)
        return {};
      Total *= PerChild.back().size();
      if (Total > MaxAlts) {
        bail("nested alternate expansion exceeds cap");
        return {};
      }
    }
    std::vector<Partial> Out;
    std::vector<size_t> Idx(PerChild.size(), 0);
    for (;;) {
      Partial P;
      std::vector<const PTerm *> Kids;
      Kids.reserve(PerChild.size());
      for (size_t I = 0; I < PerChild.size(); ++I) {
        const Partial &C = PerChild[I][Idx[I]];
        Kids.push_back(C.T);
        P.Guards.insert(P.Guards.end(), C.Guards.begin(), C.Guards.end());
      }
      P.T = Make(std::move(Kids));
      Out.push_back(std::move(P));
      // Odometer increment; PerChild may be empty (arity-0 op) — then the
      // single empty combination above is the only one.
      size_t I = 0;
      for (; I < PerChild.size(); ++I) {
        if (++Idx[I] < PerChild[I].size())
          break;
        Idx[I] = 0;
      }
      if (I == PerChild.size())
        break;
    }
    return Out;
  }

  std::string_view Prefix;
  PTermArena &Arena;
  pattern::PatternArena &GuardArena;
  unsigned MaxAlts;
};

/// Splits the top-level ‖ spine of \p P in source order.
void collectTopAlts(const Pattern *P, std::vector<const Pattern *> &Out) {
  if (const auto *A = pattern::dyn_cast<pattern::AltPattern>(P)) {
    collectTopAlts(A->left(), Out);
    collectTopAlts(A->right(), Out);
    return;
  }
  Out.push_back(P);
}

} // namespace

FlattenResult flattenPattern(const pattern::NamedPattern &NP,
                             std::string_view Prefix, PTermArena &Arena,
                             pattern::PatternArena &GuardArena,
                             unsigned MaxAlts) {
  FlattenResult R;
  Flattener F(Prefix, Arena, GuardArena, MaxAlts);
  std::vector<const Pattern *> Tops;
  collectTopAlts(NP.Pat, Tops);
  for (size_t I = 0; I < Tops.size(); ++I) {
    std::vector<Partial> Alts = F.flat(Tops[I]);
    if (F.Bailed)
      break;
    if (R.Alts.size() + Alts.size() > MaxAlts) {
      F.bail("alternate expansion exceeds cap");
      break;
    }
    for (Partial &P : Alts)
      R.Alts.push_back({P.T, std::move(P.Guards), static_cast<int>(I)});
  }
  if (F.Bailed) {
    R.Alts.clear();
    R.Bailed = true;
    R.BailReason = std::move(F.Reason);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Unification
//===----------------------------------------------------------------------===//

Symbol Subst::funRep(Symbol F) const {
  for (;;) {
    auto It = FunAlias.find(F);
    if (It == FunAlias.end() || It->second == F)
      return F;
    F = It->second;
  }
}

std::optional<term::OpId> Subst::funPin(Symbol F) const {
  auto It = FunOp.find(funRep(F));
  if (It == FunOp.end())
    return std::nullopt;
  return It->second;
}

namespace {

const PTerm *walk(const PTerm *T, const Subst &S) {
  while (T->Kind == PTerm::K::Var) {
    auto It = S.Vars.find(T->Var);
    if (It == S.Vars.end())
      break;
    T = It->second;
  }
  return T;
}

bool occurs(Symbol V, const PTerm *T, const Subst &S) {
  T = walk(T, S);
  if (T->Kind == PTerm::K::Var)
    return T->Var == V;
  for (const PTerm *K : T->Kids)
    if (occurs(V, K, S))
      return true;
  return false;
}

bool pinFun(Symbol F, term::OpId Op, Subst &S) {
  Symbol Rep = S.funRep(F);
  auto It = S.FunOp.find(Rep);
  if (It != S.FunOp.end())
    return It->second == Op;
  S.FunOp.emplace(Rep, Op);
  return true;
}

bool aliasFun(Symbol A, Symbol B, Subst &S) {
  Symbol RA = S.funRep(A), RB = S.funRep(B);
  if (RA == RB)
    return true;
  auto PA = S.FunOp.find(RA), PB = S.FunOp.find(RB);
  if (PA != S.FunOp.end() && PB != S.FunOp.end() &&
      !(PA->second == PB->second))
    return false;
  if (PA != S.FunOp.end() && PB == S.FunOp.end())
    S.FunOp.emplace(RB, PA->second);
  S.FunAlias[RA] = RB;
  return true;
}

bool unifyRec(const PTerm *A, const PTerm *B, Subst &S) {
  A = walk(A, S);
  B = walk(B, S);
  if (A == B)
    return true;
  if (A->Kind == PTerm::K::Var) {
    if (B->Kind == PTerm::K::Var && A->Var == B->Var)
      return true;
    if (occurs(A->Var, B, S))
      return false;
    S.Vars.emplace(A->Var, B);
    return true;
  }
  if (B->Kind == PTerm::K::Var) {
    if (occurs(B->Var, A, S))
      return false;
    S.Vars.emplace(B->Var, A);
    return true;
  }
  if (A->Kids.size() != B->Kids.size())
    return false;
  if (A->Kind == PTerm::K::Op && B->Kind == PTerm::K::Op) {
    if (!(A->Op == B->Op))
      return false;
  } else if (A->Kind == PTerm::K::Fun && B->Kind == PTerm::K::Op) {
    if (!pinFun(A->Fun, B->Op, S))
      return false;
  } else if (A->Kind == PTerm::K::Op && B->Kind == PTerm::K::Fun) {
    if (!pinFun(B->Fun, A->Op, S))
      return false;
  } else {
    if (!aliasFun(A->Fun, B->Fun, S))
      return false;
  }
  for (size_t I = 0; I < A->Kids.size(); ++I)
    if (!unifyRec(A->Kids[I], B->Kids[I], S))
      return false;
  return true;
}

const PTerm *applyRec(const PTerm *T, const Subst &S, PTermArena &Arena,
                      std::unordered_map<const PTerm *, const PTerm *> &Memo) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  const PTerm *R = nullptr;
  switch (T->Kind) {
  case PTerm::K::Var: {
    auto B = S.Vars.find(T->Var);
    R = B == S.Vars.end() ? T : applyRec(B->second, S, Arena, Memo);
    break;
  }
  case PTerm::K::Op:
  case PTerm::K::Fun: {
    bool Changed = false;
    std::vector<const PTerm *> Kids;
    Kids.reserve(T->Kids.size());
    for (const PTerm *K : T->Kids) {
      const PTerm *NK = applyRec(K, S, Arena, Memo);
      Changed |= NK != K;
      Kids.push_back(NK);
    }
    if (T->Kind == PTerm::K::Op) {
      R = Changed ? Arena.op(T->Op, std::move(Kids)) : T;
    } else {
      std::optional<term::OpId> Pin = S.funPin(T->Fun);
      Symbol Rep = S.funRep(T->Fun);
      if (Pin)
        R = Arena.op(*Pin, std::move(Kids));
      else if (Rep != T->Fun || Changed)
        R = Arena.fun(Rep, std::move(Kids));
      else
        R = T;
    }
    break;
  }
  }
  Memo.emplace(T, R);
  return R;
}

} // namespace

std::optional<Subst> unify(const PTerm *A, const PTerm *B) {
  Subst S;
  if (!unifyRec(A, B, S))
    return std::nullopt;
  return S;
}

const PTerm *applySubst(const PTerm *T, const Subst &S, PTermArena &Arena) {
  std::unordered_map<const PTerm *, const PTerm *> Memo;
  return applyRec(T, S, Arena, Memo);
}

std::vector<const PTerm *> properSubterms(const PTerm *T) {
  std::vector<const PTerm *> Out;
  std::unordered_set<const PTerm *> Seen;
  // Preorder over the children only: the root itself is not a proper
  // subterm.
  auto Visit = [&](auto &&Self, const PTerm *N) -> void {
    if (N->Kind != PTerm::K::Var && Seen.insert(N).second)
      Out.push_back(N);
    for (const PTerm *K : N->Kids)
      Self(Self, K);
  };
  for (const PTerm *K : T->Kids)
    Visit(Visit, K);
  return Out;
}

unsigned countVar(const PTerm *T, Symbol V) {
  if (T->Kind == PTerm::K::Var)
    return T->Var == V ? 1u : 0u;
  unsigned N = 0;
  for (const PTerm *K : T->Kids)
    N += countVar(K, V);
  return N;
}

} // namespace pypm::analysis::critical
