//===- analysis/Skeleton.h - Pattern skeletons for overlap checks -*- C++ -*-===//
///
/// \file
/// The abstract domain of the rule-set linter's overlap/subsumption and
/// rewrite-cycle analyses: a pattern *skeleton* is the guard-free,
/// constraint-free tree shape a CorePyPM pattern requires of a term —
/// concrete-operator applications, function-variable applications (any
/// operator of a given arity), and wildcards. The same idea as
/// plan::PlanBuilder's per-entry shape constraints, but kept as trees so
/// two skeletons can be compared structurally (subsumption) or unified
/// (overlap), not just indexed.
///
/// Every skeleton set is an OVER-approximation of a pattern's match set
/// (guards, match constraints, non-linear variables, and μ-recursion are
/// erased, which only enlarges the set). That direction is exactly right
/// for the *subsumee* side of a shadowing query and for overlap edges; the
/// *subsumer* side needs the opposite bound, so AltShape records which
/// erasures happened and exact() gates what may act as a subsumer. See
/// DESIGN.md §"Static rule-set analysis" for the soundness argument.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_ANALYSIS_SKELETON_H
#define PYPM_ANALYSIS_SKELETON_H

#include "pattern/Pattern.h"

#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

namespace pypm::analysis {

/// One node of a pattern/RHS skeleton.
struct Skel {
  enum class K : uint8_t {
    Any,   ///< matches every term (variable / erased subpattern)
    Op,    ///< concrete operator application
    AnyOp, ///< any operator of this arity (function-variable application)
  };
  K Kind = K::Any;
  term::OpId Op; ///< valid iff Kind == Op
  std::vector<const Skel *> Kids;

  unsigned arity() const { return static_cast<unsigned>(Kids.size()); }
};

/// Owns skeleton nodes for one lint run.
class SkelArena {
public:
  const Skel *any() { return &AnyNode; }
  const Skel *op(term::OpId Op, std::vector<const Skel *> Kids);
  const Skel *anyOp(std::vector<const Skel *> Kids);

private:
  Skel AnyNode; // shared wildcard
  std::deque<std::unique_ptr<Skel>> Storage;
};

/// One top-level alternate of a named pattern, abstracted: a disjunction of
/// skeletons over-approximating its match set, plus flags recording every
/// precision loss that would make the over-approximation unusable as a
/// subsumer.
struct AltShape {
  std::vector<const Skel *> Disj;
  bool Guarded = false;     ///< a guard (or degenerate ∃) somewhere inside
  bool Constrained = false; ///< a match constraint somewhere inside
  bool NonLinear = false;   ///< a term/function variable occurs twice
  bool Recursive = false;   ///< contains μ or a recursive call (erased)
  bool Truncated = false;   ///< hit a size cap; skeleton widened to Any
  SourceLoc Loc;            ///< DSL location of the alternate when known
  const pattern::Pattern *Pat = nullptr; ///< the alternate subpattern

  /// Whether a skeleton match implies a full pattern match: nothing was
  /// erased, so this alternate's Disj is its exact match set and it may
  /// act as a subsumer in shadowing queries.
  bool exact() const {
    return !Guarded && !Constrained && !NonLinear && !Recursive && !Truncated;
  }
};

/// Splits \p NP's top-level ‖-list (looking through a top-level μ) and
/// abstracts each alternate. AltShape::Loc is taken from NP.AltLocs when
/// the lengths line up (DSL-compiled libraries), else from NP.Loc.
std::vector<AltShape> extractAlternates(const pattern::NamedPattern &NP,
                                        SkelArena &A);

/// Skeleton of a rule's replacement template: attributes are ignored,
/// variable references widen to Any, function-variable applications to
/// AnyOp. Over-approximates the set of terms the RHS can build.
const Skel *rhsSkeleton(const pattern::RhsExpr *Rhs, SkelArena &A);

/// Whether every term matching \p B also matches \p A (sound only when A
/// came from an exact() alternate).
bool subsumes(const Skel *A, const Skel *B);

/// Whether some term can match both skeletons (over-approximate overlap).
bool mayUnify(const Skel *A, const Skel *B);

/// Term and function variables bound in *every* successful match of \p P
/// (intersection over alternates; μ and recursive calls contribute
/// nothing). A rule whose RHS only references guaranteed-bound variables
/// can never fall through on a failed RHS build — the property the
/// shadowing analysis needs before it may call a rule "always fires".
std::unordered_set<Symbol> guaranteedBound(const pattern::Pattern *P);

/// All variables (term and function) referenced by a replacement template.
void rhsVariables(const pattern::RhsExpr *Rhs,
                  std::unordered_set<Symbol> &Out);

} // namespace pypm::analysis

#endif // PYPM_ANALYSIS_SKELETON_H
