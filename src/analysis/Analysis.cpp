//===- analysis/Analysis.cpp - Static rule-set linter ------------------------===//

#include "analysis/Analysis.h"

#include "analysis/CriticalPairs.h"
#include "analysis/GuardSolver.h"
#include "analysis/Skeleton.h"
#include "graph/ShapeInference.h"
#include "sim/CostModel.h"
#include "support/Hash.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <tuple>
#include <unordered_set>

using namespace pypm;
using namespace pypm::analysis;
using namespace pypm::pattern;
using rewrite::RewriteEntry;
using rewrite::RuleSet;

//===----------------------------------------------------------------------===//
// Finding / LintReport plumbing
//===----------------------------------------------------------------------===//

std::string Finding::render() const {
  Diagnostic D{Sev, Loc, Code, Message};
  return D.render();
}

bool LintReport::hasCode(std::string_view Code) const {
  return countCode(Code) != 0;
}

void LintReport::sortFindings() {
  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const Finding &A, const Finding &B) {
                     if (A.Sev != B.Sev)
                       return static_cast<int>(A.Sev) > static_cast<int>(B.Sev);
                     auto Key = [](const Finding &F) {
                       return std::tie(F.Loc.Line, F.Loc.Col, F.Code,
                                       F.PatternName, F.RuleName, F.Alternate,
                                       F.Message);
                     };
                     return Key(A) < Key(B);
                   });
}

unsigned LintReport::countCode(std::string_view Code) const {
  unsigned N = 0;
  for (const Finding &F : Findings)
    N += F.Code == Code;
  return N;
}

std::string LintReport::renderAll() const {
  std::string Out;
  for (const Finding &F : Findings) {
    Out += F.render();
    Out += '\n';
  }
  Out += std::to_string(Errors) + " error(s), " + std::to_string(Warnings) +
         " warning(s), " + std::to_string(Notes) + " note(s)\n";
  return Out;
}

static void appendJsonString(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

static std::string_view severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "note";
}

std::string LintReport::json() const {
  std::string Out = "{\"findings\":[";
  for (size_t I = 0; I != Findings.size(); ++I) {
    const Finding &F = Findings[I];
    if (I)
      Out += ',';
    Out += "{\"severity\":";
    appendJsonString(Out, severityName(F.Sev));
    Out += ",\"code\":";
    appendJsonString(Out, F.Code);
    Out += ",\"line\":" + std::to_string(F.Loc.Line);
    Out += ",\"col\":" + std::to_string(F.Loc.Col);
    Out += ",\"pattern\":";
    appendJsonString(Out, F.PatternName);
    Out += ",\"rule\":";
    appendJsonString(Out, F.RuleName);
    Out += ",\"alternate\":" + std::to_string(F.Alternate);
    Out += ",\"message\":";
    appendJsonString(Out, F.Message);
    Out += '}';
  }
  Out += "],\"errors\":" + std::to_string(Errors) +
         ",\"warnings\":" + std::to_string(Warnings) +
         ",\"notes\":" + std::to_string(Notes) + "}";
  return Out;
}

void LintReport::toDiagnostics(DiagnosticEngine &DE) const {
  for (const Finding &F : Findings)
    DE.report(F.Sev, F.Loc, F.Code, F.Message);
}

//===----------------------------------------------------------------------===//
// Lint context
//===----------------------------------------------------------------------===//

namespace {

struct EntryInfo {
  const RewriteEntry *E = nullptr;
  std::vector<AltShape> Alts;
  /// Variables bound by every successful match (intersection over
  /// alternates — computed on the full pattern, μ included).
  std::unordered_set<Symbol> Bound;
  /// First rule that provably fires on every match (unconditional or
  /// vacuous guard, RHS over guaranteed-bound variables); null if none.
  const RewriteRule *AlwaysFires = nullptr;
};

class Linter {
public:
  Linter(const term::Signature &Sig, const LintOptions &Opts)
      : Sig(Sig), Opts(Opts) {}

  LintReport run(const RuleSet &RS) {
    for (const RewriteEntry &E : RS.entries())
      Entries.push_back(analyzeEntry(E));
    checkEntryShadowing();
    checkRewriteCycles();
    checkOpaqueRhsOps();
    // Stable output order, so `pypmc lint --json` diffs never depend on
    // analysis or dedup-hash iteration order.
    Report.sortFindings();
    return std::move(Report);
  }

private:
  const term::Signature &Sig;
  const LintOptions &Opts;
  SkelArena Arena;
  LintReport Report;
  std::vector<EntryInfo> Entries;
  std::unordered_set<uint64_t> Seen; // finding dedup fingerprints

  void add(Severity Sev, std::string Code, SourceLoc Loc,
           std::string PatternName, std::string RuleName, int Alternate,
           std::string Message) {
    Fnv1aHash H;
    H.str(Code);
    H.str(PatternName);
    H.str(RuleName);
    H.u32(static_cast<uint32_t>(Alternate + 1));
    H.str(Message);
    if (!Seen.insert(H.value()).second)
      return;
    switch (Sev) {
    case Severity::Error:
      ++Report.Errors;
      break;
    case Severity::Warning:
      ++Report.Warnings;
      break;
    case Severity::Note:
      ++Report.Notes;
      break;
    }
    Report.Findings.push_back(Finding{Sev, std::move(Code), Loc,
                                      std::move(PatternName),
                                      std::move(RuleName), Alternate,
                                      std::move(Message)});
  }

  //===--------------------------------------------------------------------===//
  // Per-entry analyses
  //===--------------------------------------------------------------------===//

  EntryInfo analyzeEntry(const RewriteEntry &E) {
    EntryInfo Info;
    Info.E = &E;
    const NamedPattern &NP = *E.Pattern;
    std::string PName(NP.Name.str());

    Info.Alts = extractAlternates(NP, Arena);
    Info.Bound = guaranteedBound(NP.Pat);

    checkDeadAlternates(PName, Info);
    checkGuards(PName, Info);
    checkMuProductivity(PName, NP);
    checkRules(PName, NP, E, Info);
    return Info;
  }

  void checkDeadAlternates(const std::string &PName, const EntryInfo &Info) {
    const std::vector<AltShape> &Alts = Info.Alts;
    for (size_t J = 1; J < Alts.size(); ++J) {
      for (size_t I = 0; I < J; ++I) {
        if (!Alts[I].exact())
          continue;
        bool Covered = !Alts[J].Disj.empty();
        for (const Skel *S : Alts[J].Disj) {
          bool Sub = false;
          for (const Skel *T : Alts[I].Disj)
            Sub = Sub || subsumes(T, S);
          Covered = Covered && Sub;
        }
        if (Covered) {
          add(Severity::Warning, "analysis.unreachable-alternate",
              Alts[J].Loc, PName, {}, static_cast<int>(J),
              "alternate " + std::to_string(J + 1) + " of pattern '" + PName +
                  "' is unreachable: alternate " + std::to_string(I + 1) +
                  " matches every term it matches and is tried first");
          break;
        }
      }
    }
  }

  /// Guards on the wrapper spine of an alternate hold conjointly on any
  /// successful match through it; check the conjunction, then every deeper
  /// guard individually.
  void checkGuards(const std::string &PName, const EntryInfo &Info) {
    for (size_t I = 0; I != Info.Alts.size(); ++I) {
      const AltShape &Alt = Info.Alts[I];
      std::vector<const GuardExpr *> Spine;
      const Pattern *P = Alt.Pat;
      for (bool Walk = true; Walk && P;) {
        switch (P->kind()) {
        case PatternKind::Guarded:
          Spine.push_back(cast<GuardedPattern>(P)->guard());
          P = cast<GuardedPattern>(P)->sub();
          break;
        case PatternKind::Exists:
          P = cast<ExistsPattern>(P)->sub();
          break;
        case PatternKind::ExistsFun:
          P = cast<ExistsFunPattern>(P)->sub();
          break;
        case PatternKind::MatchConstraint:
          P = cast<MatchConstraintPattern>(P)->sub();
          break;
        default:
          Walk = false;
          break;
        }
      }
      int AltIdx = static_cast<int>(I);
      GuardVerdict V = analyzeConjunction(Spine);
      if (V.Unsatisfiable)
        add(Severity::Error, "analysis.unsat-guard", Alt.Loc, PName, {},
            AltIdx,
            "the guards of alternate " + std::to_string(I + 1) +
                " of pattern '" + PName +
                "' are contradictory: no term can ever match it");
      else if (V.Vacuous)
        add(Severity::Warning, "analysis.vacuous-guard", Alt.Loc, PName, {},
            AltIdx,
            "the guards of alternate " + std::to_string(I + 1) +
                " of pattern '" + PName + "' are always true");

      // Deeper guards (inside applications, constraints, inner alternates):
      // each must at least be individually satisfiable.
      std::unordered_set<const GuardExpr *> InSpine(Spine.begin(),
                                                    Spine.end());
      std::unordered_set<const Pattern *> Visited;
      std::function<void(const Pattern *)> Deep = [&](const Pattern *Q) {
        if (!Q || !Visited.insert(Q).second)
          return;
        switch (Q->kind()) {
        case PatternKind::Guarded: {
          const auto *G = cast<GuardedPattern>(Q);
          if (!InSpine.count(G->guard())) {
            GuardVerdict GV = analyzeGuard(G->guard());
            if (GV.Unsatisfiable)
              add(Severity::Error, "analysis.unsat-guard", Alt.Loc, PName, {},
                  AltIdx,
                  "a guard inside alternate " + std::to_string(I + 1) +
                      " of pattern '" + PName +
                      "' is contradictory: guard(" + G->guard()->toString() +
                      ") can never be true");
            else if (GV.Vacuous)
              add(Severity::Warning, "analysis.vacuous-guard", Alt.Loc, PName,
                  {}, AltIdx,
                  "a guard inside alternate " + std::to_string(I + 1) +
                      " of pattern '" + PName + "' is always true: guard(" +
                      G->guard()->toString() + ")");
          }
          Deep(G->sub());
          return;
        }
        case PatternKind::App:
          for (const Pattern *C : cast<AppPattern>(Q)->children())
            Deep(C);
          return;
        case PatternKind::FunVarApp:
          for (const Pattern *C : cast<FunVarAppPattern>(Q)->children())
            Deep(C);
          return;
        case PatternKind::Alt:
          Deep(cast<AltPattern>(Q)->left());
          Deep(cast<AltPattern>(Q)->right());
          return;
        case PatternKind::Exists:
          Deep(cast<ExistsPattern>(Q)->sub());
          return;
        case PatternKind::ExistsFun:
          Deep(cast<ExistsFunPattern>(Q)->sub());
          return;
        case PatternKind::MatchConstraint:
          Deep(cast<MatchConstraintPattern>(Q)->sub());
          Deep(cast<MatchConstraintPattern>(Q)->constraint());
          return;
        case PatternKind::Mu:
          Deep(cast<MuPattern>(Q)->body());
          return;
        case PatternKind::Var:
        case PatternKind::RecCall:
          return;
        }
      };
      Deep(Alt.Pat);
    }
  }

  //===--------------------------------------------------------------------===//
  // μ-recursion productivity
  //===--------------------------------------------------------------------===//

  /// A recursive occurrence is productive iff the term it re-matches is a
  /// strict subterm of the μ's subject — i.e. the occurrence sits under at
  /// least one operator consumption. We track, along each alternate path,
  /// which variables alias the subject (bound at the same position) and
  /// flag recursive calls whose own position still aliases the subject.
  void checkMuProductivity(const std::string &PName, const NamedPattern &NP) {
    if (!NP.Pat)
      return;
    std::unordered_set<const Pattern *> Visited;
    std::function<void(const Pattern *)> FindMus = [&](const Pattern *P) {
      if (!P || !Visited.insert(P).second)
        return;
      switch (P->kind()) {
      case PatternKind::Mu: {
        const auto *Mu = cast<MuPattern>(P);
        checkOneMu(PName, NP, Mu);
        FindMus(Mu->body());
        return;
      }
      case PatternKind::App:
        for (const Pattern *C : cast<AppPattern>(P)->children())
          FindMus(C);
        return;
      case PatternKind::FunVarApp:
        for (const Pattern *C : cast<FunVarAppPattern>(P)->children())
          FindMus(C);
        return;
      case PatternKind::Alt:
        FindMus(cast<AltPattern>(P)->left());
        FindMus(cast<AltPattern>(P)->right());
        return;
      case PatternKind::Guarded:
        FindMus(cast<GuardedPattern>(P)->sub());
        return;
      case PatternKind::Exists:
        FindMus(cast<ExistsPattern>(P)->sub());
        return;
      case PatternKind::ExistsFun:
        FindMus(cast<ExistsFunPattern>(P)->sub());
        return;
      case PatternKind::MatchConstraint:
        FindMus(cast<MatchConstraintPattern>(P)->sub());
        FindMus(cast<MatchConstraintPattern>(P)->constraint());
        return;
      case PatternKind::Var:
      case PatternKind::RecCall:
        return;
      }
    };
    FindMus(NP.Pat);
  }

  void checkOneMu(const std::string &PName, const NamedPattern &NP,
                  const MuPattern *Mu) {
    bool Reported = false;
    std::unordered_set<Symbol> Aliases;
    std::function<void(const Pattern *, bool)> Walk = [&](const Pattern *P,
                                                          bool SamePos) {
      if (!P || Reported)
        return;
      switch (P->kind()) {
      case PatternKind::Var:
        if (SamePos)
          Aliases.insert(cast<VarPattern>(P)->name());
        return;
      case PatternKind::App:
        for (const Pattern *C : cast<AppPattern>(P)->children())
          Walk(C, /*SamePos=*/false); // an operator was consumed
        return;
      case PatternKind::FunVarApp:
        for (const Pattern *C : cast<FunVarAppPattern>(P)->children())
          Walk(C, /*SamePos=*/false);
        return;
      case PatternKind::Alt: {
        // Branches diverge: aliases discovered inside one branch must not
        // leak into the other (or past the alternate).
        std::unordered_set<Symbol> Snapshot = Aliases;
        Walk(cast<AltPattern>(P)->left(), SamePos);
        Aliases = Snapshot;
        Walk(cast<AltPattern>(P)->right(), SamePos);
        Aliases = std::move(Snapshot);
        return;
      }
      case PatternKind::Guarded:
        Walk(cast<GuardedPattern>(P)->sub(), SamePos);
        return;
      case PatternKind::Exists:
        Walk(cast<ExistsPattern>(P)->sub(), SamePos);
        return;
      case PatternKind::ExistsFun:
        Walk(cast<ExistsFunPattern>(P)->sub(), SamePos);
        return;
      case PatternKind::MatchConstraint: {
        const auto *M = cast<MatchConstraintPattern>(P);
        Walk(M->sub(), SamePos);
        // The constraint re-matches the term bound to M->var(): it is at
        // the subject's position exactly when that variable aliases it.
        Walk(M->constraint(), Aliases.count(M->var()) != 0);
        return;
      }
      case PatternKind::Mu: {
        const auto *Inner = cast<MuPattern>(P);
        if (Inner->self() == Mu->self())
          return; // inner binder shadows; its own check runs separately
        // Unfolding matches the body at the same position.
        Walk(Inner->body(), SamePos);
        return;
      }
      case PatternKind::RecCall:
        if (cast<RecCallPattern>(P)->self() == Mu->self() && SamePos &&
            !Reported) {
          Reported = true;
          add(Severity::Error, "analysis.unproductive-mu", NP.Loc, PName, {},
              -1,
              "recursive pattern '" + std::string(Mu->self().str()) +
                  "' (in pattern '" + PName +
                  "') has a recursive occurrence that can re-match its "
                  "entire subject without consuming an operator: unfolding "
                  "need not terminate");
        }
        return;
      }
    };
    Walk(Mu->body(), /*SamePos=*/true);
  }

  //===--------------------------------------------------------------------===//
  // Rule-level analyses
  //===--------------------------------------------------------------------===//

  void checkRules(const std::string &PName, const NamedPattern &NP,
                  const RewriteEntry &E, EntryInfo &Info) {
    for (const RewriteRule *R : E.Rules) {
      if (!R)
        continue;
      std::string RName(R->Name.str());
      bool GuardAlwaysTrue = R->Guard == nullptr;
      if (R->Guard) {
        GuardVerdict V = analyzeGuard(R->Guard);
        if (V.Unsatisfiable)
          add(Severity::Error, "analysis.unsat-guard", R->Loc, PName, RName,
              -1,
              "the guard of rule '" + RName +
                  "' (pattern '" + PName +
                  "') is contradictory: the rule can never fire");
        else if (V.Vacuous) {
          GuardAlwaysTrue = true;
          add(Severity::Warning, "analysis.vacuous-guard", R->Loc, PName,
              RName, -1,
              "the guard of rule '" + RName + "' (pattern '" + PName +
                  "') is always true");
        }
      }
      if (Info.AlwaysFires) {
        add(Severity::Warning, "analysis.shadowed-rule", R->Loc, PName, RName,
            -1,
            "rule '" + RName + "' (pattern '" + PName +
                "') can never fire: earlier rule '" +
                std::string(Info.AlwaysFires->Name.str()) +
                "' always fires on every match of the pattern");
        continue;
      }
      if (GuardAlwaysTrue && R->Rhs) {
        std::unordered_set<Symbol> Used;
        rhsVariables(R->Rhs, Used);
        bool AllBound = true;
        for (Symbol S : Used)
          AllBound = AllBound && Info.Bound.count(S) != 0;
        if (AllBound)
          Info.AlwaysFires = R;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Cross-entry shadowing (committed order)
  //===--------------------------------------------------------------------===//

  void checkEntryShadowing() {
    for (size_t I = 0; I != Entries.size(); ++I) {
      const EntryInfo &A = Entries[I];
      if (!A.AlwaysFires)
        continue;
      // Pool the skeletons of A's exact alternates: its provable coverage.
      std::vector<const Skel *> Cover;
      for (const AltShape &Alt : A.Alts)
        if (Alt.exact())
          Cover.insert(Cover.end(), Alt.Disj.begin(), Alt.Disj.end());
      if (Cover.empty())
        continue;
      for (size_t J = I + 1; J != Entries.size(); ++J) {
        const EntryInfo &B = Entries[J];
        if (B.E->Rules.empty() || B.Alts.empty())
          continue;
        bool Subsumed = true;
        for (const AltShape &Alt : B.Alts)
          for (const Skel *S : Alt.Disj) {
            bool Sub = false;
            for (const Skel *T : Cover)
              Sub = Sub || subsumes(T, S);
            Subsumed = Subsumed && Sub;
          }
        if (!Subsumed)
          continue;
        std::string AName(A.E->Pattern->Name.str());
        std::string BName(B.E->Pattern->Name.str());
        for (const RewriteRule *R : B.E->Rules)
          add(Severity::Warning, "analysis.shadowed-rule",
              R ? R->Loc : B.E->Pattern->Loc, BName,
              R ? std::string(R->Name.str()) : std::string(), -1,
              "rule '" + (R ? std::string(R->Name.str()) : BName) +
                  "' (pattern '" + BName +
                  "') is shadowed: every term pattern '" + BName +
                  "' matches is matched first by pattern '" + AName +
                  "', whose rule '" +
                  std::string(A.AlwaysFires->Name.str()) + "' always fires");
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Rewrite-cycle detection
  //===--------------------------------------------------------------------===//

  void checkRewriteCycles() {
    struct RuleNode {
      const RewriteRule *R;
      size_t Entry;
      const Skel *Rhs;
    };
    std::vector<RuleNode> Nodes;
    for (size_t I = 0; I != Entries.size(); ++I)
      for (const RewriteRule *R : Entries[I].E->Rules)
        if (R && R->Rhs)
          Nodes.push_back({R, I, rhsSkeleton(R->Rhs, Arena)});

    // Per-entry LHS coverage (over-approximate union of every alternate).
    std::vector<std::vector<const Skel *>> Lhs(Entries.size());
    for (size_t I = 0; I != Entries.size(); ++I)
      for (const AltShape &Alt : Entries[I].Alts)
        Lhs[I].insert(Lhs[I].end(), Alt.Disj.begin(), Alt.Disj.end());

    // Edge u → v: the term u's RHS builds may match v's pattern again. A
    // bare-variable RHS (`return x;` — shrinking rewrites) can be anything,
    // but it strictly shrinks the term, so it cannot drive an infinite
    // rewrite chain by itself; skip Any RHS roots to avoid flooding.
    size_t N = Nodes.size();
    std::vector<std::vector<uint32_t>> Adj(N);
    for (size_t U = 0; U != N; ++U) {
      if (Nodes[U].Rhs->Kind == Skel::K::Any)
        continue;
      for (size_t V = 0; V != N; ++V) {
        bool Hits = false;
        for (const Skel *L : Lhs[Nodes[V].Entry])
          Hits = Hits || mayUnify(Nodes[U].Rhs, L);
        if (Hits)
          Adj[U].push_back(static_cast<uint32_t>(V));
      }
    }

    // Tarjan SCC (recursive; rule counts are small).
    std::vector<int> Index(N, -1), Low(N, 0);
    std::vector<bool> OnStack(N, false);
    std::vector<uint32_t> Stack;
    int Next = 0;
    std::function<void(uint32_t)> Strong = [&](uint32_t U) {
      Index[U] = Low[U] = Next++;
      Stack.push_back(U);
      OnStack[U] = true;
      for (uint32_t V : Adj[U]) {
        if (Index[V] < 0) {
          Strong(V);
          Low[U] = std::min(Low[U], Low[V]);
        } else if (OnStack[V]) {
          Low[U] = std::min(Low[U], Index[V]);
        }
      }
      if (Low[U] != Index[U])
        return;
      std::vector<uint32_t> Comp;
      for (;;) {
        uint32_t V = Stack.back();
        Stack.pop_back();
        OnStack[V] = false;
        Comp.push_back(V);
        if (V == U)
          break;
      }
      bool SelfLoop =
          Comp.size() == 1 &&
          std::find(Adj[Comp[0]].begin(), Adj[Comp[0]].end(), Comp[0]) !=
              Adj[Comp[0]].end();
      if (Comp.size() < 2 && !SelfLoop)
        return;
      std::sort(Comp.begin(), Comp.end()); // report in committed order
      std::string Names;
      for (uint32_t V : Comp) {
        if (!Names.empty())
          Names += "' -> '";
        Names += std::string(Nodes[V].R->Name.str());
      }
      const RuleNode &First = Nodes[Comp.front()];
      std::string Msg =
          Comp.size() == 1
              ? "rule '" + Names +
                    "' can rewrite its own result indefinitely (the "
                    "replacement shape unifies with the rule's own pattern)"
              : "rules '" + Names +
                    "' can rewrite each other's results indefinitely "
                    "(replacement shapes unify with the cycle's patterns)";
      // A confluence certificate can retire the heuristic: if every
      // overlap among the SCC's rules was proven joinable and their
      // termination probes passed, the loop shape the skeletons saw
      // cannot actually diverge — note, not warning.
      std::vector<std::string> CycleRules;
      for (uint32_t V : Comp)
        CycleRules.emplace_back(Nodes[V].R->Name.str());
      bool ProvenJoinable =
          Opts.Confluence && Opts.Confluence->joinableAmong(CycleRules);
      if (ProvenJoinable)
        add(Severity::Note, "analysis.rewrite-cycle", First.R->Loc,
            std::string(Entries[First.Entry].E->Pattern->Name.str()),
            std::string(First.R->Name.str()), -1,
            Msg + "; critical-pair analysis proved every overlap joinable, "
                  "so the cycle cannot diverge");
      else
        add(Severity::Warning, "analysis.rewrite-cycle", First.R->Loc,
            std::string(Entries[First.Entry].E->Pattern->Name.str()),
            std::string(First.R->Name.str()), -1,
            Msg + "; termination relies on the engine's pass/rewrite caps");
    };
    for (uint32_t U = 0; U != N; ++U)
      if (Index[U] < 0)
        Strong(U);
  }

  //===--------------------------------------------------------------------===//
  // Opaque RHS operators
  //===--------------------------------------------------------------------===//

  void checkOpaqueRhsOps() {
    if (!Opts.Shapes && !Opts.CostModelNotes)
      return;
    std::unordered_set<Symbol> Reported;
    for (const EntryInfo &Info : Entries)
      for (const RewriteRule *R : Info.E->Rules) {
        if (!R || !R->Rhs)
          continue;
        std::function<void(const RhsExpr *)> Walk = [&](const RhsExpr *Rhs) {
          if (Rhs->kind() == RhsKind::App) {
            term::OpId Op = Rhs->op();
            Symbol Name = Sig.name(Op);
            if (Reported.insert(Name).second) {
              Symbol Cls = Sig.opClass(Op);
              std::string_view ClsStr =
                  Cls.isValid() ? Cls.str() : std::string_view();
              if (Opts.Shapes && !Opts.Shapes->hasRule(Name))
                add(Severity::Note, "analysis.opaque-rhs-op", R->Loc,
                    std::string(R->PatternName.str()),
                    std::string(R->Name.str()), -1,
                    "rule '" + std::string(R->Name.str()) +
                        "' introduces operator '" + std::string(Name.str()) +
                        "' with no shape-inference rule: replacement nodes "
                        "will be typed by the first-input fallback");
              if (Opts.CostModelNotes &&
                  !sim::CostModel::hasSpecializedCost(Name.str(), ClsStr))
                add(Severity::Note, "analysis.generic-cost", R->Loc,
                    std::string(R->PatternName.str()),
                    std::string(R->Name.str()), -1,
                    "rule '" + std::string(R->Name.str()) +
                        "' introduces operator '" + std::string(Name.str()) +
                        "' priced by the generic cost-model fallback");
            }
          }
          for (const RhsExpr *C : Rhs->children())
            Walk(C);
        };
        Walk(R->Rhs);
      }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

LintReport analysis::lintRuleSet(const RuleSet &RS, const term::Signature &Sig,
                                 const LintOptions &Opts) {
  return Linter(Sig, Opts).run(RS);
}

LintReport analysis::lintLibrary(const Library &Lib,
                                 const term::Signature &Sig,
                                 const LintOptions &Opts) {
  RuleSet RS;
  RS.addLibrary(Lib, /*RulesOnly=*/false);
  return Linter(Sig, Opts).run(RS);
}
