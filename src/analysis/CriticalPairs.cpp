//===- analysis/CriticalPairs.cpp - Confluence certificates ---------------===//

#include "analysis/CriticalPairs.h"

#include "analysis/GuardSolver.h"
#include "analysis/Unify.h"
#include "graph/Graph.h"
#include "graph/GraphIO.h"
#include "graph/ShapeInference.h"
#include "search/Search.h"
#include "sim/CostModel.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>

namespace pypm::analysis::critical {

using pattern::GuardExpr;
using pattern::GuardKind;

std::string_view verdictName(Verdict V) {
  switch (V) {
  case Verdict::Certified:
    return "certified-confluent";
  case Verdict::Conflicting:
    return "conflicting";
  case Verdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

bool ConfluenceReport::joinableAmong(std::span<const std::string> Rules) const {
  for (const std::string &R : Rules)
    if (!CertifiedRules.count(R))
      return false;
  for (const auto &[A, B] : UnresolvedPairs) {
    bool InA = std::find(Rules.begin(), Rules.end(), A) != Rules.end();
    bool InB = std::find(Rules.begin(), Rules.end(), B) != Rules.end();
    if (InA && InB)
      return false;
  }
  return true;
}

std::string ConfluenceReport::render() const {
  std::string Out = "confluence: ";
  Out += verdictName(Overall);
  Out += " (" + std::to_string(PairsExamined) + " pair(s) examined, " +
         std::to_string(PairsJoinable) + " joinable, " +
         std::to_string(PairsConflicting) + " conflicting, " +
         std::to_string(PairsUnknown) + " unknown; " +
         std::to_string(CertifiedRules.size()) + " rule(s) certified)\n";
  for (const Finding &F : Findings)
    Out += F.render() + "\n";
  return Out;
}

namespace {

constexpr std::string_view kLhsPrefix = "l$";
constexpr std::string_view kRhsPrefix = "r$";

/// One rule-bearing entry prepared for superposition: its flat readings,
/// renamed apart twice so an entry can be overlapped with itself.
struct Unit {
  uint32_t EntryIdx = 0;
  const pattern::NamedPattern *NP = nullptr;
  std::vector<std::string> RuleNames;
  SourceLoc Loc;
  FlattenResult FlatL; ///< readings with the "l$" renaming
  FlattenResult FlatR; ///< readings with the "r$" renaming
  bool ProbePassed = false;
};

/// Outcome of validating one peak witness.
enum class PeakOutcome { Joinable, Conflicting, Unknown };

struct PeakResult {
  PeakOutcome Outcome = PeakOutcome::Unknown;
  std::string Detail;     ///< why unknown, or the conflict description
  std::string RuleA, RuleB; ///< fired rule names on a conflict
};

class Analyzer {
public:
  Analyzer(const rewrite::RuleSet &RS, const term::Signature &Sig,
           const ConfluenceOptions &Opts)
      : RS(RS), WorkSig(Sig), Opts(Opts) {
    EO.MaxWitnesses = std::max(8u, Opts.MaxAltsPerPattern);
  }

  ConfluenceReport run() {
    auto T0 = std::chrono::steady_clock::now();
    prepare();
    probeTermination();
    enumerateOverlaps();
    finalize();
    R.AnalysisSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    return std::move(R);
  }

private:
  void addFinding(Severity Sev, std::string Code, SourceLoc Loc,
                  std::string PatternName, std::string RuleName,
                  std::string Message) {
    Finding F;
    F.Sev = Sev;
    F.Code = std::move(Code);
    F.Loc = Loc;
    F.PatternName = std::move(PatternName);
    F.RuleName = std::move(RuleName);
    F.Message = std::move(Message);
    R.Findings.push_back(std::move(F));
  }

  void markUnresolvedSelf(const Unit &U) {
    for (const std::string &Name : U.RuleNames)
      R.UnresolvedPairs.emplace_back(Name, Name);
  }

  void prepare() {
    const auto &Entries = RS.entries();
    for (uint32_t I = 0; I < Entries.size(); ++I) {
      const rewrite::RewriteEntry &E = Entries[I];
      if (E.Rules.empty())
        continue; // match-only entries never rewrite
      Unit U;
      U.EntryIdx = I;
      U.NP = E.Pattern;
      for (const pattern::RewriteRule *Rl : E.Rules)
        U.RuleNames.emplace_back(Rl->Name.str());
      U.Loc = E.Rules.front()->Loc.isValid() ? E.Rules.front()->Loc
                                             : E.Pattern->Loc;
      U.FlatL = flattenPattern(*U.NP, kLhsPrefix, Terms, Guards,
                               Opts.MaxAltsPerPattern);
      U.FlatR = flattenPattern(*U.NP, kRhsPrefix, Terms, Guards,
                               Opts.MaxAltsPerPattern);
      if (U.FlatL.Bailed) {
        AnyUnknown = true;
        addFinding(Severity::Warning, "analysis.joinability-unknown", U.Loc,
                   std::string(U.NP->Name.str()), U.RuleNames.front(),
                   "pattern '" + std::string(U.NP->Name.str()) +
                       "' has no flat first-order reading (" +
                       U.FlatL.BailReason +
                       "); its overlaps cannot be enumerated");
        markUnresolvedSelf(U);
      }
      Units.push_back(std::move(U));
    }
  }

  /// Newman's lemma needs termination, and joinable critical pairs alone
  /// prove only LOCAL confluence — `Add(x,y) → Add(y,x)` has zero critical
  /// pairs yet never terminates. The probe normalizes each rule's own
  /// generalized LHS under the whole rule set; a bound hit keeps the rule
  /// (and the verdict) out of Certified.
  void probeTermination() {
    for (Unit &U : Units) {
      if (U.FlatL.Bailed)
        continue;
      bool Terminated = true;
      for (const FlatAlt &A : U.FlatL.Alts) {
        std::string Fail;
        graph::Graph G(WorkSig);
        graph::NodeId Root = buildWitness(G, A.Term, /*Pins=*/{}, Fail);
        if (Root == graph::InvalidNode)
          continue; // unbuildable reading: nothing to probe on
        G.addOutput(Root);
        inferTypes(G);
        if (!normalize(G)) {
          Terminated = false;
          AnyUnknown = true;
          addFinding(
              Severity::Warning, "analysis.joinability-unknown", U.Loc,
              std::string(U.NP->Name.str()), U.RuleNames.front(),
              "termination probe for pattern '" +
                  std::string(U.NP->Name.str()) + "' exceeded " +
                  std::to_string(Opts.MaxNormalizeSteps) +
                  " normalization steps; confluence cannot be certified "
                  "without termination");
          markUnresolvedSelf(U);
          break;
        }
      }
      U.ProbePassed = Terminated;
    }
  }

  void enumerateOverlaps() {
    for (size_t I = 0; I < Units.size(); ++I) {
      for (size_t J = 0; J < Units.size(); ++J) {
        const Unit &A = Units[I];
        const Unit &B = Units[J];
        if (A.FlatL.Bailed || B.FlatR.Bailed)
          continue;
        for (size_t AI = 0; AI < A.FlatL.Alts.size(); ++AI) {
          for (size_t BI = 0; BI < B.FlatR.Alts.size(); ++BI) {
            const FlatAlt &FA = A.FlatL.Alts[AI];
            const FlatAlt &FB = B.FlatR.Alts[BI];
            // Root superposition once per unordered reading pair; a
            // reading at its own root is the same redex, not an overlap.
            bool RootOk = I < J || (I == J && AI < BI);
            if (RootOk)
              considerOverlap(A, B, FA, FB, FA.Term, FB.Term);
            // Proper-subterm superpositions of A's reading under B's root,
            // in both directions via the ordered (I, J) loop — including
            // I == J, AI == BI (e.g. Neg(Neg(x)) under its own subterm).
            for (const PTerm *Sub : properSubterms(FA.Term))
              considerOverlap(A, B, FA, FB, FA.Term, FB.Term, Sub);
          }
        }
      }
    }
  }

  /// Superposes \p At (or its subterm \p SubA when given) with \p Bt; on a
  /// non-refuted unifier, instantiates the peak and validates joinability.
  void considerOverlap(const Unit &A, const Unit &B, const FlatAlt &FA,
                       const FlatAlt &FB, const PTerm *At, const PTerm *Bt,
                       const PTerm *SubA = nullptr) {
    std::optional<Subst> S = unify(SubA ? SubA : At, Bt);
    if (!S)
      return;
    // Guard-compatibility pre-filter: the two readings' (renamed-apart)
    // conjunctions plus equalities synthesized from the unifier. A proven
    // unsat conjunction means no term matches both ways — not an overlap.
    std::vector<const GuardExpr *> Conj;
    Conj.insert(Conj.end(), FA.Guards.begin(), FA.Guards.end());
    Conj.insert(Conj.end(), FB.Guards.begin(), FB.Guards.end());
    synthesizeBindingGuards(*S, Conj);
    if (analyzeConjunction(Conj).Unsatisfiable)
      return;

    const PTerm *Peak = applySubst(At, *S, Terms);
    std::string Key = Peak->toString(WorkSig);
    if (!SeenPeaks.insert(Key).second)
      return;

    if (R.PairsExamined >= Opts.MaxPairs) {
      if (!PairCapHit) {
        PairCapHit = true;
        AnyUnknown = true;
        addFinding(Severity::Warning, "analysis.joinability-unknown", A.Loc,
                   std::string(A.NP->Name.str()), A.RuleNames.front(),
                   "critical-pair cap (" + std::to_string(Opts.MaxPairs) +
                       ") exceeded; remaining overlaps were not examined");
      }
      R.UnresolvedPairs.emplace_back(A.RuleNames.front(), B.RuleNames.front());
      return;
    }
    ++R.PairsExamined;

    PeakResult PR = checkPeak(*S, Conj, Peak, Key);
    switch (PR.Outcome) {
    case PeakOutcome::Joinable:
      ++R.PairsJoinable;
      break;
    case PeakOutcome::Conflicting:
      ++R.PairsConflicting;
      AnyConflict = true;
      R.UnresolvedPairs.emplace_back(PR.RuleA, PR.RuleB);
      addFinding(Severity::Warning, "analysis.critical-pair", A.Loc,
                 std::string(A.NP->Name.str()), PR.RuleA, PR.Detail);
      break;
    case PeakOutcome::Unknown:
      ++R.PairsUnknown;
      AnyUnknown = true;
      R.UnresolvedPairs.emplace_back(A.RuleNames.front(), B.RuleNames.front());
      addFinding(Severity::Warning, "analysis.joinability-unknown", A.Loc,
                 std::string(A.NP->Name.str()), A.RuleNames.front(),
                 "overlap of '" + std::string(A.NP->Name.str()) + "' and '" +
                     std::string(B.NP->Name.str()) + "' at witness " + Key +
                     ": " + PR.Detail);
      break;
    }
  }

  /// Turns the unifier's bindings into guard facts the solver understands:
  /// a variable bound to an operator-rooted term pins that variable's
  /// op_id; a pinned function variable pins its op_id the same way. These
  /// are true of every instance of the overlap, so adding them can only
  /// refine the refutation, never fake one.
  void synthesizeBindingGuards(const Subst &S,
                               std::vector<const GuardExpr *> &Conj) {
    Symbol OpIdAttr = Symbol::intern("op_id");
    for (const auto &[V, T] : S.Vars) {
      const PTerm *Bound = applySubst(T, S, Terms);
      if (Bound->Kind == PTerm::K::Op)
        Conj.push_back(Guards.binary(
            GuardKind::Eq, Guards.attr(V, OpIdAttr),
            Guards.opRef(WorkSig.name(Bound->Op))));
    }
    for (const auto &[F, Op] : S.FunOp)
      Conj.push_back(Guards.binary(GuardKind::Eq,
                                   Guards.funAttr(F, OpIdAttr),
                                   Guards.opRef(WorkSig.name(Op))));
  }

  /// Builds the witness graph for \p Peak and decides joinability
  /// semantically: every distinct fireable candidate's reduct is
  /// normalized under the step bound and the normal forms are compared.
  PeakResult checkPeak(const Subst &S,
                       std::span<const GuardExpr *const> Conj,
                       const PTerm *Peak, const std::string &Key) {
    PeakResult PR;
    std::unordered_map<Symbol, term::OpId> Pins = extractFunPins(S, Conj);

    graph::Graph G(WorkSig);
    std::string Fail;
    graph::NodeId Root = buildWitness(G, Peak, Pins, Fail);
    if (Root == graph::InvalidNode) {
      PR.Detail = "witness could not be instantiated (" + Fail + ")";
      return PR;
    }
    G.addOutput(Root);
    inferTypes(G);

    std::vector<search::Candidate> Cands;
    try {
      Cands = search::enumerateCandidates(G, RS, EO);
    } catch (...) {
      PR.Detail = "candidate enumeration threw on the witness";
      return PR;
    }
    if (Cands.size() < 2) {
      PR.Detail = "witness realized " + std::to_string(Cands.size()) +
                  " rewrite(s), not the two diverging ones";
      return PR;
    }

    struct Reduct {
      std::string RuleName;
      std::string NormalForm; ///< human-readable (writeGraphText)
      std::string Canonical;  ///< renaming-invariant form, for comparison
    };
    std::vector<Reduct> Reducts;
    for (const search::Candidate &C : Cands) {
      graph::Graph Clone(G);
      try {
        search::ApplyResult AR =
            search::applyCandidate(Clone, C, RS, SI, CM);
        if (!AR.Applied) {
          PR.Detail = "candidate failed to re-derive on the witness clone";
          return PR;
        }
      } catch (...) {
        PR.Detail = "candidate application threw on the witness clone";
        return PR;
      }
      if (!normalize(Clone)) {
        PR.Detail = "normalization exceeded " +
                    std::to_string(Opts.MaxNormalizeSteps) + " steps";
        return PR;
      }
      const rewrite::RewriteEntry &E = RS.entries()[C.Entry];
      Reducts.push_back({std::string(E.Rules[C.Rule]->Name.str()),
                         graph::writeGraphText(Clone),
                         canonicalForm(Clone)});
    }
    for (size_t X = 0; X < Reducts.size(); ++X) {
      for (size_t Y = X + 1; Y < Reducts.size(); ++Y) {
        if (Reducts[X].Canonical == Reducts[Y].Canonical)
          continue;
        PR.Outcome = PeakOutcome::Conflicting;
        PR.RuleA = Reducts[X].RuleName;
        PR.RuleB = Reducts[Y].RuleName;
        PR.Detail = "rules '" + PR.RuleA + "' and '" + PR.RuleB +
                    "' diverge on witness " + Key + ": normal form {" +
                    oneLine(Reducts[X].NormalForm) + "} vs {" +
                    oneLine(Reducts[Y].NormalForm) + "}";
        return PR;
      }
    }
    PR.Outcome = PeakOutcome::Joinable;
    return PR;
  }

  /// Output-rooted serialization with node labels assigned in DFS order:
  /// invariant under node renumbering and blind to dead nodes, so two
  /// reducts that reach the same graph by deleting *different* nodes of
  /// the shared peak compare equal (raw writeGraphText keeps the
  /// creation-order ids and would report a spurious divergence).
  std::string canonicalForm(const graph::Graph &G) {
    std::string Out;
    std::unordered_map<graph::NodeId, unsigned> Label;
    std::function<void(graph::NodeId)> Visit = [&](graph::NodeId N) {
      auto It = Label.find(N);
      if (It != Label.end()) {
        Out += '#';
        Out += std::to_string(It->second);
        return;
      }
      Label.emplace(N, static_cast<unsigned>(Label.size()));
      Out += WorkSig.name(G.op(N)).str();
      for (const term::Attr &A : G.attrs(N)) {
        Out += '[';
        Out += A.Key.str();
        Out += '=';
        Out += std::to_string(A.Value);
        Out += ']';
      }
      Out += '(';
      bool First = true;
      for (graph::NodeId In : G.inputs(N)) {
        if (!First)
          Out += ',';
        First = false;
        Visit(In);
      }
      Out += "):";
      Out += G.type(N).str();
    };
    for (graph::NodeId O : G.outputs()) {
      Visit(O);
      Out += ';';
    }
    return Out;
  }

  static std::string oneLine(std::string Text) {
    while (!Text.empty() && Text.back() == '\n')
      Text.pop_back();
    std::replace(Text.begin(), Text.end(), '\n', ';');
    return Text;
  }

  /// op_id / op_class pins for unpinned function variables, read off the
  /// guard conjunction (keyed by alias-class representative).
  std::unordered_map<Symbol, term::OpId>
  extractFunPins(const Subst &S, std::span<const GuardExpr *const> Conj) {
    std::unordered_map<Symbol, term::OpId> Pins;
    std::unordered_map<Symbol, Symbol> ClassPins;
    Symbol OpIdAttr = Symbol::intern("op_id");
    Symbol OpClassAttr = Symbol::intern("op_class");
    auto Consider = [&](const GuardExpr *L, const GuardExpr *Rr) {
      if (L->kind() != GuardKind::FunAttr)
        return;
      Symbol Rep = S.funRep(L->varName());
      if (L->attrName() == OpIdAttr && Rr->kind() == GuardKind::OpRef) {
        term::OpId Op = WorkSig.lookup(Rr->refName());
        if (Op.isValid())
          Pins.emplace(Rep, Op);
      } else if (L->attrName() == OpClassAttr &&
                 Rr->kind() == GuardKind::OpClassRef) {
        ClassPins.emplace(Rep, Rr->refName());
      }
    };
    for (const GuardExpr *G : Conj) {
      if (!G || G->kind() != GuardKind::Eq)
        continue;
      Consider(G->lhs(), G->rhs());
      Consider(G->rhs(), G->lhs());
    }
    // Class pins resolve lazily in buildWitness (arity is known there);
    // stash them for it.
    FunClassPins = std::move(ClassPins);
    return Pins;
  }

  /// Builds \p T as graph nodes. Shared PTerm nodes build once (nonlinear
  /// variables share their Input leaf). Returns InvalidNode with \p Fail
  /// set when a function variable cannot be concretized.
  graph::NodeId buildWitness(graph::Graph &G, const PTerm *T,
                             const std::unordered_map<Symbol, term::OpId> &Pins,
                             std::string &Fail) {
    std::unordered_map<const PTerm *, graph::NodeId> Memo;
    std::unordered_map<Symbol, graph::NodeId> VarLeaves;
    return buildRec(G, T, Pins, Memo, VarLeaves, Fail);
  }

  graph::NodeId
  buildRec(graph::Graph &G, const PTerm *T,
           const std::unordered_map<Symbol, term::OpId> &Pins,
           std::unordered_map<const PTerm *, graph::NodeId> &Memo,
           std::unordered_map<Symbol, graph::NodeId> &VarLeaves,
           std::string &Fail) {
    auto MIt = Memo.find(T);
    if (MIt != Memo.end())
      return MIt->second;
    graph::NodeId N = graph::InvalidNode;
    switch (T->Kind) {
    case PTerm::K::Var: {
      auto VIt = VarLeaves.find(T->Var);
      if (VIt != VarLeaves.end()) {
        N = VIt->second;
        break;
      }
      N = G.addLeaf("Input",
                    graph::TensorType::make(term::DType::F32, {16, 16}));
      VarLeaves.emplace(T->Var, N);
      break;
    }
    case PTerm::K::Op:
    case PTerm::K::Fun: {
      term::OpId Op = T->Op;
      if (T->Kind == PTerm::K::Fun) {
        Op = resolveFun(T->Fun, static_cast<unsigned>(T->Kids.size()), Pins);
        if (!Op.isValid()) {
          Fail = "function variable '" + std::string(T->Fun.str()) +
                 "' has no operator pin";
          return graph::InvalidNode;
        }
      }
      if (WorkSig.arity(Op) != T->Kids.size()) {
        Fail = "arity mismatch instantiating '" +
               std::string(WorkSig.name(Op).str()) + "'";
        return graph::InvalidNode;
      }
      std::vector<graph::NodeId> Kids;
      Kids.reserve(T->Kids.size());
      for (const PTerm *K : T->Kids) {
        graph::NodeId KN = buildRec(G, K, Pins, Memo, VarLeaves, Fail);
        if (KN == graph::InvalidNode)
          return graph::InvalidNode;
        Kids.push_back(KN);
      }
      N = G.addNode(Op, std::span<const graph::NodeId>(Kids));
      break;
    }
    }
    Memo.emplace(T, N);
    return N;
  }

  term::OpId resolveFun(Symbol F, unsigned Arity,
                        const std::unordered_map<Symbol, term::OpId> &Pins) {
    auto It = Pins.find(F);
    if (It != Pins.end())
      return It->second;
    auto CIt = FunClassPins.find(F);
    if (CIt != FunClassPins.end())
      for (term::OpId Op : WorkSig.opsOfClass(CIt->second))
        if (WorkSig.arity(Op) == Arity)
          return Op;
    return {};
  }

  void inferTypes(graph::Graph &G) {
    try {
      SI.inferAll(G);
    } catch (...) {
      // Untyped witnesses still enumerate; shape-sensitive guards will
      // simply refuse, degrading the pair to Unknown — never to Certified.
    }
  }

  /// Greedily applies the first candidate until none remain. False on a
  /// bound hit or an apply failure.
  bool normalize(graph::Graph &G) {
    for (unsigned Step = 0;; ++Step) {
      std::vector<search::Candidate> Cands;
      try {
        Cands = search::enumerateCandidates(G, RS, EO);
      } catch (...) {
        return false;
      }
      if (Cands.empty())
        return true;
      if (Step >= Opts.MaxNormalizeSteps)
        return false;
      try {
        if (!search::applyCandidate(G, Cands.front(), RS, SI, CM).Applied)
          return false;
      } catch (...) {
        return false;
      }
    }
  }

  void finalize() {
    for (const Unit &U : Units)
      if (!U.FlatL.Bailed && U.ProbePassed)
        for (const std::string &Name : U.RuleNames)
          R.CertifiedRules.insert(Name);
    if (AnyConflict)
      R.Overall = Verdict::Conflicting;
    else if (AnyUnknown)
      R.Overall = Verdict::Unknown;
    else {
      R.Overall = Verdict::Certified;
      addFinding(Severity::Note, "analysis.certified-confluent", {}, {}, {},
                 "rule set certified confluent: " +
                     std::to_string(R.PairsExamined) +
                     " overlap(s) examined, all joinable; " +
                     std::to_string(R.CertifiedRules.size()) +
                     " rule(s) passed the termination probe");
    }
    // Rank: conflicts first, then unknowns, then notes — stable within
    // each class (discovery order).
    std::stable_sort(R.Findings.begin(), R.Findings.end(),
                     [](const Finding &A, const Finding &B) {
                       auto Rank = [](const Finding &F) {
                         if (F.Code == "analysis.critical-pair")
                           return 0;
                         if (F.Code == "analysis.joinability-unknown")
                           return 1;
                         return 2;
                       };
                       return Rank(A) < Rank(B);
                     });
  }

  const rewrite::RuleSet &RS;
  term::Signature WorkSig; ///< private copy: witness graphs mutate it
  ConfluenceOptions Opts;
  search::EnumOptions EO;
  graph::ShapeInference SI;
  sim::CostModel CM;

  PTermArena Terms;
  pattern::PatternArena Guards;
  std::vector<Unit> Units;
  std::unordered_set<std::string> SeenPeaks;
  std::unordered_map<Symbol, Symbol> FunClassPins;

  ConfluenceReport R;
  bool AnyConflict = false;
  bool AnyUnknown = false;
  bool PairCapHit = false;
};

} // namespace

ConfluenceReport analyzeConfluence(const rewrite::RuleSet &RS,
                                   const term::Signature &Sig,
                                   const ConfluenceOptions &Opts) {
  return Analyzer(RS, Sig, Opts).run();
}

ConfluenceReport analyzeConfluence(const pattern::Library &Lib,
                                   const term::Signature &Sig,
                                   const ConfluenceOptions &Opts) {
  rewrite::RuleSet RS;
  RS.addLibrary(Lib, /*RulesOnly=*/true);
  return analyzeConfluence(RS, Sig, Opts);
}

//===----------------------------------------------------------------------===//
// Certificate codec
//===----------------------------------------------------------------------===//

namespace {

constexpr char kMagic[4] = {'P', 'M', 'C', 'F'};
constexpr uint32_t kCertVersion = 1;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putStr(std::string &Out, std::string_view S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

/// Bounds-checked cursor over a hostile byte blob.
struct CertReader {
  std::string_view Bytes;
  size_t Pos = 0;
  std::string Error;

  bool fail(std::string Why) {
    if (Error.empty())
      Error = std::move(Why);
    return false;
  }
  bool need(size_t N) {
    if (Bytes.size() - Pos < N)
      return fail("truncated confluence certificate");
    return true;
  }
  bool readU8(uint8_t &V) {
    if (!need(1))
      return false;
    V = static_cast<uint8_t>(Bytes[Pos++]);
    return true;
  }
  bool readU32(uint32_t &V) {
    if (!need(4))
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos++])) << (8 * I);
    return true;
  }
  bool readU64(uint64_t &V) {
    if (!need(8))
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Bytes[Pos++])) << (8 * I);
    return true;
  }
  bool readStr(std::string &S) {
    uint32_t Len = 0;
    if (!readU32(Len))
      return false;
    if (Len > Bytes.size() - Pos)
      return fail("truncated string in confluence certificate");
    S.assign(Bytes.substr(Pos, Len));
    Pos += Len;
    return true;
  }
};

} // namespace

std::string serializeConfluence(const ConfluenceReport &R) {
  std::string Out;
  Out.append(kMagic, sizeof(kMagic));
  putU32(Out, kCertVersion);
  Out.push_back(static_cast<char>(R.Overall));
  putU32(Out, R.PairsExamined);
  putU32(Out, R.PairsJoinable);
  putU32(Out, R.PairsConflicting);
  putU32(Out, R.PairsUnknown);
  putU64(Out, static_cast<uint64_t>(R.AnalysisSeconds * 1e6));
  // Spellings sorted so the blob is a deterministic function of the report.
  std::vector<std::string> Certified(R.CertifiedRules.begin(),
                                     R.CertifiedRules.end());
  std::sort(Certified.begin(), Certified.end());
  putU32(Out, static_cast<uint32_t>(Certified.size()));
  for (const std::string &S : Certified)
    putStr(Out, S);
  putU32(Out, static_cast<uint32_t>(R.UnresolvedPairs.size()));
  for (const auto &[A, B] : R.UnresolvedPairs) {
    putStr(Out, A);
    putStr(Out, B);
  }
  putU32(Out, static_cast<uint32_t>(R.Findings.size()));
  for (const Finding &F : R.Findings) {
    Out.push_back(static_cast<char>(F.Sev));
    putStr(Out, F.Code);
    putU32(Out, F.Loc.Line);
    putU32(Out, F.Loc.Col);
    putStr(Out, F.PatternName);
    putStr(Out, F.RuleName);
    putU32(Out, static_cast<uint32_t>(F.Alternate + 1));
    putStr(Out, F.Message);
  }
  return Out;
}

std::unique_ptr<ConfluenceReport>
deserializeConfluence(std::string_view Bytes, std::string *Error) {
  CertReader Rd{Bytes, 0, {}};
  auto Fail = [&](std::string Why) -> std::unique_ptr<ConfluenceReport> {
    if (Error)
      *Error = Rd.Error.empty() ? std::move(Why) : Rd.Error;
    return nullptr;
  };
  if (Bytes.size() < 8 || Bytes.compare(0, 4, kMagic, 4) != 0)
    return Fail("not a confluence certificate (bad magic)");
  Rd.Pos = 4;
  uint32_t Version = 0;
  if (!Rd.readU32(Version))
    return Fail("truncated confluence certificate");
  if (Version != kCertVersion)
    return Fail("unsupported confluence certificate version " +
                std::to_string(Version));
  auto R = std::make_unique<ConfluenceReport>();
  uint8_t Verd = 0;
  uint64_t Micros = 0;
  if (!Rd.readU8(Verd) || !Rd.readU32(R->PairsExamined) ||
      !Rd.readU32(R->PairsJoinable) || !Rd.readU32(R->PairsConflicting) ||
      !Rd.readU32(R->PairsUnknown) || !Rd.readU64(Micros))
    return Fail("truncated confluence certificate");
  if (Verd > 2)
    return Fail("invalid confluence verdict");
  R->Overall = static_cast<Verdict>(Verd);
  R->AnalysisSeconds = static_cast<double>(Micros) / 1e6;

  uint32_t N = 0;
  if (!Rd.readU32(N))
    return Fail("truncated confluence certificate");
  if (static_cast<uint64_t>(N) * 4 > Bytes.size() - Rd.Pos)
    return Fail("implausible certified-rule count");
  for (uint32_t I = 0; I < N; ++I) {
    std::string S;
    if (!Rd.readStr(S))
      return Fail("truncated confluence certificate");
    R->CertifiedRules.insert(std::move(S));
  }
  if (!Rd.readU32(N))
    return Fail("truncated confluence certificate");
  if (static_cast<uint64_t>(N) * 8 > Bytes.size() - Rd.Pos)
    return Fail("implausible unresolved-pair count");
  for (uint32_t I = 0; I < N; ++I) {
    std::string A, B;
    if (!Rd.readStr(A) || !Rd.readStr(B))
      return Fail("truncated confluence certificate");
    R->UnresolvedPairs.emplace_back(std::move(A), std::move(B));
  }
  if (!Rd.readU32(N))
    return Fail("truncated confluence certificate");
  if (static_cast<uint64_t>(N) * 25 > Bytes.size() - Rd.Pos)
    return Fail("implausible finding count");
  for (uint32_t I = 0; I < N; ++I) {
    Finding F;
    uint8_t Sev = 0;
    uint32_t AltPlus1 = 0;
    if (!Rd.readU8(Sev) || !Rd.readStr(F.Code) || !Rd.readU32(F.Loc.Line) ||
        !Rd.readU32(F.Loc.Col) || !Rd.readStr(F.PatternName) ||
        !Rd.readStr(F.RuleName) || !Rd.readU32(AltPlus1) ||
        !Rd.readStr(F.Message))
      return Fail("truncated confluence certificate");
    if (Sev > 2)
      return Fail("invalid finding severity in confluence certificate");
    F.Sev = static_cast<Severity>(Sev);
    F.Alternate = static_cast<int>(AltPlus1) - 1;
    R->Findings.push_back(std::move(F));
  }
  if (Rd.Pos != Bytes.size())
    return Fail("trailing bytes after confluence certificate");
  return R;
}

} // namespace pypm::analysis::critical
