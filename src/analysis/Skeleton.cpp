//===- analysis/Skeleton.cpp - Pattern skeletons for overlap checks ----------===//

#include "analysis/Skeleton.h"

#include <algorithm>
#include <unordered_map>

using namespace pypm;
using namespace pypm::analysis;
using namespace pypm::pattern;

const Skel *SkelArena::op(term::OpId Op, std::vector<const Skel *> Kids) {
  auto N = std::make_unique<Skel>();
  N->Kind = Skel::K::Op;
  N->Op = Op;
  N->Kids = std::move(Kids);
  Storage.push_back(std::move(N));
  return Storage.back().get();
}

const Skel *SkelArena::anyOp(std::vector<const Skel *> Kids) {
  auto N = std::make_unique<Skel>();
  N->Kind = Skel::K::AnyOp;
  N->Kids = std::move(Kids);
  Storage.push_back(std::move(N));
  return Storage.back().get();
}

namespace {

/// Caps keeping the disjunction expansion linear-ish. A pattern deeper or
/// wider than these is widened to Any and the alternate marked Truncated,
/// which keeps the over-approximation sound (wider set) and merely costs
/// precision.
constexpr unsigned kMaxDepth = 8;
constexpr size_t kMaxDisj = 24;

struct Extractor {
  SkelArena &A;
  AltShape &F;
  /// Term-variable and function-variable occurrence counts (linearity).
  std::unordered_map<Symbol, unsigned> Occ;

  Extractor(SkelArena &A, AltShape &F) : A(A), F(F) {}

  std::vector<const Skel *> widen() {
    F.Truncated = true;
    return {A.any()};
  }

  /// Cartesian product of per-child disjunctions into app-shaped nodes.
  std::vector<const Skel *>
  product(const std::vector<std::vector<const Skel *>> &PerChild,
          const std::function<const Skel *(std::vector<const Skel *>)> &Make) {
    size_t Count = 1;
    for (const auto &C : PerChild) {
      Count *= C.size();
      if (Count > kMaxDisj) {
        // Widen each child to the union-of-anything instead of truncating
        // the disjunction list (dropping disjuncts would shrink the set —
        // the wrong direction for an over-approximation).
        std::vector<const Skel *> AnyKids(PerChild.size(), A.any());
        F.Truncated = true;
        return {Make(std::move(AnyKids))};
      }
    }
    std::vector<const Skel *> Out;
    std::vector<size_t> Idx(PerChild.size(), 0);
    for (;;) {
      std::vector<const Skel *> Kids;
      Kids.reserve(PerChild.size());
      for (size_t I = 0; I != PerChild.size(); ++I)
        Kids.push_back(PerChild[I][Idx[I]]);
      Out.push_back(Make(std::move(Kids)));
      size_t I = PerChild.size();
      while (I > 0) {
        --I;
        if (++Idx[I] != PerChild[I].size())
          break;
        Idx[I] = 0;
        if (I == 0)
          return Out;
      }
      if (PerChild.empty())
        return Out;
    }
  }

  std::vector<const Skel *> visit(const Pattern *P, unsigned Depth) {
    switch (P->kind()) {
    case PatternKind::Var:
      ++Occ[cast<VarPattern>(P)->name()];
      return {A.any()};
    case PatternKind::App: {
      const auto *App = cast<AppPattern>(P);
      if (Depth >= kMaxDepth)
        return widen();
      std::vector<std::vector<const Skel *>> PerChild;
      for (const Pattern *C : App->children())
        PerChild.push_back(visit(C, Depth + 1));
      term::OpId Op = App->op();
      return product(PerChild, [&](std::vector<const Skel *> Kids) {
        return A.op(Op, std::move(Kids));
      });
    }
    case PatternKind::FunVarApp: {
      const auto *FApp = cast<FunVarAppPattern>(P);
      ++Occ[FApp->funVar()];
      if (Depth >= kMaxDepth)
        return widen();
      std::vector<std::vector<const Skel *>> PerChild;
      for (const Pattern *C : FApp->children())
        PerChild.push_back(visit(C, Depth + 1));
      return product(PerChild, [&](std::vector<const Skel *> Kids) {
        return A.anyOp(std::move(Kids));
      });
    }
    case PatternKind::Alt: {
      const auto *Alt = cast<AltPattern>(P);
      std::vector<const Skel *> L = visit(Alt->left(), Depth);
      std::vector<const Skel *> R = visit(Alt->right(), Depth);
      if (L.size() + R.size() > kMaxDisj)
        return widen();
      L.insert(L.end(), R.begin(), R.end());
      return L;
    }
    case PatternKind::Guarded:
      F.Guarded = true;
      return visit(cast<GuardedPattern>(P)->sub(), Depth);
    case PatternKind::Exists: {
      const auto *E = cast<ExistsPattern>(P);
      unsigned Before = Occ[E->var()];
      std::vector<const Skel *> S = visit(E->sub(), Depth);
      // ∃x with x never occurring in term position can only be satisfied
      // by a guard binding-check failure — treat as an (always-false)
      // guard so the alternate never acts as a subsumer.
      if (Occ[E->var()] == Before)
        F.Guarded = true;
      return S;
    }
    case PatternKind::ExistsFun: {
      const auto *E = cast<ExistsFunPattern>(P);
      unsigned Before = Occ[E->funVar()];
      std::vector<const Skel *> S = visit(E->sub(), Depth);
      if (Occ[E->funVar()] == Before)
        F.Guarded = true;
      return S;
    }
    case PatternKind::MatchConstraint:
      F.Constrained = true;
      // The constraint restricts (a subterm of) the match; dropping it
      // only enlarges the set. Sub carries the root shape.
      return visit(cast<MatchConstraintPattern>(P)->sub(), Depth);
    case PatternKind::Mu:
      F.Recursive = true;
      // One-step approximation: the μ matches whatever its body matches
      // with recursive occurrences erased to Any (below).
      return visit(cast<MuPattern>(P)->body(), Depth);
    case PatternKind::RecCall:
      F.Recursive = true;
      return {A.any()};
    }
    return {A.any()};
  }
};

/// Flattens the top-level ‖-list (right-associatively folded by the
/// frontend) into definition-ordered alternates.
void flattenAlts(const Pattern *P, std::vector<const Pattern *> &Out) {
  if (const auto *Alt = dyn_cast<AltPattern>(P)) {
    flattenAlts(Alt->left(), Out);
    flattenAlts(Alt->right(), Out);
    return;
  }
  Out.push_back(P);
}

} // namespace

std::vector<AltShape> analysis::extractAlternates(const NamedPattern &NP,
                                                  SkelArena &A) {
  std::vector<AltShape> Out;
  if (!NP.Pat)
    return Out;
  const Pattern *Top = NP.Pat;
  bool TopMu = false;
  if (const auto *Mu = dyn_cast<MuPattern>(Top)) {
    // A self-recursive group: the ‖-list lives inside the μ. Alternates
    // extracted from inside are still over-approximations of the whole
    // pattern's per-alternate sets, but each is Recursive by construction.
    Top = Mu->body();
    TopMu = true;
  }
  std::vector<const Pattern *> Alts;
  flattenAlts(Top, Alts);
  for (size_t I = 0; I != Alts.size(); ++I) {
    AltShape F;
    F.Pat = Alts[I];
    Extractor E(A, F);
    F.Disj = E.visit(Alts[I], 0);
    if (TopMu)
      F.Recursive = true;
    for (const auto &[Sym, Count] : E.Occ)
      if (Count > 1)
        F.NonLinear = true;
    F.Loc = I < NP.AltLocs.size() ? NP.AltLocs[I] : NP.Loc;
    Out.push_back(std::move(F));
  }
  return Out;
}

const Skel *analysis::rhsSkeleton(const RhsExpr *Rhs, SkelArena &A) {
  switch (Rhs->kind()) {
  case RhsKind::VarRef:
    return A.any();
  case RhsKind::App: {
    std::vector<const Skel *> Kids;
    for (const RhsExpr *C : Rhs->children())
      Kids.push_back(rhsSkeleton(C, A));
    return A.op(Rhs->op(), std::move(Kids));
  }
  case RhsKind::FunVarApp: {
    std::vector<const Skel *> Kids;
    for (const RhsExpr *C : Rhs->children())
      Kids.push_back(rhsSkeleton(C, A));
    return A.anyOp(std::move(Kids));
  }
  }
  return A.any();
}

bool analysis::subsumes(const Skel *A, const Skel *B) {
  if (A->Kind == Skel::K::Any)
    return true;
  if (B->Kind == Skel::K::Any)
    return false; // B's set is everything; only Any covers it
  if (A->arity() != B->arity())
    return false;
  if (A->Kind == Skel::K::Op &&
      (B->Kind != Skel::K::Op || A->Op != B->Op))
    return false; // a concrete op only covers the same op (AnyOp B is wider)
  for (unsigned I = 0; I != A->arity(); ++I)
    if (!subsumes(A->Kids[I], B->Kids[I]))
      return false;
  return true;
}

bool analysis::mayUnify(const Skel *A, const Skel *B) {
  if (A->Kind == Skel::K::Any || B->Kind == Skel::K::Any)
    return true;
  if (A->arity() != B->arity())
    return false;
  if (A->Kind == Skel::K::Op && B->Kind == Skel::K::Op && A->Op != B->Op)
    return false;
  for (unsigned I = 0; I != A->arity(); ++I)
    if (!mayUnify(A->Kids[I], B->Kids[I]))
      return false;
  return true;
}

namespace {

void boundVarsInto(const Pattern *P, std::unordered_set<Symbol> &Out) {
  switch (P->kind()) {
  case PatternKind::Var:
    Out.insert(cast<VarPattern>(P)->name());
    return;
  case PatternKind::App:
    for (const Pattern *C : cast<AppPattern>(P)->children())
      boundVarsInto(C, Out);
    return;
  case PatternKind::FunVarApp: {
    const auto *F = cast<FunVarAppPattern>(P);
    Out.insert(F->funVar());
    for (const Pattern *C : F->children())
      boundVarsInto(C, Out);
    return;
  }
  case PatternKind::Alt: {
    const auto *Alt = cast<AltPattern>(P);
    std::unordered_set<Symbol> L, R;
    boundVarsInto(Alt->left(), L);
    boundVarsInto(Alt->right(), R);
    for (Symbol S : L)
      if (R.count(S))
        Out.insert(S);
    return;
  }
  case PatternKind::Guarded:
    boundVarsInto(cast<GuardedPattern>(P)->sub(), Out);
    return;
  case PatternKind::Exists: {
    // checkName semantics: a successful match implies the binder is bound.
    const auto *E = cast<ExistsPattern>(P);
    boundVarsInto(E->sub(), Out);
    Out.insert(E->var());
    return;
  }
  case PatternKind::ExistsFun: {
    const auto *E = cast<ExistsFunPattern>(P);
    boundVarsInto(E->sub(), Out);
    Out.insert(E->funVar());
    return;
  }
  case PatternKind::MatchConstraint: {
    const auto *M = cast<MatchConstraintPattern>(P);
    boundVarsInto(M->sub(), Out);
    boundVarsInto(M->constraint(), Out);
    Out.insert(M->var());
    return;
  }
  case PatternKind::Mu:
  case PatternKind::RecCall:
    // Conservative: μ matches contribute no guaranteed bindings (what the
    // unfolding binds depends on which body alternate fired).
    return;
  }
}

} // namespace

std::unordered_set<Symbol> analysis::guaranteedBound(const Pattern *P) {
  std::unordered_set<Symbol> Out;
  if (P)
    boundVarsInto(P, Out);
  return Out;
}

void analysis::rhsVariables(const RhsExpr *Rhs,
                            std::unordered_set<Symbol> &Out) {
  switch (Rhs->kind()) {
  case RhsKind::VarRef:
    Out.insert(Rhs->var());
    break;
  case RhsKind::FunVarApp:
    Out.insert(Rhs->funVar());
    [[fallthrough]];
  case RhsKind::App:
    for (const RhsExpr *C : Rhs->children())
      rhsVariables(C, Out);
    break;
  }
  // Attribute templates are guard expressions over matched variables; an
  // unbound one also aborts the RHS build, so collect them too.
  std::function<void(const pattern::GuardExpr *)> Walk =
      [&](const pattern::GuardExpr *G) {
        if (!G)
          return;
        if (G->kind() == pattern::GuardKind::Attr ||
            G->kind() == pattern::GuardKind::FunAttr)
          Out.insert(G->varName());
        if (G->lhs())
          Walk(G->lhs());
        if (G->rhs())
          Walk(G->rhs());
      };
  for (const RhsExpr::AttrTemplate &T : Rhs->attrTemplates())
    Walk(T.Value);
}
