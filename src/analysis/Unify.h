//===- analysis/Unify.h - First-order unification over patterns -*- C++ -*-===//
///
/// \file
/// The term domain for critical-pair analysis (see CriticalPairs.h): a
/// CorePyPM pattern flattened into plain first-order terms — variables,
/// concrete operator applications, and function-variable applications —
/// plus Robinson unification with occurs check over that domain.
///
/// Flattening is a conservative projection of the full pattern grammar:
///  - alternates expand into a bounded disjunction of flat readings;
///  - guards are collected into a per-reading conjunction (cloned with the
///    reading's variable renaming so two rules' same-named variables cannot
///    collide in the solver);
///  - ∃ binders are transparent (the binder only demands a binding);
///  - a match constraint `x <= p'` inlines p' at x's occurrence when x
///    occurs exactly once in the base reading;
///  - μ-recursion, recursive calls, multi-occurrence constraints, and
///    blow-ups past the expansion cap BAIL OUT — the pattern gets no flat
///    reading and the caller must treat every overlap involving it as
///    unknown rather than absent. Bailing is what keeps the projection
///    sound: a pattern is never silently under-approximated.
///
/// Unification treats a function-variable application F(p1..pn) as
/// unifiable with any application of the same arity; the resulting pin
/// (F ↦ concrete operator, or F ↦ G) is recorded in the substitution so
/// guard compatibility and witness construction can act on it.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_ANALYSIS_UNIFY_H
#define PYPM_ANALYSIS_UNIFY_H

#include "pattern/Pattern.h"

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pypm::analysis::critical {

/// A flat first-order pattern term. Nodes are immutable and owned by a
/// PTermArena; sharing is allowed (the term denotes a tree).
struct PTerm {
  enum class K : uint8_t { Var, Op, Fun };
  K Kind = K::Var;
  Symbol Var;      ///< K::Var — renamed-apart variable name
  term::OpId Op;   ///< K::Op — concrete operator
  Symbol Fun;      ///< K::Fun — renamed-apart function variable
  std::vector<const PTerm *> Kids; ///< K::Op / K::Fun children

  std::string toString(const term::Signature &Sig) const;
};

/// Owns PTerm nodes; nodes live as long as the arena.
class PTermArena {
public:
  const PTerm *var(Symbol Name);
  const PTerm *op(term::OpId Op, std::vector<const PTerm *> Kids);
  const PTerm *fun(Symbol FunVar, std::vector<const PTerm *> Kids);

private:
  std::deque<PTerm> Store;
  std::unordered_map<Symbol, const PTerm *> VarCache;
};

/// One flat reading of a pattern: the term plus the guard conjunction that
/// holds on any match through this reading (alternate-spine guards, deep
/// guards, and rule guards all join the same conjunction downstream).
struct FlatAlt {
  const PTerm *Term = nullptr;
  std::vector<const pattern::GuardExpr *> Guards;
  /// Top-level ‖-alternate this reading came from (0-based; nested
  /// alternates share their top-level index). Used for reporting and for
  /// the trivial-self-overlap exclusion.
  int TopAlt = 0;
};

struct FlattenResult {
  std::vector<FlatAlt> Alts;
  /// True when the pattern contains a construct the flat domain cannot
  /// represent (μ-recursion, a multi-occurrence match constraint) or the
  /// expansion cap tripped. Alts is empty; the pattern must be treated as
  /// "overlaps unknown", never "no overlaps".
  bool Bailed = false;
  std::string BailReason;
};

/// Flattens \p NP.Pat, renaming every variable and function variable to
/// `<Prefix><name>` (renamed guard clones are allocated in \p GuardArena).
/// \p MaxAlts caps the disjunction expansion.
FlattenResult flattenPattern(const pattern::NamedPattern &NP,
                             std::string_view Prefix, PTermArena &Arena,
                             pattern::PatternArena &GuardArena,
                             unsigned MaxAlts = 16);

/// A triangular substitution: variables map to terms (resolve through
/// repeated lookups), function variables union into alias classes whose
/// representative may be pinned to a concrete operator.
struct Subst {
  std::unordered_map<Symbol, const PTerm *> Vars;
  std::unordered_map<Symbol, Symbol> FunAlias;   ///< funvar → representative
  std::unordered_map<Symbol, term::OpId> FunOp;  ///< representative → op pin

  /// Resolves \p F through the alias chain.
  Symbol funRep(Symbol F) const;
  /// The operator \p F is pinned to, if any.
  std::optional<term::OpId> funPin(Symbol F) const;
};

/// Most general unifier of \p A and \p B, or nullopt when they clash.
/// Purely syntactic: guards are NOT consulted (callers refine with the
/// guard solver afterwards).
std::optional<Subst> unify(const PTerm *A, const PTerm *B);

/// Deep-applies \p S to \p T over \p Arena. Bound-variable occurrences of
/// the same binding share the rebuilt node, so nonlinear instantiations
/// stay observably shared downstream (witness graphs reuse one node per
/// binding). Function variables pinned to an operator become Op nodes.
const PTerm *applySubst(const PTerm *T, const Subst &S, PTermArena &Arena);

/// Collects the non-variable proper subterms of \p T in preorder
/// (duplicates by shared structure appear once).
std::vector<const PTerm *> properSubterms(const PTerm *T);

/// Counts occurrences of variable \p V in \p T.
unsigned countVar(const PTerm *T, Symbol V);

} // namespace pypm::analysis::critical

#endif // PYPM_ANALYSIS_UNIFY_H
