//===- analysis/GuardSolver.cpp - Guard satisfiability analysis --------------===//

#include "analysis/GuardSolver.h"

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

using namespace pypm;
using namespace pypm::analysis;
using namespace pypm::pattern;

namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

int64_t satAdd(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) + B;
  if (R > kMax)
    return kMax;
  if (R < kMin)
    return kMin;
  return static_cast<int64_t>(R);
}
int64_t satSub(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) - B;
  if (R > kMax)
    return kMax;
  if (R < kMin)
    return kMin;
  return static_cast<int64_t>(R);
}
int64_t satMul(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) * B;
  if (R > kMax)
    return kMax;
  if (R < kMin)
    return kMin;
  return static_cast<int64_t>(R);
}

/// Abstract value: an interval, or a symbolic operator / op-class identity.
/// Symbolic values are integers at runtime (operator indices, class symbol
/// ids), but the analysis never assumes *which* integers — only that two
/// distinct names of the same kind denote distinct values.
struct AbsVal {
  int64_t Lo = kMin, Hi = kMax;
  enum class SymK : uint8_t { None, Op, Class } Sym = SymK::None;
  Symbol SymName;

  bool isTop() const { return Lo == kMin && Hi == kMax && Sym == SymK::None; }
  bool isConst() const { return Sym == SymK::None && Lo == Hi; }
  bool isSymbolic() const { return Sym != SymK::None; }
  bool empty() const { return Sym == SymK::None && Lo > Hi; }

  static AbsVal top() { return {}; }
  static AbsVal constant(int64_t V) {
    AbsVal A;
    A.Lo = A.Hi = V;
    return A;
  }
  static AbsVal symbolic(SymK K, Symbol Name) {
    AbsVal A;
    A.Sym = K;
    A.SymName = Name;
    return A;
  }
};

/// Key for one attribute term: (term-or-fun, variable, attribute).
using AttrKey = std::tuple<bool, uint32_t, uint32_t>;

AttrKey keyFor(const GuardExpr *G) {
  return {G->kind() == GuardKind::FunAttr, G->varName().rawId(),
          G->attrName().rawId()};
}

using Env = std::map<AttrKey, AbsVal>;

AbsVal evalArith(const GuardExpr *G, const Env &E) {
  switch (G->kind()) {
  case GuardKind::IntLit:
    return AbsVal::constant(G->intValue());
  case GuardKind::Attr:
  case GuardKind::FunAttr: {
    auto It = E.find(keyFor(G));
    return It == E.end() ? AbsVal::top() : It->second;
  }
  case GuardKind::OpClassRef:
    return AbsVal::symbolic(AbsVal::SymK::Class, G->refName());
  case GuardKind::OpRef:
    return AbsVal::symbolic(AbsVal::SymK::Op, G->refName());
  case GuardKind::Add:
  case GuardKind::Sub:
  case GuardKind::Mul:
  case GuardKind::Div:
  case GuardKind::Mod: {
    AbsVal L = evalArith(G->lhs(), E);
    AbsVal R = evalArith(G->rhs(), E);
    if (L.isSymbolic() || R.isSymbolic() || L.empty() || R.empty())
      return AbsVal::top(); // arithmetic over opaque identities: no info
    switch (G->kind()) {
    case GuardKind::Add:
      return {satAdd(L.Lo, R.Lo), satAdd(L.Hi, R.Hi), AbsVal::SymK::None, {}};
    case GuardKind::Sub:
      return {satSub(L.Lo, R.Hi), satSub(L.Hi, R.Lo), AbsVal::SymK::None, {}};
    case GuardKind::Mul:
      if (L.isConst() && R.isConst())
        return AbsVal::constant(satMul(L.Lo, R.Lo));
      return AbsVal::top();
    case GuardKind::Div:
      if (L.isConst() && R.isConst() && R.Lo != 0 &&
          !(L.Lo == kMin && R.Lo == -1))
        return AbsVal::constant(L.Lo / R.Lo);
      return AbsVal::top(); // div-by-zero sticks the guard; stay silent
    case GuardKind::Mod:
      if (L.isConst() && R.isConst() && R.Lo != 0 &&
          !(L.Lo == kMin && R.Lo == -1))
        return AbsVal::constant(L.Lo % R.Lo);
      return AbsVal::top();
    default:
      return AbsVal::top();
    }
  }
  default:
    return AbsVal::top(); // boolean kind in arith position: malformed
  }
}

/// Structural equality of two *total* arithmetic expressions (no Div/Mod,
/// which can stick): e ⋈ e shortcuts rely on the expression denoting the
/// same value on both sides whenever it denotes at all.
bool isTotal(const GuardExpr *G) {
  switch (G->kind()) {
  case GuardKind::Div:
  case GuardKind::Mod:
    return false;
  default:
    break;
  }
  if (G->lhs() && !isTotal(G->lhs()))
    return false;
  if (G->rhs() && !isTotal(G->rhs()))
    return false;
  return true;
}

bool structEq(const GuardExpr *A, const GuardExpr *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case GuardKind::IntLit:
    return A->intValue() == B->intValue();
  case GuardKind::Attr:
  case GuardKind::FunAttr:
    return A->varName() == B->varName() && A->attrName() == B->attrName();
  case GuardKind::OpClassRef:
  case GuardKind::OpRef:
    return A->refName() == B->refName();
  default:
    break;
  }
  if ((A->lhs() != nullptr) != (B->lhs() != nullptr) ||
      (A->rhs() != nullptr) != (B->rhs() != nullptr))
    return false;
  if (A->lhs() && !structEq(A->lhs(), B->lhs()))
    return false;
  if (A->rhs() && !structEq(A->rhs(), B->rhs()))
    return false;
  return true;
}

Tri triNot(Tri T) {
  if (T == Tri::True)
    return Tri::False;
  if (T == Tri::False)
    return Tri::True;
  return Tri::Unknown;
}

Tri evalBool(const GuardExpr *G, const Env &E) {
  switch (G->kind()) {
  case GuardKind::And: {
    Tri L = evalBool(G->lhs(), E);
    Tri R = evalBool(G->rhs(), E);
    if (L == Tri::False || R == Tri::False)
      return Tri::False;
    if (L == Tri::True && R == Tri::True)
      return Tri::True;
    return Tri::Unknown;
  }
  case GuardKind::Or: {
    Tri L = evalBool(G->lhs(), E);
    Tri R = evalBool(G->rhs(), E);
    if (L == Tri::True || R == Tri::True)
      return Tri::True;
    if (L == Tri::False && R == Tri::False)
      return Tri::False;
    return Tri::Unknown;
  }
  case GuardKind::Not:
    return triNot(evalBool(G->lhs(), E));
  case GuardKind::Eq:
  case GuardKind::Ne:
  case GuardKind::Lt:
  case GuardKind::Le:
  case GuardKind::Gt:
  case GuardKind::Ge: {
    const GuardExpr *L = G->lhs(), *R = G->rhs();
    if (structEq(L, R) && isTotal(L)) {
      switch (G->kind()) {
      case GuardKind::Eq:
      case GuardKind::Le:
      case GuardKind::Ge:
        return Tri::True;
      default:
        return Tri::False; // e ≠ e, e < e, e > e
      }
    }
    AbsVal A = evalArith(L, E);
    AbsVal B = evalArith(R, E);
    if (A.empty() || B.empty())
      return Tri::Unknown; // refuted env: conjunction already dead
    if (A.isSymbolic() || B.isSymbolic()) {
      // Two identities of the same kind compare by name; anything else
      // (symbolic vs numeric, op vs class) could collide numerically.
      if (A.isSymbolic() && B.isSymbolic() && A.Sym == B.Sym) {
        bool Same = A.SymName == B.SymName;
        if (G->kind() == GuardKind::Eq)
          return Same ? Tri::True : Tri::False;
        if (G->kind() == GuardKind::Ne)
          return Same ? Tri::False : Tri::True;
      }
      return Tri::Unknown;
    }
    switch (G->kind()) {
    case GuardKind::Eq:
      if (A.Hi < B.Lo || B.Hi < A.Lo)
        return Tri::False;
      if (A.isConst() && B.isConst())
        return Tri::True; // equal constants (disjointness ruled out above)
      return Tri::Unknown;
    case GuardKind::Ne:
      if (A.Hi < B.Lo || B.Hi < A.Lo)
        return Tri::True;
      if (A.isConst() && B.isConst())
        return Tri::False;
      return Tri::Unknown;
    case GuardKind::Lt:
      if (A.Hi < B.Lo)
        return Tri::True;
      if (A.Lo >= B.Hi)
        return Tri::False;
      return Tri::Unknown;
    case GuardKind::Le:
      if (A.Hi <= B.Lo)
        return Tri::True;
      if (A.Lo > B.Hi)
        return Tri::False;
      return Tri::Unknown;
    case GuardKind::Gt:
      if (A.Lo > B.Hi)
        return Tri::True;
      if (A.Hi <= B.Lo)
        return Tri::False;
      return Tri::Unknown;
    case GuardKind::Ge:
      if (A.Lo >= B.Hi)
        return Tri::True;
      if (A.Hi < B.Lo)
        return Tri::False;
      return Tri::Unknown;
    default:
      return Tri::Unknown;
    }
  }
  default:
    return Tri::Unknown; // arith kind in bool position: malformed
  }
}

void splitConj(const GuardExpr *G, std::vector<const GuardExpr *> &Out) {
  if (G->kind() == GuardKind::And) {
    splitConj(G->lhs(), Out);
    splitConj(G->rhs(), Out);
    return;
  }
  Out.push_back(G);
}

/// Narrows \p E with one comparison conjunct of shape `attr ⋈ e` or
/// `e ⋈ attr`. Returns false on a contradiction (empty interval or
/// clashing symbolic identity).
bool narrowWith(const GuardExpr *Leaf, Env &E) {
  GuardKind K = Leaf->kind();
  if (K != GuardKind::Eq && K != GuardKind::Lt && K != GuardKind::Le &&
      K != GuardKind::Gt && K != GuardKind::Ge)
    return true; // Ne and non-comparisons don't narrow intervals

  const GuardExpr *L = Leaf->lhs(), *R = Leaf->rhs();
  auto isAttrTerm = [](const GuardExpr *G) {
    return G->kind() == GuardKind::Attr || G->kind() == GuardKind::FunAttr;
  };
  // Normalize to attr ⋈ value, flipping the comparison when mirrored.
  if (!isAttrTerm(L)) {
    if (!isAttrTerm(R))
      return true;
    std::swap(L, R);
    switch (K) {
    case GuardKind::Lt:
      K = GuardKind::Gt;
      break;
    case GuardKind::Le:
      K = GuardKind::Ge;
      break;
    case GuardKind::Gt:
      K = GuardKind::Lt;
      break;
    case GuardKind::Ge:
      K = GuardKind::Le;
      break;
    default:
      break;
    }
  }
  AbsVal V = evalArith(R, E);
  AbsVal &Cur = E[keyFor(L)];

  if (V.isSymbolic()) {
    if (K != GuardKind::Eq)
      return true; // ordered comparisons on identities: no info
    if (Cur.isSymbolic())
      return Cur.Sym == V.Sym ? Cur.SymName == V.SymName : true;
    if (!Cur.isTop())
      return true; // mixed numeric/symbolic facts: stay conservative
    Cur = V;
    return true;
  }
  if (Cur.isSymbolic())
    return true;

  switch (K) {
  case GuardKind::Eq:
    if (!V.isConst())
      return true;
    Cur.Lo = std::max(Cur.Lo, V.Lo);
    Cur.Hi = std::min(Cur.Hi, V.Lo);
    break;
  case GuardKind::Lt:
    if (V.Hi == kMin)
      return false; // attr < INT64_MIN is unsatisfiable outright
    Cur.Hi = std::min(Cur.Hi, V.Hi - 1);
    break;
  case GuardKind::Le:
    Cur.Hi = std::min(Cur.Hi, V.Hi);
    break;
  case GuardKind::Gt:
    if (V.Lo == kMax)
      return false;
    Cur.Lo = std::max(Cur.Lo, V.Lo + 1);
    break;
  case GuardKind::Ge:
    Cur.Lo = std::max(Cur.Lo, V.Lo);
    break;
  default:
    break;
  }
  return !Cur.empty();
}

GuardVerdict analyzeLeaves(std::span<const GuardExpr *const> Conj) {
  GuardVerdict V;
  if (Conj.empty())
    return V;

  // Vacuity: every conjunct provably true under the *top* environment.
  Env Top;
  bool AllTrue = true;
  for (const GuardExpr *G : Conj)
    AllTrue = AllTrue && evalBool(G, Top) == Tri::True;
  if (AllTrue) {
    V.Vacuous = true;
    return V;
  }

  // Unsatisfiability: narrow a shared environment with every comparison
  // conjunct (two rounds, so `x.a == y.b`-style chains see later facts),
  // then re-evaluate the whole conjunction under the narrowed environment.
  Env E;
  for (int Round = 0; Round != 2; ++Round)
    for (const GuardExpr *G : Conj)
      if (!narrowWith(G, E)) {
        V.Unsatisfiable = true;
        return V;
      }
  for (const GuardExpr *G : Conj)
    if (evalBool(G, E) == Tri::False) {
      V.Unsatisfiable = true;
      return V;
    }
  return V;
}

} // namespace

GuardVerdict analysis::analyzeGuard(const GuardExpr *G) {
  if (!G || !isBoolKind(G->kind()))
    return {};
  std::vector<const GuardExpr *> Leaves;
  splitConj(G, Leaves);
  return analyzeLeaves(Leaves);
}

GuardVerdict
analysis::analyzeConjunction(std::span<const GuardExpr *const> Conj) {
  std::vector<const GuardExpr *> Leaves;
  for (const GuardExpr *G : Conj)
    if (G && isBoolKind(G->kind()))
      splitConj(G, Leaves);
  return analyzeLeaves(Leaves);
}
