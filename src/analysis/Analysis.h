//===- analysis/Analysis.h - Static rule-set linter -------------*- C++ -*-===//
///
/// \file
/// pypm::analysis — static analysis over compiled CorePyPM rule sets,
/// producing structured, severity-ranked findings *before any match runs*:
///
///   analysis.shadowed-rule        W  a rule can never fire because an
///                                    earlier rule (in committed order)
///                                    always fires on a superset of terms
///   analysis.unreachable-alternate W an alternate is subsumed by an
///                                    earlier alternate of the same pattern
///   analysis.unsat-guard          E  a guard (or one rule path's guard
///                                    conjunction) is provably never true
///   analysis.vacuous-guard        W  a guard is provably always true
///   analysis.unproductive-mu      E  a μ-body recursive occurrence not
///                                    guarded by operator consumption — a
///                                    non-terminating unfold
///   analysis.rewrite-cycle        W  rules whose RHSes re-produce each
///                                    other's LHS shapes (SCC in the
///                                    RHS-unifies-with-LHS digraph)
///   analysis.opaque-rhs-op        N  an RHS operator no ShapeInference
///                                    rule covers (typed by the opaque
///                                    fallback)
///   analysis.generic-cost         N  an RHS operator the cost model
///                                    prices with the generic fallback
///
/// `pypmc lint --critical-pairs` (analysis/CriticalPairs.h) adds:
///
///   analysis.critical-pair        W  a critical pair whose two reducts
///                                    normalize to distinct normal forms
///                                    (confluence refuted, witness term
///                                    and both normal forms in Message)
///   analysis.joinability-unknown  W  a confluence proof obligation that
///                                    could not be discharged (μ bail-out,
///                                    unrealizable witness, step bound)
///   analysis.certified-confluent  N  the certificate: every overlap
///                                    joinable, every termination probe
///                                    passed
///
/// Error-severity findings are facts (the conservative analyses only
/// report what they can prove); warnings can over-report in the documented
/// heuristic corners. Consumed three ways: `pypmc lint`, the
/// RewriteOptions::Lint engine preflight, and the CI lint leg.
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_ANALYSIS_ANALYSIS_H
#define PYPM_ANALYSIS_ANALYSIS_H

#include "rewrite/Rule.h"
#include "support/Diagnostics.h"

#include <string>
#include <string_view>
#include <vector>

namespace pypm::graph {
class ShapeInference;
} // namespace pypm::graph

namespace pypm::analysis::critical {
struct ConfluenceReport;
} // namespace pypm::analysis::critical

namespace pypm::analysis {

struct Finding {
  Severity Sev = Severity::Warning;
  std::string Code;        ///< e.g. "analysis.shadowed-rule"
  SourceLoc Loc;           ///< DSL location when the library carries one
  std::string PatternName; ///< empty when not pattern-scoped
  std::string RuleName;    ///< empty when not rule-scoped
  int Alternate = -1;      ///< 0-based top-level alternate index, or -1
  std::string Message;

  /// "<line>:<col>: warning[analysis.x]: message" (location omitted when
  /// unknown — builder-API rule sets fall back to the names in Message).
  std::string render() const;
};

struct LintOptions {
  /// When set, RHS operators without a dedicated inference rule are
  /// reported as analysis.opaque-rhs-op notes.
  const graph::ShapeInference *Shapes = nullptr;
  /// Also report RHS operators the analytic cost model prices generically
  /// (analysis.generic-cost notes).
  bool CostModelNotes = false;
  /// Confluence certificate for the same rule set (CriticalPairs.h).
  /// Borrowed. When set and the certificate proves every overlap among a
  /// rewrite-cycle SCC's rules joinable, that cycle's finding downgrades
  /// from warning to note: the skeleton heuristic saw a loop shape, but
  /// the critical-pair analysis proved the rules cannot diverge and their
  /// termination probes passed.
  const critical::ConfluenceReport *Confluence = nullptr;
};

struct LintReport {
  std::vector<Finding> Findings;
  unsigned Errors = 0, Warnings = 0, Notes = 0;

  bool clean() const { return Errors == 0; }
  bool hasCode(std::string_view Code) const;
  unsigned countCode(std::string_view Code) const;

  /// Re-establishes the report's stable output order — most severe first,
  /// then source location, then every remaining field (a total order).
  /// Linter::run leaves reports sorted; callers that append findings
  /// afterwards (e.g. `pypmc lint --critical-pairs` folding a confluence
  /// report in) call this to restore the invariant.
  void sortFindings();

  /// One rendered finding per line, followed by a summary line.
  std::string renderAll() const;
  /// {"findings":[...],"errors":N,"warnings":N,"notes":N}
  std::string json() const;
  /// Forwards every finding into \p DE with its code (the engine preflight
  /// path; Sema-style rendering falls out of Diagnostic::render).
  void toDiagnostics(DiagnosticEngine &DE) const;
};

/// Lints a rule set in committed order — the exact order the engine would
/// try patterns and rules.
LintReport lintRuleSet(const rewrite::RuleSet &RS, const term::Signature &Sig,
                       const LintOptions &Opts = {});

/// Lints a whole compiled library: every pattern (match-only ones too) gets
/// the per-pattern analyses; ordering/cycle analyses run over the
/// rule-bearing entries in definition order.
LintReport lintLibrary(const pattern::Library &Lib, const term::Signature &Sig,
                       const LintOptions &Opts = {});

} // namespace pypm::analysis

#endif // PYPM_ANALYSIS_ANALYSIS_H
