//===- analysis/GuardSolver.h - Guard satisfiability analysis ---*- C++ -*-===//
///
/// \file
/// Constant folding and interval reasoning over pattern::GuardExpr for the
/// rule-set linter: decides, conservatively, whether a guard (or a
/// conjunction of guards accumulated along one match path) is *provably
/// unsatisfiable* (never true — the guarded alternate or rule is dead) or
/// *provably vacuous* (true under every environment — the guard is noise).
///
/// The abstract domain is one interval [Lo, Hi] over int64 per attribute
/// term `x.α` / `F.α`, extended with symbolic operator/op-class identities
/// so `s.op_id == op("Const") && s.op_id == op("Relu")` refutes without
/// knowing the process-local operator indices. Conjunctions are narrowed:
/// each `attr ⋈ const` conjunct refines the attribute's interval, an empty
/// intersection (or clashing symbolic identity) proves unsatisfiability,
/// and the final three-valued evaluation under the narrowed environment
/// catches contradictions the narrowing itself cannot (e.g. `a||b` with
/// both arms refuted). Everything else evaluates to Unknown, so the
/// analysis can have false negatives but no false positives — see
/// DESIGN.md §"Static rule-set analysis".
///
//===----------------------------------------------------------------------===//

#ifndef PYPM_ANALYSIS_GUARDSOLVER_H
#define PYPM_ANALYSIS_GUARDSOLVER_H

#include "pattern/Guard.h"

#include <span>

namespace pypm::analysis {

/// Three-valued logic for abstract guard evaluation.
enum class Tri : uint8_t { False, True, Unknown };

struct GuardVerdict {
  bool Unsatisfiable = false; ///< provably false under every environment
  bool Vacuous = false;       ///< provably true under every environment
};

/// Analyzes a single boolean guard expression.
GuardVerdict analyzeGuard(const pattern::GuardExpr *G);

/// Analyzes the conjunction of \p Conj (e.g. every guard on one alternate's
/// wrapper spine, or a lowered rule path's accumulated asserts): narrows a
/// shared environment across all conjuncts, then evaluates. Empty input is
/// trivially satisfiable and not vacuous.
GuardVerdict
analyzeConjunction(std::span<const pattern::GuardExpr *const> Conj);

} // namespace pypm::analysis

#endif // PYPM_ANALYSIS_GUARDSOLVER_H
