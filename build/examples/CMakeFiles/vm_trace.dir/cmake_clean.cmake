file(REMOVE_RECURSE
  "CMakeFiles/vm_trace.dir/vm_trace.cpp.o"
  "CMakeFiles/vm_trace.dir/vm_trace.cpp.o.d"
  "vm_trace"
  "vm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
