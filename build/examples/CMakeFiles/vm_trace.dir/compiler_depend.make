# Empty compiler generated dependencies file for vm_trace.
# This may be replaced when dependencies are built.
