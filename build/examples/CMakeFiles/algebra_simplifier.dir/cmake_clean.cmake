file(REMOVE_RECURSE
  "CMakeFiles/algebra_simplifier.dir/algebra_simplifier.cpp.o"
  "CMakeFiles/algebra_simplifier.dir/algebra_simplifier.cpp.o.d"
  "algebra_simplifier"
  "algebra_simplifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_simplifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
