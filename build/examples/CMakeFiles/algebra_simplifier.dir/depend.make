# Empty dependencies file for algebra_simplifier.
# This may be replaced when dependencies are built.
