file(REMOVE_RECURSE
  "CMakeFiles/graph_partitioning.dir/graph_partitioning.cpp.o"
  "CMakeFiles/graph_partitioning.dir/graph_partitioning.cpp.o.d"
  "graph_partitioning"
  "graph_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
