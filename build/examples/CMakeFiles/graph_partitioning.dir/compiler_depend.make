# Empty compiler generated dependencies file for graph_partitioning.
# This may be replaced when dependencies are built.
