file(REMOVE_RECURSE
  "CMakeFiles/gelu_fusion.dir/gelu_fusion.cpp.o"
  "CMakeFiles/gelu_fusion.dir/gelu_fusion.cpp.o.d"
  "gelu_fusion"
  "gelu_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gelu_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
