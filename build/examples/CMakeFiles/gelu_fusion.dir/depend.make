# Empty dependencies file for gelu_fusion.
# This may be replaced when dependencies are built.
