# Empty dependencies file for mha_fusion.
# This may be replaced when dependencies are built.
