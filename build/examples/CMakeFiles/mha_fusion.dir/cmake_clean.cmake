file(REMOVE_RECURSE
  "CMakeFiles/mha_fusion.dir/mha_fusion.cpp.o"
  "CMakeFiles/mha_fusion.dir/mha_fusion.cpp.o.d"
  "mha_fusion"
  "mha_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
