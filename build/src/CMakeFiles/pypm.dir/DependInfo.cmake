
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/Lexer.cpp" "src/CMakeFiles/pypm.dir/dsl/Lexer.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/dsl/Lexer.cpp.o.d"
  "/root/repo/src/dsl/Parser.cpp" "src/CMakeFiles/pypm.dir/dsl/Parser.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/dsl/Parser.cpp.o.d"
  "/root/repo/src/dsl/Sema.cpp" "src/CMakeFiles/pypm.dir/dsl/Sema.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/dsl/Sema.cpp.o.d"
  "/root/repo/src/frontend/Builder.cpp" "src/CMakeFiles/pypm.dir/frontend/Builder.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/frontend/Builder.cpp.o.d"
  "/root/repo/src/graph/Dot.cpp" "src/CMakeFiles/pypm.dir/graph/Dot.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/graph/Dot.cpp.o.d"
  "/root/repo/src/graph/Graph.cpp" "src/CMakeFiles/pypm.dir/graph/Graph.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/graph/Graph.cpp.o.d"
  "/root/repo/src/graph/GraphIO.cpp" "src/CMakeFiles/pypm.dir/graph/GraphIO.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/graph/GraphIO.cpp.o.d"
  "/root/repo/src/graph/ShapeInference.cpp" "src/CMakeFiles/pypm.dir/graph/ShapeInference.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/graph/ShapeInference.cpp.o.d"
  "/root/repo/src/graph/TermView.cpp" "src/CMakeFiles/pypm.dir/graph/TermView.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/graph/TermView.cpp.o.d"
  "/root/repo/src/match/Declarative.cpp" "src/CMakeFiles/pypm.dir/match/Declarative.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/match/Declarative.cpp.o.d"
  "/root/repo/src/match/Derivation.cpp" "src/CMakeFiles/pypm.dir/match/Derivation.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/match/Derivation.cpp.o.d"
  "/root/repo/src/match/FastMatcher.cpp" "src/CMakeFiles/pypm.dir/match/FastMatcher.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/match/FastMatcher.cpp.o.d"
  "/root/repo/src/match/Machine.cpp" "src/CMakeFiles/pypm.dir/match/Machine.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/match/Machine.cpp.o.d"
  "/root/repo/src/match/Subst.cpp" "src/CMakeFiles/pypm.dir/match/Subst.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/match/Subst.cpp.o.d"
  "/root/repo/src/models/Transformers.cpp" "src/CMakeFiles/pypm.dir/models/Transformers.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/models/Transformers.cpp.o.d"
  "/root/repo/src/models/Vision.cpp" "src/CMakeFiles/pypm.dir/models/Vision.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/models/Vision.cpp.o.d"
  "/root/repo/src/models/Zoo.cpp" "src/CMakeFiles/pypm.dir/models/Zoo.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/models/Zoo.cpp.o.d"
  "/root/repo/src/opt/StdPatterns.cpp" "src/CMakeFiles/pypm.dir/opt/StdPatterns.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/opt/StdPatterns.cpp.o.d"
  "/root/repo/src/pattern/Guard.cpp" "src/CMakeFiles/pypm.dir/pattern/Guard.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/pattern/Guard.cpp.o.d"
  "/root/repo/src/pattern/Pattern.cpp" "src/CMakeFiles/pypm.dir/pattern/Pattern.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/pattern/Pattern.cpp.o.d"
  "/root/repo/src/pattern/PatternPrinter.cpp" "src/CMakeFiles/pypm.dir/pattern/PatternPrinter.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/pattern/PatternPrinter.cpp.o.d"
  "/root/repo/src/pattern/Serializer.cpp" "src/CMakeFiles/pypm.dir/pattern/Serializer.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/pattern/Serializer.cpp.o.d"
  "/root/repo/src/pattern/WellFormed.cpp" "src/CMakeFiles/pypm.dir/pattern/WellFormed.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/pattern/WellFormed.cpp.o.d"
  "/root/repo/src/rewrite/Partition.cpp" "src/CMakeFiles/pypm.dir/rewrite/Partition.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/rewrite/Partition.cpp.o.d"
  "/root/repo/src/rewrite/RewriteEngine.cpp" "src/CMakeFiles/pypm.dir/rewrite/RewriteEngine.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/rewrite/RewriteEngine.cpp.o.d"
  "/root/repo/src/sim/CostModel.cpp" "src/CMakeFiles/pypm.dir/sim/CostModel.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/sim/CostModel.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/pypm.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/CMakeFiles/pypm.dir/support/Random.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/support/Random.cpp.o.d"
  "/root/repo/src/support/Symbol.cpp" "src/CMakeFiles/pypm.dir/support/Symbol.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/support/Symbol.cpp.o.d"
  "/root/repo/src/support/ThreadPool.cpp" "src/CMakeFiles/pypm.dir/support/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/support/ThreadPool.cpp.o.d"
  "/root/repo/src/term/Signature.cpp" "src/CMakeFiles/pypm.dir/term/Signature.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/term/Signature.cpp.o.d"
  "/root/repo/src/term/Term.cpp" "src/CMakeFiles/pypm.dir/term/Term.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/term/Term.cpp.o.d"
  "/root/repo/src/term/TermParser.cpp" "src/CMakeFiles/pypm.dir/term/TermParser.cpp.o" "gcc" "src/CMakeFiles/pypm.dir/term/TermParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
