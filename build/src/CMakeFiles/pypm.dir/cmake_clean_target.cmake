file(REMOVE_RECURSE
  "libpypm.a"
)
