# Empty compiler generated dependencies file for pypm.
# This may be replaced when dependencies are built.
