# Empty compiler generated dependencies file for pypmc.
# This may be replaced when dependencies are built.
