file(REMOVE_RECURSE
  "CMakeFiles/pypmc.dir/pypmc.cpp.o"
  "CMakeFiles/pypmc.dir/pypmc.cpp.o.d"
  "pypmc"
  "pypmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pypmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
