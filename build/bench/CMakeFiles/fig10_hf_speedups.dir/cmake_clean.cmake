file(REMOVE_RECURSE
  "CMakeFiles/fig10_hf_speedups.dir/fig10_hf_speedups.cpp.o"
  "CMakeFiles/fig10_hf_speedups.dir/fig10_hf_speedups.cpp.o.d"
  "fig10_hf_speedups"
  "fig10_hf_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hf_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
