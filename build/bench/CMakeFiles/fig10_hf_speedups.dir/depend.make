# Empty dependencies file for fig10_hf_speedups.
# This may be replaced when dependencies are built.
