# Empty compiler generated dependencies file for fig11_tv_speedups.
# This may be replaced when dependencies are built.
