file(REMOVE_RECURSE
  "CMakeFiles/fig11_tv_speedups.dir/fig11_tv_speedups.cpp.o"
  "CMakeFiles/fig11_tv_speedups.dir/fig11_tv_speedups.cpp.o.d"
  "fig11_tv_speedups"
  "fig11_tv_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tv_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
