# Empty dependencies file for fig13_tv_compile_time.
# This may be replaced when dependencies are built.
