# Empty dependencies file for bench_matcher_micro.
# This may be replaced when dependencies are built.
