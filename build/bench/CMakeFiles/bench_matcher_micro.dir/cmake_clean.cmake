file(REMOVE_RECURSE
  "CMakeFiles/bench_matcher_micro.dir/bench_matcher_micro.cpp.o"
  "CMakeFiles/bench_matcher_micro.dir/bench_matcher_micro.cpp.o.d"
  "bench_matcher_micro"
  "bench_matcher_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matcher_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
