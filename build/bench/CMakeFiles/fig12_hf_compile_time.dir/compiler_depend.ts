# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_hf_compile_time.
