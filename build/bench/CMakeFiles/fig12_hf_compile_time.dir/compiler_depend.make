# Empty compiler generated dependencies file for fig12_hf_compile_time.
# This may be replaced when dependencies are built.
