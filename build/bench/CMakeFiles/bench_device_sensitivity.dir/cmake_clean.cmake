file(REMOVE_RECURSE
  "CMakeFiles/bench_device_sensitivity.dir/bench_device_sensitivity.cpp.o"
  "CMakeFiles/bench_device_sensitivity.dir/bench_device_sensitivity.cpp.o.d"
  "bench_device_sensitivity"
  "bench_device_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
