# Empty dependencies file for pypm_tests.
# This may be replaced when dependencies are built.
