
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_builder.cpp" "tests/CMakeFiles/pypm_tests.dir/test_builder.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_builder.cpp.o.d"
  "/root/repo/tests/test_costmodel.cpp" "tests/CMakeFiles/pypm_tests.dir/test_costmodel.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_costmodel.cpp.o.d"
  "/root/repo/tests/test_declarative.cpp" "tests/CMakeFiles/pypm_tests.dir/test_declarative.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_declarative.cpp.o.d"
  "/root/repo/tests/test_derivation.cpp" "tests/CMakeFiles/pypm_tests.dir/test_derivation.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_derivation.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/pypm_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_dsl.cpp" "tests/CMakeFiles/pypm_tests.dir/test_dsl.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_dsl.cpp.o.d"
  "/root/repo/tests/test_e2e.cpp" "tests/CMakeFiles/pypm_tests.dir/test_e2e.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_e2e.cpp.o.d"
  "/root/repo/tests/test_fastmatcher.cpp" "tests/CMakeFiles/pypm_tests.dir/test_fastmatcher.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_fastmatcher.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/pypm_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graphio.cpp" "tests/CMakeFiles/pypm_tests.dir/test_graphio.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_graphio.cpp.o.d"
  "/root/repo/tests/test_guard.cpp" "tests/CMakeFiles/pypm_tests.dir/test_guard.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_guard.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/pypm_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/pypm_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/pypm_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_parallel_rewrite.cpp" "tests/CMakeFiles/pypm_tests.dir/test_parallel_rewrite.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_parallel_rewrite.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/pypm_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_pattern.cpp" "tests/CMakeFiles/pypm_tests.dir/test_pattern.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_pattern.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/pypm_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rewrite.cpp" "tests/CMakeFiles/pypm_tests.dir/test_rewrite.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_rewrite.cpp.o.d"
  "/root/repo/tests/test_serializer.cpp" "tests/CMakeFiles/pypm_tests.dir/test_serializer.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_serializer.cpp.o.d"
  "/root/repo/tests/test_shapeinfer.cpp" "tests/CMakeFiles/pypm_tests.dir/test_shapeinfer.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_shapeinfer.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/pypm_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_term.cpp" "tests/CMakeFiles/pypm_tests.dir/test_term.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_term.cpp.o.d"
  "/root/repo/tests/test_termview.cpp" "tests/CMakeFiles/pypm_tests.dir/test_termview.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_termview.cpp.o.d"
  "/root/repo/tests/test_threadpool.cpp" "tests/CMakeFiles/pypm_tests.dir/test_threadpool.cpp.o" "gcc" "tests/CMakeFiles/pypm_tests.dir/test_threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pypm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
