#!/usr/bin/env bash
# CI driver: build + test the plain configuration, then rebuild everything
# under ThreadSanitizer and run the suite again, then once more under
# ASan+UBSan. TSan is what makes the parallel rewrite engine's "race-free
# at any thread count" claim a checked property instead of a code-review
# one (see DESIGN.md §"Parallel discovery, serial commit"); ASan/UBSan do
# the same for the hostile-input corpora and the fault-injection stress
# runs (test_malformed_inputs, test_faults), whose exception-unwind and
# rollback paths are exactly where leaks and lifetime bugs would hide.
#
# Tests are registered in two ctest tiers (tests/CMakeLists.txt): "tier1"
# (everything but the 50-seed × thread-count sweeps) and "stress" (suites
# named *Stress*). The quick default runs tier1 in every build flavor;
# nightly mode (--nightly, or PYPM_CI_NIGHTLY=1) runs the full suite —
# both tiers — everywhere, which is where the incremental/batched
# differential sweeps earn their keep.
#
# Usage: tools/ci.sh [--nightly] [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."

NIGHTLY="${PYPM_CI_NIGHTLY:-0}"
if [[ "${1:-}" == "--nightly" ]]; then
  NIGHTLY=1
  shift
fi
JOBS="${1:-$(nproc)}"

# Quick tier by default; the full two-tier suite nightly.
CTEST_ARGS=(--output-on-failure)
if [[ "$NIGHTLY" != "1" ]]; then
  CTEST_ARGS+=(-L tier1)
fi

echo "=== plain build ==="
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci "${CTEST_ARGS[@]}"

echo "=== thread-sanitizer build ==="
cmake -B build-ci-tsan -S . -DPYPM_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS"
ctest --test-dir build-ci-tsan "${CTEST_ARGS[@]}"

echo "=== address+undefined-sanitizer build ==="
cmake -B build-ci-asan -S . -DPYPM_SANITIZE=address,undefined >/dev/null
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan "${CTEST_ARGS[@]}"

# The plan matcher's differential, governance (budget/quarantine), and
# .pypmplan hostile-input suites get a dedicated ASan/UBSan leg: the
# bytecode interpreter shares FastMatcher's trail/unwind machinery and
# the loader's recompile-and-compare path allocates aggressively, so
# this is where lifetime bugs would hide. (ctest above already ran them
# once; this re-run keeps the plan legs loud and greppable in CI logs.)
echo "=== plan-matcher suites under ASan/UBSan ==="
./build-ci-asan/tests/pypm_tests \
  --gtest_filter='*MatchPlan*:MalformedPlanBinary.*'

# Profile-guided ordering gets the same treatment: the differential
# profiling suite plus the .pypmprof hostile-input corpus under
# ASan/UBSan (serializer + applyProfile allocate and permute), and the
# differential suite alone under TSan — per-worker traversal traces are
# recorded during parallel discovery and merged at commit, which is
# exactly the cross-thread handoff a race would corrupt.
echo "=== profiled-plan suites under ASan/UBSan ==="
./build-ci-asan/tests/pypm_tests \
  --gtest_filter='*PlanProfile*:MalformedProfileBinary.*'

echo "=== profiled-plan suites under TSan ==="
./build-ci-tsan/tests/pypm_tests \
  --gtest_filter='*PlanProfile*'

# Batched + incremental discovery: the dirty-region memo and the shared
# batch matchers are per-pass mutable state threaded through the parallel
# engine, so the differential suite runs under both sanitizers — TSan for
# the frozen-mask/memo handoff across workers, ASan/UBSan for the memo
# record/replay lifetime. Tier-1 members ran in ctest above; the quick
# default re-runs them filtered so the incremental legs stay greppable.
echo "=== incremental/batched suites under ASan/UBSan ==="
./build-ci-asan/tests/pypm_tests \
  --gtest_filter='IncrementalEngine.*:BatchCandidates.*:BatchMatchers.*'

echo "=== incremental/batched suites under TSan ==="
./build-ci-tsan/tests/pypm_tests \
  --gtest_filter='IncrementalEngine.*:BatchCandidates.*:BatchMatchers.*'

# Static rule-set lint: the §4 std libraries and every shipped example rule
# set must stay free of error-severity findings (pypmc lint exits 7 on any
# error finding, failing the leg). Run under the ASan/UBSan build — the
# guard solver's saturating interval arithmetic and the skeleton arena are
# exactly where overflow/lifetime bugs would hide. The Analysis* gtest
# suites re-run here too so the lint-on ≡ lint-off differential stays loud.
echo "=== rule-set lint (std libraries + examples) under ASan/UBSan ==="
./build-ci-asan/tools/pypmc lint --std
./build-ci-asan/tools/pypmc lint --std --critical-pairs
for RS in examples/rulesets/*.pypm; do
  ./build-ci-asan/tools/pypmc lint "$RS"
done
./build-ci-asan/tests/pypm_tests --gtest_filter='Analysis*:*LintDifferential*'

# Critical-pair analysis against the shipped example rule sets: the
# algebra and epilog-fusion sets must certify confluent, and the
# transpose set must be refuted with a concrete witness (exit 0 either
# way — conflicts are warnings; the greps pin the verdicts). Under
# ASan/UBSan: the analyzer unifies, clones, and normalizes aggressively,
# which is exactly where lifetime bugs would hide.
echo "=== critical-pair certificates (example rule sets) under ASan/UBSan ==="
./build-ci-asan/tools/pypmc lint examples/rulesets/algebra.pypm \
  --critical-pairs | grep -q 'analysis.certified-confluent'
./build-ci-asan/tools/pypmc lint examples/rulesets/epilog_fusion.pypm \
  --critical-pairs | grep -q 'analysis.certified-confluent'
./build-ci-asan/tools/pypmc lint examples/rulesets/transpose.pypm \
  --critical-pairs | grep -q 'analysis.critical-pair'

# The rewrite daemon, end to end over its real wire format, under both
# sanitizer builds: TSan watches the worker pool / admission queue /
# per-connection reply serialization, ASan/UBSan the frame codecs and the
# corrupt-frame recovery path. The scripted connection covers the whole
# status taxonomy a client must handle: a clean rewrite, an over-budget
# request (BudgetExhausted without poisoning the request after it), a
# corrupted frame body (MalformedRequest, connection survives), and a
# shutdown frame that must drain to exit 0.
echo "=== pypmd daemon smoke (framed pipeline) under TSan and ASan/UBSan ==="
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
printf 'op Add(2);\nop Zero(0);\npattern AddZero(x) { return Add(x, Zero()); }\nrule elim_add_zero for AddZero(x) { return x; }\n' \
  > "$SMOKE/rules.pypm"
printf 'z = Zero() : f32[]\na = Add(z, z) : f32[]\nb = Add(a, z) : f32[]\noutput b\n' \
  > "$SMOKE/graph.pypmg"
for B in build-ci-tsan build-ci-asan; do
  PD="./$B/tools/pypmd"
  "$PD" selftest
  {
    "$PD" emit rewrite "$SMOKE/rules.pypm" "$SMOKE/graph.pypmg" --seq 1
    "$PD" emit rewrite "$SMOKE/rules.pypm" "$SMOKE/graph.pypmg" --seq 2 \
      --max-steps 1
    "$PD" emit corrupt-body "$SMOKE/rules.pypm" "$SMOKE/graph.pypmg"
    "$PD" emit rewrite "$SMOKE/rules.pypm" "$SMOKE/graph.pypmg" --seq 3
    "$PD" emit shutdown --seq 9
  } | "$PD" serve --stdio --workers 2 --plan-cache-dir "$SMOKE/cache.$B" \
    | "$PD" decode > "$SMOKE/replies.$B.jsonl"
  grep -q '"status":"malformed-request"' "$SMOKE/replies.$B.jsonl"
  grep -q '"engine":"budget-exhausted"' "$SMOKE/replies.$B.jsonl"
  grep -q '"reason":"steps"' "$SMOKE/replies.$B.jsonl"
  grep -q '"served":3' "$SMOKE/replies.$B.jsonl" # clean drain counted all 3
done

# AOT plan backends. The threaded tier runs under both sanitizers — the
# computed-goto loop shares ExecState's trail/unwind machinery with the
# interpreter (ASan/UBSan territory) and discovery workers each spin up an
# executor over the one shared decoded stream (TSan territory). The
# hostile-input .so corpus (MalformedAotLibrary.*) rides along under
# ASan/UBSan: the validation ladder's whole job is rejecting corrupt
# artifacts before dlopen can make anything undefined.
echo "=== AOT plan-backend suites under ASan/UBSan ==="
./build-ci-asan/tests/pypm_tests \
  --gtest_filter='*Aot*:MalformedAotLibrary.*'

echo "=== AOT plan-backend suites under TSan ==="
./build-ci-tsan/tests/pypm_tests --gtest_filter='*Aot*'

# Emitted-.so round trip, end to end over the real CLI: compile-plan
# builds the library, rewrite runs it via --aot-lib and must agree with
# the interpreter run bit for bit; a garbage library must exit 9. Runs
# against the plain build (the emitter invokes the host compiler, whose
# output is uninstrumented) and auto-skips when no host compiler exists —
# the same condition under which the in-process tests GTEST_SKIP.
if command -v c++ >/dev/null 2>&1 || command -v g++ >/dev/null 2>&1; then
  echo "=== emitted-plan .so round trip (pypmc) ==="
  ./build-ci/tools/pypmc compile-plan "$SMOKE/rules.pypm" \
    -o "$SMOKE/rules.pypmplan" --aot="$SMOKE/rules.so"
  ./build-ci/tools/pypmc rewrite "$SMOKE/rules.pypmplan" \
    "$SMOKE/graph.pypmg" -o "$SMOKE/out-aot.pypmg" \
    --matcher=plan-aot --aot-lib="$SMOKE/rules.so"
  ./build-ci/tools/pypmc rewrite "$SMOKE/rules.pypmplan" \
    "$SMOKE/graph.pypmg" -o "$SMOKE/out-plan.pypmg" --matcher=plan
  cmp "$SMOKE/out-aot.pypmg" "$SMOKE/out-plan.pypmg"
  printf 'not a shared object' > "$SMOKE/garbage.so"
  if ./build-ci/tools/pypmc rewrite "$SMOKE/rules.pypmplan" \
    "$SMOKE/graph.pypmg" --aot-lib="$SMOKE/garbage.so" \
    2> "$SMOKE/garbage.err"; then
    echo "error: garbage --aot-lib was accepted" >&2
    exit 1
  else
    [[ $? -eq 9 ]]
  fi
  grep -q 'aot.not-an-artifact' "$SMOKE/garbage.err"
else
  echo "=== emitted-plan .so round trip: SKIPPED (no host C++ compiler" \
    "on PATH; the threaded tier above still covers AOT execution) ==="
fi

# Threaded-vs-interpreter sweep (smoke): exercises the sweep driver end to
# end and asserts match-count agreement as it times (the committed
# BENCH_aot_sweep.json is produced by a full-size run).
echo "=== aot-sweep benchmark (smoke) ==="
./build-ci/bench/bench_partitioning --aot-sweep --smoke >/dev/null

# Smoke-sized batched/incremental benchmark: exercises the sweep driver
# end to end and sanity-checks that the modes actually amortize (the
# committed BENCH_incremental_sweep.json is produced by a full-size run).
echo "=== incremental-sweep benchmark (smoke) ==="
./build-ci/bench/bench_partitioning --incremental-sweep --smoke \
  >/dev/null

# Daemon warm-vs-cold sweep (smoke): the plan-cache tiers must actually
# pay off, and the sweep driver itself is exercised end to end (the
# committed BENCH_daemon_sweep.json comes from a full-size run).
echo "=== daemon-sweep benchmark (smoke) ==="
./build-ci/bench/bench_partitioning --daemon-sweep --smoke >/dev/null

# Cost-directed search. The oracle/differential/fall-through suites run
# under ASan/UBSan — applyCandidate's transactional rollback and the
# clone-per-candidate expansion are allocation-heavy unwind paths — and
# the beam commit loop under TSan: speculative expansion fans clones out
# across the worker pool while the committed path stays serial, which is
# exactly the isolation boundary a race would cross. (Tier-1 members ran
# in ctest above; the filtered re-runs keep the search legs greppable.)
echo "=== cost-directed search suites under ASan/UBSan ==="
./build-ci-asan/tests/pypm_tests \
  --gtest_filter='Search*:CostModel.*'

echo "=== cost-directed search suites under TSan ==="
./build-ci-tsan/tests/pypm_tests \
  --gtest_filter='SearchConflictTest.*:SearchStress*'

# Search sweep (smoke): the beam must strictly beat greedy modeled cost
# on the conflict ladder and match it on the confluent zoo — the sweep
# driver exits nonzero if either claim fails (the committed
# BENCH_search_sweep.json comes from a full-size run).
echo "=== search-sweep benchmark (smoke) ==="
./build-ci/bench/bench_partitioning --search-sweep --smoke >/dev/null

# Critical-pair sweep (smoke): the driver asserts its claims as it
# measures — the conflict set must refute, the epilog library must
# certify, auto must spend zero search work on the certified set and
# land on beam's end state on the conflicting one (the committed
# BENCH_critical_sweep.json comes from a full-size run).
echo "=== critical-sweep benchmark (smoke) ==="
./build-ci/bench/bench_partitioning --critical-sweep --smoke >/dev/null

# Static analysis over the analysis subsystem itself: clang-tidy's
# bugprone-* and performance-* checks, warnings-as-errors, against the
# compile database the plain build exports. Scoped to src/analysis/ — the
# newest, most pointer-juggling code — so the leg stays fast and the
# signal stays high. Auto-skips when clang-tidy is not on PATH, the same
# convention as the emitted-.so leg above.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy (src/analysis/, bugprone-* performance-*) ==="
  clang-tidy -p build-ci \
    -checks='-*,bugprone-*,performance-*' \
    -warnings-as-errors='bugprone-*,performance-*' \
    src/analysis/*.cpp
else
  echo "=== clang-tidy: SKIPPED (not on PATH; the sanitizer builds above" \
    "still cover src/analysis/ dynamically) ==="
fi

echo "=== ci.sh: all green ==="
