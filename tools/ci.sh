#!/usr/bin/env bash
# CI driver: build + test the plain configuration, then rebuild everything
# under ThreadSanitizer and run the full suite again, then once more under
# ASan+UBSan. TSan is what makes the parallel rewrite engine's "race-free
# at any thread count" claim a checked property instead of a code-review
# one (see DESIGN.md §"Parallel discovery, serial commit"); ASan/UBSan do
# the same for the hostile-input corpora and the fault-injection stress
# runs (test_malformed_inputs, test_faults), whose exception-unwind and
# rollback paths are exactly where leaks and lifetime bugs would hide.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure

echo "=== thread-sanitizer build ==="
cmake -B build-ci-tsan -S . -DPYPM_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS"
ctest --test-dir build-ci-tsan --output-on-failure

echo "=== address+undefined-sanitizer build ==="
cmake -B build-ci-asan -S . -DPYPM_SANITIZE=address,undefined >/dev/null
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure

# The plan matcher's differential, governance (budget/quarantine), and
# .pypmplan hostile-input suites get a dedicated ASan/UBSan leg: the
# bytecode interpreter shares FastMatcher's trail/unwind machinery and
# the loader's recompile-and-compare path allocates aggressively, so
# this is where lifetime bugs would hide. (ctest above already ran them
# once; this re-run keeps the plan legs loud and greppable in CI logs.)
echo "=== plan-matcher suites under ASan/UBSan ==="
./build-ci-asan/tests/pypm_tests \
  --gtest_filter='*MatchPlan*:MalformedPlanBinary.*'

# Profile-guided ordering gets the same treatment: the differential
# profiling suite plus the .pypmprof hostile-input corpus under
# ASan/UBSan (serializer + applyProfile allocate and permute), and the
# differential suite alone under TSan — per-worker traversal traces are
# recorded during parallel discovery and merged at commit, which is
# exactly the cross-thread handoff a race would corrupt.
echo "=== profiled-plan suites under ASan/UBSan ==="
./build-ci-asan/tests/pypm_tests \
  --gtest_filter='*PlanProfile*:MalformedProfileBinary.*'

echo "=== profiled-plan suites under TSan ==="
./build-ci-tsan/tests/pypm_tests \
  --gtest_filter='*PlanProfile*'

# Static rule-set lint: the §4 std libraries and every shipped example rule
# set must stay free of error-severity findings (pypmc lint exits 7 on any
# error finding, failing the leg). Run under the ASan/UBSan build — the
# guard solver's saturating interval arithmetic and the skeleton arena are
# exactly where overflow/lifetime bugs would hide. The Analysis* gtest
# suites re-run here too so the lint-on ≡ lint-off differential stays loud.
echo "=== rule-set lint (std libraries + examples) under ASan/UBSan ==="
./build-ci-asan/tools/pypmc lint --std
for RS in examples/rulesets/*.pypm; do
  ./build-ci-asan/tools/pypmc lint "$RS"
done
./build-ci-asan/tests/pypm_tests --gtest_filter='Analysis*:*LintDifferential*'

echo "=== ci.sh: all green ==="
