//===- tools/pypmc.cpp - PyPM pattern compiler driver --------------------------===//
///
/// \file
/// The command-line face of the §2.4 deployment story: compile textual
/// PyPM programs into portable pattern binaries, inspect binaries, and
/// test-match patterns against terms.
///
///   pypmc compile <file.pypm> -o <file.pypmbin>   serialize a library
///   pypmc compile-plan <patterns> -o <file.pypmplan> [--emit-plan]
///                                                 compile the whole rule set
///                                                 into one MatchPlan artifact
///   pypmc check   <file.pypm>                     compile + report only
///   pypmc dump    <file.pypmbin>                  list ops/patterns/rules
///   pypmc match   <file.pypm[bin]> <Pattern> <term> [--trace]
///                                                 match a textual term
///
/// Exit status (documented in README.md §"pypmc exit codes"): 0 on success
/// (for `match`: the pattern matched), 1 on parse/deserialize failure or
/// no match, 2 on usage errors, 8 when the rule-set operand cannot be read
/// at all — automation can tell a deployment problem (wrong path,
/// permissions) from a malformed artifact without scraping stderr.
/// `rewrite` additionally distinguishes the failure taxonomy of a governed
/// run: 3 budget exhausted, 4 cancelled (SIGINT), 5 completed with
/// quarantined patterns, 6 fault injected ($PYPM_FAULT), 9 when an
/// explicitly requested emitted-plan library (--aot-lib=) fails any rung
/// of the AOT validation ladder — the aot.* diagnostic on stderr names
/// the rung; an *implicit* fallback (matcher plan-aot without a usable
/// library never requested by path) is a warning, not an exit code.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/CriticalPairs.h"
#include "dsl/Sema.h"
#include "graph/GraphIO.h"
#include "opt/StdPatterns.h"
#include "graph/ShapeInference.h"
#include "match/Derivation.h"
#include "match/Machine.h"
#include "pattern/Serializer.h"
#include "plan/PlanBuilder.h"
#include "plan/PlanSerializer.h"
#include "plan/Profile.h"
#include "plan/aot/Emitter.h"
#include "plan/aot/Library.h"
#include "rewrite/RewriteEngine.h"
#include "server/PlanCache.h"
#include "sim/CostModel.h"
#include "term/TermParser.h"

#include "support/Budget.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pypm;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pypmc compile <file.pypm> -o <file.pypmbin>\n"
               "       pypmc compile-plan <file.pypm|file.pypmbin> "
               "-o <file.pypmplan> [--emit-plan]\n"
               "                     [--profile=<file.pypmprof>] "
               "[--emit-cpp=<file.cpp>] [--aot=<file.so>]\n"
               "       pypmc check   <file.pypm>\n"
               "       pypmc lint    <file.pypm|file.pypmbin|file.pypmplan> "
               "[--json] [--notes] [--critical-pairs]\n"
               "       pypmc lint    --std [--json] [--notes] "
               "[--critical-pairs]\n"
               "       pypmc dump    <file.pypmbin>\n"
               "       pypmc match   <file.pypm|file.pypmbin> <Pattern> "
               "<term> [--trace] [--explain]\n"
               "       pypmc rewrite <patterns|file.pypmplan> <graph.pypmg> "
               "[-o <out.pypmg>] [--threads N]\n"
               "                     [--budget-ms M] [--max-steps N] "
               "[--stats-json]\n"
               "                     [--matcher=machine|fast|plan|"
               "plan-threaded|plan-aot] [--emit-plan] [--lint]\n"
               "                     [--incremental] [--batch] "
               "[--profile-out=<file.pypmprof>]\n"
               "                     [--plan-cache-dir=<dir>] "
               "[--aot-lib=<file.so>]\n"
               "                     [--search=greedy|best-of-n|beam|auto] "
               "[--beam-width=N] [--lookahead=N]\n"
               "                     [--search-witnesses=N]\n"
               "       pypmc cost    <graph.pypmg>\n"
               "rewrite exit codes: 0 ok, 1 rule set malformed, 2 usage, "
               "3 budget exhausted,\n"
               "                    4 cancelled, 5 patterns quarantined, "
               "6 fault injected,\n"
               "                    7 lint rejected (--lint), 8 rule-set "
               "file unreadable,\n"
               "                    9 emitted-plan library unusable "
               "(--aot-lib)\n"
               "lint exit codes:    0 no errors, 1 malformed, 2 usage, "
               "7 error findings, 8 unreadable\n");
  return 2;
}

/// ^C requests cooperative cancellation; the engine stops at the next
/// poll and the graph stays in the last committed state.
CancellationToken SigintToken;

extern "C" void onSigint(int) { SigintToken.requestCancel(); }

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "pypmc: cannot open '%s'\n", Path);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

bool looksLikeBinary(const std::string &Bytes) {
  return Bytes.size() >= 4 && Bytes.compare(0, 4, "PYPM") == 0;
}

bool looksLikePlan(const std::string &Bytes) {
  return Bytes.size() >= 4 && Bytes.compare(0, 4, "PYPL") == 0;
}

/// Loads either a textual .pypm source or a serialized .pypmbin. When \p
/// RC is non-null it receives the documented exit code for the failure:
/// 8 when the file cannot be read at all, 1 when it was read but is
/// malformed — so automation can tell a deployment problem (wrong path,
/// permissions) from a bad artifact without parsing stderr.
std::unique_ptr<pattern::Library> load(const char *Path, term::Signature &Sig,
                                       int *RC = nullptr) {
  std::string Bytes;
  if (!readFile(Path, Bytes)) {
    if (RC)
      *RC = 8;
    return nullptr;
  }
  DiagnosticEngine Diags;
  std::unique_ptr<pattern::Library> Lib =
      looksLikeBinary(Bytes)
          ? pattern::deserializeLibrary(Bytes, Sig, Diags)
          : dsl::compileFile(Path, Sig, Diags); // includes resolved
  if (!Lib) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    if (RC)
      *RC = 1;
  }
  return Lib;
}

int cmdCompile(int Argc, char **Argv) {
  const char *In = nullptr, *Out = nullptr;
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 != Argc)
      Out = Argv[++I];
    else if (!In)
      In = Argv[I];
    else
      return usage();
  }
  if (!In || !Out)
    return usage();

  term::Signature Sig;
  int RC = 1;
  std::unique_ptr<pattern::Library> Lib = load(In, Sig, &RC);
  if (!Lib)
    return RC;
  std::string Bytes = pattern::serializeLibrary(*Lib, Sig);
  std::ofstream OutFile(Out, std::ios::binary);
  if (!OutFile || !OutFile.write(Bytes.data(),
                                 static_cast<std::streamsize>(Bytes.size()))) {
    std::fprintf(stderr, "pypmc: cannot write '%s'\n", Out);
    return 1;
  }
  std::printf("wrote %s: %zu bytes, %zu pattern(s), %zu rule(s)\n", Out,
              Bytes.size(), Lib->PatternDefs.size(), Lib->Rules.size());
  return 0;
}

int cmdCompilePlan(int Argc, char **Argv) {
  const char *In = nullptr, *Out = nullptr, *ProfilePath = nullptr;
  const char *EmitCpp = nullptr, *AotOut = nullptr;
  bool EmitPlan = false;
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 != Argc)
      Out = Argv[++I];
    else if (std::strcmp(Argv[I], "--emit-plan") == 0)
      EmitPlan = true;
    else if (std::strncmp(Argv[I], "--profile=", 10) == 0)
      ProfilePath = Argv[I] + 10;
    else if (std::strncmp(Argv[I], "--emit-cpp=", 11) == 0)
      EmitCpp = Argv[I] + 11;
    else if (std::strncmp(Argv[I], "--aot=", 6) == 0)
      AotOut = Argv[I] + 6;
    else if (!In)
      In = Argv[I];
    else
      return usage();
  }
  if (!In || !Out)
    return usage();

  term::Signature Sig;
  int RC = 1;
  std::unique_ptr<pattern::Library> Lib = load(In, Sig, &RC);
  if (!Lib)
    return RC;

  // An offline-recorded .pypmprof (see `pypmc rewrite --profile-out=`) is
  // embedded into the artifact; the loader re-derives the profile-guided
  // ordering from it. The hardened reader and the signature check against
  // the compiled plan both run before anything is written.
  std::unique_ptr<plan::Profile> Prof;
  if (ProfilePath) {
    std::string ProfBytes;
    if (!readFile(ProfilePath, ProfBytes))
      return 1;
    DiagnosticEngine ProfDiags;
    Prof = plan::deserializeProfile(ProfBytes, ProfDiags);
    if (!Prof) {
      std::fprintf(stderr, "%s", ProfDiags.renderAll().c_str());
      return 1;
    }
  }

  // Every artifact carries its confluence certificate: a cached plan can
  // answer `--search=auto` without re-running the analysis, and a lint of
  // the artifact reports the verdict the producer saw.
  analysis::critical::ConfluenceReport Confluence =
      analysis::critical::analyzeConfluence(*Lib, Sig);

  DiagnosticEngine Diags;
  // RulesOnly mirrors `pypmc rewrite`'s RuleSet::addLibrary default:
  // match-only patterns are not part of the rewrite rule set.
  std::string Bytes = plan::serializePlan(*Lib, Sig, /*RulesOnly=*/true, Diags,
                                          Prof.get(), &Confluence);
  std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  if (Bytes.empty())
    return 1;

  std::ofstream OutFile(Out, std::ios::binary);
  if (!OutFile || !OutFile.write(Bytes.data(),
                                 static_cast<std::streamsize>(Bytes.size()))) {
    std::fprintf(stderr, "pypmc: cannot write '%s'\n", Out);
    return 1;
  }

  // Re-load what we just wrote: reports exactly what a consumer will see,
  // and doubles as an end-to-end check of the artifact.
  term::Signature CheckSig;
  DiagnosticEngine CheckDiags;
  std::unique_ptr<plan::LoadedPlan> LP =
      plan::deserializePlan(Bytes, CheckSig, CheckDiags);
  if (!LP) {
    std::fprintf(stderr, "pypmc: round-trip of '%s' failed:\n%s", Out,
                 CheckDiags.renderAll().c_str());
    return 1;
  }
  plan::ProgramInfo Info = LP->Prog.info();
  std::printf("wrote %s: %zu bytes, %zu entr%s, %zu instruction(s), "
              "%zu tree node(s)%s, confluence: %s\n",
              Out, Bytes.size(), LP->Prog.Entries.size(),
              LP->Prog.Entries.size() == 1 ? "y" : "ies", Info.Instrs,
              Info.TreeNodes, LP->Prof ? ", profile-ordered" : "",
              LP->Confluence
                  ? std::string(analysis::critical::verdictName(
                                    LP->Confluence->Overall))
                        .c_str()
                  : "absent");
  if (EmitPlan)
    std::printf("%s", LP->Prog.disassemble(CheckSig).c_str());

  // The AOT artifacts are emitted from the *round-tripped* program — the
  // exact plan a consumer loading the .pypmplan will run — so the baked
  // fingerprints match what `pypmc rewrite <plan> --aot-lib=` re-derives.
  if (EmitCpp) {
    std::string Src = plan::aot::AotEmitter::emitCpp(LP->Prog);
    std::ofstream CppFile(EmitCpp, std::ios::binary);
    if (!CppFile ||
        !CppFile.write(Src.data(), static_cast<std::streamsize>(Src.size()))) {
      std::fprintf(stderr, "pypmc: cannot write '%s'\n", EmitCpp);
      return 1;
    }
    std::printf("wrote %s: %zu bytes of emitted C++\n", EmitCpp, Src.size());
  }
  if (AotOut) {
    std::string Err;
    if (!plan::aot::AotEmitter::buildSharedObject(LP->Prog, AotOut, Err)) {
      std::fprintf(stderr, "pypmc: %s\n", Err.c_str());
      return 1;
    }
    std::printf("wrote %s: emitted plan (canonical-sig %016llx)\n", AotOut,
                static_cast<unsigned long long>(LP->Prog.CanonicalSig));
  }
  return 0;
}

int cmdCheck(int Argc, char **Argv) {
  if (Argc != 1)
    return usage();
  term::Signature Sig;
  int RC = 1;
  std::unique_ptr<pattern::Library> Lib = load(Argv[0], Sig, &RC);
  if (!Lib)
    return RC;
  std::printf("%s: OK (%zu pattern(s), %zu rule(s), %zu operator(s))\n",
              Argv[0], Lib->PatternDefs.size(), Lib->Rules.size(),
              Sig.size());
  return 0;
}

/// Renders one lint report (human or JSON) and folds its error count into
/// the caller's exit decision.
void printLintReport(const char *Subject, const analysis::LintReport &Report,
                     bool Json, unsigned &TotalErrors) {
  TotalErrors += Report.Errors;
  if (Json) {
    std::printf("{\"subject\":\"%s\",\"report\":%s}\n", Subject,
                Report.json().c_str());
    return;
  }
  std::printf("== %s ==\n%s", Subject, Report.renderAll().c_str());
}

/// `--critical-pairs`: appends the confluence analysis's findings to the
/// subject's lint report (updating the severity tallies) and restores the
/// stable severity-then-location order.
void foldConfluence(analysis::LintReport &LR,
                    const analysis::critical::ConfluenceReport &CR) {
  for (const analysis::Finding &F : CR.Findings) {
    switch (F.Sev) {
    case Severity::Error:
      ++LR.Errors;
      break;
    case Severity::Warning:
      ++LR.Warnings;
      break;
    case Severity::Note:
      ++LR.Notes;
      break;
    }
    LR.Findings.push_back(F);
  }
  LR.sortFindings();
}

int cmdLint(int Argc, char **Argv) {
  bool Json = false, Notes = false, Std = false, Critical = false;
  const char *In = nullptr;
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(Argv[I], "--notes") == 0)
      Notes = true;
    else if (std::strcmp(Argv[I], "--std") == 0)
      Std = true;
    else if (std::strcmp(Argv[I], "--critical-pairs") == 0)
      Critical = true;
    else if (!In)
      In = Argv[I];
    else
      return usage();
  }
  if (Std == (In != nullptr))
    return usage();

  // --notes additionally reports RHS operators the default shape-inference
  // rules and the analytic cost model only cover generically.
  graph::ShapeInference SI;
  analysis::LintOptions LOpts;
  if (Notes) {
    LOpts.Shapes = &SI;
    LOpts.CostModelNotes = true;
  }

  unsigned TotalErrors = 0;
  if (Std) {
    // The five §4 libraries, each compiled against its own signature, in
    // the order makePipeline assembles them.
    struct StdLib {
      const char *Name;
      std::unique_ptr<pattern::Library> (*Compile)(term::Signature &);
    };
    static const StdLib Libs[] = {
        {"fmha", opt::compileFmha},         {"epilog", opt::compileEpilog},
        {"cublas", opt::compileCublas},     {"unarychain", opt::compileUnaryChain},
        {"partition", opt::compilePartition},
    };
    for (const StdLib &L : Libs) {
      term::Signature Sig;
      std::unique_ptr<pattern::Library> Lib = L.Compile(Sig);
      if (!Lib) {
        std::fprintf(stderr, "pypmc: internal error compiling std library "
                             "'%s'\n",
                     L.Name);
        return 1;
      }
      analysis::critical::ConfluenceReport CR;
      if (Critical) {
        CR = analysis::critical::analyzeConfluence(*Lib, Sig);
        LOpts.Confluence = &CR;
      }
      analysis::LintReport LR = analysis::lintLibrary(*Lib, Sig, LOpts);
      if (Critical)
        foldConfluence(LR, CR);
      LOpts.Confluence = nullptr;
      printLintReport(L.Name, LR, Json, TotalErrors);
    }
    // The assembled Both pipeline adds the cross-library rule order.
    term::Signature Sig;
    opt::Pipeline Pipe = opt::makePipeline(Sig, opt::OptConfig::Both);
    analysis::critical::ConfluenceReport CR;
    if (Critical) {
      CR = analysis::critical::analyzeConfluence(Pipe.Rules, Sig);
      LOpts.Confluence = &CR;
    }
    analysis::LintReport LR = analysis::lintRuleSet(Pipe.Rules, Sig, LOpts);
    if (Critical)
      foldConfluence(LR, CR);
    printLintReport("pipeline:both", LR, Json, TotalErrors);
    return TotalErrors ? 7 : 0;
  }

  term::Signature Sig;
  std::string Bytes;
  if (!readFile(In, Bytes))
    return 8; // unreadable, not malformed
  if (looksLikePlan(Bytes)) {
    DiagnosticEngine PlanDiags;
    std::unique_ptr<plan::LoadedPlan> LP =
        plan::deserializePlan(Bytes, Sig, PlanDiags);
    if (!LP) {
      std::fprintf(stderr, "%s", PlanDiags.renderAll().c_str());
      return 1;
    }
    // Prefer the certificate embedded by the producer; re-analyze only
    // when the artifact predates v3 or was stripped.
    analysis::critical::ConfluenceReport CR;
    if (Critical) {
      CR = LP->Confluence
               ? *LP->Confluence
               : analysis::critical::analyzeConfluence(LP->Rules, Sig);
      LOpts.Confluence = &CR;
    }
    analysis::LintReport LR = analysis::lintRuleSet(LP->Rules, Sig, LOpts);
    if (Critical)
      foldConfluence(LR, CR);
    printLintReport(In, LR, Json, TotalErrors);
  } else {
    std::unique_ptr<pattern::Library> Lib = load(In, Sig);
    if (!Lib)
      return 1; // readable (readFile above) but malformed
    analysis::critical::ConfluenceReport CR;
    if (Critical) {
      CR = analysis::critical::analyzeConfluence(*Lib, Sig);
      LOpts.Confluence = &CR;
    }
    analysis::LintReport LR = analysis::lintLibrary(*Lib, Sig, LOpts);
    if (Critical)
      foldConfluence(LR, CR);
    printLintReport(In, LR, Json, TotalErrors);
  }
  return TotalErrors ? 7 : 0;
}

int cmdDump(int Argc, char **Argv) {
  if (Argc != 1)
    return usage();
  term::Signature Sig;
  int RC = 1;
  std::unique_ptr<pattern::Library> Lib = load(Argv[0], Sig, &RC);
  if (!Lib)
    return RC;

  std::printf("operators (%zu):\n", Sig.size());
  for (const term::OpInfo &Info : Sig.ops()) {
    std::printf("  %s/%u", std::string(Info.Name.str()).c_str(), Info.Arity);
    if (Info.OpClass.isValid())
      std::printf(" class=%s", std::string(Info.OpClass.str()).c_str());
    if (!Info.AttrNames.empty()) {
      std::printf(" attrs=");
      for (size_t I = 0; I != Info.AttrNames.size(); ++I)
        std::printf("%s%s", I ? "," : "",
                    std::string(Info.AttrNames[I].str()).c_str());
    }
    std::printf("\n");
  }

  std::printf("\npatterns (%zu):\n", Lib->PatternDefs.size());
  for (const pattern::NamedPattern &NP : Lib->PatternDefs) {
    std::printf("  %s(", std::string(NP.Name.str()).c_str());
    for (size_t I = 0; I != NP.Params.size(); ++I)
      std::printf("%s%s", I ? ", " : "",
                  std::string(NP.Params[I].str()).c_str());
    std::printf(") = %s\n", NP.Pat->toString(Sig).c_str());
  }

  std::printf("\nrules (%zu):\n", Lib->Rules.size());
  for (const pattern::RewriteRule &R : Lib->Rules) {
    std::printf("  %s for %s:", std::string(R.Name.str()).c_str(),
                std::string(R.PatternName.str()).c_str());
    if (R.Guard)
      std::printf(" guard %s", R.Guard->toString().c_str());
    std::printf(" -> %s\n", R.Rhs->toString(Sig).c_str());
  }
  return 0;
}

int cmdMatch(int Argc, char **Argv) {
  bool Trace = false, Explain = false;
  std::vector<const char *> Pos;
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--trace") == 0)
      Trace = true;
    else if (std::strcmp(Argv[I], "--explain") == 0)
      Explain = true;
    else
      Pos.push_back(Argv[I]);
  }
  if (Pos.size() != 3)
    return usage();

  term::Signature Sig;
  int RC = 1;
  std::unique_ptr<pattern::Library> Lib = load(Pos[0], Sig, &RC);
  if (!Lib)
    return RC;
  const pattern::NamedPattern *NP = Lib->findPattern(Pos[1]);
  if (!NP) {
    std::fprintf(stderr, "pypmc: no pattern named '%s'\n", Pos[1]);
    return 1;
  }

  term::TermArena Arena(Sig);
  term::TermParseResult TR = term::parseTerm(Pos[2], Sig, Arena);
  if (auto *E = std::get_if<term::TermParseError>(&TR)) {
    std::fprintf(stderr, "pypmc: term parse error at offset %zu: %s\n",
                 E->Offset, E->Message.c_str());
    return 1;
  }
  term::TermRef T = std::get<term::TermRef>(TR);

  match::Machine M(Arena);
  M.start(NP->Pat, T);
  if (Trace) {
    std::printf("%s\n", M.describeState(Sig).c_str());
    while (M.status() == match::MachineStatus::Running) {
      M.step();
      std::printf("%s\n", M.describeState(Sig).c_str());
    }
  } else {
    M.run();
  }

  switch (M.status()) {
  case match::MachineStatus::Success: {
    match::Witness W{M.theta(), M.phi()};
    std::printf("match: %s\n", match::toString(W, Sig).c_str());
    if (Explain) {
      auto D = match::deriveMatch(NP->Pat, T, W.Theta, W.Phi, Arena);
      if (D)
        std::printf("\nderivation (%zu judgments):\n%s", D->size(),
                    D->render(Sig).c_str());
      else
        std::printf("\n(internal error: no derivation for a machine "
                    "success — please report)\n");
    }
    return 0;
  }
  case match::MachineStatus::Failure:
    std::printf("no match\n");
    return 1;
  default:
    std::printf("undecided (fuel exhausted)\n");
    return 1;
  }
}

std::unique_ptr<graph::Graph> loadGraph(const char *Path,
                                        term::Signature &Sig) {
  std::string Text;
  if (!readFile(Path, Text))
    return nullptr;
  DiagnosticEngine Diags;
  auto G = graph::parseGraphText(Text, Sig, Diags);
  std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  return G;
}

/// Maps a governed run's status onto the documented exit codes.
int exitCodeFor(const EngineStatus &S) {
  switch (S.Code) {
  case EngineStatusCode::Completed:
    return 0;
  case EngineStatusCode::PatternQuarantined:
    return 5;
  case EngineStatusCode::FaultInjected:
    return 6;
  case EngineStatusCode::BudgetExhausted:
    return 3;
  case EngineStatusCode::Cancelled:
    return 4;
  case EngineStatusCode::LintRejected:
    return 7;
  }
  return 0;
}

int cmdRewrite(int Argc, char **Argv) {
  const char *Patterns = nullptr, *GraphPath = nullptr, *Out = nullptr;
  const char *ProfileOut = nullptr;
  const char *PlanCacheDir = nullptr;
  const char *AotLibPath = nullptr;
  unsigned Threads = 0;
  double BudgetMs = 0;
  uint64_t MaxSteps = 0;
  bool StatsJson = false, EmitPlan = false, Lint = false;
  bool Incremental = false, Batch = false;
  std::optional<rewrite::MatcherKind> Matcher;
  rewrite::SearchStrategy Search = rewrite::SearchStrategy::Greedy;
  unsigned BeamWidth = 4, Lookahead = 1, SearchWitnesses = 4;
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 != Argc)
      Out = Argv[++I];
    else if (std::strncmp(Argv[I], "--profile-out=", 14) == 0)
      ProfileOut = Argv[I] + 14;
    else if (std::strncmp(Argv[I], "--plan-cache-dir=", 17) == 0)
      PlanCacheDir = Argv[I] + 17;
    else if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 != Argc)
      Threads = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (std::strcmp(Argv[I], "--budget-ms") == 0 && I + 1 != Argc)
      BudgetMs = std::strtod(Argv[++I], nullptr);
    else if (std::strcmp(Argv[I], "--max-steps") == 0 && I + 1 != Argc)
      MaxSteps = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--stats-json") == 0)
      StatsJson = true;
    else if (std::strcmp(Argv[I], "--emit-plan") == 0)
      EmitPlan = true;
    else if (std::strcmp(Argv[I], "--lint") == 0)
      Lint = true;
    else if (std::strcmp(Argv[I], "--incremental") == 0)
      Incremental = true;
    else if (std::strcmp(Argv[I], "--batch") == 0)
      Batch = true;
    else if (std::strncmp(Argv[I], "--matcher=", 10) == 0) {
      const char *V = Argv[I] + 10;
      if (std::strcmp(V, "machine") == 0)
        Matcher = rewrite::MatcherKind::Machine;
      else if (std::strcmp(V, "fast") == 0)
        Matcher = rewrite::MatcherKind::Fast;
      else if (std::strcmp(V, "plan") == 0)
        Matcher = rewrite::MatcherKind::Plan;
      else if (std::strcmp(V, "plan-threaded") == 0)
        Matcher = rewrite::MatcherKind::PlanThreaded;
      else if (std::strcmp(V, "plan-aot") == 0)
        Matcher = rewrite::MatcherKind::PlanAot;
      else
        return usage();
    } else if (std::strncmp(Argv[I], "--search=", 9) == 0) {
      const char *V = Argv[I] + 9;
      if (std::strcmp(V, "greedy") == 0)
        Search = rewrite::SearchStrategy::Greedy;
      else if (std::strcmp(V, "best-of-n") == 0)
        Search = rewrite::SearchStrategy::BestOfN;
      else if (std::strcmp(V, "beam") == 0)
        Search = rewrite::SearchStrategy::Beam;
      else if (std::strcmp(V, "auto") == 0)
        Search = rewrite::SearchStrategy::Auto;
      else
        return usage();
    } else if (std::strncmp(Argv[I], "--beam-width=", 13) == 0)
      BeamWidth = static_cast<unsigned>(std::strtoul(Argv[I] + 13, nullptr, 10));
    else if (std::strncmp(Argv[I], "--lookahead=", 12) == 0)
      Lookahead = static_cast<unsigned>(std::strtoul(Argv[I] + 12, nullptr, 10));
    else if (std::strncmp(Argv[I], "--search-witnesses=", 19) == 0)
      SearchWitnesses =
          static_cast<unsigned>(std::strtoul(Argv[I] + 19, nullptr, 10));
    else if (std::strncmp(Argv[I], "--aot-lib=", 10) == 0)
      AotLibPath = Argv[I] + 10;
    else if (!Patterns)
      Patterns = Argv[I];
    else if (!GraphPath)
      GraphPath = Argv[I];
    else
      return usage();
  }
  if (!Patterns || !GraphPath)
    return usage();

  term::Signature Sig;
  // The patterns operand accepts textual .pypm, a .pypmbin library, or a
  // precompiled .pypmplan MatchPlan artifact (sniffed by magic). A plan
  // artifact implies --matcher=plan and skips the in-run compile.
  std::unique_ptr<pattern::Library> Lib;
  std::unique_ptr<plan::LoadedPlan> LP;
  rewrite::RuleSet OwnRules;
  // --plan-cache-dir=: resolve the rule set through the daemon's
  // content-hash plan cache instead, so repeated cold CLI starts on the
  // same rule set reuse the on-disk .pypmplan artifact (written crash-
  // safely; corrupt or torn entries are detected by the hardened loader
  // and recompiled). The rewrite itself is bit-identical either way —
  // the cache serves byte-identical plans.
  std::shared_ptr<const server::CachedRuleSet> CacheEntry;
  {
    std::string Bytes;
    if (!readFile(Patterns, Bytes))
      return 8; // unreadable, not malformed
    if (PlanCacheDir) {
      server::PlanCache Cache({PlanCacheDir});
      DiagnosticEngine CacheDiags;
      server::CacheSource Src;
      CacheEntry = Cache.acquire(Bytes, CacheDiags, Src);
      if (!CacheEntry) {
        std::fprintf(stderr, "%s", CacheDiags.renderAll().c_str());
        return 1;
      }
      std::fprintf(stderr, "plan cache: %s\n",
                   std::string(server::cacheSourceName(Src)).c_str());
      Sig = CacheEntry->Sig; // private copy; graph parse may extend it
      if (!Matcher)
        Matcher = rewrite::MatcherKind::Plan;
    } else if (looksLikePlan(Bytes)) {
      DiagnosticEngine PlanDiags;
      LP = plan::deserializePlan(Bytes, Sig, PlanDiags);
      if (!LP) {
        std::fprintf(stderr, "%s", PlanDiags.renderAll().c_str());
        return 1;
      }
      if (!Matcher)
        Matcher = rewrite::MatcherKind::Plan;
    } else {
      int RC = 1;
      Lib = load(Patterns, Sig, &RC);
      if (!Lib)
        return RC;
      OwnRules.addLibrary(*Lib);
    }
  }
  // Recording a profile only makes sense against the plan matcher; the
  // flag implies it rather than silently recording nothing.
  if (ProfileOut && !Matcher)
    Matcher = rewrite::MatcherKind::Plan;
  // Naming an emitted library is an explicit request for the AOT tier.
  if (AotLibPath && !Matcher)
    Matcher = rewrite::MatcherKind::PlanAot;
  const rewrite::RuleSet &Rules =
      CacheEntry ? CacheEntry->rules() : (LP ? LP->Rules : OwnRules);

  std::unique_ptr<graph::Graph> G = loadGraph(GraphPath, Sig);
  if (!G)
    return 1;

  sim::CostModel CM;
  double Before = CM.graphCost(*G).Seconds;
  // --threads N selects the parallel-discovery engine; the rewritten
  // graph is identical to the serial (default) engine's at any N.
  rewrite::RewriteOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Matcher = Matcher;
  Opts.Lint = Lint;
  // Both are pure amortization modes: the rewritten graph and all
  // committed stats are bit-identical with or without them.
  Opts.Incremental = Incremental;
  Opts.Batch = Batch;
  // --search= selects cost-directed commit ordering; the CLI's own cost
  // model (the one reporting "simulated time" below) prices candidates, so
  // the printed before/after numbers and the search's objective agree.
  Opts.Search = Search;
  Opts.BeamWidth = BeamWidth;
  Opts.Lookahead = Lookahead;
  Opts.SearchWitnesses = SearchWitnesses;
  Opts.SearchCost = &CM;
  // A plan artifact carries its producer's confluence certificate;
  // --search=auto dispatches from it instead of re-running the analysis.
  if (LP && LP->Confluence)
    Opts.Confluence = LP->Confluence.get();

  // A plan compiled here (or loaded above) serves both --emit-plan and the
  // engine's PrecompiledPlan fast path.
  std::unique_ptr<plan::Program> FreshPlan;
  const plan::Program *Plan =
      CacheEntry ? &CacheEntry->prog() : (LP ? &LP->Prog : nullptr);
  if (!Plan && (EmitPlan || rewrite::planFamily(Opts.matcher()))) {
    FreshPlan = std::make_unique<plan::Program>(
        plan::PlanBuilder::compile(Rules, Sig));
    Plan = FreshPlan.get();
  }
  if (rewrite::planFamily(Opts.matcher()))
    Opts.PrecompiledPlan = Plan;
  if (EmitPlan)
    std::fprintf(stderr, "%s", Plan->disassemble(Sig).c_str());

  // --aot-lib= is an *explicit* request: any validation-ladder failure is
  // exit 9 with the machine-readable aot.* diagnostic, never a silent
  // interpreter fallback (that lenient path belongs to the engine, for
  // callers that set Matcher=PlanAot without naming a library).
  std::unique_ptr<plan::aot::PlanLibrary> AotLib;
  if (AotLibPath) {
    DiagnosticEngine AotDiags;
    plan::aot::AotLoadStatus St;
    AotLib = plan::aot::PlanLibrary::load(AotLibPath, *Plan, &AotDiags, St);
    if (!AotLib) {
      std::fprintf(stderr, "%s", AotDiags.renderAll().c_str());
      return 9;
    }
    Opts.AotLib = AotLib.get();
  }

  // --profile-out: record committed-order traversal/attempt counters into
  // an empty profile (it binds to whatever plan the run uses) and write
  // the hardened .pypmprof artifact after the run.
  plan::Profile RecordedProf;
  if (ProfileOut)
    Opts.PlanProfile = &RecordedProf;

  BudgetLimits Limits;
  Limits.DeadlineSeconds = BudgetMs / 1e3;
  Limits.MaxTotalSteps = MaxSteps;
  Limits.Cancel = &SigintToken;
  Budget Bgt(Limits);
  Opts.EngineBudget = &Bgt;
  DiagnosticEngine Diags;
  Opts.Diags = &Diags;
  std::signal(SIGINT, onSigint);

  rewrite::RewriteStats Stats =
      rewrite::rewriteToFixpoint(*G, Rules, graph::ShapeInference(), Opts);
  std::signal(SIGINT, SIG_DFL);
  double After = CM.graphCost(*G).Seconds;
  std::fprintf(stderr, "%s", Diags.renderAll().c_str());

  if (ProfileOut) {
    if (RecordedProf.empty()) {
      std::fprintf(stderr,
                   "pypmc: no profile recorded (plan matcher not active, or "
                   "the run halted before the plan was used); not writing "
                   "'%s'\n",
                   ProfileOut);
      return 1;
    }
    std::string ProfBytes = plan::serializeProfile(RecordedProf);
    std::ofstream ProfFile(ProfileOut, std::ios::binary);
    if (!ProfFile ||
        !ProfFile.write(ProfBytes.data(),
                        static_cast<std::streamsize>(ProfBytes.size()))) {
      std::fprintf(stderr, "pypmc: cannot write '%s'\n", ProfileOut);
      return 1;
    }
    std::fprintf(stderr, "wrote %s: %zu bytes, %llu traversal(s)\n",
                 ProfileOut, ProfBytes.size(),
                 static_cast<unsigned long long>(RecordedProf.Traversals));
  }
  std::fprintf(stderr, "%s\nsimulated time: %.3fms -> %.3fms (%.3fx)\n",
               Stats.summary().c_str(), Before * 1e3, After * 1e3,
               Before / After);
  if (StatsJson)
    // Schema note: every key is emitted unconditionally — in particular
    // planCompileSeconds is 0.0 (not absent) when no in-run compile
    // happened (non-plan matcher, or a precompiled .pypmplan / cached /
    // pre-threaded stream) — so consumers can parse a fixed shape
    // (tests/CMakeLists.txt pins this with rewrite_stats_json_schema).
    std::fprintf(stderr,
                 "{\"engine\":%s,\"passes\":%llu,\"fired\":%llu,"
                 "\"matches\":%llu,\"nodes\":%zu,\"memoHits\":%llu,"
                 "\"memoMisses\":%llu,\"batchedNodes\":%llu,"
                 "\"planCompileSeconds\":%.6f,"
                 "\"searchSteps\":%llu,\"searchCandidates\":%llu,"
                 "\"searchExpansions\":%llu,"
                 "\"modeledCostBefore\":%.9f,\"modeledCostAfter\":%.9f}\n",
                 Stats.Status.json().c_str(),
                 static_cast<unsigned long long>(Stats.Passes),
                 static_cast<unsigned long long>(Stats.TotalFired),
                 static_cast<unsigned long long>(Stats.TotalMatches),
                 G->numLiveNodes(),
                 static_cast<unsigned long long>(Stats.MemoHits),
                 static_cast<unsigned long long>(Stats.MemoMisses),
                 static_cast<unsigned long long>(Stats.BatchedNodes),
                 Stats.PlanCompileSeconds,
                 static_cast<unsigned long long>(Stats.SearchSteps),
                 static_cast<unsigned long long>(Stats.SearchCandidates),
                 static_cast<unsigned long long>(Stats.SearchExpansions),
                 Stats.ModeledCostBefore, Stats.ModeledCostAfter);

  std::string Text = graph::writeGraphText(*G);
  if (Out) {
    std::ofstream OutFile(Out, std::ios::binary);
    if (!OutFile ||
        !OutFile.write(Text.data(),
                       static_cast<std::streamsize>(Text.size()))) {
      std::fprintf(stderr, "pypmc: cannot write '%s'\n", Out);
      return 1;
    }
  } else {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
  }
  return exitCodeFor(Stats.Status);
}

int cmdCost(int Argc, char **Argv) {
  if (Argc != 1)
    return usage();
  term::Signature Sig;
  std::unique_ptr<graph::Graph> G = loadGraph(Argv[0], Sig);
  if (!G)
    return 1;
  sim::CostModel CM;
  sim::GraphCost C = CM.graphCost(*G);
  std::printf("nodes=%zu kernels=%u flops=%.3e bytes=%.3e "
              "simulated-time=%.3fms (%s)\n",
              G->numLiveNodes(), C.Kernels, C.Flops, C.Bytes,
              C.Seconds * 1e3, CM.device().Name.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  const char *Cmd = Argv[1];
  if (std::strcmp(Cmd, "compile") == 0)
    return cmdCompile(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "compile-plan") == 0)
    return cmdCompilePlan(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "check") == 0)
    return cmdCheck(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "lint") == 0)
    return cmdLint(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "dump") == 0)
    return cmdDump(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "match") == 0)
    return cmdMatch(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "rewrite") == 0)
    return cmdRewrite(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "cost") == 0)
    return cmdCost(Argc - 2, Argv + 2);
  return usage();
}
